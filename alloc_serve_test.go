package graphviews_test

// Allocation regression bound for the serving /query hot path: a
// long-lived engine hands each request a context-scoped handle
// (Engine.WithRequest) and answers from the published extensions — the
// exact call sequence internal/serve runs per request against the
// current snapshot. The request handle must stay a shallow struct copy
// (no pool rebuilds, no scratch re-warming), so its steady state should
// cost only a few objects over the plain Answer bound pinned in
// alloc_test.go. Same policy as the other bounds: ≥2× headroom over
// measured values, skipped under -race.

import (
	"context"
	"testing"

	gv "graphviews"
)

// TestSteadyStateServeQueryAllocs bounds allocations of the
// per-request serving path WithRequest(ctx) → Answer on a warmed pool
// (measured ~294 allocs/op — the containment working state and the
// Result dominate; the request handle adds only the engine copy, so
// the measurement matches plain Answer's within one object).
func TestSteadyStateServeQueryAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not comparable under -race")
	}
	eng, _, _, q, x := allocWorkload(t)
	ctx := context.Background()
	// Warm the request path itself once.
	if _, _, _, err := eng.WithRequest(ctx).Answer(q, x, gv.UseAll); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		req := eng.WithRequest(ctx)
		if _, _, _, err := req.Answer(q, x, gv.UseAll); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("WithRequest+Answer steady state: %.1f allocs/op", allocs)
	const bound = 620
	if allocs > bound {
		t.Fatalf("serve /query steady state allocates %.1f objects/op, bound %d", allocs, bound)
	}
}
