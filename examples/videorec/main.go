// Videorec: answering recommendation queries over a YouTube-like
// related-video network from the paper's 12 cached views (Fig. 7), with
// incremental view maintenance as the network evolves.
//
// The workflow mirrors how the paper proposes deploying the technique:
// cache previous query results as views, answer new pattern queries from
// the cache (never scanning the big graph), and maintain the cache
// incrementally under edge updates.
//
//	go run ./examples/videorec
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	gv "graphviews"
)

func main() {
	const nodes, edges = 50_000, 140_000
	g := gv.GenerateYouTubeLike(nodes, edges, 11)
	fmt.Printf("related-video network: %v\n", g)

	views := gv.YouTubeViews()
	start := time.Now()
	maintained := gv.NewMaintained(g, views)
	fmt.Printf("12 views materialized in %.2fs: |V(G)| = %d pairs (%.2f%% of |G|)\n\n",
		time.Since(start).Seconds(), maintained.X.TotalEdges(), 100*maintained.X.FractionOf(g))

	// A query glued from cached view fragments: "viral music videos whose
	// related lists lead to highly rated short videos", etc. Any query
	// contained in the views works; GlueQuery builds one of requested
	// size. Retry seeds until the query has a nonempty answer so the demo
	// shows real matches.
	rng := rand.New(rand.NewSource(3))
	var q *gv.Pattern
	for seed := int64(0); seed < 50; seed++ {
		cand := gv.GlueQuery(rand.New(rand.NewSource(seed)), views, 4, 5)
		if gv.Match(g, cand).Matched {
			q = cand
			break
		}
	}
	if q == nil {
		q = gv.GlueQuery(rng, views, 4, 5)
	}
	fmt.Printf("query (glued from cached fragments):\n%s\n", q)

	answer := func(tag string) *gv.Result {
		t0 := time.Now()
		res, used, err := gv.Answer(q, maintained.X, gv.UseMinimum)
		if err != nil {
			log.Fatal(err)
		}
		names := make([]string, len(used))
		for i, u := range used {
			names[i] = views.Defs[u].Name
		}
		fmt.Printf("%s: answered in %.1fms using %v; |Q(G)| = %d\n",
			tag, time.Since(t0).Seconds()*1000, names, res.Size())
		return res
	}

	res1 := answer("initial")

	// The network evolves: new related-video links appear, stale ones go.
	// Deletions target existing related-list edges.
	t0 := time.Now()
	inserted, deleted := 0, 0
	for i := 0; i < 100; i++ {
		if rng.Intn(2) == 0 {
			u := gv.NodeID(rng.Intn(nodes))
			v := gv.NodeID(rng.Intn(nodes))
			if u != v && maintained.InsertEdge(u, v) {
				inserted++
			}
		} else {
			u := gv.NodeID(rng.Intn(nodes))
			for len(maintained.G.Out(u)) == 0 {
				u = gv.NodeID(rng.Intn(nodes))
			}
			out := maintained.G.Out(u)
			if maintained.DeleteEdge(u, out[rng.Intn(len(out))]) {
				deleted++
			}
		}
	}
	fmt.Printf("\nmaintained %d insertions / %d deletions in %.1fms "+
		"(%d view recomputes, %d delta propagations, %d fast-path skips)\n",
		inserted, deleted, time.Since(t0).Seconds()*1000,
		maintained.Stats.Recomputes, maintained.Stats.DeltaProps, maintained.Stats.Skips)

	res2 := answer("after updates")

	// The maintained cache stays exact: compare against rematerializing.
	fresh := gv.Materialize(maintained.G, views)
	exact := true
	for i := range fresh.Exts {
		if !fresh.Exts[i].Result.Equal(maintained.X.Exts[i].Result) {
			exact = false
		}
	}
	fmt.Printf("\nmaintained extensions exact after updates: %v\n", exact)
	fmt.Printf("result changed by updates: %v (%d -> %d matches)\n",
		!res1.Equal(res2), res1.Size(), res2.Size())

	// And view answers still agree with direct evaluation.
	direct := gv.Match(maintained.G, q)
	fmt.Printf("view answer still equals direct evaluation: %v\n", res2.Equal(direct))
}
