// Quickstart: the paper's running example (Fig. 1) end to end.
//
// A human-resources manager wants to staff a team from a recommendation
// network: a project manager (PM) who has worked with a database
// administrator (DBA) and a programmer (PRG), where DBAs and PRGs have
// supervised each other in collaboration cycles. Two cached views — "PM
// collaborations" and "DBA/PRG supervision cycles" — already contain all
// the pieces, so the query is answered without touching the graph.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	gv "graphviews"
)

func main() {
	// --- Fig. 1(a): the recommendation network G -------------------------
	g := gv.NewGraph()
	names := []string{}
	add := func(name, job string) gv.NodeID {
		id := g.AddNode(job)
		names = append(names, name)
		return id
	}
	bob := add("Bob", "PM")
	walt := add("Walt", "PM")
	mat := add("Mat", "DBA")
	fred := add("Fred", "DBA")
	mary := add("Mary", "DBA")
	dan := add("Dan", "PRG")
	pat := add("Pat", "PRG")
	bill := add("Bill", "PRG")
	add("Jean", "BA")
	add("Emmy", "ST")

	for _, e := range [][2]gv.NodeID{
		{bob, mat}, {walt, mat}, // PMs worked with DBA Mat
		{bob, dan}, {walt, bill}, // PMs worked with PRGs
		{fred, pat}, {mat, pat}, {mary, bill}, // DBAs supervised PRGs
		{dan, fred}, {pat, mary}, {pat, mat}, {bill, mat}, // PRGs supervised DBAs
	} {
		g.AddEdge(e[0], e[1])
	}
	fmt.Printf("data graph: %v\n\n", g)

	// --- Fig. 1(b): two cached views -------------------------------------
	v1, err := gv.ParsePattern(`
pattern V1 {
  node pm: PM
  node dba: DBA
  node prg: PRG
  edge pm -> dba
  edge pm -> prg
}`)
	if err != nil {
		log.Fatal(err)
	}
	v2, err := gv.ParsePattern(`
pattern V2 {
  node dba: DBA
  node prg: PRG
  edge dba -> prg
  edge prg -> dba
}`)
	if err != nil {
		log.Fatal(err)
	}
	views := gv.NewViewSet(gv.Define("V1", v1), gv.Define("V2", v2))

	// Materialize once (offline). In production these would be cached and
	// incrementally maintained (see examples/videorec).
	exts := gv.Materialize(g, views)
	fmt.Printf("materialized |V(G)| = %d pairs (%.1f%% of |G|)\n\n",
		exts.TotalEdges(), 100*exts.FractionOf(g))

	// --- Fig. 1(c): the team-building query ------------------------------
	q, err := gv.ParsePattern(`
pattern Qs {
  node pm: PM
  node dba1: DBA
  node prg1: PRG
  node dba2: DBA
  node prg2: PRG
  edge pm -> dba1
  edge pm -> prg2
  edge dba1 -> prg1
  edge prg1 -> dba2
  edge dba2 -> prg2
  edge prg2 -> dba1
}`)
	if err != nil {
		log.Fatal(err)
	}

	// Containment check: can Qs be answered from the views at all?
	if _, ok, err := gv.Contains(q, views); err != nil {
		log.Fatal(err)
	} else if !ok {
		log.Fatal("Qs is not contained in the views")
	}
	fmt.Println("containment: Qs ⊑ {V1, V2} — answerable from views alone")

	// Answer using views only (Example 4's MatchJoin).
	res, used, err := gv.Answer(q, exts, gv.UseMinimal)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("answered using views %v, |Qs(G)| = %d\n\n", used, res.Size())

	// Print the Example 2 result table with people's names.
	for i, e := range q.Edges {
		fmt.Printf("(%s, %s):", q.Nodes[e.From].Name, q.Nodes[e.To].Name)
		for _, pr := range res.Edges[i].Pairs {
			fmt.Printf("  %s->%s", names[pr.Src], names[pr.Dst])
		}
		fmt.Println()
	}

	// Sanity: identical to evaluating directly on G.
	direct := gv.Match(g, q)
	fmt.Printf("\nmatches direct evaluation: %v\n", res.Equal(direct))
}
