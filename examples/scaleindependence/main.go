// Scaleindependence: the paper's core economic argument (Section I cites
// [8]: views enable querying big data independent of its size). Direct
// evaluation cost grows with |G|; view-based answering cost tracks
// |V(G)|, which stays a small fraction of |G|.
//
// This example sweeps synthetic graphs from 20K to 100K nodes and prints
// both times per size — a miniature of Fig. 8(d).
//
//	go run ./examples/scaleindependence
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	gv "graphviews"
)

func main() {
	views := gv.SyntheticViews(10, 42)
	rng := rand.New(rand.NewSource(9))
	q := gv.GlueQuery(rng, views, 4, 6)
	fmt.Printf("query:\n%s\n", q)

	fmt.Printf("%10s %12s %14s %16s %12s\n", "|V|", "|E|", "Match (ms)", "MatchJoin (ms)", "|V(G)|/|G|")
	for n := 20_000; n <= 100_000; n += 20_000 {
		g := gv.GenerateUniform(n, 2*n, 10, int64(n))

		// Offline: materialize the cache.
		exts := gv.Materialize(g, views)

		// Direct evaluation touches G.
		t0 := time.Now()
		direct := gv.Match(g, q)
		directMS := time.Since(t0).Seconds() * 1000

		// View-based evaluation touches only V(G).
		t1 := time.Now()
		res, _, err := gv.Answer(q, exts, gv.UseMinimum)
		if err != nil {
			log.Fatal(err)
		}
		viewMS := time.Since(t1).Seconds() * 1000

		if !res.Equal(direct) {
			log.Fatalf("divergence at |V|=%d", n)
		}
		fmt.Printf("%10d %12d %14.2f %16.2f %11.1f%%\n",
			g.NumNodes(), g.NumEdges(), directMS, viewMS, 100*exts.FractionOf(g))
	}
	fmt.Println("\nview-based time tracks |V(G)|, not |G| — scale independence.")
}
