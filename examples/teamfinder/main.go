// Teamfinder: expert/team search over a large collaboration network with
// *bounded* pattern queries (Section VI) — team members need not be
// directly connected, only within a few collaboration hops.
//
// The example builds a synthetic organization network, caches bounded
// views, and compares answering a staffing query directly (BMatch)
// against answering it from the views (BMatchJoin with a minimum view
// subset), reporting both results and timings.
//
//	go run ./examples/teamfinder
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	gv "graphviews"
)

// buildOrgNetwork synthesizes a collaboration network of PMs, DBAs, PRGs,
// BAs and STs with seniority attributes.
func buildOrgNetwork(n int, seed int64) *gv.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := gv.NewGraphWithCapacity(n)
	jobs := []string{"PM", "DBA", "PRG", "BA", "ST"}
	weights := []float64{0.10, 0.20, 0.40, 0.15, 0.15}
	for i := 0; i < n; i++ {
		r, job := rng.Float64(), ""
		for j, w := range weights {
			if r < w {
				job = jobs[j]
				break
			}
			r -= w
		}
		if job == "" {
			job = jobs[len(jobs)-1]
		}
		v := g.AddNode(job)
		g.SetAttr(v, "seniority", 1+rng.Int63n(20))
	}
	// Collaboration edges: project clusters of 4-10 people.
	for c := 0; c < n/5; c++ {
		size := 4 + rng.Intn(7)
		members := make([]gv.NodeID, size)
		for i := range members {
			members[i] = gv.NodeID(rng.Intn(n))
		}
		lead := members[0]
		for _, m := range members[1:] {
			if m != lead {
				g.AddEdge(lead, m)
			}
			if rng.Intn(3) == 0 {
				w := members[rng.Intn(size)]
				if w != m {
					g.AddEdge(m, w)
				}
			}
		}
	}
	return g
}

func main() {
	const n = 30_000
	g := buildOrgNetwork(n, 7)
	fmt.Printf("organization network: %v\n\n", g)

	// Cached bounded views: "PM within 2 hops of a DBA and a PRG" and
	// "DBA/PRG mutual supervision within 2 hops".
	v1, err := gv.ParsePattern(`
pattern LeadReach {
  node pm: PM
  node dba: DBA
  node prg: PRG
  edge pm -> dba <=2
  edge pm -> prg <=2
}`)
	if err != nil {
		log.Fatal(err)
	}
	v2, err := gv.ParsePattern(`
pattern SupervisionLoop {
  node dba: DBA
  node prg: PRG
  edge dba -> prg <=2
  edge prg -> dba <=2
}`)
	if err != nil {
		log.Fatal(err)
	}
	v3, err := gv.ParsePattern(`
pattern AnalystLink {
  node pm: PM
  node ba: BA
  edge pm -> ba <=2
}`)
	if err != nil {
		log.Fatal(err)
	}
	views := gv.NewViewSet(gv.Define("LeadReach", v1), gv.Define("SupervisionLoop", v2), gv.Define("AnalystLink", v3))

	matStart := time.Now()
	exts := gv.Materialize(g, views)
	fmt.Printf("views materialized in %.2fs: |V(G)| = %d pairs (%.1f%% of |G|)\n\n",
		time.Since(matStart).Seconds(), exts.TotalEdges(), 100*exts.FractionOf(g))

	// The staffing query (a bounded variant of the paper's Fig. 1(c)):
	// a PM reaching a DBA and a PRG within 2 collaboration hops, where
	// DBA and PRG supervised each other within 2 hops.
	q, err := gv.ParsePattern(`
pattern Team {
  node pm: PM
  node dba: DBA
  node prg: PRG
  edge pm -> dba <=2
  edge pm -> prg <=2
  edge dba -> prg <=2
  edge prg -> dba <=2
}`)
	if err != nil {
		log.Fatal(err)
	}

	// Which views does the query actually need?
	idx, _, ok, err := gv.MinimumViews(q, views)
	if err != nil || !ok {
		log.Fatalf("query not answerable from views: %v", err)
	}
	fmt.Printf("minimum view subset: %d of %d views", len(idx), views.Card())
	for _, i := range idx {
		fmt.Printf("  [%s]", views.Defs[i].Name)
	}
	fmt.Println()

	// Answer from views.
	viewStart := time.Now()
	res, _, err := gv.Answer(q, exts, gv.UseMinimum)
	if err != nil {
		log.Fatal(err)
	}
	viewTime := time.Since(viewStart)

	// Answer directly (BMatch) for comparison.
	directStart := time.Now()
	direct := gv.Match(g, q)
	directTime := time.Since(directStart)

	fmt.Printf("\nBMatchJoin (views): %8.1fms   |Q(G)| = %d\n", viewTime.Seconds()*1000, res.Size())
	fmt.Printf("BMatch     (direct): %7.1fms   |Q(G)| = %d\n", directTime.Seconds()*1000, direct.Size())
	fmt.Printf("identical results: %v\n", res.Equal(direct))
	if directTime > 0 {
		fmt.Printf("view-based speedup: %.1fx\n", float64(directTime)/float64(viewTime))
	}

	// Show a few candidate teams.
	fmt.Println("\nsample matches (PM -> DBA within 2 hops):")
	for i, pr := range res.Edges[0].Pairs {
		if i >= 5 {
			break
		}
		sen, _ := g.Attr(pr.Src, "seniority")
		fmt.Printf("  PM #%d (seniority %d) -> DBA #%d (dist %d)\n",
			pr.Src, sen, pr.Dst, res.Edges[0].Dists[i])
	}
}
