package graphviews_test

// Sharded-backend benchmarks: the shard sweep of the materialize+answer
// pipeline (pre-partitioned snapshots, so the split is amortized across
// iterations the same way the frozen A/B amortizes the freeze) and the
// O(|V|+|E|) splitter itself. Run via `make bench-sharded`; the sweep is
// part of the `make bench-json` trajectory (BENCH_PR5.json onward).

import (
	"fmt"
	"testing"

	gv "graphviews"
)

// shardSweep is the shard-count axis of the benchmark matrix.
var shardSweep = []int{1, 2, 4, 8}

// BenchmarkAnswerSharded sweeps the materialize+answer pipeline over
// shard counts at a fixed 4-worker pool: candidate seeding fans out per
// shard, everything downstream runs on the sharded Reader unchanged.
// shards=1 is the frozen baseline (Shard with k=1 keeps one partition).
func BenchmarkAnswerSharded(b *testing.B) {
	g, vs, _, q, _ := microWorkload()
	fz := gv.Freeze(g)
	for _, k := range shardSweep {
		b.Run(fmt.Sprintf("shards=%d/workers=4", k), func(b *testing.B) {
			sh := gv.GraphReader(fz)
			if k > 1 {
				sh = gv.Shard(fz, k)
			}
			eng := gv.NewEngine(gv.WithParallelism(4))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				x, err := eng.Materialize(sh, vs)
				if err != nil {
					b.Fatal(err)
				}
				if _, _, _, err := eng.Answer(q, x, gv.UseAll); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkShardSplit measures Shard itself — the O(|V|+|E|) cost an
// engine pays per call when it shards internally rather than being
// handed a pre-built *Sharded.
func BenchmarkShardSplit(b *testing.B) {
	g, _, _, _, _ := microWorkload()
	fz := gv.Freeze(g)
	for _, k := range []int{2, 8} {
		b.Run(fmt.Sprintf("shards=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				gv.Shard(fz, k)
			}
		})
	}
}
