package graphviews_test

// Acceptance harness for the Reader/Frozen split: on the generator
// workloads, materialization and answering over graph.Freeze(g) must be
// byte-identical — results, view choices and stats — to the mutable
// backend at workers 1, 2, 4 and 8, and Freeze→Thaw must round-trip
// through the public API. Run with -race: the frozen label index is
// read concurrently with no locking.

import (
	"bytes"
	"math/rand"
	"testing"

	gv "graphviews"
)

// TestFrozenEquivalenceAcrossWorkers is the differential harness of the
// frozen backend: extensions and answers from the snapshot must equal the
// sequential mutable-backend reference at every worker count.
func TestFrozenEquivalenceAcrossWorkers(t *testing.T) {
	for name, wl := range engineWorkloads() {
		t.Run(name, func(t *testing.T) {
			ref := gv.Materialize(wl.g, wl.vs) // mutable, sequential reference
			fz := gv.Freeze(wl.g)

			rng := rand.New(rand.NewSource(71))
			queries := make([]*gv.Pattern, 4)
			for i := range queries {
				queries[i] = gv.GlueQuery(rng, wl.vs, 4, 6)
			}

			for _, w := range []int{1, 2, 4, 8} {
				eng := gv.NewEngine(gv.WithParallelism(w))
				x, err := eng.Materialize(fz, wl.vs)
				if err != nil {
					t.Fatalf("workers=%d: %v", w, err)
				}
				for i := range ref.Exts {
					if !x.Exts[i].Result.Equal(ref.Exts[i].Result) {
						t.Fatalf("workers=%d view %q: frozen extension differs",
							w, wl.vs.Defs[i].Name)
					}
				}
				for qi, q := range queries {
					refRes, refUsed, refErr := gv.Answer(q, ref, gv.UseAll)
					res, used, stats, err := eng.Answer(q, x, gv.UseAll)
					if (refErr == nil) != (err == nil) {
						t.Fatalf("workers=%d query %d: err %v vs %v", w, qi, refErr, err)
					}
					if refErr != nil {
						continue
					}
					if !res.Equal(refRes) {
						t.Fatalf("workers=%d query %d: frozen answer differs", w, qi)
					}
					if len(used) != len(refUsed) {
						t.Fatalf("workers=%d query %d: view choice differs", w, qi)
					}
					// Stats must also be identical across backends at the
					// same worker count (MatchJoin sees only extensions, so
					// any divergence means the extensions differ).
					_, _, refStats, err := eng.Answer(q, ref, gv.UseAll)
					if err != nil {
						t.Fatalf("workers=%d query %d: %v", w, qi, err)
					}
					if stats != refStats {
						t.Fatalf("workers=%d query %d: stats %+v vs %+v", w, qi, stats, refStats)
					}
				}
			}
		})
	}
}

// TestFreezeThawPublicRoundTrip: the snapshot serializes identically to
// its source and thaws back to an equivalent mutable graph.
func TestFreezeThawPublicRoundTrip(t *testing.T) {
	g := gv.GenerateYouTubeLike(800, 2_400, 9)
	fz := gv.Freeze(g)
	thawed := fz.Thaw()

	var a, b, c bytes.Buffer
	if err := gv.WriteGraph(&a, g); err != nil {
		t.Fatal(err)
	}
	if err := gv.WriteGraph(&b, fz); err != nil {
		t.Fatal(err)
	}
	if err := gv.WriteGraph(&c, thawed); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) || !bytes.Equal(a.Bytes(), c.Bytes()) {
		t.Fatalf("Freeze/Thaw serialization round trip diverged")
	}

	// The thawed graph must answer like the original.
	vs := gv.YouTubeViews()
	x1 := gv.Materialize(g, vs)
	x2 := gv.Materialize(thawed, vs)
	for i := range x1.Exts {
		if !x1.Exts[i].Result.Equal(x2.Exts[i].Result) {
			t.Fatalf("view %q: thawed graph materializes differently", vs.Defs[i].Name)
		}
	}
}
