package generator

// View definition sets for each dataset, mirroring Section VII's setup:
// 12 views per real-life-like dataset (Fig. 7 shows the YouTube ones) and
// 22 views over the synthetic alphabet. The views double as the building
// blocks of the query workloads (GlueQuery), exactly as the paper's
// queries are answerable from its views.
//
// View conditions are deliberately selective so that materialized
// extensions stay a small fraction of |G| (the paper reports 14.4% for
// Amazon, 12% for Citation and 4% for YouTube) — that is the regime in
// which answering from views pays off. The synthetic set contains
// sub-pattern/super-pattern families (as in Fig. 4, where V1 ⊂ V4 ⊂ V6),
// ordered small-to-large, so minimal and minimum containment genuinely
// differ (Exp-3, Fig. 8(h)).

import (
	"fmt"
	"math/rand"

	"graphviews/internal/pattern"
	"graphviews/internal/view"
)

// ytCond is the reusable pool of node conditions appearing in the Fig. 7
// views: categories combined with rate/visits/age/length thresholds.
// (Rates are stored ×10: R>="4" in the paper reads rate>=40 here.)
func ytCond(name string) (string, []pattern.Predicate) {
	switch name {
	case "music":
		return "video", []pattern.Predicate{pattern.StrPred("category", pattern.OpEq, "Music")}
	case "musicTop":
		return "video", []pattern.Predicate{
			pattern.StrPred("category", pattern.OpEq, "Music"),
			pattern.IntPred("rate", pattern.OpGe, 40),
		}
	case "sports":
		return "video", []pattern.Predicate{pattern.StrPred("category", pattern.OpEq, "Sports")}
	case "sportsHot":
		return "video", []pattern.Predicate{
			pattern.StrPred("category", pattern.OpEq, "Sports"),
			pattern.IntPred("visits", pattern.OpGe, 10000),
		}
	case "comedy":
		return "video", []pattern.Predicate{pattern.StrPred("category", pattern.OpEq, "Comedy")}
	case "news":
		return "video", []pattern.Predicate{
			pattern.StrPred("category", pattern.OpEq, "News"),
			pattern.IntPred("age", pattern.OpLe, 500),
		}
	case "ent":
		return "video", []pattern.Predicate{pattern.StrPred("category", pattern.OpEq, "Ent.")}
	case "entViral":
		return "video", []pattern.Predicate{
			pattern.StrPred("category", pattern.OpEq, "Ent."),
			pattern.IntPred("visits", pattern.OpGe, 10000),
		}
	case "filmLong":
		return "video", []pattern.Predicate{
			pattern.StrPred("category", pattern.OpEq, "Film"),
			pattern.IntPred("length", pattern.OpGe, 200),
		}
	case "comedyShort":
		return "video", []pattern.Predicate{
			pattern.StrPred("category", pattern.OpEq, "Comedy"),
			pattern.IntPred("length", pattern.OpLe, 600),
		}
	case "gamingTop":
		return "video", []pattern.Predicate{
			pattern.StrPred("category", pattern.OpEq, "Gaming"),
			pattern.IntPred("rate", pattern.OpGe, 35),
		}
	case "peopleFresh":
		return "video", []pattern.Predicate{
			pattern.StrPred("category", pattern.OpEq, "People"),
			pattern.IntPred("age", pattern.OpLe, 700),
		}
	default:
		panic("generator: unknown youtube condition " + name)
	}
}

// vb is a small DSL for building a view from condition names and edges.
func vb(name string, conds []string, edges [][2]int, condOf func(string) (string, []pattern.Predicate)) *view.Definition {
	p := pattern.New(name)
	for i, c := range conds {
		label, preds := condOf(c)
		p.AddNode(fmt.Sprintf("%s%d", c, i), label, preds...)
	}
	for _, e := range edges {
		p.AddEdge(e[0], e[1])
	}
	if err := p.Validate(); err != nil {
		panic("generator: bad view " + name + ": " + err.Error())
	}
	return view.Define(name, p)
}

// YouTubeViews returns the 12 recommendation-network views (Fig. 7
// style): small DAGs and cycles over category/rate/visits/age/length
// conditions. Every condition is category-anchored, keeping |V(G)| a few
// percent of |G| as in the paper.
func YouTubeViews() *view.Set {
	c := ytCond
	return view.NewSet(
		vb("P1", []string{"musicTop", "music"}, [][2]int{{0, 1}}, c),
		vb("P2", []string{"sportsHot", "sports"}, [][2]int{{0, 1}}, c),
		vb("P3", []string{"news", "entViral"}, [][2]int{{0, 1}}, c),
		vb("P4", []string{"comedy", "comedyShort"}, [][2]int{{0, 1}}, c),
		vb("P5", []string{"musicTop", "music", "music"}, [][2]int{{0, 1}, {1, 2}, {2, 0}}, c),
		vb("P6", []string{"ent", "entViral"}, [][2]int{{0, 1}, {1, 0}}, c),
		vb("P7", []string{"ent", "filmLong"}, [][2]int{{0, 1}}, c),
		vb("P8", []string{"sports", "sports", "sportsHot"}, [][2]int{{0, 1}, {1, 2}}, c),
		vb("P9", []string{"gamingTop", "gamingTop"}, [][2]int{{0, 1}}, c),
		vb("P10", []string{"comedy", "comedyShort", "comedy"}, [][2]int{{0, 1}, {1, 2}, {2, 0}}, c),
		vb("P11", []string{"peopleFresh", "music"}, [][2]int{{0, 1}}, c),
		vb("P12", []string{"entViral", "ent", "filmLong"}, [][2]int{{0, 1}, {0, 2}}, c),
	)
}

func amzCond(name string) (string, []pattern.Predicate) {
	switch name {
	case "popBook":
		return "Book", []pattern.Predicate{pattern.IntPred("salesrank", pattern.OpLe, 200000)}
	case "bestseller":
		return "Book", []pattern.Predicate{pattern.IntPred("salesrank", pattern.OpLe, 50000)}
	case "nicheBook":
		return "Book", []pattern.Predicate{pattern.IntPred("salesrank", pattern.OpGe, 800000)}
	case "popMusic":
		return "Music", []pattern.Predicate{pattern.IntPred("salesrank", pattern.OpLe, 300000)}
	case "popDVD":
		return "DVD", []pattern.Predicate{pattern.IntPred("salesrank", pattern.OpLe, 300000)}
	case "video":
		return "Video", nil
	case "toy":
		return "Toy", nil
	case "game":
		return "Game", nil
	default:
		panic("generator: unknown amazon condition " + name)
	}
}

// AmazonViews returns 12 frequent co-purchase patterns (the paper
// generated its Amazon views as frequent patterns following [27]). The
// salesrank thresholds keep extensions around a tenth of |G|, like the
// paper's 14.4%.
func AmazonViews() *view.Set {
	c := amzCond
	return view.NewSet(
		vb("A1", []string{"bestseller", "popBook"}, [][2]int{{0, 1}}, c),
		vb("A2", []string{"popBook", "popMusic"}, [][2]int{{0, 1}}, c),
		vb("A3", []string{"popMusic", "popBook"}, [][2]int{{0, 1}}, c),
		vb("A4", []string{"popBook", "popDVD"}, [][2]int{{0, 1}}, c),
		vb("A5", []string{"popDVD", "video"}, [][2]int{{0, 1}}, c),
		vb("A6", []string{"bestseller", "bestseller"}, [][2]int{{0, 1}}, c),
		vb("A7", []string{"popBook", "popBook", "popBook"}, [][2]int{{0, 1}, {1, 2}}, c),
		vb("A8", []string{"popMusic", "popMusic"}, [][2]int{{0, 1}, {1, 0}}, c),
		vb("A9", []string{"bestseller", "popMusic", "popDVD"}, [][2]int{{0, 1}, {0, 2}}, c),
		vb("A10", []string{"popDVD", "popDVD"}, [][2]int{{0, 1}}, c),
		vb("A11", []string{"nicheBook", "popBook"}, [][2]int{{0, 1}}, c),
		vb("A12", []string{"toy", "game"}, [][2]int{{0, 1}}, c),
	)
}

func citCond(name string) (string, []pattern.Predicate) {
	switch name {
	case "db", "ai", "se", "bio", "ml", "net", "th":
		return map[string]string{
			"db": "DB", "ai": "AI", "se": "SE", "bio": "Bio",
			"ml": "ML", "net": "Net", "th": "Th",
		}[name], nil
	case "dbRecent":
		return "DB", []pattern.Predicate{pattern.IntPred("year", pattern.OpGe, 2000)}
	case "aiRecent":
		return "AI", []pattern.Predicate{pattern.IntPred("year", pattern.OpGe, 2000)}
	case "mlClassic":
		return "ML", []pattern.Predicate{pattern.IntPred("year", pattern.OpLe, 1995)}
	default:
		panic("generator: unknown citation condition " + name)
	}
}

// CitationViews returns 12 views over the citation stand-in ("papers and
// authors in computer science"); all acyclic, as citations are.
func CitationViews() *view.Set {
	c := citCond
	return view.NewSet(
		vb("C1", []string{"dbRecent", "db"}, [][2]int{{0, 1}}, c),
		vb("C2", []string{"db", "ai"}, [][2]int{{0, 1}}, c),
		vb("C3", []string{"aiRecent", "ml"}, [][2]int{{0, 1}}, c),
		vb("C4", []string{"ml", "ai"}, [][2]int{{0, 1}}, c),
		vb("C5", []string{"se", "db"}, [][2]int{{0, 1}}, c),
		vb("C6", []string{"db", "mlClassic"}, [][2]int{{0, 1}}, c),
		vb("C7", []string{"dbRecent", "db", "th"}, [][2]int{{0, 1}, {1, 2}}, c),
		vb("C8", []string{"aiRecent", "ml", "th"}, [][2]int{{0, 1}, {1, 2}}, c),
		vb("C9", []string{"bio", "aiRecent"}, [][2]int{{0, 1}}, c),
		vb("C10", []string{"net", "net"}, [][2]int{{0, 1}}, c),
		vb("C11", []string{"db", "th"}, [][2]int{{0, 1}}, c),
		vb("C12", []string{"aiRecent", "db", "ml"}, [][2]int{{0, 1}, {0, 2}}, c),
	)
}

// SyntheticViews returns the 22 view definitions over the synthetic
// alphabet of k labels (Section VII uses |Σ| = 10, 22 views). The set is
// deterministic in the seed and structured like Fig. 4: the views are
// connected sub-patterns — 6 single-edge, 8 two-edge, 8 larger — of a few
// shared "universe" patterns, ordered small to large. Because every
// universe edge is covered at several granularities, queries glued from
// these views can be contained by many different subsets, which is what
// separates minimum containment from minimal containment (Fig. 8(h)).
func SyntheticViews(k int, seed int64) *view.Set {
	rng := rand.New(rand.NewSource(seed))

	// Universe patterns: the shapes all views are carved from. Two
	// universes with several edges each keep the carved views densely
	// overlapping, so most universe edges are covered by views of several
	// granularities (the Fig. 4 situation).
	universes := make([]*pattern.Pattern, 2)
	for ui := range universes {
		u := pattern.New(fmt.Sprintf("U%d", ui))
		nv := 6 + rng.Intn(2)
		for j := 0; j < nv; j++ {
			u.AddNode("", syntheticLabel(rng.Intn(k)))
		}
		for j := 1; j < nv; j++ {
			t := rng.Intn(j)
			if rng.Intn(2) == 0 {
				u.AddEdge(t, j)
			} else {
				u.AddEdge(j, t)
			}
		}
		for len(u.Edges) < nv+3 {
			a, b := rng.Intn(nv), rng.Intn(nv)
			if a != b && !hasEdge(u, a, b) {
				u.AddEdge(a, b)
			}
		}
		// Half the universes get a directed 2-cycle, for cyclic views.
		if ui%2 == 0 {
			a, b := rng.Intn(nv), rng.Intn(nv)
			if a != b && !hasEdge(u, a, b) && !hasEdge(u, b, a) {
				u.AddEdge(a, b)
				u.AddEdge(b, a)
			}
		}
		universes[ui] = u
	}

	// subPattern carves a connected sub-pattern with nE edges out of a
	// universe: grow an edge set from a random seed edge along shared
	// endpoints, then keep exactly the incident nodes.
	subPattern := func(u *pattern.Pattern, name string, nE int) *pattern.Pattern {
		chosen := map[int]bool{rng.Intn(len(u.Edges)): true}
		for len(chosen) < nE {
			grown := false
			// Candidate edges sharing a node with the chosen set.
			var cands []int
			inNodes := map[int]bool{}
			for ei := range chosen {
				inNodes[u.Edges[ei].From] = true
				inNodes[u.Edges[ei].To] = true
			}
			for ei, e := range u.Edges {
				if !chosen[ei] && (inNodes[e.From] || inNodes[e.To]) {
					cands = append(cands, ei)
				}
			}
			if len(cands) == 0 {
				break
			}
			chosen[cands[rng.Intn(len(cands))]] = true
			grown = true
			_ = grown
		}
		p := pattern.New(name)
		nodeMap := map[int]int{}
		mapNode := func(ui int) int {
			if v, ok := nodeMap[ui]; ok {
				return v
			}
			v := p.AddNode("", u.Nodes[ui].Label)
			nodeMap[ui] = v
			return v
		}
		for ei := range chosen {
			e := u.Edges[ei]
			p.AddEdge(mapNode(e.From), mapNode(e.To))
		}
		return p
	}

	defs := make([]*view.Definition, 0, 22)
	add := func(nE int) {
		u := universes[rng.Intn(len(universes))]
		p := subPattern(u, fmt.Sprintf("S%d", len(defs)+1), nE)
		defs = append(defs, view.Define("", p))
	}
	for i := 0; i < 6; i++ { // singles
		add(1)
	}
	for i := 0; i < 8; i++ { // mediums
		add(2)
	}
	for i := 0; i < 8; i++ { // larges
		add(3 + rng.Intn(2))
	}
	return view.NewSet(defs...)
}

func hasEdge(p *pattern.Pattern, a, b int) bool {
	for _, e := range p.Edges {
		if e.From == a && e.To == b {
			return true
		}
	}
	return false
}

// BoundedSet returns a copy of vs with every edge bound of every view set
// to b; used to derive the bounded-experiment view sets (Exp-4).
func BoundedSet(vs *view.Set, b pattern.Bound) *view.Set {
	defs := make([]*view.Definition, vs.Card())
	for i, d := range vs.Defs {
		defs[i] = view.Define(d.Name, d.Pattern.WithBounds(b))
	}
	return view.NewSet(defs...)
}
