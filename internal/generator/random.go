// Package generator produces the synthetic data graphs, view sets and
// query workloads of the paper's evaluation (Section VII). The real-life
// snapshots the paper used (Amazon, Citation, YouTube) are not
// redistributable, so AmazonLike / CitationLike / YouTubeLike generate
// graphs with the same schema, label distribution and density; DESIGN.md
// §4 documents why the substitution preserves the experiments' behaviour.
// All generators are deterministic in their seed.
package generator

import (
	"fmt"
	"math"
	"math/rand"

	"graphviews/internal/graph"
)

// Uniform generates the paper's synthetic random graph: n nodes labeled
// uniformly from an alphabet of k labels ("L0".."L<k-1>") and m random
// edges (Section VII: |V| from 0.3M to 1M, |E| = 2|V|, |Σ| = 10).
func Uniform(n, m, k int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := graph.NewWithCapacity(n)
	for i := 0; i < n; i++ {
		g.AddNode(syntheticLabel(rng.Intn(k)))
	}
	addRandomEdges(g, rng, m)
	return g
}

// Densified generates a synthetic graph following the densification law
// |E| = |V|^α of Leskovec et al. [26], used by the Exp-2 ablation
// (Fig. 8(f): |V| = 200K, α from 1 to 1.25).
func Densified(n int, alpha float64, k int, seed int64) *graph.Graph {
	m := int(math.Pow(float64(n), alpha))
	return Uniform(n, m, k, seed)
}

// syntheticLabel names the i-th synthetic label.
func syntheticLabel(i int) string { return fmt.Sprintf("L%d", i) }

// addRandomEdges inserts m distinct random edges (skipping collisions).
func addRandomEdges(g *graph.Graph, rng *rand.Rand, m int) {
	n := g.NumNodes()
	if n < 2 {
		return
	}
	for added, attempts := 0, 0; added < m && attempts < 4*m+100; attempts++ {
		u := graph.NodeID(rng.Intn(n))
		v := graph.NodeID(rng.Intn(n))
		if u == v {
			continue
		}
		if g.AddEdge(u, v) {
			added++
		}
	}
}

// prefTarget picks an edge target with preferential attachment: a node
// already seen in edgeTargets with probability bias, uniform otherwise.
func prefTarget(rng *rand.Rand, n int, targets []graph.NodeID, bias float64) graph.NodeID {
	if len(targets) > 0 && rng.Float64() < bias {
		return targets[rng.Intn(len(targets))]
	}
	return graph.NodeID(rng.Intn(n))
}
