package generator

// Stand-ins for the three real-life datasets of Section VII. Each mirrors
// the schema the paper describes and the density of the original snapshot
// (Amazon: 548K/1.78M; Citation: 1.4M/3M; YouTube: 1.6M/4.5M) at whatever
// scale the caller requests.

import (
	"math/rand"

	"graphviews/internal/graph"
)

// AmazonGroups are the product-group labels of the co-purchasing network
// ("each node has attributes such as title, group and sales-rank").
var AmazonGroups = []string{"Book", "Music", "DVD", "Video", "Software", "Toy", "Game", "Electronics"}

// AmazonLike generates a product co-purchasing network: labels are
// product groups (heavily skewed toward books, as in the SNAP snapshot),
// salesrank is attached to each product, and edges follow a copying model
// ("people who buy x also buy y" lists cluster around popular products).
func AmazonLike(n, m int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := graph.NewWithCapacity(n)
	for i := 0; i < n; i++ {
		// Skewed group distribution: ~55% books, then music/DVD/video...
		r := rng.Float64()
		var grp string
		switch {
		case r < 0.55:
			grp = "Book"
		case r < 0.70:
			grp = "Music"
		case r < 0.82:
			grp = "DVD"
		case r < 0.90:
			grp = "Video"
		default:
			grp = AmazonGroups[4+rng.Intn(4)]
		}
		v := g.AddNode(grp)
		g.SetAttr(v, "salesrank", 1+rng.Int63n(1_000_000))
	}
	// Copying model: each co-purchase edge either copies the target of a
	// previous edge (popular products accumulate in-links) or is random.
	targets := make([]graph.NodeID, 0, m)
	for added, attempts := 0, 0; added < m && attempts < 6*m+100; attempts++ {
		u := graph.NodeID(rng.Intn(n))
		v := prefTarget(rng, n, targets, 0.4)
		if u == v {
			continue
		}
		if g.AddEdge(u, v) {
			targets = append(targets, v)
			added++
		}
	}
	return g
}

// CitationAreas are the venue-area labels used by the citation stand-in
// ("nodes represent papers with attributes such as title, authors, year
// and venue, and edges denote citations").
var CitationAreas = []string{"DB", "AI", "SE", "Bio", "ML", "Net", "Arch", "Th", "HCI", "Sec"}

// CitationLike generates a time-layered citation network: papers carry a
// venue-area label and a year; citations point from newer papers to older
// ones (with preferential attachment to highly cited papers), so the
// graph is acyclic by construction.
func CitationLike(n, m int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := graph.NewWithCapacity(n)
	for i := 0; i < n; i++ {
		v := g.AddNode(CitationAreas[rng.Intn(len(CitationAreas))])
		// Node ids ascend with publication year: later ids, later years.
		year := 1970 + int64(float64(i)/float64(n)*44)
		g.SetAttr(v, "year", year)
	}
	targets := make([]graph.NodeID, 0, m)
	for added, attempts := 0, 0; added < m && attempts < 6*m+100; attempts++ {
		// Citing paper u must be newer than cited paper v: pick u from the
		// upper range and v below it.
		u := graph.NodeID(1 + rng.Intn(n-1))
		var v graph.NodeID
		if len(targets) > 0 && rng.Float64() < 0.35 {
			v = targets[rng.Intn(len(targets))]
		} else {
			v = graph.NodeID(rng.Intn(int(u)))
		}
		if v >= u {
			continue
		}
		if g.AddEdge(u, v) {
			targets = append(targets, v)
			added++
		}
	}
	return g
}

// YouTubeCategories are the video categories used in the Fig. 7 views
// (C = category, with values like "Music", "Sports", "Comedy", ...).
var YouTubeCategories = []string{
	"Music", "Sports", "Comedy", "News", "Ent.", "Film",
	"Gaming", "Howto", "Travel", "People", "Autos", "Edu",
}

// YouTubeLike generates a related-video recommendation network: every
// node is a video with category (C), age in days (A), rate ×10 (R, so
// R>="4" in Fig. 7 reads as rate>=40 here — the harness uses the same
// convention), length in seconds (L) and visits (V). Related-video edges
// prefer same-category targets and popular videos.
func YouTubeLike(n, m int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := graph.NewWithCapacity(n)
	cats := make([]int, n)
	byCat := make([][]graph.NodeID, len(YouTubeCategories))
	for i := 0; i < n; i++ {
		c := rng.Intn(len(YouTubeCategories))
		cats[i] = c
		v := g.AddNode("video")
		byCat[c] = append(byCat[c], v)
		g.SetAttrString(v, "category", YouTubeCategories[c])
		g.SetAttr(v, "age", 1+rng.Int63n(1500))
		g.SetAttr(v, "rate", 10+rng.Int63n(41)) // 1.0 .. 5.0 stars ×10
		g.SetAttr(v, "length", 10+rng.Int63n(3600))
		// Zipf-ish visit counts: most videos cold, a few viral.
		g.SetAttr(v, "visits", int64(rng.ExpFloat64()*20000))
	}
	targets := make([]graph.NodeID, 0, m)
	for added, attempts := 0, 0; added < m && attempts < 6*m+100; attempts++ {
		u := graph.NodeID(rng.Intn(n))
		var v graph.NodeID
		switch {
		case rng.Float64() < 0.5 && len(byCat[cats[u]]) > 1:
			// Related videos share a category half the time.
			v = byCat[cats[u]][rng.Intn(len(byCat[cats[u]]))]
		default:
			v = prefTarget(rng, n, targets, 0.3)
		}
		if u == v {
			continue
		}
		if g.AddEdge(u, v) {
			targets = append(targets, v)
			added++
		}
	}
	return g
}
