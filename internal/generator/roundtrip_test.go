package generator

// DSL round-trip tests over every realistic view set: each definition
// must survive Pattern.String -> pattern.Parse unchanged, so views can be
// stored as .patterns files and fed to the cmd tools.

import (
	"strings"
	"testing"

	"graphviews/internal/pattern"
	"graphviews/internal/view"
)

func TestAllViewSetsDSLRoundTrip(t *testing.T) {
	sets := map[string]*view.Set{
		"youtube":   YouTubeViews(),
		"amazon":    AmazonViews(),
		"citation":  CitationViews(),
		"synthetic": SyntheticViews(10, 42),
	}
	for name, vs := range sets {
		for _, d := range vs.Defs {
			src := d.Pattern.String()
			back, err := pattern.Parse(src)
			if err != nil {
				t.Fatalf("%s/%s: reparse failed: %v\n%s", name, d.Name, err, src)
			}
			if !d.Pattern.Equal(back) {
				t.Fatalf("%s/%s: round trip changed the pattern:\n%s\nvs\n%s",
					name, d.Name, d.Pattern, back)
			}
		}
	}
}

// TestViewSetsAsOnePatternsFile: all definitions of a set concatenate
// into one DSL document parseable by ParseAll, in order — the format
// cmd/gvviews and cmd/gvmatch consume.
func TestViewSetsAsOnePatternsFile(t *testing.T) {
	vs := YouTubeViews()
	var sb strings.Builder
	for _, d := range vs.Defs {
		sb.WriteString(d.Pattern.String())
		sb.WriteString("\n")
	}
	ps, err := pattern.ParseAll(sb.String())
	if err != nil {
		t.Fatalf("ParseAll: %v", err)
	}
	if len(ps) != vs.Card() {
		t.Fatalf("parsed %d patterns, want %d", len(ps), vs.Card())
	}
	for i, p := range ps {
		if !vs.Defs[i].Pattern.Equal(p) {
			t.Fatalf("view %d changed through the combined file", i)
		}
	}
}

// TestBoundedSetRoundTrip: bounds survive the DSL too.
func TestBoundedSetRoundTrip(t *testing.T) {
	vs := BoundedSet(AmazonViews(), 3)
	for _, d := range vs.Defs {
		back, err := pattern.Parse(d.Pattern.String())
		if err != nil {
			t.Fatalf("%s: %v", d.Name, err)
		}
		for i, e := range back.Edges {
			if e.Bound != 3 {
				t.Fatalf("%s edge %d bound = %v after round trip", d.Name, i, e.Bound)
			}
		}
	}
}
