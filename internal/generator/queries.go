package generator

// Query workload generators. GlueQuery builds queries that are contained
// in a view set *by construction* (the paper evaluates queries answerable
// from its views): it copies whole view patterns and glues them at
// condition-equivalent nodes; every query edge is then covered by the
// view edge it was copied from (each copy map is a simulation of the view
// into the query — DESIGN.md §2). RandomPattern builds arbitrary DAG or
// cyclic patterns for the containment-checking experiments (Exp-3).

import (
	"math/rand"

	"graphviews/internal/pattern"
	"graphviews/internal/view"
)

// GlueQuery composes view fragments until the query reaches roughly
// minNodes/minEdges (or growth stalls). The result is connected, valid,
// and contained in vs. Bounds are copied verbatim from the views.
func GlueQuery(rng *rand.Rand, vs *view.Set, minNodes, minEdges int) *pattern.Pattern {
	base := vs.Defs[rng.Intn(vs.Card())].Pattern
	q := pattern.New("q")
	for _, n := range base.Nodes {
		q.AddNode("", n.Label, append([]pattern.Predicate(nil), n.Preds...)...)
	}
	for _, e := range base.Edges {
		q.AddBoundedEdge(e.From, e.To, e.Bound)
	}

	for attempts := 0; attempts < 20*(minNodes+minEdges) &&
		(len(q.Nodes) < minNodes || len(q.Edges) < minEdges); attempts++ {
		w := vs.Defs[rng.Intn(vs.Card())].Pattern
		type gluePoint struct{ vx, qu int }
		var cands []gluePoint
		for vx := range w.Nodes {
			for qu := range q.Nodes {
				if pattern.NodeConditionsEquivalent(&w.Nodes[vx], &q.Nodes[qu]) {
					cands = append(cands, gluePoint{vx, qu})
				}
			}
		}
		if len(cands) == 0 {
			continue
		}
		pick := cands[rng.Intn(len(cands))]
		m := make([]int, len(w.Nodes))
		added := 0
		for vx := range w.Nodes {
			if vx == pick.vx {
				m[vx] = pick.qu
			} else {
				m[vx] = len(q.Nodes) + added
				added++
			}
		}
		// A glue must not duplicate an existing query edge: a duplicate
		// with a different bound would invalidate the copied-simulation
		// argument, so the whole attempt is abandoned.
		conflict := false
		for _, e := range w.Edges {
			from, to := m[e.From], m[e.To]
			if from < len(q.Nodes) && to < len(q.Nodes) && hasEdge(q, from, to) {
				conflict = true
				break
			}
		}
		if conflict {
			continue
		}
		for vx, n := range w.Nodes {
			if vx != pick.vx {
				q.AddNode("", n.Label, append([]pattern.Predicate(nil), n.Preds...)...)
			}
		}
		for _, e := range w.Edges {
			q.AddBoundedEdge(m[e.From], m[e.To], e.Bound)
		}
	}
	if err := q.Validate(); err != nil {
		// Gluing preserves validity by construction; a failure here is a
		// programming error worth failing loudly on.
		panic("generator: glued query invalid: " + err.Error())
	}
	return q
}

// RandomPattern builds a random connected pattern with nv nodes and ~ne
// edges over the synthetic alphabet of k labels. With cyclic=false the
// edges all point from lower to higher index (a DAG, the paper's QDAG
// workload); otherwise random orientations and back-edges produce cyclic
// patterns (QCyclic).
func RandomPattern(rng *rand.Rand, nv, ne, k int, cyclic bool) *pattern.Pattern {
	p := pattern.New("q")
	for i := 0; i < nv; i++ {
		p.AddNode("", syntheticLabel(rng.Intn(k)))
	}
	// Spanning tree for connectivity.
	for i := 1; i < nv; i++ {
		j := rng.Intn(i)
		if cyclic && rng.Intn(2) == 0 {
			p.AddEdge(i, j)
		} else {
			p.AddEdge(j, i)
		}
	}
	for attempts := 0; len(p.Edges) < ne && attempts < 20*ne; attempts++ {
		a, b := rng.Intn(nv), rng.Intn(nv)
		if a == b || hasEdge(p, a, b) {
			continue
		}
		if !cyclic && a > b {
			a, b = b, a
			if hasEdge(p, a, b) {
				continue
			}
		}
		p.AddEdge(a, b)
	}
	if cyclic {
		// Ensure at least one directed cycle by closing a back edge.
		for attempts := 0; attempts < 50 && p.IsDAG(); attempts++ {
			a, b := rng.Intn(nv), rng.Intn(nv)
			if a != b && !hasEdge(p, a, b) && !hasEdge(p, b, a) {
				p.AddEdge(a, b)
				p.AddEdge(b, a)
			}
		}
	}
	return p
}

// BoundedQuery derives a bounded query from a plain one: every edge gets
// a bound drawn uniformly from [1, k] (the paper's pattern generator:
// "draws an edge bound randomly from [1, k]").
func BoundedQuery(rng *rand.Rand, q *pattern.Pattern, k int) *pattern.Pattern {
	b := q.Clone()
	for i := range b.Edges {
		b.Edges[i].Bound = pattern.Bound(1 + rng.Intn(k))
	}
	return b
}
