package generator

// Necklace workloads: queries whose pattern condenses into many strongly
// connected components — k directed cycles ("beads") chained by bridge
// edges — together with a view set that contains the query by
// construction (one view per bead, one single-edge view per bridge).
// These are the stress workloads of the SCC-parallel MatchJoin fixpoint:
// each bead is a non-trivial SCC with its own internal cascade, bridges
// give the condensation DAG depth, and the single-edge bridge views
// admit many invalid seed pairs for the fixpoint to remove.

import (
	"fmt"
	"math/rand"

	"graphviews/internal/graph"
	"graphviews/internal/pattern"
	"graphviews/internal/view"
)

// Necklace builds a k-bead necklace query and its containing view set.
// Bead i is a directed cycle of 2 + rng.Intn(2) nodes with labels unique
// to the bead; bridge edges run from a node of bead i to a node of bead
// i+1 and carry bridgeBound (use 1 for a plain query, >1 or Unbounded for
// a bounded one). The returned view set contains the query: each bead
// view is a verbatim copy of its cycle and each bridge view a verbatim
// copy of its bridge edge, so every query edge is covered by the view
// edge it mirrors.
func Necklace(rng *rand.Rand, k int, bridgeBound pattern.Bound) (*pattern.Pattern, *view.Set) {
	q := pattern.New(fmt.Sprintf("necklace%d", k))
	var defs []*view.Definition
	var beadFirst, beadLast []int // first/last query node of each bead
	for i := 0; i < k; i++ {
		size := 2 + rng.Intn(2)
		first := len(q.Nodes)
		bead := pattern.New(fmt.Sprintf("bead%d", i))
		for j := 0; j < size; j++ {
			label := fmt.Sprintf("L%d_%d", i, j)
			q.AddNode("", label)
			bead.AddNode("", label)
		}
		for j := 0; j < size; j++ {
			from, to := j, (j+1)%size
			q.AddEdge(first+from, first+to)
			bead.AddEdge(from, to)
		}
		defs = append(defs, view.Define(bead.Name, bead))
		beadFirst = append(beadFirst, first)
		beadLast = append(beadLast, first+size-1)
	}
	for i := 0; i+1 < k; i++ {
		from, to := beadLast[i], beadFirst[i+1]
		q.AddBoundedEdge(from, to, bridgeBound)
		bridge := pattern.New(fmt.Sprintf("bridge%d", i))
		bf := bridge.AddNode("", q.Nodes[from].Label)
		bt := bridge.AddNode("", q.Nodes[to].Label)
		bridge.AddBoundedEdge(bf, bt, bridgeBound)
		defs = append(defs, view.Define(bridge.Name, bridge))
	}
	return q, view.NewSet(defs...)
}

// NecklaceGraph builds a data graph with ~n nodes and m extra random
// edges for a necklace query. Half of the planted pattern embeddings are
// intact (genuine matches); the other half drop one random pattern edge
// each, leaving partial embeddings whose view-admitted pairs only the
// MatchJoin fixpoint removes. Remaining nodes draw random query labels,
// and the m noise edges connect everything, so cascades cross embedding
// boundaries.
func NecklaceGraph(rng *rand.Rand, q *pattern.Pattern, n, m int) *graph.Graph {
	labels := make([]string, 0, len(q.Nodes))
	for i := range q.Nodes {
		labels = append(labels, q.Nodes[i].Label)
	}
	g := graph.NewWithCapacity(n)
	qn := len(q.Nodes)
	copies := n / (2 * qn)
	for c := 0; c < copies; c++ {
		base := g.NumNodes()
		for i := range q.Nodes {
			g.AddNode(q.Nodes[i].Label)
		}
		drop := -1
		if c%2 == 1 {
			drop = rng.Intn(len(q.Edges))
		}
		for ei, e := range q.Edges {
			if ei == drop {
				continue
			}
			g.AddEdge(graph.NodeID(base+e.From), graph.NodeID(base+e.To))
		}
	}
	for g.NumNodes() < n {
		g.AddNode(labels[rng.Intn(len(labels))])
	}
	for i := 0; i < m; i++ {
		g.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)))
	}
	return g
}
