package generator

import (
	"math/rand"
	"testing"

	"graphviews/internal/core"
	"graphviews/internal/graph"
	"graphviews/internal/pattern"
	"graphviews/internal/simulation"
	"graphviews/internal/view"
)

func TestUniformDeterministic(t *testing.T) {
	a := Uniform(100, 200, 10, 7)
	b := Uniform(100, 200, 10, 7)
	if a.NumNodes() != 100 || a.NumEdges() != 200 {
		t.Fatalf("size = %d/%d", a.NumNodes(), a.NumEdges())
	}
	if a.NumEdges() != b.NumEdges() {
		t.Fatalf("not deterministic")
	}
	same := true
	a.Edges(func(u, v graph.NodeID) bool {
		if !b.HasEdge(u, v) {
			same = false
			return false
		}
		return true
	})
	if !same {
		t.Fatalf("edge sets differ across runs with same seed")
	}
	c := Uniform(100, 200, 10, 8)
	diff := false
	a.Edges(func(u, v graph.NodeID) bool {
		if !c.HasEdge(u, v) {
			diff = true
			return false
		}
		return true
	})
	if !diff {
		t.Fatalf("different seeds produced identical graphs (suspicious)")
	}
}

func TestDensified(t *testing.T) {
	g := Densified(1000, 1.1, 10, 3)
	// 1000^1.1 ≈ 1995
	if g.NumEdges() < 1800 || g.NumEdges() > 2000 {
		t.Fatalf("densified edges = %d, want ≈1995", g.NumEdges())
	}
}

func TestAmazonLike(t *testing.T) {
	g := AmazonLike(2000, 6000, 11)
	if g.NumNodes() != 2000 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	if g.NumEdges() < 5500 {
		t.Fatalf("edges = %d, want ≈6000", g.NumEdges())
	}
	books := len(g.NodesWithLabelName("Book"))
	if books < 900 || books > 1300 {
		t.Fatalf("book share off: %d/2000", books)
	}
	if _, ok := g.Attr(0, "salesrank"); !ok {
		t.Fatalf("salesrank missing")
	}
}

func TestCitationLikeAcyclic(t *testing.T) {
	g := CitationLike(1500, 4000, 13)
	scc := graph.SCC(g)
	for ci := range scc.Comps {
		if len(scc.Comps[ci]) > 1 {
			t.Fatalf("citation graph has a cycle (component of %d nodes)", len(scc.Comps[ci]))
		}
	}
	// Citations point from newer (higher year) to older.
	bad := 0
	g.Edges(func(u, v graph.NodeID) bool {
		yu, _ := g.Attr(u, "year")
		yv, _ := g.Attr(v, "year")
		if yu < yv {
			bad++
		}
		return true
	})
	if bad > 0 {
		t.Fatalf("%d citations point forward in time", bad)
	}
}

func TestYouTubeLikeAttributes(t *testing.T) {
	g := YouTubeLike(1000, 3000, 17)
	for v := graph.NodeID(0); v < 20; v++ {
		if g.LabelName(v) != "video" {
			t.Fatalf("label = %q", g.LabelName(v))
		}
		for _, k := range []string{"category", "age", "rate", "length", "visits"} {
			if _, ok := g.Attr(v, k); !ok {
				t.Fatalf("attr %s missing", k)
			}
		}
		r, _ := g.Attr(v, "rate")
		if r < 10 || r > 50 {
			t.Fatalf("rate out of range: %d", r)
		}
	}
}

func TestViewSetsValid(t *testing.T) {
	for _, vs := range []*view.Set{YouTubeViews(), AmazonViews(), CitationViews(), SyntheticViews(10, 42)} {
		if err := vs.Validate(); err != nil {
			t.Fatalf("invalid view set: %v", err)
		}
	}
	if YouTubeViews().Card() != 12 || AmazonViews().Card() != 12 || CitationViews().Card() != 12 {
		t.Fatalf("real-life-like view sets must have 12 views")
	}
	if SyntheticViews(10, 42).Card() != 22 {
		t.Fatalf("synthetic view set must have 22 views")
	}
}

func TestViewsHaveMatches(t *testing.T) {
	// The stand-in datasets must actually populate their views, or every
	// experiment would measure empty joins.
	cases := []struct {
		name string
		g    *graph.Graph
		vs   *view.Set
	}{
		{"youtube", YouTubeLike(3000, 9000, 1), YouTubeViews()},
		{"amazon", AmazonLike(3000, 9000, 2), AmazonViews()},
		{"citation", CitationLike(3000, 9000, 3), CitationViews()},
		{"synthetic", Uniform(3000, 6000, 10, 4), SyntheticViews(10, 42)},
	}
	for _, c := range cases {
		x := view.Materialize(c.g, c.vs)
		matched := 0
		for _, e := range x.Exts {
			if e.Result.Matched {
				matched++
			}
		}
		if matched < c.vs.Card()/2 {
			t.Errorf("%s: only %d/%d views have matches", c.name, matched, c.vs.Card())
		}
	}
}

func TestGlueQueryContained(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	sets := []*view.Set{YouTubeViews(), AmazonViews(), CitationViews(), SyntheticViews(10, 42)}
	for si, vs := range sets {
		for trial := 0; trial < 20; trial++ {
			q := GlueQuery(rng, vs, 4+rng.Intn(5), 4+rng.Intn(8))
			if err := q.Validate(); err != nil {
				t.Fatalf("set %d: invalid glued query: %v", si, err)
			}
			_, ok, err := core.Contain(q, vs)
			if err != nil {
				t.Fatalf("Contain: %v", err)
			}
			if !ok {
				t.Fatalf("set %d trial %d: glued query not contained:\n%s", si, trial, q)
			}
		}
	}
}

func TestGlueQueryBoundedContained(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	vs := BoundedSet(AmazonViews(), 3)
	for trial := 0; trial < 15; trial++ {
		q := GlueQuery(rng, vs, 4, 6)
		_, ok, err := core.BContain(q, vs)
		if err != nil || !ok {
			t.Fatalf("trial %d: bounded glued query not contained (%v)", trial, err)
		}
		// Tightening query bounds below the views' preserves containment.
		q2 := q.WithBounds(2)
		_, ok, _ = core.BContain(q2, vs)
		if !ok {
			t.Fatalf("trial %d: tightened query lost containment", trial)
		}
		// Loosening beyond the views must break it.
		q3 := q.WithBounds(4)
		_, ok, _ = core.BContain(q3, vs)
		if ok {
			t.Fatalf("trial %d: query bounds above view bounds cannot be contained", trial)
		}
	}
}

func TestRandomPatternShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		nv := 4 + rng.Intn(7)
		ne := nv + rng.Intn(nv)
		dag := RandomPattern(rng, nv, ne, 10, false)
		if err := dag.Validate(); err != nil {
			t.Fatalf("QDAG invalid: %v", err)
		}
		if !dag.IsDAG() {
			t.Fatalf("QDAG has a cycle")
		}
		cyc := RandomPattern(rng, nv, ne, 10, true)
		if err := cyc.Validate(); err != nil {
			t.Fatalf("QCyclic invalid: %v", err)
		}
		if cyc.IsDAG() {
			t.Fatalf("QCyclic is acyclic")
		}
	}
}

func TestBoundedQueryBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	q := RandomPattern(rng, 5, 8, 10, true)
	b := BoundedQuery(rng, q, 3)
	for _, e := range b.Edges {
		if e.Bound < 1 || e.Bound > 3 {
			t.Fatalf("bound %v out of [1,3]", e.Bound)
		}
	}
	if q.IsPlain() != true {
		t.Fatalf("original mutated")
	}
}

// TestWorkloadEndToEnd: a small smoke test of the full pipeline on the
// YouTube stand-in — materialize views, glue a query, answer it with
// views, compare against direct evaluation.
func TestWorkloadEndToEnd(t *testing.T) {
	g := YouTubeLike(2000, 6000, 21)
	vs := YouTubeViews()
	x := view.Materialize(g, vs)
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 10; trial++ {
		q := GlueQuery(rng, vs, 4, 6)
		want := simulation.Simulate(g, q)
		got, _, err := core.Answer(q, x, core.UseMinimum)
		if err != nil {
			t.Fatalf("Answer: %v", err)
		}
		if !got.Equal(want) {
			t.Fatalf("trial %d: view answer != direct\nq: %s", trial, q)
		}
	}
	_ = pattern.Unbounded // keep the import for the helpers above
}
