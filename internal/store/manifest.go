package store

// The per-shard checkpoint layout: a small MANIFEST file naming one
// global part (labels, categorical keys, node→label column), one part
// per shard (CSR in both directions, label partition, attribute
// columns and — sharded — the boundary arrays) and optionally one
// extensions part (the materialized views, extensions.go). The
// manifest rename is the single atomic commit point of a checkpoint:
// part files are immutable once written and named by the checkpoint
// sequence that wrote them, so an incremental checkpoint publishes a
// new manifest referencing a mix of freshly written parts (the dirty
// shards) and parts carried over from earlier checkpoints (the clean
// ones). A part file not referenced by the committed manifest is
// garbage from a crashed or superseded checkpoint and is removed by
// the next Open/Checkpoint.
//
// Manifest layout (single CRC32C over the whole image, read fully):
//
//	magic "GVMANI01" | format u32 LE | kind u8 | pad u8[3] | k u32 LE |
//	seq u64 LE | write clock u64 LE | numNodes u64 LE | numEdges u64 LE |
//	entry count u32 LE | entries | crc32c u32 LE
//	entry: role u8 | shard idx u32 LE | seq u64 LE | size u64 LE

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"graphviews/internal/graph"
)

// Manifest file names.
const (
	manifestName = "MANIFEST"
	manifestTmp  = "MANIFEST.tmp"
)

// maniMagic opens the manifest file.
var maniMagic = [8]byte{'G', 'V', 'M', 'A', 'N', 'I', '0', '1'}

// maniFormat is the manifest format version; bump on layout change.
const maniFormat = 1

// maniHeaderLen is the fixed prefix before the entry table.
const maniHeaderLen = 8 + 4 + 1 + 3 + 4 + 8 + 8 + 8 + 8 + 4

// maniEntryLen is one encoded part entry.
const maniEntryLen = 1 + 4 + 8 + 8

// maxShardCount bounds k against corrupted manifests (mirrors the
// GVSNAP01 bound).
const maxShardCount = 1 << 20

// partEntry names one immutable part file from a manifest.
type partEntry struct {
	role byte
	idx  int    // shard index (0 for global and extension parts)
	seq  uint64 // checkpoint sequence that wrote the file
	size int64  // exact file length, verified at load
}

// name derives the part's file name; parts never share names across
// checkpoints because seq is strictly increasing.
func (e partEntry) name() string {
	switch e.role {
	case roleGlobal:
		return fmt.Sprintf("global-%d.part", e.seq)
	case roleExts:
		return fmt.Sprintf("exts-%d.part", e.seq)
	default:
		return fmt.Sprintf("shard-%d-%d.part", e.idx, e.seq)
	}
}

// manifest describes one committed checkpoint.
type manifest struct {
	kind     byte // kindFrozen or kindSharded
	k        int  // shard count (1 for kindFrozen)
	seq      uint64
	version  uint64 // maintained write clock at checkpoint time
	numNodes int
	numEdges int
	parts    []partEntry
}

// global returns the manifest's global part entry.
func (m *manifest) global() (partEntry, bool) { return m.find(roleGlobal, 0) }

// shard returns the manifest's entry for shard i.
func (m *manifest) shard(i int) (partEntry, bool) { return m.find(roleShard, i) }

// exts returns the manifest's extensions entry when one exists.
func (m *manifest) exts() (partEntry, bool) { return m.find(roleExts, 0) }

func (m *manifest) find(role byte, idx int) (partEntry, bool) {
	for _, e := range m.parts {
		if e.role == role && e.idx == idx {
			return e, true
		}
	}
	return partEntry{}, false
}

// encodeManifest renders m, checksummed.
func encodeManifest(m *manifest) []byte {
	buf := make([]byte, 0, maniHeaderLen+len(m.parts)*maniEntryLen+4)
	buf = append(buf, maniMagic[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, maniFormat)
	buf = append(buf, m.kind, 0, 0, 0)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m.k))
	buf = binary.LittleEndian.AppendUint64(buf, m.seq)
	buf = binary.LittleEndian.AppendUint64(buf, m.version)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(m.numNodes))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(m.numEdges))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(m.parts)))
	for _, e := range m.parts {
		buf = append(buf, e.role)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(e.idx))
		buf = binary.LittleEndian.AppendUint64(buf, e.seq)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(e.size))
	}
	return binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, castagnoli))
}

// decodeManifest parses and fully validates a manifest image: framing,
// checksum, bounds, and the entry-table shape (exactly one global part,
// exactly one part per shard 0..k-1, at most one extensions part).
// Manifests are committed atomically, so unlike a WAL tail any damage
// is an error, not survivable truncation.
func decodeManifest(data []byte) (*manifest, error) {
	if len(data) < maniHeaderLen+4 {
		return nil, fmt.Errorf("store: manifest truncated at %d bytes", len(data))
	}
	if [8]byte(data[:8]) != maniMagic {
		return nil, fmt.Errorf("store: not a manifest (magic %q)", data[:8])
	}
	body, sum := data[:len(data)-4], binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.Checksum(body, castagnoli) != sum {
		return nil, fmt.Errorf("store: manifest checksum mismatch")
	}
	if v := binary.LittleEndian.Uint32(data[8:]); v != maniFormat {
		return nil, fmt.Errorf("store: manifest format %d, this build reads %d", v, maniFormat)
	}
	m := &manifest{
		kind:     data[12],
		k:        int(binary.LittleEndian.Uint32(data[16:])),
		seq:      binary.LittleEndian.Uint64(data[20:]),
		version:  binary.LittleEndian.Uint64(data[28:]),
		numNodes: int(binary.LittleEndian.Uint64(data[36:])),
		numEdges: int(binary.LittleEndian.Uint64(data[44:])),
	}
	if m.kind != kindFrozen && m.kind != kindSharded {
		return nil, fmt.Errorf("store: unknown manifest kind %d", m.kind)
	}
	if m.k < 1 || m.k > maxShardCount {
		return nil, fmt.Errorf("store: manifest shard count %d out of range", m.k)
	}
	if m.kind == kindFrozen && m.k != 1 {
		return nil, fmt.Errorf("store: frozen manifest with %d shards", m.k)
	}
	if m.numNodes < 0 || m.numEdges < 0 {
		return nil, fmt.Errorf("store: manifest with negative sizes")
	}
	count := int(binary.LittleEndian.Uint32(data[52:]))
	if count < 0 || count > m.k+2 {
		return nil, fmt.Errorf("store: manifest entry count %d for %d shards", count, m.k)
	}
	if want := maniHeaderLen + count*maniEntryLen + 4; len(data) != want {
		return nil, fmt.Errorf("store: manifest is %d bytes, want %d for %d entries", len(data), want, count)
	}
	seenShard := make([]bool, m.k)
	var seenGlobal, seenExts bool
	off := maniHeaderLen
	for i := 0; i < count; i++ {
		e := partEntry{
			role: data[off],
			idx:  int(binary.LittleEndian.Uint32(data[off+1:])),
			seq:  binary.LittleEndian.Uint64(data[off+5:]),
			size: int64(binary.LittleEndian.Uint64(data[off+13:])),
		}
		off += maniEntryLen
		if e.seq > m.seq || e.size < 0 {
			return nil, fmt.Errorf("store: manifest entry %d out of range", i)
		}
		switch e.role {
		case roleGlobal:
			if seenGlobal || e.idx != 0 {
				return nil, fmt.Errorf("store: manifest entry %d: duplicate global part", i)
			}
			seenGlobal = true
		case roleExts:
			if seenExts || e.idx != 0 {
				return nil, fmt.Errorf("store: manifest entry %d: duplicate extensions part", i)
			}
			seenExts = true
		case roleShard:
			if e.idx < 0 || e.idx >= m.k || seenShard[e.idx] {
				return nil, fmt.Errorf("store: manifest entry %d: bad shard index %d", i, e.idx)
			}
			seenShard[e.idx] = true
		default:
			return nil, fmt.Errorf("store: manifest entry %d: unknown role %d", i, e.role)
		}
		m.parts = append(m.parts, e)
	}
	if !seenGlobal {
		return nil, fmt.Errorf("store: manifest missing its global part")
	}
	for i, ok := range seenShard {
		if !ok {
			return nil, fmt.Errorf("store: manifest missing shard %d", i)
		}
	}
	return m, nil
}

// partPlan is the checkpoint-side view of a backend: its kind, shape
// and the column sets the part writers consume. Building a plan may
// freeze a mutable graph (like Save).
type partPlan struct {
	kind    byte
	k       int
	n       int
	edges   int
	frozen  *graph.FrozenColumns
	sharded *graph.ShardedColumns
}

// planOf projects g into a part plan.
func planOf(g graph.Reader) *partPlan {
	switch b := g.(type) {
	case *graph.Sharded:
		c := b.Columns()
		return &partPlan{kind: kindSharded, k: c.K, n: len(c.NodeLabel), edges: c.NumEdges, sharded: c}
	case *graph.Frozen:
		c := b.Columns()
		return &partPlan{kind: kindFrozen, k: 1, n: len(c.NodeLabel), edges: c.NumEdges, frozen: c}
	default:
		c := graph.Freeze(g).Columns()
		return &partPlan{kind: kindFrozen, k: 1, n: len(c.NodeLabel), edges: c.NumEdges, frozen: c}
	}
}

// writeGlobalPart emits the label-universe columns shared by every
// shard. These change only when the node set or label universe does —
// never under edge updates — so incremental checkpoints carry the
// global part over untouched.
func (p *partPlan) writeGlobalPart(pw *partWriter, seq uint64) {
	pw.header(roleGlobal, seq)
	if p.kind == kindSharded {
		pw.pstrings(ptagLabels, p.sharded.Labels)
		pw.pstrings(ptagCatKeys, p.sharded.CatKeys)
		putPI32s(pw, ptagNodeLabel, p.sharded.NodeLabel)
		return
	}
	pw.pstrings(ptagLabels, p.frozen.Labels)
	pw.pstrings(ptagCatKeys, p.frozen.CatKeys)
	putPI32s(pw, ptagNodeLabel, p.frozen.NodeLabel)
}

// writeShardPart emits shard i's columns. A frozen backend is a single
// "shard" holding the whole CSR.
func (p *partPlan) writeShardPart(pw *partWriter, i int, seq uint64) {
	pw.header(roleShard, seq)
	if p.kind == kindSharded {
		sc := &p.sharded.Shards[i]
		pw.pu64(ptagShardN, uint64(sc.N))
		putPI32s(pw, ptagOutOff, sc.OutOff)
		putPI32s(pw, ptagOutAdj, sc.OutAdj)
		putPI32s(pw, ptagInOff, sc.InOff)
		putPI32s(pw, ptagInAdj, sc.InAdj)
		putPI32s(pw, ptagLabelOff, sc.LabelOff)
		putPI32s(pw, ptagLabelIdx, sc.LabelIdx)
		putPI32s(pw, ptagBoundSrc, sc.BoundarySrc)
		putPI32s(pw, ptagBoundDst, sc.BoundaryDst)
		putPI32s(pw, ptagAttrOff, sc.AttrOff)
		pw.pstrings(ptagAttrKey, sc.AttrKey)
		pw.pi64s(ptagAttrVal, sc.AttrVal)
		return
	}
	c := p.frozen
	putPI32s(pw, ptagOutOff, c.OutOff)
	putPI32s(pw, ptagOutAdj, c.OutAdj)
	putPI32s(pw, ptagInOff, c.InOff)
	putPI32s(pw, ptagInAdj, c.InAdj)
	putPI32s(pw, ptagLabelOff, c.LabelOff)
	putPI32s(pw, ptagLabelIdx, c.LabelIdx)
	putPI32s(pw, ptagAttrOff, c.AttrOff)
	pw.pstrings(ptagAttrKey, c.AttrKey)
	pw.pi64s(ptagAttrVal, c.AttrVal)
}

// writePartFile writes one part through fill into its final name (no
// tmp: the manifest rename is the commit point, and an orphaned or
// half-written part is collected at the next Open), fsyncs it, and
// returns the completed entry.
func writePartFile(dir string, e partEntry, fill func(pw *partWriter)) (partEntry, error) {
	path := filepath.Join(dir, e.name())
	f, err := os.Create(path)
	if err != nil {
		return e, err
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	pw := &partWriter{w: bw}
	fill(pw)
	err = pw.err
	if err == nil {
		err = bw.Flush()
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(path)
		return e, fmt.Errorf("store: writing %s: %w", e.name(), err)
	}
	e.size = pw.n
	return e, nil
}

// readPart loads one manifest-referenced part image, mapped read-only
// under Options.Mmap (zero-copy column adoption) and read into memory
// otherwise.
func readPart(dir string, e partEntry, useMmap bool) (*partReader, error) {
	path := filepath.Join(dir, e.name())
	if useMmap && mmapSupported {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		st, err := f.Stat()
		if err == nil && st.Size() != e.size {
			err = fmt.Errorf("store: %s is %d bytes, manifest says %d", e.name(), st.Size(), e.size)
		}
		var data []byte
		if err == nil {
			data, err = mmapFile(f, e.size)
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return nil, err
		}
		return newPartReader(data, e.role, e.seq, true), nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if int64(len(data)) != e.size {
		return nil, fmt.Errorf("store: %s is %d bytes, manifest says %d", e.name(), len(data), e.size)
	}
	return newPartReader(data, e.role, e.seq, false), nil
}

// loadManifestGraph assembles the checkpointed backend (and, when
// present, the serialized view extensions) from a committed manifest.
func loadManifestGraph(dir string, m *manifest, useMmap bool) (graph.Reader, []ExtensionData, error) {
	ge, _ := m.global()
	gpr, err := readPart(dir, ge, useMmap)
	if err != nil {
		return nil, nil, err
	}
	labels := gpr.rstrings(ptagLabels)
	catKeys := gpr.rstrings(ptagCatKeys)
	nodeLabel := readPI32s[graph.LabelID](gpr, ptagNodeLabel)
	if err := gpr.done(); err != nil {
		return nil, nil, fmt.Errorf("%s: %w", ge.name(), err)
	}
	if len(nodeLabel) != m.numNodes {
		return nil, nil, fmt.Errorf("store: global part has %d nodes, manifest says %d", len(nodeLabel), m.numNodes)
	}

	var g graph.Reader
	if m.kind == kindSharded {
		c := &graph.ShardedColumns{
			Labels:    labels,
			CatKeys:   catKeys,
			NumEdges:  m.numEdges,
			K:         m.k,
			NodeLabel: nodeLabel,
			Shards:    make([]graph.ShardColumns, m.k),
		}
		for i := 0; i < m.k; i++ {
			se, _ := m.shard(i)
			pr, err := readPart(dir, se, useMmap)
			if err != nil {
				return nil, nil, err
			}
			sc := &c.Shards[i]
			sc.N = int(pr.ru64(ptagShardN))
			sc.OutOff = readPI32s[int32](pr, ptagOutOff)
			sc.OutAdj = readPI32s[graph.NodeID](pr, ptagOutAdj)
			sc.InOff = readPI32s[int32](pr, ptagInOff)
			sc.InAdj = readPI32s[graph.NodeID](pr, ptagInAdj)
			sc.LabelOff = readPI32s[int32](pr, ptagLabelOff)
			sc.LabelIdx = readPI32s[graph.NodeID](pr, ptagLabelIdx)
			sc.BoundarySrc = readPI32s[graph.NodeID](pr, ptagBoundSrc)
			sc.BoundaryDst = readPI32s[graph.NodeID](pr, ptagBoundDst)
			sc.AttrOff = readPI32s[int32](pr, ptagAttrOff)
			sc.AttrKey = pr.rstrings(ptagAttrKey)
			sc.AttrVal = pr.ri64s(ptagAttrVal)
			if err := pr.done(); err != nil {
				return nil, nil, fmt.Errorf("%s: %w", se.name(), err)
			}
		}
		g, err = graph.ShardedFromColumns(c)
	} else {
		se, _ := m.shard(0)
		pr, rerr := readPart(dir, se, useMmap)
		if rerr != nil {
			return nil, nil, rerr
		}
		c := &graph.FrozenColumns{
			Labels:    labels,
			CatKeys:   catKeys,
			NumEdges:  m.numEdges,
			NodeLabel: nodeLabel,
		}
		c.OutOff = readPI32s[int32](pr, ptagOutOff)
		c.OutAdj = readPI32s[graph.NodeID](pr, ptagOutAdj)
		c.InOff = readPI32s[int32](pr, ptagInOff)
		c.InAdj = readPI32s[graph.NodeID](pr, ptagInAdj)
		c.LabelOff = readPI32s[int32](pr, ptagLabelOff)
		c.LabelIdx = readPI32s[graph.NodeID](pr, ptagLabelIdx)
		c.AttrOff = readPI32s[int32](pr, ptagAttrOff)
		c.AttrKey = pr.rstrings(ptagAttrKey)
		c.AttrVal = pr.ri64s(ptagAttrVal)
		if err := pr.done(); err != nil {
			return nil, nil, fmt.Errorf("%s: %w", se.name(), err)
		}
		g, err = graph.FrozenFromColumns(c)
	}
	if err != nil {
		return nil, nil, err
	}

	var exts []ExtensionData
	if ee, ok := m.exts(); ok {
		pr, err := readPart(dir, ee, useMmap)
		if err != nil {
			return nil, nil, err
		}
		exts, err = readExtsPart(pr)
		if err != nil {
			return nil, nil, fmt.Errorf("%s: %w", ee.name(), err)
		}
	}
	return g, exts, nil
}
