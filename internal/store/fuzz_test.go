package store

// FuzzWALReplay is the satellite fuzz target: arbitrary bytes → record
// decoder → replay into maintained views must never panic, and corrupt
// frames must truncate the decode, never crash it. The seed corpus in
// testdata/fuzz/FuzzWALReplay pins a valid log, torn tails and framed
// garbage; make fuzz-smoke runs the target briefly in CI.

import (
	"bytes"
	"reflect"
	"testing"

	"graphviews/internal/graph"
	"graphviews/internal/view"
)

// fuzzLogImage frames batches exactly as the WAL writes them.
func fuzzLogImage(batches [][]view.EdgeUpdate) []byte {
	var buf []byte
	for _, b := range batches {
		buf = encodeRecord(buf, b)
	}
	return buf
}

func FuzzWALReplay(f *testing.F) {
	valid := fuzzLogImage(testBatches())
	f.Add(valid)
	f.Add(valid[:len(valid)-3])                    // torn mid-frame
	f.Add(append(bytes.Clone(valid), 0xde, 0xad))  // garbage tail
	f.Add(fuzzLogImage(nil))                       // empty log
	f.Add([]byte{9, 0, 0, 0, 0, 0, 0, 0, 3})       // bad CRC
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0}) // absurd length, short frame
	f.Add(bytes.Repeat([]byte{0}, 64))             // zero lengths
	f.Add(fuzzLogImage([][]view.EdgeUpdate{{{From: 1 << 30, To: -5, Delete: true}}}))

	f.Fuzz(func(t *testing.T, data []byte) {
		batches, good := DecodeAll(data)
		if good < 0 || good > int64(len(data)) {
			t.Fatalf("goodLen %d outside [0,%d]", good, len(data))
		}
		// The accepted prefix must re-decode to exactly the same batches
		// (this is what recovery truncation relies on).
		again, againLen := DecodeAll(data[:good])
		if againLen != good || !reflect.DeepEqual(again, batches) {
			t.Fatalf("prefix re-decode diverged: %d/%d bytes, %d/%d batches",
				againLen, good, len(again), len(batches))
		}
		// Replay into a small maintained view set: out-of-range ids are
		// dropped (as recovery does), everything else must apply cleanly.
		g := graph.New()
		for i := 0; i < 8; i++ {
			g.AddNode([]string{"person", "site", "item", "tag"}[i%4])
		}
		n := graph.NodeID(g.NumNodes())
		m := view.NewMaintained(g, crashViews())
		for _, b := range batches {
			in := b[:0:0]
			for _, up := range b {
				if up.From >= 0 && up.From < n && up.To >= 0 && up.To < n {
					in = append(in, up)
				}
			}
			m.ApplyBatch(in)
		}
	})
}
