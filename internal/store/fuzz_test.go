package store

// FuzzWALReplay is the satellite fuzz target: arbitrary bytes → record
// decoder → replay into maintained views must never panic, and corrupt
// frames must truncate the decode, never crash it. The seed corpus in
// testdata/fuzz/FuzzWALReplay pins a valid log, torn tails and framed
// garbage; make fuzz-smoke runs the target briefly in CI.

import (
	"bytes"
	"reflect"
	"testing"

	"graphviews/internal/graph"
	"graphviews/internal/view"
)

// fuzzLogImage frames batches exactly as the WAL writes them.
func fuzzLogImage(batches [][]view.EdgeUpdate) []byte {
	var buf []byte
	for _, b := range batches {
		buf = encodeRecord(buf, b)
	}
	return buf
}

func FuzzWALReplay(f *testing.F) {
	valid := fuzzLogImage(testBatches())
	f.Add(valid)
	f.Add(valid[:len(valid)-3])                    // torn mid-frame
	f.Add(append(bytes.Clone(valid), 0xde, 0xad))  // garbage tail
	f.Add(fuzzLogImage(nil))                       // empty log
	f.Add([]byte{9, 0, 0, 0, 0, 0, 0, 0, 3})       // bad CRC
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0}) // absurd length, short frame
	f.Add(bytes.Repeat([]byte{0}, 64))             // zero lengths
	f.Add(fuzzLogImage([][]view.EdgeUpdate{{{From: 1 << 30, To: -5, Delete: true}}}))

	f.Fuzz(func(t *testing.T, data []byte) {
		batches, good := DecodeAll(data)
		if good < 0 || good > int64(len(data)) {
			t.Fatalf("goodLen %d outside [0,%d]", good, len(data))
		}
		// The accepted prefix must re-decode to exactly the same batches
		// (this is what recovery truncation relies on).
		again, againLen := DecodeAll(data[:good])
		if againLen != good || !reflect.DeepEqual(again, batches) {
			t.Fatalf("prefix re-decode diverged: %d/%d bytes, %d/%d batches",
				againLen, good, len(again), len(batches))
		}
		// Replay into a small maintained view set: out-of-range ids are
		// dropped (as recovery does), everything else must apply cleanly.
		g := graph.New()
		for i := 0; i < 8; i++ {
			g.AddNode([]string{"person", "site", "item", "tag"}[i%4])
		}
		n := graph.NodeID(g.NumNodes())
		m := view.NewMaintained(g, crashViews())
		for _, b := range batches {
			in := b[:0:0]
			for _, up := range b {
				if up.From >= 0 && up.From < n && up.To >= 0 && up.To < n {
					in = append(in, up)
				}
			}
			m.ApplyBatch(in)
		}
	})
}

// FuzzSnapshotManifest: arbitrary bytes → decodeManifest must never
// panic; any image it accepts must re-encode and re-decode to the same
// manifest (the commit point relies on this being a fixed point). The
// seed corpus pins real frozen/sharded/extension manifests plus
// truncated and bit-flipped variants.
func FuzzSnapshotManifest(f *testing.F) {
	frozen := encodeManifest(&manifest{
		kind: kindFrozen, k: 1, seq: 3, version: 11, numNodes: 40, numEdges: 100,
		parts: []partEntry{
			{role: roleGlobal, seq: 3, size: 640},
			{role: roleShard, idx: 0, seq: 3, size: 4096},
			{role: roleExts, seq: 3, size: 512},
		},
	})
	sharded := encodeManifest(&manifest{
		kind: kindSharded, k: 3, seq: 7, version: 29, numNodes: 40, numEdges: 100,
		parts: []partEntry{
			{role: roleGlobal, seq: 7, size: 320},
			{role: roleShard, idx: 0, seq: 5, size: 1024},
			{role: roleShard, idx: 1, seq: 7, size: 2048},
			{role: roleShard, idx: 2, seq: 6, size: 512},
		},
	})
	f.Add(frozen)
	f.Add(sharded)
	f.Add(frozen[:len(frozen)-5])  // torn tail
	f.Add(sharded[:maniHeaderLen]) // header only, entries missing
	f.Add([]byte{})                // empty
	f.Add(bytes.Repeat([]byte{0}, maniHeaderLen+4))
	flipped := bytes.Clone(sharded)
	flipped[16] ^= 0x40 // absurd shard count, checksum now stale
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := decodeManifest(data)
		if err != nil {
			return
		}
		round := encodeManifest(m)
		again, err := decodeManifest(round)
		if err != nil {
			t.Fatalf("accepted manifest failed to round-trip: %v", err)
		}
		if !reflect.DeepEqual(again, m) {
			t.Fatalf("manifest round-trip diverged:\n got %+v\nwant %+v", again, m)
		}
		// Part names derived from accepted entries must be well-formed and
		// collision-free within one manifest.
		names := map[string]bool{}
		for _, e := range m.parts {
			n := e.name()
			if n == "" || names[n] {
				t.Fatalf("part name %q duplicated or empty", n)
			}
			names[n] = true
		}
	})
}
