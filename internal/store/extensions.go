package store

// Persisting materialized view extensions alongside the graph. A
// checkpoint that includes an extensions part captures V(G) at exactly
// the manifest's write clock, so a restart thaws graph + extensions
// together and recovery replays only the WAL tail through delta
// propagation — no rematerialization (the paper's cache stays warm
// across crashes). The serialization is definition-independent: each
// view is stored under its name plus the canonical fingerprint of its
// pattern (the DSL rendering, pattern.Pattern.String), and at boot the
// data binds against the serving view set only when both agree —
// a renamed, edited or reordered view set falls back cleanly to
// rematerialization.

import (
	"fmt"

	"graphviews/internal/graph"
	"graphviews/internal/simulation"
	"graphviews/internal/view"
)

// maxExtCount bounds the serialized view count against corruption.
const maxExtCount = 1 << 16

// ExtensionData is one view extension in storage-neutral form: the
// match relation of simulation.Result keyed by the view's name and its
// pattern's canonical fingerprint.
type ExtensionData struct {
	Name        string
	Fingerprint string
	Matched     bool
	Sim         [][]graph.NodeID
	Edges       []simulation.EdgeMatches
}

// snapshotExtensionData projects a published extension family into its
// storage form. The slices alias x (published extensions are immutable).
func snapshotExtensionData(x *view.Extensions) []ExtensionData {
	out := make([]ExtensionData, len(x.Exts))
	for i, e := range x.Exts {
		out[i] = ExtensionData{
			Name:        e.Def.Name,
			Fingerprint: e.Def.Pattern.String(),
			Matched:     e.Result.Matched,
			Sim:         e.Result.Sim,
			Edges:       e.Result.Edges,
		}
	}
	return out
}

// writeExtsPart emits one extensions part. Per view: meta (name and
// fingerprint), the matched bit, sim sets as a length table plus one
// concatenated column, and the edge match sets as length tables plus
// concatenated pair and distance columns. Length -1 marks a nil slice,
// so a round trip is exact (reflect.DeepEqual) on the match relation.
func writeExtsPart(pw *partWriter, seq uint64, exts []ExtensionData) {
	pw.header(roleExts, seq)
	pw.pu64(ptagExtCount, uint64(len(exts)))
	for i := range exts {
		e := &exts[i]
		pw.pstrings(ptagExtMeta, []string{e.Name, e.Fingerprint})
		matched := uint64(0)
		if e.Matched {
			matched = 1
		}
		pw.pu64(ptagExtMatched, matched)

		simLens := make([]int32, len(e.Sim))
		var simAll []graph.NodeID
		for j, row := range e.Sim {
			if row == nil {
				simLens[j] = -1
				continue
			}
			simLens[j] = int32(len(row))
			simAll = append(simAll, row...)
		}
		putPI32s(pw, ptagExtSimLens, simLens)
		putPI32s(pw, ptagExtSim, simAll)

		pairLens := make([]int32, len(e.Edges))
		distLens := make([]int32, len(e.Edges))
		var pairsAll []graph.NodeID
		var distsAll []int32
		for j := range e.Edges {
			em := &e.Edges[j]
			if em.Pairs == nil {
				pairLens[j] = -1
			} else {
				pairLens[j] = int32(len(em.Pairs))
				for _, p := range em.Pairs {
					pairsAll = append(pairsAll, p.Src, p.Dst)
				}
			}
			if em.Dists == nil {
				distLens[j] = -1
			} else {
				distLens[j] = int32(len(em.Dists))
				distsAll = append(distsAll, em.Dists...)
			}
		}
		putPI32s(pw, ptagExtPairLens, pairLens)
		putPI32s(pw, ptagExtPairs, pairsAll)
		putPI32s(pw, ptagExtDistLens, distLens)
		putPI32s(pw, ptagExtDists, distsAll)
	}
}

// readExtsPart decodes an extensions part. Concatenated columns are
// re-sliced with capped capacity, so (in zero-copy mode) a later append
// through a decoded row reallocates instead of writing into the mapping.
func readExtsPart(pr *partReader) ([]ExtensionData, error) {
	count := pr.ru64(ptagExtCount)
	if pr.err == nil && count > maxExtCount {
		pr.err = fmt.Errorf("store: %d serialized extensions exceeds the %d cap", count, maxExtCount)
	}
	if pr.err != nil {
		return nil, pr.err
	}
	exts := make([]ExtensionData, 0, count)
	for v := uint64(0); v < count; v++ {
		meta := pr.rstrings(ptagExtMeta)
		if pr.err == nil && len(meta) != 2 {
			pr.err = fmt.Errorf("store: extension %d meta has %d fields, want 2", v, len(meta))
		}
		if pr.err != nil {
			return nil, pr.err
		}
		e := ExtensionData{Name: meta[0], Fingerprint: meta[1], Matched: pr.ru64(ptagExtMatched) == 1}

		simLens := readPI32s[int32](pr, ptagExtSimLens)
		simAll := readPI32s[graph.NodeID](pr, ptagExtSim)
		e.Sim = make([][]graph.NodeID, len(simLens))
		off := 0
		for j, l := range simLens {
			if pr.err != nil {
				return nil, pr.err
			}
			if l < 0 {
				continue
			}
			if off+int(l) > len(simAll) {
				return nil, fmt.Errorf("store: extension %d sim sets overrun their column", v)
			}
			e.Sim[j] = simAll[off : off+int(l) : off+int(l)]
			off += int(l)
		}
		if pr.err == nil && off != len(simAll) {
			return nil, fmt.Errorf("store: extension %d sim column has %d unclaimed entries", v, len(simAll)-off)
		}

		pairLens := readPI32s[int32](pr, ptagExtPairLens)
		pairsAll := readPI32s[graph.NodeID](pr, ptagExtPairs)
		distLens := readPI32s[int32](pr, ptagExtDistLens)
		distsAll := readPI32s[int32](pr, ptagExtDists)
		if pr.err != nil {
			return nil, pr.err
		}
		if len(pairLens) != len(distLens) {
			return nil, fmt.Errorf("store: extension %d has %d pair tables but %d dist tables", v, len(pairLens), len(distLens))
		}
		if len(pairsAll)%2 != 0 {
			return nil, fmt.Errorf("store: extension %d pair column has odd length", v)
		}
		e.Edges = make([]simulation.EdgeMatches, len(pairLens))
		poff, doff := 0, 0
		for j := range e.Edges {
			if l := pairLens[j]; l >= 0 {
				if poff+int(l)*2 > len(pairsAll) {
					return nil, fmt.Errorf("store: extension %d match pairs overrun their column", v)
				}
				pairs := make([]simulation.Pair, l)
				for i := range pairs {
					pairs[i] = simulation.Pair{Src: pairsAll[poff+i*2], Dst: pairsAll[poff+i*2+1]}
				}
				e.Edges[j].Pairs = pairs
				poff += int(l) * 2
			}
			if l := distLens[j]; l >= 0 {
				if doff+int(l) > len(distsAll) {
					return nil, fmt.Errorf("store: extension %d distances overrun their column", v)
				}
				e.Edges[j].Dists = distsAll[doff : doff+int(l) : doff+int(l)]
				doff += int(l)
			}
		}
		if poff != len(pairsAll) || doff != len(distsAll) {
			return nil, fmt.Errorf("store: extension %d edge columns have unclaimed entries", v)
		}
		exts = append(exts, e)
	}
	if err := pr.done(); err != nil {
		return nil, err
	}
	return exts, nil
}

// BaseExtensions binds the checkpoint's serialized extensions to the
// serving view set: every definition must be matched by name, its
// pattern by canonical fingerprint, and the stored match relation by
// shape. It returns ok=false — recover by rematerializing — when the
// checkpoint carried no extensions or the view set changed since they
// were written. The returned extensions are consistent with Base() at
// BaseVersion(); the caller must thaw Base() into the graph it
// maintains, then replay Tail() through delta propagation.
func (s *Store) BaseExtensions(vs *view.Set) (*view.Extensions, bool) {
	if vs == nil || len(s.baseExts) == 0 || len(s.baseExts) != len(vs.Defs) {
		return nil, false
	}
	byName := make(map[string]*ExtensionData, len(s.baseExts))
	for i := range s.baseExts {
		byName[s.baseExts[i].Name] = &s.baseExts[i]
	}
	exts := make([]*view.Extension, len(vs.Defs))
	for i, d := range vs.Defs {
		ed := byName[d.Name]
		if ed == nil || ed.Fingerprint != d.Pattern.String() {
			return nil, false
		}
		if len(ed.Sim) != len(d.Pattern.Nodes) || len(ed.Edges) != len(d.Pattern.Edges) {
			return nil, false
		}
		exts[i] = &view.Extension{
			Def: d,
			Result: &simulation.Result{
				Pattern: d.Pattern,
				Matched: ed.Matched,
				Sim:     ed.Sim,
				Edges:   ed.Edges,
			},
		}
	}
	return &view.Extensions{Set: vs, Exts: exts}, true
}
