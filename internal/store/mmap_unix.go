//go:build unix

package store

// Read-only file mapping for the zero-copy snapshot load path
// (Options.Mmap). Mappings are deliberately never unmapped: the graph
// backend adopted from a mapped part lives for the rest of the process,
// and the columns alias the mapping directly, so the only safe munmap
// point is process exit. PROT_READ makes any accidental write through
// an adopted column a fault instead of silent checkpoint corruption.

import (
	"os"
	"syscall"
)

// mmapSupported reports whether this build can map part files.
const mmapSupported = true

// mmapFile maps size bytes of f read-only. The descriptor may be closed
// after the call; the mapping stays valid.
func mmapFile(f *os.File, size int64) ([]byte, error) {
	if size == 0 {
		return nil, nil
	}
	return syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
}
