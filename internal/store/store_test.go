package store

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"graphviews/internal/graph"
	"graphviews/internal/view"
)

// TestStoreFreshDir: opening an empty directory yields no base and an
// empty tail, and creates the layout.
func TestStoreFreshDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "data")
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer s.Close()
	if s.Base() != nil || s.BaseVersion() != 0 || len(s.Tail()) != 0 || s.TailUpdates() != 0 {
		t.Fatalf("fresh dir: base %v, tail %d", s.Base(), len(s.Tail()))
	}
	if _, err := os.Stat(filepath.Join(dir, "wal.log")); err != nil {
		t.Fatalf("wal.log not created: %v", err)
	}
}

// TestStoreCheckpointReopen walks the full lifecycle: append, checkpoint
// (which compacts the WAL), append more, reopen — the base is the
// checkpointed backend and the tail holds exactly the post-checkpoint
// batches, still replayable.
func TestStoreCheckpointReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	pre := [][]view.EdgeUpdate{{{From: 0, To: 1}}, {{From: 1, To: 2}}}
	for _, b := range pre {
		if err := s.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	base := graph.Freeze(richGraph())
	if err := s.Checkpoint(base, nil, 11); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if s.WALSize() != 0 {
		t.Fatalf("WAL not compacted: %d bytes", s.WALSize())
	}
	post := [][]view.EdgeUpdate{
		{{From: 2, To: 3}},
		{{From: 3, To: 4}, {From: 0, To: 1, Delete: true}},
	}
	for _, b := range post {
		if err := s.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	if !reflect.DeepEqual(s2.Base(), base) {
		t.Fatal("reopened base differs from the checkpointed backend")
	}
	if s2.BaseVersion() != 11 {
		t.Fatalf("BaseVersion = %d, want 11", s2.BaseVersion())
	}
	if !reflect.DeepEqual(s2.Tail(), post) {
		t.Fatalf("tail = %+v, want the post-checkpoint batches", s2.Tail())
	}
	if s2.TailUpdates() != 3 {
		t.Fatalf("TailUpdates = %d, want 3", s2.TailUpdates())
	}
}

// TestStoreCheckpointSharded: a sharded backend checkpoints and reopens
// shard-for-shard identical.
func TestStoreCheckpointSharded(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	base := graph.Shard(richGraph(), 3)
	if err := s.Checkpoint(base, nil, 5); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if !reflect.DeepEqual(s2.Base(), base) {
		t.Fatal("sharded base did not survive the checkpoint")
	}
}

// TestStoreStaleTmpRemoved: a temporary snapshot left by a checkpoint
// that crashed before its rename is discarded; the real snapshot wins.
func TestStoreStaleTmpRemoved(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	base := graph.Freeze(richGraph())
	if err := s.Checkpoint(base, nil, 2); err != nil {
		t.Fatal(err)
	}
	s.Close()
	tmp := filepath.Join(dir, "current.snap.tmp")
	if err := os.WriteFile(tmp, []byte("half-written checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen with stale tmp: %v", err)
	}
	defer s2.Close()
	if !reflect.DeepEqual(s2.Base(), base) {
		t.Fatal("stale tmp displaced the real checkpoint")
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatalf("stale tmp not removed: %v", err)
	}
}

// TestStoreCorruptSnapshotFails: a damaged checkpoint — whether the
// manifest itself or any part file it references — is a hard open error,
// never silently served as an empty graph.
func TestStoreCorruptSnapshotFails(t *testing.T) {
	for _, target := range []string{"MANIFEST", "part"} {
		target := target
		t.Run(target, func(t *testing.T) {
			dir := t.TempDir()
			s, err := Open(dir, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Checkpoint(graph.Freeze(richGraph()), nil, 1); err != nil {
				t.Fatal(err)
			}
			s.Close()
			path := filepath.Join(dir, manifestName)
			if target == "part" {
				names, err := filepath.Glob(filepath.Join(dir, "shard-*.part"))
				if err != nil || len(names) == 0 {
					t.Fatalf("no shard part written: %v (%v)", names, err)
				}
				path = names[0]
			}
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			data[len(data)/2] ^= 0xff
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
			if _, err := Open(dir, Options{}); err == nil {
				t.Fatalf("corrupt %s opened successfully", target)
			}
		})
	}
}
