// Package store persists the serving state of graphviews: per-shard
// checkpoint part files committed by a manifest (manifest.go, parts.go;
// the legacy single-file codec lives on in snapshot.go for migration),
// serialized view extensions (extensions.go) and a write-ahead log of
// edge updates (this file), combined by Store (store.go) into an
// open → recover → append → checkpoint lifecycle with
// torn-tail-tolerant crash recovery.
//
// The WAL is a flat file of length-prefixed, CRC32C-framed records:
//
//	[payload length u32 LE][crc32c(payload) u32 LE][payload]
//
// where a payload is one update operation — a unit insert (opAdd), a
// unit delete (opDel) or a batch (opBatch) of flagged (from,to) pairs.
// Appends happen before the serving layer acknowledges a write;
// durability of an acknowledged append is governed by the sync policy
// (per-record fsync, group-commit interval, or none). Recovery decodes
// records from the start and truncates the file at the first bad frame
// — a torn tail from a crash mid-write loses only the unsynced suffix,
// never the log.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"graphviews/internal/graph"
	"graphviews/internal/view"
)

// Record payload op codes.
const (
	opAdd   = 1 // unit edge insert: from u32, to u32
	opDel   = 2 // unit edge delete: from u32, to u32
	opBatch = 3 // batch: count u32, then count × (flags u8, from u32, to u32)
)

// frameHeaderLen is the length prefix plus the CRC32C of the payload.
const frameHeaderLen = 8

// maxRecordBytes caps a single record payload. A batch is bounded by
// the serving layer's request body limit (1 MiB of text lines), so any
// length prefix beyond this is corruption, not data — the decoder
// treats it as a bad frame and truncates.
const maxRecordBytes = 1 << 24

// castagnoli is the CRC32C polynomial table (hardware-accelerated on
// amd64/arm64), the same checksum family used by ext4 and RocksDB WALs.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// SyncMode selects when an appended record is forced to stable storage.
type SyncMode uint8

const (
	// SyncAlways fsyncs after every appended record before Append
	// returns: an acknowledged write survives any crash.
	SyncAlways SyncMode = iota
	// SyncNone never fsyncs explicitly; the OS flushes on its own
	// schedule. A crash may lose acknowledged-but-unsynced records (the
	// log still recovers to a consistent prefix).
	SyncNone
	// SyncInterval group-commits: a background flusher fsyncs the log
	// every Interval when records are pending, bounding the loss window
	// of a crash to one interval.
	SyncInterval
)

// SyncPolicy is a SyncMode plus the group-commit period for
// SyncInterval.
type SyncPolicy struct {
	// Mode selects the fsync discipline.
	Mode SyncMode
	// Interval is the group-commit period (SyncInterval only).
	Interval time.Duration
}

// ParseSyncPolicy parses the -wal-sync flag syntax: "always", "none",
// or a positive duration like "50ms" selecting group commit on that
// interval. The empty string means always (the safe default).
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "", "always":
		return SyncPolicy{Mode: SyncAlways}, nil
	case "none":
		return SyncPolicy{Mode: SyncNone}, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil || d <= 0 {
		return SyncPolicy{}, fmt.Errorf("store: bad sync policy %q (want always, none, or a positive interval like 50ms)", s)
	}
	return SyncPolicy{Mode: SyncInterval, Interval: d}, nil
}

// String renders the policy in ParseSyncPolicy syntax.
func (p SyncPolicy) String() string {
	switch p.Mode {
	case SyncNone:
		return "none"
	case SyncInterval:
		return p.Interval.String()
	default:
		return "always"
	}
}

// WALStats counts what the log did, cumulatively since open. All fields
// are atomics: the serving layer's metrics endpoint reads them while
// writers append.
type WALStats struct {
	// AppendedRecords counts records (frames) appended.
	AppendedRecords atomic.Int64
	// AppendedBytes counts framed bytes appended.
	AppendedBytes atomic.Int64
	// AppendErrors counts failed appends (write or fsync errors). A
	// failed append is rolled back from the log, so an error reported to
	// the caller never leaves a half-acknowledged record behind.
	AppendErrors atomic.Int64
	// Fsyncs counts explicit fsyncs of the log file.
	Fsyncs atomic.Int64
	// FsyncNs is the cumulative fsync wall time in nanoseconds.
	FsyncNs atomic.Int64
	// TruncatedTails counts recoveries that found and cut a bad tail.
	TruncatedTails atomic.Int64
	// TruncatedBytes counts the bytes those truncations discarded.
	TruncatedBytes atomic.Int64
}

// WAL is an append-only write-ahead log of edge-update records. Append
// and Sync are safe for concurrent use; the serving layer additionally
// serializes appends with its write mutex so log order equals apply
// order.
type WAL struct {
	policy SyncPolicy
	stats  WALStats

	mu      sync.Mutex
	f       *os.File            // guarded by mu
	size    int64               // guarded by mu; bytes of valid log
	dirty   bool                // guarded by mu; bytes written since last fsync
	failed  bool                // guarded by mu; a rollback failed, log integrity unknown
	syncErr error               // guarded by mu; sticky group-commit fsync failure (see flusher)
	syncFn  func() error        // guarded by mu; fsync implementation, nil = f.Sync (test seam)
	closed  bool                // guarded by mu
	observe func(time.Duration) // guarded by mu; per-fsync latency hook
	buf     []byte              // guarded by mu; frame scratch

	done chan struct{}
	wg   sync.WaitGroup
}

// errWALFailed marks a log whose post-error rollback failed: the file
// may end in a half frame, so no further appends are accepted (recovery
// at next open will truncate the bad tail).
var errWALFailed = errors.New("store: WAL failed; reopen to recover")

// OpenWAL opens (creating if absent) the log at path, decodes every
// intact record, truncates the file at the first bad frame, and returns
// the log positioned for appending plus the decoded record batches in
// append order. A torn or corrupted tail is expected after a crash —
// it is counted in Stats, not an error.
func OpenWAL(path string, policy SyncPolicy) (*WAL, [][]view.EdgeUpdate, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, err
	}
	data, err := os.ReadFile(path)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	w := &WAL{policy: policy, f: f, done: make(chan struct{})}
	batches, good := DecodeAll(data)
	if good < int64(len(data)) {
		if err := f.Truncate(good); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("store: truncating bad WAL tail: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, err
		}
		w.stats.TruncatedTails.Add(1)
		w.stats.TruncatedBytes.Add(int64(len(data)) - good)
	}
	if _, err := f.Seek(good, 0); err != nil {
		f.Close()
		return nil, nil, err
	}
	w.size = good
	if policy.Mode == SyncInterval {
		w.wg.Add(1)
		go w.flusher()
	}
	return w, batches, nil
}

// DecodeAll decodes the longest valid record prefix of a WAL image: the
// batches of every intact frame in order, and the byte length of that
// prefix. Anything after goodLen — a torn frame from a crash mid-write,
// a corrupted length or checksum, an unknown op — is a bad tail the
// caller should truncate. DecodeAll never fails and never panics; on
// arbitrary input it simply returns a shorter prefix.
func DecodeAll(data []byte) (batches [][]view.EdgeUpdate, goodLen int64) {
	off := int64(0)
	for int64(len(data))-off >= frameHeaderLen {
		plen := int64(binary.LittleEndian.Uint32(data[off:]))
		if plen == 0 || plen > maxRecordBytes || int64(len(data))-off-frameHeaderLen < plen {
			break
		}
		payload := data[off+frameHeaderLen : off+frameHeaderLen+plen]
		if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(data[off+4:]) {
			break
		}
		batch, err := decodePayload(payload)
		if err != nil {
			break
		}
		batches = append(batches, batch)
		off += frameHeaderLen + plen
	}
	return batches, off
}

// decodePayload decodes one record payload into its update batch.
func decodePayload(p []byte) ([]view.EdgeUpdate, error) {
	if len(p) == 0 {
		return nil, errors.New("store: empty record payload")
	}
	switch op := p[0]; op {
	case opAdd, opDel:
		if len(p) != 9 {
			return nil, fmt.Errorf("store: unit record payload is %d bytes, want 9", len(p))
		}
		return []view.EdgeUpdate{{
			From:   graph.NodeID(binary.LittleEndian.Uint32(p[1:])),
			To:     graph.NodeID(binary.LittleEndian.Uint32(p[5:])),
			Delete: op == opDel,
		}}, nil
	case opBatch:
		if len(p) < 5 {
			return nil, errors.New("store: truncated batch record header")
		}
		count := binary.LittleEndian.Uint32(p[1:])
		if int64(len(p)) != 5+int64(count)*9 {
			return nil, fmt.Errorf("store: batch record of %d updates is %d bytes, want %d", count, len(p), 5+int64(count)*9)
		}
		batch := make([]view.EdgeUpdate, count)
		off := 5
		for i := range batch {
			flags := p[off]
			if flags > 1 {
				return nil, fmt.Errorf("store: unknown update flags %#x", flags)
			}
			batch[i] = view.EdgeUpdate{
				From:   graph.NodeID(binary.LittleEndian.Uint32(p[off+1:])),
				To:     graph.NodeID(binary.LittleEndian.Uint32(p[off+5:])),
				Delete: flags == 1,
			}
			off += 9
		}
		return batch, nil
	default:
		return nil, fmt.Errorf("store: unknown record op %d", op)
	}
}

// encodeRecord appends the framed record for batch to dst. A
// single-update batch uses the compact unit ops; larger batches the
// counted batch op.
func encodeRecord(dst []byte, batch []view.EdgeUpdate) []byte {
	var payload []byte
	if len(batch) == 1 {
		up := batch[0]
		op := byte(opAdd)
		if up.Delete {
			op = opDel
		}
		payload = append(make([]byte, 0, 9), op)
		payload = binary.LittleEndian.AppendUint32(payload, uint32(up.From))
		payload = binary.LittleEndian.AppendUint32(payload, uint32(up.To))
	} else {
		payload = append(make([]byte, 0, 5+9*len(batch)), opBatch)
		payload = binary.LittleEndian.AppendUint32(payload, uint32(len(batch)))
		for _, up := range batch {
			flags := byte(0)
			if up.Delete {
				flags = 1
			}
			payload = append(payload, flags)
			payload = binary.LittleEndian.AppendUint32(payload, uint32(up.From))
			payload = binary.LittleEndian.AppendUint32(payload, uint32(up.To))
		}
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.Checksum(payload, castagnoli))
	return append(dst, payload...)
}

// Append frames batch as one record, writes it to the log and — under
// SyncAlways — fsyncs before returning. On any error the record is
// rolled back (the file truncated to its pre-append length), so an
// Append that returns an error guarantees the record is not in the
// durable log; if even the rollback fails, the WAL is marked failed and
// every later Append errors until the file is reopened.
func (w *WAL) Append(batch []view.EdgeUpdate) error {
	if len(batch) == 0 {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		w.stats.AppendErrors.Add(1)
		return errors.New("store: WAL closed")
	}
	if w.failed {
		w.stats.AppendErrors.Add(1)
		return errWALFailed
	}
	if w.syncErr != nil {
		// A group-commit fsync failed in the background: records acked
		// since the previous successful fsync may never have reached disk,
		// and after a failed fsync the kernel may have dropped the dirty
		// pages — a later fsync succeeding proves nothing. Refuse further
		// appends (the serving layer returns 503 wal_append_failed) until
		// a checkpoint makes the log's content irrelevant (Reset).
		w.stats.AppendErrors.Add(1)
		return fmt.Errorf("store: WAL group-commit fsync failed: %w", w.syncErr)
	}
	w.buf = encodeRecord(w.buf[:0], batch)
	if _, err := w.f.Write(w.buf); err != nil {
		w.rollbackLocked()
		return fmt.Errorf("store: WAL append: %w", err)
	}
	w.size += int64(len(w.buf))
	if w.policy.Mode == SyncAlways {
		if err := w.fsyncLocked(); err != nil {
			w.size -= int64(len(w.buf))
			w.rollbackLocked()
			return fmt.Errorf("store: WAL fsync: %w", err)
		}
	} else {
		w.dirty = true
	}
	w.stats.AppendedRecords.Add(1)
	w.stats.AppendedBytes.Add(int64(len(w.buf)))
	return nil
}

// rollbackLocked cuts the file back to the last acknowledged length
// after a failed append; if the cut itself fails the log is marked
// failed. Caller holds w.mu and counts the append error.
//
//gvcheck:holds mu the *Locked-helper idiom: Append holds w.mu
func (w *WAL) rollbackLocked() {
	w.stats.AppendErrors.Add(1)
	if err := w.f.Truncate(w.size); err != nil {
		w.failed = true
		return
	}
	if _, err := w.f.Seek(w.size, 0); err != nil {
		w.failed = true
	}
}

// fsyncLocked syncs the file, timing the call into the stats and the
// observer hook. Caller holds w.mu.
//
//gvcheck:holds mu the *Locked-helper idiom: Append/Sync/flusher hold w.mu
func (w *WAL) fsyncLocked() error {
	start := time.Now()
	sync := w.syncFn
	if sync == nil {
		sync = w.f.Sync
	}
	err := sync()
	d := time.Since(start)
	w.stats.Fsyncs.Add(1)
	w.stats.FsyncNs.Add(int64(d))
	if w.observe != nil {
		w.observe(d)
	}
	w.dirty = false
	return err
}

// flusher is the group-commit goroutine of SyncInterval: it fsyncs the
// log every interval while unsynced records are pending.
func (w *WAL) flusher() {
	defer w.wg.Done()
	t := time.NewTicker(w.policy.Interval)
	defer t.Stop()
	for {
		select {
		case <-w.done:
			return
		case <-t.C:
			w.mu.Lock()
			if w.dirty && !w.closed && !w.failed && w.syncErr == nil {
				if err := w.fsyncLocked(); err != nil {
					// Sticky: the next Append (and Close) must surface this —
					// acked records may be lost, so silently acking more
					// unlogged updates would break the durability contract.
					w.syncErr = err
				}
			}
			w.mu.Unlock()
		}
	}
}

// Sync forces an fsync of the log, regardless of policy.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return errors.New("store: WAL closed")
	}
	return w.fsyncLocked()
}

// Reset truncates the log to empty — checkpoint compaction: every
// logged record is covered by the snapshot just checkpointed, so the
// log restarts from zero. The truncation is fsynced.
func (w *WAL) Reset() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return errors.New("store: WAL closed")
	}
	if err := w.f.Truncate(0); err != nil {
		w.failed = true
		return err
	}
	if _, err := w.f.Seek(0, 0); err != nil {
		w.failed = true
		return err
	}
	w.size = 0
	w.failed = false
	// A sticky background fsync error is cleared too: the checkpoint
	// that triggered this Reset covers every logged record, so whether
	// the failed fsync lost any of them no longer matters.
	w.syncErr = nil
	return w.fsyncLocked()
}

// Size reports the current valid log length in bytes.
func (w *WAL) Size() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.size
}

// Stats exposes the log's counters (live atomics, safe to read
// concurrently with appends).
func (w *WAL) Stats() *WALStats { return &w.stats }

// SetObserver registers fn to run after every fsync with its latency
// (the serving layer's fsync histogram). Pass nil to remove.
func (w *WAL) SetObserver(fn func(time.Duration)) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.observe = fn
}

// Close stops the group-commit flusher, fsyncs any pending bytes and
// closes the file. Appends after Close fail.
func (w *WAL) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	err := w.syncErr
	if w.dirty && !w.failed && err == nil {
		err = w.fsyncLocked()
	}
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.mu.Unlock()
	close(w.done)
	w.wg.Wait()
	return err
}
