//go:build !unix

package store

// Stub for platforms without a memory-mapping syscall shim: the store
// falls back to reading part files into memory (Open ignores
// Options.Mmap when mmapSupported is false).

import (
	"errors"
	"os"
)

// mmapSupported reports whether this build can map part files.
const mmapSupported = false

// mmapFile is never called when mmapSupported is false.
func mmapFile(f *os.File, size int64) ([]byte, error) {
	return nil, errors.New("store: mmap unsupported on this platform")
}
