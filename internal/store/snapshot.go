package store

// Binary checkpoint snapshots of the immutable graph backends, written
// in their existing flat-array layout (graph.FrozenColumns /
// graph.ShardedColumns): a fixed header followed by CRC32C-framed
// sections, one per column — CSR offsets and edges in both directions,
// the label partition, the attribute columns, and (sharded) the
// per-shard boundary arrays. Loading reads each section into its slice
// and adopts it through graph.FrozenFromColumns/ShardedFromColumns: no
// CSR rebuild, no re-sorting, no re-interning. Save∘Load is the
// identity on the backend (reflect.DeepEqual, pinned by tests).
//
// Layout:
//
//	magic "GVSNAP01" | format u32 LE | kind u8 | write clock u64 LE
//	section*            — [tag u8][payload length u64 LE][payload][crc32c u32 LE]
//
// Sections appear in a fixed order per kind; the reader demands exactly
// that order, so a reordered or spliced file fails fast.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"graphviews/internal/graph"
)

// snapMagic opens every snapshot file.
var snapMagic = [8]byte{'G', 'V', 'S', 'N', 'A', 'P', '0', '1'}

// snapFormat is the format version; bump on any layout change.
const snapFormat = 1

// Snapshot kinds.
const (
	kindFrozen  = 1
	kindSharded = 2
)

// Section tags, in write order.
const (
	secLabels    = 1  // strings: interner names, id order
	secCatKeys   = 2  // strings: categorical attribute keys, sorted
	secNumEdges  = 3  // u64: |E|
	secNodeLabel = 4  // i32s: node id -> label id
	secOutOff    = 5  // i32s: forward CSR offsets
	secOutAdj    = 6  // i32s: forward CSR adjacency
	secInOff     = 7  // i32s: reverse CSR offsets
	secInAdj     = 8  // i32s: reverse CSR adjacency
	secLabelOff  = 9  // i32s: label partition offsets
	secLabelIdx  = 10 // i32s: label partition index
	secAttrOff   = 11 // i32s: attribute column offsets
	secAttrKey   = 12 // strings: attribute keys, per-node sorted
	secAttrVal   = 13 // i64s: attribute values
	secShardK    = 14 // u64: shard count (sharded only)
	secShardN    = 15 // u64: owned node count, opens each shard block
	secBoundSrc  = 16 // i32s: boundary edge sources (sharded only)
	secBoundDst  = 17 // i32s: boundary edge targets (sharded only)
)

// maxSectionBytes caps one section payload, rejecting absurd corrupted
// lengths before any allocation happens (2 GiB bounds a single column
// at half a billion edges — far past serving scale).
const maxSectionBytes = 1 << 31

// Save writes g as a checkpoint snapshot carrying the given write-clock
// version. *Frozen and *Sharded are written column-for-column in their
// own layout; any other Reader is frozen first. The writer should be
// buffered; Save does not fsync (Store.Checkpoint owns durability).
func Save(w io.Writer, g graph.Reader, version uint64) error {
	sw := &sectionWriter{w: w}
	switch b := g.(type) {
	case *graph.Sharded:
		sw.header(kindSharded, version)
		saveSharded(sw, b.Columns())
	case *graph.Frozen:
		sw.header(kindFrozen, version)
		saveFrozen(sw, b.Columns())
	default:
		sw.header(kindFrozen, version)
		saveFrozen(sw, graph.Freeze(g).Columns())
	}
	return sw.err
}

// saveFrozen writes the column sections of a frozen snapshot.
func saveFrozen(sw *sectionWriter, c *graph.FrozenColumns) {
	sw.strings(secLabels, c.Labels)
	sw.strings(secCatKeys, c.CatKeys)
	sw.u64(secNumEdges, uint64(c.NumEdges))
	putI32s(sw, secNodeLabel, c.NodeLabel)
	putI32s(sw, secOutOff, c.OutOff)
	putI32s(sw, secOutAdj, c.OutAdj)
	putI32s(sw, secInOff, c.InOff)
	putI32s(sw, secInAdj, c.InAdj)
	putI32s(sw, secLabelOff, c.LabelOff)
	putI32s(sw, secLabelIdx, c.LabelIdx)
	putI32s(sw, secAttrOff, c.AttrOff)
	sw.strings(secAttrKey, c.AttrKey)
	sw.i64s(secAttrVal, c.AttrVal)
}

// saveSharded writes the global columns, then one block per shard.
func saveSharded(sw *sectionWriter, c *graph.ShardedColumns) {
	sw.strings(secLabels, c.Labels)
	sw.strings(secCatKeys, c.CatKeys)
	sw.u64(secNumEdges, uint64(c.NumEdges))
	sw.u64(secShardK, uint64(c.K))
	putI32s(sw, secNodeLabel, c.NodeLabel)
	for i := range c.Shards {
		sc := &c.Shards[i]
		sw.u64(secShardN, uint64(sc.N))
		putI32s(sw, secOutOff, sc.OutOff)
		putI32s(sw, secOutAdj, sc.OutAdj)
		putI32s(sw, secInOff, sc.InOff)
		putI32s(sw, secInAdj, sc.InAdj)
		putI32s(sw, secLabelOff, sc.LabelOff)
		putI32s(sw, secLabelIdx, sc.LabelIdx)
		putI32s(sw, secBoundSrc, sc.BoundarySrc)
		putI32s(sw, secBoundDst, sc.BoundaryDst)
		putI32s(sw, secAttrOff, sc.AttrOff)
		sw.strings(secAttrKey, sc.AttrKey)
		sw.i64s(secAttrVal, sc.AttrVal)
	}
}

// Load reads a checkpoint snapshot: the backend (a *Frozen or *Sharded
// exactly as saved) and the write-clock version it carries. Every
// section checksum and the backend's shape invariants are verified; any
// mismatch is an error (checkpoints are written atomically, so unlike a
// WAL tail a damaged snapshot is not survivable truncation).
func Load(r io.Reader) (graph.Reader, uint64, error) {
	sr := &sectionReader{r: bufio.NewReader(r)}
	var hdr [21]byte
	if _, err := io.ReadFull(sr.r, hdr[:]); err != nil {
		return nil, 0, fmt.Errorf("store: snapshot header: %w", err)
	}
	if [8]byte(hdr[:8]) != snapMagic {
		return nil, 0, fmt.Errorf("store: not a snapshot file (magic %q)", hdr[:8])
	}
	if v := binary.LittleEndian.Uint32(hdr[8:]); v != snapFormat {
		return nil, 0, fmt.Errorf("store: snapshot format %d, this build reads %d", v, snapFormat)
	}
	kind := hdr[12]
	version := binary.LittleEndian.Uint64(hdr[13:])
	switch kind {
	case kindFrozen:
		g, err := loadFrozen(sr)
		return g, version, err
	case kindSharded:
		g, err := loadSharded(sr)
		return g, version, err
	default:
		return nil, 0, fmt.Errorf("store: unknown snapshot kind %d", kind)
	}
}

// loadFrozen reads the frozen column sections and adopts them.
func loadFrozen(sr *sectionReader) (*graph.Frozen, error) {
	c := &graph.FrozenColumns{}
	c.Labels = sr.strings(secLabels)
	c.CatKeys = sr.strings(secCatKeys)
	c.NumEdges = int(sr.u64(secNumEdges))
	c.NodeLabel = decI32[graph.LabelID](sr, secNodeLabel)
	c.OutOff = decI32[int32](sr, secOutOff)
	c.OutAdj = decI32[graph.NodeID](sr, secOutAdj)
	c.InOff = decI32[int32](sr, secInOff)
	c.InAdj = decI32[graph.NodeID](sr, secInAdj)
	c.LabelOff = decI32[int32](sr, secLabelOff)
	c.LabelIdx = decI32[graph.NodeID](sr, secLabelIdx)
	c.AttrOff = decI32[int32](sr, secAttrOff)
	c.AttrKey = sr.strings(secAttrKey)
	c.AttrVal = sr.i64s(secAttrVal)
	if sr.err != nil {
		return nil, sr.err
	}
	return graph.FrozenFromColumns(c)
}

// loadSharded reads the global sections and the per-shard blocks.
func loadSharded(sr *sectionReader) (*graph.Sharded, error) {
	c := &graph.ShardedColumns{}
	c.Labels = sr.strings(secLabels)
	c.CatKeys = sr.strings(secCatKeys)
	c.NumEdges = int(sr.u64(secNumEdges))
	k := sr.u64(secShardK)
	if sr.err == nil && (k < 1 || k > 1<<20) {
		sr.err = fmt.Errorf("store: snapshot shard count %d out of range", k)
	}
	c.NodeLabel = decI32[graph.LabelID](sr, secNodeLabel)
	if sr.err != nil {
		return nil, sr.err
	}
	c.K = int(k)
	c.Shards = make([]graph.ShardColumns, k)
	for i := range c.Shards {
		sc := &c.Shards[i]
		sc.N = int(sr.u64(secShardN))
		sc.OutOff = decI32[int32](sr, secOutOff)
		sc.OutAdj = decI32[graph.NodeID](sr, secOutAdj)
		sc.InOff = decI32[int32](sr, secInOff)
		sc.InAdj = decI32[graph.NodeID](sr, secInAdj)
		sc.LabelOff = decI32[int32](sr, secLabelOff)
		sc.LabelIdx = decI32[graph.NodeID](sr, secLabelIdx)
		sc.BoundarySrc = decI32[graph.NodeID](sr, secBoundSrc)
		sc.BoundaryDst = decI32[graph.NodeID](sr, secBoundDst)
		sc.AttrOff = decI32[int32](sr, secAttrOff)
		sc.AttrKey = sr.strings(secAttrKey)
		sc.AttrVal = sr.i64s(secAttrVal)
		if sr.err != nil {
			return nil, sr.err
		}
	}
	return graph.ShardedFromColumns(c)
}

// sectionWriter frames section payloads; the first error sticks and
// turns every later call into a no-op.
type sectionWriter struct {
	w   io.Writer
	buf []byte
	err error
}

// header writes the snapshot file header.
func (sw *sectionWriter) header(kind byte, version uint64) {
	var hdr [21]byte
	copy(hdr[:], snapMagic[:])
	binary.LittleEndian.PutUint32(hdr[8:], snapFormat)
	hdr[12] = kind
	binary.LittleEndian.PutUint64(hdr[13:], version)
	_, sw.err = sw.w.Write(hdr[:])
}

// section frames and writes one payload (already built in sw.buf).
func (sw *sectionWriter) section(tag byte) {
	if sw.err != nil {
		return
	}
	var frame [13]byte
	frame[0] = tag
	binary.LittleEndian.PutUint64(frame[1:], uint64(len(sw.buf)))
	if _, sw.err = sw.w.Write(frame[:9]); sw.err != nil {
		return
	}
	if _, sw.err = sw.w.Write(sw.buf); sw.err != nil {
		return
	}
	binary.LittleEndian.PutUint32(frame[9:], crc32.Checksum(sw.buf, castagnoli))
	_, sw.err = sw.w.Write(frame[9:13])
}

// u64 writes a scalar section.
func (sw *sectionWriter) u64(tag byte, v uint64) {
	sw.buf = binary.LittleEndian.AppendUint64(sw.buf[:0], v)
	sw.section(tag)
}

// putI32s writes a 32-bit integer column section (NodeID, LabelID,
// int32 — a free function because methods cannot be generic).
func putI32s[T ~int32](sw *sectionWriter, tag byte, s []T) {
	sw.buf = binary.LittleEndian.AppendUint32(sw.buf[:0], uint32(len(s)))
	for _, v := range s {
		sw.buf = binary.LittleEndian.AppendUint32(sw.buf, uint32(v))
	}
	sw.section(tag)
}

// i64s writes a 64-bit integer column section.
func (sw *sectionWriter) i64s(tag byte, s []int64) {
	sw.buf = binary.LittleEndian.AppendUint32(sw.buf[:0], uint32(len(s)))
	for _, v := range s {
		sw.buf = binary.LittleEndian.AppendUint64(sw.buf, uint64(v))
	}
	sw.section(tag)
}

// strings writes a string column section.
func (sw *sectionWriter) strings(tag byte, s []string) {
	sw.buf = binary.LittleEndian.AppendUint32(sw.buf[:0], uint32(len(s)))
	for _, v := range s {
		sw.buf = binary.LittleEndian.AppendUint32(sw.buf, uint32(len(v)))
		sw.buf = append(sw.buf, v...)
	}
	sw.section(tag)
}

// sectionReader reads and checksums framed sections in writer order;
// the first error sticks and turns every later call into a no-op
// returning zero values.
type sectionReader struct {
	r   *bufio.Reader
	err error
}

// next reads one section, demanding the expected tag, and returns its
// checksum-verified payload.
func (sr *sectionReader) next(wantTag byte) []byte {
	if sr.err != nil {
		return nil
	}
	var frame [9]byte
	if _, err := io.ReadFull(sr.r, frame[:]); err != nil {
		sr.err = fmt.Errorf("store: snapshot section header: %w", err)
		return nil
	}
	if frame[0] != wantTag {
		sr.err = fmt.Errorf("store: snapshot section tag %d, want %d", frame[0], wantTag)
		return nil
	}
	plen := binary.LittleEndian.Uint64(frame[1:])
	if plen > maxSectionBytes {
		sr.err = fmt.Errorf("store: snapshot section of %d bytes exceeds the %d cap", plen, int64(maxSectionBytes))
		return nil
	}
	payload := make([]byte, plen)
	if _, err := io.ReadFull(sr.r, payload); err != nil {
		sr.err = fmt.Errorf("store: snapshot section payload: %w", err)
		return nil
	}
	var crc [4]byte
	if _, err := io.ReadFull(sr.r, crc[:]); err != nil {
		sr.err = fmt.Errorf("store: snapshot section checksum: %w", err)
		return nil
	}
	if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(crc[:]) {
		sr.err = fmt.Errorf("store: snapshot section %d checksum mismatch", wantTag)
		return nil
	}
	return payload
}

// count reads a column payload's element count and validates that the
// payload holds exactly count elements of elemSize bytes.
func (sr *sectionReader) count(payload []byte, elemSize int, tag byte) (int, []byte) {
	if sr.err != nil {
		return 0, nil
	}
	if len(payload) < 4 {
		sr.err = fmt.Errorf("store: snapshot section %d too short for a count", tag)
		return 0, nil
	}
	n := int(binary.LittleEndian.Uint32(payload))
	body := payload[4:]
	if elemSize > 0 && len(body) != n*elemSize {
		sr.err = fmt.Errorf("store: snapshot section %d holds %d bytes for %d elements", tag, len(body), n)
		return 0, nil
	}
	return n, body
}

// u64 reads a scalar section.
func (sr *sectionReader) u64(tag byte) uint64 {
	payload := sr.next(tag)
	if sr.err != nil {
		return 0
	}
	if len(payload) != 8 {
		sr.err = fmt.Errorf("store: snapshot section %d is %d bytes, want 8", tag, len(payload))
		return 0
	}
	return binary.LittleEndian.Uint64(payload)
}

// decI32 reads a 32-bit integer column section into a typed slice
// (always non-nil, matching the make-built arrays of Freeze/Shard; the
// FromColumns adopters nil out the append-built fields themselves).
func decI32[T ~int32](sr *sectionReader, tag byte) []T {
	n, body := sr.count(sr.next(tag), 4, tag)
	if sr.err != nil {
		return nil
	}
	s := make([]T, n)
	for i := range s {
		s[i] = T(binary.LittleEndian.Uint32(body[i*4:]))
	}
	return s
}

// i64s reads a 64-bit integer column section.
func (sr *sectionReader) i64s(tag byte) []int64 {
	n, body := sr.count(sr.next(tag), 8, tag)
	if sr.err != nil {
		return nil
	}
	s := make([]int64, n)
	for i := range s {
		s[i] = int64(binary.LittleEndian.Uint64(body[i*8:]))
	}
	return s
}

// strings reads a string column section (nil when empty, matching the
// append-built string columns of Freeze/Shard and Interner.Clone).
func (sr *sectionReader) strings(tag byte) []string {
	payload := sr.next(tag)
	n, body := sr.count(payload, -1, tag)
	if sr.err != nil || n == 0 {
		return nil
	}
	s := make([]string, 0, n)
	for i := 0; i < n; i++ {
		if len(body) < 4 {
			sr.err = fmt.Errorf("store: snapshot section %d truncated inside string %d", tag, i)
			return nil
		}
		slen := int(binary.LittleEndian.Uint32(body))
		body = body[4:]
		if slen < 0 || len(body) < slen {
			sr.err = fmt.Errorf("store: snapshot section %d truncated inside string %d", tag, i)
			return nil
		}
		s = append(s, string(body[:slen]))
		body = body[slen:]
	}
	if len(body) != 0 {
		sr.err = fmt.Errorf("store: snapshot section %d has %d trailing bytes", tag, len(body))
		return nil
	}
	return s
}
