package store

// The fault-injection harness for the acceptance criterion: crash the
// store at a random WAL byte offset (and with randomly corrupted
// tails), recover, and require the maintained view extensions to be
// identical to full rematerialization over the surviving update prefix
// — the same differential-oracle shape as sharded_equivalence_test.go
// and the incremental-maintenance stream matrix, run across all three
// sync policies × all three checkpoint backends.

import (
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"graphviews/internal/graph"
	"graphviews/internal/pattern"
	"graphviews/internal/view"
)

// crashViews defines a small view set over richGraph's label alphabet:
// an edge view, a two-hop chain and a triangle-ish pattern, enough for
// deletions and insertions to move real match sets.
func crashViews() *view.Set {
	v1 := pattern.New("V1")
	a := v1.AddNode("a", "person")
	b := v1.AddNode("b", "site")
	v1.AddEdge(a, b)

	v2 := pattern.New("V2")
	x := v2.AddNode("x", "site")
	y := v2.AddNode("y", "item")
	z := v2.AddNode("z", "tag")
	v2.AddEdge(x, y)
	v2.AddEdge(y, z)

	v3 := pattern.New("V3")
	p := v3.AddNode("p", "item")
	q := v3.AddNode("q", "person")
	v3.AddEdge(p, q)
	v3.AddEdge(q, p)

	return view.NewSet(view.Define("V1", v1), view.Define("V2", v2), view.Define("V3", v3))
}

// crashStream generates nb random update batches over n nodes, mixing
// inserts and deletes of existing edges.
func crashStream(rng *rand.Rand, g *graph.Graph, nb int) [][]view.EdgeUpdate {
	n := g.NumNodes()
	sim := g.Clone() // tracks state so deletes target live edges
	batches := make([][]view.EdgeUpdate, 0, nb)
	for i := 0; i < nb; i++ {
		batch := make([]view.EdgeUpdate, 0, 4)
		for j := rng.Intn(4) + 1; j > 0; j-- {
			u := graph.NodeID(rng.Intn(n))
			if rng.Intn(3) == 0 && sim.OutDegree(u) > 0 {
				outs := sim.Out(u)
				v := outs[rng.Intn(len(outs))]
				sim.RemoveEdge(u, v)
				batch = append(batch, view.EdgeUpdate{From: u, To: v, Delete: true})
			} else {
				v := graph.NodeID(rng.Intn(n))
				sim.AddEdge(u, v)
				batch = append(batch, view.EdgeUpdate{From: u, To: v})
			}
		}
		batches = append(batches, batch)
	}
	return batches
}

// thaw converts a checkpointed backend back to a mutable graph.
func thaw(t *testing.T, r graph.Reader) *graph.Graph {
	t.Helper()
	switch b := r.(type) {
	case *graph.Frozen:
		return b.Thaw()
	case *graph.Sharded:
		return b.Unshard().Thaw()
	default:
		t.Fatalf("unexpected checkpoint backend %T", r)
		return nil
	}
}

// requireSameExtensions compares maintained extensions against a fresh
// materialization, per view, via the Result equality used by every
// equivalence suite in the repo.
func requireSameExtensions(t *testing.T, got, want *view.Extensions) {
	t.Helper()
	if len(got.Exts) != len(want.Exts) {
		t.Fatalf("extension count %d, want %d", len(got.Exts), len(want.Exts))
	}
	for i := range want.Exts {
		if !got.Exts[i].Result.Equal(want.Exts[i].Result) {
			t.Fatalf("view %d (%s): recovered extension differs from rematerialization\n got: %v\nwant: %v",
				i, want.Exts[i].Def.Name, got.Exts[i].Result, want.Exts[i].Result)
		}
	}
}

// TestCrashRecoveryMatrix is the kill-at-random-offset matrix: for each
// sync policy × checkpoint backend, append a random update stream,
// "crash" by cutting the WAL at a random byte offset (sometimes also
// corrupting the new tail), recover, and require (1) the recovered tail
// is an exact batch prefix of what was appended and (2) replaying it
// through delta propagation yields extensions identical to full
// rematerialization from the surviving prefix.
func TestCrashRecoveryMatrix(t *testing.T) {
	policies := []SyncPolicy{
		{Mode: SyncAlways},
		{Mode: SyncNone},
		{Mode: SyncInterval, Interval: 5 * time.Millisecond},
	}
	backends := []struct {
		name       string
		checkpoint func(g *graph.Graph) graph.Reader
	}{
		{"mutable", func(g *graph.Graph) graph.Reader { return g }},
		{"frozen", func(g *graph.Graph) graph.Reader { return graph.Freeze(g) }},
		{"sharded", func(g *graph.Graph) graph.Reader { return graph.Shard(g, 3) }},
	}
	const trialsPerCell = 4
	for _, policy := range policies {
		policy := policy
		t.Run("sync="+policy.String(), func(t *testing.T) {
			for bi, backend := range backends {
				backend := backend
				t.Run(backend.name, func(t *testing.T) {
					t.Parallel()
					rng := rand.New(rand.NewSource(int64(1000 + bi)))
					for trial := 0; trial < trialsPerCell; trial++ {
						runCrashTrial(t, rng, policy, backend.checkpoint)
					}
				})
			}
		})
	}
}

// runCrashTrial runs one crash → recover → differential-oracle cycle.
func runCrashTrial(t *testing.T, rng *rand.Rand, policy SyncPolicy, checkpoint func(*graph.Graph) graph.Reader) {
	t.Helper()
	dir := t.TempDir()
	base := richGraph()
	vs := crashViews()

	s, err := Open(dir, Options{Sync: policy})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(checkpoint(base), nil, 1); err != nil {
		t.Fatal(err)
	}
	appended := crashStream(rng, base, 12)
	for _, b := range appended {
		if err := s.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Crash: cut the WAL at a random byte offset; half the time also
	// smear garbage over the new tail end.
	walPath := filepath.Join(dir, "wal.log")
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	cut := rng.Intn(len(data) + 1)
	torn := append([]byte(nil), data[:cut]...)
	if cut > 0 && rng.Intn(2) == 0 {
		torn[len(torn)-1-rng.Intn(minInt(cut, 8))] ^= byte(1 + rng.Intn(255))
	}
	if err := os.WriteFile(walPath, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	// Recover.
	s2, err := Open(dir, Options{Sync: policy})
	if err != nil {
		t.Fatalf("recovery open: %v", err)
	}
	defer s2.Close()
	if s2.Base() == nil || s2.BaseVersion() != 1 {
		t.Fatalf("checkpoint lost: base %v version %d", s2.Base(), s2.BaseVersion())
	}
	tail := s2.Tail()
	if len(tail) > len(appended) {
		t.Fatalf("recovered %d batches from a %d-batch log", len(tail), len(appended))
	}
	if len(tail) > 0 && !reflect.DeepEqual(tail, appended[:len(tail)]) {
		t.Fatalf("cut %d/%d: recovered tail is not an exact batch prefix", cut, len(data))
	}

	// Replay through delta propagation into maintained views.
	m := view.NewMaintained(thaw(t, s2.Base()), vs)
	feed := view.NewFeed(m)
	for _, b := range tail {
		feed.Submit(b...)
		feed.Flush()
	}
	got := m.SnapshotExtensions()

	// Oracle: full rematerialization over the surviving prefix.
	oracle := thaw(t, s2.Base())
	for _, b := range tail {
		for _, up := range b {
			if up.Delete {
				oracle.RemoveEdge(up.From, up.To)
			} else {
				oracle.AddEdge(up.From, up.To)
			}
		}
	}
	requireSameExtensions(t, got, view.Materialize(oracle, vs))
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
