package store

// WAL and recovery micro-benchmarks feeding make bench-wal /
// BENCH_PR9.json: append cost per record under each sync policy,
// recovery decode+replay throughput, and snapshot codec throughput.

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"graphviews/internal/graph"
	"graphviews/internal/view"
)

// BenchmarkWALAppend measures one framed record append per iteration
// under each sync policy (always is fsync-bound by design).
func BenchmarkWALAppend(b *testing.B) {
	for _, spec := range []string{"always", "none", "5ms"} {
		policy, err := ParseSyncPolicy(spec)
		if err != nil {
			b.Fatal(err)
		}
		b.Run("sync="+spec, func(b *testing.B) {
			path := filepath.Join(b.TempDir(), "wal.log")
			w, _, err := OpenWAL(path, policy)
			if err != nil {
				b.Fatal(err)
			}
			defer w.Close()
			batch := []view.EdgeUpdate{{From: 1, To: 2}, {From: 2, To: 3}, {From: 3, To: 1, Delete: true}}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := w.Append(batch); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRecoveryReplay measures crash recovery end to end — decode a
// 100k-record WAL image and replay it through delta propagation into
// maintained views — the "recovery ms per 100k records" number.
func BenchmarkRecoveryReplay(b *testing.B) {
	const records = 100_000
	g := richGraph()
	n := g.NumNodes()
	var img []byte
	for i := 0; i < records; i++ {
		img = encodeRecord(img, []view.EdgeUpdate{{
			From:   graph.NodeID(i % n),
			To:     graph.NodeID((i*7 + 1) % n),
			Delete: i%9 == 0,
		}})
	}
	vs := crashViews()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batches, good := DecodeAll(img)
		if good != int64(len(img)) || len(batches) != records {
			b.Fatalf("decoded %d batches over %d bytes", len(batches), good)
		}
		m := view.NewMaintained(g.Clone(), vs)
		feed := view.NewFeed(m)
		for _, batch := range batches {
			feed.Submit(batch...)
		}
		feed.Flush()
	}
}

// BenchmarkSnapshotSave / Load measure the checkpoint codec on a frozen
// backend of ~200k edges.
func benchGraph(b *testing.B) *graph.Frozen {
	b.Helper()
	g := graph.New()
	const nodes = 50_000
	labels := []string{"person", "site", "item", "tag"}
	for i := 0; i < nodes; i++ {
		g.AddNode(labels[i%len(labels)])
	}
	for i := 0; i < nodes; i++ {
		u := graph.NodeID(i)
		g.AddEdge(u, graph.NodeID((i+1)%nodes))
		g.AddEdge(u, graph.NodeID((i*13+7)%nodes))
		g.AddEdge(u, graph.NodeID((i*31+3)%nodes))
		g.AddEdge(u, graph.NodeID((i*101+11)%nodes))
	}
	return graph.Freeze(g)
}

func BenchmarkSnapshotSave(b *testing.B) {
	f := benchGraph(b)
	var buf bytes.Buffer
	if err := Save(&buf, f, 1); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(buf.Len()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := Save(&buf, f, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSnapshotLoad(b *testing.B) {
	f := benchGraph(b)
	var buf bytes.Buffer
	if err := Save(&buf, f, 1); err != nil {
		b.Fatal(err)
	}
	img := buf.Bytes()
	b.SetBytes(int64(len(img)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Load(bytes.NewReader(img)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreCheckpoint measures a full checkpoint cycle (tmp write,
// fsyncs, rename, WAL compaction) against a real filesystem.
func BenchmarkStoreCheckpoint(b *testing.B) {
	f := benchGraph(b)
	dir := b.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Checkpoint(f, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if fi, err := os.Stat(filepath.Join(dir, "current.snap")); err != nil || fi.Size() == 0 {
		b.Fatal(fmt.Errorf("checkpoint missing: %v", err))
	}
}
