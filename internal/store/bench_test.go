package store

// WAL and recovery micro-benchmarks feeding make bench-wal /
// BENCH_PR9.json: append cost per record under each sync policy,
// recovery decode+replay throughput, and snapshot codec throughput.

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"graphviews/internal/graph"
	"graphviews/internal/view"
)

// BenchmarkWALAppend measures one framed record append per iteration
// under each sync policy (always is fsync-bound by design).
func BenchmarkWALAppend(b *testing.B) {
	for _, spec := range []string{"always", "none", "5ms"} {
		policy, err := ParseSyncPolicy(spec)
		if err != nil {
			b.Fatal(err)
		}
		b.Run("sync="+spec, func(b *testing.B) {
			path := filepath.Join(b.TempDir(), "wal.log")
			w, _, err := OpenWAL(path, policy)
			if err != nil {
				b.Fatal(err)
			}
			defer w.Close()
			batch := []view.EdgeUpdate{{From: 1, To: 2}, {From: 2, To: 3}, {From: 3, To: 1, Delete: true}}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := w.Append(batch); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRecoveryReplay measures crash recovery end to end — decode a
// 100k-record WAL image and replay it through delta propagation into
// maintained views — the "recovery ms per 100k records" number.
func BenchmarkRecoveryReplay(b *testing.B) {
	const records = 100_000
	g := richGraph()
	n := g.NumNodes()
	var img []byte
	for i := 0; i < records; i++ {
		img = encodeRecord(img, []view.EdgeUpdate{{
			From:   graph.NodeID(i % n),
			To:     graph.NodeID((i*7 + 1) % n),
			Delete: i%9 == 0,
		}})
	}
	vs := crashViews()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batches, good := DecodeAll(img)
		if good != int64(len(img)) || len(batches) != records {
			b.Fatalf("decoded %d batches over %d bytes", len(batches), good)
		}
		m := view.NewMaintained(g.Clone(), vs)
		feed := view.NewFeed(m)
		for _, batch := range batches {
			feed.Submit(batch...)
		}
		feed.Flush()
	}
}

// BenchmarkSnapshotSave / Load measure the checkpoint codec on a frozen
// backend of ~200k edges.
func benchMutable(b *testing.B, nodes int) *graph.Graph {
	b.Helper()
	g := graph.New()
	labels := []string{"person", "site", "item", "tag"}
	for i := 0; i < nodes; i++ {
		g.AddNode(labels[i%len(labels)])
	}
	for i := 0; i < nodes; i++ {
		u := graph.NodeID(i)
		g.AddEdge(u, graph.NodeID((i+1)%nodes))
		g.AddEdge(u, graph.NodeID((i*13+7)%nodes))
		g.AddEdge(u, graph.NodeID((i*31+3)%nodes))
		g.AddEdge(u, graph.NodeID((i*101+11)%nodes))
	}
	return g
}

func benchGraph(b *testing.B) *graph.Frozen {
	return graph.Freeze(benchMutable(b, 50_000))
}

func BenchmarkSnapshotSave(b *testing.B) {
	f := benchGraph(b)
	var buf bytes.Buffer
	if err := Save(&buf, f, 1); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(buf.Len()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := Save(&buf, f, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSnapshotLoad(b *testing.B) {
	f := benchGraph(b)
	var buf bytes.Buffer
	if err := Save(&buf, f, 1); err != nil {
		b.Fatal(err)
	}
	img := buf.Bytes()
	b.SetBytes(int64(len(img)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Load(bytes.NewReader(img)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreCheckpointFull measures a full checkpoint cycle (part
// writes, fsyncs, manifest rename, WAL compaction, GC) against a real
// filesystem. MarkAllDirty forces the full rewrite each iteration —
// the worst-case bound under the manifest layout (renamed from the
// pre-manifest StoreCheckpoint series, whose single-file protocol it
// no longer measures); BenchmarkStoreCheckpointDirtyFraction measures
// the incremental path.
func BenchmarkStoreCheckpointFull(b *testing.B) {
	f := benchGraph(b)
	dir := b.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.MarkAllDirty()
		if err := s.Checkpoint(f, nil, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if fi, err := os.Stat(filepath.Join(dir, "MANIFEST")); err != nil || fi.Size() == 0 {
		b.Fatal(fmt.Errorf("checkpoint missing: %v", err))
	}
}

// BenchmarkStoreCheckpointDirtyFraction measures the incremental
// checkpoint path: an 8-way sharded backend where each cycle dirties a
// varying number of shards via real WAL appends before checkpointing.
// bytes/op drops roughly linearly with the clean fraction — the number
// BENCH_PR10.json tracks against the full-rewrite bound above.
func BenchmarkStoreCheckpointDirtyFraction(b *testing.B) {
	const k = 8
	sh := graph.Shard(benchMutable(b, 50_000), k)
	for _, dirty := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("dirty=%d_of_%d", dirty, k), func(b *testing.B) {
			dir := b.TempDir()
			s, err := Open(dir, Options{})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			if err := s.Checkpoint(sh, nil, 1); err != nil {
				b.Fatal(err)
			}
			before := s.CheckpointStats().BytesWritten.Load()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for d := 0; d < dirty; d++ {
					// Both endpoints land in shard d, so the append dirties
					// exactly that shard.
					up := []view.EdgeUpdate{{From: graph.NodeID(d), To: graph.NodeID(d + k)}}
					if err := s.Append(up); err != nil {
						b.Fatal(err)
					}
				}
				if err := s.Checkpoint(sh, nil, uint64(i+2)); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			written := s.CheckpointStats().BytesWritten.Load() - before
			b.ReportMetric(float64(written)/float64(b.N), "ckpt-bytes/op")
		})
	}
}

// BenchmarkRecoveryExtensions compares the two clean-tail boot paths: a
// restore that adopts the checkpoint's persisted extensions versus a
// rematerialization from scratch — the "recovery time with vs without
// persisted extensions" number in BENCH_PR10.json.
func BenchmarkRecoveryExtensions(b *testing.B) {
	g := benchMutable(b, 2_000)
	vs := crashViews()
	x := view.Materialize(g, vs)
	dir := b.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		b.Fatal(err)
	}
	if err := s.Checkpoint(graph.Freeze(g), x, 1); err != nil {
		b.Fatal(err)
	}
	s.Close()

	b.Run("restore", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s, err := Open(dir, Options{})
			if err != nil {
				b.Fatal(err)
			}
			restored, ok := s.BaseExtensions(vs)
			if !ok {
				b.Fatal("persisted extensions did not bind")
			}
			thawed := s.Base().(*graph.Frozen).Thaw()
			m := view.NewMaintainedFromExtensions(thawed, restored, 1)
			if m.Stats.Recomputes != 0 {
				b.Fatal("restore path rematerialized")
			}
			s.Close()
		}
	})
	b.Run("rematerialize", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s, err := Open(dir, Options{})
			if err != nil {
				b.Fatal(err)
			}
			thawed := s.Base().(*graph.Frozen).Thaw()
			m := view.NewMaintained(thawed, vs)
			if len(m.SnapshotExtensions().Exts) != len(x.Exts) {
				b.Fatal("rematerialization produced a different view set")
			}
			s.Close()
		}
	})
}
