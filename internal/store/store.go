package store

// Store is the durable graph + view store behind a serving process: a
// data directory holding one checkpoint snapshot (current.snap) and one
// write-ahead log (wal.log). The lifecycle is
//
//	Open        — load the checkpoint (if any), scan the WAL, truncate
//	              any torn tail, hand back the base graph and the tail
//	              of update batches to replay;
//	Append      — log an update batch before the serving layer
//	              acknowledges it (durability per SyncPolicy);
//	Checkpoint  — atomically replace the snapshot (tmp + fsync + rename
//	              + dir fsync) and compact the WAL to empty.
//
// Crash safety of the checkpoint protocol: the rename is atomic, so a
// crash before it leaves the old snapshot + full WAL (recovery replays
// everything), and a crash between the rename and the WAL reset leaves
// the new snapshot + a WAL whose records are already reflected in it.
// Replaying that WAL is harmless: update operations are absolute (add
// or delete an edge, not a toggle), so re-applying any suffix of the
// log to a state that already contains it is a no-op on the graph —
// and maintenance ignores updates that do not change the graph.

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"graphviews/internal/graph"
	"graphviews/internal/view"
)

// Data-directory layout.
const (
	snapName = "current.snap"
	snapTmp  = "current.snap.tmp"
	walName  = "wal.log"
)

// Options parameterizes Open. The zero value syncs every appended
// record (SyncAlways).
type Options struct {
	// Sync is the WAL durability policy for acknowledged appends.
	Sync SyncPolicy
}

// Store combines the checkpoint snapshot and the WAL of one data
// directory. Append/Checkpoint must be serialized by the caller (the
// serving layer holds its write mutex across both); Base, BaseVersion,
// Tail and the stats accessors are safe to call anytime.
type Store struct {
	dir string
	wal *WAL

	// base is the checkpointed backend found at Open (nil on a fresh
	// directory) and baseVersion its write clock; tail holds the WAL
	// record batches appended after that checkpoint. All three are
	// written once at Open and read-only afterwards.
	base        graph.Reader
	baseVersion uint64
	tail        [][]view.EdgeUpdate
}

// Open opens (creating if needed) the data directory: loads the
// checkpoint snapshot when one exists, removes any half-written
// temporary snapshot from a crashed checkpoint, and scans the WAL —
// truncating a torn or corrupted tail at the first bad frame. The
// returned store exposes the checkpoint via Base and the replayable
// update batches via Tail.
func Open(dir string, opts Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	// A leftover tmp snapshot means a checkpoint crashed before its
	// rename; the current snapshot is still the authoritative one.
	if err := os.Remove(filepath.Join(dir, snapTmp)); err != nil && !os.IsNotExist(err) {
		return nil, err
	}
	s := &Store{dir: dir}
	snapPath := filepath.Join(dir, snapName)
	if f, err := os.Open(snapPath); err == nil {
		g, version, lerr := Load(f)
		if cerr := f.Close(); lerr == nil {
			lerr = cerr
		}
		if lerr != nil {
			return nil, fmt.Errorf("%s: %w", snapPath, lerr)
		}
		s.base, s.baseVersion = g, version
	} else if !os.IsNotExist(err) {
		return nil, err
	}
	wal, tail, err := OpenWAL(filepath.Join(dir, walName), opts.Sync)
	if err != nil {
		return nil, err
	}
	s.wal, s.tail = wal, tail
	return s, nil
}

// Dir returns the data directory path.
func (s *Store) Dir() string { return s.dir }

// Base returns the checkpointed graph backend found at Open (a *Frozen
// or *Sharded), or nil on a fresh directory. Read-only.
func (s *Store) Base() graph.Reader { return s.base }

// BaseVersion returns the write clock the checkpoint was taken at.
func (s *Store) BaseVersion() uint64 { return s.baseVersion }

// Tail returns the WAL record batches appended after the checkpoint, in
// log order — the updates recovery must replay. Read-only.
func (s *Store) Tail() [][]view.EdgeUpdate { return s.tail }

// TailUpdates counts the individual edge updates across Tail.
func (s *Store) TailUpdates() int {
	n := 0
	for _, b := range s.tail {
		n += len(b)
	}
	return n
}

// Append logs one update batch ahead of acknowledgement; see
// WAL.Append for the durability and rollback contract.
func (s *Store) Append(batch []view.EdgeUpdate) error { return s.wal.Append(batch) }

// Checkpoint atomically replaces the snapshot with g at the given
// write-clock version and compacts the WAL: write to a temporary file,
// fsync, rename over current.snap, fsync the directory, then truncate
// the log (every logged record is covered by g). On error the previous
// checkpoint and the full WAL remain authoritative.
func (s *Store) Checkpoint(g graph.Reader, version uint64) error {
	tmp := filepath.Join(s.dir, snapTmp)
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	err = Save(bw, g, version)
	if err == nil {
		err = bw.Flush()
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: writing checkpoint: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, snapName)); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := syncDir(s.dir); err != nil {
		return err
	}
	return s.wal.Reset()
}

// WALStats exposes the log's live counters.
func (s *Store) WALStats() *WALStats { return s.wal.Stats() }

// WALSize reports the current WAL length in bytes.
func (s *Store) WALSize() int64 { return s.wal.Size() }

// SyncPolicy reports the WAL durability policy the store runs under.
func (s *Store) SyncPolicy() SyncPolicy { return s.wal.policy }

// SetFsyncObserver registers fn to run after every WAL fsync with its
// latency (the serving layer's histogram feed). Pass nil to remove.
func (s *Store) SetFsyncObserver(fn func(time.Duration)) { s.wal.SetObserver(fn) }

// Close flushes and closes the WAL. The checkpoint files need no
// closing — they are only open during Open and Checkpoint.
func (s *Store) Close() error { return s.wal.Close() }

// syncDir fsyncs a directory so a just-renamed entry survives a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
