package store

// Store is the durable graph + view store behind a serving process: a
// data directory holding one checkpoint (a MANIFEST plus immutable part
// files, manifest.go) and one write-ahead log (wal.log). The lifecycle
// is
//
//	Open        — load the committed manifest (or migrate a legacy
//	              single-file current.snap checkpoint), collect any
//	              garbage a crashed checkpoint left behind, scan the
//	              WAL, truncate any torn tail, and hand back the base
//	              graph, its serialized view extensions and the tail of
//	              update batches to replay;
//	Append      — log an update batch before the serving layer
//	              acknowledges it (durability per SyncPolicy), marking
//	              the batch's shards dirty;
//	Checkpoint  — write the dirty shards (plus the extensions) as fresh
//	              part files, commit them with an atomic manifest
//	              rename, and compact the WAL to empty. Clean shards
//	              are carried over by reference — a checkpoint after a
//	              small write burst rewrites only the touched shards.
//
// Crash safety of the checkpoint protocol: part files are written and
// fsynced first under never-reused names, so until the manifest rename
// commits they are invisible garbage — a crash before the rename
// leaves the old manifest + full WAL (recovery replays everything and
// the next Open removes the orphans). A crash between the rename and
// the WAL reset leaves the new manifest + a WAL whose records are
// already reflected in it. Replaying that WAL is harmless: update
// operations are absolute (add or delete an edge, not a toggle), so
// re-applying any suffix of the log to a state that already contains
// it is a no-op on the graph — and maintenance ignores updates that do
// not change the graph. Every protocol step that removes or renames a
// directory entry is followed by a directory fsync, so no step can be
// undone by a later crash.

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"graphviews/internal/graph"
	"graphviews/internal/view"
)

// Data-directory layout. current.snap is the legacy single-file
// snapshot (GVSNAP01, snapshot.go): still read at Open for migration,
// never written anymore, removed by the first manifest checkpoint.
const (
	snapName = "current.snap"
	snapTmp  = "current.snap.tmp"
	walName  = "wal.log"
)

// Options parameterizes Open. The zero value syncs every appended
// record (SyncAlways) and reads part files into memory.
type Options struct {
	// Sync is the WAL durability policy for acknowledged appends.
	Sync SyncPolicy
	// Mmap maps part files read-only and adopts their integer columns
	// in place (zero-copy load). The mappings live until process exit;
	// ignored on platforms without mmap support.
	Mmap bool
}

// CheckpointStats counts what checkpoints did, cumulatively since
// Open. All fields are atomics: the serving layer's metrics endpoint
// reads them while checkpoints run.
type CheckpointStats struct {
	// Checkpoints counts committed checkpoints.
	Checkpoints atomic.Int64
	// ShardsWritten counts shard part files freshly written (dirty or
	// full rewrites).
	ShardsWritten atomic.Int64
	// ShardsSkipped counts shard parts carried over by reference
	// because no logged update touched them.
	ShardsSkipped atomic.Int64
	// BytesWritten counts part + manifest bytes written.
	BytesWritten atomic.Int64
	// PartsRemoved counts obsolete files garbage-collected after
	// commits and at Open.
	PartsRemoved atomic.Int64
}

// Store combines the checkpoint manifest and the WAL of one data
// directory. Append/Checkpoint must be serialized by the caller (the
// serving layer holds its write mutex across both); Base, BaseVersion,
// BaseExtensions, Tail and the stats accessors are safe to call
// anytime.
//
// Incremental contract: between two checkpoints the graph handed to
// Checkpoint must differ from the previous one only through update
// batches passed to Append (plus the recovered tail) — exactly what
// the serving layer guarantees. A caller checkpointing an unrelated
// graph of the same shape must call MarkAllDirty first.
type Store struct {
	dir  string
	wal  *WAL
	opts Options

	// base is the checkpointed backend found at Open (nil on a fresh
	// directory) and baseVersion its write clock; tail holds the WAL
	// record batches appended after that checkpoint; baseExts the
	// serialized view extensions stored with the checkpoint (empty when
	// none were persisted). All four are written once at Open and
	// read-only afterwards.
	base        graph.Reader
	baseVersion uint64
	tail        [][]view.EdgeUpdate
	baseExts    []ExtensionData

	// mu guards the dirty-shard bookkeeping shared by Append (marking)
	// and Checkpoint (consuming); the caller already serializes those,
	// but the lock keeps MarkAllDirty safe from any goroutine.
	mu       sync.Mutex
	man      *manifest        // guarded by mu; committed manifest, nil before the first checkpoint
	dirty    map[int]struct{} // guarded by mu; shards touched since the last checkpoint
	dirtyAll bool             // guarded by mu; next checkpoint must write everything

	stats CheckpointStats
}

// Open opens (creating if needed) the data directory: loads the
// committed checkpoint when one exists (manifest layout first, legacy
// current.snap as migration fallback), removes leftovers of crashed
// checkpoints — half-written temporaries and unreferenced part files —
// fsyncing the directory after any removal, and scans the WAL,
// truncating a torn or corrupted tail at the first bad frame. The
// returned store exposes the checkpoint via Base/BaseExtensions and
// the replayable update batches via Tail.
func Open(dir string, opts Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s := &Store{dir: dir, opts: opts, dirty: make(map[int]struct{})}
	// Leftover temporaries mean a checkpoint crashed before its rename;
	// the committed manifest (or legacy snapshot) is still authoritative.
	// The removals are fsynced so a later crash cannot resurrect them.
	removed := 0
	for _, name := range []string{snapTmp, manifestTmp} {
		err := os.Remove(filepath.Join(dir, name))
		if err == nil {
			removed++
		} else if !os.IsNotExist(err) {
			return nil, err
		}
	}
	if removed > 0 {
		if err := syncDir(dir); err != nil {
			return nil, err
		}
	}

	maniPath := filepath.Join(dir, manifestName)
	if data, err := os.ReadFile(maniPath); err == nil {
		m, err := decodeManifest(data)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", maniPath, err)
		}
		g, exts, err := loadManifestGraph(dir, m, opts.Mmap)
		if err != nil {
			return nil, err
		}
		s.base, s.baseVersion, s.baseExts = g, m.version, exts
		s.man = m
		// Orphaned parts from a checkpoint that crashed mid-write (and a
		// legacy snapshot already superseded by a manifest) are garbage.
		if err := s.gc(m, true); err != nil {
			return nil, err
		}
	} else if !os.IsNotExist(err) {
		return nil, err
	} else {
		// Migration: no manifest, but a legacy single-file snapshot. Load
		// it; the first checkpoint writes the manifest layout in full and
		// collects current.snap.
		snapPath := filepath.Join(dir, snapName)
		if f, err := os.Open(snapPath); err == nil {
			g, version, lerr := Load(f)
			if cerr := f.Close(); lerr == nil {
				lerr = cerr
			}
			if lerr != nil {
				return nil, fmt.Errorf("%s: %w", snapPath, lerr)
			}
			s.base, s.baseVersion = g, version
		} else if !os.IsNotExist(err) {
			return nil, err
		}
		s.dirtyAll = true
	}

	wal, tail, err := OpenWAL(filepath.Join(dir, walName), opts.Sync)
	if err != nil {
		return nil, err
	}
	s.wal, s.tail = wal, tail
	// The tail's updates are not reflected in the on-disk shards yet:
	// they dirty the same shards a live Append would.
	for _, batch := range tail {
		s.markDirty(batch)
	}
	return s, nil
}

// Dir returns the data directory path.
func (s *Store) Dir() string { return s.dir }

// Base returns the checkpointed graph backend found at Open (a *Frozen
// or *Sharded), or nil on a fresh directory. Read-only.
func (s *Store) Base() graph.Reader { return s.base }

// BaseVersion returns the write clock the checkpoint was taken at.
func (s *Store) BaseVersion() uint64 { return s.baseVersion }

// BaseExtensionData returns the serialized view extensions stored with
// the checkpoint, if any (see BaseExtensions for binding them to a view
// set). Read-only.
func (s *Store) BaseExtensionData() []ExtensionData { return s.baseExts }

// Tail returns the WAL record batches appended after the checkpoint, in
// log order — the updates recovery must replay. Read-only.
func (s *Store) Tail() [][]view.EdgeUpdate { return s.tail }

// TailUpdates counts the individual edge updates across Tail.
func (s *Store) TailUpdates() int {
	n := 0
	for _, b := range s.tail {
		n += len(b)
	}
	return n
}

// Append logs one update batch ahead of acknowledgement (see
// WAL.Append for the durability and rollback contract) and marks the
// batch's shards dirty for the next incremental checkpoint.
func (s *Store) Append(batch []view.EdgeUpdate) error {
	if err := s.wal.Append(batch); err != nil {
		return err
	}
	s.markDirty(batch)
	return nil
}

// markDirty records which shards batch touches: an edge (u,v) changes
// the forward CSR (and boundary arrays) of u's shard and the reverse
// CSR of v's shard. Shard ownership is v mod k under the committed
// manifest's k; without a manifest everything is dirty anyway.
func (s *Store) markDirty(batch []view.EdgeUpdate) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dirtyAll || s.man == nil {
		return
	}
	k := graph.NodeID(s.man.k)
	for _, up := range batch {
		if up.From >= 0 {
			s.dirty[int(up.From%k)] = struct{}{}
		}
		if up.To >= 0 {
			s.dirty[int(up.To%k)] = struct{}{}
		}
	}
}

// MarkAllDirty forces the next checkpoint to rewrite every part,
// ignoring the incremental dirty set. Open leaves a fresh or migrated
// directory in this state already; callers need it only to checkpoint
// a graph that did not evolve from the previous checkpoint through
// Append batches.
func (s *Store) MarkAllDirty() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.dirtyAll = true
}

// Checkpoint atomically replaces the committed checkpoint with g (and,
// when x is non-nil, its view extensions) at the given write-clock
// version, then compacts the WAL: freshly written part files are
// fsynced under never-reused names, a new manifest referencing them —
// and referencing the untouched shards' existing parts — is committed
// by tmp + fsync + rename + directory fsync, the log is truncated
// (every logged record is covered by g), and superseded part files are
// collected. On error before the manifest rename the previous
// checkpoint and the full WAL remain authoritative.
func (s *Store) Checkpoint(g graph.Reader, x *view.Extensions, version uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	plan := planOf(g)
	old := s.man
	full := s.dirtyAll || old == nil ||
		old.kind != plan.kind || old.k != plan.k || old.numNodes != plan.n
	var seq uint64 = 1
	if old != nil {
		seq = old.seq + 1
	}
	newMan := &manifest{
		kind: plan.kind, k: plan.k, seq: seq, version: version,
		numNodes: plan.n, numEdges: plan.edges,
	}
	var written []partEntry
	var bytes int64
	fail := func(err error) error {
		for _, e := range written {
			os.Remove(filepath.Join(s.dir, e.name()))
		}
		return err
	}

	ge := partEntry{role: roleGlobal, seq: seq}
	if full {
		var err error
		if ge, err = writePartFile(s.dir, ge, func(pw *partWriter) { plan.writeGlobalPart(pw, seq) }); err != nil {
			return fail(err)
		}
		written = append(written, ge)
		bytes += ge.size
	} else {
		ge, _ = old.global()
	}
	newMan.parts = append(newMan.parts, ge)

	var wrote, skipped int64
	for i := 0; i < plan.k; i++ {
		se := partEntry{role: roleShard, idx: i, seq: seq}
		_, isDirty := s.dirty[i]
		if full || isDirty {
			var err error
			i := i
			if se, err = writePartFile(s.dir, se, func(pw *partWriter) { plan.writeShardPart(pw, i, seq) }); err != nil {
				return fail(err)
			}
			written = append(written, se)
			bytes += se.size
			wrote++
		} else {
			se, _ = old.shard(i)
			skipped++
		}
		newMan.parts = append(newMan.parts, se)
	}

	if x != nil {
		data := snapshotExtensionData(x)
		ee, err := writePartFile(s.dir, partEntry{role: roleExts, seq: seq},
			func(pw *partWriter) { writeExtsPart(pw, seq, data) })
		if err != nil {
			return fail(err)
		}
		written = append(written, ee)
		bytes += ee.size
		newMan.parts = append(newMan.parts, ee)
	}

	// The new parts must be durable directory entries before a manifest
	// referencing them can commit.
	if err := syncDir(s.dir); err != nil {
		return fail(err)
	}

	image := encodeManifest(newMan)
	tmp := filepath.Join(s.dir, manifestTmp)
	if err := writeFileSync(tmp, image); err != nil {
		return fail(err)
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, manifestName)); err != nil {
		os.Remove(tmp)
		return fail(err)
	}
	if err := syncDir(s.dir); err != nil {
		return err
	}
	// Committed: from here the new manifest is authoritative even if a
	// later step fails.
	s.man = newMan
	s.dirty = make(map[int]struct{})
	s.dirtyAll = false
	s.stats.Checkpoints.Add(1)
	s.stats.ShardsWritten.Add(wrote)
	s.stats.ShardsSkipped.Add(skipped)
	s.stats.BytesWritten.Add(bytes + int64(len(image)))

	if err := s.wal.Reset(); err != nil {
		return err
	}
	if err := syncDir(s.dir); err != nil {
		return err
	}
	return s.gc(newMan, false)
}

// gc removes every file the committed manifest does not reference:
// superseded part files, orphans of crashed checkpoints and — once a
// manifest exists — the migrated legacy snapshot. Only names the store
// itself writes are touched. With strict set, removal errors are
// returned (Open's consistency pass); otherwise collection is
// best-effort (a post-commit checkpoint must not fail over garbage).
func (s *Store) gc(m *manifest, strict bool) error {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		if strict {
			return err
		}
		return nil
	}
	referenced := make(map[string]struct{}, len(m.parts))
	for _, e := range m.parts {
		referenced[e.name()] = struct{}{}
	}
	removed := 0
	for _, de := range entries {
		name := de.Name()
		collectable := name == snapName ||
			(strings.HasSuffix(name, ".part") && !isReferenced(referenced, name))
		if !collectable {
			continue
		}
		if err := os.Remove(filepath.Join(s.dir, name)); err != nil {
			if strict {
				return err
			}
			continue
		}
		removed++
	}
	s.stats.PartsRemoved.Add(int64(removed))
	if removed == 0 {
		return nil
	}
	if err := syncDir(s.dir); err != nil && strict {
		return err
	}
	return nil
}

// isReferenced reports whether a .part file belongs to the manifest.
func isReferenced(referenced map[string]struct{}, name string) bool {
	_, ok := referenced[name]
	return ok
}

// WALStats exposes the log's live counters.
func (s *Store) WALStats() *WALStats { return s.wal.Stats() }

// CheckpointStats exposes the checkpoint counters.
func (s *Store) CheckpointStats() *CheckpointStats { return &s.stats }

// WALSize reports the current WAL length in bytes.
func (s *Store) WALSize() int64 { return s.wal.Size() }

// SyncPolicy reports the WAL durability policy the store runs under.
func (s *Store) SyncPolicy() SyncPolicy { return s.wal.policy }

// SetFsyncObserver registers fn to run after every WAL fsync with its
// latency (the serving layer's histogram feed). Pass nil to remove.
func (s *Store) SetFsyncObserver(fn func(time.Duration)) { s.wal.SetObserver(fn) }

// Close flushes and closes the WAL. The checkpoint files need no
// closing — they are only open during Open and Checkpoint (mmap
// mappings deliberately live until process exit; the adopted columns
// alias them).
func (s *Store) Close() error { return s.wal.Close() }

// writeFileSync writes data to path and fsyncs the file.
func writeFileSync(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	_, err = f.Write(data)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(path)
	}
	return err
}

// syncDir fsyncs a directory so a just-renamed or just-removed entry
// survives a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
