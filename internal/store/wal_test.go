package store

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"graphviews/internal/view"
)

// testBatches is a small update stream mixing unit inserts, unit
// deletes and multi-update batches.
func testBatches() [][]view.EdgeUpdate {
	return [][]view.EdgeUpdate{
		{{From: 0, To: 1}},
		{{From: 1, To: 2}, {From: 2, To: 3}, {From: 0, To: 3, Delete: true}},
		{{From: 3, To: 0, Delete: true}},
		{{From: 4, To: 5}, {From: 5, To: 4}},
	}
}

// appendAll writes batches into a fresh WAL at path and closes it.
func appendAll(t *testing.T, path string, policy SyncPolicy, batches [][]view.EdgeUpdate) {
	t.Helper()
	w, got, err := OpenWAL(path, policy)
	if err != nil {
		t.Fatalf("OpenWAL: %v", err)
	}
	if len(got) != 0 {
		t.Fatalf("fresh WAL decoded %d batches, want 0", len(got))
	}
	for _, b := range batches {
		if err := w.Append(b); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestWALRoundTrip: append, close, reopen — the decoded batches are the
// appended ones, in order.
func TestWALRoundTrip(t *testing.T) {
	for _, policy := range []string{"always", "none", "5ms"} {
		t.Run(policy, func(t *testing.T) {
			p, err := ParseSyncPolicy(policy)
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join(t.TempDir(), "wal.log")
			want := testBatches()
			appendAll(t, path, p, want)
			w, got, err := OpenWAL(path, p)
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			defer w.Close()
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("decoded %+v, want %+v", got, want)
			}
			if n := w.Stats().TruncatedTails.Load(); n != 0 {
				t.Fatalf("clean log reported %d truncated tails", n)
			}
		})
	}
}

// TestWALDecodePrefixAtEveryOffset: cutting the log image at any byte
// offset decodes to an exact prefix of the appended batches — the
// torn-tail property the crash matrix relies on.
func TestWALDecodePrefixAtEveryOffset(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	want := testBatches()
	appendAll(t, path, SyncPolicy{Mode: SyncNone}, want)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	full, goodLen := DecodeAll(data)
	if goodLen != int64(len(data)) || !reflect.DeepEqual(full, want) {
		t.Fatalf("full decode: %d/%d bytes, %d batches", goodLen, len(data), len(full))
	}
	for cut := 0; cut <= len(data); cut++ {
		batches, good := DecodeAll(data[:cut])
		if good > int64(cut) {
			t.Fatalf("cut %d: goodLen %d past the cut", cut, good)
		}
		if len(batches) > len(want) {
			t.Fatalf("cut %d: %d batches from a %d-batch log", cut, len(batches), len(want))
		}
		if len(batches) > 0 && !reflect.DeepEqual(batches, want[:len(batches)]) {
			t.Fatalf("cut %d: decoded batches are not a prefix", cut)
		}
		// Idempotence: the good prefix re-decodes to exactly itself.
		again, againLen := DecodeAll(data[:good])
		if againLen != good || !reflect.DeepEqual(again, batches) {
			t.Fatalf("cut %d: prefix re-decode diverged", cut)
		}
	}
}

// TestWALTornTailRecovery: a WAL cut mid-frame (or with a corrupted
// tail) reopens to the surviving prefix, truncates the file, counts the
// truncation, and accepts appends that extend the prefix.
func TestWALTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	for _, tc := range []struct {
		name    string
		mutate  func(data []byte) []byte
		minKept int // batches that must survive
		maxKept int
	}{
		{"torn-mid-frame", func(d []byte) []byte { return d[:len(d)-3] }, 3, 3},
		{"flip-last-payload-byte", func(d []byte) []byte {
			d[len(d)-1] ^= 0xff
			return d
		}, 3, 3},
		{"flip-first-length-byte", func(d []byte) []byte {
			d[0] ^= 0xff
			return d
		}, 0, 0},
		{"garbage-appended", func(d []byte) []byte {
			return append(d, 0xde, 0xad, 0xbe, 0xef, 0x01, 0x02, 0x03, 0x04, 0x05)
		}, 4, 4},
	} {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(dir, tc.name+".log")
			want := testBatches()
			appendAll(t, path, SyncPolicy{Mode: SyncAlways}, want)
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, tc.mutate(append([]byte(nil), data...)), 0o644); err != nil {
				t.Fatal(err)
			}
			w, got, err := OpenWAL(path, SyncPolicy{Mode: SyncAlways})
			if err != nil {
				t.Fatalf("recovery open: %v", err)
			}
			defer w.Close()
			if len(got) < tc.minKept || len(got) > tc.maxKept {
				t.Fatalf("recovered %d batches, want %d..%d", len(got), tc.minKept, tc.maxKept)
			}
			if len(got) > 0 && !reflect.DeepEqual(got, want[:len(got)]) {
				t.Fatalf("recovered batches are not a prefix of the appended ones")
			}
			if n := w.Stats().TruncatedTails.Load(); n != 1 {
				t.Fatalf("TruncatedTails = %d, want 1", n)
			}
			if w.Stats().TruncatedBytes.Load() <= 0 {
				t.Fatalf("TruncatedBytes not counted")
			}
			// The log must keep working after recovery.
			extra := []view.EdgeUpdate{{From: 9, To: 8}}
			if err := w.Append(extra); err != nil {
				t.Fatalf("append after recovery: %v", err)
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			_, got2, err := OpenWAL(path, SyncPolicy{Mode: SyncAlways})
			if err != nil {
				t.Fatal(err)
			}
			wantAll := append(append([][]view.EdgeUpdate{}, want[:len(got)]...), extra)
			if !reflect.DeepEqual(got2, wantAll) {
				t.Fatalf("post-recovery append not durable: %+v", got2)
			}
		})
	}
}

// TestWALStatsAndSize: counters and Size track appends; SyncAlways
// fsyncs per record; the interval flusher syncs dirty bytes on its own.
func TestWALStatsAndSize(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, _, err := OpenWAL(path, SyncPolicy{Mode: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	var observed int
	w.SetObserver(func(time.Duration) { observed++ })
	batches := testBatches()
	for _, b := range batches {
		if err := w.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	st := w.Stats()
	if n := st.AppendedRecords.Load(); n != int64(len(batches)) {
		t.Fatalf("AppendedRecords = %d, want %d", n, len(batches))
	}
	if st.Fsyncs.Load() < int64(len(batches)) || observed < len(batches) {
		t.Fatalf("SyncAlways fsyncs = %d, observed = %d, want ≥ %d", st.Fsyncs.Load(), observed, len(batches))
	}
	if fi, err := os.Stat(path); err != nil || fi.Size() != w.Size() || st.AppendedBytes.Load() != w.Size() {
		t.Fatalf("size mismatch: stat %v/%v, Size %d, AppendedBytes %d", fi, err, w.Size(), st.AppendedBytes.Load())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(batches[0]); err == nil {
		t.Fatal("append after Close succeeded")
	}

	// Group commit: the flusher must fsync dirty bytes without help.
	w2, _, err := OpenWAL(path, SyncPolicy{Mode: SyncInterval, Interval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	base := w2.Stats().Fsyncs.Load()
	if err := w2.Append(batches[0]); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for w2.Stats().Fsyncs.Load() == base {
		if time.Now().After(deadline) {
			t.Fatal("interval flusher never fsynced")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestWALReset: checkpoint compaction empties the log and the emptied
// log keeps accepting appends that decode on reopen.
func TestWALReset(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, _, err := OpenWAL(path, SyncPolicy{Mode: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range testBatches() {
		if err := w.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Reset(); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	if w.Size() != 0 {
		t.Fatalf("Size after Reset = %d", w.Size())
	}
	post := []view.EdgeUpdate{{From: 7, To: 6, Delete: true}}
	if err := w.Append(post); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	_, got, err := OpenWAL(path, SyncPolicy{Mode: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, [][]view.EdgeUpdate{post}) {
		t.Fatalf("post-Reset log decoded %+v", got)
	}
}

// TestParseSyncPolicy pins the -wal-sync syntax.
func TestParseSyncPolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want SyncPolicy
		str  string
		ok   bool
	}{
		{"", SyncPolicy{Mode: SyncAlways}, "always", true},
		{"always", SyncPolicy{Mode: SyncAlways}, "always", true},
		{"none", SyncPolicy{Mode: SyncNone}, "none", true},
		{"50ms", SyncPolicy{Mode: SyncInterval, Interval: 50 * time.Millisecond}, "50ms", true},
		{"2s", SyncPolicy{Mode: SyncInterval, Interval: 2 * time.Second}, "2s", true},
		{"0s", SyncPolicy{}, "", false},
		{"-5ms", SyncPolicy{}, "", false},
		{"often", SyncPolicy{}, "", false},
	} {
		got, err := ParseSyncPolicy(tc.in)
		if tc.ok != (err == nil) {
			t.Fatalf("ParseSyncPolicy(%q) error = %v, want ok=%v", tc.in, err, tc.ok)
		}
		if !tc.ok {
			continue
		}
		if got != tc.want || got.String() != tc.str {
			t.Fatalf("ParseSyncPolicy(%q) = %+v (%q), want %+v (%q)", tc.in, got, got.String(), tc.want, tc.str)
		}
	}
}

// TestWALEmptyBatchNoop: appending an empty batch writes nothing.
func TestWALEmptyBatchNoop(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, _, err := OpenWAL(path, SyncPolicy{Mode: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Append(nil); err != nil {
		t.Fatal(err)
	}
	if w.Size() != 0 || w.Stats().AppendedRecords.Load() != 0 {
		t.Fatalf("empty batch appended bytes: size %d", w.Size())
	}
}

// TestWALStickyGroupCommitFsyncError: a failed background (group-commit)
// fsync must not be swallowed — records acked since the last successful
// fsync may be lost, so the next Append has to fail with the sticky
// error until a checkpoint's Reset makes the log's content irrelevant.
func TestWALStickyGroupCommitFsyncError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, _, err := OpenWAL(path, SyncPolicy{Mode: SyncInterval, Interval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	injected := errors.New("injected fsync failure")
	w.mu.Lock()
	w.syncFn = func() error { return injected }
	w.mu.Unlock()

	if err := w.Append(testBatches()[0]); err != nil {
		t.Fatalf("append before any fsync failed: %v", err)
	}
	// Wait for the group-commit flusher to hit the failing fsync.
	deadline := time.Now().Add(10 * time.Second)
	for {
		w.mu.Lock()
		sticky := w.syncErr
		w.mu.Unlock()
		if sticky != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("flusher never recorded the fsync failure")
		}
		time.Sleep(time.Millisecond)
	}

	errs0 := w.Stats().AppendErrors.Load()
	if err := w.Append(testBatches()[1]); !errors.Is(err, injected) {
		t.Fatalf("append after a failed background fsync returned %v, want the sticky error", err)
	}
	if got := w.Stats().AppendErrors.Load(); got != errs0+1 {
		t.Fatalf("AppendErrors = %d, want %d", got, errs0+1)
	}
	// The error stays sticky even though nothing new is dirty.
	if err := w.Append(testBatches()[1]); !errors.Is(err, injected) {
		t.Fatalf("sticky error did not persist: %v", err)
	}

	// A checkpoint's Reset truncates the log — every record the failed
	// fsync may have lost is covered by the checkpoint — and clears the
	// stickiness.
	w.mu.Lock()
	w.syncFn = nil
	w.mu.Unlock()
	if err := w.Reset(); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	if err := w.Append(testBatches()[2]); err != nil {
		t.Fatalf("append after Reset still failing: %v", err)
	}
}

// TestWALCloseSurfacesStickyFsyncError: Close must report a sticky
// background fsync failure instead of returning nil over lost records.
func TestWALCloseSurfacesStickyFsyncError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, _, err := OpenWAL(path, SyncPolicy{Mode: SyncInterval, Interval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	injected := errors.New("injected fsync failure")
	w.mu.Lock()
	w.syncFn = func() error { return injected }
	w.mu.Unlock()
	if err := w.Append(testBatches()[0]); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		w.mu.Lock()
		sticky := w.syncErr
		w.mu.Unlock()
		if sticky != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("flusher never recorded the fsync failure")
		}
		time.Sleep(time.Millisecond)
	}
	if err := w.Close(); !errors.Is(err, injected) {
		t.Fatalf("Close returned %v, want the sticky fsync error", err)
	}
}
