package store

// Aligned section codec for the per-shard checkpoint part files. The
// single-file GVSNAP01 codec (snapshot.go) streams byte-packed frames;
// part files instead keep every payload 8-byte aligned so a file mapped
// into memory can hand its integer columns straight to the graph
// backends without copying (see loadManifestGraph and mmap_unix.go):
//
//	header (24 bytes):
//	  magic "GVPART01" | format u32 LE | role u8 | pad u8[3] | seq u64 LE
//	section (24-byte header + padded payload):
//	  tag u32 LE | element count u32 LE | payload bytes u64 LE |
//	  crc32c(payload) u32 LE | pad u32 | payload | zero pad to 8
//
// The header and every section header are multiples of 8 bytes and each
// payload is padded to one, so every payload starts 8-aligned from the
// file start. Integer columns store raw little-endian element arrays;
// on a little-endian host an aligned, checksum-verified payload is
// reinterpreted in place (zero-copy) when the reader allows it, and
// copied element-by-element otherwise. String sections are always
// decoded by copy.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"unsafe"
)

// partMagic opens every part file.
var partMagic = [8]byte{'G', 'V', 'P', 'A', 'R', 'T', '0', '1'}

// partFormat is the part-file format version; bump on layout change.
const partFormat = 1

// Part roles: which slice of the checkpoint a part file carries.
const (
	roleGlobal = 1 // labels, categorical keys, node→label column
	roleShard  = 2 // one shard's CSR + label partition + attrs (+ boundaries)
	roleExts   = 3 // materialized view extensions
)

// partHeaderLen and partSecLen are the fixed framing sizes.
const (
	partHeaderLen = 24
	partSecLen    = 24
)

// Part section tags. Global and shard parts reuse the column vocabulary
// of the GVSNAP01 codec; extension parts have their own block tags.
const (
	ptagLabels    = 1  // strings: interner names, id order
	ptagCatKeys   = 2  // strings: categorical attribute keys, sorted
	ptagNodeLabel = 3  // i32s: node id -> label id
	ptagOutOff    = 4  // i32s: forward CSR offsets
	ptagOutAdj    = 5  // i32s: forward CSR adjacency
	ptagInOff     = 6  // i32s: reverse CSR offsets
	ptagInAdj     = 7  // i32s: reverse CSR adjacency
	ptagLabelOff  = 8  // i32s: label partition offsets
	ptagLabelIdx  = 9  // i32s: label partition index
	ptagAttrOff   = 10 // i32s: attribute column offsets
	ptagAttrKey   = 11 // strings: attribute keys, per-node sorted
	ptagAttrVal   = 12 // i64s: attribute values
	ptagShardN    = 13 // u64: owned node count (sharded shard parts)
	ptagBoundSrc  = 14 // i32s: boundary edge sources (sharded shard parts)
	ptagBoundDst  = 15 // i32s: boundary edge targets (sharded shard parts)

	ptagExtCount    = 32 // u64: number of serialized view extensions
	ptagExtMeta     = 33 // strings: [view name, pattern fingerprint]
	ptagExtMatched  = 34 // u64: 1 when the view matched
	ptagExtSimLens  = 35 // i32s: per pattern node, sim-set length (-1 = nil)
	ptagExtSim      = 36 // i32s: concatenated sim sets
	ptagExtPairLens = 37 // i32s: per pattern edge, match-pair count (-1 = nil)
	ptagExtPairs    = 38 // i32s: interleaved (src,dst) over all edges
	ptagExtDistLens = 39 // i32s: per pattern edge, dist count (-1 = nil)
	ptagExtDists    = 40 // i32s: concatenated shortest-path distances
)

// hostLittleEndian reports whether this machine stores integers in the
// file byte order; only then can a mapped payload be adopted in place.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// pad8 rounds n up to the next multiple of 8.
func pad8(n int) int { return (n + 7) &^ 7 }

// partWriter frames aligned sections onto w; the first error sticks and
// turns every later call into a no-op. n counts the bytes written, so
// the checkpoint can record exact part sizes in the manifest.
type partWriter struct {
	w   io.Writer
	buf []byte
	n   int64
	err error
}

// write appends raw bytes, folding the error into the sticky state.
func (pw *partWriter) write(b []byte) {
	if pw.err != nil {
		return
	}
	var wrote int
	wrote, pw.err = pw.w.Write(b)
	pw.n += int64(wrote)
}

// header writes the part-file header.
func (pw *partWriter) header(role byte, seq uint64) {
	var hdr [partHeaderLen]byte
	copy(hdr[:], partMagic[:])
	binary.LittleEndian.PutUint32(hdr[8:], partFormat)
	hdr[12] = role
	binary.LittleEndian.PutUint64(hdr[16:], seq)
	pw.write(hdr[:])
}

// section frames pw.buf as one payload with the given element count.
func (pw *partWriter) section(tag uint32, count int) {
	if pw.err != nil {
		return
	}
	var hdr [partSecLen]byte
	binary.LittleEndian.PutUint32(hdr[0:], tag)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(count))
	binary.LittleEndian.PutUint64(hdr[8:], uint64(len(pw.buf)))
	binary.LittleEndian.PutUint32(hdr[16:], crc32.Checksum(pw.buf, castagnoli))
	pw.write(hdr[:])
	pw.write(pw.buf)
	if p := pad8(len(pw.buf)) - len(pw.buf); p > 0 {
		var zero [8]byte
		pw.write(zero[:p])
	}
}

// pu64 writes a scalar section.
func (pw *partWriter) pu64(tag uint32, v uint64) {
	pw.buf = binary.LittleEndian.AppendUint64(pw.buf[:0], v)
	pw.section(tag, 1)
}

// putPI32s writes a 32-bit integer column section (a free function
// because methods cannot be generic).
func putPI32s[T ~int32](pw *partWriter, tag uint32, s []T) {
	pw.buf = pw.buf[:0]
	for _, v := range s {
		pw.buf = binary.LittleEndian.AppendUint32(pw.buf, uint32(v))
	}
	pw.section(tag, len(s))
}

// pi64s writes a 64-bit integer column section.
func (pw *partWriter) pi64s(tag uint32, s []int64) {
	pw.buf = pw.buf[:0]
	for _, v := range s {
		pw.buf = binary.LittleEndian.AppendUint64(pw.buf, uint64(v))
	}
	pw.section(tag, len(s))
}

// pstrings writes a string column section.
func (pw *partWriter) pstrings(tag uint32, s []string) {
	pw.buf = pw.buf[:0]
	for _, v := range s {
		pw.buf = binary.LittleEndian.AppendUint32(pw.buf, uint32(len(v)))
		pw.buf = append(pw.buf, v...)
	}
	pw.section(tag, len(s))
}

// partReader decodes aligned sections from one fully loaded (or mapped)
// part image in writer order; the first error sticks and turns every
// later call into a no-op returning zero values. With zc set, verified
// integer payloads are reinterpreted in place instead of copied — the
// data must then outlive every decoded slice (mmap for process
// lifetime), and must never be written through.
type partReader struct {
	data []byte
	off  int
	err  error
	zc   bool
}

// newPartReader validates the part header against the manifest's role
// and sequence expectations.
func newPartReader(data []byte, role byte, seq uint64, zc bool) *partReader {
	pr := &partReader{data: data, off: partHeaderLen, zc: zc && hostLittleEndian}
	if len(data) < partHeaderLen {
		pr.err = fmt.Errorf("store: part file truncated at %d bytes", len(data))
		return pr
	}
	if [8]byte(data[:8]) != partMagic {
		pr.err = fmt.Errorf("store: not a part file (magic %q)", data[:8])
		return pr
	}
	if v := binary.LittleEndian.Uint32(data[8:]); v != partFormat {
		pr.err = fmt.Errorf("store: part format %d, this build reads %d", v, partFormat)
		return pr
	}
	if data[12] != role {
		pr.err = fmt.Errorf("store: part role %d, manifest expects %d", data[12], role)
		return pr
	}
	if got := binary.LittleEndian.Uint64(data[16:]); got != seq {
		pr.err = fmt.Errorf("store: part written at checkpoint %d, manifest expects %d", got, seq)
		return pr
	}
	return pr
}

// section reads one section header, demanding the expected tag, and
// returns its element count and checksum-verified payload.
func (pr *partReader) section(tag uint32) (int, []byte) {
	if pr.err != nil {
		return 0, nil
	}
	if len(pr.data)-pr.off < partSecLen {
		pr.err = fmt.Errorf("store: part truncated inside section header at %d", pr.off)
		return 0, nil
	}
	hdr := pr.data[pr.off:]
	if got := binary.LittleEndian.Uint32(hdr); got != tag {
		pr.err = fmt.Errorf("store: part section tag %d, want %d", got, tag)
		return 0, nil
	}
	count := int(int32(binary.LittleEndian.Uint32(hdr[4:])))
	plen := binary.LittleEndian.Uint64(hdr[8:])
	if plen > maxSectionBytes {
		pr.err = fmt.Errorf("store: part section of %d bytes exceeds the %d cap", plen, int64(maxSectionBytes))
		return 0, nil
	}
	body := pr.data[pr.off+partSecLen:]
	if uint64(len(body)) < plen {
		pr.err = fmt.Errorf("store: part truncated inside section %d payload", tag)
		return 0, nil
	}
	body = body[:plen]
	if crc32.Checksum(body, castagnoli) != binary.LittleEndian.Uint32(hdr[16:]) {
		pr.err = fmt.Errorf("store: part section %d checksum mismatch", tag)
		return 0, nil
	}
	next := pr.off + partSecLen + pad8(int(plen))
	if next > len(pr.data) {
		pr.err = fmt.Errorf("store: part truncated inside section %d padding", tag)
		return 0, nil
	}
	pr.off = next
	return count, body
}

// done verifies the reader consumed the image exactly.
func (pr *partReader) done() error {
	if pr.err == nil && pr.off != len(pr.data) {
		pr.err = fmt.Errorf("store: part has %d trailing bytes", len(pr.data)-pr.off)
	}
	return pr.err
}

// ru64 reads a scalar section.
func (pr *partReader) ru64(tag uint32) uint64 {
	count, body := pr.section(tag)
	if pr.err != nil {
		return 0
	}
	if count != 1 || len(body) != 8 {
		pr.err = fmt.Errorf("store: part section %d is not a scalar", tag)
		return 0
	}
	return binary.LittleEndian.Uint64(body)
}

// readPI32s reads a 32-bit integer column section: zero-copy when the
// reader allows it and the payload is aligned, element-wise otherwise.
// The result is always non-nil, matching the make-built columns the
// FromColumns adopters expect (they nil out append-built fields).
func readPI32s[T ~int32](pr *partReader, tag uint32) []T {
	count, body := pr.section(tag)
	if pr.err != nil {
		return nil
	}
	if count < 0 || len(body) != count*4 {
		pr.err = fmt.Errorf("store: part section %d holds %d bytes for %d elements", tag, len(body), count)
		return nil
	}
	if count == 0 {
		return make([]T, 0)
	}
	if pr.zc && uintptr(unsafe.Pointer(unsafe.SliceData(body)))%unsafe.Alignof(T(0)) == 0 {
		return unsafe.Slice((*T)(unsafe.Pointer(unsafe.SliceData(body))), count)
	}
	s := make([]T, count)
	for i := range s {
		s[i] = T(binary.LittleEndian.Uint32(body[i*4:]))
	}
	return s
}

// ri64s reads a 64-bit integer column section.
func (pr *partReader) ri64s(tag uint32) []int64 {
	count, body := pr.section(tag)
	if pr.err != nil {
		return nil
	}
	if count < 0 || len(body) != count*8 {
		pr.err = fmt.Errorf("store: part section %d holds %d bytes for %d elements", tag, len(body), count)
		return nil
	}
	if count == 0 {
		return make([]int64, 0)
	}
	if pr.zc && uintptr(unsafe.Pointer(unsafe.SliceData(body)))%unsafe.Alignof(int64(0)) == 0 {
		return unsafe.Slice((*int64)(unsafe.Pointer(unsafe.SliceData(body))), count)
	}
	s := make([]int64, count)
	for i := range s {
		s[i] = int64(binary.LittleEndian.Uint64(body[i*8:]))
	}
	return s
}

// rstrings reads a string column section (nil when empty, matching the
// append-built string columns of Freeze/Shard and Interner.Clone).
// Strings are always copied: string headers cannot alias a mapping.
func (pr *partReader) rstrings(tag uint32) []string {
	count, body := pr.section(tag)
	if pr.err != nil || count == 0 {
		return nil
	}
	if count < 0 {
		pr.err = fmt.Errorf("store: part section %d has negative count", tag)
		return nil
	}
	s := make([]string, 0, count)
	for i := 0; i < count; i++ {
		if len(body) < 4 {
			pr.err = fmt.Errorf("store: part section %d truncated inside string %d", tag, i)
			return nil
		}
		slen := int(binary.LittleEndian.Uint32(body))
		body = body[4:]
		if slen < 0 || len(body) < slen {
			pr.err = fmt.Errorf("store: part section %d truncated inside string %d", tag, i)
			return nil
		}
		s = append(s, string(body[:slen]))
		body = body[slen:]
	}
	if len(body) != 0 {
		pr.err = fmt.Errorf("store: part section %d has %d trailing bytes", tag, len(body))
		return nil
	}
	return s
}
