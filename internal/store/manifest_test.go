package store

// Tests of the per-shard checkpoint layout: incremental rewrites touch
// only dirty shards, the manifest rename is the single commit point
// (crash windows on either side recover cleanly), legacy single-file
// snapshots migrate, extensions round-trip exactly, and zero-copy mmap
// loads are indistinguishable from buffered reads.

import (
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"graphviews/internal/graph"
	"graphviews/internal/view"
)

// partNames lists the .part files present in dir, sorted.
func partNames(t *testing.T, dir string) []string {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, "*.part"))
	if err != nil {
		t.Fatal(err)
	}
	for i := range names {
		names[i] = filepath.Base(names[i])
	}
	sort.Strings(names)
	return names
}

// TestIncrementalCheckpointRewritesDirtyShardsOnly is the acceptance
// criterion: after a batch touching a single shard, the next checkpoint
// rewrites exactly that shard's part file plus the manifest — every
// clean shard (and the global part) is carried over by reference.
func TestIncrementalCheckpointRewritesDirtyShardsOnly(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	g := richGraph()
	const k = 3
	if err := s.Checkpoint(graph.Shard(g, k), nil, 1); err != nil {
		t.Fatal(err)
	}
	before := partNames(t, dir)
	if got := s.CheckpointStats().ShardsWritten.Load(); got != k {
		t.Fatalf("full checkpoint wrote %d shards, want %d", got, k)
	}

	// One edge whose endpoints both live in shard 0 (0 mod 3 == 3 mod 3).
	batch := []view.EdgeUpdate{{From: 0, To: 3}}
	if err := s.Append(batch); err != nil {
		t.Fatal(err)
	}
	g.AddEdge(0, 3)
	if err := s.Checkpoint(graph.Shard(g, k), nil, 2); err != nil {
		t.Fatal(err)
	}
	st := s.CheckpointStats()
	if w, sk := st.ShardsWritten.Load(), st.ShardsSkipped.Load(); w != k+1 || sk != k-1 {
		t.Fatalf("incremental checkpoint: shards written %d (want %d), skipped %d (want %d)", w, k, w-3, k-1)
	}
	after := partNames(t, dir)
	// The global part and the two clean shard parts keep their seq-1
	// names; shard 0 moved to seq 2 and its seq-1 file was collected.
	carried := 0
	for _, n := range before {
		for _, m := range after {
			if n == m {
				carried++
			}
		}
	}
	if carried != k { // global-1 + shard-1-1 + shard-2-1
		t.Fatalf("carried %d of %v over to %v, want %d untouched parts", carried, before, after, k)
	}
	wantNew := "shard-0-2.part"
	found := false
	for _, n := range after {
		if n == wantNew {
			found = true
		}
	}
	if !found || len(after) != len(before) {
		t.Fatalf("after incremental checkpoint parts = %v, want %v with shard-0-1 replaced by %s", after, before, wantNew)
	}

	// The committed result must still load identically.
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if !reflect.DeepEqual(s2.Base(), graph.Shard(g, k)) {
		t.Fatal("incrementally checkpointed base differs from a full shard of the same graph")
	}
	if s2.BaseVersion() != 2 {
		t.Fatalf("BaseVersion = %d, want 2", s2.BaseVersion())
	}
}

// TestCheckpointKindChangeForcesFullRewrite: switching backends (or
// shard counts) between checkpoints cannot reuse parts.
func TestCheckpointKindChangeForcesFullRewrite(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	g := richGraph()
	if err := s.Checkpoint(graph.Shard(g, 3), nil, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(graph.Freeze(g), nil, 2); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if !reflect.DeepEqual(s2.Base(), graph.Freeze(g)) {
		t.Fatal("kind change did not rewrite the checkpoint")
	}
	// Every sharded-era part is superseded and must be gone.
	for _, n := range partNames(t, dir) {
		if n != "global-2.part" && n != "shard-0-2.part" {
			t.Fatalf("stale part %s survived the full rewrite", n)
		}
	}
}

// TestLegacySnapshotMigration: a data directory written by the
// single-file GVSNAP01 era opens cleanly, and the first checkpoint
// replaces current.snap with the manifest layout.
func TestLegacySnapshotMigration(t *testing.T) {
	dir := t.TempDir()
	base := graph.Freeze(richGraph())
	f, err := os.Create(filepath.Join(dir, snapName))
	if err != nil {
		t.Fatal(err)
	}
	if err := Save(f, base, 7); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if !reflect.DeepEqual(s.Base(), base) || s.BaseVersion() != 7 {
		t.Fatalf("legacy snapshot not loaded: version %d", s.BaseVersion())
	}
	if err := s.Checkpoint(base, nil, 8); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, manifestName)); err != nil {
		t.Fatalf("manifest not written after migration: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, snapName)); !os.IsNotExist(err) {
		t.Fatalf("legacy current.snap not collected: %v", err)
	}
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if !reflect.DeepEqual(s2.Base(), base) || s2.BaseVersion() != 8 {
		t.Fatal("migrated checkpoint does not round-trip")
	}
}

// TestCheckpointExtensionsRoundTrip: extensions persisted with the
// graph bind back to the same view set with an identical match
// relation, and refuse to bind to a changed one.
func TestCheckpointExtensionsRoundTrip(t *testing.T) {
	dir := t.TempDir()
	g := richGraph()
	vs := crashViews()
	x := view.Materialize(g, vs)

	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(graph.Freeze(g), x, 3); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if len(s2.BaseExtensionData()) != len(vs.Defs) {
		t.Fatalf("reopened with %d serialized extensions, want %d", len(s2.BaseExtensionData()), len(vs.Defs))
	}
	got, ok := s2.BaseExtensions(vs)
	if !ok {
		t.Fatal("persisted extensions did not bind to the same view set")
	}
	requireSameExtensions(t, got, x)

	// A different view set (same size) must fall back to rematerialize.
	other := crashViews()
	other.Defs[0].Name = "renamed"
	if _, ok := s2.BaseExtensions(other); ok {
		t.Fatal("extensions bound to a renamed view set")
	}
	if _, ok := s2.BaseExtensions(nil); ok {
		t.Fatal("extensions bound to a nil view set")
	}
}

// TestCheckpointWithoutExtensions: a nil extensions argument writes no
// exts part and BaseExtensions reports no binding.
func TestCheckpointWithoutExtensions(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(graph.Freeze(richGraph()), nil, 1); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if len(s2.BaseExtensionData()) != 0 {
		t.Fatal("nil extensions serialized an exts part")
	}
	if _, ok := s2.BaseExtensions(crashViews()); ok {
		t.Fatal("BaseExtensions bound with nothing persisted")
	}
}

// TestMmapLoad: a zero-copy (mmap) load is indistinguishable from a
// buffered one, graph and extensions alike, for both backends.
func TestMmapLoad(t *testing.T) {
	if !mmapSupported {
		t.Skip("no mmap on this platform")
	}
	g := richGraph()
	vs := crashViews()
	x := view.Materialize(g, vs)
	for _, backend := range []struct {
		name string
		r    graph.Reader
	}{
		{"frozen", graph.Freeze(g)},
		{"sharded", graph.Shard(g, 3)},
	} {
		backend := backend
		t.Run(backend.name, func(t *testing.T) {
			dir := t.TempDir()
			s, err := Open(dir, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Checkpoint(backend.r, x, 1); err != nil {
				t.Fatal(err)
			}
			s.Close()
			s2, err := Open(dir, Options{Mmap: true})
			if err != nil {
				t.Fatal(err)
			}
			defer s2.Close()
			if !reflect.DeepEqual(s2.Base(), backend.r) {
				t.Fatal("mmap-loaded base differs from the checkpointed backend")
			}
			got, ok := s2.BaseExtensions(vs)
			if !ok {
				t.Fatal("mmap load dropped the extensions")
			}
			requireSameExtensions(t, got, x)
		})
	}
}

// TestOrphanPartsRemovedAtOpen: part files a crashed checkpoint left
// behind (written but never committed by a manifest rename), plus a
// half-written manifest temporary, are collected at Open without
// touching the committed state.
func TestOrphanPartsRemovedAtOpen(t *testing.T) {
	dir := t.TempDir()
	base := graph.Freeze(richGraph())
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(base, nil, 1); err != nil {
		t.Fatal(err)
	}
	s.Close()
	for _, n := range []string{"global-9.part", "shard-0-9.part", "exts-9.part", manifestTmp} {
		if err := os.WriteFile(filepath.Join(dir, n), []byte("crashed checkpoint debris"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open with orphan parts: %v", err)
	}
	defer s2.Close()
	if !reflect.DeepEqual(s2.Base(), base) {
		t.Fatal("orphans displaced the committed checkpoint")
	}
	for _, n := range partNames(t, dir) {
		if n != "global-1.part" && n != "shard-0-1.part" {
			t.Fatalf("orphan %s survived Open", n)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, manifestTmp)); !os.IsNotExist(err) {
		t.Fatalf("stale %s not removed: %v", manifestTmp, err)
	}
	if s2.CheckpointStats().PartsRemoved.Load() < 3 {
		t.Fatalf("PartsRemoved = %d, want >= 3", s2.CheckpointStats().PartsRemoved.Load())
	}
}

// TestCrashBeforeManifestRename: with new parts on disk but the old
// manifest still committed, recovery serves the old checkpoint and the
// full WAL tail — nothing acknowledged is lost, nothing half-written is
// visible.
func TestCrashBeforeManifestRename(t *testing.T) {
	dir := t.TempDir()
	base := graph.Freeze(richGraph())
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(base, nil, 1); err != nil {
		t.Fatal(err)
	}
	appended := [][]view.EdgeUpdate{{{From: 0, To: 2}}, {{From: 1, To: 3, Delete: true}}}
	for _, b := range appended {
		if err := s.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	// Simulate the next checkpoint crashing after writing its parts (and
	// even its manifest temporary) but before the rename.
	for _, n := range []string{"global-2.part", "shard-0-2.part", manifestTmp} {
		if err := os.WriteFile(filepath.Join(dir, n), []byte("uncommitted"), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("recovery open: %v", err)
	}
	defer s2.Close()
	if !reflect.DeepEqual(s2.Base(), base) || s2.BaseVersion() != 1 {
		t.Fatal("uncommitted checkpoint leaked into the recovered state")
	}
	if !reflect.DeepEqual(s2.Tail(), appended) {
		t.Fatalf("recovered tail %v, want the full appended log", s2.Tail())
	}
}

// replayReflectedTail checkpoints a graph (with extensions) that
// already reflects batches, re-appends those batches to the WAL — the
// crash window between the manifest rename and the WAL reset — and
// replays the recovered tail through delta propagation on top of the
// restored extensions. It returns the maintained state, the restored
// extensions, and the frozen graph from before the replay.
func replayReflectedTail(t *testing.T, batches [][]view.EdgeUpdate) (*view.Maintained, *view.Extensions, *graph.Frozen, *view.Set) {
	t.Helper()
	dir := t.TempDir()
	g := richGraph()
	vs := crashViews()
	// The graph the checkpoint captures already contains every batch.
	for _, b := range batches {
		for _, up := range b {
			if up.Delete {
				g.RemoveEdge(up.From, up.To)
			} else {
				g.AddEdge(up.From, up.To)
			}
		}
	}
	x := view.Materialize(g, vs)

	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(graph.Freeze(g), x, 4); err != nil {
		t.Fatal(err)
	}
	// Crash between rename and reset: the reflected batches are still in
	// the log. (Append re-frames them exactly as a pre-checkpoint Append
	// did.)
	for _, b := range batches {
		if err := s.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if !reflect.DeepEqual(s2.Tail(), batches) {
		t.Fatal("reflected tail not recovered verbatim")
	}
	restored, ok := s2.BaseExtensions(vs)
	if !ok {
		t.Fatal("checkpointed extensions did not bind")
	}
	thawed := thaw(t, s2.Base())
	frozenBefore := graph.Freeze(thawed)
	m := view.NewMaintainedFromExtensions(thawed, restored, 1)
	feed := view.NewFeed(m)
	for _, b := range s2.Tail() {
		feed.Submit(b...)
		feed.Flush()
	}
	return m, restored, frozenBefore, vs
}

// TestReplayReflectedTailIdempotent pins the crash window between the
// manifest rename and the WAL reset: the log then holds a suffix of
// updates the committed checkpoint already reflects, and replaying it
// with the checkpoint's own extensions attached must be a strict no-op
// — zero net graph change, byte-identical extensions, and no
// rematerialization.
func TestReplayReflectedTailIdempotent(t *testing.T) {
	// No record reverses an earlier one, so every replayed operation
	// already matches the checkpointed state and maintenance must not
	// touch a single extension.
	batches := [][]view.EdgeUpdate{
		{{From: 0, To: 2}, {From: 2, To: 5}},
		{{From: 4, To: 1}},
		{{From: 1, To: 3, Delete: true}},
	}
	m, restored, frozenBefore, vs := replayReflectedTail(t, batches)
	if !reflect.DeepEqual(graph.Freeze(m.G), frozenBefore) {
		t.Fatal("replaying an already-reflected tail changed the graph")
	}
	got := m.SnapshotExtensions()
	if !reflect.DeepEqual(got.Exts, restored.Exts) {
		t.Fatal("replaying an already-reflected tail changed the extensions")
	}
	if m.Stats.Recomputes != 0 {
		t.Fatalf("no-op replay rematerialized %d views", m.Stats.Recomputes)
	}
	requireSameExtensions(t, got, view.Materialize(m.G, vs))
}

// TestReplayReflectedTailWithReversal: when the reflected suffix
// contains an add that a later record deletes, the replay transiently
// changes the graph — but the end state is still exactly the
// checkpoint: per edge, the suffix's last operation decided both. The
// extensions must end semantically identical to rematerialization.
func TestReplayReflectedTailWithReversal(t *testing.T) {
	batches := [][]view.EdgeUpdate{
		{{From: 0, To: 2}, {From: 2, To: 5}},
		{{From: 0, To: 2, Delete: true}},
		{{From: 4, To: 1}},
	}
	m, _, frozenBefore, vs := replayReflectedTail(t, batches)
	if !reflect.DeepEqual(graph.Freeze(m.G), frozenBefore) {
		t.Fatal("replay with a reversal did not restore the checkpointed graph")
	}
	requireSameExtensions(t, m.SnapshotExtensions(), view.Materialize(m.G, vs))
}
