package store

import (
	"bytes"
	"reflect"
	"testing"

	"graphviews/internal/graph"
)

// richGraph builds a graph exercising every serialized column: several
// labels, integer and categorical attributes, nodes with no attributes,
// and enough edges that sharding produces boundary arrays.
func richGraph() *graph.Graph {
	g := graph.New()
	labels := []string{"person", "site", "item", "tag"}
	for i := 0; i < 40; i++ {
		v := g.AddNode(labels[i%len(labels)])
		if i%3 == 0 {
			g.SetAttr(v, "age", int64(20+i))
		}
		if i%5 == 0 {
			g.SetAttrString(v, "city", []string{"oslo", "lima", "pune"}[i%3])
		}
	}
	for i := 0; i < 40; i++ {
		u := graph.NodeID(i)
		g.AddEdge(u, graph.NodeID((i+1)%40))
		g.AddEdge(u, graph.NodeID((i*7+3)%40))
		if i%4 == 0 {
			g.AddEdge(u, graph.NodeID((i*13+5)%40))
		}
	}
	return g
}

// saveLoad round-trips a backend through the snapshot codec.
func saveLoad(t *testing.T, g graph.Reader, version uint64) (graph.Reader, uint64) {
	t.Helper()
	var buf bytes.Buffer
	if err := Save(&buf, g, version); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, v, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	return got, v
}

// TestSnapshotFrozenIdentity: Save→Load is the identity on *Frozen,
// down to reflect.DeepEqual of the unexported flat arrays.
func TestSnapshotFrozenIdentity(t *testing.T) {
	want := graph.Freeze(richGraph())
	got, v := saveLoad(t, want, 42)
	if v != 42 {
		t.Fatalf("version = %d, want 42", v)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Save→Load is not the identity on Frozen:\n got %#v\nwant %#v", got, want)
	}
}

// TestSnapshotShardedIdentity: same identity for the sharded backend,
// including boundary arrays, at several shard counts.
func TestSnapshotShardedIdentity(t *testing.T) {
	g := richGraph()
	for _, k := range []int{1, 3, 8} {
		want := graph.Shard(g, k)
		got, v := saveLoad(t, want, 7)
		if v != 7 {
			t.Fatalf("k=%d: version = %d, want 7", k, v)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("k=%d: Save→Load is not the identity on Sharded", k)
		}
	}
}

// TestSnapshotMutableFreezes: saving a mutable *Graph stores its frozen
// form.
func TestSnapshotMutableFreezes(t *testing.T) {
	g := richGraph()
	got, _ := saveLoad(t, g, 1)
	if !reflect.DeepEqual(got, graph.Freeze(g)) {
		t.Fatalf("saving a mutable graph did not store Freeze(g)")
	}
}

// TestSnapshotEmptyGraph: the degenerate empty graph round-trips.
func TestSnapshotEmptyGraph(t *testing.T) {
	want := graph.Freeze(graph.New())
	got, _ := saveLoad(t, want, 0)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("empty graph did not round-trip")
	}
}

// TestSnapshotCorruptionDetected: flipping any byte of the section
// region, or truncating the file anywhere, must fail Load — checkpoints
// are atomic, so unlike a WAL tail, damage is an error, not data.
func TestSnapshotCorruptionDetected(t *testing.T) {
	var buf bytes.Buffer
	if err := Save(&buf, graph.Freeze(richGraph()), 3); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Header bytes 13..20 are the write clock — a flip there changes the
	// version, not the structure — so start at the sections. Flipping the
	// kind byte (12) must also fail: wrong section order.
	for off := 12; off < len(data); off++ {
		if off >= 13 && off < 21 {
			continue
		}
		mut := append([]byte(nil), data...)
		mut[off] ^= 0xff
		if _, _, err := Load(bytes.NewReader(mut)); err == nil {
			t.Fatalf("byte flip at offset %d loaded successfully", off)
		}
	}
	for _, cut := range []int{0, 5, 20, 21, 60, len(data) - 1} {
		if _, _, err := Load(bytes.NewReader(data[:cut])); err == nil {
			t.Fatalf("truncation at %d loaded successfully", cut)
		}
	}
	if _, _, err := Load(bytes.NewReader([]byte("not a snapshot at all"))); err == nil {
		t.Fatal("garbage loaded successfully")
	}
}
