package par

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

func TestForEachCoversAllItems(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		const n = 1000
		hits := make([]int32, n)
		if err := ForEach(context.Background(), workers, n, func(i int) {
			atomic.AddInt32(&hits[i], 1)
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: item %d ran %d times", workers, i, h)
			}
		}
	}
}

func TestForEachNilContextAndEmptyRange(t *testing.T) {
	if err := ForEach(nil, 4, 0, func(int) { t.Fatal("fn called for n=0") }); err != nil {
		t.Fatal(err)
	}
	ran := false
	if err := ForEach(nil, 0, 1, func(int) { ran = true }); err != nil || !ran {
		t.Fatalf("nil ctx run: err=%v ran=%v", err, ran)
	}
}

func TestForEachCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int32
	err := ForEach(ctx, 4, 100, func(int) { ran.Add(1) })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran.Load() != 0 {
		t.Fatalf("%d iterations ran under a pre-cancelled ctx", ran.Load())
	}
}

func TestForEachMidwayCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int32
	err := ForEach(ctx, 2, 10_000, func(int) {
		if ran.Add(1) == 50 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := ran.Load(); got >= 10_000 {
		t.Fatalf("cancellation did not stop the pool (ran %d)", got)
	}
}

func TestForEachPanicPropagates(t *testing.T) {
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recovered %v, want boom", r)
		}
	}()
	ForEach(context.Background(), 4, 100, func(i int) {
		if i == 13 {
			panic("boom")
		}
	})
	t.Fatal("ForEach returned instead of panicking")
}

func TestWorkersResolution(t *testing.T) {
	if Workers(0) < 1 || Workers(-1) < 1 {
		t.Fatal("non-positive requests must resolve to >= 1")
	}
	if Workers(7) != 7 {
		t.Fatalf("Workers(7) = %d", Workers(7))
	}
}
