// Package par is the concurrency substrate of the engine: a minimal
// work-stealing ForEach used to fan embarrassingly parallel phases —
// per-view materialization, per-view containment matching, per-edge
// MatchJoin seeding — over a bounded worker pool, with cooperative
// context cancellation.
package par

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a requested parallelism: values <= 0 mean GOMAXPROCS.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// ForEach runs fn(i) for every i in [0, n), distributing iterations over
// up to workers goroutines (workers <= 0 means GOMAXPROCS; the pool never
// exceeds n). Iterations are handed out through a shared atomic counter,
// so uneven per-item cost balances automatically.
//
// A nil ctx means context.Background(). When ctx is cancelled, no new
// iterations start and ForEach returns ctx.Err(); iterations already in
// flight run to completion, so the caller's partial state stays
// well-formed. A panic in fn is re-raised on the calling goroutine after
// the pool drains.
func ForEach(ctx context.Context, workers, n int, fn func(i int)) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if n <= 0 {
		return ctx.Err()
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			fn(i)
		}
		// Report a cancellation that landed during the final iteration,
		// exactly like the pooled branch below: callers discard partial
		// state whenever ForEach returns non-nil, and a worker function
		// that itself observes ctx (nested ForEach) may have stopped
		// early, so completing the loop does not mean the work is whole.
		return ctx.Err()
	}

	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicMu  sync.Mutex
		panicked any
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicMu.Lock()
					if panicked == nil {
						panicked = r
					}
					panicMu.Unlock()
				}
			}()
			for ctx.Err() == nil {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
	return ctx.Err()
}
