package bitset

import (
	"math/rand"
	"testing"
)

// TestSetAgainstBoolReference drives a Set and a []bool mirror through
// randomized operations and checks every observable agrees.
func TestSetAgainstBoolReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(300)
		s := New(n)
		ref := make([]bool, n)
		for op := 0; op < 400; op++ {
			i := rng.Intn(n)
			switch rng.Intn(4) {
			case 0:
				s.Set(i)
				ref[i] = true
			case 1:
				s.Clear(i)
				ref[i] = false
			case 2:
				was := s.TestAndSet(i)
				if was != !ref[i] {
					t.Fatalf("TestAndSet(%d) = %v, ref %v", i, was, ref[i])
				}
				ref[i] = true
			case 3:
				was := s.TestAndClear(i)
				if was != ref[i] {
					t.Fatalf("TestAndClear(%d) = %v, ref %v", i, was, ref[i])
				}
				ref[i] = false
			}
		}
		count, anyRef := 0, false
		for i, b := range ref {
			if s.Get(i) != b {
				t.Fatalf("Get(%d) = %v, ref %v", i, s.Get(i), b)
			}
			if b {
				count++
				anyRef = true
			}
		}
		if s.Count() != count {
			t.Fatalf("Count = %d, ref %d", s.Count(), count)
		}
		if s.Any() != anyRef {
			t.Fatalf("Any = %v, ref %v", s.Any(), anyRef)
		}
		var got []int
		s.Iterate(func(i int) bool { got = append(got, i); return true })
		if len(got) != count {
			t.Fatalf("Iterate visited %d bits, want %d", len(got), count)
		}
		for j := 1; j < len(got); j++ {
			if got[j] <= got[j-1] {
				t.Fatalf("Iterate out of order: %v", got)
			}
		}
		for _, i := range got {
			if !ref[i] {
				t.Fatalf("Iterate visited clear bit %d", i)
			}
		}
	}
}

// TestWordOps checks And/Or/AndNot/CopyFrom/SetFirst/Reset against the
// element-wise definitions.
func TestWordOps(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 131 // deliberately not a multiple of 64
	mk := func() (Set, []bool) {
		s := New(n)
		ref := make([]bool, n)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				s.Set(i)
				ref[i] = true
			}
		}
		return s, ref
	}
	check := func(name string, s Set, ref []bool) {
		t.Helper()
		for i := 0; i < n; i++ {
			if s.Get(i) != ref[i] {
				t.Fatalf("%s: bit %d = %v, want %v", name, i, s.Get(i), ref[i])
			}
		}
	}
	for trial := 0; trial < 30; trial++ {
		a, ra := mk()
		b, rb := mk()
		and := New(n)
		and.CopyFrom(a)
		and.And(b)
		or := New(n)
		or.CopyFrom(a)
		or.Or(b)
		andNot := New(n)
		andNot.CopyFrom(a)
		andNot.AndNot(b)
		for i := 0; i < n; i++ {
			if and.Get(i) != (ra[i] && rb[i]) || or.Get(i) != (ra[i] || rb[i]) ||
				andNot.Get(i) != (ra[i] && !rb[i]) {
				t.Fatalf("word op mismatch at %d", i)
			}
		}
		k := rng.Intn(n + 1)
		a.SetFirst(k)
		for i := range ra {
			ra[i] = i < k
		}
		check("SetFirst", a, ra)
		if a.Count() != k {
			t.Fatalf("SetFirst(%d).Count = %d", k, a.Count())
		}
		a.Reset()
		if a.Any() {
			t.Fatalf("Reset left bits set")
		}
	}
	// Iterate early exit.
	s := New(100)
	for i := 0; i < 100; i += 3 {
		s.Set(i)
	}
	visited := 0
	s.Iterate(func(int) bool { visited++; return visited < 5 })
	if visited != 5 {
		t.Fatalf("early exit visited %d", visited)
	}
}

// TestMatrix checks row addressing, the flat backing contract and
// MatrixOver aliasing.
func TestMatrix(t *testing.T) {
	m := NewMatrix(3, 70)
	m.Set(0, 0)
	m.Set(1, 69)
	m.Set(2, 64)
	if !m.Get(0, 0) || !m.Get(1, 69) || !m.Get(2, 64) {
		t.Fatal("matrix get/set broken")
	}
	if m.Get(0, 69) || m.Get(1, 0) {
		t.Fatal("row bleed")
	}
	if m.Rows() != 3 {
		t.Fatalf("Rows = %d", m.Rows())
	}
	if got := m.Row(1).Count(); got != 1 {
		t.Fatalf("row count = %d", got)
	}
	m.Clear(1, 69)
	if m.Get(1, 69) {
		t.Fatal("clear failed")
	}
	m.Reset()
	for r := 0; r < 3; r++ {
		if m.Row(r).Any() {
			t.Fatal("reset failed")
		}
	}

	words := make([]uint64, MatrixWords(2, 100))
	o := MatrixOver(2, 100, words)
	o.Set(1, 99)
	if words[Words(100)+1]&(1<<35) == 0 {
		t.Fatal("MatrixOver does not alias the provided words")
	}
}
