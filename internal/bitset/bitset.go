// Package bitset provides the dense, word-parallel membership kernels of
// the answer pipeline. A Set packs one bit per node id into []uint64
// words, so the inner-loop membership probes of the simulation and
// MatchJoin fixpoints touch 8× less memory than the former []bool rows
// (64× less than map-backed sets), and whole-set operations (union,
// intersection, difference, population count) run a word at a time. A
// Matrix carries one row per pattern node over a single flat allocation,
// which the per-engine scratch arenas recycle across queries.
package bitset

import "math/bits"

const wordBits = 64

// Words returns the number of uint64 words needed for n bits.
func Words(n int) int { return (n + wordBits - 1) / wordBits }

// Set is a fixed-capacity bit set over [0, 64·len(s)). The zero value is
// an empty set of capacity 0; use New or FromWords to size it.
type Set []uint64

// New returns a set with capacity for n bits, all clear.
func New(n int) Set { return make(Set, Words(n)) }

// FromWords wraps an existing word slice (e.g. an arena block) as a Set.
// The words are used as-is; callers wanting an empty set must Reset it.
func FromWords(w []uint64) Set { return Set(w) }

// Get reports whether bit i is set.
func (s Set) Get(i int) bool {
	return s[uint(i)/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

// Set sets bit i.
func (s Set) Set(i int) {
	s[uint(i)/wordBits] |= 1 << (uint(i) % wordBits)
}

// Clear clears bit i.
func (s Set) Clear(i int) {
	s[uint(i)/wordBits] &^= 1 << (uint(i) % wordBits)
}

// TestAndSet sets bit i and reports whether it was previously clear.
func (s Set) TestAndSet(i int) bool {
	w, m := uint(i)/wordBits, uint64(1)<<(uint(i)%wordBits)
	old := s[w]
	s[w] = old | m
	return old&m == 0
}

// TestAndClear clears bit i and reports whether it was previously set.
func (s Set) TestAndClear(i int) bool {
	w, m := uint(i)/wordBits, uint64(1)<<(uint(i)%wordBits)
	old := s[w]
	s[w] = old &^ m
	return old&m != 0
}

// SetFirst sets bits [0, n) and clears any remaining bits, initializing
// an "all alive" set of population n in O(words).
func (s Set) SetFirst(n int) {
	full := n / wordBits
	for i := 0; i < full; i++ {
		s[i] = ^uint64(0)
	}
	rest := full
	if rem := n % wordBits; rem != 0 {
		s[full] = 1<<rem - 1
		rest++
	}
	for i := rest; i < len(s); i++ {
		s[i] = 0
	}
}

// Count returns the number of set bits.
func (s Set) Count() int {
	c := 0
	for _, w := range s {
		c += bits.OnesCount64(w)
	}
	return c
}

// Any reports whether any bit is set.
func (s Set) Any() bool {
	for _, w := range s {
		if w != 0 {
			return true
		}
	}
	return false
}

// Reset clears every bit.
func (s Set) Reset() {
	clear(s)
}

// And intersects s with o in place (s &= o). Lengths must match.
func (s Set) And(o Set) {
	for i := range s {
		s[i] &= o[i]
	}
}

// Or unions o into s in place (s |= o). Lengths must match.
func (s Set) Or(o Set) {
	for i := range s {
		s[i] |= o[i]
	}
}

// AndNot removes o's bits from s in place (s &^= o). Lengths must match.
func (s Set) AndNot(o Set) {
	for i := range s {
		s[i] &^= o[i]
	}
}

// CopyFrom overwrites s with o. Lengths must match.
func (s Set) CopyFrom(o Set) {
	copy(s, o)
}

// Iterate calls fn for every set bit in ascending order, stopping early if
// fn returns false. The word-at-a-time scan with trailing-zero extraction
// makes sparse iteration proportional to the population count, not the
// capacity.
func (s Set) Iterate(fn func(i int) bool) {
	for wi, w := range s {
		base := wi * wordBits
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !fn(base + b) {
				return
			}
			w &= w - 1
		}
	}
}

// Matrix is a dense rows×cols bit matrix over one flat word slice: one
// row per pattern node, one column per graph node. Rows share a stride so
// the whole working state is a single (arena-recyclable) allocation.
type Matrix struct {
	stride int // words per row
	rows   int
	bits   []uint64
}

// NewMatrix returns a rows×cols matrix, all clear.
func NewMatrix(rows, cols int) *Matrix {
	s := Words(cols)
	return &Matrix{stride: s, rows: rows, bits: make([]uint64, rows*s)}
}

// MatrixOver wraps words (e.g. an arena block of Words(cols)·rows words)
// as a rows×cols matrix. The words are used as-is.
func MatrixOver(rows, cols int, words []uint64) *Matrix {
	return &Matrix{stride: Words(cols), rows: rows, bits: words}
}

// MatrixWords returns the word count backing a rows×cols matrix.
func MatrixWords(rows, cols int) int { return rows * Words(cols) }

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Row returns row r as a Set sharing the matrix storage.
func (m *Matrix) Row(r int) Set {
	return Set(m.bits[r*m.stride : (r+1)*m.stride])
}

// Get reports bit (r, c).
func (m *Matrix) Get(r, c int) bool { return m.Row(r).Get(c) }

// Set sets bit (r, c).
func (m *Matrix) Set(r, c int) { m.Row(r).Set(c) }

// Clear clears bit (r, c).
func (m *Matrix) Clear(r, c int) { m.Row(r).Clear(c) }

// Reset clears the whole matrix.
func (m *Matrix) Reset() { clear(m.bits) }
