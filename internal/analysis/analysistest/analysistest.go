// Package analysistest runs an analyzer over GOPATH-style fixture
// packages and checks its findings against `// want "regexp"`
// expectation comments — the testing idiom of
// golang.org/x/tools/go/analysis/analysistest, reimplemented on the
// standard library so the suite carries no external dependency.
//
// Layout: <pkgdir>/testdata/src/<importpath>/*.go. Fixture packages may
// import each other by those paths (a fixture "graph" package stands in
// for graphviews/internal/graph — the analyzers match shapes, not the
// real import path) and any standard-library package; std imports are
// type-checked from the toolchain's export data via `go list -export`,
// so tests run offline.
//
// Expectations: a comment `// want "re1" "re2"` on a line means the
// analyzer must report exactly len(wants) findings on that line, each
// matching its regexp (order-free). Lines without a want comment must
// produce no findings.
package analysistest

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"graphviews/internal/analysis"
)

// Run loads each fixture package from testdata/src/<path>, applies the
// analyzer and verifies the findings against the want comments.
func Run(t *testing.T, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	srcRoot := filepath.Join("testdata", "src")
	ld := newLoader(srcRoot)
	for _, path := range pkgPaths {
		pkg, err := ld.load(path)
		if err != nil {
			t.Fatalf("loading fixture package %s: %v", path, err)
		}
		diags := analysis.Run(pkg, []*analysis.Analyzer{a})
		checkExpectations(t, pkg, diags)
	}
}

// loader type-checks fixture packages, resolving fixture-internal
// imports from the source tree and everything else from gc export data.
type loader struct {
	srcRoot string
	fset    *token.FileSet
	loaded  map[string]*analysis.Package
	types   map[string]*types.Package
	gc      types.Importer
}

func newLoader(srcRoot string) *loader {
	ld := &loader{
		srcRoot: srcRoot,
		fset:    token.NewFileSet(),
		loaded:  make(map[string]*analysis.Package),
		types:   make(map[string]*types.Package),
	}
	ld.gc = importer.ForCompiler(ld.fset, "gc", stdExportLookup())
	return ld
}

// stdExportLookup resolves an import path to the toolchain's compiled
// export data via `go list -export` (cached per path; offline-safe).
func stdExportLookup() func(path string) (io.ReadCloser, error) {
	files := make(map[string]string)
	return func(path string) (io.ReadCloser, error) {
		file, ok := files[path]
		if !ok {
			out, err := exec.Command("go", "list", "-export", "-f", "{{.Export}}", path).Output()
			if err != nil {
				var stderr []byte
				if ee, isExit := err.(*exec.ExitError); isExit {
					stderr = ee.Stderr
				}
				return nil, fmt.Errorf("go list -export %s: %v: %s", path, err, stderr)
			}
			file = string(bytes.TrimSpace(out))
			if file == "" {
				return nil, fmt.Errorf("no export data for %s", path)
			}
			files[path] = file
		}
		return os.Open(file)
	}
}

// Import implements types.Importer over the fixture tree + std.
func (ld *loader) Import(path string) (*types.Package, error) {
	if p, ok := ld.types[path]; ok {
		return p, nil
	}
	if _, err := os.Stat(filepath.Join(ld.srcRoot, path)); err == nil {
		pkg, err := ld.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	p, err := ld.gc.Import(path)
	if err != nil {
		return nil, err
	}
	ld.types[path] = p
	return p, nil
}

// load parses and type-checks one fixture package.
func (ld *loader) load(path string) (*analysis.Package, error) {
	if p, ok := ld.loaded[path]; ok {
		return p, nil
	}
	dir := filepath.Join(ld.srcRoot, path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, e.Name()), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	pkg, err := analysis.Check(ld.fset, path, files, ld, "")
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", path, err)
	}
	ld.loaded[path] = pkg
	ld.types[path] = pkg.Types
	return pkg, nil
}

// wantRE matches the expectation clause of a comment; the patterns may
// be double-quoted or backquoted (the x/tools idiom, which keeps regexp
// backslashes readable). quotedRE then splits them out one by one.
var wantRE = regexp.MustCompile("want((?:\\s+(?:\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`))+)")
var quotedRE = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

// expectation is one want regexp at one file:line.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

func checkExpectations(t *testing.T, pkg *analysis.Package, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, q := range quotedRE.FindAllString(m[1], -1) {
					pat, err := strconv.Unquote(q)
					if err != nil {
						t.Errorf("%s: bad want pattern %s: %v", pos, q, err)
						continue
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Errorf("%s: bad want regexp %q: %v", pos, pat, err)
						continue
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", d)
		}
	}
	sort.Slice(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected finding matching %q, got none", w.file, w.line, w.re)
		}
	}
}
