// Package readeralias enforces the graph.Reader aliasing contract
// (internal/graph/reader.go): the slices returned by Out, In,
// NodesWithLabel and NodesWithLabelName and the map returned by Attrs
// alias backend storage. Callers must treat them as immutable — one
// append or in-place sort through such a slice corrupts the backend (or
// a neighbour's adjacency list on *Frozen, whose lists share one flat
// array) and silently breaks the byte-identical-across-backends
// guarantee the view-answering correctness rests on.
//
// Flagged, for any value v obtained (directly or through local
// variables) from a Reader accessor:
//
//   - append(v, ...) — may write into the backend's spare capacity;
//   - passing v to a mutating sort/slices function (Sort, SortFunc,
//     Slice, Reverse, Compact, Delete, Insert, ...);
//   - writing through it: v[i] = x, v[i]++, delete(v, k), clear(v);
//   - retaining it in a struct field (assignment or composite literal)
//     — the alias outlives the call and breaks when the graph mutates.
//
// The taint tracking is source-ordered, so the copy idiom clears a
// variable (`xs = append([]graph.NodeID(nil), xs...)` rebinds xs to
// owned storage) while `xs = append(xs, w)` is caught before the
// rebinding. Remedies: copy first (or graph.AttrsCopy for attribute
// maps), or — when ownership is genuinely transferred — annotate the
// binding //gvcheck:owns <why>.
package readeralias

import (
	"go/ast"
	"go/types"
	"strings"

	"graphviews/internal/analysis"
)

// Analyzer is the readeralias analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "readeralias",
	Doc: "flags mutation, append, sorting or field-retention of slices/maps " +
		"returned by graph.Reader accessors (Out/In/NodesWithLabel/Attrs), " +
		"which alias backend storage",
	Run: run,
}

// accessors are the Reader methods whose results alias backend storage.
var accessors = map[string]bool{
	"Out":                true,
	"In":                 true,
	"NodesWithLabel":     true,
	"NodesWithLabelName": true,
	"Attrs":              true,
}

// sortMutators are the functions of package sort and package slices
// that reorder or rewrite their first argument in place.
var sortMutators = map[string]bool{
	"Sort": true, "SortFunc": true, "SortStableFunc": true, "Stable": true,
	"Slice": true, "SliceStable": true, "Reverse": true,
	"Compact": true, "CompactFunc": true, "Delete": true, "DeleteFunc": true,
	"Insert": true, "Replace": true,
}

// graphPackage reports whether path is the graph package (the real
// graphviews/internal/graph, or any .../graph fixture in testdata).
func graphPackage(path string) bool {
	return path == "graph" || strings.HasSuffix(path, "/graph")
}

func run(pass *analysis.Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, fn)
		}
	}
}

// readerCall reports whether e is a direct Reader accessor call,
// returning the method name.
func readerCall(pass *analysis.Pass, e ast.Expr) (string, bool) {
	call, ok := analysis.Unparen(e).(*ast.CallExpr)
	if !ok {
		return "", false
	}
	fn, _, ok := pass.MethodCall(call)
	if !ok || !accessors[fn.Name()] || fn.Pkg() == nil || !graphPackage(fn.Pkg().Path()) {
		return "", false
	}
	// Defensive: only the alias-returning signatures count.
	sig := fn.Type().(*types.Signature)
	if sig.Results().Len() != 1 || !analysis.IsSliceOrMap(sig.Results().At(0).Type()) {
		return "", false
	}
	return fn.Name(), true
}

// checkFunc runs the ordered taint analysis over one function body
// (closures included — they share the enclosing bindings).
func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	tainted := make(map[types.Object]string) // object → accessor method

	// taintOf resolves an expression to the accessor it aliases under
	// the current state: a direct accessor call, a tainted variable, or
	// a re-slice of either.
	var taintOf func(e ast.Expr) (string, bool)
	taintOf = func(e ast.Expr) (string, bool) {
		e = analysis.Unparen(e)
		if m, ok := readerCall(pass, e); ok {
			return m, true
		}
		switch x := e.(type) {
		case *ast.Ident:
			if obj := pass.Info.Uses[x]; obj != nil {
				if m, ok := tainted[obj]; ok {
					return m, true
				}
			}
		case *ast.SliceExpr:
			return taintOf(x.X) // v[a:b] still aliases the backend
		}
		return "", false
	}

	remedy := func(method string) string {
		if method == "Attrs" {
			return "use graph.AttrsCopy or annotate //gvcheck:owns"
		}
		return "copy it first (append([]T(nil), s...)) or annotate //gvcheck:owns"
	}

	objOf := func(id *ast.Ident) types.Object {
		if obj := pass.Info.Defs[id]; obj != nil {
			return obj
		}
		return pass.Info.Uses[id]
	}

	w := &analysis.OrderedWalker{
		Expr: func(e ast.Expr) {
			call, ok := e.(*ast.CallExpr)
			if !ok {
				if lit, isLit := e.(*ast.CompositeLit); isLit {
					if _, isStruct := pass.StructLit(lit); isStruct {
						for _, el := range lit.Elts {
							v := el
							if kv, isKV := el.(*ast.KeyValueExpr); isKV {
								v = kv.Value
							}
							if m, bad := taintOf(v); bad && !pass.HasDirective(v.Pos(), "owns", "") {
								pass.Reportf(v.Pos(),
									"struct literal retains the result of Reader.%s, which aliases backend storage; %s",
									m, remedy(m))
							}
						}
					}
				}
				return
			}
			if name, ok := pass.BuiltinCall(call); ok && len(call.Args) > 0 {
				switch name {
				case "append", "delete", "clear":
					if m, bad := taintOf(call.Args[0]); bad {
						pass.Reportf(call.Pos(),
							"%s on the result of Reader.%s, which aliases backend storage; %s",
							name, m, remedy(m))
					}
				}
				return
			}
			if pkgPath, name, ok := pass.PkgFuncCall(call); ok &&
				(pkgPath == "sort" || pkgPath == "slices") && sortMutators[name] && len(call.Args) > 0 {
				if m, bad := taintOf(call.Args[0]); bad {
					pass.Reportf(call.Pos(),
						"%s.%s mutates the result of Reader.%s in place, which aliases backend storage; %s",
						pkgPath, name, m, remedy(m))
				}
			}
		},
		Bind: func(lhs *ast.Ident, rhs ast.Expr) {
			obj := objOf(lhs)
			if obj == nil || lhs.Name == "_" {
				return
			}
			if rhs != nil && !pass.HasDirective(rhs.Pos(), "owns", "") {
				if m, ok := taintOf(rhs); ok {
					tainted[obj] = m
					return
				}
			}
			delete(tainted, obj)
		},
		Store: func(lhs ast.Expr, rhs ast.Expr) {
			if ix, ok := analysis.Unparen(lhs).(*ast.IndexExpr); ok {
				if m, bad := taintOf(ix.X); bad {
					pass.Reportf(lhs.Pos(),
						"write through the result of Reader.%s, which aliases backend storage; %s",
						m, remedy(m))
				}
			}
			if _, ok := analysis.Unparen(lhs).(*ast.SelectorExpr); ok && rhs != nil {
				if m, bad := taintOf(rhs); bad && !pass.HasDirective(rhs.Pos(), "owns", "") {
					pass.Reportf(rhs.Pos(),
						"struct field retains the result of Reader.%s, which aliases backend storage; %s",
						m, remedy(m))
				}
			}
		},
		IncDec: func(st *ast.IncDecStmt) {
			if ix, ok := analysis.Unparen(st.X).(*ast.IndexExpr); ok {
				if m, bad := taintOf(ix.X); bad {
					pass.Reportf(st.Pos(),
						"write through the result of Reader.%s, which aliases backend storage; %s",
						m, remedy(m))
				}
			}
		},
	}
	w.Walk(fn.Body)
}
