// Package readeralias exercises the readeralias analyzer: every
// mutation/retention of a Reader accessor result must be flagged, every
// copy-first idiom must pass.
package readeralias

import (
	"slices"
	"sort"

	"graph"
)

// Holder retains node slices.
type Holder struct {
	Nodes []graph.NodeID
	Attrs map[string]int64
}

func directMutations(r graph.Reader, v graph.NodeID) {
	_ = append(r.Out(v), 1)                                  // want `append on the result of Reader\.Out`
	sort.Slice(r.In(v), func(i, j int) bool { return true }) // want `sort\.Slice mutates the result of Reader\.In`
	slices.Sort(r.NodesWithLabel(0))                         // want `slices\.Sort mutates the result of Reader\.NodesWithLabel`
	slices.Reverse(r.NodesWithLabelName("a"))                // want `slices\.Reverse mutates the result of Reader\.NodesWithLabelName`
	delete(r.Attrs(v), "k")                                  // want `delete on the result of Reader\.Attrs.*AttrsCopy`
	clear(r.Attrs(v))                                        // want `clear on the result of Reader\.Attrs`
}

func throughVariables(r graph.Reader, v graph.NodeID) {
	xs := r.Out(v)
	xs = append(xs, 2) // want `append on the result of Reader\.Out`
	_ = xs

	ys := r.In(v)
	zs := ys  // alias propagates
	zs[0] = 3 // want `write through the result of Reader\.In`

	m := r.Attrs(v)
	m["k"] = 1 // want `write through the result of Reader\.Attrs`

	ws := r.NodesWithLabel(0)
	ws[0]++ // want `write through the result of Reader\.NodesWithLabel`

	sub := r.Out(v)[1:] // re-slices still alias
	slices.Sort(sub)    // want `slices\.Sort mutates the result of Reader\.Out`
}

func retention(r graph.Reader, v graph.NodeID, h *Holder) {
	h.Nodes = r.Out(v)           // want `struct field retains the result of Reader\.Out`
	h2 := Holder{Nodes: r.In(v)} // want `struct literal retains the result of Reader\.In`
	_ = h2
	attrs := r.Attrs(v)
	h.Attrs = attrs // want `struct field retains the result of Reader\.Attrs`
}

func concreteBackend(g *graph.Graph, v graph.NodeID) {
	out := g.Out(v)
	out[0] = 9 // want `write through the result of Reader\.Out`
}

func copyFirstIsClean(r graph.Reader, v graph.NodeID, h *Holder) {
	xs := r.Out(v)
	xs = append([]graph.NodeID(nil), xs...) // rebinding to a copy clears the taint
	xs = append(xs, 7)
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
	h.Nodes = xs

	h.Attrs = graph.AttrsCopy(r, v)

	ys := make([]graph.NodeID, len(r.In(v)))
	copy(ys, r.In(v))
	ys[0] = 1
}

func readingIsClean(r graph.Reader, v graph.NodeID) int {
	total := 0
	for _, w := range r.Out(v) {
		total += int(w)
	}
	if vs := r.NodesWithLabel(0); len(vs) > 0 {
		total += int(vs[0])
	}
	if val, ok := r.Attrs(v)["k"]; ok {
		total += int(val)
	}
	return total
}

func ownedEscapeHatch(r graph.Reader, v graph.NodeID) []graph.NodeID {
	xs := r.Out(v) //gvcheck:owns the backend is request-local and discarded after this call
	xs = append(xs, 1)
	return xs
}

func ignoreEscapeHatch(r graph.Reader, v graph.NodeID) {
	xs := r.Out(v)
	//gvcheck:ignore readeralias exercised as the generic suppression
	xs = append(xs, 1)
	_ = xs
}
