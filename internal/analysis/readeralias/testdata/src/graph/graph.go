// Package graph is a fixture standing in for graphviews/internal/graph:
// the analyzers match the Reader accessor shapes by package-path suffix
// and method name, so this minimal mirror exercises them without
// importing the real module.
package graph

// NodeID mirrors graph.NodeID.
type NodeID int32

// LabelID mirrors graph.LabelID.
type LabelID int32

// Reader mirrors the alias-returning subset of graph.Reader.
type Reader interface {
	Out(v NodeID) []NodeID
	In(v NodeID) []NodeID
	NodesWithLabel(l LabelID) []NodeID
	NodesWithLabelName(name string) []NodeID
	Attrs(v NodeID) map[string]int64
	NumNodes() int
}

// Graph is a concrete backend; accessor calls on it must be flagged
// like interface calls.
type Graph struct {
	out [][]NodeID
}

// Out returns the successors of v. The result aliases backend storage.
func (g *Graph) Out(v NodeID) []NodeID { return g.out[v] }

// AttrsCopy mirrors graph.AttrsCopy: the sanctioned owned copy.
func AttrsCopy(r Reader, v NodeID) map[string]int64 {
	m := r.Attrs(v)
	if m == nil {
		return nil
	}
	c := make(map[string]int64, len(m))
	for k, val := range m {
		c[k] = val
	}
	return c
}
