package readeralias_test

import (
	"testing"

	"graphviews/internal/analysis/analysistest"
	"graphviews/internal/analysis/readeralias"
)

func TestReaderAlias(t *testing.T) {
	analysistest.Run(t, readeralias.Analyzer, "readeralias")
}
