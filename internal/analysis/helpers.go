package analysis

import (
	"go/ast"
	"go/types"
)

// Unparen strips any number of enclosing parentheses.
func Unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// Named returns the named type behind t, looking through one level of
// pointer and through type aliases.
func Named(t types.Type) (*types.Named, bool) {
	if ptr, ok := types.Unalias(t).(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, ok := types.Unalias(t).(*types.Named)
	return n, ok
}

// TypeNameIs reports whether t (possibly behind a pointer/alias) is a
// named type with the given name.
func TypeNameIs(t types.Type, name string) bool {
	n, ok := Named(t)
	return ok && n.Obj().Name() == name
}

// MethodCall resolves call to a method invocation: the *types.Func and
// the receiver expression. ok is false for plain function calls,
// conversions and builtins.
func (p *Pass) MethodCall(call *ast.CallExpr) (fn *types.Func, recv ast.Expr, ok bool) {
	sel, isSel := Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return nil, nil, false
	}
	selection, isMethod := p.Info.Selections[sel]
	if !isMethod || selection.Kind() != types.MethodVal {
		return nil, nil, false
	}
	fn, isFn := selection.Obj().(*types.Func)
	if !isFn {
		return nil, nil, false
	}
	return fn, sel.X, true
}

// PkgFuncCall resolves call to a package-level function: its package
// path and name. ok is false for methods, builtins and conversions.
func (p *Pass) PkgFuncCall(call *ast.CallExpr) (pkgPath, name string, ok bool) {
	switch fun := Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if _, isMethod := p.Info.Selections[fun]; isMethod {
			return "", "", false
		}
		if fn, isFn := p.Info.Uses[fun.Sel].(*types.Func); isFn && fn.Pkg() != nil {
			return fn.Pkg().Path(), fn.Name(), true
		}
	case *ast.Ident:
		if fn, isFn := p.Info.Uses[fun].(*types.Func); isFn && fn.Pkg() != nil {
			return fn.Pkg().Path(), fn.Name(), true
		}
	}
	return "", "", false
}

// BuiltinCall returns the builtin's name ("append", "delete", "clear",
// ...) when call invokes one.
func (p *Pass) BuiltinCall(call *ast.CallExpr) (string, bool) {
	id, isIdent := Unparen(call.Fun).(*ast.Ident)
	if !isIdent {
		return "", false
	}
	if b, isBuiltin := p.Info.Uses[id].(*types.Builtin); isBuiltin {
		return b.Name(), true
	}
	return "", false
}

// RootIdent walks to the leftmost identifier of a selector/index/slice
// chain (s.cur → s; g.out[v] → g). nil when the chain roots in a call
// or literal.
func RootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// StructLit resolves a composite literal to its struct type (looking
// through pointers and aliases); ok is false for slice/map/array
// literals.
func (p *Pass) StructLit(lit *ast.CompositeLit) (*types.Struct, bool) {
	tv, ok := p.Info.Types[lit]
	if !ok {
		return nil, false
	}
	t := types.Unalias(tv.Type)
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	return st, ok
}

// IsSliceOrMap reports whether t's underlying type is a slice or map.
func IsSliceOrMap(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Slice, *types.Map:
		return true
	}
	return false
}
