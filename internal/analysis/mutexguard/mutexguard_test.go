package mutexguard_test

import (
	"testing"

	"graphviews/internal/analysis/analysistest"
	"graphviews/internal/analysis/mutexguard"
)

func TestMutexGuard(t *testing.T) {
	analysistest.Run(t, mutexguard.Analyzer, "mutexguard")
}
