// Package mutexguard exercises the mutexguard analyzer: every access
// to a `// guarded by <mu>` field must hold the named mutex, be inside
// a //gvcheck:holds function, or touch a provably local value.
package mutexguard

import "sync"

// Cache mirrors the lazily built label-index idiom.
type Cache struct {
	mu sync.Mutex
	// index is built on first use.
	// guarded by mu
	index map[int][]int

	rw    sync.RWMutex
	table []int // guarded by rw
}

// Lookup takes the lock before touching the cache: clean.
func (c *Cache) Lookup(k int) []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.index == nil {
		c.index = make(map[int][]int)
	}
	return c.index[k]
}

// ReadTable uses RLock: clean.
func (c *Cache) ReadTable(i int) int {
	c.rw.RLock()
	defer c.rw.RUnlock()
	return c.table[i]
}

// RacyLookup reads the cache with no lock.
func (c *Cache) RacyLookup(k int) []int {
	return c.index[k] // want `index is guarded by mu, but no preceding c\.mu\.Lock\(\)/RLock\(\) in RacyLookup`
}

// RacyWrite writes before taking the lock; the check is lexical, so the
// later Lock does not cover it.
func (c *Cache) RacyWrite(k int) {
	c.index[k] = nil // want `index is guarded by mu`
	c.mu.Lock()
	defer c.mu.Unlock()
	c.index[k] = []int{1}
}

// lookupLocked follows the *Locked-helper idiom: callers hold the lock.
//
//gvcheck:holds mu callers hold c.mu (Lookup/rebuild paths)
func (c *Cache) lookupLocked(k int) []int {
	return c.index[k]
}

// NewCache touches the field on a freshly built value no other
// goroutine can reach: clean.
func NewCache() *Cache {
	c := &Cache{}
	c.index = make(map[int][]int)
	return c
}

// RacyTable reads the RWMutex-guarded field with no lock.
func (c *Cache) RacyTable(i int) int {
	return c.table[i] // want `table is guarded by rw`
}

// IgnoredAccess exercises the generic suppression.
func (c *Cache) IgnoredAccess(k int) []int {
	//gvcheck:ignore mutexguard read-only after publish in this test
	return c.index[k]
}
