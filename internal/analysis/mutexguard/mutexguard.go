// Package mutexguard mechanically checks `// guarded by <mu>` field
// comments: every access path to such a field must hold the named
// sibling mutex. The repository uses this idiom for lazily built
// caches read by concurrent engines — graph.Graph.labelIndex under
// labelMu, the Sharded merge-on-read label cache under mergeMu — where
// one unguarded access is a data race that -race only catches if a test
// happens to interleave it.
//
// An access `x.field` (read or write) to a field annotated
// `// guarded by mu` is accepted when any of:
//
//   - the same function body contains a preceding x.mu.Lock() or
//     x.mu.RLock() call on the same access path x;
//   - the enclosing function is annotated //gvcheck:holds mu — its
//     callers hold the lock (the *Locked-suffix helper idiom);
//   - x is provably function-local: the root variable was bound in this
//     function from a composite literal or new() — no other goroutine
//     can reach it yet (constructors, Clone).
//
// The check is lexical, not flow-sensitive: a Lock anywhere earlier in
// the body counts, Unlock is not tracked. That is deliberate — the
// point is to force every access site into one of the three auditable
// shapes above, not to model lock states.
package mutexguard

import (
	"go/ast"
	"go/types"
	"regexp"

	"graphviews/internal/analysis"
)

// Analyzer is the mutexguard analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "mutexguard",
	Doc: "flags accesses to `// guarded by <mu>` struct fields on paths " +
		"that do not hold the named mutex",
	Run: run,
}

// guardedRE extracts the mutex name from a field comment.
var guardedRE = regexp.MustCompile(`guarded by (\w+)`)

func run(pass *analysis.Pass) {
	guarded := collectGuardedFields(pass)
	if len(guarded) == 0 {
		return
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, fn, guarded)
		}
	}
}

// collectGuardedFields maps field objects to their guarding mutex field
// name, from `// guarded by <mu>` doc or line comments on struct fields.
func collectGuardedFields(pass *analysis.Pass) map[types.Object]string {
	guarded := make(map[types.Object]string)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				text := field.Doc.Text() + " " + field.Comment.Text()
				m := guardedRE.FindStringSubmatch(text)
				if m == nil {
					continue
				}
				for _, name := range field.Names {
					if obj := pass.Info.Defs[name]; obj != nil {
						guarded[obj] = m[1]
					}
				}
			}
			return true
		})
	}
	return guarded
}

// pathOf renders the access path of an expression for comparison:
// "s.cur", "g", "sh.shards". nil/false when the expression roots in a
// call or literal (not a stable path).
func pathOf(pass *analysis.Pass, e ast.Expr) (string, bool) {
	switch x := analysis.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name, true
	case *ast.SelectorExpr:
		base, ok := pathOf(pass, x.X)
		if !ok {
			return "", false
		}
		return base + "." + x.Sel.Name, true
	case *ast.StarExpr:
		return pathOf(pass, x.X)
	case *ast.IndexExpr:
		base, ok := pathOf(pass, x.X)
		if !ok {
			return "", false
		}
		return base + "[]", true
	}
	return "", false
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl, guarded map[types.Object]string) {
	// holds: mutex names the function declares its callers hold.
	holds := make(map[string]bool)
	for _, d := range pass.FuncDirectives(fn) {
		if d.Name == "holds" && d.Arg() != "" {
			holds[d.Arg()] = true
		}
	}

	// Lock sites: base path + mutex field name → earliest Lock position.
	type lockKey struct{ base, mu string }
	locks := make(map[lockKey]ast.Node)
	lockPos := make(map[lockKey]int)
	// Locally constructed roots: objects bound from &T{...}, T{...} or
	// new(T) in this function.
	local := make(map[types.Object]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.CallExpr:
			sel, ok := analysis.Unparen(st.Fun).(*ast.SelectorExpr)
			if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
				return true
			}
			// sel.X is <base>.<mu>; split the trailing component.
			muSel, ok := analysis.Unparen(sel.X).(*ast.SelectorExpr)
			if ok {
				if base, okBase := pathOf(pass, muSel.X); okBase {
					k := lockKey{base, muSel.Sel.Name}
					if _, seen := locks[k]; !seen || int(st.Pos()) < lockPos[k] {
						locks[k] = st
						lockPos[k] = int(st.Pos())
					}
				}
			} else if muID, okID := analysis.Unparen(sel.X).(*ast.Ident); okID {
				// A bare `mu.Lock()` (package-level or local mutex).
				k := lockKey{"", muID.Name}
				if _, seen := locks[k]; !seen || int(st.Pos()) < lockPos[k] {
					locks[k] = st
					lockPos[k] = int(st.Pos())
				}
			}
		case *ast.AssignStmt:
			if len(st.Lhs) != len(st.Rhs) {
				return true
			}
			for i, lhs := range st.Lhs {
				id, ok := analysis.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				obj := pass.Info.Defs[id]
				if obj == nil {
					obj = pass.Info.Uses[id]
				}
				if obj == nil {
					continue
				}
				if isFreshValue(pass, st.Rhs[i]) {
					local[obj] = true
				}
			}
		}
		return true
	})

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selection, ok := pass.Info.Selections[sel]
		if !ok || selection.Kind() != types.FieldVal {
			return true
		}
		mu, isGuarded := guarded[selection.Obj()]
		if !isGuarded {
			return true
		}
		if holds[mu] {
			return true
		}
		if root := analysis.RootIdent(sel.X); root != nil {
			if obj := pass.Info.Uses[root]; obj != nil && local[obj] {
				return true
			}
			if obj := pass.Info.Defs[root]; obj != nil && local[obj] {
				return true
			}
		}
		base, okBase := pathOf(pass, sel.X)
		if okBase {
			if pos, locked := lockPos[lockKey{base, mu}]; locked && pos < int(sel.Pos()) {
				return true
			}
		}
		pass.Reportf(sel.Sel.Pos(),
			"%s is guarded by %s, but no preceding %s.%s.Lock()/RLock() in %s; "+
				"lock it, or annotate the function //gvcheck:holds %s if callers hold it",
			sel.Sel.Name, mu, base, mu, fn.Name.Name, mu)
		return true
	})
}

// isFreshValue reports whether e constructs a brand-new value no other
// goroutine can observe: T{...}, &T{...}, or new(T).
func isFreshValue(pass *analysis.Pass, e ast.Expr) bool {
	switch x := analysis.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		_, isLit := analysis.Unparen(x.X).(*ast.CompositeLit)
		return isLit
	case *ast.CallExpr:
		name, ok := pass.BuiltinCall(x)
		return ok && name == "new"
	}
	return false
}
