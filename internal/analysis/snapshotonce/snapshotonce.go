// Package snapshotonce enforces the RCU snapshot discipline of the
// serving layer (internal/serve): a request-scoped function Loads the
// atomic.Pointer snapshot at most once and evaluates everything against
// that one value. A second Load in the same function can observe a
// different epoch — the request would mix two snapshots, which is
// exactly the torn state the atomic-swap design exists to rule out
// (responses must be consistent with exactly one published epoch).
//
// The check: within one function literal or declaration, two or more
// .Load() calls on the same sync/atomic.Pointer access path (for
// example s.cur) are flagged from the second call on. Closures count as
// their own scope — they run at a different time, so an extra Load
// there is a fresh read by design (e.g. a publish hook), not a re-read.
//
// A deliberate re-read (a retry loop, a CAS publish) carries
// //gvcheck:reload <why>.
package snapshotonce

import (
	"go/ast"

	"graphviews/internal/analysis"
)

// Analyzer is the snapshotonce analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "snapshotonce",
	Doc: "flags functions that Load the same atomic.Pointer more than once " +
		"(a request must evaluate against exactly one snapshot)",
	Run: run,
}

func run(pass *analysis.Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkScope(pass, fn.Body, fn.Name.Name)
		}
	}
}

// atomicPointerLoad reports whether call is <path>.Load() on a
// sync/atomic.Pointer[T], returning the stable access path.
func atomicPointerLoad(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	fn, recv, ok := pass.MethodCall(call)
	if !ok || fn.Name() != "Load" {
		return "", false
	}
	named, ok := analysis.Named(pass.Info.Types[recv].Type)
	if !ok || named.Obj().Name() != "Pointer" ||
		named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync/atomic" {
		return "", false
	}
	path, ok := pathOf(recv)
	if !ok {
		return "", false
	}
	return path, true
}

// pathOf renders a stable access path ("s.cur"); false when the
// receiver roots in a call or index (not comparable across sites).
func pathOf(e ast.Expr) (string, bool) {
	switch x := analysis.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name, true
	case *ast.SelectorExpr:
		base, ok := pathOf(x.X)
		if !ok {
			return "", false
		}
		return base + "." + x.Sel.Name, true
	case *ast.StarExpr:
		return pathOf(x.X)
	}
	return "", false
}

// checkScope counts Loads per pointer path in one function scope,
// recursing into closures as separate scopes.
func checkScope(pass *analysis.Pass, body ast.Node, funcName string) {
	first := make(map[string]ast.Node)
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && n != body {
			checkScope(pass, lit.Body, funcName+" (closure)")
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		path, isLoad := atomicPointerLoad(pass, call)
		if !isLoad {
			return true
		}
		if prev, seen := first[path]; seen {
			if !pass.HasDirective(call.Pos(), "reload", "") {
				pass.Reportf(call.Pos(),
					"%s.Load() called again in %s (first at %s): a request-scoped function must "+
						"Load the snapshot pointer exactly once and reuse it; bind the first Load "+
						"or annotate //gvcheck:reload",
					path, funcName, pass.Fset.Position(prev.Pos()))
			}
		} else {
			first[path] = call
		}
		return true
	})
}
