package snapshotonce_test

import (
	"testing"

	"graphviews/internal/analysis/analysistest"
	"graphviews/internal/analysis/snapshotonce"
)

func TestSnapshotOnce(t *testing.T) {
	analysistest.Run(t, snapshotonce.Analyzer, "snapshotonce")
}
