// Package snapshotonce exercises the snapshotonce analyzer: a
// request-scoped function Loads the atomic snapshot pointer at most
// once.
package snapshotonce

import "sync/atomic"

// Snapshot mirrors serve.Snapshot.
type Snapshot struct {
	Epoch uint64
}

// Server mirrors the RCU publication point in serve.Server.
type Server struct {
	cur  atomic.Pointer[Snapshot]
	next atomic.Pointer[Snapshot]
}

// HandleOnce binds the snapshot once and reuses it: clean.
func (s *Server) HandleOnce() uint64 {
	snap := s.cur.Load()
	if snap == nil {
		return 0
	}
	return snap.Epoch + snap.Epoch
}

// HandleTwice re-reads the pointer mid-request: the two Loads can
// observe different epochs.
func (s *Server) HandleTwice() uint64 {
	a := s.cur.Load()
	b := s.cur.Load() // want `s\.cur\.Load\(\) called again in HandleTwice`
	if a == nil || b == nil {
		return 0
	}
	return a.Epoch - b.Epoch
}

// TwoPointers Loads two different pointers once each: clean.
func (s *Server) TwoPointers() (uint64, uint64) {
	a := s.cur.Load()
	b := s.next.Load()
	if a == nil || b == nil {
		return 0, 0
	}
	return a.Epoch, b.Epoch
}

// HookClosure: a closure is its own scope — it runs later, so its Load
// is a fresh read by design.
func (s *Server) HookClosure() func() uint64 {
	snap := s.cur.Load()
	_ = snap
	return func() uint64 {
		cur := s.cur.Load()
		if cur == nil {
			return 0
		}
		return cur.Epoch
	}
}

// ClosureTwice: a double Load inside one closure is still flagged.
func (s *Server) ClosureTwice() func() uint64 {
	return func() uint64 {
		a := s.cur.Load()
		b := s.cur.Load() // want `s\.cur\.Load\(\) called again in ClosureTwice \(closure\)`
		if a == nil || b == nil {
			return 0
		}
		return a.Epoch - b.Epoch
	}
}

// RetryPublish re-reads deliberately and says why.
func (s *Server) RetryPublish(n *Snapshot) {
	for {
		old := s.cur.Load()
		_ = old
		if s.cur.CompareAndSwap(old, n) {
			return
		}
		again := s.cur.Load() //gvcheck:reload CAS retry loop re-reads by design
		_ = again
		return
	}
}

// IgnoredReRead exercises the generic suppression.
func (s *Server) IgnoredReRead() {
	a := s.cur.Load()
	_ = a
	//gvcheck:ignore snapshotonce exercised as the generic suppression
	b := s.cur.Load()
	_ = b
}
