// Package scratchescape exercises the scratchescape analyzer: slices
// drawn from Arena/Scratch storage must not reach exported returns or
// public structs without an exact-size copy.
package scratchescape

// Arena mirrors arena.Arena: a bump allocator whose slices die at Reset.
type Arena struct {
	buf []int32
}

// Make mirrors Arena.Make: hands out arena-backed storage by design
// (self accessor, not flagged).
func (a *Arena) Make(n int) []int32 {
	a.buf = append(a.buf, make([]int32, n)...)
	return a.buf[len(a.buf)-n:]
}

// Scratch mirrors simulation.Scratch: pooled per-engine working state.
type Scratch struct {
	pairBuf []int32
	work    []int32
	arena   Arena
}

// TakeWork is a Scratch accessor; handing out its own buffer is the
// point (self accessor, not flagged).
func (sc *Scratch) TakeWork() []int32 {
	return sc.work
}

// Result is a public answer struct; retaining scratch storage in it is
// the bug class under test.
type Result struct {
	Pairs []int32
	Count int
}

// internalResult is unexported; storing scratch slices in it is fine.
type internalResult struct {
	pairs []int32
}

// ReturnField leaks a scratch buffer through an exported return.
func ReturnField(sc *Scratch) []int32 {
	return sc.pairBuf // want `returning a slice drawn from Scratch\.pairBuf from exported ReturnField`
}

// ReturnAppendChain: append into a reslice of a scratch buffer keeps
// the recycled backing array.
func ReturnAppendChain(sc *Scratch) []int32 {
	buf := sc.pairBuf[:0]
	buf = append(buf, 1, 2, 3)
	return buf // want `returning a slice drawn from Scratch\.pairBuf from exported ReturnAppendChain`
}

// ReturnArenaMake leaks arena storage.
func ReturnArenaMake(a *Arena) []int32 {
	xs := a.Make(4)
	return xs // want `returning a slice drawn from Arena\.Make from exported ReturnArenaMake`
}

// StoreIntoResult leaks through a public struct field.
func StoreIntoResult(sc *Scratch, r *Result) {
	buf := sc.work
	r.Pairs = buf // want `storing a slice drawn from Scratch\.work into public struct Result`
}

// LiteralResult leaks through a public composite literal.
func LiteralResult(sc *Scratch) Result {
	return Result{Pairs: sc.pairBuf} // want `public struct literal Result retains a slice drawn from Scratch\.pairBuf`
}

// unexportedReturn may return scratch storage — its callers are inside
// the pipeline and copy before publishing.
func unexportedReturn(sc *Scratch) []int32 {
	return sc.pairBuf
}

// StoreIntoInternal stores into an unexported struct: allowed.
func StoreIntoInternal(sc *Scratch, ir *internalResult) {
	ir.pairs = sc.pairBuf
}

// ExactSizeCopy is the sanctioned remedy: rebinding through owned
// storage clears the taint.
func ExactSizeCopy(sc *Scratch) []int32 {
	buf := sc.pairBuf[:0]
	buf = append(buf, 4, 5)
	out := make([]int32, len(buf))
	copy(out, buf)
	return out
}

// RebindClears: assigning owned storage over a tainted name untaints it.
func RebindClears(sc *Scratch, r *Result) {
	buf := sc.work
	buf = append([]int32(nil), buf...)
	r.Pairs = buf
}

// OwnedEscapeHatch carries the //gvcheck:owns justification.
func OwnedEscapeHatch(sc *Scratch) []int32 {
	buf := sc.pairBuf //gvcheck:owns this scratch is request-local and not pooled
	return buf
}

// IgnoreEscapeHatch exercises the generic suppression.
func IgnoreEscapeHatch(sc *Scratch) []int32 {
	//gvcheck:ignore scratchescape exercised as the generic suppression
	return sc.pairBuf
}
