// Package scratchescape enforces the arena rule from the PR 4 answer
// pipeline: "Results never alias scratch". Slices carved from an
// arena.Arena (Make/MakeDirty) are valid only until the next Reset, and
// slices drawn from a pooled Scratch's buffer fields (pairBuf, work,
// queue, ...) are recycled by the next query — letting either escape
// into a Result, an EdgeMatches or any other public struct means the
// answer a caller holds is silently rewritten by the next request
// sharing the pool.
//
// Taint sources, tracked in source order through local variables:
//
//   - calls to slice-returning methods on a type named Arena (the bump
//     allocator in internal/arena);
//   - slice-typed field reads and slice-returning method calls on a
//     type named Scratch (the pooled per-engine working state) —
//     including re-slices like sc.pairBuf[:0] and append chains rooted
//     in them (appending into a scratch buffer keeps using its backing
//     array);
//
// Flagged sinks:
//
//   - returning a tainted slice from an exported function or method
//     (methods on the Scratch/Arena types themselves are exempt — they
//     are the scratch's own accessors);
//   - storing a tainted slice into a field of an exported struct type,
//     by assignment or composite literal.
//
// The remedy is the exact-size copy the rest of the codebase uses
// (dst := make([]T, len(buf)); copy(dst, buf)), which the tracker
// recognizes because it rebinds through owned storage; a case that is
// safe for a reason the analyzer cannot see carries
// //gvcheck:owns <why>.
package scratchescape

import (
	"go/ast"
	"go/types"

	"graphviews/internal/analysis"
)

// Analyzer is the scratchescape analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "scratchescape",
	Doc: "flags arena/Scratch-backed slices escaping into Results or other " +
		"public structs without an exact-size copy",
	Run: run,
}

// scratchTypeNames are the type names whose storage is recycled between
// queries: the bump allocator and the pooled scratch states built on it.
var scratchTypeNames = map[string]bool{"Arena": true, "Scratch": true}

func run(pass *analysis.Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, fn)
		}
	}
}

// scratchSource reports whether e draws storage directly from an arena
// or scratch: a slice-returning method call on Arena/Scratch, or a
// slice-typed field read on a Scratch.
func scratchSource(pass *analysis.Pass, e ast.Expr) (string, bool) {
	switch x := analysis.Unparen(e).(type) {
	case *ast.CallExpr:
		fn, recv, ok := pass.MethodCall(x)
		if !ok {
			return "", false
		}
		rt := pass.Info.Types[recv].Type
		if rt == nil {
			return "", false
		}
		named, ok := analysis.Named(rt)
		if !ok || !scratchTypeNames[named.Obj().Name()] {
			return "", false
		}
		sig := fn.Type().(*types.Signature)
		if sig.Results().Len() != 1 {
			return "", false
		}
		if _, isSlice := sig.Results().At(0).Type().Underlying().(*types.Slice); !isSlice {
			return "", false
		}
		return named.Obj().Name() + "." + fn.Name(), true
	case *ast.SelectorExpr:
		sel, ok := pass.Info.Selections[x]
		if !ok || sel.Kind() != types.FieldVal {
			return "", false
		}
		named, ok := analysis.Named(sel.Recv())
		if !ok || named.Obj().Name() != "Scratch" {
			return "", false
		}
		if _, isSlice := sel.Obj().Type().Underlying().(*types.Slice); !isSlice {
			return "", false
		}
		return "Scratch." + sel.Obj().Name(), true
	}
	return "", false
}

// recvTypeName names fn's receiver type ("" for plain functions).
func recvTypeName(pass *analysis.Pass, fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return ""
	}
	t := pass.Info.Types[fn.Recv.List[0].Type].Type
	if t == nil {
		return ""
	}
	if named, ok := analysis.Named(t); ok {
		return named.Obj().Name()
	}
	return ""
}

// checkFunc runs the ordered taint analysis over one function body.
func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	// The scratch's own accessors hand out scratch-backed slices by
	// design; everything downstream of them is what we check.
	selfAccessor := scratchTypeNames[recvTypeName(pass, fn)]
	exportedFn := fn.Name.IsExported() && !selfAccessor

	tainted := make(map[types.Object]string) // object → source label

	// taintOf resolves an expression under the current state: a direct
	// scratch source, a tainted variable, a re-slice of one, or an
	// append chain rooted in one (scratch buffers have spare capacity,
	// so append writes into the recycled backing array).
	var taintOf func(e ast.Expr) (string, bool)
	taintOf = func(e ast.Expr) (string, bool) {
		e = analysis.Unparen(e)
		if src, ok := scratchSource(pass, e); ok {
			return src, true
		}
		switch x := e.(type) {
		case *ast.Ident:
			if obj := pass.Info.Uses[x]; obj != nil {
				if src, ok := tainted[obj]; ok {
					return src, true
				}
			}
		case *ast.SliceExpr:
			return taintOf(x.X)
		case *ast.CallExpr:
			if name, ok := pass.BuiltinCall(x); ok && name == "append" && len(x.Args) > 0 {
				return taintOf(x.Args[0])
			}
		}
		return "", false
	}

	objOf := func(id *ast.Ident) types.Object {
		if obj := pass.Info.Defs[id]; obj != nil {
			return obj
		}
		return pass.Info.Uses[id]
	}

	// exportedOwner reports whether a selection stores into a field of
	// an exported, non-scratch struct type.
	exportedOwner := func(recv types.Type) (string, bool) {
		named, ok := analysis.Named(recv)
		if !ok || !named.Obj().Exported() || scratchTypeNames[named.Obj().Name()] {
			return "", false
		}
		return named.Obj().Name(), true
	}

	w := &analysis.OrderedWalker{
		Expr: func(e ast.Expr) {
			lit, ok := e.(*ast.CompositeLit)
			if !ok {
				return
			}
			if _, isStruct := pass.StructLit(lit); !isStruct {
				return
			}
			tv := pass.Info.Types[lit]
			name, isPublic := exportedOwner(tv.Type)
			if !isPublic {
				return
			}
			for _, el := range lit.Elts {
				v := el
				if kv, isKV := el.(*ast.KeyValueExpr); isKV {
					v = kv.Value
				}
				if src, bad := taintOf(v); bad && !pass.HasDirective(v.Pos(), "owns", "") {
					pass.Reportf(v.Pos(),
						"public struct literal %s retains a slice drawn from %s: scratch storage is "+
							"recycled by the next query; use an exact-size copy (make+copy) or annotate //gvcheck:owns",
						name, src)
				}
			}
		},
		Bind: func(lhs *ast.Ident, rhs ast.Expr) {
			obj := objOf(lhs)
			if obj == nil || lhs.Name == "_" {
				return
			}
			if rhs != nil && !pass.HasDirective(rhs.Pos(), "owns", "") {
				if src, ok := taintOf(rhs); ok {
					tainted[obj] = src
					return
				}
			}
			delete(tainted, obj)
		},
		Store: func(lhs ast.Expr, rhs ast.Expr) {
			sel, ok := analysis.Unparen(lhs).(*ast.SelectorExpr)
			if !ok || rhs == nil {
				return
			}
			selection, ok := pass.Info.Selections[sel]
			if !ok || selection.Kind() != types.FieldVal {
				return
			}
			name, isPublic := exportedOwner(selection.Recv())
			if !isPublic {
				return
			}
			if src, bad := taintOf(rhs); bad && !pass.HasDirective(rhs.Pos(), "owns", "") {
				pass.Reportf(rhs.Pos(),
					"storing a slice drawn from %s into public struct %s: scratch storage is recycled "+
						"by the next query; store an exact-size copy (make+copy) or annotate //gvcheck:owns",
					src, name)
			}
		},
		Return: func(st *ast.ReturnStmt) {
			if !exportedFn {
				return
			}
			for _, res := range st.Results {
				if src, bad := taintOf(res); bad && !pass.HasDirective(res.Pos(), "owns", "") {
					pass.Reportf(res.Pos(),
						"returning a slice drawn from %s from exported %s: scratch storage is recycled "+
							"by the next query; return an exact-size copy (make+copy) or annotate //gvcheck:owns",
						src, fn.Name.Name)
				}
			}
		},
	}
	w.Walk(fn.Body)
}
