package scratchescape_test

import (
	"testing"

	"graphviews/internal/analysis/analysistest"
	"graphviews/internal/analysis/scratchescape"
)

func TestScratchEscape(t *testing.T) {
	analysistest.Run(t, scratchescape.Analyzer, "scratchescape")
}
