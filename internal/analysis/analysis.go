// Package analysis is the project's static-analysis framework: a
// dependency-free reimplementation of the golang.org/x/tools/go/analysis
// shape (Analyzer, Pass, Diagnostic) on top of the standard library's
// go/ast and go/types, sized for the four project-specific checkers under
// internal/analysis/... that mechanically enforce this repository's
// prose contracts:
//
//   - readeralias — the graph.Reader aliasing contract: slices/maps
//     returned by Out/In/NodesWithLabel/Attrs are backend storage and
//     must not be mutated or retained;
//   - scratchescape — the arena rule: slices carved from arena.Arena or
//     drawn from a pooled Scratch never escape into Results or other
//     public structs without an exact-size copy;
//   - mutexguard — `// guarded by <mu>` field comments: every access
//     path to the field holds the named mutex;
//   - snapshotonce — the RCU snapshot discipline in internal/serve: a
//     request-scoped function Loads the atomic.Pointer[Snapshot] at most
//     once.
//
// The framework is deliberately small: no facts, no modular summaries,
// no analyzer dependencies — each analyzer is a pure function of one
// type-checked package. What it does share with x/tools is the testing
// idiom (internal/analysis/analysistest runs analyzers over testdata
// packages with `// want "regexp"` expectations) and the driver protocol
// (cmd/gvcheck runs standalone or as a `go vet -vettool`).
//
// # Suppression directives
//
// Findings are suppressed by //gvcheck: comments on the offending line
// or the line above. Every directive should carry a justification after
// the directive word:
//
//	//gvcheck:ignore <analyzer> <why this is safe>   — suppress one analyzer here
//	//gvcheck:owns <why>        — readeralias/scratchescape: value is owned
//	//gvcheck:holds <mu> <why>  — mutexguard: callers hold <mu> (on a func)
//	//gvcheck:reload <why>      — snapshotonce: re-Load is intentional
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one static check. Run inspects a package and reports
// findings through the Pass; suppression and ordering are the
// framework's job.
type Analyzer struct {
	// Name identifies the analyzer in findings and in
	// //gvcheck:ignore <name> directives.
	Name string
	// Doc is the one-paragraph description shown by gvcheck -list.
	Doc string
	// Run performs the check.
	Run func(*Pass)
}

// Package is one type-checked package: the unit every analyzer runs
// over. Built by Check.
type Package struct {
	// Fset maps positions for Files.
	Fset *token.FileSet
	// Files are the parsed source files (with comments).
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info holds the type-checker's fact tables for Files.
	Info *types.Info

	// directives indexes //gvcheck: comments: file name → line → parsed
	// directives on that line.
	directives map[string]map[int][]Directive
}

// Directive is one parsed //gvcheck: comment: a name ("ignore", "owns",
// "holds", "reload") and the free text after it (first word of which is
// the argument for ignore/holds).
type Directive struct {
	// Name is the directive word after "gvcheck:".
	Name string
	// Args is everything after the name, space-trimmed.
	Args string
}

// Arg returns the first whitespace-separated word of Args.
func (d Directive) Arg() string {
	f := strings.Fields(d.Args)
	if len(f) == 0 {
		return ""
	}
	return f[0]
}

// Diagnostic is one finding of one analyzer, in position-resolved form.
type Diagnostic struct {
	// Analyzer is the reporting analyzer's name.
	Analyzer string
	// Pos locates the finding.
	Pos token.Position
	// Message states the violation and the remedy.
	Message string
}

// String formats the diagnostic the way compilers and editors expect.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Pass is one analyzer's run over one package.
type Pass struct {
	*Package
	// Analyzer is the analyzer being run.
	Analyzer *Analyzer

	diags []Diagnostic
}

// Reportf records a finding at pos unless a //gvcheck:ignore directive
// for this analyzer covers the line (or the line above it).
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	for _, d := range p.DirectivesAt(pos) {
		if d.Name == "ignore" && (d.Arg() == "" || d.Arg() == p.Analyzer.Name) {
			return
		}
	}
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
	})
}

// DirectivesAt returns the //gvcheck: directives attached to pos: those
// on the same source line plus those on the line immediately above
// (the "comment on its own line" style).
func (p *Pass) DirectivesAt(pos token.Pos) []Directive {
	position := p.Fset.Position(pos)
	lines := p.directives[position.Filename]
	ds := append([]Directive(nil), lines[position.Line]...)
	return append(ds, lines[position.Line-1]...)
}

// HasDirective reports whether a directive with the given name (and,
// when arg is non-empty, that first argument) covers pos.
func (p *Pass) HasDirective(pos token.Pos, name, arg string) bool {
	for _, d := range p.DirectivesAt(pos) {
		if d.Name == name && (arg == "" || d.Arg() == arg) {
			return true
		}
	}
	return false
}

// FuncDirectives returns the directives in a function's doc comment and
// on the lines immediately around its declaration — where
// //gvcheck:holds annotations live.
func (p *Pass) FuncDirectives(fn *ast.FuncDecl) []Directive {
	ds := p.DirectivesAt(fn.Pos())
	if fn.Doc != nil {
		for _, c := range fn.Doc.List {
			if d, ok := ParseDirective(c.Text); ok {
				ds = append(ds, d)
			}
		}
	}
	return ds
}

// ParseDirective parses one comment's text as a //gvcheck: directive.
func ParseDirective(text string) (Directive, bool) {
	const prefix = "//gvcheck:"
	if !strings.HasPrefix(text, prefix) {
		return Directive{}, false
	}
	rest := strings.TrimPrefix(text, prefix)
	name, args, _ := strings.Cut(rest, " ")
	name = strings.TrimSpace(name)
	if name == "" {
		return Directive{}, false
	}
	return Directive{Name: name, Args: strings.TrimSpace(args)}, true
}

// NewPackage assembles a Package and indexes its //gvcheck: directives.
func NewPackage(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) *Package {
	p := &Package{Fset: fset, Files: files, Types: pkg, Info: info,
		directives: make(map[string]map[int][]Directive)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				d, ok := ParseDirective(c.Text)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				lines := p.directives[pos.Filename]
				if lines == nil {
					lines = make(map[int][]Directive)
					p.directives[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], d)
			}
		}
	}
	return p
}

// Run applies the analyzers to one package and returns their findings
// sorted by position.
func Run(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	var out []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{Package: pkg, Analyzer: a}
		a.Run(pass)
		out = append(out, pass.diags...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// NewInfo returns a types.Info with every fact table the analyzers
// consult allocated.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}

// Check parses nothing itself: it type-checks already-parsed files with
// the given importer and returns the assembled Package. goVersion may
// be empty ("use the toolchain default").
func Check(fset *token.FileSet, path string, files []*ast.File, imp types.Importer, goVersion string) (*Package, error) {
	info := NewInfo()
	conf := types.Config{
		Importer:  imp,
		GoVersion: goVersion,
		// Engines and tests are analyzed as-is; soft errors (unused
		// variables in testdata, say) must not block the contract checks.
		Error: func(err error) {},
	}
	tpkg, err := conf.Check(path, fset, files, info)
	if tpkg == nil {
		return nil, err
	}
	// A partially type-checked package is still analyzable (the checker
	// fills Info for everything it resolved); the caller decides whether
	// the error is fatal.
	return NewPackage(fset, files, tpkg, info), err
}
