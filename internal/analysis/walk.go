package analysis

import "go/ast"

// OrderedWalker traverses a function body in source/evaluation order,
// firing callbacks that let a flow-approximating taint analysis keep
// running state: for an assignment the right-hand side is visited
// (Expr) before the binding is applied (Bind/Store), so `xs =
// append(xs, 1)` is checked against xs's taint before the rebinding
// updates it. Function literals are walked inline with the same
// callbacks — closures share the enclosing bindings.
//
// All callbacks are optional.
type OrderedWalker struct {
	// Expr fires for every expression node, pre-order, in evaluation
	// order relative to the statements around it.
	Expr func(e ast.Expr)
	// Bind fires for every assignment/definition of a plain identifier,
	// after the RHS was visited. rhs is nil when no single expression
	// produces the value (range variables, multi-value unpacking,
	// bare var declarations).
	Bind func(lhs *ast.Ident, rhs ast.Expr)
	// Store fires for assignments through a non-identifier LHS
	// (x[i] = v, x.f = v), after the RHS was visited. rhs is nil for
	// multi-value unpacking.
	Store func(lhs ast.Expr, rhs ast.Expr)
	// IncDec fires for x++ / x-- statements, after X was visited.
	IncDec func(st *ast.IncDecStmt)
	// Return fires for return statements, after the results were
	// visited.
	Return func(st *ast.ReturnStmt)
}

// Walk traverses one statement (typically a *ast.BlockStmt body).
func (w *OrderedWalker) Walk(stmt ast.Stmt) {
	if stmt == nil {
		return
	}
	switch st := stmt.(type) {
	case *ast.BlockStmt:
		for _, s := range st.List {
			w.Walk(s)
		}
	case *ast.ExprStmt:
		w.expr(st.X)
	case *ast.AssignStmt:
		for _, rhs := range st.Rhs {
			w.expr(rhs)
		}
		paired := len(st.Lhs) == len(st.Rhs)
		for i, lhs := range st.Lhs {
			var rhs ast.Expr
			if paired {
				rhs = st.Rhs[i]
			}
			if id, ok := Unparen(lhs).(*ast.Ident); ok {
				if w.Bind != nil {
					w.Bind(id, rhs)
				}
				continue
			}
			// Visit the LHS subexpressions (the x and i of x[i]) and
			// report the store.
			w.expr(lhs)
			if w.Store != nil {
				w.Store(lhs, rhs)
			}
		}
	case *ast.DeclStmt:
		gd, ok := st.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for _, v := range vs.Values {
				w.expr(v)
			}
			paired := len(vs.Names) == len(vs.Values)
			for i, name := range vs.Names {
				var rhs ast.Expr
				if paired {
					rhs = vs.Values[i]
				}
				if w.Bind != nil {
					w.Bind(name, rhs)
				}
			}
		}
	case *ast.IfStmt:
		w.Walk(st.Init)
		w.expr(st.Cond)
		w.Walk(st.Body)
		w.Walk(st.Else)
	case *ast.ForStmt:
		w.Walk(st.Init)
		if st.Cond != nil {
			w.expr(st.Cond)
		}
		w.Walk(st.Post)
		w.Walk(st.Body)
	case *ast.RangeStmt:
		w.expr(st.X)
		for _, kv := range []ast.Expr{st.Key, st.Value} {
			if kv == nil {
				continue
			}
			if id, ok := Unparen(kv).(*ast.Ident); ok {
				if w.Bind != nil {
					w.Bind(id, nil)
				}
			} else {
				w.expr(kv)
				if w.Store != nil {
					w.Store(kv, nil)
				}
			}
		}
		w.Walk(st.Body)
	case *ast.SwitchStmt:
		w.Walk(st.Init)
		if st.Tag != nil {
			w.expr(st.Tag)
		}
		w.Walk(st.Body)
	case *ast.TypeSwitchStmt:
		w.Walk(st.Init)
		w.Walk(st.Assign)
		w.Walk(st.Body)
	case *ast.CaseClause:
		for _, e := range st.List {
			w.expr(e)
		}
		for _, s := range st.Body {
			w.Walk(s)
		}
	case *ast.SelectStmt:
		w.Walk(st.Body)
	case *ast.CommClause:
		w.Walk(st.Comm)
		for _, s := range st.Body {
			w.Walk(s)
		}
	case *ast.GoStmt:
		w.expr(st.Call)
	case *ast.DeferStmt:
		w.expr(st.Call)
	case *ast.ReturnStmt:
		for _, r := range st.Results {
			w.expr(r)
		}
		if w.Return != nil {
			w.Return(st)
		}
	case *ast.IncDecStmt:
		w.expr(st.X)
		if w.IncDec != nil {
			w.IncDec(st)
		}
	case *ast.SendStmt:
		w.expr(st.Chan)
		w.expr(st.Value)
	case *ast.LabeledStmt:
		w.Walk(st.Stmt)
	}
}

// expr visits an expression tree pre-order, walking into closure bodies.
func (w *OrderedWalker) expr(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			w.Walk(lit.Body)
			return false
		}
		if ex, ok := n.(ast.Expr); ok && w.Expr != nil {
			w.Expr(ex)
		}
		return true
	})
}
