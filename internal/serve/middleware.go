package serve

// The middleware stack production traffic demands, composed per route
// (outermost first): access logging → metrics → admission control →
// request timeout. Operational endpoints (/healthz, /metrics) skip
// admission control so the server stays observable under overload —
// shedding the probes that tell you why you are shedding would be
// self-inflicted blindness.

import (
	"context"
	"log"
	"net/http"
	"time"
)

// statusWriter captures the status code a handler wrote, so logging and
// metrics middleware can classify the response after the fact.
type statusWriter struct {
	http.ResponseWriter
	code int
}

// WriteHeader records the code before delegating.
func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// Write defaults the code to 200 on an implicit header, like net/http.
func (w *statusWriter) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// withLogging writes one access-log line per request: method, route,
// status, latency and the snapshot epoch the request was (or would have
// been) served from. A nil logger disables logging.
func withLogging(h http.Handler, logger *log.Logger, epoch func() uint64) http.Handler {
	if logger == nil {
		return h
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		h.ServeHTTP(sw, r)
		code := sw.code
		if code == 0 {
			code = http.StatusOK
		}
		logger.Printf("%s %s %d %s epoch=%d", r.Method, r.URL.Path, code, time.Since(start).Round(time.Microsecond), epoch())
	})
}

// withMetrics counts the request and observes its latency under the
// given route's instruments.
func withMetrics(h http.Handler, m *Metrics, route string) http.Handler {
	rm := m.forRoute(route)
	if rm == nil {
		return h
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		h.ServeHTTP(sw, r)
		code := sw.code
		if code == 0 {
			code = http.StatusOK
		}
		rm.requests[statusClass(code)].Add(1)
		rm.latency.observe(time.Since(start))
	})
}

// withAdmission bounds the number of requests concurrently inside h.
// Admission is a non-blocking semaphore acquire: when all slots are
// taken the request is shed immediately with 429 and a Retry-After
// hint, rather than queued — under sustained overload a queue only
// converts shed requests into timed-out ones while growing every
// latency percentile. A nil semaphore (limit <= 0) admits everything.
func withAdmission(h http.Handler, sem chan struct{}, m *Metrics) http.Handler {
	if sem == nil {
		return h
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case sem <- struct{}{}:
		default:
			m.shed.Add(1)
			w.Header().Set("Retry-After", "1")
			http.Error(w, "server at capacity", http.StatusTooManyRequests)
			return
		}
		m.inFlight.Add(1)
		defer func() {
			m.inFlight.Add(-1)
			<-sem
		}()
		h.ServeHTTP(w, r)
	})
}

// withTimeout attaches a deadline to the request context. Handlers pass
// the request context into Engine.WithRequest, so an expired deadline
// cancels the query at the next work-item boundary; the handler then
// maps context errors to 503. d <= 0 disables the deadline.
func withTimeout(h http.Handler, d time.Duration) http.Handler {
	if d <= 0 {
		return h
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), d)
		defer cancel()
		h.ServeHTTP(w, r.WithContext(ctx))
	})
}
