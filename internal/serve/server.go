// Package serve is the snapshot-swap query service behind cmd/gvserve:
// a long-lived HTTP front end where every read runs against one shared
// immutable snapshot (graph + materialized view extensions) reached
// through an atomic pointer, while writes accumulate in incrementally
// maintained views and a publish step — explicit, timer-driven or
// write-threshold-driven — swaps in a freshly frozen snapshot.
//
// The concurrency design is RCU/epoch-style publication:
//
//   - Readers do s.cur.Load() exactly once per request and evaluate
//     entirely against that *Snapshot. They never take a lock, never
//     block a writer, and can never observe a half-published state: the
//     snapshot's graph is a *Frozen/*Sharded CSR (immutable by
//     construction) and its extensions are an immutable clone taken
//     under the write lock (Maintained.SnapshotExtensions).
//   - Writers serialize on one mutex: edge updates refresh the
//     maintained views in place, and publishing freezes the mutable
//     graph (Engine.Snapshot), clones the extension list, bumps the
//     epoch and atomically stores the new *Snapshot. Old snapshots stay
//     valid for requests still holding them and are reclaimed by GC —
//     the garbage collector is the epoch reclamation scheme.
//
// Queries answered from views (/query) never touch the graph at all —
// the materialized extensions are the serving dataset, which is the
// paper's thesis operationalized: cache V(G), answer Q from V(G) alone.
package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	gv "graphviews"
	"graphviews/internal/store"
)

// Config parameterizes a Server. The zero value serves with GOMAXPROCS
// workers, no sharding, no admission bound, no request timeout and
// explicit-only publishing.
type Config struct {
	// Workers bounds the engine worker pool (<= 0 selects GOMAXPROCS).
	Workers int
	// Shards configures hash-partitioned snapshots: >= 2 fixed shard
	// count, 0 or negative the engine's auto heuristic, 1 unsharded.
	Shards int
	// MaxInFlight bounds the number of requests concurrently admitted
	// into handlers; excess requests are shed with 429. <= 0 disables
	// admission control.
	MaxInFlight int
	// RequestTimeout is the per-request deadline attached to the request
	// context; engine calls observe it between work items. <= 0 disables.
	RequestTimeout time.Duration
	// PublishEvery republishes the snapshot on a timer whenever updates
	// are pending. <= 0 disables timer-driven publishing.
	PublishEvery time.Duration
	// PublishAfter publishes as soon as at least this many effective
	// updates accumulated since the live snapshot. <= 0 disables
	// threshold-driven publishing. Buffered (not yet flushed) feed
	// deltas count toward the threshold.
	PublishAfter int
	// FlushAfter buffers incoming edge updates in a coalescing change
	// feed and only propagates them into the maintained views once the
	// coalesced backlog reaches this many deltas (insert+delete of the
	// same edge cancels before any view sees it). <= 0 flushes on every
	// update batch. Publishing always flushes first, so snapshots never
	// miss buffered deltas.
	FlushAfter int
	// Rematerialize switches view maintenance to the full-recompute
	// baseline (every relevant update rebuilds the view from scratch).
	// Serving answers are identical; this exists to measure what the
	// delta-propagation path saves.
	Rematerialize bool
	// Store is the durable graph + view store backing this server: every
	// update batch is appended to its write-ahead log before the write
	// is acknowledged, and every published snapshot is checkpointed into
	// it (compacting the WAL). When the store was opened with a non-empty
	// WAL tail, the server boots in the recovering state — /healthz
	// reports 503 and application routes shed with 503 + Retry-After —
	// until Recover has replayed the tail. nil serves ephemeral (updates
	// are lost on restart), matching the pre-durability behavior.
	Store *store.Store
	// PersistExtensions includes the materialized view extensions in
	// every checkpoint, under the snapshot's write clock. A restart then
	// restores graph + extensions together and skips the initial
	// rematerialization entirely (MaintStats.Recomputes stays 0 on a
	// clean-tail boot); when the stored extensions do not match the
	// configured view set — renamed views, edited patterns — boot falls
	// back to materializing from scratch. Requires Store.
	PersistExtensions bool
	// WALBacklogBytes is the write-ahead-log high-water mark: when every
	// checkpoint fails (disk trouble), nothing else bounds WAL growth, so
	// once the log exceeds this many bytes /healthz flips to degraded and
	// the gvserve_wal_backlog_bytes gauge goes positive — the operator
	// sees the runaway before the disk fills. <= 0 disables the mark.
	WALBacklogBytes int64
	// Logger receives one access-log line per request; nil disables
	// access logging.
	Logger *log.Logger
}

// Snapshot is one published epoch: an immutable graph backend plus the
// view extensions materialized over exactly that graph state. All
// fields are read-only after publication; any number of requests may
// evaluate against one Snapshot concurrently with zero synchronization.
type Snapshot struct {
	// Epoch numbers publications from 1, monotonically.
	Epoch uint64
	// Version is the maintained write clock captured at publication:
	// this snapshot reflects exactly the first Version effective updates.
	Version uint64
	// Graph is the frozen (or sharded) CSR backend.
	Graph gv.GraphReader
	// Exts are the materialized extensions consistent with Graph.
	Exts *gv.Extensions
	// PublishedAt timestamps the swap.
	PublishedAt time.Time
}

// routes instrumented by the metrics registry, in display order.
var routeNames = []string{
	"/query", "/match", "/update", "/publish", "/snapshot", "/healthz", "/metrics",
}

// Server is the snapshot-swap query service. Create with NewServer,
// expose via Handler, stop background publishing with Close.
type Server struct {
	cfg Config
	eng *gv.Engine

	cur atomic.Pointer[Snapshot]

	// mu serializes the write side: edge updates into the maintained
	// views, feed flushes and snapshot publication. The read side never
	// touches it. (Feed.Submit and Feed.Backlog are internally
	// synchronized; only Flush requires mu.)
	mu    sync.Mutex
	maint *gv.Maintained
	feed  *gv.Feed

	// store is the durable backing store (nil when ephemeral); set once
	// in NewServer. recovering is true from boot until Recover finishes
	// replaying the WAL tail; application routes shed while it is set.
	store      *store.Store
	recovering atomic.Bool

	metrics *Metrics
	sem     chan struct{}

	kick      chan struct{}
	done      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
}

// NewServer materializes vs over g, publishes the first snapshot
// (epoch 1) and starts the background publisher when timer- or
// threshold-driven publishing is configured. The graph must not be
// mutated by the caller afterwards: all subsequent writes go through
// the server's update path.
func NewServer(g *gv.Graph, vs *gv.ViewSet, cfg Config) (*Server, error) {
	if err := vs.Validate(); err != nil {
		return nil, err
	}
	eng := gv.NewEngine(gv.WithParallelism(cfg.Workers), gv.WithShards(cfg.Shards))
	// Persisted extensions: when the store's checkpoint carries view
	// extensions matching this view set — and the caller handed us the
	// thawed checkpoint graph, which the shape check cross-checks — adopt
	// them instead of rematerializing. The WAL tail (if any) is replayed
	// through delta propagation by Recover, so a clean-tail boot performs
	// zero recomputes.
	var maint *gv.Maintained
	restored := false
	if cfg.Store != nil && cfg.PersistExtensions {
		if base := cfg.Store.Base(); base != nil &&
			g.NumNodes() == base.NumNodes() && g.NumEdges() == base.NumEdges() {
			if x, ok := cfg.Store.BaseExtensions(vs); ok {
				maint = eng.MaintainFrom(g, x)
				restored = true
			}
		}
	}
	if maint == nil {
		var err error
		maint, err = eng.Maintain(g, vs)
		if err != nil {
			return nil, err
		}
	}
	if cfg.Rematerialize {
		maint.SetForceRematerialize(true)
	}
	s := &Server{
		cfg:     cfg,
		eng:     eng,
		maint:   maint,
		feed:    gv.NewFeed(maint),
		store:   cfg.Store,
		metrics: newMetrics(routeNames),
		kick:    make(chan struct{}, 1),
		done:    make(chan struct{}),
	}
	if cfg.MaxInFlight > 0 {
		s.sem = make(chan struct{}, cfg.MaxInFlight)
	}
	if s.store != nil {
		s.metrics.store = s.store
		s.metrics.walBacklogLimit = cfg.WALBacklogBytes
		if restored {
			s.metrics.recoveryRematSkipped.Store(1)
		}
		s.store.SetFsyncObserver(s.metrics.walFsync.observe)
		// A non-empty WAL tail means this is a restart after a crash (or
		// an unclean shutdown): boot not-ready and let Recover replay the
		// tail before the first checkpoint. A clean boot checkpoints the
		// freshly loaded state right away (in the first publish below).
		if len(s.store.Tail()) > 0 {
			s.recovering.Store(true)
			s.metrics.recoveryState.Store(1)
		}
	}
	s.mu.Lock()
	s.publishLocked()
	s.mu.Unlock()
	// The publish hook is the write-side trigger: it keeps the write
	// clock gauge fresh and kicks the publisher goroutine once the
	// pending backlog crosses the threshold. It runs on the updating
	// goroutine (under s.mu), so it only signals — the publisher
	// goroutine takes the lock itself. Registered after the first
	// publish, so s.cur is always non-nil when the hook fires.
	maint.SetPublishHook(func(version uint64) {
		s.metrics.version.Store(version)
		if cfg.PublishAfter > 0 && version-s.cur.Load().Version >= uint64(cfg.PublishAfter) {
			select {
			case s.kick <- struct{}{}:
			default:
			}
		}
	})
	if cfg.PublishEvery > 0 || cfg.PublishAfter > 0 {
		s.wg.Add(1)
		go s.publisher()
	}
	return s, nil
}

// Close stops the background publisher. It does not drain in-flight
// HTTP requests — that is the http.Server's shutdown job.
func (s *Server) Close() {
	s.closeOnce.Do(func() { close(s.done) })
	s.wg.Wait()
}

// Current returns the live snapshot. Never nil after NewServer.
func (s *Server) Current() *Snapshot { return s.cur.Load() }

// Pending reports how many updates the live snapshot does not yet
// reflect: committed-but-unpublished effective updates plus coalesced
// deltas still buffered in the change feed.
func (s *Server) Pending() uint64 {
	return uint64(s.feed.Backlog()) + s.maint.Version() - s.cur.Load().Version
}

// Metrics exposes the instrument registry (for tests and load drivers).
func (s *Server) Metrics() *Metrics { return s.metrics }

// Publish freezes the current maintained state into a new immutable
// snapshot and atomically swaps it in. Concurrent queries keep reading
// whichever snapshot they already hold; queries admitted after the swap
// read the new one.
func (s *Server) Publish() *Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.publishLocked()
}

// publishLocked builds and swaps the snapshot; the caller holds s.mu.
// Buffered feed deltas are flushed first, so a snapshot always reflects
// every update submitted before the publish.
func (s *Server) publishLocked() *Snapshot {
	start := time.Now()
	if s.feed.Backlog() > 0 {
		s.flushFeedLocked()
	}
	// Engine ctx is Background, so Snapshot cannot fail here; the guard
	// keeps the invariant visible if a cancellable engine ever arrives.
	frozen, err := s.eng.Snapshot(s.maint.G)
	if err != nil {
		panic("serve: snapshot build failed: " + err.Error())
	}
	prev := s.cur.Load()
	var epoch uint64 = 1
	if prev != nil {
		epoch = prev.Epoch + 1
	}
	snap := &Snapshot{
		Epoch:       epoch,
		Version:     s.maint.Version(),
		Graph:       frozen,
		Exts:        s.maint.SnapshotExtensions(),
		PublishedAt: time.Now(),
	}
	s.cur.Store(snap)
	s.metrics.epoch.Store(snap.Epoch)
	s.metrics.published.Store(snap.Version)
	s.metrics.snapshotPair.Store(int64(snap.Exts.TotalEdges()))
	s.metrics.snapshotSize.Store(int64(frozen.Size()))
	s.metrics.publishes.Add(1)
	s.metrics.publishNs.Add(int64(time.Since(start)))
	s.checkpointLocked(snap)
	return snap
}

// checkpointLocked writes the just-published snapshot into the durable
// store, compacting the WAL: every logged record is reflected in the
// snapshot because publishLocked flushes the feed first. Skipped while
// recovering (the WAL tail is still the source of truth) and when the
// server runs ephemeral. A checkpoint failure is logged and counted but
// never fatal — the previous checkpoint plus the full WAL still recover
// this state.
func (s *Server) checkpointLocked(snap *Snapshot) {
	if s.store == nil || s.recovering.Load() {
		return
	}
	start := time.Now()
	var exts *gv.Extensions
	if s.cfg.PersistExtensions {
		exts = snap.Exts
	}
	if err := s.store.Checkpoint(snap.Graph, exts, snap.Version); err != nil {
		s.metrics.checkpointErrors.Add(1)
		if s.cfg.Logger != nil {
			s.cfg.Logger.Printf("checkpoint failed (state still recoverable from previous checkpoint + WAL): %v", err)
		}
		return
	}
	s.metrics.checkpoints.Add(1)
	s.metrics.checkpointNs.Add(int64(time.Since(start)))
}

// Recover replays the store's WAL tail through the coalescing feed and
// delta propagation into the maintained views, then publishes (and
// checkpoints) the recovered state and opens the application routes.
// It returns the number of WAL records and edge updates replayed.
// No-op unless the server booted recovering. Updates whose node ids are
// out of range for the loaded graph — a WAL paired with the wrong
// checkpoint — are dropped and counted rather than panicking the boot.
func (s *Server) Recover() (records, updates int) {
	if s.store == nil || !s.recovering.Load() {
		return 0, 0
	}
	start := time.Now()
	var dropped int
	n := gv.NodeID(s.maint.G.NumNodes())
	for _, batch := range s.store.Tail() {
		records++
		in := batch[:0:0]
		for _, up := range batch {
			if up.From >= 0 && up.From < n && up.To >= 0 && up.To < n {
				in = append(in, up)
			} else {
				dropped++
			}
		}
		s.mu.Lock()
		s.feed.Submit(in...)
		s.flushFeedLocked()
		s.mu.Unlock()
		updates += len(in)
	}
	s.metrics.recoveryRecords.Store(int64(records))
	s.metrics.recoveryUpdates.Store(int64(updates))
	s.metrics.recoveryDropped.Store(int64(dropped))
	s.metrics.recoveryNs.Store(int64(time.Since(start)))
	s.recovering.Store(false)
	s.metrics.recoveryState.Store(0)
	// First post-recovery publish: queries see the recovered state and
	// the checkpoint absorbs the replayed tail, compacting the WAL.
	s.Publish()
	return records, updates
}

// Recovering reports whether the server is still replaying its WAL
// tail (application routes shed with 503 while true).
func (s *Server) Recovering() bool { return s.recovering.Load() }

// publisher is the background goroutine driving timer- and
// threshold-based publication. It republishes only when updates are
// pending — an idle server keeps its epoch stable.
func (s *Server) publisher() {
	defer s.wg.Done()
	var tick <-chan time.Time
	if s.cfg.PublishEvery > 0 {
		t := time.NewTicker(s.cfg.PublishEvery)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case <-s.done:
			return
		case <-tick:
			if s.Pending() > 0 {
				s.Publish()
			}
		case <-s.kick:
			if s.cfg.PublishAfter > 0 && s.Pending() >= uint64(s.cfg.PublishAfter) {
				s.Publish()
			}
		}
	}
}

// ApplyUpdates appends the batch to the write-ahead log (when a store
// backs the server), then submits it to the coalescing change feed and,
// when FlushAfter is disabled or the coalesced backlog reached it,
// flushes the feed into the maintained views. It returns the number of
// updates that changed the graph in this call (0 while buffering) and
// the write clock. The ack contract is append-before-apply: if the WAL
// append fails, the batch is NOT applied in memory — the error returns
// with the in-memory and durable states still in agreement, and the
// caller rejects the write. It never publishes by itself, but buffered
// deltas count toward the PublishAfter threshold.
func (s *Server) ApplyUpdates(updates []gv.EdgeUpdate) (applied int, version uint64, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.store != nil {
		if err := s.store.Append(updates); err != nil {
			return 0, s.maint.Version(), err
		}
	}
	backlog := s.feed.Submit(updates...)
	if s.cfg.FlushAfter <= 0 || backlog >= s.cfg.FlushAfter {
		applied = s.flushFeedLocked()
	} else {
		s.metrics.feedBacklog.Store(int64(backlog))
		// The publish hook only fires on flush; while buffering, the
		// threshold check on total pending deltas lives here.
		if s.cfg.PublishAfter > 0 && s.pendingLocked() >= uint64(s.cfg.PublishAfter) {
			select {
			case s.kick <- struct{}{}:
			default:
			}
		}
	}
	return applied, s.maint.Version(), nil
}

// flushFeedLocked drains the change feed into the maintained views and
// refreshes the maintenance metrics; the caller holds s.mu.
func (s *Server) flushFeedLocked() int {
	applied := s.feed.Flush()
	s.metrics.updates.Add(int64(applied))
	s.metrics.feedBacklog.Store(0)
	s.syncMaintMetricsLocked()
	return applied
}

// pendingLocked is Pending for callers already holding s.mu.
func (s *Server) pendingLocked() uint64 {
	return uint64(s.feed.Backlog()) + s.maint.Version() - s.cur.Load().Version
}

// syncMaintMetricsLocked copies the maintenance counters (owned by the
// write side, guarded by s.mu) into the lock-free metrics registry so
// /metrics can render them without touching the write lock.
func (s *Server) syncMaintMetricsLocked() {
	st := s.maint.Stats
	s.metrics.maintRecomputes.Store(int64(st.Recomputes))
	s.metrics.maintDeltaProps.Store(int64(st.DeltaProps))
	s.metrics.maintSkips.Store(int64(st.Skips))
	s.metrics.maintCoalesced.Store(int64(st.CoalescedAway))
	s.metrics.maintAffected.Store(int64(st.AffectedPairs))
	s.metrics.maintBatches.Store(int64(st.Batches))
	s.metrics.maintPropagateNs.Store(st.PropagateNs)
}

// Handler returns the server's HTTP handler with the full middleware
// stack composed per route: access logging → metrics → admission
// control → request timeout → handler. /healthz and /metrics skip
// admission control and the timeout so the server stays observable
// under overload.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	app := func(route string, h http.HandlerFunc) {
		mux.Handle(route, s.instrument(route, s.withReady(withAdmission(withTimeout(h, s.cfg.RequestTimeout), s.sem, s.metrics))))
	}
	ops := func(route string, h http.HandlerFunc) {
		mux.Handle(route, s.instrument(route, h))
	}
	app("/query", s.handleQuery)
	app("/match", s.handleMatch)
	app("/update", s.handleUpdate)
	app("/publish", s.handlePublish)
	ops("/snapshot", s.handleSnapshot)
	ops("/healthz", s.handleHealthz)
	ops("/metrics", s.handleMetrics)
	return mux
}

// withReady sheds application requests with 503 + Retry-After while the
// server is replaying its WAL tail. /snapshot, /healthz and /metrics
// bypass it so the recovery is observable.
func (s *Server) withReady(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s.recovering.Load() {
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusServiceUnavailable, "recovering: replaying the write-ahead log")
			return
		}
		h.ServeHTTP(w, r)
	})
}

// instrument wraps a route in the logging and metrics middleware.
func (s *Server) instrument(route string, h http.Handler) http.Handler {
	return withLogging(withMetrics(h, s.metrics, route), s.cfg.Logger, func() uint64 {
		return s.cur.Load().Epoch
	})
}

// maxBodyBytes bounds request bodies (patterns and update batches).
const maxBodyBytes = 1 << 20

// queryResponse is the JSON shape of /query and /match results.
type queryResponse struct {
	Epoch     uint64     `json:"epoch"`
	Pattern   string     `json:"pattern"`
	Matched   bool       `json:"matched"`
	Size      int        `json:"size"`
	ViewsUsed []string   `json:"views_used,omitempty"`
	ElapsedUs int64      `json:"elapsed_us"`
	Edges     []edgeJSON `json:"edges,omitempty"`
}

// edgeJSON is one pattern edge's match set (emitted with ?pairs=1).
type edgeJSON struct {
	From  string     `json:"from"`
	To    string     `json:"to"`
	Pairs [][2]int64 `json:"pairs"`
}

// handleQuery answers a pattern query from the live snapshot's
// materialized extensions only (the paper's MatchJoin/Answer), guided
// by the ?strategy= view-selection strategy. The snapshot pointer is
// loaded exactly once; everything below reads that epoch.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	q, ok := s.readPattern(w, r)
	if !ok {
		return
	}
	strategy, ok := parseStrategy(w, r)
	if !ok {
		return
	}
	snap := s.cur.Load()
	start := time.Now()
	res, used, _, err := s.eng.WithRequest(r.Context()).Answer(q, snap.Exts, strategy)
	if err != nil {
		s.queryError(w, r, err)
		return
	}
	resp := &queryResponse{
		Epoch:     snap.Epoch,
		Pattern:   q.Name,
		Matched:   res.Matched,
		Size:      res.Size(),
		ElapsedUs: time.Since(start).Microseconds(),
	}
	for _, i := range used {
		resp.ViewsUsed = append(resp.ViewsUsed, snap.Exts.Set.Defs[i].Name)
	}
	attachPairs(resp, res, r)
	writeJSON(w, http.StatusOK, resp)
}

// handleMatch evaluates a pattern directly over the snapshot graph
// (?mode=sim|dual|strong), bypassing the views — the baseline the
// paper compares against, useful for spot-checking served answers.
// Direct matching has no mid-flight cancellation points; the request
// timeout only gates admission to it.
func (s *Server) handleMatch(w http.ResponseWriter, r *http.Request) {
	q, ok := s.readPattern(w, r)
	if !ok {
		return
	}
	snap := s.cur.Load()
	start := time.Now()
	var res *gv.Result
	switch mode := r.URL.Query().Get("mode"); mode {
	case "", "sim":
		res = gv.Match(snap.Graph, q)
	case "dual":
		res = gv.MatchDual(snap.Graph, q)
	case "strong":
		res = gv.MatchStrong(snap.Graph, q)
	default:
		writeError(w, http.StatusBadRequest, fmt.Sprintf("unknown mode %q (want sim, dual or strong)", mode))
		return
	}
	resp := &queryResponse{
		Epoch:     snap.Epoch,
		Pattern:   q.Name,
		Matched:   res.Matched,
		Size:      res.Size(),
		ElapsedUs: time.Since(start).Microseconds(),
	}
	attachPairs(resp, res, r)
	writeJSON(w, http.StatusOK, resp)
}

// updateResponse is the JSON shape of /update and /publish results.
type updateResponse struct {
	Applied  int    `json:"applied"`
	Buffered int    `json:"buffered,omitempty"`
	Version  uint64 `json:"version"`
	Pending  uint64 `json:"pending"`
	Epoch    uint64 `json:"epoch"`
}

// handleUpdate applies a batch of edge updates (text body, one
// `add <u> <v>` or `del <u> <v>` per line) to the maintained views.
// The updates become visible to queries only at the next publish —
// pass ?publish=1 to swap immediately.
func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	updates, err := parseUpdates(io.LimitReader(r.Body, maxBodyBytes), s.maint.G.NumNodes())
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	applied, version, err := s.ApplyUpdates(updates)
	if err != nil {
		// Distinct body: the batch reached neither the log nor memory —
		// the client must retry, nothing diverged.
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{
			"error":  "write-ahead log append failed: " + err.Error(),
			"reason": "wal_append_failed",
		})
		return
	}
	if r.URL.Query().Get("publish") == "1" {
		s.Publish()
	}
	snap := s.cur.Load()
	writeJSON(w, http.StatusOK, &updateResponse{
		Applied:  applied,
		Buffered: s.feed.Backlog(),
		Version:  version,
		Pending:  s.Pending(),
		Epoch:    snap.Epoch,
	})
}

// handlePublish swaps in a fresh snapshot of the maintained state.
func (s *Server) handlePublish(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	snap := s.Publish()
	writeJSON(w, http.StatusOK, snapshotInfo(snap, s.maint.Version()))
}

// handleSnapshot describes the live snapshot.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, snapshotInfo(s.cur.Load(), s.maint.Version()))
}

// handleHealthz is the liveness and readiness probe: 503 "recovering"
// while the WAL tail is replaying, 503 "degraded" while the WAL has
// grown past the configured high-water mark (checkpoints failing — the
// server still answers, but the operator must act before the disk
// fills), 200 "ok" otherwise.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	epoch := s.cur.Load().Epoch
	if s.recovering.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "recovering", "epoch": epoch})
		return
	}
	if s.walBacklogged() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"status": "degraded", "reason": "wal_backlog",
			"wal_bytes": s.store.WALSize(), "limit_bytes": s.cfg.WALBacklogBytes,
			"epoch": epoch,
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "epoch": epoch})
}

// walBacklogged reports whether the WAL has outgrown the configured
// high-water mark (WALBacklogBytes).
func (s *Server) walBacklogged() bool {
	return s.store != nil && s.cfg.WALBacklogBytes > 0 && s.store.WALSize() >= s.cfg.WALBacklogBytes
}

// handleMetrics renders the Prometheus text exposition.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.metrics.WriteText(w)
}

// snapshotJSON is the JSON shape of /snapshot and /publish.
type snapshotJSON struct {
	Epoch       uint64 `json:"epoch"`
	Version     uint64 `json:"version"`
	Pending     uint64 `json:"pending"`
	Backend     string `json:"backend"`
	Nodes       int    `json:"nodes"`
	Edges       int    `json:"edges"`
	Views       int    `json:"views"`
	Pairs       int    `json:"pairs"`
	PublishedAt string `json:"published_at"`
}

// snapshotInfo projects a snapshot into its JSON description.
func snapshotInfo(snap *Snapshot, version uint64) *snapshotJSON {
	backend := "frozen"
	if _, ok := snap.Graph.(*gv.Sharded); ok {
		backend = "sharded"
	}
	return &snapshotJSON{
		Epoch:       snap.Epoch,
		Version:     snap.Version,
		Pending:     version - snap.Version,
		Backend:     backend,
		Nodes:       snap.Graph.NumNodes(),
		Edges:       snap.Graph.NumEdges(),
		Views:       snap.Exts.Set.Card(),
		Pairs:       snap.Exts.TotalEdges(),
		PublishedAt: snap.PublishedAt.UTC().Format(time.RFC3339Nano),
	}
}

// readPattern reads and validates the pattern DSL request body,
// writing the error response itself when it returns ok=false.
func (s *Server) readPattern(w http.ResponseWriter, r *http.Request) (*gv.Pattern, bool) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST a pattern in the DSL")
		return nil, false
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return nil, false
	}
	q, err := gv.ParsePattern(string(body))
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return nil, false
	}
	if err := q.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return nil, false
	}
	return q, true
}

// parseStrategy resolves ?strategy= (default minimal), writing the
// error response itself when it returns ok=false.
func parseStrategy(w http.ResponseWriter, r *http.Request) (gv.Strategy, bool) {
	switch v := r.URL.Query().Get("strategy"); v {
	case "", "minimal":
		return gv.UseMinimal, true
	case "all":
		return gv.UseAll, true
	case "minimum":
		return gv.UseMinimum, true
	default:
		writeError(w, http.StatusBadRequest, fmt.Sprintf("unknown strategy %q (want all, minimal or minimum)", v))
		return 0, false
	}
}

// queryError maps an Answer error to its HTTP status: not-contained is
// the client's problem (the views cannot answer this query, 422), a
// dead request context is overload/timeout (503).
func (s *Server) queryError(w http.ResponseWriter, r *http.Request, err error) {
	switch {
	case errors.Is(err, gv.ErrNotContained):
		writeError(w, http.StatusUnprocessableEntity, err.Error())
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		writeError(w, http.StatusServiceUnavailable, err.Error())
	default:
		writeError(w, http.StatusInternalServerError, err.Error())
	}
}

// attachPairs adds per-edge match pairs to a response when ?pairs=1,
// truncated to ?limit= pairs per edge (default 100, 0 = unlimited).
func attachPairs(resp *queryResponse, res *gv.Result, r *http.Request) {
	if r.URL.Query().Get("pairs") != "1" || !res.Matched {
		return
	}
	limit := 100
	if v := r.URL.Query().Get("limit"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n >= 0 {
			limit = n
		}
	}
	for i, e := range res.Pattern.Edges {
		em := &res.Edges[i]
		n := len(em.Pairs)
		if limit > 0 && n > limit {
			n = limit
		}
		ej := edgeJSON{
			From:  res.Pattern.Nodes[e.From].Name,
			To:    res.Pattern.Nodes[e.To].Name,
			Pairs: make([][2]int64, n),
		}
		for j := 0; j < n; j++ {
			ej.Pairs[j] = [2]int64{int64(em.Pairs[j].Src), int64(em.Pairs[j].Dst)}
		}
		resp.Edges = append(resp.Edges, ej)
	}
}

// parseUpdates parses the /update body: one `add <u> <v>` or
// `del <u> <v>` per line, blank lines and #-comments ignored. Node ids
// must be in [0, numNodes) — the graph's node set is fixed at load
// time, so an out-of-range id is a client error, not a new node.
func parseUpdates(r io.Reader, numNodes int) ([]gv.EdgeUpdate, error) {
	var updates []gv.EdgeUpdate
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return nil, fmt.Errorf("line %d: want `add <u> <v>` or `del <u> <v>`", lineNo)
		}
		var del bool
		switch fields[0] {
		case "add":
		case "del":
			del = true
		default:
			return nil, fmt.Errorf("line %d: unknown op %q (want add or del)", lineNo, fields[0])
		}
		u, err1 := strconv.Atoi(fields[1])
		v, err2 := strconv.Atoi(fields[2])
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("line %d: bad node ids", lineNo)
		}
		if u < 0 || u >= numNodes || v < 0 || v >= numNodes {
			return nil, fmt.Errorf("line %d: node id out of range [0,%d)", lineNo, numNodes)
		}
		updates = append(updates, gv.EdgeUpdate{From: gv.NodeID(u), To: gv.NodeID(v), Delete: del})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return updates, nil
}

// writeJSON writes a JSON response body.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

// writeError writes a JSON error body.
func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
