package serve

// Tests of the recovery-aware serving lifecycle: ack-after-WAL-append,
// the recovering 503 gate, checkpoint-on-publish compaction, and the
// acceptance criterion that a server restarted after a kill serves
// exactly the answers it acknowledged before the crash.

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	gv "graphviews"
	"graphviews/internal/store"
)

// newDurableServer opens a store over dir and builds a server on it.
func newDurableServer(t *testing.T, dir string, cfg Config) (*Server, *store.Store, string) {
	t.Helper()
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	// A checkpoint from a previous boot replaces the seed workload graph
	// — the same thawing cmd/gvserve does.
	g, vs, q := testWorkload(t)
	if base := st.Base(); base != nil {
		switch b := base.(type) {
		case *gv.Frozen:
			g = b.Thaw()
		case *gv.Sharded:
			g = b.Unshard().Thaw()
		}
	}
	cfg.Store = st
	s, err := NewServer(g, vs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s, st, q
}

// postUpdate sends an update body and returns the HTTP status.
func postUpdate(t *testing.T, url, body string) int {
	t.Helper()
	resp, err := http.Post(url+"/update", "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

// TestAckedUpdatesSurviveCrash is the acceptance criterion: updates
// acknowledged over /update survive a kill -9 (simulated by abandoning
// the server without any shutdown) and a restarted server answers the
// query exactly as the pre-crash server did.
func TestAckedUpdatesSurviveCrash(t *testing.T) {
	dir := t.TempDir()
	s1, _, q := newDurableServer(t, dir, Config{})
	hs1 := httptest.NewServer(s1.Handler())
	// Acked writes: two more A→B edges (answer grows from 1 to 3), one
	// A→B delete (back to 2), plus an irrelevant B→A edge.
	if code := postUpdate(t, hs1.URL, "add 1 5\nadd 2 6\nadd 5 0\ndel 0 4\n"); code != http.StatusOK {
		t.Fatalf("update status %d", code)
	}
	s1.Publish()
	want := postQuery(t, hs1.URL+"/query", q, http.StatusOK)
	// More acked-but-never-published writes — durable only in the WAL.
	if code := postUpdate(t, hs1.URL, "add 0 4\nadd 3 7\n"); code != http.StatusOK {
		t.Fatalf("update status %d", code)
	}
	hs1.Close()
	// Crash: no s1.Close(), no store close, no final checkpoint. (The
	// store's WAL file is already durable per record under SyncAlways.)

	s2, st2, _ := newDurableServer(t, dir, Config{})
	if !s2.Recovering() {
		t.Fatal("restart with a WAL tail did not boot recovering")
	}
	records, updates := s2.Recover()
	if records == 0 || updates != 2 {
		t.Fatalf("recovery replayed %d records / %d updates, want the 1 unpublished batch of 2", records, updates)
	}
	hs2 := httptest.NewServer(s2.Handler())
	defer hs2.Close()
	got := postQuery(t, hs2.URL+"/query", q, http.StatusOK)
	// The published answer plus the two acked A→B adds: size 2 + 2.
	if got.Size != want.Size+2 || got.Size != 4 {
		t.Fatalf("recovered answer size %d, want %d", got.Size, want.Size+2)
	}
	// Recovery's publish checkpointed and compacted the WAL.
	if st2.WALSize() != 0 {
		t.Fatalf("WAL not compacted after recovery publish: %d bytes", st2.WALSize())
	}
	if n := s2.Metrics().recoveryRecords.Load(); n == 0 {
		t.Fatal("recovery metrics not recorded")
	}
}

// TestRecoveringGate: while the WAL tail is unreplayed, /healthz is
// 503 "recovering", application routes shed with 503 + Retry-After, but
// /metrics and /snapshot stay observable; Recover opens everything.
func TestRecoveringGate(t *testing.T) {
	dir := t.TempDir()
	s1, _, _ := newDurableServer(t, dir, Config{})
	hs1 := httptest.NewServer(s1.Handler())
	if code := postUpdate(t, hs1.URL, "add 1 5\n"); code != http.StatusOK {
		t.Fatalf("update status %d", code)
	}
	hs1.Close() // crash with a non-empty WAL

	s2, _, q := newDurableServer(t, dir, Config{})
	hs2 := httptest.NewServer(s2.Handler())
	defer hs2.Close()
	for _, probe := range []struct {
		path, body string
		want       int
	}{
		{"/healthz", "", http.StatusServiceUnavailable},
		{"/query", q, http.StatusServiceUnavailable},
		{"/update", "add 1 5\n", http.StatusServiceUnavailable},
		{"/snapshot", "", http.StatusOK},
		{"/metrics", "", http.StatusOK},
	} {
		var resp *http.Response
		var err error
		if probe.body != "" {
			resp, err = http.Post(hs2.URL+probe.path, "text/plain", strings.NewReader(probe.body))
		} else {
			resp, err = http.Get(hs2.URL + probe.path)
		}
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != probe.want {
			t.Fatalf("%s while recovering: status %d, want %d", probe.path, resp.StatusCode, probe.want)
		}
		if probe.path == "/query" && resp.Header.Get("Retry-After") == "" {
			t.Fatal("recovering 503 without Retry-After")
		}
	}
	s2.Recover()
	for _, path := range []string{"/healthz"} {
		resp, err := http.Get(hs2.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s after Recover: status %d", path, resp.StatusCode)
		}
	}
	postQuery(t, hs2.URL+"/query", q, http.StatusOK)
}

// TestUpdateAckContract: when the WAL cannot accept the append, /update
// returns 503 with the wal_append_failed body and the in-memory state
// does not advance — no memory/disk divergence, ever.
func TestUpdateAckContract(t *testing.T) {
	dir := t.TempDir()
	s, st, _ := newDurableServer(t, dir, Config{})
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()
	// Force append failures by closing the WAL file underneath the store.
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	before := s.maint.Version()
	resp, err := http.Post(hs.URL+"/update", "text/plain", strings.NewReader("add 1 5\n"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("update with failed WAL: status %d, want 503", resp.StatusCode)
	}
	var body struct {
		Error  string `json:"error"`
		Reason string `json:"reason"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Reason != "wal_append_failed" || body.Error == "" {
		t.Fatalf("ack-failure body = %+v, want reason wal_append_failed", body)
	}
	if got := s.maint.Version(); got != before {
		t.Fatalf("rejected update advanced the write clock %d → %d", before, got)
	}
	if n := s.Metrics().RequestCount("/update", "5xx"); n != 1 {
		t.Fatalf("5xx count = %d, want 1", n)
	}
}

// TestCheckpointOnPublish: each publish compacts the WAL, and a clean
// restart (empty tail) boots ready immediately with the checkpointed
// graph.
func TestCheckpointOnPublish(t *testing.T) {
	dir := t.TempDir()
	s1, st1, _ := newDurableServer(t, dir, Config{})
	hs1 := httptest.NewServer(s1.Handler())
	if code := postUpdate(t, hs1.URL, "add 1 5\nadd 2 6\n"); code != http.StatusOK {
		t.Fatalf("update status %d", code)
	}
	if st1.WALSize() == 0 {
		t.Fatal("acked updates not in the WAL")
	}
	s1.Publish()
	if st1.WALSize() != 0 {
		t.Fatalf("publish did not compact the WAL: %d bytes", st1.WALSize())
	}
	if n := s1.Metrics().checkpoints.Load(); n < 2 { // boot + publish
		t.Fatalf("checkpoints = %d, want ≥ 2", n)
	}
	hs1.Close()

	s2, _, q := newDurableServer(t, dir, Config{})
	if s2.Recovering() {
		t.Fatal("clean restart booted recovering")
	}
	hs2 := httptest.NewServer(s2.Handler())
	defer hs2.Close()
	got := postQuery(t, hs2.URL+"/query", q, http.StatusOK)
	if got.Size != 3 { // 0→4 seed edge plus the two published adds
		t.Fatalf("restarted answer size %d, want 3", got.Size)
	}
	// The graph must also have persisted the checkpoint's manifest.
	if _, err := os.Stat(filepath.Join(dir, "MANIFEST")); err != nil {
		t.Fatal(err)
	}
}

// scrapeMetrics fetches /metrics and returns the body.
func scrapeMetrics(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(buf)
}

// TestRecoverySkipsRematerialization is the tentpole acceptance
// criterion: with persisted extensions, a restart after kill -9 with a
// clean WAL tail adopts the checkpoint's extensions — zero recomputes,
// the remat-skipped gauge set — and answers exactly as before.
func TestRecoverySkipsRematerialization(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{PersistExtensions: true}
	s1, st1, q := newDurableServer(t, dir, cfg)
	hs1 := httptest.NewServer(s1.Handler())
	if code := postUpdate(t, hs1.URL, "add 1 5\nadd 2 6\n"); code != http.StatusOK {
		t.Fatalf("update status %d", code)
	}
	s1.Publish() // checkpoint graph + extensions, compact the WAL
	if st1.WALSize() != 0 {
		t.Fatal("publish did not compact the WAL")
	}
	want := postQuery(t, hs1.URL+"/query", q, http.StatusOK)
	hs1.Close()
	// Crash: no Close, no final checkpoint — but the tail is clean.

	s2, st2, _ := newDurableServer(t, dir, cfg)
	if s2.Recovering() {
		t.Fatal("clean-tail restart booted recovering")
	}
	if len(st2.BaseExtensionData()) == 0 {
		t.Fatal("checkpoint carried no extensions")
	}
	if got := s2.Metrics().recoveryRematSkipped.Load(); got != 1 {
		t.Fatalf("recoveryRematSkipped = %d, want 1", got)
	}
	if s2.Recover(); s2.Recovering() {
		t.Fatal("Recover did not reach ready")
	}
	if got := s2.maint.Stats.Recomputes; got != 0 {
		t.Fatalf("clean-tail boot rematerialized %d views, want 0", got)
	}
	hs2 := httptest.NewServer(s2.Handler())
	defer hs2.Close()
	got := postQuery(t, hs2.URL+"/query", q, http.StatusOK)
	if got.Size != want.Size {
		t.Fatalf("restored answer size %d, want %d", got.Size, want.Size)
	}
	if !strings.Contains(scrapeMetrics(t, hs2.URL), "gvserve_recovery_remat_skipped 1") {
		t.Fatal("gvserve_recovery_remat_skipped gauge not exported")
	}
}

// TestRecoveryWithTailRestoresExtensions: persisted extensions plus a
// non-empty tail — boot recovering, adopt the extensions, replay only
// the tail through delta propagation, and end up answering exactly what
// was acknowledged before the crash.
func TestRecoveryWithTailRestoresExtensions(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{PersistExtensions: true}
	s1, _, q := newDurableServer(t, dir, cfg)
	hs1 := httptest.NewServer(s1.Handler())
	if code := postUpdate(t, hs1.URL, "add 1 5\n"); code != http.StatusOK {
		t.Fatalf("update status %d", code)
	}
	s1.Publish()
	// Acked but never published: durable only in the WAL tail.
	if code := postUpdate(t, hs1.URL, "add 2 6\n"); code != http.StatusOK {
		t.Fatalf("update status %d", code)
	}
	hs1.Close()

	s2, _, _ := newDurableServer(t, dir, cfg)
	if !s2.Recovering() {
		t.Fatal("restart with a tail did not boot recovering")
	}
	if got := s2.Metrics().recoveryRematSkipped.Load(); got != 1 {
		t.Fatalf("tail replay forced rematerialization (gauge %d)", got)
	}
	if _, updates := s2.Recover(); updates != 1 {
		t.Fatalf("replayed %d updates, want 1", updates)
	}
	if got := s2.maint.Stats.Recomputes; got != 0 {
		t.Fatalf("tail replay fell back to %d full recomputes", got)
	}
	hs2 := httptest.NewServer(s2.Handler())
	defer hs2.Close()
	got := postQuery(t, hs2.URL+"/query", q, http.StatusOK)
	if got.Size != 3 { // seed 0→4 plus the two acked adds
		t.Fatalf("recovered answer size %d, want 3", got.Size)
	}
}

// TestWALBacklogDegradesHealth: when checkpoints stop compacting the
// WAL past the configured high-water mark, /healthz flips to 503
// "degraded"/wal_backlog and the backlog gauge goes positive; a
// successful checkpoint clears both.
func TestWALBacklogDegradesHealth(t *testing.T) {
	dir := t.TempDir()
	s, st, _ := newDurableServer(t, dir, Config{WALBacklogBytes: 1})
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	resp, err := http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz before backlog: %d", resp.StatusCode)
	}

	if code := postUpdate(t, hs.URL, "add 1 5\n"); code != http.StatusOK {
		t.Fatalf("update status %d", code)
	}
	if st.WALSize() == 0 {
		t.Fatal("update not logged")
	}
	resp, err = http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var body struct {
		Status   string `json:"status"`
		Reason   string `json:"reason"`
		WALBytes int64  `json:"wal_bytes"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || body.Status != "degraded" || body.Reason != "wal_backlog" || body.WALBytes == 0 {
		t.Fatalf("backlogged healthz = %d %+v, want 503 degraded/wal_backlog", resp.StatusCode, body)
	}
	if !strings.Contains(scrapeMetrics(t, hs.URL), "gvserve_wal_backlog_bytes "+
		"") {
		t.Fatal("gvserve_wal_backlog_bytes not exported")
	}

	s.Publish() // checkpoint compacts the WAL; health recovers
	resp, err = http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after compaction: %d", resp.StatusCode)
	}
	if strings.Contains(scrapeMetrics(t, hs.URL), "gvserve_wal_backlog_bytes 0\n") == false {
		t.Fatal("backlog gauge did not return to 0")
	}
}

// TestCheckpointShardMetricsExported: the per-shard checkpoint counters
// ride the /metrics surface.
func TestCheckpointShardMetricsExported(t *testing.T) {
	dir := t.TempDir()
	s, _, _ := newDurableServer(t, dir, Config{})
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()
	if code := postUpdate(t, hs.URL, "add 1 5\n"); code != http.StatusOK {
		t.Fatalf("update status %d", code)
	}
	s.Publish()
	text := scrapeMetrics(t, hs.URL)
	for _, metric := range []string{
		"gvserve_checkpoint_shards_written_total",
		"gvserve_checkpoint_shards_skipped_total",
		"gvserve_checkpoint_bytes_total",
		"gvserve_checkpoint_parts_removed_total",
	} {
		if !strings.Contains(text, metric+" ") {
			t.Fatalf("%s not exported", metric)
		}
	}
}
