package serve

// Tests of the recovery-aware serving lifecycle: ack-after-WAL-append,
// the recovering 503 gate, checkpoint-on-publish compaction, and the
// acceptance criterion that a server restarted after a kill serves
// exactly the answers it acknowledged before the crash.

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	gv "graphviews"
	"graphviews/internal/store"
)

// newDurableServer opens a store over dir and builds a server on it.
func newDurableServer(t *testing.T, dir string, cfg Config) (*Server, *store.Store, string) {
	t.Helper()
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	// A checkpoint from a previous boot replaces the seed workload graph
	// — the same thawing cmd/gvserve does.
	g, vs, q := testWorkload(t)
	if base := st.Base(); base != nil {
		switch b := base.(type) {
		case *gv.Frozen:
			g = b.Thaw()
		case *gv.Sharded:
			g = b.Unshard().Thaw()
		}
	}
	cfg.Store = st
	s, err := NewServer(g, vs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s, st, q
}

// postUpdate sends an update body and returns the HTTP status.
func postUpdate(t *testing.T, url, body string) int {
	t.Helper()
	resp, err := http.Post(url+"/update", "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

// TestAckedUpdatesSurviveCrash is the acceptance criterion: updates
// acknowledged over /update survive a kill -9 (simulated by abandoning
// the server without any shutdown) and a restarted server answers the
// query exactly as the pre-crash server did.
func TestAckedUpdatesSurviveCrash(t *testing.T) {
	dir := t.TempDir()
	s1, _, q := newDurableServer(t, dir, Config{})
	hs1 := httptest.NewServer(s1.Handler())
	// Acked writes: two more A→B edges (answer grows from 1 to 3), one
	// A→B delete (back to 2), plus an irrelevant B→A edge.
	if code := postUpdate(t, hs1.URL, "add 1 5\nadd 2 6\nadd 5 0\ndel 0 4\n"); code != http.StatusOK {
		t.Fatalf("update status %d", code)
	}
	s1.Publish()
	want := postQuery(t, hs1.URL+"/query", q, http.StatusOK)
	// More acked-but-never-published writes — durable only in the WAL.
	if code := postUpdate(t, hs1.URL, "add 0 4\nadd 3 7\n"); code != http.StatusOK {
		t.Fatalf("update status %d", code)
	}
	hs1.Close()
	// Crash: no s1.Close(), no store close, no final checkpoint. (The
	// store's WAL file is already durable per record under SyncAlways.)

	s2, st2, _ := newDurableServer(t, dir, Config{})
	if !s2.Recovering() {
		t.Fatal("restart with a WAL tail did not boot recovering")
	}
	records, updates := s2.Recover()
	if records == 0 || updates != 2 {
		t.Fatalf("recovery replayed %d records / %d updates, want the 1 unpublished batch of 2", records, updates)
	}
	hs2 := httptest.NewServer(s2.Handler())
	defer hs2.Close()
	got := postQuery(t, hs2.URL+"/query", q, http.StatusOK)
	// The published answer plus the two acked A→B adds: size 2 + 2.
	if got.Size != want.Size+2 || got.Size != 4 {
		t.Fatalf("recovered answer size %d, want %d", got.Size, want.Size+2)
	}
	// Recovery's publish checkpointed and compacted the WAL.
	if st2.WALSize() != 0 {
		t.Fatalf("WAL not compacted after recovery publish: %d bytes", st2.WALSize())
	}
	if n := s2.Metrics().recoveryRecords.Load(); n == 0 {
		t.Fatal("recovery metrics not recorded")
	}
}

// TestRecoveringGate: while the WAL tail is unreplayed, /healthz is
// 503 "recovering", application routes shed with 503 + Retry-After, but
// /metrics and /snapshot stay observable; Recover opens everything.
func TestRecoveringGate(t *testing.T) {
	dir := t.TempDir()
	s1, _, _ := newDurableServer(t, dir, Config{})
	hs1 := httptest.NewServer(s1.Handler())
	if code := postUpdate(t, hs1.URL, "add 1 5\n"); code != http.StatusOK {
		t.Fatalf("update status %d", code)
	}
	hs1.Close() // crash with a non-empty WAL

	s2, _, q := newDurableServer(t, dir, Config{})
	hs2 := httptest.NewServer(s2.Handler())
	defer hs2.Close()
	for _, probe := range []struct {
		path, body string
		want       int
	}{
		{"/healthz", "", http.StatusServiceUnavailable},
		{"/query", q, http.StatusServiceUnavailable},
		{"/update", "add 1 5\n", http.StatusServiceUnavailable},
		{"/snapshot", "", http.StatusOK},
		{"/metrics", "", http.StatusOK},
	} {
		var resp *http.Response
		var err error
		if probe.body != "" {
			resp, err = http.Post(hs2.URL+probe.path, "text/plain", strings.NewReader(probe.body))
		} else {
			resp, err = http.Get(hs2.URL + probe.path)
		}
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != probe.want {
			t.Fatalf("%s while recovering: status %d, want %d", probe.path, resp.StatusCode, probe.want)
		}
		if probe.path == "/query" && resp.Header.Get("Retry-After") == "" {
			t.Fatal("recovering 503 without Retry-After")
		}
	}
	s2.Recover()
	for _, path := range []string{"/healthz"} {
		resp, err := http.Get(hs2.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s after Recover: status %d", path, resp.StatusCode)
		}
	}
	postQuery(t, hs2.URL+"/query", q, http.StatusOK)
}

// TestUpdateAckContract: when the WAL cannot accept the append, /update
// returns 503 with the wal_append_failed body and the in-memory state
// does not advance — no memory/disk divergence, ever.
func TestUpdateAckContract(t *testing.T) {
	dir := t.TempDir()
	s, st, _ := newDurableServer(t, dir, Config{})
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()
	// Force append failures by closing the WAL file underneath the store.
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	before := s.maint.Version()
	resp, err := http.Post(hs.URL+"/update", "text/plain", strings.NewReader("add 1 5\n"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("update with failed WAL: status %d, want 503", resp.StatusCode)
	}
	var body struct {
		Error  string `json:"error"`
		Reason string `json:"reason"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Reason != "wal_append_failed" || body.Error == "" {
		t.Fatalf("ack-failure body = %+v, want reason wal_append_failed", body)
	}
	if got := s.maint.Version(); got != before {
		t.Fatalf("rejected update advanced the write clock %d → %d", before, got)
	}
	if n := s.Metrics().RequestCount("/update", "5xx"); n != 1 {
		t.Fatalf("5xx count = %d, want 1", n)
	}
}

// TestCheckpointOnPublish: each publish compacts the WAL, and a clean
// restart (empty tail) boots ready immediately with the checkpointed
// graph.
func TestCheckpointOnPublish(t *testing.T) {
	dir := t.TempDir()
	s1, st1, _ := newDurableServer(t, dir, Config{})
	hs1 := httptest.NewServer(s1.Handler())
	if code := postUpdate(t, hs1.URL, "add 1 5\nadd 2 6\n"); code != http.StatusOK {
		t.Fatalf("update status %d", code)
	}
	if st1.WALSize() == 0 {
		t.Fatal("acked updates not in the WAL")
	}
	s1.Publish()
	if st1.WALSize() != 0 {
		t.Fatalf("publish did not compact the WAL: %d bytes", st1.WALSize())
	}
	if n := s1.Metrics().checkpoints.Load(); n < 2 { // boot + publish
		t.Fatalf("checkpoints = %d, want ≥ 2", n)
	}
	hs1.Close()

	s2, _, q := newDurableServer(t, dir, Config{})
	if s2.Recovering() {
		t.Fatal("clean restart booted recovering")
	}
	hs2 := httptest.NewServer(s2.Handler())
	defer hs2.Close()
	got := postQuery(t, hs2.URL+"/query", q, http.StatusOK)
	if got.Size != 3 { // 0→4 seed edge plus the two published adds
		t.Fatalf("restarted answer size %d, want 3", got.Size)
	}
	// The graph must also have persisted the checkpoint's snapshot file.
	if _, err := os.Stat(filepath.Join(dir, "current.snap")); err != nil {
		t.Fatal(err)
	}
}
