package serve

// Hand-rolled Prometheus-style instrumentation: per-route request
// counters (by status class) and latency histograms, plus server-level
// gauges for the snapshot epoch, the maintained write clock and the
// admission-control state. Everything is atomics over fixed-shape
// arrays — no locks on the request path, no dependencies — and renders
// in the Prometheus text exposition format at /metrics.

import (
	"fmt"
	"io"
	"sort"
	"sync/atomic"
	"time"

	"graphviews/internal/store"
)

// latencyBuckets are the histogram upper bounds in seconds (a +Inf
// bucket is implicit). Exponential-ish from 0.5 ms to 10 s: pattern
// queries on serving-sized graphs sit in the low milliseconds, so the
// lower half resolves the interesting range while the upper half
// catches publish stalls and overload tails.
var latencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10,
}

// latencyHist is a fixed-bucket latency histogram with atomic counters:
// counts[i] holds the observations that fell in bucket i
// (non-cumulative internally; cumulated on render), sumNs the total
// observed latency in nanoseconds.
type latencyHist struct {
	counts [15]atomic.Int64 // len(latencyBuckets)+1, last = +Inf overflow
	sumNs  atomic.Int64
	total  atomic.Int64
}

// observe records one request latency.
func (h *latencyHist) observe(d time.Duration) {
	i := sort.SearchFloat64s(latencyBuckets, d.Seconds())
	h.counts[i].Add(1)
	h.sumNs.Add(int64(d))
	h.total.Add(1)
}

// statusClass maps an HTTP status code to its counter slot.
func statusClass(code int) int {
	switch {
	case code == 429:
		return 3 // shed by admission control; reported separately
	case code >= 500:
		return 2
	case code >= 400:
		return 1
	default:
		return 0
	}
}

// statusLabels are the Prometheus `code` label values, indexed by
// statusClass.
var statusLabels = [4]string{"2xx", "4xx", "5xx", "429"}

// routeMetrics is the per-endpoint instrument set.
type routeMetrics struct {
	route    string
	requests [4]atomic.Int64 // by statusClass
	latency  latencyHist
}

// Metrics is the server's instrument registry. All fields are safe for
// concurrent use; the request path touches only atomics.
type Metrics struct {
	routes []*routeMetrics

	// Admission control.
	inFlight atomic.Int64
	shed     atomic.Int64

	// Snapshot lifecycle.
	epoch        atomic.Uint64
	publishes    atomic.Int64
	publishNs    atomic.Int64  // cumulative publish (freeze+clone+swap) time
	snapshotPair atomic.Int64  // |V(G)| of the live snapshot
	snapshotSize atomic.Int64  // |G| of the live snapshot
	published    atomic.Uint64 // write-clock value captured at last publish

	// Write path.
	version atomic.Uint64 // Maintained write clock
	updates atomic.Int64  // effective updates applied

	// View maintenance. Snapshots of view.MaintStats, copied from the
	// maintained views after every feed flush (under the write lock) so
	// the render path stays lock-free. Stored absolute, rendered as
	// counters.
	feedBacklog      atomic.Int64 // coalesced deltas buffered, not yet flushed
	maintRecomputes  atomic.Int64
	maintDeltaProps  atomic.Int64
	maintSkips       atomic.Int64
	maintCoalesced   atomic.Int64
	maintAffected    atomic.Int64
	maintBatches     atomic.Int64
	maintPropagateNs atomic.Int64

	// Durability. store and walBacklogLimit are set once at construction
	// (nil / 0 when the server runs ephemeral); the store's WAL and
	// checkpoint counters are live atomics rendered directly. walFsync is
	// fed by the store's fsync observer.
	store           *store.Store
	walBacklogLimit int64
	walFsync        latencyHist

	// Recovery lifecycle: state is 1 while the WAL tail is being
	// replayed, 0 once the server is ready; the others are set once when
	// replay completes.
	recoveryState   atomic.Int64
	recoveryRecords atomic.Int64 // WAL records replayed
	recoveryUpdates atomic.Int64 // edge updates replayed into the views
	recoveryDropped atomic.Int64 // logged updates dropped as out of range
	recoveryNs      atomic.Int64 // replay wall time

	// recoveryRematSkipped is 1 when boot restored the materialized view
	// extensions from the checkpoint and skipped rematerialization.
	recoveryRematSkipped atomic.Int64

	// Checkpointing (snapshot publish → store.Checkpoint).
	checkpoints      atomic.Int64
	checkpointErrors atomic.Int64
	checkpointNs     atomic.Int64
}

// newMetrics builds a registry with one instrument set per route.
func newMetrics(routes []string) *Metrics {
	m := &Metrics{}
	for _, r := range routes {
		m.routes = append(m.routes, &routeMetrics{route: r})
	}
	return m
}

// forRoute returns the instrument set of a registered route (nil for
// unknown routes, which are then simply not instrumented).
func (m *Metrics) forRoute(route string) *routeMetrics {
	for _, r := range m.routes {
		if r.route == route {
			return r
		}
	}
	return nil
}

// Shed reports how many requests admission control rejected with 429.
func (m *Metrics) Shed() int64 { return m.shed.Load() }

// InFlight reports the number of requests currently inside admitted
// handlers.
func (m *Metrics) InFlight() int64 { return m.inFlight.Load() }

// RequestCount returns the number of requests a route answered with the
// given status class ("2xx", "4xx", "5xx", "429").
func (m *Metrics) RequestCount(route, class string) int64 {
	r := m.forRoute(route)
	if r == nil {
		return 0
	}
	for i, l := range statusLabels {
		if l == class {
			return r.requests[i].Load()
		}
	}
	return 0
}

// WriteText renders the registry in the Prometheus text exposition format
// (the hand-rolled equivalent of promhttp).
func (m *Metrics) WriteText(w io.Writer) {
	fmt.Fprintf(w, "# HELP gvserve_requests_total Requests served, by route and status class.\n")
	fmt.Fprintf(w, "# TYPE gvserve_requests_total counter\n")
	for _, r := range m.routes {
		for i, label := range statusLabels {
			if n := r.requests[i].Load(); n > 0 {
				fmt.Fprintf(w, "gvserve_requests_total{route=%q,code=%q} %d\n", r.route, label, n)
			}
		}
	}
	fmt.Fprintf(w, "# HELP gvserve_request_duration_seconds Request latency histogram, by route.\n")
	fmt.Fprintf(w, "# TYPE gvserve_request_duration_seconds histogram\n")
	for _, r := range m.routes {
		if r.latency.total.Load() == 0 {
			continue
		}
		cum := int64(0)
		for i, ub := range latencyBuckets {
			cum += r.latency.counts[i].Load()
			fmt.Fprintf(w, "gvserve_request_duration_seconds_bucket{route=%q,le=\"%g\"} %d\n", r.route, ub, cum)
		}
		cum += r.latency.counts[len(latencyBuckets)].Load()
		fmt.Fprintf(w, "gvserve_request_duration_seconds_bucket{route=%q,le=\"+Inf\"} %d\n", r.route, cum)
		fmt.Fprintf(w, "gvserve_request_duration_seconds_sum{route=%q} %g\n", r.route, float64(r.latency.sumNs.Load())/1e9)
		fmt.Fprintf(w, "gvserve_request_duration_seconds_count{route=%q} %d\n", r.route, cum)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge("gvserve_inflight_requests", "Requests currently inside admitted handlers.", m.inFlight.Load())
	counter("gvserve_shed_total", "Requests rejected with 429 by admission control.", m.shed.Load())
	gauge("gvserve_snapshot_epoch", "Epoch of the live immutable snapshot.", int64(m.epoch.Load()))
	gauge("gvserve_snapshot_pairs", "Total match pairs |V(G)| cached in the live snapshot.", m.snapshotPair.Load())
	gauge("gvserve_snapshot_graph_size", "Graph size |V|+|E| of the live snapshot.", m.snapshotSize.Load())
	counter("gvserve_publish_total", "Snapshots published since start.", m.publishes.Load())
	counter("gvserve_publish_ns_total", "Cumulative snapshot build+swap time in nanoseconds.", m.publishNs.Load())
	gauge("gvserve_maintained_version", "Write clock: effective updates committed to the maintained views.", int64(m.version.Load()))
	gauge("gvserve_pending_updates", "Committed updates not yet visible in the live snapshot.", int64(m.version.Load()-m.published.Load()))
	counter("gvserve_updates_applied_total", "Effective edge updates applied.", m.updates.Load())
	gauge("gvserve_feed_backlog", "Coalesced deltas buffered in the change feed, not yet propagated.", m.feedBacklog.Load())
	counter("gvserve_maintenance_batches_total", "Coalesced update batches propagated into the maintained views.", m.maintBatches.Load())
	counter("gvserve_maintenance_recompute_total", "View refreshes that fell back to full rematerialization.", m.maintRecomputes.Load())
	counter("gvserve_maintenance_delta_total", "View refreshes served by affected-area delta propagation.", m.maintDeltaProps.Load())
	counter("gvserve_maintenance_skip_total", "View refreshes skipped as irrelevant to the batch.", m.maintSkips.Load())
	counter("gvserve_maintenance_coalesced_total", "Updates cancelled or deduplicated by coalescing before any view saw them.", m.maintCoalesced.Load())
	counter("gvserve_maintenance_affected_pairs_total", "Candidate pairs seeded beyond the previous match sets by delta propagation.", m.maintAffected.Load())
	counter("gvserve_maintenance_ns_total", "Cumulative view propagation (refresh) time in nanoseconds.", m.maintPropagateNs.Load())
	if m.store != nil {
		st := m.store.WALStats()
		counter("gvserve_wal_appended_records_total", "Records appended to the write-ahead log.", st.AppendedRecords.Load())
		counter("gvserve_wal_appended_bytes_total", "Framed bytes appended to the write-ahead log.", st.AppendedBytes.Load())
		counter("gvserve_wal_append_errors_total", "WAL appends that failed and were rolled back (the update was rejected with 503).", st.AppendErrors.Load())
		counter("gvserve_wal_fsync_total", "Explicit fsyncs of the write-ahead log.", st.Fsyncs.Load())
		counter("gvserve_wal_truncated_tail_total", "Recoveries that found and cut a torn or corrupted WAL tail.", st.TruncatedTails.Load())
		counter("gvserve_wal_truncated_tail_bytes_total", "Bytes discarded by WAL tail truncation.", st.TruncatedBytes.Load())
		gauge("gvserve_wal_size_bytes", "Current write-ahead log length (compacted to 0 by each checkpoint).", m.store.WALSize())
		writeHist(w, "gvserve_wal_fsync_seconds", "WAL fsync latency histogram.", &m.walFsync)
		gauge("gvserve_recovery_state", "1 while the server is replaying the WAL tail (queries get 503), 0 once ready.", m.recoveryState.Load())
		counter("gvserve_recovery_replayed_records_total", "WAL records replayed by crash recovery.", m.recoveryRecords.Load())
		counter("gvserve_recovery_replayed_updates_total", "Edge updates replayed into the maintained views by crash recovery.", m.recoveryUpdates.Load())
		counter("gvserve_recovery_dropped_updates_total", "Logged updates dropped during replay as out of node range.", m.recoveryDropped.Load())
		gauge("gvserve_recovery_duration_ns", "Wall time of the last WAL replay in nanoseconds.", m.recoveryNs.Load())
		counter("gvserve_checkpoint_total", "Snapshot checkpoints written (each compacts the WAL).", m.checkpoints.Load())
		counter("gvserve_checkpoint_errors_total", "Checkpoint attempts that failed (the previous checkpoint and full WAL remain).", m.checkpointErrors.Load())
		counter("gvserve_checkpoint_ns_total", "Cumulative checkpoint write time in nanoseconds.", m.checkpointNs.Load())
		cs := m.store.CheckpointStats()
		counter("gvserve_checkpoint_shards_written_total", "Shard section files rewritten by checkpoints.", cs.ShardsWritten.Load())
		counter("gvserve_checkpoint_shards_skipped_total", "Clean shard section files carried over unchanged by incremental checkpoints.", cs.ShardsSkipped.Load())
		counter("gvserve_checkpoint_bytes_total", "Bytes written by checkpoints (part files plus manifests).", cs.BytesWritten.Load())
		counter("gvserve_checkpoint_parts_removed_total", "Superseded or orphaned checkpoint part files garbage-collected.", cs.PartsRemoved.Load())
		gauge("gvserve_recovery_remat_skipped", "1 when boot restored view extensions from the checkpoint and skipped rematerialization.", m.recoveryRematSkipped.Load())
		backlog := int64(0)
		if m.walBacklogLimit > 0 {
			if over := m.store.WALSize() - m.walBacklogLimit; over > 0 {
				backlog = over
			}
		}
		gauge("gvserve_wal_backlog_bytes", "Bytes the WAL has grown past the configured high-water mark (0 when healthy or unlimited).", backlog)
	}
}

// writeHist renders one label-less histogram in the exposition format.
func writeHist(w io.Writer, name, help string, h *latencyHist) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	cum := int64(0)
	for i, ub := range latencyBuckets {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{le=\"%g\"} %d\n", name, ub, cum)
	}
	cum += h.counts[len(latencyBuckets)].Load()
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(w, "%s_sum %g\n", name, float64(h.sumNs.Load())/1e9)
	fmt.Fprintf(w, "%s_count %d\n", name, cum)
}
