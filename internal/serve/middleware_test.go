package serve

import (
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
)

// TestAdmissionSheds verifies the bounded-in-flight invariant: with all
// semaphore slots occupied by blocked handlers, further requests are
// shed immediately with 429 + Retry-After instead of queueing, and once
// a slot frees up admission resumes.
func TestAdmissionSheds(t *testing.T) {
	const limit = 3
	m := newMetrics([]string{"/blocked"})
	entered := make(chan struct{}, limit)
	release := make(chan struct{})
	h := withMetrics(withAdmission(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		entered <- struct{}{}
		<-release
		w.WriteHeader(http.StatusOK)
	}), make(chan struct{}, limit), m), m, "/blocked")

	hs := httptest.NewServer(h)
	defer hs.Close()

	// Fill every slot with a request parked inside the handler.
	var wg sync.WaitGroup
	for i := 0; i < limit; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(hs.URL)
			if err != nil {
				t.Error(err)
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("admitted request: status = %d", resp.StatusCode)
			}
		}()
	}
	for i := 0; i < limit; i++ {
		<-entered
	}
	if got := m.InFlight(); got != limit {
		t.Fatalf("InFlight = %d, want %d", got, limit)
	}

	// Every additional request must be shed, not queued.
	for i := 0; i < 5; i++ {
		resp, err := http.Get(hs.URL)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("overload request %d: status = %d, want 429", i, resp.StatusCode)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Fatal("shed response missing Retry-After")
		}
	}
	if got := m.Shed(); got != 5 {
		t.Fatalf("Shed = %d, want 5", got)
	}
	if got := m.RequestCount("/blocked", "429"); got != 5 {
		t.Fatalf("RequestCount 429 = %d, want 5", got)
	}

	// Drain the parked handlers (and unblock any later ones); admission
	// must recover.
	close(release)
	wg.Wait()
	if got := m.InFlight(); got != 0 {
		t.Fatalf("InFlight after drain = %d, want 0", got)
	}
	resp, err := http.Get(hs.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-drain request: status = %d, want 200", resp.StatusCode)
	}
	if got := m.RequestCount("/blocked", "2xx"); got != limit+1 {
		t.Fatalf("RequestCount 2xx = %d, want %d", got, limit+1)
	}
}

// TestAdmissionUnbounded: a nil semaphore admits everything.
func TestAdmissionUnbounded(t *testing.T) {
	m := newMetrics([]string{"/x"})
	h := withAdmission(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}), nil, m)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/x", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if m.Shed() != 0 {
		t.Fatalf("Shed = %d, want 0", m.Shed())
	}
}

// TestLatencyHistogram checks bucket assignment at the boundaries.
func TestLatencyHistogram(t *testing.T) {
	var h latencyHist
	h.observe(100e3) // 0.1 ms → first bucket (≤ 0.5 ms)
	h.observe(3e6)   // 3 ms → ≤ 5 ms bucket
	h.observe(20e9)  // 20 s → +Inf overflow
	if got := h.counts[0].Load(); got != 1 {
		t.Fatalf("bucket 0 = %d, want 1", got)
	}
	if got := h.counts[3].Load(); got != 1 {
		t.Fatalf("bucket ≤5ms = %d, want 1", got)
	}
	if got := h.counts[len(latencyBuckets)].Load(); got != 1 {
		t.Fatalf("+Inf bucket = %d, want 1", got)
	}
	if got := h.total.Load(); got != 3 {
		t.Fatalf("total = %d, want 3", got)
	}
}

// TestStatusClass pins the counter-slot mapping.
func TestStatusClass(t *testing.T) {
	for code, want := range map[int]int{200: 0, 204: 0, 400: 1, 404: 1, 422: 1, 429: 3, 500: 2, 503: 2} {
		if got := statusClass(code); got != want {
			t.Errorf("statusClass(%d) = %d, want %d", code, got, want)
		}
	}
}
