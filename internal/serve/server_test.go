package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	gv "graphviews"
)

// testWorkload builds a tiny two-label workload whose answer size
// changes deterministically per update: view V (and query Q) match the
// A→B edges, so every add/del of an A→B edge moves |Q(G)| by one.
func testWorkload(t *testing.T) (*gv.Graph, *gv.ViewSet, string) {
	t.Helper()
	g := gv.NewGraph()
	for i := 0; i < 4; i++ {
		g.AddNode("A")
	}
	for i := 0; i < 4; i++ {
		g.AddNode("B")
	}
	g.AddEdge(0, 4) // a0 -> b0
	v, err := gv.ParsePattern("pattern V {\n node a: A\n node b: B\n edge a -> b\n}")
	if err != nil {
		t.Fatal(err)
	}
	vs := gv.NewViewSet(gv.Define("V", v))
	q := "pattern Q {\n node a: A\n node b: B\n edge a -> b\n}"
	return g, vs, q
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server, string) {
	t.Helper()
	g, vs, q := testWorkload(t)
	s, err := NewServer(g, vs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	return s, hs, q
}

// postQuery sends a pattern and decodes the response.
func postQuery(t *testing.T, url, body string, want int) *queryResponse {
	t.Helper()
	resp, err := http.Post(url, "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != want {
		t.Fatalf("status = %d, want %d", resp.StatusCode, want)
	}
	if want != http.StatusOK {
		return nil
	}
	var qr queryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	return &qr
}

// TestPublishSwapConsistency is the acceptance stress test of the
// RCU-style snapshot swap: query goroutines hammer /query while a
// writer applies updates and publishes ≥3 fresh snapshots. Every
// response must be internally consistent with exactly one snapshot
// epoch — its (epoch, matched, size, pairs) must equal the answer
// recomputed offline from the retained snapshot of that epoch. Run
// under -race this also proves the read path takes no lock and shares
// no mutable state with the publisher.
func TestPublishSwapConsistency(t *testing.T) {
	s, hs, q := newTestServer(t, Config{Workers: 2})
	qURL := hs.URL + "/query?pairs=1&limit=0"

	// The writer's script: each step changes |Q(G)| by one, so
	// consecutive epochs have pairwise different answers and a torn or
	// mixed read cannot masquerade as a valid one.
	steps := []string{
		"add 1 5", // epoch 2: {a0b0, a1b1}
		"add 2 6", // epoch 3: {a0b0, a1b1, a2b6}
		"del 0 4", // epoch 4: {a1b1, a2b6}
		"add 3 7", // epoch 5: 3 pairs
	}

	snaps := map[uint64]*Snapshot{s.Current().Epoch: s.Current()}
	var snapMu sync.Mutex

	stop := make(chan struct{})
	var writerWG sync.WaitGroup
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		defer close(stop)
		for _, step := range steps {
			resp, err := http.Post(hs.URL+"/update", "text/plain", strings.NewReader(step))
			if err != nil {
				t.Error(err)
				return
			}
			resp.Body.Close()
			snap := s.Publish()
			snapMu.Lock()
			snaps[snap.Epoch] = snap
			snapMu.Unlock()
			time.Sleep(2 * time.Millisecond) // let readers see each epoch
		}
	}()

	type obs struct {
		epoch uint64
		size  int
		pairs string
	}
	const readers = 8
	results := make([][]obs, readers)
	var readerWG sync.WaitGroup
	for r := 0; r < readers; r++ {
		r := r
		readerWG.Add(1)
		go func() {
			defer readerWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				qr := postQuery(t, qURL, q, http.StatusOK)
				results[r] = append(results[r], obs{qr.Epoch, qr.Size, fmt.Sprint(qr.Edges)})
			}
		}()
	}
	writerWG.Wait()
	readerWG.Wait()

	// One more read after the last publish must see the final epoch.
	final := postQuery(t, qURL, q, http.StatusOK)
	if want := s.Current().Epoch; final.Epoch != want {
		t.Fatalf("post-publish read: epoch = %d, want %d", final.Epoch, want)
	}
	if len(snaps) < 4 {
		t.Fatalf("only %d snapshots published, want ≥ 4", len(snaps))
	}

	// Recompute each epoch's ground-truth answer from its retained
	// immutable snapshot and check every observation against it.
	pq, err := gv.ParsePattern(q)
	if err != nil {
		t.Fatal(err)
	}
	expect := map[uint64]obs{}
	for epoch, snap := range snaps {
		res, _, err := gv.Answer(pq, snap.Exts, gv.UseMinimal)
		if err != nil {
			t.Fatalf("epoch %d: %v", epoch, err)
		}
		want := &queryResponse{}
		req := httptest.NewRequest(http.MethodGet, "/?pairs=1&limit=0", nil)
		attachPairs(want, res, req)
		expect[epoch] = obs{epoch, res.Size(), fmt.Sprint(want.Edges)}
	}
	checked := 0
	epochsSeen := map[uint64]bool{}
	for r := range results {
		for _, o := range results[r] {
			want, ok := expect[o.epoch]
			if !ok {
				t.Fatalf("response claims unknown epoch %d", o.epoch)
			}
			if o.size != want.size || o.pairs != want.pairs {
				t.Fatalf("epoch %d: response (size=%d pairs=%s) inconsistent with snapshot (size=%d pairs=%s)",
					o.epoch, o.size, o.pairs, want.size, want.pairs)
			}
			epochsSeen[o.epoch] = true
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no reader observations")
	}
	t.Logf("checked %d responses across %d observed epochs (%d published)", checked, len(epochsSeen), len(snaps))
}

// TestUpdatePublishFlow walks the write path end to end over HTTP:
// updates are invisible until published, ?publish=1 swaps immediately,
// and the snapshot/pending bookkeeping tracks the write clock.
func TestUpdatePublishFlow(t *testing.T) {
	s, hs, q := newTestServer(t, Config{})
	if got := postQuery(t, hs.URL+"/query", q, http.StatusOK); got.Size != 1 || got.Epoch != 1 {
		t.Fatalf("initial answer = size %d epoch %d, want 1/1", got.Size, got.Epoch)
	}

	// Update without publish: the live snapshot must not move.
	resp, err := http.Post(hs.URL+"/update", "text/plain", strings.NewReader("add 1 5\nadd 2 6\n"))
	if err != nil {
		t.Fatal(err)
	}
	var ur updateResponse
	if err := json.NewDecoder(resp.Body).Decode(&ur); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ur.Applied != 2 || ur.Pending != 2 || ur.Epoch != 1 {
		t.Fatalf("update response = %+v, want applied 2 pending 2 epoch 1", ur)
	}
	if got := postQuery(t, hs.URL+"/query", q, http.StatusOK); got.Size != 1 {
		t.Fatalf("unpublished update visible: size = %d, want 1", got.Size)
	}
	if s.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", s.Pending())
	}

	// Publish: the accumulated updates become visible atomically.
	resp, err = http.Post(hs.URL+"/publish", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := postQuery(t, hs.URL+"/query", q, http.StatusOK); got.Size != 3 || got.Epoch != 2 {
		t.Fatalf("after publish: size %d epoch %d, want 3/2", got.Size, got.Epoch)
	}

	// ?publish=1 applies and swaps in one call.
	resp, err = http.Post(hs.URL+"/update?publish=1", "text/plain", strings.NewReader("del 0 4\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := postQuery(t, hs.URL+"/query", q, http.StatusOK); got.Size != 2 || got.Epoch != 3 {
		t.Fatalf("after update?publish=1: size %d epoch %d, want 2/3", got.Size, got.Epoch)
	}
	if s.Pending() != 0 {
		t.Fatalf("Pending = %d, want 0", s.Pending())
	}
}

// TestPublishAfterThreshold exercises the hook-driven publisher: once
// the pending backlog reaches PublishAfter, the background goroutine
// publishes without an explicit /publish.
func TestPublishAfterThreshold(t *testing.T) {
	s, hs, _ := newTestServer(t, Config{PublishAfter: 2})
	resp, err := http.Post(hs.URL+"/update", "text/plain", strings.NewReader("add 1 5\nadd 2 6\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	deadline := time.Now().Add(5 * time.Second)
	for s.Current().Epoch < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("threshold publish did not happen (epoch %d, pending %d)", s.Current().Epoch, s.Pending())
		}
		time.Sleep(time.Millisecond)
	}
	if s.Pending() != 0 {
		t.Fatalf("Pending = %d after auto-publish, want 0", s.Pending())
	}
}

// TestQueryErrors maps the failure modes to their status codes.
func TestQueryErrors(t *testing.T) {
	_, hs, _ := newTestServer(t, Config{})
	// Unparsable pattern.
	postQuery(t, hs.URL+"/query", "pattern {", http.StatusBadRequest)
	// Valid pattern the views cannot answer (label C is not covered).
	postQuery(t, hs.URL+"/query", "pattern Q {\n node c: C\n node b: B\n edge c -> b\n}", http.StatusUnprocessableEntity)
	// Bad strategy.
	postQuery(t, hs.URL+"/query?strategy=fastest", "pattern Q {\n node a: A\n node b: B\n edge a -> b\n}", http.StatusBadRequest)
	// GET is not a query.
	resp, err := http.Get(hs.URL + "/query")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /query = %d, want 405", resp.StatusCode)
	}
	// Malformed and out-of-range updates.
	for _, body := range []string{"frobnicate 1 2", "add 1", "add 0 99"} {
		resp, err := http.Post(hs.URL+"/update", "text/plain", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("update %q = %d, want 400", body, resp.StatusCode)
		}
	}
}

// TestRequestTimeout: a request whose deadline is already gone when the
// engine first checks its context must come back 503, not hang.
func TestRequestTimeout(t *testing.T) {
	_, hs, q := newTestServer(t, Config{RequestTimeout: time.Nanosecond})
	postQuery(t, hs.URL+"/query", q, http.StatusServiceUnavailable)
}

// TestMatchEndpoint spot-checks direct evaluation against the snapshot
// graph, including the dual mode.
func TestMatchEndpoint(t *testing.T) {
	_, hs, q := newTestServer(t, Config{})
	if got := postQuery(t, hs.URL+"/match", q, http.StatusOK); got.Size != 1 {
		t.Fatalf("match size = %d, want 1", got.Size)
	}
	if got := postQuery(t, hs.URL+"/match?mode=dual", q, http.StatusOK); got.Size != 1 {
		t.Fatalf("dual match size = %d, want 1", got.Size)
	}
	postQuery(t, hs.URL+"/match?mode=psychic", q, http.StatusBadRequest)
}

// TestMetricsExposition drives a few requests and checks the Prometheus
// text rendering carries the counters, histogram and gauges.
func TestMetricsExposition(t *testing.T) {
	_, hs, q := newTestServer(t, Config{})
	postQuery(t, hs.URL+"/query", q, http.StatusOK)
	postQuery(t, hs.URL+"/query", "pattern {", http.StatusBadRequest)
	resp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	if _, err := sb.WriteString(readAll(t, resp)); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		`gvserve_requests_total{route="/query",code="2xx"} 1`,
		`gvserve_requests_total{route="/query",code="4xx"} 1`,
		`gvserve_request_duration_seconds_bucket{route="/query",le="+Inf"} 2`,
		"gvserve_snapshot_epoch 1",
		"gvserve_publish_total 1",
		"gvserve_inflight_requests 0",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q in:\n%s", want, text)
		}
	}
}

// TestHealthz checks the liveness probe shape.
func TestHealthz(t *testing.T) {
	_, hs, _ := newTestServer(t, Config{})
	resp, err := http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h struct {
		Status string `json:"status"`
		Epoch  uint64 `json:"epoch"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Epoch != 1 {
		t.Fatalf("healthz = %+v", h)
	}
}

// TestFlushAfterBuffersAndCoalesces: with FlushAfter set, updates park
// in the change feed (applied=0, buffered>0, write clock unmoved),
// cancelling pairs annihilate before any view sees them, and a publish
// drains the backlog so the snapshot still reflects every submitted
// update.
func TestFlushAfterBuffersAndCoalesces(t *testing.T) {
	s, hs, q := newTestServer(t, Config{FlushAfter: 8})

	post := func(body string) updateResponse {
		t.Helper()
		resp, err := http.Post(hs.URL+"/update", "text/plain", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var ur updateResponse
		if err := json.NewDecoder(resp.Body).Decode(&ur); err != nil {
			t.Fatal(err)
		}
		return ur
	}

	// add 1→5 then cancel it: the feed coalesces to an empty net batch.
	ur := post("add 1 5\n")
	if ur.Applied != 0 || ur.Buffered != 1 || ur.Version != 0 || ur.Pending != 1 {
		t.Fatalf("buffered add = %+v, want applied 0 buffered 1 version 0 pending 1", ur)
	}
	ur = post("del 1 5\n")
	if ur.Applied != 0 || ur.Buffered != 1 {
		t.Fatalf("cancel still keyed = %+v, want applied 0 buffered 1", ur)
	}
	if s.maint.Stats.Batches != 0 {
		t.Fatalf("views refreshed while buffering: %d batches", s.maint.Stats.Batches)
	}

	// A real update plus the cancelled one: publish flushes the feed
	// first, so the snapshot picks up exactly the net add 2→6.
	post("add 2 6\n")
	snap := s.Publish()
	if snap.Version != 1 {
		t.Fatalf("snapshot version = %d, want 1 (net adds only)", snap.Version)
	}
	if got := postQuery(t, hs.URL+"/query", q, http.StatusOK); got.Size != 2 {
		t.Fatalf("post-flush answer size = %d, want 2", got.Size)
	}
	if s.Pending() != 0 {
		t.Fatalf("Pending = %d after publish, want 0", s.Pending())
	}
	if s.maint.Stats.CoalescedAway == 0 {
		t.Fatal("coalescing should have cancelled the add/del pair")
	}
}

// TestFlushAfterThresholdFlushes: the backlog crossing FlushAfter
// triggers the flush inside ApplyUpdates itself.
func TestFlushAfterThresholdFlushes(t *testing.T) {
	s, _, _ := newTestServer(t, Config{FlushAfter: 2})
	applied, _, _ := s.ApplyUpdates([]gv.EdgeUpdate{{From: 1, To: 5}})
	if applied != 0 || s.feed.Backlog() != 1 {
		t.Fatalf("below threshold: applied %d backlog %d", applied, s.feed.Backlog())
	}
	applied, version, _ := s.ApplyUpdates([]gv.EdgeUpdate{{From: 2, To: 6}})
	if applied != 2 || version != 2 || s.feed.Backlog() != 0 {
		t.Fatalf("at threshold: applied %d version %d backlog %d, want 2/2/0", applied, version, s.feed.Backlog())
	}
}

// TestPublishAfterCountsBufferedDeltas: threshold publishing must fire
// on buffered (unflushed) deltas too — otherwise a large FlushAfter
// would starve PublishAfter.
func TestPublishAfterCountsBufferedDeltas(t *testing.T) {
	s, hs, _ := newTestServer(t, Config{PublishAfter: 2, FlushAfter: 100})
	resp, err := http.Post(hs.URL+"/update", "text/plain", strings.NewReader("add 1 5\nadd 2 6\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	deadline := time.Now().Add(5 * time.Second)
	for s.Current().Epoch < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("threshold publish did not happen (epoch %d, pending %d)", s.Current().Epoch, s.Pending())
		}
		time.Sleep(time.Millisecond)
	}
	if s.Current().Version != 2 {
		t.Fatalf("auto-published snapshot version = %d, want 2", s.Current().Version)
	}
}

// TestMaintenanceMetricsExposition drives updates through both
// maintenance modes and checks the gvserve_maintenance_* series.
func TestMaintenanceMetricsExposition(t *testing.T) {
	for _, mode := range []struct {
		name  string
		remat bool
		want  string
	}{
		{"delta", false, "gvserve_maintenance_delta_total 1"},
		{"remat", true, "gvserve_maintenance_recompute_total 1"},
	} {
		t.Run(mode.name, func(t *testing.T) {
			_, hs, _ := newTestServer(t, Config{Rematerialize: mode.remat})
			resp, err := http.Post(hs.URL+"/update", "text/plain", strings.NewReader("add 1 5\n"))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			resp, err = http.Get(hs.URL + "/metrics")
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			text := readAll(t, resp)
			for _, want := range []string{
				mode.want,
				"gvserve_maintenance_batches_total 1",
				"gvserve_feed_backlog 0",
				"gvserve_maintenance_coalesced_total 0",
			} {
				if !strings.Contains(text, want) {
					t.Fatalf("metrics missing %q in:\n%s", want, text)
				}
			}
		})
	}
}

// readAll drains a response body as a string.
func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			return sb.String()
		}
	}
}
