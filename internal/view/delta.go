package view

// The change-feed stage between graph updates and per-view refresh:
// Coalesce collapses an update stream to its net effect per edge, and
// Feed buffers submitted updates so a serving layer can batch many
// small writes into one propagation pass (ROADMAP "Streaming
// maintenance at write-heavy scale"). internal/serve owns a Feed per
// server and flushes it on snapshot publish or when the coalesced
// backlog crosses its threshold.

import "sync"

// Coalesce reduces an update stream to at most one operation per edge:
// later operations on the same (From,To) pair overwrite earlier ones in
// place (the net slot keeps the first occurrence's position), so an
// insert followed by a delete of the same edge cancels to a single
// no-op-or-delete and duplicate inserts dedup. dropped counts the
// overwritten operations. The net batch leaves any graph in the same
// final state as the original stream; only intermediate states (which
// maintenance never observes) differ.
func Coalesce(updates []EdgeUpdate) (net []EdgeUpdate, dropped int) {
	if len(updates) < 2 {
		return updates, 0
	}
	type edgeKey struct{ from, to uint32 }
	idx := make(map[edgeKey]int, len(updates))
	net = make([]EdgeUpdate, 0, len(updates))
	for _, up := range updates {
		k := edgeKey{uint32(up.From), uint32(up.To)}
		if j, ok := idx[k]; ok {
			net[j].Delete = up.Delete
			dropped++
			continue
		}
		idx[k] = len(net)
		net = append(net, up)
	}
	return net, dropped
}

// Feed buffers edge updates ahead of a Maintained, coalescing as they
// arrive, so propagation cost is paid per flush rather than per write.
// Submit and Backlog are safe for concurrent use; Flush applies the
// buffered batch to the Maintained and must be serialized with every
// other writer of it (internal/serve calls all three under its server
// mutex anyway).
type Feed struct {
	m *Maintained

	mu      sync.Mutex
	pending []EdgeUpdate      // guarded by mu
	index   map[[2]uint32]int // guarded by mu
	dropped int               // guarded by mu
}

// NewFeed returns an empty feed in front of m.
func NewFeed(m *Maintained) *Feed {
	return &Feed{m: m, index: make(map[[2]uint32]int)}
}

// Submit coalesces updates into the pending batch and returns the
// backlog (net pending operations) after them.
func (f *Feed) Submit(updates ...EdgeUpdate) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, up := range updates {
		k := [2]uint32{uint32(up.From), uint32(up.To)}
		if j, ok := f.index[k]; ok {
			f.pending[j].Delete = up.Delete
			f.dropped++
			continue
		}
		f.index[k] = len(f.pending)
		f.pending = append(f.pending, up)
	}
	return len(f.pending)
}

// Backlog reports the number of net pending operations.
func (f *Feed) Backlog() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.pending)
}

// Flush applies the pending batch to the Maintained in one propagation
// pass and resets the buffer, returning the number of updates that
// changed the graph. The buffered operations are already net-per-edge,
// so they go straight to the apply path; the overwrites Submit absorbed
// are credited to MaintStats.CoalescedAway here.
func (f *Feed) Flush() int {
	f.mu.Lock()
	net := f.pending
	dropped := f.dropped
	f.pending = nil
	f.dropped = 0
	clear(f.index)
	f.mu.Unlock()
	if dropped > 0 {
		f.m.Stats.CoalescedAway += dropped
	}
	if len(net) == 0 {
		return 0
	}
	return f.m.applyNet(net)
}
