package view

// Incremental maintenance of materialized view extensions under unit edge
// updates. Section I of the paper motivates cached pattern views with
// "incremental methods are already in place to efficiently maintain cached
// pattern views (e.g., [15])" — this file supplies that substrate.
//
// Strategy (correctness first, with the standard asymmetry of simulation
// maintenance):
//
//   - Edge deletion can only shrink match sets, so the old match relation
//     is a valid superset: refinement is re-run seeded from the previous
//     sim sets (SimulateSeeded), touching only the affected region rather
//     than re-scanning the label index.
//   - Edge insertion can only grow match sets. For plain views an inserted
//     edge whose endpoints cannot satisfy any pattern edge's endpoint
//     conditions provably cannot change the extension (simulation only
//     inspects edges between candidate sets), so it is a no-op; otherwise
//     the view is rematerialized. Bounded views rematerialize on every
//     relevant insertion since a single edge can create new short paths
//     between unrelated labels; the same endpoint test is still applied to
//     the reachability-irrelevant case of graphs whose labels cannot occur
//     on any connecting path — which cannot be decided locally — so
//     bounded views always take the slow path.
//
// Equivalence with full rematerialization is enforced by randomized tests.

import (
	"context"

	"graphviews/internal/graph"
	"graphviews/internal/par"
	"graphviews/internal/pattern"
	"graphviews/internal/simulation"
)

// Maintained couples a mutable data graph with materialized extensions
// that are kept in sync through InsertEdge/DeleteEdge.
type Maintained struct {
	G *graph.Graph
	X *Extensions

	// Recomputes counts how many view extensions were fully rematerialized
	// (insertions without a fast path); exposed for tests and stats.
	Recomputes int
	// Skips counts fast-path no-ops.
	Skips int

	// workers bounds the per-view refresh parallelism (1 = sequential).
	// Graph mutation always happens before the fan-out, so workers only
	// ever read the graph concurrently.
	workers int
}

// NewMaintained materializes s over g and starts tracking updates.
func NewMaintained(g *graph.Graph, s *Set) *Maintained {
	m, _ := NewMaintainedWith(context.Background(), g, s, 1)
	return m
}

// NewMaintainedWith is NewMaintained with a worker pool: both the initial
// materialization and every per-view refresh under updates fan out over
// up to workers goroutines. ctx bounds only the initial materialization;
// later refreshes always run to completion so the extensions never fall
// out of sync with the already-mutated graph.
func NewMaintainedWith(ctx context.Context, g *graph.Graph, s *Set, workers int) (*Maintained, error) {
	x, err := MaterializeWith(ctx, g, s, workers)
	if err != nil {
		return nil, err
	}
	return &Maintained{G: g, X: x, workers: workers}, nil
}

// SetParallelism changes the refresh worker bound (<= 0 means GOMAXPROCS).
func (m *Maintained) SetParallelism(workers int) { m.workers = workers }

// viewOutcome is the bookkeeping result of refreshing one extension.
type viewOutcome int8

const (
	outcomeNone viewOutcome = iota // refreshed by seeded refinement
	outcomeSkip
	outcomeRecompute
)

// refresh runs fn for every extension index over the worker pool and then
// folds the outcomes into the Skips/Recomputes counters (sequentially, so
// the exported counters stay plain ints).
func (m *Maintained) refresh(fn func(i int) viewOutcome) {
	outcomes := make([]viewOutcome, len(m.X.Exts))
	par.ForEach(context.Background(), m.workers, len(m.X.Exts), func(i int) {
		outcomes[i] = fn(i)
	})
	for _, o := range outcomes {
		switch o {
		case outcomeSkip:
			m.Skips++
		case outcomeRecompute:
			m.Recomputes++
		}
	}
}

// InsertEdge adds (u,v) to the graph and updates every extension.
// It reports whether the edge was new.
func (m *Maintained) InsertEdge(u, v graph.NodeID) bool {
	if !m.G.AddEdge(u, v) {
		return false
	}
	m.refresh(func(i int) viewOutcome {
		ext := m.X.Exts[i]
		p := ext.Def.Pattern
		if p.IsPlain() && !insertionRelevant(m.G, p, u, v) {
			return outcomeSkip
		}
		m.X.Exts[i] = &Extension{Def: ext.Def, Result: simulation.Simulate(m.G, p)}
		return outcomeRecompute
	})
	return true
}

// DeleteEdge removes (u,v) from the graph and updates every extension by
// seeded refinement. It reports whether the edge existed.
func (m *Maintained) DeleteEdge(u, v graph.NodeID) bool {
	if !m.G.RemoveEdge(u, v) {
		return false
	}
	m.refresh(func(i int) viewOutcome {
		ext := m.X.Exts[i]
		p := ext.Def.Pattern
		old := ext.Result
		if !old.Matched {
			// The view had no match; deletions cannot create one.
			return outcomeSkip
		}
		if p.IsPlain() && !insertionRelevant(m.G, p, u, v) {
			// Deleting an edge no pattern edge could ever map to leaves a
			// plain extension untouched.
			return outcomeSkip
		}
		var res *simulation.Result
		if p.IsPlain() {
			res = simulation.SimulateSeeded(m.G, p, old.Sim)
		} else {
			res = simulation.SimulateBoundedSeeded(m.G, p, old.Sim)
		}
		m.X.Exts[i] = &Extension{Def: ext.Def, Result: res}
		return outcomeNone
	})
	return true
}

// EdgeUpdate is one element of a batch update stream.
type EdgeUpdate struct {
	From, To graph.NodeID
	Delete   bool
}

// ApplyBatch applies a stream of updates with one maintenance pass per
// view instead of one per update: all graph mutations are applied first,
// then each affected extension is refreshed once. Deletion-only batches
// refresh by seeded refinement; batches containing relevant insertions
// rematerialize the affected views. It returns the number of updates that
// changed the graph.
func (m *Maintained) ApplyBatch(updates []EdgeUpdate) int {
	applied := 0
	anyInsert := false
	for _, up := range updates {
		if up.Delete {
			if m.G.RemoveEdge(up.From, up.To) {
				applied++
			}
		} else if m.G.AddEdge(up.From, up.To) {
			applied++
			anyInsert = true
		}
	}
	if applied == 0 {
		return 0
	}
	m.refresh(func(i int) viewOutcome {
		ext := m.X.Exts[i]
		p := ext.Def.Pattern
		relevant := false
		for _, up := range updates {
			if !p.IsPlain() || insertionRelevant(m.G, p, up.From, up.To) {
				relevant = true
				break
			}
		}
		if !relevant {
			return outcomeSkip
		}
		switch {
		case !anyInsert && ext.Result.Matched:
			// Pure deletions: previous sim sets are valid supersets.
			var res *simulation.Result
			if p.IsPlain() {
				res = simulation.SimulateSeeded(m.G, p, ext.Result.Sim)
			} else {
				res = simulation.SimulateBoundedSeeded(m.G, p, ext.Result.Sim)
			}
			m.X.Exts[i] = &Extension{Def: ext.Def, Result: res}
			return outcomeNone
		case !anyInsert && !ext.Result.Matched:
			return outcomeSkip // deletions cannot create a match
		default:
			m.X.Exts[i] = &Extension{Def: ext.Def, Result: simulation.Simulate(m.G, p)}
			return outcomeRecompute
		}
	})
	return applied
}

// insertionRelevant reports whether the edge (u,v) can possibly serve as a
// match of some pattern edge of a plain view: its endpoints must satisfy
// the endpoint conditions of at least one pattern edge.
func insertionRelevant(g *graph.Graph, p *pattern.Pattern, u, v graph.NodeID) bool {
	compiled := make([]pattern.CompiledNode, len(p.Nodes))
	for i := range p.Nodes {
		compiled[i] = pattern.CompileNode(&p.Nodes[i], g)
	}
	for _, e := range p.Edges {
		if compiled[e.From].Matches(g, u) && compiled[e.To].Matches(g, v) {
			return true
		}
	}
	return false
}
