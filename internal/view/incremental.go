package view

// Incremental maintenance of materialized view extensions under edge
// updates. Section I of the paper motivates cached pattern views with
// "incremental methods are already in place to efficiently maintain cached
// pattern views (e.g., [15])" — this file supplies that substrate as a
// delta-propagation pipeline:
//
//	update stream → coalesce → per-view relevance → affected-area
//	propagation → commit/publish
//
// Every entry point (unit inserts and deletes, batches, the change feed
// in delta.go) funnels into one apply path, applyNet, so the correctness
// argument lives in exactly one place:
//
//   - Edge deletion can only shrink match sets, so the old match relation
//     is a valid superset: refinement is re-run seeded from the previous
//     sim sets (SimulateSeeded/SimulateBoundedSeeded), touching only the
//     affected region rather than re-scanning the label index.
//   - Edge insertion can only grow match sets, and the growth is confined
//     to the affected area: nodes with a path (of bounded length, see
//     affected.go) to an inserted edge's source. Propagation seeds the
//     refinement fixpoint from the previous sim sets plus only the
//     affected candidates — the insertion-side dual of the deletion seed —
//     instead of rematerializing the view. Bounded views additionally
//     reuse their recorded distance index: under insert-only batches only
//     affected sources are re-walked (simulation.SimulateBoundedGrow).
//   - Relevance is decided per view before any propagation runs: plain
//     views test the updated edge's endpoints against the pattern's edge
//     conditions; bounded views run the distance-aware ball test of
//     affected.go (an inserted or deleted edge too far from any
//     condition-matching nodes to sit on a within-bound path is a no-op).
//
// Equivalence with full rematerialization is enforced by randomized tests.

import (
	"context"
	"sync/atomic"
	"time"

	"graphviews/internal/graph"
	"graphviews/internal/par"
	"graphviews/internal/pattern"
	"graphviews/internal/simulation"
)

// MaintStats counts what incremental maintenance did, cumulatively since
// construction. The counters are written by the updating goroutine only
// (writers are externally serialized, like all Maintained mutation) and
// are the source of the gvserve_maintenance_* metrics.
type MaintStats struct {
	// Recomputes counts view extensions rebuilt by full simulation — the
	// slow path, taken only when a relevant insertion hits a view with no
	// previous match to grow from (or under SetForceRematerialize).
	Recomputes int
	// DeltaProps counts view extensions refreshed by delta propagation:
	// refinement seeded from the previous sim sets (deletions) or from
	// the previous sets plus the affected candidates (insertions).
	DeltaProps int
	// Skips counts per-view fast-path no-ops: the batch was provably
	// irrelevant to the view, so its extension was left untouched.
	Skips int
	// CoalescedAway counts unit updates cancelled before propagation:
	// duplicate operations on one edge within a batch collapse to the
	// last one (insert+delete of the same edge cancels).
	CoalescedAway int
	// AffectedPairs counts (pattern node, graph node) candidate pairs
	// seeded beyond the previous sim sets across all insertion
	// propagations — the size of the grow frontier the delta path
	// actually touched.
	AffectedPairs int
	// Batches counts committed update operations (a unit insert or
	// delete counts as one batch).
	Batches int
	// Updates counts effective (graph-changing, post-coalescing) edge
	// updates across all batches.
	Updates int
	// PropagateNs is the cumulative wall-clock time spent refreshing
	// extensions, in nanoseconds.
	PropagateNs int64
}

// Maintained couples a mutable data graph with materialized extensions
// that are kept in sync through InsertEdge/DeleteEdge/ApplyBatch.
// Maintenance is the one pipeline stage that writes to the graph, so
// Maintained is deliberately pinned to *graph.Graph rather than the
// read-only graph.Reader the evaluation engines accept.
type Maintained struct {
	G *graph.Graph
	X *Extensions

	// Stats accumulates maintenance counters; see MaintStats.
	Stats MaintStats

	// workers bounds the per-view refresh parallelism (1 = sequential).
	// Graph mutation always happens before the fan-out, so workers only
	// ever read the graph concurrently.
	workers int

	// forceRemat switches propagation to the rematerialize baseline
	// (see SetForceRematerialize).
	forceRemat bool

	// info caches per-view propagation metadata (compiled node
	// conditions, bounds, affected-area radius); built lazily since
	// tests construct Maintained literals. Node conditions read labels
	// and attributes only, so the cache stays valid under edge updates.
	info []*maintInfo

	// version counts effective updates (graph-changing unit updates and
	// batch elements) committed through this Maintained. It is bumped
	// after the extensions have been refreshed, so a reader that observes
	// version n is guaranteed extensions consistent with the first n
	// updates. Atomic so monitoring goroutines may read it while a writer
	// mutates; writers themselves must still be externally serialized.
	version atomic.Uint64

	// publishHook, when set, runs after every committed update batch with
	// the new version (see SetPublishHook).
	publishHook func(version uint64)
}

// maintInfo is the per-view metadata the delta path needs on every
// batch, computed once per view.
type maintInfo struct {
	p        *pattern.Pattern
	compiled []pattern.CompiledNode
	plain    bool
	// hasStar: the pattern has an Unbounded edge, so no local distance
	// test can bound its reach — every effective update is relevant and
	// the affected area is the full ancestor set.
	hasStar bool
	// maxBound is the largest finite edge bound (1 for plain patterns);
	// the relevance ball radius is maxBound-1.
	maxBound int
	// radius bounds the affected area of an insertion for this view:
	// the longest weighted directed path in the pattern (see
	// affectedRadius); -1 means unbounded (cyclic pattern or * edge).
	radius int64
}

// Version reports the number of effective updates committed so far: the
// monotone write clock of this Maintained. Snapshot-publishing layers
// record it at publish time and derive the pending-write backlog as
// Version() - published. Safe to call concurrently with a writer.
func (m *Maintained) Version() uint64 { return m.version.Load() }

// SetPublishHook registers fn to run after every update operation that
// changed the graph, once the extensions have been refreshed, with the
// new Version as argument. It is the snapshot-publish trigger of a
// serving layer: the hook decides whether the accumulated writes
// warrant publishing a fresh immutable snapshot (internal/serve kicks
// its publisher goroutine from here). The hook runs on the updating
// goroutine with the update fully applied — it must not re-enter the
// Maintained, and it should hand long work to another goroutine.
// Passing nil removes the hook. Not safe to call concurrently with
// updates.
func (m *Maintained) SetPublishHook(fn func(version uint64)) { m.publishHook = fn }

// SetForceRematerialize switches propagation between the delta path
// (default) and the rematerialize baseline: when on, every relevant view
// is rebuilt by full simulation, exactly what maintenance did before
// delta propagation existed. The per-view relevance fast paths still
// apply. It exists so benchmarks (gvload -maint remat) can measure the
// delta path against its predecessor on identical update streams.
func (m *Maintained) SetForceRematerialize(on bool) { m.forceRemat = on }

// commit bumps the write clock by n effective updates and fires the
// publish hook. Called once per update operation, after refresh.
func (m *Maintained) commit(n int) {
	if n <= 0 {
		return
	}
	v := m.version.Add(uint64(n))
	if m.publishHook != nil {
		m.publishHook(v)
	}
}

// SnapshotExtensions returns an immutable snapshot of the current
// extensions: the Set and a copy of the extension list. It relies on the
// maintenance invariant that refreshes replace m.X.Exts[i] with a fresh
// *Extension and never mutate a published Extension or its Result in
// place, so the shallow copy shares the (now-frozen) per-view results
// without copying match sets. Callers must serialize with updates — call
// it under the same lock that orders InsertEdge/DeleteEdge/ApplyBatch;
// the returned value is then safe for unsynchronized concurrent reads
// forever (the RCU publish path of internal/serve).
func (m *Maintained) SnapshotExtensions() *Extensions {
	return &Extensions{Set: m.X.Set, Exts: append([]*Extension(nil), m.X.Exts...)}
}

// NewMaintained materializes s over g and starts tracking updates.
func NewMaintained(g *graph.Graph, s *Set) *Maintained {
	m, _ := NewMaintainedWith(context.Background(), g, s, 1)
	return m
}

// NewMaintainedWith is NewMaintained with a worker pool: both the initial
// materialization and every per-view refresh under updates fan out over
// up to workers goroutines. ctx bounds only the initial materialization;
// later refreshes always run to completion so the extensions never fall
// out of sync with the already-mutated graph.
func NewMaintainedWith(ctx context.Context, g *graph.Graph, s *Set, workers int) (*Maintained, error) {
	x, err := MaterializeWith(ctx, g, s, workers)
	if err != nil {
		return nil, err
	}
	return &Maintained{G: g, X: x, workers: workers}, nil
}

// NewMaintainedFromExtensions couples g with extensions that were
// materialized earlier — typically thawed from a durable checkpoint
// together with the graph — and starts tracking updates without
// re-running the initial materialization. The caller must guarantee x
// is exactly Materialize(g, x.Set): the store's checkpoint protocol
// provides this (graph and extensions are committed under one write
// clock), and replaying a WAL tail on top goes through the ordinary
// delta-propagation path.
func NewMaintainedFromExtensions(g *graph.Graph, x *Extensions, workers int) *Maintained {
	return &Maintained{G: g, X: x, workers: workers}
}

// SetParallelism changes the refresh worker bound (<= 0 means GOMAXPROCS).
func (m *Maintained) SetParallelism(workers int) { m.workers = workers }

// ensureInfo builds the per-view metadata cache on first use.
func (m *Maintained) ensureInfo() {
	if m.info != nil {
		return
	}
	m.info = make([]*maintInfo, len(m.X.Exts))
	for i, ext := range m.X.Exts {
		p := ext.Def.Pattern
		mi := &maintInfo{
			p:        p,
			compiled: compileNodes(m.G, p),
			plain:    p.IsPlain(),
			maxBound: 1,
			radius:   affectedRadius(p),
		}
		for _, e := range p.Edges {
			if e.Bound == pattern.Unbounded {
				mi.hasStar = true
			} else if int(e.Bound) > mi.maxBound {
				mi.maxBound = int(e.Bound)
			}
		}
		m.info[i] = mi
	}
}

// viewOutcome is the bookkeeping result of refreshing one extension.
type viewOutcome struct {
	kind viewOutcomeKind
	// added is the number of candidate pairs seeded beyond the previous
	// sim sets (insertion propagations only).
	added int
}

type viewOutcomeKind int8

const (
	outcomeSkip viewOutcomeKind = iota
	outcomeDelta
	outcomeRecompute
)

// refresh runs fn for every extension index over the worker pool and then
// folds the outcomes into Stats (sequentially, so the exported counters
// stay plain ints). It returns par.ForEach's error rather than discarding
// it: by the time refresh runs the graph has already been mutated, so an
// aborted fan-out would leave extensions stale and must not pass
// silently. Refreshes deliberately run under context.Background() — they
// must complete once the graph has changed — so today the error is
// provably nil (ForEach only returns ctx.Err(); panics in fn propagate);
// mustRefresh asserts that invariant for the update entry points until a
// cancellable refresh with re-sync semantics exists.
func (m *Maintained) refresh(fn func(i int) viewOutcome) error {
	outcomes := make([]viewOutcome, len(m.X.Exts))
	if err := par.ForEach(context.Background(), m.workers, len(m.X.Exts), func(i int) {
		outcomes[i] = fn(i)
	}); err != nil {
		return err
	}
	for _, o := range outcomes {
		switch o.kind {
		case outcomeSkip:
			m.Stats.Skips++
		case outcomeDelta:
			m.Stats.DeltaProps++
		case outcomeRecompute:
			m.Stats.Recomputes++
		}
		m.Stats.AffectedPairs += o.added
	}
	return nil
}

// mustRefresh runs refresh and asserts the Background-context invariant:
// a non-nil error here means extensions silently diverged from the graph,
// which is corruption, not a recoverable condition.
func (m *Maintained) mustRefresh(fn func(i int) viewOutcome) {
	if err := m.refresh(fn); err != nil {
		panic("view: maintenance refresh aborted with graph already mutated: " + err.Error())
	}
}

// InsertEdge adds (u,v) to the graph and updates every extension by
// delta propagation. It reports whether the edge was new. Insertion
// relevance is evaluated against the post-insertion graph — the graph in
// which the new edge exists — which is the state a candidate match of it
// would live in.
func (m *Maintained) InsertEdge(u, v graph.NodeID) bool {
	return m.applyNet([]EdgeUpdate{{From: u, To: v}}) == 1
}

// DeleteEdge removes (u,v) from the graph and updates every extension by
// seeded refinement. It reports whether the edge existed. The skip test
// asks whether the removed edge could have participated in a match, so
// it is decided against the pre-deletion graph — the only state in which
// the edge ever matched anything.
func (m *Maintained) DeleteEdge(u, v graph.NodeID) bool {
	return m.applyNet([]EdgeUpdate{{From: u, To: v, Delete: true}}) == 1
}

// EdgeUpdate is one element of a batch update stream.
type EdgeUpdate struct {
	From, To graph.NodeID
	Delete   bool
}

// ApplyBatch coalesces a stream of updates (see Coalesce) and applies
// the net batch with one maintenance pass per view instead of one per
// update: all graph mutations are applied first, then each affected
// extension is refreshed once. It returns the number of net updates that
// changed the graph — opposing operations on one edge cancel before they
// are counted, so the return value can be smaller than the number of
// graph transitions the uncoalesced stream would have performed (the
// final graph and extensions are identical either way).
//
// Relevance is decided per update at the moment it is applied — for a
// deletion against the graph still holding the edge, for an insertion
// against the graph with the edge just added — never against the fully
// mutated batch-end graph, whose state says nothing about whether an
// already-removed edge could once have matched. Updates that do not
// change the graph (re-inserting a present edge, deleting an absent one)
// cannot affect any extension and are ignored by the relevance test.
func (m *Maintained) ApplyBatch(updates []EdgeUpdate) int {
	net, dropped := Coalesce(updates)
	m.Stats.CoalescedAway += dropped
	return m.applyNet(net)
}

// applyNet is the single apply path under every entry point: mutate the
// graph while tracking per-view relevance, compute the affected area of
// the inserted edges, propagate per view over the worker pool, commit.
// net must already be coalesced (at most one operation per edge).
func (m *Maintained) applyNet(net []EdgeUpdate) int {
	if len(net) == 0 {
		return 0
	}
	m.ensureInfo()
	rs := m.newRelevance()
	applied := 0
	anyDelete := false
	var insertSrcs []graph.NodeID
	for _, up := range net {
		if up.Delete {
			if !m.G.HasEdge(up.From, up.To) {
				continue
			}
			m.markRelevant(rs, up.From, up.To) // pre-deletion state
			m.G.RemoveEdge(up.From, up.To)
			applied++
			anyDelete = true
		} else if m.G.AddEdge(up.From, up.To) {
			applied++
			insertSrcs = appendUnique(insertSrcs, up.From)
			m.markRelevant(rs, up.From, up.To) // post-insertion state
		}
	}
	if applied == 0 {
		return 0
	}

	// The affected area is shared by every view's grow seed; its BFS
	// depth is the largest radius any relevant matched view needs (per
	// the lockstep argument in affected.go, a view never needs to look
	// farther back than its own pattern's longest weighted path).
	var aff *affectedArea
	if len(insertSrcs) > 0 {
		radius := int64(0)
		for i, mi := range m.info {
			if !rs.relevant[i] || !m.X.Exts[i].Result.Matched {
				continue
			}
			if mi.radius < 0 {
				radius = -1
				break
			}
			if mi.radius > radius {
				radius = mi.radius
			}
		}
		aff = m.computeAffected(insertSrcs, radius)
	}

	start := time.Now()
	m.mustRefresh(func(i int) viewOutcome {
		return m.propagate(i, rs.relevant[i], aff, anyDelete)
	})
	m.Stats.PropagateNs += time.Since(start).Nanoseconds()
	m.Stats.Batches++
	m.Stats.Updates += applied
	m.commit(applied)
	return applied
}

// propagate refreshes one extension after a batch whose inserted-edge
// affected area is aff (nil for deletion-only batches). It never mutates
// a published Extension: refreshed slots get a fresh *Extension.
func (m *Maintained) propagate(i int, relevant bool, aff *affectedArea, anyDelete bool) viewOutcome {
	ext := m.X.Exts[i]
	mi := m.info[i]
	p := ext.Def.Pattern
	old := ext.Result
	if !relevant {
		return viewOutcome{kind: outcomeSkip}
	}
	if aff == nil {
		// Deletion-only: match sets can only shrink.
		if !old.Matched {
			return viewOutcome{kind: outcomeSkip}
		}
		if m.forceRemat {
			m.X.Exts[i] = &Extension{Def: ext.Def, Result: simulation.Simulate(m.G, p)}
			return viewOutcome{kind: outcomeRecompute}
		}
		var res *simulation.Result
		if mi.plain {
			res = simulation.SimulateSeeded(m.G, p, old.Sim)
		} else {
			res = simulation.SimulateBoundedSeeded(m.G, p, old.Sim)
		}
		m.X.Exts[i] = &Extension{Def: ext.Def, Result: res}
		return viewOutcome{kind: outcomeDelta}
	}
	if m.forceRemat || !old.Matched {
		// No previous sim sets to grow from (an unmatched result stores
		// empty ones): full simulation is the only sound move.
		m.X.Exts[i] = &Extension{Def: ext.Def, Result: simulation.Simulate(m.G, p)}
		return viewOutcome{kind: outcomeRecompute}
	}
	seeds, added := growSeeds(m.G, p, mi, old, aff)
	var res *simulation.Result
	switch {
	case mi.plain:
		res = simulation.SimulateSeeded(m.G, p, seeds)
	case anyDelete:
		// Deletions can lengthen shortest paths anywhere, so the recorded
		// distance index cannot be patched locally: refine from the grow
		// seeds, then re-enumerate in full.
		res = simulation.SimulateBoundedSeeded(m.G, p, seeds)
	default:
		// Insert-only: distances only shorten, and only for affected
		// sources — reuse the recorded index for everything else.
		res = simulation.SimulateBoundedGrow(m.G, p, seeds, old, aff.within(m.G.NumNodes(), mi.radius))
	}
	m.X.Exts[i] = &Extension{Def: ext.Def, Result: res}
	return viewOutcome{kind: outcomeDelta, added: added}
}

// growSeeds builds the insertion-side refinement seeds for one view:
// the previous sim sets plus every affected candidate within the view's
// radius. The result is sorted and duplicate-free per pattern node (the
// SimulateSeeded contract); added counts the pairs beyond the previous
// sets. Sound because any node newly entering sim must have a lockstep
// path to an inserted source (see affected.go), so seeding old ∪
// (affected ∩ candidates) covers the greatest fixpoint, and refinement
// from any superset of it converges to exactly the true match sets.
func growSeeds(g *graph.Graph, p *pattern.Pattern, mi *maintInfo, old *simulation.Result, aff *affectedArea) (seeds [][]graph.NodeID, added int) {
	seeds = make([][]graph.NodeID, len(p.Nodes))
	for u := range p.Nodes {
		cn := &mi.compiled[u]
		needOut := mi.plain && len(p.OutEdges(u)) > 0
		oldSim := old.Sim[u]
		merged := make([]graph.NodeID, 0, len(oldSim)+8)
		j := 0
		for _, v := range aff.nodes { // ascending
			for j < len(oldSim) && oldSim[j] < v {
				merged = append(merged, oldSim[j])
				j++
			}
			if j < len(oldSim) && oldSim[j] == v {
				merged = append(merged, v)
				j++
				continue
			}
			if mi.radius >= 0 && int64(aff.depth[v]) > mi.radius {
				continue
			}
			if needOut && g.OutDegree(v) == 0 {
				continue
			}
			if cn.Matches(g, v) {
				merged = append(merged, v)
				added++
			}
		}
		merged = append(merged, oldSim[j:]...)
		seeds[u] = merged
	}
	return seeds, added
}

// edgeRelevant reports whether the edge (u,v) can possibly serve as a
// match of some pattern edge of a plain view: its endpoints must satisfy
// the endpoint conditions of at least one pattern edge. The conditions
// inspect only node labels and attributes, so g must be a graph state in
// which the edge is (or was) present: post-insertion for inserts,
// pre-deletion for deletes.
func edgeRelevant(g graph.Reader, p *pattern.Pattern, u, v graph.NodeID) bool {
	return edgeRelevantCompiled(g, p, compileNodes(g, p), u, v)
}

// compileNodes resolves every pattern node condition against g. The
// result stays valid under edge insertions and deletions (conditions
// read node labels and attributes only).
func compileNodes(g graph.Reader, p *pattern.Pattern) []pattern.CompiledNode {
	compiled := make([]pattern.CompiledNode, len(p.Nodes))
	for i := range p.Nodes {
		compiled[i] = pattern.CompileNode(&p.Nodes[i], g)
	}
	return compiled
}

// edgeRelevantCompiled is edgeRelevant over pre-compiled conditions.
func edgeRelevantCompiled(g graph.Reader, p *pattern.Pattern, compiled []pattern.CompiledNode, u, v graph.NodeID) bool {
	for _, e := range p.Edges {
		if compiled[e.From].Matches(g, u) && compiled[e.To].Matches(g, v) {
			return true
		}
	}
	return false
}

// appendUnique appends v to s unless present (s stays small: distinct
// insertion sources of one batch).
func appendUnique(s []graph.NodeID, v graph.NodeID) []graph.NodeID {
	for _, x := range s {
		if x == v {
			return s
		}
	}
	return append(s, v)
}
