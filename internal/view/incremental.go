package view

// Incremental maintenance of materialized view extensions under unit edge
// updates. Section I of the paper motivates cached pattern views with
// "incremental methods are already in place to efficiently maintain cached
// pattern views (e.g., [15])" — this file supplies that substrate.
//
// Strategy (correctness first, with the standard asymmetry of simulation
// maintenance):
//
//   - Edge deletion can only shrink match sets, so the old match relation
//     is a valid superset: refinement is re-run seeded from the previous
//     sim sets (SimulateSeeded), touching only the affected region rather
//     than re-scanning the label index.
//   - Edge insertion can only grow match sets. For plain views an inserted
//     edge whose endpoints cannot satisfy any pattern edge's endpoint
//     conditions provably cannot change the extension (simulation only
//     inspects edges between candidate sets), so it is a no-op; otherwise
//     the view is rematerialized. Bounded views rematerialize on every
//     relevant insertion since a single edge can create new short paths
//     between unrelated labels; the same endpoint test is still applied to
//     the reachability-irrelevant case of graphs whose labels cannot occur
//     on any connecting path — which cannot be decided locally — so
//     bounded views always take the slow path.
//
// Equivalence with full rematerialization is enforced by randomized tests.

import (
	"context"
	"sync/atomic"

	"graphviews/internal/graph"
	"graphviews/internal/par"
	"graphviews/internal/pattern"
	"graphviews/internal/simulation"
)

// Maintained couples a mutable data graph with materialized extensions
// that are kept in sync through InsertEdge/DeleteEdge. Maintenance is
// the one pipeline stage that writes to the graph, so Maintained is
// deliberately pinned to *graph.Graph rather than the read-only
// graph.Reader the evaluation engines accept.
type Maintained struct {
	G *graph.Graph
	X *Extensions

	// Recomputes counts how many view extensions were fully rematerialized
	// (insertions without a fast path); exposed for tests and stats.
	Recomputes int
	// Skips counts fast-path no-ops.
	Skips int

	// workers bounds the per-view refresh parallelism (1 = sequential).
	// Graph mutation always happens before the fan-out, so workers only
	// ever read the graph concurrently.
	workers int

	// version counts effective updates (graph-changing unit updates and
	// batch elements) committed through this Maintained. It is bumped
	// after the extensions have been refreshed, so a reader that observes
	// version n is guaranteed extensions consistent with the first n
	// updates. Atomic so monitoring goroutines may read it while a writer
	// mutates; writers themselves must still be externally serialized.
	version atomic.Uint64

	// publishHook, when set, runs after every committed update batch with
	// the new version (see SetPublishHook).
	publishHook func(version uint64)
}

// Version reports the number of effective updates committed so far: the
// monotone write clock of this Maintained. Snapshot-publishing layers
// record it at publish time and derive the pending-write backlog as
// Version() - published. Safe to call concurrently with a writer.
func (m *Maintained) Version() uint64 { return m.version.Load() }

// SetPublishHook registers fn to run after every update operation that
// changed the graph, once the extensions have been refreshed, with the
// new Version as argument. It is the snapshot-publish trigger of a
// serving layer: the hook decides whether the accumulated writes
// warrant publishing a fresh immutable snapshot (internal/serve kicks
// its publisher goroutine from here). The hook runs on the updating
// goroutine with the update fully applied — it must not re-enter the
// Maintained, and it should hand long work to another goroutine.
// Passing nil removes the hook. Not safe to call concurrently with
// updates.
func (m *Maintained) SetPublishHook(fn func(version uint64)) { m.publishHook = fn }

// commit bumps the write clock by n effective updates and fires the
// publish hook. Called once per update operation, after refresh.
func (m *Maintained) commit(n int) {
	if n <= 0 {
		return
	}
	v := m.version.Add(uint64(n))
	if m.publishHook != nil {
		m.publishHook(v)
	}
}

// SnapshotExtensions returns an immutable snapshot of the current
// extensions: the Set and a copy of the extension list. It relies on the
// maintenance invariant that refreshes replace m.X.Exts[i] with a fresh
// *Extension and never mutate a published Extension or its Result in
// place, so the shallow copy shares the (now-frozen) per-view results
// without copying match sets. Callers must serialize with updates — call
// it under the same lock that orders InsertEdge/DeleteEdge/ApplyBatch;
// the returned value is then safe for unsynchronized concurrent reads
// forever (the RCU publish path of internal/serve).
func (m *Maintained) SnapshotExtensions() *Extensions {
	return &Extensions{Set: m.X.Set, Exts: append([]*Extension(nil), m.X.Exts...)}
}

// NewMaintained materializes s over g and starts tracking updates.
func NewMaintained(g *graph.Graph, s *Set) *Maintained {
	m, _ := NewMaintainedWith(context.Background(), g, s, 1)
	return m
}

// NewMaintainedWith is NewMaintained with a worker pool: both the initial
// materialization and every per-view refresh under updates fan out over
// up to workers goroutines. ctx bounds only the initial materialization;
// later refreshes always run to completion so the extensions never fall
// out of sync with the already-mutated graph.
func NewMaintainedWith(ctx context.Context, g *graph.Graph, s *Set, workers int) (*Maintained, error) {
	x, err := MaterializeWith(ctx, g, s, workers)
	if err != nil {
		return nil, err
	}
	return &Maintained{G: g, X: x, workers: workers}, nil
}

// SetParallelism changes the refresh worker bound (<= 0 means GOMAXPROCS).
func (m *Maintained) SetParallelism(workers int) { m.workers = workers }

// viewOutcome is the bookkeeping result of refreshing one extension.
type viewOutcome int8

const (
	outcomeNone viewOutcome = iota // refreshed by seeded refinement
	outcomeSkip
	outcomeRecompute
)

// refresh runs fn for every extension index over the worker pool and then
// folds the outcomes into the Skips/Recomputes counters (sequentially, so
// the exported counters stay plain ints). It returns par.ForEach's error
// rather than discarding it: by the time refresh runs the graph has
// already been mutated, so an aborted fan-out would leave extensions
// stale and must not pass silently. Refreshes deliberately run under
// context.Background() — they must complete once the graph has changed —
// so today the error is provably nil (ForEach only returns ctx.Err();
// panics in fn propagate); mustRefresh asserts that invariant for the
// unit-update entry points until a cancellable refresh with re-sync
// semantics exists.
func (m *Maintained) refresh(fn func(i int) viewOutcome) error {
	outcomes := make([]viewOutcome, len(m.X.Exts))
	if err := par.ForEach(context.Background(), m.workers, len(m.X.Exts), func(i int) {
		outcomes[i] = fn(i)
	}); err != nil {
		return err
	}
	for _, o := range outcomes {
		switch o {
		case outcomeSkip:
			m.Skips++
		case outcomeRecompute:
			m.Recomputes++
		}
	}
	return nil
}

// mustRefresh runs refresh and asserts the Background-context invariant:
// a non-nil error here means extensions silently diverged from the graph,
// which is corruption, not a recoverable condition.
func (m *Maintained) mustRefresh(fn func(i int) viewOutcome) {
	if err := m.refresh(fn); err != nil {
		panic("view: maintenance refresh aborted with graph already mutated: " + err.Error())
	}
}

// InsertEdge adds (u,v) to the graph and updates every extension.
// It reports whether the edge was new. Insertion relevance is evaluated
// against the post-insertion graph — the graph in which the new edge
// exists — which is the state a candidate match of it would live in.
func (m *Maintained) InsertEdge(u, v graph.NodeID) bool {
	if !m.G.AddEdge(u, v) {
		return false
	}
	m.mustRefresh(func(i int) viewOutcome {
		ext := m.X.Exts[i]
		p := ext.Def.Pattern
		if p.IsPlain() && !edgeRelevant(m.G, p, u, v) {
			return outcomeSkip
		}
		m.X.Exts[i] = &Extension{Def: ext.Def, Result: simulation.Simulate(m.G, p)}
		return outcomeRecompute
	})
	m.commit(1)
	return true
}

// DeleteEdge removes (u,v) from the graph and updates every extension by
// seeded refinement. It reports whether the edge existed. The skip test
// asks whether the removed edge could have matched some pattern edge, so
// it must be decided against the pre-deletion graph — the only state in
// which the edge ever participated in a match — and is therefore
// evaluated before the mutation.
func (m *Maintained) DeleteEdge(u, v graph.NodeID) bool {
	if !m.G.HasEdge(u, v) {
		return false
	}
	relevant := m.deletionRelevance(u, v)
	m.G.RemoveEdge(u, v)
	m.mustRefresh(func(i int) viewOutcome {
		ext := m.X.Exts[i]
		p := ext.Def.Pattern
		old := ext.Result
		if !old.Matched {
			// The view had no match; deletions cannot create one.
			return outcomeSkip
		}
		if !relevant[i] {
			// Deleting an edge no pattern edge could ever have mapped to
			// leaves a plain extension untouched.
			return outcomeSkip
		}
		var res *simulation.Result
		if p.IsPlain() {
			res = simulation.SimulateSeeded(m.G, p, old.Sim)
		} else {
			res = simulation.SimulateBoundedSeeded(m.G, p, old.Sim)
		}
		m.X.Exts[i] = &Extension{Def: ext.Def, Result: res}
		return outcomeNone
	})
	m.commit(1)
	return true
}

// deletionRelevance evaluates, per view, whether the still-present edge
// (u,v) could match some pattern edge of a plain view. Non-plain views
// are always relevant (a deleted edge can break paths between any
// labels); views with no current match are left false — the refresh
// skips them before consulting relevance. Must be called before the
// edge is removed; the read-only evaluation fans out over the same
// worker pool as the refresh. Today edge mutations cannot change node
// conditions, so pre- and post-deletion evaluation coincide — the
// pre-pass pins the semantics, not the observable result, so relevance
// stays sound if node-mutating updates ever join the API.
func (m *Maintained) deletionRelevance(u, v graph.NodeID) []bool {
	relevant := make([]bool, len(m.X.Exts))
	err := par.ForEach(context.Background(), m.workers, len(m.X.Exts), func(i int) {
		ext := m.X.Exts[i]
		if !ext.Result.Matched {
			return // deletions cannot create a match; refresh skips it
		}
		p := ext.Def.Pattern
		relevant[i] = !p.IsPlain() || edgeRelevant(m.G, p, u, v)
	})
	if err != nil {
		panic("view: deletion relevance pre-pass aborted: " + err.Error())
	}
	return relevant
}

// EdgeUpdate is one element of a batch update stream.
type EdgeUpdate struct {
	From, To graph.NodeID
	Delete   bool
}

// ApplyBatch applies a stream of updates with one maintenance pass per
// view instead of one per update: all graph mutations are applied first,
// then each affected extension is refreshed once. Deletion-only batches
// refresh by seeded refinement; batches containing relevant insertions
// rematerialize the affected views. It returns the number of updates that
// changed the graph.
//
// Relevance is decided per update at the moment it is applied — for a
// deletion against the graph still holding the edge, for an insertion
// against the graph with the edge just added — never against the fully
// mutated batch-end graph, whose state says nothing about whether an
// already-removed edge could once have matched. Updates that do not
// change the graph (re-inserting a present edge, deleting an absent one)
// cannot affect any extension and are ignored by the relevance test.
func (m *Maintained) ApplyBatch(updates []EdgeUpdate) int {
	applied := 0
	anyInsert := false
	// Non-plain views are relevant to any effective update; the refresh
	// only runs when applied > 0, so they can be marked upfront. Plain
	// views compile their endpoint conditions once per batch — node
	// labels and attributes never change under edge updates, so the
	// compiled form stays valid across the whole mutation loop.
	relevant := make([]bool, len(m.X.Exts))
	pending := 0
	compiled := make([][]pattern.CompiledNode, len(m.X.Exts))
	for i, ext := range m.X.Exts {
		if !ext.Def.Pattern.IsPlain() {
			relevant[i] = true
		} else {
			pending++
		}
	}
	markRelevant := func(u, v graph.NodeID) {
		if pending == 0 {
			return
		}
		for i, ext := range m.X.Exts {
			if relevant[i] {
				continue
			}
			p := ext.Def.Pattern
			if compiled[i] == nil {
				compiled[i] = compileNodes(m.G, p)
			}
			if edgeRelevantCompiled(m.G, p, compiled[i], u, v) {
				relevant[i] = true
				pending--
			}
		}
	}
	for _, up := range updates {
		if up.Delete {
			if !m.G.HasEdge(up.From, up.To) {
				continue
			}
			markRelevant(up.From, up.To) // pre-deletion state
			m.G.RemoveEdge(up.From, up.To)
			applied++
		} else if m.G.AddEdge(up.From, up.To) {
			applied++
			anyInsert = true
			markRelevant(up.From, up.To) // post-insertion state
		}
	}
	if applied == 0 {
		return 0
	}
	m.mustRefresh(func(i int) viewOutcome {
		ext := m.X.Exts[i]
		p := ext.Def.Pattern
		if !relevant[i] {
			return outcomeSkip
		}
		switch {
		case !anyInsert && ext.Result.Matched:
			// Pure deletions: previous sim sets are valid supersets.
			var res *simulation.Result
			if p.IsPlain() {
				res = simulation.SimulateSeeded(m.G, p, ext.Result.Sim)
			} else {
				res = simulation.SimulateBoundedSeeded(m.G, p, ext.Result.Sim)
			}
			m.X.Exts[i] = &Extension{Def: ext.Def, Result: res}
			return outcomeNone
		case !anyInsert && !ext.Result.Matched:
			return outcomeSkip // deletions cannot create a match
		default:
			m.X.Exts[i] = &Extension{Def: ext.Def, Result: simulation.Simulate(m.G, p)}
			return outcomeRecompute
		}
	})
	m.commit(applied)
	return applied
}

// edgeRelevant reports whether the edge (u,v) can possibly serve as a
// match of some pattern edge of a plain view: its endpoints must satisfy
// the endpoint conditions of at least one pattern edge. The conditions
// inspect only node labels and attributes, so g must be a graph state in
// which the edge is (or was) present: post-insertion for inserts,
// pre-deletion for deletes.
func edgeRelevant(g graph.Reader, p *pattern.Pattern, u, v graph.NodeID) bool {
	return edgeRelevantCompiled(g, p, compileNodes(g, p), u, v)
}

// compileNodes resolves every pattern node condition against g. The
// result stays valid under edge insertions and deletions (conditions
// read node labels and attributes only).
func compileNodes(g graph.Reader, p *pattern.Pattern) []pattern.CompiledNode {
	compiled := make([]pattern.CompiledNode, len(p.Nodes))
	for i := range p.Nodes {
		compiled[i] = pattern.CompileNode(&p.Nodes[i], g)
	}
	return compiled
}

// edgeRelevantCompiled is edgeRelevant over pre-compiled conditions.
func edgeRelevantCompiled(g graph.Reader, p *pattern.Pattern, compiled []pattern.CompiledNode, u, v graph.NodeID) bool {
	for _, e := range p.Edges {
		if compiled[e.From].Matches(g, u) && compiled[e.To].Matches(g, v) {
			return true
		}
	}
	return false
}
