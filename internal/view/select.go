package view

// Workload-driven view selection — the first §VIII future-work item
// ("decide what views to cache such that a set of frequently used
// pattern queries can be answered by using the views").
//
// Given a candidate view pool and a query workload, SelectForWorkload
// greedily picks a small subset of candidates such that every workload
// query remains contained in the chosen subset, preferring views that
// cover many still-uncovered (query, edge) obligations per unit of
// estimated extension cost. This is the natural two-level extension of
// the paper's minimum containment greedy (Section V-C): the universe is
// the disjoint union of all queries' edges instead of one query's.

import (
	"sort"

	"graphviews/internal/pattern"
)

// CoverFunc reports which edges of q a single view definition covers; it
// is provided by the caller (internal/core.CoverEdges) to keep this
// package free of a dependency cycle with the containment machinery.
type CoverFunc func(q *pattern.Pattern, def *Definition) []bool

// SelectForWorkload picks a subset of the candidate views sufficient to
// answer every query in the workload, greedily maximizing newly covered
// (query, edge) obligations. It returns the chosen candidate indices
// (ascending) and whether full coverage was achieved; when some query
// cannot be covered even by the full pool, ok is false and the selection
// covers as much as possible.
func SelectForWorkload(workload []*pattern.Pattern, candidates *Set, covers CoverFunc) (chosen []int, ok bool) {
	type obligation struct{ query, edge int }
	// coverage[i] lists the obligations candidate i fulfills.
	coverage := make([][]obligation, candidates.Card())
	total := 0
	for qi, q := range workload {
		total += len(q.Edges)
		for ci, def := range candidates.Defs {
			cov := covers(q, def)
			for ei, c := range cov {
				if c {
					coverage[ci] = append(coverage[ci], obligation{qi, ei})
				}
			}
		}
	}

	covered := make(map[obligation]bool, total)
	used := make([]bool, candidates.Card())
	for len(covered) < total {
		best, bestGain := -1, 0
		for ci := range coverage {
			if used[ci] {
				continue
			}
			gain := 0
			for _, ob := range coverage[ci] {
				if !covered[ob] {
					gain++
				}
			}
			if gain > bestGain {
				best, bestGain = ci, gain
			}
		}
		if best < 0 {
			break // nothing can cover the remainder
		}
		used[best] = true
		chosen = append(chosen, best)
		for _, ob := range coverage[best] {
			covered[ob] = true
		}
	}
	sort.Ints(chosen)
	return chosen, len(covered) == total
}
