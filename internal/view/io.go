package view

// Text serialization for materialized extensions, so cached views can be
// shipped between processes (cmd/gvviews materializes once; cmd/gvmatch
// can then answer queries without the data graph, which is the entire
// point of the paper). Format:
//
//	view <name> matched=<0|1>
//	sim <patternNodeIdx> <id> <id> ...
//	ematch <patternEdgeIdx> <src> <dst> <dist>
//
// Extensions are read back against the defining ViewSet; names and shapes
// must agree.

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"graphviews/internal/graph"
	"graphviews/internal/simulation"
)

// WriteExtensions serializes x.
func WriteExtensions(w io.Writer, x *Extensions) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# graphviews extensions: %d views, %d pairs\n", len(x.Exts), x.TotalEdges())
	for _, e := range x.Exts {
		m := 0
		if e.Result.Matched {
			m = 1
		}
		fmt.Fprintf(bw, "view %s matched=%d\n", e.Def.Name, m)
		if !e.Result.Matched {
			continue
		}
		for u, sims := range e.Result.Sim {
			fmt.Fprintf(bw, "sim %d", u)
			for _, v := range sims {
				fmt.Fprintf(bw, " %d", v)
			}
			fmt.Fprintln(bw)
		}
		for ei := range e.Result.Edges {
			em := &e.Result.Edges[ei]
			for j, pr := range em.Pairs {
				fmt.Fprintf(bw, "ematch %d %d %d %d\n", ei, pr.Src, pr.Dst, em.Dists[j])
			}
		}
	}
	return bw.Flush()
}

// ReadExtensions parses extensions for the given view set. Views must
// appear in set order with matching names.
func ReadExtensions(r io.Reader, s *Set) (*Extensions, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	x := &Extensions{Set: s}
	var cur *Extension
	vi := -1
	lineNo := 0
	finish := func() {
		if cur != nil {
			for ei := range cur.Result.Edges {
				// Stored sorted; re-normalizing keeps Has/Dist lookups valid
				// even for hand-edited files.
				sortEdgeMatches(&cur.Result.Edges[ei])
			}
		}
	}
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "view":
			if len(fields) != 3 || !strings.HasPrefix(fields[2], "matched=") {
				return nil, fmt.Errorf("view: line %d: malformed view header", lineNo)
			}
			finish()
			vi++
			if vi >= len(s.Defs) {
				return nil, fmt.Errorf("view: line %d: more views than definitions", lineNo)
			}
			if s.Defs[vi].Name != fields[1] {
				return nil, fmt.Errorf("view: line %d: view %q does not match definition %q", lineNo, fields[1], s.Defs[vi].Name)
			}
			p := s.Defs[vi].Pattern
			matched := fields[2] == "matched=1"
			cur = &Extension{Def: s.Defs[vi], Result: &simulation.Result{
				Pattern: p,
				Matched: matched,
				Sim:     make([][]graph.NodeID, len(p.Nodes)),
				Edges:   make([]simulation.EdgeMatches, len(p.Edges)),
			}}
			x.Exts = append(x.Exts, cur)
		case "sim":
			if cur == nil || len(fields) < 2 {
				return nil, fmt.Errorf("view: line %d: sim outside view", lineNo)
			}
			u, err := strconv.Atoi(fields[1])
			if err != nil || u < 0 || u >= len(cur.Result.Sim) {
				return nil, fmt.Errorf("view: line %d: bad sim node index", lineNo)
			}
			for _, f := range fields[2:] {
				id, err := strconv.Atoi(f)
				if err != nil {
					return nil, fmt.Errorf("view: line %d: bad node id %q", lineNo, f)
				}
				cur.Result.Sim[u] = append(cur.Result.Sim[u], graph.NodeID(id))
			}
		case "ematch":
			if cur == nil || len(fields) != 5 {
				return nil, fmt.Errorf("view: line %d: malformed ematch", lineNo)
			}
			ei, err1 := strconv.Atoi(fields[1])
			src, err2 := strconv.Atoi(fields[2])
			dst, err3 := strconv.Atoi(fields[3])
			d, err4 := strconv.Atoi(fields[4])
			if err1 != nil || err2 != nil || err3 != nil || err4 != nil ||
				ei < 0 || ei >= len(cur.Result.Edges) {
				return nil, fmt.Errorf("view: line %d: bad ematch fields", lineNo)
			}
			em := &cur.Result.Edges[ei]
			em.Pairs = append(em.Pairs, simulation.Pair{Src: graph.NodeID(src), Dst: graph.NodeID(dst)})
			em.Dists = append(em.Dists, int32(d))
		default:
			return nil, fmt.Errorf("view: line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	finish()
	if vi+1 != len(s.Defs) {
		return nil, fmt.Errorf("view: %d extensions for %d definitions", vi+1, len(s.Defs))
	}
	return x, nil
}

// sortEdgeMatches restores the sorted-pairs invariant.
func sortEdgeMatches(em *simulation.EdgeMatches) {
	n := len(em.Pairs)
	for i := 1; i < n; i++ {
		for j := i; j > 0; j-- {
			a, b := em.Pairs[j-1], em.Pairs[j]
			if a.Src < b.Src || (a.Src == b.Src && a.Dst <= b.Dst) {
				break
			}
			em.Pairs[j-1], em.Pairs[j] = em.Pairs[j], em.Pairs[j-1]
			em.Dists[j-1], em.Dists[j] = em.Dists[j], em.Dists[j-1]
		}
	}
}
