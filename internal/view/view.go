// Package view implements graph pattern views (Section II-B): view
// definitions V (pattern queries), view extensions V(G) (materialized
// query results), the distance index I(V) used by BMatchJoin (Section
// VI-A), and incremental maintenance of cached extensions under edge
// insertions and deletions (the paper relies on [15] for this).
package view

import (
	"context"
	"fmt"

	"graphviews/internal/graph"
	"graphviews/internal/par"
	"graphviews/internal/pattern"
	"graphviews/internal/simulation"
)

// Definition is a named view definition: a (possibly bounded) pattern.
type Definition struct {
	Name    string
	Pattern *pattern.Pattern
}

// Define wraps a pattern as a view definition, inheriting its name when
// none is given.
func Define(name string, p *pattern.Pattern) *Definition {
	if name == "" {
		name = p.Name
	}
	return &Definition{Name: name, Pattern: p}
}

// Set is an ordered collection of view definitions V = {V1, ..., Vn}.
type Set struct {
	Defs []*Definition
}

// NewSet builds a view set.
func NewSet(defs ...*Definition) *Set { return &Set{Defs: defs} }

// Card returns card(V), the number of view definitions.
func (s *Set) Card() int { return len(s.Defs) }

// Size returns |V|: the total size of the view definitions.
func (s *Set) Size() int {
	total := 0
	for _, d := range s.Defs {
		total += d.Pattern.Size()
	}
	return total
}

// Subset returns the view set restricted to the given indices (in the
// given order).
func (s *Set) Subset(idx []int) *Set {
	defs := make([]*Definition, len(idx))
	for i, j := range idx {
		defs[i] = s.Defs[j]
	}
	return NewSet(defs...)
}

// Validate checks every definition's pattern.
func (s *Set) Validate() error {
	names := make(map[string]struct{}, len(s.Defs))
	for _, d := range s.Defs {
		if _, dup := names[d.Name]; dup {
			return fmt.Errorf("view: duplicate view name %q", d.Name)
		}
		names[d.Name] = struct{}{}
		if err := d.Pattern.Validate(); err != nil {
			return fmt.Errorf("view %q: %w", d.Name, err)
		}
	}
	return nil
}

// Extension is one materialized view V(G).
type Extension struct {
	Def    *Definition
	Result *simulation.Result
}

// Edges returns |V(G)| for this view: total pairs over its match sets.
func (e *Extension) Edges() int { return e.Result.Size() }

// Extensions is the materialized family V(G) = {V1(G), ..., Vn(G)},
// parallel to a Set.
type Extensions struct {
	Set  *Set
	Exts []*Extension
}

// Materialize evaluates every view definition over g (any graph.Reader
// backend — pass graph.Freeze(g) to evaluate against an immutable CSR
// snapshot). Plain views use graph simulation; bounded views use bounded
// simulation. Extension match sets record exact shortest path lengths,
// which provide the distance index I(V) for answering bounded queries
// (Section VI-A).
func Materialize(g graph.Reader, s *Set) *Extensions {
	x, _ := MaterializeWith(context.Background(), g, s, 1)
	return x
}

// MaterializeWith is Materialize with a worker pool: each view is
// simulated by one task, and when views are fewer than workers the
// leftover parallelism flows into each bounded view's match-set
// enumeration (the distance-index construction). The outer tasks and
// inner enumeration goroutines together never exceed the requested
// worker bound. Results are identical to the sequential engine at every
// worker count. It returns ctx.Err() when cancelled before all views
// finish.
func MaterializeWith(ctx context.Context, g graph.Reader, s *Set, workers int) (*Extensions, error) {
	return MaterializePooled(ctx, g, s, workers, nil)
}

// MaterializePooled is MaterializeWith with each view's simulation
// working state drawn from pool: every worker task checks a Scratch out
// for the duration of its view and returns it, so a warmed pool
// materializes repeatedly without allocating fixpoint state. Candidate
// seeding — the predicate scan over the label partitions, the hottest
// phase of materialization — runs once per distinct node condition
// across the whole view family instead of once per occurrence
// (simulation.CandidateSeeds). A nil pool uses transient scratches.
// Results never alias pool memory.
func MaterializePooled(ctx context.Context, g graph.Reader, s *Set, workers int, pool *simulation.ScratchPool) (*Extensions, error) {
	exts := make([]*Extension, len(s.Defs))
	w := par.Workers(workers)
	inner := 1
	if outer := min(w, len(s.Defs)); outer > 0 {
		inner = max(1, w/outer)
	}
	pats := make([]*pattern.Pattern, len(s.Defs))
	for i, d := range s.Defs {
		pats[i] = d.Pattern
	}
	seeds := simulation.CandidateSeeds(ctx, g, pats, w, true)
	err := par.ForEach(ctx, w, len(s.Defs), func(i int) {
		d := s.Defs[i]
		exts[i] = &Extension{Def: d, Result: simulation.SimulateFromSeeds(ctx, g, d.Pattern, seeds[i], inner, pool)}
	})
	if err != nil {
		return nil, err
	}
	return &Extensions{Set: s, Exts: exts}, nil
}

// MaterializeDual evaluates every view under dual simulation (the
// Section VIII extension); pair distances are all 1. Use with
// core.DualContain / core.DualMatchJoin.
func MaterializeDual(g graph.Reader, s *Set) *Extensions {
	x, _ := MaterializeDualWith(context.Background(), g, s, 1)
	return x
}

// MaterializeDualWith is MaterializeDual over a worker pool, one view per
// task.
func MaterializeDualWith(ctx context.Context, g graph.Reader, s *Set, workers int) (*Extensions, error) {
	return MaterializeDualPooled(ctx, g, s, workers, nil)
}

// MaterializeDualPooled is MaterializeDualWith over a scratch pool with
// family-wide candidate memoization; see MaterializePooled. Dual
// candidates never apply the out-degree prune.
func MaterializeDualPooled(ctx context.Context, g graph.Reader, s *Set, workers int, pool *simulation.ScratchPool) (*Extensions, error) {
	exts := make([]*Extension, len(s.Defs))
	pats := make([]*pattern.Pattern, len(s.Defs))
	for i, d := range s.Defs {
		pats[i] = d.Pattern
	}
	seeds := simulation.CandidateSeeds(ctx, g, pats, workers, false)
	err := par.ForEach(ctx, workers, len(s.Defs), func(i int) {
		d := s.Defs[i]
		exts[i] = &Extension{Def: d, Result: simulation.SimulateDualFromSeeds(g, d.Pattern, seeds[i], pool)}
	})
	if err != nil {
		return nil, err
	}
	return &Extensions{Set: s, Exts: exts}, nil
}

// TotalEdges returns |V(G)|: the total number of match pairs across all
// extensions, the size measure in the MatchJoin complexity bound.
func (x *Extensions) TotalEdges() int {
	total := 0
	for _, e := range x.Exts {
		total += e.Edges()
	}
	return total
}

// FractionOf estimates |V(G)| / |G|: cached-view volume relative to the
// data graph (the paper reports, e.g., ≤4% for the YouTube views).
func (x *Extensions) FractionOf(g graph.Reader) float64 {
	if g.Size() == 0 {
		return 0
	}
	return float64(x.TotalEdges()) / float64(g.Size())
}

// Subset restricts the extensions to the given view indices.
func (x *Extensions) Subset(idx []int) *Extensions {
	sub := &Extensions{Set: x.Set.Subset(idx), Exts: make([]*Extension, len(idx))}
	for i, j := range idx {
		sub.Exts[i] = x.Exts[j]
	}
	return sub
}

// DistIndex is the index I(V) of Section VI-A: for every match pair
// (v,v') occurring in some extension, the (shortest) distance from v to
// v' in G. Lookup is O(1).
type DistIndex struct {
	m map[simulation.Pair]int32
}

// BuildDistIndex collects every pair of every extension, keeping the
// minimum distance when several views share a pair. Its size is bounded
// by |V(G)| as the paper notes.
func BuildDistIndex(x *Extensions) *DistIndex {
	idx, _ := BuildDistIndexWith(context.Background(), x, 1)
	return idx
}

// BuildDistIndexWith builds I(V) with per-extension index maps computed
// concurrently, then merged keeping minimum distances. The merged map is
// identical to BuildDistIndex's regardless of worker count.
func BuildDistIndexWith(ctx context.Context, x *Extensions, workers int) (*DistIndex, error) {
	parts := make([]map[simulation.Pair]int32, len(x.Exts))
	err := par.ForEach(ctx, workers, len(x.Exts), func(i int) {
		m := make(map[simulation.Pair]int32)
		r := x.Exts[i].Result
		for ei := range r.Edges {
			em := &r.Edges[ei]
			for j, pr := range em.Pairs {
				d := em.Dists[j]
				if old, ok := m[pr]; !ok || d < old {
					m[pr] = d
				}
			}
		}
		parts[i] = m
	})
	if err != nil {
		return nil, err
	}
	idx := &DistIndex{m: make(map[simulation.Pair]int32)}
	for _, m := range parts {
		for pr, d := range m {
			if old, ok := idx.m[pr]; !ok || d < old {
				idx.m[pr] = d
			}
		}
	}
	return idx, nil
}

// Dist returns the indexed distance for (src,dst), or -1 if the pair does
// not occur in any extension.
func (i *DistIndex) Dist(src, dst graph.NodeID) int32 {
	if d, ok := i.m[simulation.Pair{Src: src, Dst: dst}]; ok {
		return d
	}
	return -1
}

// Len returns the number of indexed pairs.
func (i *DistIndex) Len() int { return len(i.m) }
