package view

// Tests for the snapshot-publish surface of Maintained: the write clock
// (Version), the publish hook, and the immutability guarantee of
// SnapshotExtensions — the contracts internal/serve's RCU publication
// builds on.

import (
	"testing"

	"graphviews/internal/graph"
)

// publishFixture: two A nodes, two B nodes, one A→B edge, one A→B view.
func publishFixture(t *testing.T) (*graph.Graph, *Maintained) {
	t.Helper()
	g := graph.New()
	g.AddNode("A")
	g.AddNode("A")
	g.AddNode("B")
	g.AddNode("B")
	g.AddEdge(0, 2)
	return g, NewMaintained(g, NewSet(Define("v", patternAB())))
}

// TestVersionCountsEffectiveUpdates: the write clock moves only on
// updates that change the graph — duplicates and misses don't count.
func TestVersionCountsEffectiveUpdates(t *testing.T) {
	_, m := publishFixture(t)
	if m.Version() != 0 {
		t.Fatalf("fresh Version = %d, want 0", m.Version())
	}
	if !m.InsertEdge(1, 3) || m.Version() != 1 {
		t.Fatalf("after insert: Version = %d, want 1", m.Version())
	}
	if m.InsertEdge(1, 3) {
		t.Fatal("duplicate insert reported applied")
	}
	if m.Version() != 1 {
		t.Fatalf("duplicate insert moved the clock: Version = %d", m.Version())
	}
	if m.DeleteEdge(2, 3) {
		t.Fatal("missing-edge delete reported applied")
	}
	if m.Version() != 1 {
		t.Fatalf("no-op delete moved the clock: Version = %d", m.Version())
	}
	// Batch: 2 effective (one delete, one insert), 1 no-op duplicate.
	applied := m.ApplyBatch([]EdgeUpdate{
		{From: 0, To: 2, Delete: true},
		{From: 1, To: 3}, // duplicate: no-op
		{From: 0, To: 3},
	})
	if applied != 2 {
		t.Fatalf("ApplyBatch applied = %d, want 2", applied)
	}
	if m.Version() != 3 {
		t.Fatalf("after batch: Version = %d, want 3", m.Version())
	}
}

// TestPublishHook: the hook fires once per committed operation with the
// post-commit version, never on no-ops, and unregisters on nil.
func TestPublishHook(t *testing.T) {
	_, m := publishFixture(t)
	var calls []uint64
	m.SetPublishHook(func(v uint64) { calls = append(calls, v) })

	m.InsertEdge(1, 3)         // effective → hook(1)
	m.InsertEdge(1, 3)         // no-op → no call
	m.ApplyBatch([]EdgeUpdate{ // 2 effective → one hook(3)
		{From: 0, To: 2, Delete: true},
		{From: 0, To: 3},
	})
	m.ApplyBatch(nil) // nothing applied → no call
	if want := []uint64{1, 3}; len(calls) != len(want) || calls[0] != want[0] || calls[1] != want[1] {
		t.Fatalf("hook calls = %v, want %v", calls, want)
	}
	m.SetPublishHook(nil)
	m.DeleteEdge(0, 3)
	if len(calls) != 2 {
		t.Fatalf("hook fired after unregistering: calls = %v", calls)
	}
}

// TestSnapshotExtensionsImmutable: a snapshot taken before updates keeps
// answering from the old state while the maintained extensions move on —
// the soundness of the shallow clone, resting on refreshes replacing
// (never mutating) published *Extension values.
func TestSnapshotExtensionsImmutable(t *testing.T) {
	_, m := publishFixture(t)
	snap := m.SnapshotExtensions()
	if snap.Set != m.X.Set {
		t.Fatal("snapshot must share the view set")
	}
	before := snap.Exts[0].Result.Size()

	// Grow the live extensions; the old snapshot must not move.
	if !m.InsertEdge(1, 3) {
		t.Fatal("insert not applied")
	}
	if got := snap.Exts[0].Result.Size(); got != before {
		t.Fatalf("snapshot mutated by later insert: size %d → %d", before, got)
	}
	if live := m.SnapshotExtensions(); live.Exts[0].Result.Size() != before+1 {
		t.Fatalf("live extensions missed the insert: size = %d", live.Exts[0].Result.Size())
	}

	// Shrink to empty; the old snapshots still answer from their epochs.
	m.ApplyBatch([]EdgeUpdate{{From: 0, To: 2, Delete: true}, {From: 1, To: 3, Delete: true}})
	if got := snap.Exts[0].Result.Size(); got != before {
		t.Fatalf("snapshot mutated by deletions: size %d → %d", before, got)
	}
	if m.X.Exts[0].Result.Matched {
		t.Fatal("live extension should be empty after deleting every A->B edge")
	}
}
