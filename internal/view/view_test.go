package view

import (
	"math/rand"
	"testing"

	"graphviews/internal/graph"
	"graphviews/internal/pattern"
)

// fig1 builds the Fig. 1 graph and the two views V1, V2 of the paper.
func fig1() (*graph.Graph, *Set) {
	g := graph.New()
	for _, l := range []string{"PM", "PM", "DBA", "DBA", "DBA", "PRG", "PRG", "PRG", "BA", "ST"} {
		g.AddNode(l)
	}
	for _, e := range [][2]graph.NodeID{
		{0, 2}, {1, 2}, {0, 5}, {1, 7},
		{3, 6}, {2, 6}, {4, 7},
		{5, 3}, {6, 4}, {6, 2}, {7, 2},
	} {
		g.AddEdge(e[0], e[1])
	}

	v1 := pattern.New("V1")
	pm := v1.AddNode("pm", "PM")
	dba := v1.AddNode("dba", "DBA")
	prg := v1.AddNode("prg", "PRG")
	v1.AddEdge(pm, dba) // e1
	v1.AddEdge(pm, prg) // e2

	v2 := pattern.New("V2")
	dba2 := v2.AddNode("dba", "DBA")
	prg2 := v2.AddNode("prg", "PRG")
	v2.AddEdge(dba2, prg2) // e3
	v2.AddEdge(prg2, dba2) // e4

	return g, NewSet(Define("", v1), Define("", v2))
}

// TestFig1ViewExtensions pins the V(G) tables of Fig. 1(b).
func TestFig1ViewExtensions(t *testing.T) {
	g, vs := fig1()
	if err := vs.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	x := Materialize(g, vs)

	v1 := x.Exts[0].Result
	if !v1.Matched {
		t.Fatalf("V1 should match")
	}
	// Se1 = {(Bob,Mat),(Walt,Mat)}; Se2 = {(Bob,Dan),(Walt,Bill)}
	if v1.Edges[0].Len() != 2 || !v1.Edges[0].Has(0, 2) || !v1.Edges[0].Has(1, 2) {
		t.Fatalf("Se1 = %v", v1.Edges[0].Pairs)
	}
	if v1.Edges[1].Len() != 2 || !v1.Edges[1].Has(0, 5) || !v1.Edges[1].Has(1, 7) {
		t.Fatalf("Se2 = %v", v1.Edges[1].Pairs)
	}

	v2 := x.Exts[1].Result
	// Se3 = {(Fred,Pat),(Mat,Pat),(Mary,Bill)}
	if v2.Edges[0].Len() != 3 || !v2.Edges[0].Has(3, 6) || !v2.Edges[0].Has(2, 6) || !v2.Edges[0].Has(4, 7) {
		t.Fatalf("Se3 = %v", v2.Edges[0].Pairs)
	}
	// Se4 = {(Dan,Fred),(Pat,Mary),(Pat,Mat),(Bill,Mat)}
	if v2.Edges[1].Len() != 4 {
		t.Fatalf("Se4 = %v", v2.Edges[1].Pairs)
	}

	if x.TotalEdges() != 2+2+3+4 {
		t.Fatalf("|V(G)| = %d", x.TotalEdges())
	}
	if f := x.FractionOf(g); f <= 0 || f > 1 {
		t.Fatalf("FractionOf = %v", f)
	}
}

func TestSetAccessors(t *testing.T) {
	_, vs := fig1()
	if vs.Card() != 2 {
		t.Fatalf("Card = %d", vs.Card())
	}
	if vs.Size() != (3+2)+(2+2) {
		t.Fatalf("Size = %d", vs.Size())
	}
	sub := vs.Subset([]int{1})
	if sub.Card() != 1 || sub.Defs[0].Name != "V2" {
		t.Fatalf("Subset wrong: %v", sub.Defs)
	}
}

func TestSetValidateErrors(t *testing.T) {
	p := pattern.New("v")
	p.AddNode("a", "A")
	p.AddNode("b", "B") // disconnected
	vs := NewSet(Define("x", p))
	if err := vs.Validate(); err == nil {
		t.Fatalf("invalid pattern should fail Validate")
	}
	ok := pattern.New("ok")
	ok.AddNode("a", "A")
	dup := NewSet(Define("same", ok), Define("same", ok))
	if err := dup.Validate(); err == nil {
		t.Fatalf("duplicate names should fail Validate")
	}
}

func TestDistIndex(t *testing.T) {
	// chain A -> X -> B with a bounded view A ->(<=2) B.
	g := graph.New()
	a := g.AddNode("A")
	x := g.AddNode("X")
	b := g.AddNode("B")
	g.AddEdge(a, x)
	g.AddEdge(x, b)

	vp := pattern.New("v")
	pa := vp.AddNode("a", "A")
	pb := vp.AddNode("b", "B")
	vp.AddBoundedEdge(pa, pb, 2)
	xts := Materialize(g, NewSet(Define("", vp)))
	idx := BuildDistIndex(xts)
	if idx.Len() != 1 {
		t.Fatalf("index size = %d", idx.Len())
	}
	if d := idx.Dist(a, b); d != 2 {
		t.Fatalf("Dist(a,b) = %d, want 2", d)
	}
	if d := idx.Dist(a, x); d != -1 {
		t.Fatalf("Dist(a,x) = %d, want -1 (unindexed)", d)
	}
}

func TestDistIndexKeepsMinimum(t *testing.T) {
	// Two views share pair (a,b): one records the direct edge (1), one a
	// bounded path; the index keeps the minimum.
	g := graph.New()
	a := g.AddNode("A")
	b := g.AddNode("B")
	g.AddEdge(a, b)

	v1 := pattern.New("v1")
	v1.AddEdge(v1.AddNode("a", "A"), v1.AddNode("b", "B"))
	v2 := pattern.New("v2")
	v2.AddBoundedEdge(v2.AddNode("a", "A"), v2.AddNode("b", "B"), 3)
	xts := Materialize(g, NewSet(Define("", v1), Define("", v2)))
	idx := BuildDistIndex(xts)
	if d := idx.Dist(a, b); d != 1 {
		t.Fatalf("Dist = %d, want 1", d)
	}
}

func randomGraph(rng *rand.Rand, n int, labels []string) *graph.Graph {
	g := graph.New()
	for i := 0; i < n; i++ {
		g.AddNode(labels[rng.Intn(len(labels))])
	}
	for i := 0; i < 3*n; i++ {
		g.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)))
	}
	return g
}

func randomViewSet(rng *rand.Rand, labels []string) *Set {
	var defs []*Definition
	for i := 0; i < 3; i++ {
		p := pattern.New("v")
		pn := 2 + rng.Intn(2)
		for j := 0; j < pn; j++ {
			p.AddNode("", labels[rng.Intn(len(labels))])
		}
		for j := 1; j < pn; j++ {
			k := rng.Intn(j)
			if rng.Intn(2) == 0 {
				p.AddEdge(k, j)
			} else {
				p.AddEdge(j, k)
			}
		}
		if rng.Intn(3) == 0 { // some views bounded
			for k := range p.Edges {
				p.Edges[k].Bound = pattern.Bound(1 + rng.Intn(3))
			}
		}
		defs = append(defs, Define("", p))
	}
	return NewSet(defs...)
}

// TestMaintainedEquivalence: random update streams keep maintained
// extensions identical to full rematerialization.
func TestMaintainedEquivalence(t *testing.T) {
	labels := []string{"A", "B", "C"}
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 15; trial++ {
		g := randomGraph(rng, 8+rng.Intn(8), labels)
		vs := randomViewSet(rng, labels)
		m := NewMaintained(g.Clone(), vs)
		shadow := g.Clone()

		for step := 0; step < 30; step++ {
			u := graph.NodeID(rng.Intn(shadow.NumNodes()))
			v := graph.NodeID(rng.Intn(shadow.NumNodes()))
			if rng.Intn(2) == 0 {
				m.InsertEdge(u, v)
				shadow.AddEdge(u, v)
			} else {
				m.DeleteEdge(u, v)
				shadow.RemoveEdge(u, v)
			}
			if step%10 != 9 {
				continue // compare every 10 steps to keep the test fast
			}
			fresh := Materialize(shadow, vs)
			for i := range fresh.Exts {
				if !m.X.Exts[i].Result.Equal(fresh.Exts[i].Result) {
					t.Fatalf("trial %d step %d: view %d diverged\nmaintained: %v\nfresh: %v",
						trial, step, i, m.X.Exts[i].Result, fresh.Exts[i].Result)
				}
			}
		}
	}
}

func TestMaintainedFastPaths(t *testing.T) {
	// Inserting an edge between labels no pattern edge relates must be a
	// no-op for a plain view.
	g := graph.New()
	a := g.AddNode("A")
	b := g.AddNode("B")
	c := g.AddNode("C")
	g.AddEdge(a, b)

	p := pattern.New("v")
	p.AddEdge(p.AddNode("a", "A"), p.AddNode("b", "B"))
	m := NewMaintained(g, NewSet(Define("", p)))
	before := m.X.Exts[0]

	if !m.InsertEdge(b, c) { // B->C: no pattern edge has (B,C) endpoints
		t.Fatalf("insert failed")
	}
	if m.Stats.Skips != 1 || m.Stats.Recomputes != 0 {
		t.Fatalf("expected fast-path skip, got skips=%d recomputes=%d", m.Stats.Skips, m.Stats.Recomputes)
	}
	if m.X.Exts[0] != before {
		t.Fatalf("extension rebuilt unnecessarily")
	}

	// Duplicate insert: no-op entirely.
	if m.InsertEdge(a, b) {
		t.Fatalf("duplicate insert should report false")
	}
	// Deleting a never-existing edge: no-op.
	if m.DeleteEdge(c, a) {
		t.Fatalf("deleting a missing edge should report false")
	}
}

func TestMaintainedDeleteBreaksMatch(t *testing.T) {
	g := graph.New()
	a := g.AddNode("A")
	b := g.AddNode("B")
	g.AddEdge(a, b)
	p := pattern.New("v")
	p.AddEdge(p.AddNode("a", "A"), p.AddNode("b", "B"))
	m := NewMaintained(g, NewSet(Define("", p)))
	if !m.X.Exts[0].Result.Matched {
		t.Fatalf("should match initially")
	}
	m.DeleteEdge(a, b)
	if m.X.Exts[0].Result.Matched {
		t.Fatalf("match should vanish after deletion")
	}
	// Re-insert: match returns.
	m.InsertEdge(a, b)
	if !m.X.Exts[0].Result.Matched {
		t.Fatalf("match should return after re-insertion")
	}
}
