package view

import (
	"strings"
	"testing"

	"graphviews/internal/graph"
	"graphviews/internal/pattern"
)

// fakeCover treats a view as covering query edge i when the view's first
// node label equals the query edge's source label (enough to exercise the
// greedy cover logic without the containment machinery).
func fakeCover(q *pattern.Pattern, def *Definition) []bool {
	out := make([]bool, len(q.Edges))
	for i, e := range q.Edges {
		out[i] = q.Nodes[e.From].Label == def.Pattern.Nodes[0].Label
	}
	return out
}

func TestSelectForWorkloadGreedy(t *testing.T) {
	mk := func(label string) *Definition {
		p := pattern.New("v" + label)
		p.AddNode("a", label)
		return Define("", p)
	}
	cands := NewSet(mk("A"), mk("B"), mk("C"))

	q := pattern.New("q")
	a := q.AddNode("a", "A")
	b := q.AddNode("b", "B")
	c := q.AddNode("c", "C")
	q.AddEdge(a, b)
	q.AddEdge(a, c)
	q.AddEdge(b, c)

	chosen, ok := SelectForWorkload([]*pattern.Pattern{q}, cands, fakeCover)
	if !ok {
		t.Fatalf("coverable workload reported as uncoverable")
	}
	// Edges from A (2) and from B (1): views A and B suffice; C never
	// covers anything.
	if len(chosen) != 2 || chosen[0] != 0 || chosen[1] != 1 {
		t.Fatalf("chosen = %v, want [0 1]", chosen)
	}

	// Make edge (b,c) uncoverable by dropping view B.
	chosen, ok = SelectForWorkload([]*pattern.Pattern{q}, NewSet(mk("A"), mk("C")), fakeCover)
	if ok {
		t.Fatalf("uncoverable workload reported as coverable")
	}
	if len(chosen) != 1 || chosen[0] != 0 {
		t.Fatalf("partial selection = %v, want [0]", chosen)
	}
}

func TestMaterializeDualDirect(t *testing.T) {
	g := graph.New()
	a := g.AddNode("A")
	b := g.AddNode("B")
	g.AddNode("B") // dangling B: kept by plain sim, dropped by dual
	g.AddEdge(a, b)
	p := pattern.New("v")
	p.AddEdge(p.AddNode("a", "A"), p.AddNode("b", "B"))
	x := MaterializeDual(g, NewSet(Define("", p)))
	if x.TotalEdges() != 1 {
		t.Fatalf("dual extension size = %d", x.TotalEdges())
	}
	if len(x.Exts[0].Result.Sim[1]) != 1 {
		t.Fatalf("dual must keep only the linked B: %v", x.Exts[0].Result.Sim)
	}
}

func TestExtensionsSubsetDirect(t *testing.T) {
	g, vs := fig1()
	x := Materialize(g, vs)
	sub := x.Subset([]int{1})
	if sub.Set.Card() != 1 || sub.Set.Defs[0].Name != "V2" {
		t.Fatalf("Subset wrong: %v", sub.Set.Defs)
	}
	if sub.TotalEdges() != x.Exts[1].Edges() {
		t.Fatalf("subset extension size mismatch")
	}
}

// TestReadExtensionsUnsortedPairs: hand-written files with out-of-order
// pairs are re-sorted on load so Has/Dist lookups work.
func TestReadExtensionsUnsortedPairs(t *testing.T) {
	p := pattern.New("V")
	p.AddEdge(p.AddNode("a", "A"), p.AddNode("b", "B"))
	vs := NewSet(Define("V", p))
	src := `
view V matched=1
sim 0 5 3
sim 1 9
ematch 0 5 9 1
ematch 0 3 9 1
`
	x, err := ReadExtensions(strings.NewReader(src), vs)
	if err != nil {
		t.Fatalf("ReadExtensions: %v", err)
	}
	em := &x.Exts[0].Result.Edges[0]
	if !em.Has(3, 9) || !em.Has(5, 9) {
		t.Fatalf("lookups broken on unsorted input: %v", em.Pairs)
	}
	if em.Pairs[0].Src != 3 {
		t.Fatalf("pairs not re-sorted: %v", em.Pairs)
	}
}
