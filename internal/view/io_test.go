package view

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestExtensionsRoundTrip(t *testing.T) {
	g, vs := fig1()
	x := Materialize(g, vs)
	var buf bytes.Buffer
	if err := WriteExtensions(&buf, x); err != nil {
		t.Fatalf("WriteExtensions: %v", err)
	}
	x2, err := ReadExtensions(&buf, vs)
	if err != nil {
		t.Fatalf("ReadExtensions: %v", err)
	}
	if len(x2.Exts) != len(x.Exts) {
		t.Fatalf("view count mismatch")
	}
	for i := range x.Exts {
		if !x.Exts[i].Result.Equal(x2.Exts[i].Result) {
			t.Fatalf("view %d diverged after round trip:\n%v\nvs\n%v",
				i, x.Exts[i].Result, x2.Exts[i].Result)
		}
		// Sim sets preserved too.
		for u := range x.Exts[i].Result.Sim {
			a, b := x.Exts[i].Result.Sim[u], x2.Exts[i].Result.Sim[u]
			if len(a) != len(b) {
				t.Fatalf("sim sets differ for view %d node %d", i, u)
			}
			for j := range a {
				if a[j] != b[j] {
					t.Fatalf("sim sets differ for view %d node %d", i, u)
				}
			}
		}
	}
	if x2.TotalEdges() != x.TotalEdges() {
		t.Fatalf("TotalEdges mismatch: %d vs %d", x.TotalEdges(), x2.TotalEdges())
	}
}

func TestExtensionsUnmatchedRoundTrip(t *testing.T) {
	g := randomGraph(rand.New(rand.NewSource(1)), 5, []string{"A"}) // only A labels
	_, vs := fig1()                                                 // PM/DBA/PRG views: no matches
	x := Materialize(g, vs)
	var buf bytes.Buffer
	if err := WriteExtensions(&buf, x); err != nil {
		t.Fatalf("WriteExtensions: %v", err)
	}
	x2, err := ReadExtensions(&buf, vs)
	if err != nil {
		t.Fatalf("ReadExtensions: %v", err)
	}
	for i := range x2.Exts {
		if x2.Exts[i].Result.Matched {
			t.Fatalf("unmatched view became matched")
		}
	}
}

func TestReadExtensionsErrors(t *testing.T) {
	_, vs := fig1()
	cases := []string{
		"view WRONG matched=1",          // name mismatch
		"sim 0 1",                       // sim before view
		"view V1 matched=1\nsim 99 0",   // bad node index
		"view V1 matched=1\nematch 0 1", // short ematch
		"view V1 matched=1\nwhat 0",     // unknown directive
		"view V1 matched=1",             // missing V2
		"view V1 matched=1\nview V2 matched=1\nview V2 matched=1", // too many
		"view V1 matched=1\nsim 0 xyz\nview V2 matched=1",         // bad id
	}
	for _, c := range cases {
		if _, err := ReadExtensions(strings.NewReader(c), vs); err == nil {
			t.Errorf("ReadExtensions(%q) succeeded, want error", c)
		}
	}
}
