package view

// Affected-area analysis for insertion maintenance, and the
// distance-aware relevance test for bounded views.
//
// Soundness of the affected area (the lockstep argument): let U be the
// set of sources of the edges a batch inserted, and consider any node v
// that enters sim(a) for some pattern node a. Walk the refinement
// backward: v's new support for a pattern edge (a,b,k) is a path of
// length ≤ k to some w ∈ sim(b), and if that path — and recursively
// every support path under it — avoided all inserted edges, then v's
// membership would have held in the pre-batch graph already (formally:
// the set of new members with no such "lockstep" path is itself a
// simulation on the old graph, hence contained in the old sim sets). So
// every new member has a path to some u ∈ U whose length is bounded by
// the total weight of a directed pattern path from a: hop budget k per
// pattern edge, minus nothing (the inserted edge itself may sit at the
// end). Therefore sim can only grow inside
//
//	{ v : dist(v → U) ≤ R },  R = longest weighted directed path in the
//	                              pattern (∞ if the pattern has a cycle
//	                              or an Unbounded edge)
//
// computed with one multi-source backward BFS from U, shared across
// views; each view filters it by its own radius. The same argument run
// on the post-batch graph covers mixed insert+delete batches.
//
// The relevance ball test (bounded views): an inserted or deleted edge
// (x,y) can affect a bounded view only if it can lie on a path matching
// some pattern edge (a,b,k): a node satisfying a's condition within k-1
// hops backward of x, and a node satisfying b's condition within k-1
// hops forward of y, with back + 1 + fwd ≤ k. If no pattern edge admits
// that, no match-set membership and no recorded distance can change —
// membership support and shortest-path recordings both live on paths
// between condition-matching endpoints. Evaluated on the graph in which
// the edge exists (post-insertion / pre-deletion).

import (
	"sort"

	"graphviews/internal/bitset"
	"graphviews/internal/graph"
	"graphviews/internal/pattern"
)

// affectedArea is the region an insertion batch can grow matches in:
// every node with a path of length ≤ radius to an inserted edge's
// source, with its distance.
type affectedArea struct {
	nodes []graph.NodeID // ascending
	depth []int32        // per graph node; only meaningful for nodes
}

// computeAffected runs the shared multi-source backward BFS from the
// inserted sources. radius < 0 means unbounded (some relevant view has a
// cyclic or * pattern).
func (m *Maintained) computeAffected(srcs []graph.NodeID, radius int64) *affectedArea {
	n := m.G.NumNodes()
	aff := &affectedArea{depth: make([]int32, n)}
	bfs := graph.NewBFS(n)
	maxDepth := -1
	if radius >= 0 {
		maxDepth = int(radius)
	}
	bfs.FromMulti(m.G, srcs, graph.Backward, maxDepth, func(v graph.NodeID, d int) bool {
		aff.depth[v] = int32(d)
		aff.nodes = append(aff.nodes, v)
		return true
	})
	sort.Slice(aff.nodes, func(i, j int) bool { return aff.nodes[i] < aff.nodes[j] })
	return aff
}

// within returns the affected nodes at depth ≤ radius as a bitset over
// [0,n) (radius < 0 keeps all), the membership filter
// SimulateBoundedGrow re-enumerates by.
func (aff *affectedArea) within(n int, radius int64) bitset.Set {
	bits := bitset.New(n)
	for _, v := range aff.nodes {
		if radius < 0 || int64(aff.depth[v]) <= radius {
			bits.Set(int(v))
		}
	}
	return bits
}

// affectedRadius computes the insertion affected-area radius of a
// pattern: the longest weighted directed path (edge weight = bound), or
// -1 when unbounded — the pattern has a cycle (membership cascades can
// wrap arbitrarily) or an Unbounded edge. Uses the reachability closure
// of pattern.Distances for the cycle test.
func affectedRadius(p *pattern.Pattern) int64 {
	for _, e := range p.Edges {
		if e.Bound == pattern.Unbounded {
			return -1
		}
	}
	_, reach := pattern.Distances(p)
	for i := range p.Nodes {
		if reach[i][i] {
			return -1
		}
	}
	// Longest weighted path on the (now known acyclic) pattern by
	// memoized DFS; patterns are tiny.
	memo := make([]int64, len(p.Nodes))
	for i := range memo {
		memo[i] = -1
	}
	var longest func(u int) int64
	longest = func(u int) int64 {
		if memo[u] >= 0 {
			return memo[u]
		}
		var best int64
		for _, ei := range p.OutEdges(u) {
			e := &p.Edges[ei]
			if l := int64(e.Bound) + longest(e.To); l > best {
				best = l
			}
		}
		memo[u] = best
		return best
	}
	var r int64
	for u := range p.Nodes {
		if l := longest(u); l > r {
			r = l
		}
	}
	return r
}

// relevanceBallCap bounds the ball collection of the bounded relevance
// test; past it the test conservatively reports every bounded view
// relevant rather than keep walking a dense neighborhood.
const relevanceBallCap = 1 << 13

// relevanceState tracks which views a batch is relevant to while its
// updates are applied one by one.
type relevanceState struct {
	relevant []bool
	// pendingPlain / pendingBounded count views still unmarked, so the
	// per-update work vanishes once everything is relevant.
	pendingPlain   int
	pendingBounded int
	// maxBound is the largest finite bound over still-pending bounded
	// views: the shared ball radius is maxBound-1.
	maxBound int
	bfs      *graph.BFS
	back     []ballEntry
	fwd      []ballEntry
}

type ballEntry struct {
	v graph.NodeID
	d int32
}

func (m *Maintained) newRelevance() *relevanceState {
	rs := &relevanceState{relevant: make([]bool, len(m.X.Exts))}
	for _, mi := range m.info {
		if mi.plain {
			rs.pendingPlain++
			continue
		}
		rs.pendingBounded++
		if mi.maxBound > rs.maxBound {
			rs.maxBound = mi.maxBound
		}
	}
	return rs
}

// markRelevant folds one effective update (u,v) into the relevance
// state. Must run while the edge exists: after an insertion, before a
// deletion.
func (m *Maintained) markRelevant(rs *relevanceState, u, v graph.NodeID) {
	if rs.pendingPlain > 0 {
		for i, mi := range m.info {
			if rs.relevant[i] || !mi.plain {
				continue
			}
			if edgeRelevantCompiled(m.G, mi.p, mi.compiled, u, v) {
				rs.relevant[i] = true
				rs.pendingPlain--
			}
		}
	}
	if rs.pendingBounded == 0 {
		return
	}
	ok := m.collectBalls(rs, u, v)
	for i, mi := range m.info {
		if rs.relevant[i] || mi.plain {
			continue
		}
		// Patterns with a * edge can be affected by any edge on any
		// path; the ball test cannot bound them (nor an overflowed
		// ball walk anything).
		if mi.hasStar || !ok || m.ballRelevant(mi, rs) {
			rs.relevant[i] = true
			rs.pendingBounded--
		}
	}
}

// collectBalls gathers the backward ball of u and the forward ball of v
// to radius maxBound-1, shared by every pending bounded view's test.
// Reports false when a ball overflows relevanceBallCap (the test then
// degrades to "relevant").
func (m *Maintained) collectBalls(rs *relevanceState, u, v graph.NodeID) bool {
	if rs.bfs == nil {
		rs.bfs = graph.NewBFS(m.G.NumNodes())
	}
	radius := rs.maxBound - 1
	ok := true
	collect := func(src graph.NodeID, dir graph.Direction, buf []ballEntry) []ballEntry {
		buf = buf[:0]
		rs.bfs.FromMulti(m.G, []graph.NodeID{src}, dir, radius, func(w graph.NodeID, d int) bool {
			if len(buf) >= relevanceBallCap {
				ok = false
				return false
			}
			buf = append(buf, ballEntry{w, int32(d)})
			return true
		})
		return buf
	}
	rs.back = collect(u, graph.Backward, rs.back)
	if ok {
		rs.fwd = collect(v, graph.Forward, rs.fwd)
	}
	return ok
}

// ballRelevant runs the distance test for one bounded view against the
// collected balls: some pattern edge (a,b,k) must see a's condition
// within the backward ball and b's within the forward ball with
// back + 1 + fwd ≤ k.
func (m *Maintained) ballRelevant(mi *maintInfo, rs *relevanceState) bool {
	const unreached = int32(1) << 30
	nb := len(mi.compiled)
	minBack := make([]int32, nb)
	minFwd := make([]int32, nb)
	for i := 0; i < nb; i++ {
		minBack[i], minFwd[i] = unreached, unreached
	}
	for _, be := range rs.back {
		for i := 0; i < nb; i++ {
			if be.d < minBack[i] && mi.compiled[i].Matches(m.G, be.v) {
				minBack[i] = be.d
			}
		}
	}
	for _, fe := range rs.fwd {
		for i := 0; i < nb; i++ {
			if fe.d < minFwd[i] && mi.compiled[i].Matches(m.G, fe.v) {
				minFwd[i] = fe.d
			}
		}
	}
	for _, e := range mi.p.Edges {
		if e.Bound == pattern.Unbounded {
			return true // callers short-circuit hasStar; defensive
		}
		if int64(minBack[e.From])+1+int64(minFwd[e.To]) <= int64(e.Bound) {
			return true
		}
	}
	return false
}
