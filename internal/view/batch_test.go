package view

import (
	"math/rand"
	"testing"

	"graphviews/internal/graph"
	"graphviews/internal/pattern"
)

// TestApplyBatchEquivalence: batch maintenance matches rematerialization
// on random update streams.
func TestApplyBatchEquivalence(t *testing.T) {
	labels := []string{"A", "B", "C"}
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 12; trial++ {
		g := randomGraph(rng, 10+rng.Intn(8), labels)
		vs := randomViewSet(rng, labels)
		m := NewMaintained(g.Clone(), vs)
		shadow := g.Clone()

		for round := 0; round < 4; round++ {
			var batch []EdgeUpdate
			for i := 0; i < 8; i++ {
				up := EdgeUpdate{
					From:   graph.NodeID(rng.Intn(shadow.NumNodes())),
					To:     graph.NodeID(rng.Intn(shadow.NumNodes())),
					Delete: rng.Intn(2) == 0,
				}
				batch = append(batch, up)
				if up.Delete {
					shadow.RemoveEdge(up.From, up.To)
				} else {
					shadow.AddEdge(up.From, up.To)
				}
			}
			m.ApplyBatch(batch)
			fresh := Materialize(shadow, vs)
			for i := range fresh.Exts {
				if !m.X.Exts[i].Result.Equal(fresh.Exts[i].Result) {
					t.Fatalf("trial %d round %d: view %d diverged after batch",
						trial, round, i)
				}
			}
		}
	}
}

// TestApplyBatchDeletionsOnly exercises the seeded-refinement path.
func TestApplyBatchDeletionsOnly(t *testing.T) {
	g := graph.New()
	a := g.AddNode("A")
	b1 := g.AddNode("B")
	b2 := g.AddNode("B")
	g.AddEdge(a, b1)
	g.AddEdge(a, b2)

	vs := randomViewSetSingleEdge()
	m := NewMaintained(g, vs)
	if m.X.Exts[0].Result.Size() != 2 {
		t.Fatalf("initial size = %d", m.X.Exts[0].Result.Size())
	}
	applied := m.ApplyBatch([]EdgeUpdate{
		{From: a, To: b1, Delete: true},
		{From: a, To: b1, Delete: true}, // duplicate: no effect
	})
	if applied != 1 {
		t.Fatalf("applied = %d, want 1", applied)
	}
	if m.Stats.Recomputes != 0 {
		t.Fatalf("deletion-only batch must not rematerialize")
	}
	if m.X.Exts[0].Result.Size() != 1 {
		t.Fatalf("size after deletion = %d", m.X.Exts[0].Result.Size())
	}
}

// TestApplyBatchNoop: an empty / ineffective batch changes nothing.
func TestApplyBatchNoop(t *testing.T) {
	g := graph.New()
	a := g.AddNode("A")
	g.AddNode("B")
	vs := randomViewSetSingleEdge()
	m := NewMaintained(g, vs)
	before := m.X.Exts[0]
	if n := m.ApplyBatch(nil); n != 0 {
		t.Fatalf("empty batch applied %d", n)
	}
	if n := m.ApplyBatch([]EdgeUpdate{{From: a, To: a, Delete: true}}); n != 0 {
		t.Fatalf("ineffective batch applied %d", n)
	}
	if m.X.Exts[0] != before {
		t.Fatalf("extension rebuilt for a no-op batch")
	}
}

// randomViewSetSingleEdge returns the one-view set {A -> B}.
func randomViewSetSingleEdge() *Set {
	p := patternAB()
	return NewSet(Define("v", p))
}

// patternAB builds the 2-node pattern A -> B.
func patternAB() *pattern.Pattern {
	p := pattern.New("ab")
	p.AddEdge(p.AddNode("a", "A"), p.AddNode("b", "B"))
	return p
}
