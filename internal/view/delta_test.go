package view

// Tests for the delta-propagation pipeline: coalescing, the change
// feed, the insertion grow path (no full rematerialize when the
// affected area is a strict subset of the view), the bounded-view
// distance-aware relevance test, and adversarial update streams checked
// byte-identical against rematerialization over every Reader backend at
// several worker counts.

import (
	"math/rand"
	"testing"

	"graphviews/internal/graph"
	"graphviews/internal/pattern"
)

// TestCoalesce pins the net-per-edge semantics: last op wins in
// first-occurrence order, overwrites are counted.
func TestCoalesce(t *testing.T) {
	e := func(u, v int, del bool) EdgeUpdate {
		return EdgeUpdate{From: graph.NodeID(u), To: graph.NodeID(v), Delete: del}
	}
	net, dropped := Coalesce([]EdgeUpdate{
		e(0, 1, false), // overwritten by the delete below
		e(2, 3, false),
		e(0, 1, true),
		e(2, 3, false), // duplicate insert: dedup
		e(4, 5, true),
		e(4, 5, false), // delete then re-insert nets to insert
	})
	if dropped != 3 {
		t.Fatalf("dropped = %d, want 3", dropped)
	}
	want := []EdgeUpdate{e(0, 1, true), e(2, 3, false), e(4, 5, false)}
	if len(net) != len(want) {
		t.Fatalf("net = %v, want %v", net, want)
	}
	for i := range want {
		if net[i] != want[i] {
			t.Fatalf("net[%d] = %v, want %v", i, net[i], want[i])
		}
	}
	// Tiny streams pass through untouched.
	single := []EdgeUpdate{e(7, 8, false)}
	net, dropped = Coalesce(single)
	if dropped != 0 || len(net) != 1 || net[0] != single[0] {
		t.Fatalf("singleton stream altered: %v (%d dropped)", net, dropped)
	}
}

// TestInsertDeltaPropagation is the acceptance assertion of the grow
// path: a relevant single-edge insertion into a matched plain view whose
// affected area is a strict subset of the graph must refresh by delta
// propagation — never by full rematerialization — and still land on
// exactly the rematerialized extension.
func TestInsertDeltaPropagation(t *testing.T) {
	g := graph.New()
	a1 := g.AddNode("A")
	b1 := g.AddNode("B")
	a2 := g.AddNode("A")
	b2 := g.AddNode("B")
	// A far-away matched region that must stay outside the affected area.
	g.AddEdge(a1, b1)

	vs := NewSet(Define("v", patternAB()))
	m := NewMaintained(g, vs)
	if !m.X.Exts[0].Result.Matched {
		t.Fatal("view must match initially")
	}

	if !m.InsertEdge(a2, b2) {
		t.Fatal("insert failed")
	}
	if m.Stats.Recomputes != 0 {
		t.Fatalf("relevant insertion took the rematerialize path: %+v", m.Stats)
	}
	if m.Stats.DeltaProps != 1 {
		t.Fatalf("DeltaProps = %d, want 1 (stats %+v)", m.Stats.DeltaProps, m.Stats)
	}
	if m.Stats.AffectedPairs == 0 {
		t.Fatalf("AffectedPairs = 0, want > 0 after a growing insertion")
	}
	fresh := Materialize(m.G, vs)
	if !m.X.Exts[0].Result.Equal(fresh.Exts[0].Result) {
		t.Fatal("delta propagation diverged from rematerialization")
	}
	if m.X.Exts[0].Result.Size() != 2 {
		t.Fatalf("size = %d, want 2", m.X.Exts[0].Result.Size())
	}
}

// TestBoundedInsertRelevance exercises the distance-aware relevance test
// that replaced the bounded-view "always rematerialize" pessimism: an
// edge farther from any condition-matching node than the bound admits
// must skip, while an edge that closes a within-bound path must refresh
// by delta propagation — with the recorded distance index updated.
func TestBoundedInsertRelevance(t *testing.T) {
	g := graph.New()
	a := g.AddNode("A")
	b := g.AddNode("B")
	m1 := g.AddNode("M")
	m2 := g.AddNode("M")
	// Chain far from any A/B pair: z-nodes only.
	z1 := g.AddNode("Z")
	z2 := g.AddNode("Z")
	z3 := g.AddNode("Z")
	g.AddEdge(a, m1)
	g.AddEdge(m1, b) // A -> M -> B: within bound 2

	p := pattern.New("ab2")
	p.AddBoundedEdge(p.AddNode("a", "A"), p.AddNode("b", "B"), 2)
	vs := NewSet(Define("v", p))
	m := NewMaintained(g, vs)
	if !m.X.Exts[0].Result.Matched {
		t.Fatal("bounded view must match initially")
	}

	// z1->z2: no A within 1 hop behind z1, no B within 1 hop ahead of z2.
	if !m.InsertEdge(z1, z2) {
		t.Fatal("insert failed")
	}
	if m.Stats.Skips != 1 || m.Stats.Recomputes != 0 || m.Stats.DeltaProps != 0 {
		t.Fatalf("irrelevant bounded insertion: %+v", m.Stats)
	}

	// z2->z3 likewise.
	if !m.InsertEdge(z2, z3) {
		t.Fatal("insert failed")
	}
	if m.Stats.Skips != 2 {
		t.Fatalf("second irrelevant insertion: %+v", m.Stats)
	}

	// a->m2, m2->b: the second insert closes a new A->B path of length 2
	// and must propagate (m2 was irrelevant alone: no B within 1 of m2).
	m.InsertEdge(a, m2)
	if !m.InsertEdge(m2, b) {
		t.Fatal("insert failed")
	}
	if m.Stats.Recomputes != 0 {
		t.Fatalf("relevant bounded insertion rematerialized: %+v", m.Stats)
	}
	if m.Stats.DeltaProps == 0 {
		t.Fatalf("relevant bounded insertion did not propagate: %+v", m.Stats)
	}
	fresh := Materialize(m.G, vs)
	if !m.X.Exts[0].Result.Equal(fresh.Exts[0].Result) {
		t.Fatal("bounded delta propagation diverged from rematerialization")
	}

	// A direct a->b edge shortens the recorded distance from 2 to 1; the
	// grow path must patch the distance index, not just membership.
	if !m.InsertEdge(a, b) {
		t.Fatal("insert failed")
	}
	fresh = Materialize(m.G, vs)
	if !m.X.Exts[0].Result.Equal(fresh.Exts[0].Result) {
		t.Fatal("distance shortening diverged from rematerialization")
	}
	if d := m.X.Exts[0].Result.Edges[0].Dists; len(d) == 0 || d[0] != 1 {
		t.Fatalf("recorded distance not shortened: %v", d)
	}
}

// TestFeedCoalescesAndFlushes drives the change-feed stage: submits
// coalesce into a net batch, backlog tracks it, flush applies it in one
// propagation pass and credits the coalesced-away count.
func TestFeedCoalescesAndFlushes(t *testing.T) {
	g := graph.New()
	a := g.AddNode("A")
	b1 := g.AddNode("B")
	b2 := g.AddNode("B")
	g.AddEdge(a, b1)
	vs := NewSet(Define("v", patternAB()))
	m := NewMaintained(g, vs)
	f := NewFeed(m)

	if n := f.Submit(EdgeUpdate{From: a, To: b2}); n != 1 {
		t.Fatalf("backlog = %d, want 1", n)
	}
	// Cancel it, then reinstate: still one net op.
	f.Submit(EdgeUpdate{From: a, To: b2, Delete: true})
	if n := f.Submit(EdgeUpdate{From: a, To: b2}); n != 1 {
		t.Fatalf("backlog after churn = %d, want 1", n)
	}
	if f.Backlog() != 1 {
		t.Fatalf("Backlog() = %d, want 1", f.Backlog())
	}

	if applied := f.Flush(); applied != 1 {
		t.Fatalf("Flush applied = %d, want 1", applied)
	}
	if f.Backlog() != 0 {
		t.Fatalf("backlog after flush = %d", f.Backlog())
	}
	if m.Stats.CoalescedAway != 2 {
		t.Fatalf("CoalescedAway = %d, want 2", m.Stats.CoalescedAway)
	}
	if m.Stats.Batches != 1 || m.Version() != 1 {
		t.Fatalf("one flush must commit one batch: %+v version=%d", m.Stats, m.Version())
	}
	fresh := Materialize(m.G, vs)
	if !m.X.Exts[0].Result.Equal(fresh.Exts[0].Result) {
		t.Fatal("feed flush diverged from rematerialization")
	}
	// Flushing an empty feed is free.
	if applied := f.Flush(); applied != 0 {
		t.Fatalf("empty flush applied %d", applied)
	}
}

// TestForceRematerializeBaseline: the benchmark baseline mode must
// produce identical extensions while taking the recompute path.
func TestForceRematerializeBaseline(t *testing.T) {
	labels := []string{"A", "B", "C"}
	rng := rand.New(rand.NewSource(193))
	g := randomGraph(rng, 12, labels)
	vs := randomViewSet(rng, labels)
	delta := NewMaintained(g.Clone(), vs)
	remat := NewMaintained(g.Clone(), vs)
	remat.SetForceRematerialize(true)

	for step := 0; step < 20; step++ {
		up := EdgeUpdate{
			From:   graph.NodeID(rng.Intn(g.NumNodes())),
			To:     graph.NodeID(rng.Intn(g.NumNodes())),
			Delete: rng.Intn(3) == 0,
		}
		delta.ApplyBatch([]EdgeUpdate{up})
		remat.ApplyBatch([]EdgeUpdate{up})
		for i := range delta.X.Exts {
			if !delta.X.Exts[i].Result.Equal(remat.X.Exts[i].Result) {
				t.Fatalf("step %d: delta and remat extensions diverged", step)
			}
		}
	}
	if remat.Stats.DeltaProps != 0 {
		t.Fatalf("baseline took the delta path: %+v", remat.Stats)
	}
	if delta.Stats.Recomputes > remat.Stats.Recomputes {
		t.Fatalf("delta path recomputed more than the baseline: %+v vs %+v",
			delta.Stats, remat.Stats)
	}
}

// TestAdversarialDeltaStreams is the satellite coverage matrix:
// insert-heavy, cancel-heavy and interleaved streams × workers {1,4},
// with maintained extensions checked byte-identical (Result.Equal spans
// sim sets, match pairs and recorded distances) against fresh
// materialization over all three Reader backends — mutable, Frozen and
// Sharded — after every batch.
func TestAdversarialDeltaStreams(t *testing.T) {
	labels := []string{"A", "B", "C"}
	type stream struct {
		name string
		gen  func(rng *rand.Rand, n int, m *Maintained) []EdgeUpdate
	}
	streams := []stream{
		{"insert-heavy", func(rng *rand.Rand, n int, m *Maintained) []EdgeUpdate {
			var batch []EdgeUpdate
			for i := 0; i < 12; i++ {
				up := EdgeUpdate{
					From:   graph.NodeID(rng.Intn(n)),
					To:     graph.NodeID(rng.Intn(n)),
					Delete: rng.Intn(8) == 0,
				}
				batch = append(batch, up)
			}
			return batch
		}},
		{"cancel-heavy", func(rng *rand.Rand, n int, m *Maintained) []EdgeUpdate {
			var batch []EdgeUpdate
			for i := 0; i < 6; i++ {
				u := graph.NodeID(rng.Intn(n))
				v := graph.NodeID(rng.Intn(n))
				// Insert+delete churn on the same edge: most ops coalesce away.
				batch = append(batch,
					EdgeUpdate{From: u, To: v},
					EdgeUpdate{From: u, To: v, Delete: true},
					EdgeUpdate{From: u, To: v, Delete: rng.Intn(2) == 0})
			}
			return batch
		}},
		{"interleaved", func(rng *rand.Rand, n int, m *Maintained) []EdgeUpdate {
			var batch []EdgeUpdate
			for i := 0; i < 10; i++ {
				if i%3 == 0 {
					if pr, ok := someMatchedEdge(m); ok {
						batch = append(batch, EdgeUpdate{From: pr[0], To: pr[1], Delete: true})
						continue
					}
				}
				batch = append(batch, EdgeUpdate{
					From:   graph.NodeID(rng.Intn(n)),
					To:     graph.NodeID(rng.Intn(n)),
					Delete: rng.Intn(4) == 0,
				})
			}
			return batch
		}},
	}

	for _, st := range streams {
		for _, workers := range []int{1, 4} {
			t.Run(st.name, func(t *testing.T) {
				rng := rand.New(rand.NewSource(int64(211 + workers)))
				for trial := 0; trial < 4; trial++ {
					g := randomGraph(rng, 10+rng.Intn(6), labels)
					vs := randomViewSet(rng, labels)
					m := NewMaintained(g.Clone(), vs)
					m.SetParallelism(workers)
					shadow := g.Clone()

					for round := 0; round < 4; round++ {
						batch := st.gen(rng, shadow.NumNodes(), m)
						m.ApplyBatch(batch)
						for _, up := range batch {
							if up.Delete {
								shadow.RemoveEdge(up.From, up.To)
							} else {
								shadow.AddEdge(up.From, up.To)
							}
						}
						oracles := map[string]*Extensions{
							"mutable": Materialize(shadow, vs),
							"frozen":  Materialize(graph.Freeze(shadow), vs),
							"sharded": Materialize(graph.Shard(shadow, 3), vs),
						}
						for backend, fresh := range oracles {
							for i := range fresh.Exts {
								if !m.X.Exts[i].Result.Equal(fresh.Exts[i].Result) {
									t.Fatalf("%s/workers=%d trial %d round %d: view %d diverged vs %s oracle",
										st.name, workers, trial, round, i, backend)
								}
							}
						}
					}
					if st.name == "cancel-heavy" && m.Stats.CoalescedAway == 0 {
						t.Fatalf("cancel-heavy stream coalesced nothing: %+v", m.Stats)
					}
				}
			})
		}
	}
}
