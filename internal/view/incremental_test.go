package view

// Regression tests for the deletion-relevance semantics: the skip test
// for a removed edge is decided against the pre-deletion graph (the only
// state the edge ever matched in), for unit deletions and inside mixed
// batches alike. The randomized tests compare maintained extensions
// against full rematerialization over adversarial update streams that
// repeatedly delete exactly the edges that carried matches.

import (
	"math/rand"
	"testing"

	"graphviews/internal/graph"
)

// TestDeleteEdgeRelevanceRefreshes: deleting the only match-carrying
// edge must refresh the extension (not skip), and the skip path must
// still fire for edges no pattern edge could map to.
func TestDeleteEdgeRelevanceRefreshes(t *testing.T) {
	g := graph.New()
	a := g.AddNode("A")
	b := g.AddNode("B")
	z1 := g.AddNode("Z")
	z2 := g.AddNode("Z")
	g.AddEdge(a, b)
	g.AddEdge(z1, z2)

	m := NewMaintained(g, NewSet(Define("v", patternAB())))
	if !m.X.Exts[0].Result.Matched {
		t.Fatal("view must match initially")
	}

	if !m.DeleteEdge(z1, z2) {
		t.Fatal("edge existed")
	}
	if m.Stats.Skips != 1 {
		t.Fatalf("irrelevant deletion must skip: Skips = %d", m.Stats.Skips)
	}
	if !m.X.Exts[0].Result.Matched {
		t.Fatal("irrelevant deletion changed the extension")
	}

	if !m.DeleteEdge(a, b) {
		t.Fatal("edge existed")
	}
	if m.X.Exts[0].Result.Matched {
		t.Fatal("deleting the only A->B edge must empty the extension")
	}
	if m.DeleteEdge(a, b) {
		t.Fatal("double deletion reported as applied")
	}
}

// TestMaintainedAdversarialDeletions hammers unit updates that target
// edges currently carrying matches — the stream most sensitive to
// deletion-relevance bugs — and checks against rematerialization after
// every step. Views include bounded ones (always-relevant path).
func TestMaintainedAdversarialDeletions(t *testing.T) {
	labels := []string{"A", "B", "C"}
	rng := rand.New(rand.NewSource(131))
	for trial := 0; trial < 10; trial++ {
		g := randomGraph(rng, 8+rng.Intn(8), labels)
		vs := randomViewSet(rng, labels)
		m := NewMaintained(g.Clone(), vs)
		shadow := g.Clone()

		for step := 0; step < 25; step++ {
			var u, v graph.NodeID
			// Half the time, delete an edge that is currently part of
			// some extension's match set; otherwise mutate at random.
			if step%2 == 0 {
				if pr, ok := someMatchedEdge(m); ok {
					u, v = pr[0], pr[1]
					m.DeleteEdge(u, v)
					shadow.RemoveEdge(u, v)
				} else {
					continue
				}
			} else {
				u = graph.NodeID(rng.Intn(shadow.NumNodes()))
				v = graph.NodeID(rng.Intn(shadow.NumNodes()))
				if rng.Intn(2) == 0 {
					m.InsertEdge(u, v)
					shadow.AddEdge(u, v)
				} else {
					m.DeleteEdge(u, v)
					shadow.RemoveEdge(u, v)
				}
			}
			fresh := Materialize(shadow, vs)
			for i := range fresh.Exts {
				if !m.X.Exts[i].Result.Equal(fresh.Exts[i].Result) {
					t.Fatalf("trial %d step %d: view %d diverged from rematerialization",
						trial, step, i)
				}
			}
		}
	}
}

// TestApplyBatchDeleteThenReinsert: a batch that deletes a matched edge
// and re-inserts it coalesces to a single net insert op, which against a
// graph already holding the edge is a no-op: zero effective updates,
// one coalesced-away op, extension untouched and still exactly what a
// fresh materialization would produce.
func TestApplyBatchDeleteThenReinsert(t *testing.T) {
	g := graph.New()
	a := g.AddNode("A")
	b := g.AddNode("B")
	g.AddEdge(a, b)
	m := NewMaintained(g, NewSet(Define("v", patternAB())))
	before := m.X.Exts[0]

	applied := m.ApplyBatch([]EdgeUpdate{
		{From: a, To: b, Delete: true},
		{From: a, To: b},
	})
	if applied != 0 {
		t.Fatalf("applied = %d, want 0 (delete+reinsert cancels)", applied)
	}
	if m.Stats.CoalescedAway != 1 {
		t.Fatalf("CoalescedAway = %d, want 1", m.Stats.CoalescedAway)
	}
	if m.X.Exts[0] != before {
		t.Fatalf("cancelled batch rebuilt the extension")
	}
	if !m.X.Exts[0].Result.Matched || m.X.Exts[0].Result.Size() != 1 {
		t.Fatalf("extension after delete+reinsert: %v", m.X.Exts[0].Result)
	}
	if m.Version() != 0 {
		t.Fatalf("version = %d, want 0 (no effective updates)", m.Version())
	}
}

// TestApplyBatchRandomizedMixed compares batched maintenance against
// rematerialization over streams that mix deletions of matched edges,
// random insertions and ineffective updates, including bounded views.
func TestApplyBatchRandomizedMixed(t *testing.T) {
	labels := []string{"A", "B", "C"}
	rng := rand.New(rand.NewSource(137))
	for trial := 0; trial < 10; trial++ {
		g := randomGraph(rng, 10+rng.Intn(6), labels)
		vs := randomViewSet(rng, labels)
		m := NewMaintained(g.Clone(), vs)
		shadow := g.Clone()

		for round := 0; round < 3; round++ {
			var batch []EdgeUpdate
			for i := 0; i < 10; i++ {
				var up EdgeUpdate
				if i%3 == 0 {
					if pr, ok := someMatchedEdge(m); ok {
						up = EdgeUpdate{From: pr[0], To: pr[1], Delete: true}
					} else {
						continue
					}
				} else {
					up = EdgeUpdate{
						From:   graph.NodeID(rng.Intn(shadow.NumNodes())),
						To:     graph.NodeID(rng.Intn(shadow.NumNodes())),
						Delete: rng.Intn(3) == 0,
					}
				}
				batch = append(batch, up)
				if up.Delete {
					shadow.RemoveEdge(up.From, up.To)
				} else {
					shadow.AddEdge(up.From, up.To)
				}
			}
			m.ApplyBatch(batch)
			fresh := Materialize(shadow, vs)
			for i := range fresh.Exts {
				if !m.X.Exts[i].Result.Equal(fresh.Exts[i].Result) {
					t.Fatalf("trial %d round %d: view %d diverged after mixed batch",
						trial, round, i)
				}
			}
		}
	}
}

// someMatchedEdge returns a pair currently present in some extension's
// match set (and still present as a graph edge), if any.
func someMatchedEdge(m *Maintained) ([2]graph.NodeID, bool) {
	for _, ext := range m.X.Exts {
		if !ext.Result.Matched {
			continue
		}
		for ei := range ext.Result.Edges {
			for _, pr := range ext.Result.Edges[ei].Pairs {
				if m.G.HasEdge(pr.Src, pr.Dst) {
					return [2]graph.NodeID{pr.Src, pr.Dst}, true
				}
			}
		}
	}
	return [2]graph.NodeID{}, false
}
