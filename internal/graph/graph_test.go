package graph

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddNodeAndLabels(t *testing.T) {
	g := New()
	a := g.AddNode("PM")
	b := g.AddNode("DBA")
	c := g.AddNode("PM")
	if g.NumNodes() != 3 {
		t.Fatalf("NumNodes = %d, want 3", g.NumNodes())
	}
	if g.LabelName(a) != "PM" || g.LabelName(b) != "DBA" || g.LabelName(c) != "PM" {
		t.Fatalf("labels wrong: %q %q %q", g.LabelName(a), g.LabelName(b), g.LabelName(c))
	}
	if g.Label(a) != g.Label(c) {
		t.Fatalf("same label should intern to same id")
	}
	if g.Label(a) == g.Label(b) {
		t.Fatalf("different labels must not share ids")
	}
}

func TestAddRemoveEdge(t *testing.T) {
	g := New()
	a, b, c := g.AddNode("A"), g.AddNode("B"), g.AddNode("C")
	if !g.AddEdge(a, b) {
		t.Fatalf("AddEdge(a,b) = false, want true")
	}
	if g.AddEdge(a, b) {
		t.Fatalf("duplicate AddEdge should report false")
	}
	g.AddEdge(a, c)
	g.AddEdge(b, c)
	if g.NumEdges() != 3 {
		t.Fatalf("NumEdges = %d, want 3", g.NumEdges())
	}
	if !g.HasEdge(a, b) || !g.HasEdge(a, c) || !g.HasEdge(b, c) {
		t.Fatalf("HasEdge missing edges")
	}
	if g.HasEdge(b, a) {
		t.Fatalf("HasEdge(b,a) should be false (directed)")
	}
	if got := g.Out(a); len(got) != 2 || got[0] != b || got[1] != c {
		t.Fatalf("Out(a) = %v", got)
	}
	if got := g.In(c); len(got) != 2 || got[0] != a || got[1] != b {
		t.Fatalf("In(c) = %v", got)
	}
	if !g.RemoveEdge(a, b) {
		t.Fatalf("RemoveEdge(a,b) = false")
	}
	if g.RemoveEdge(a, b) {
		t.Fatalf("second RemoveEdge should report false")
	}
	if g.HasEdge(a, b) || g.NumEdges() != 2 {
		t.Fatalf("edge (a,b) not removed")
	}
	if got := g.In(b); len(got) != 0 {
		t.Fatalf("In(b) = %v, want empty", got)
	}
}

func TestSelfLoop(t *testing.T) {
	g := New()
	a := g.AddNode("A")
	if !g.AddEdge(a, a) {
		t.Fatalf("self loop insert failed")
	}
	if !g.HasEdge(a, a) {
		t.Fatalf("self loop missing")
	}
	b := NewBFS(g.NumNodes())
	if d := b.HopDistance(g, a, a, -1); d != 1 {
		t.Fatalf("HopDistance(a,a) = %d, want 1 (self loop)", d)
	}
}

func TestAttrs(t *testing.T) {
	g := New()
	v := g.AddNode("video")
	g.SetAttr(v, "age", 120)
	g.SetAttrString(v, "category", "Music")
	if got, ok := g.Attr(v, "age"); !ok || got != 120 {
		t.Fatalf("Attr(age) = %d,%v", got, ok)
	}
	cat, ok := g.Attr(v, "category")
	if !ok {
		t.Fatalf("category missing")
	}
	if LabelID(cat) != g.Interner().Lookup("Music") {
		t.Fatalf("categorical attr not interned consistently")
	}
	if _, ok := g.Attr(v, "rate"); ok {
		t.Fatalf("unset attribute should be absent")
	}
}

func TestNodesWithLabel(t *testing.T) {
	g := New()
	g.AddNode("A")
	g.AddNode("B")
	g.AddNode("A")
	as := g.NodesWithLabelName("A")
	if len(as) != 2 || as[0] != 0 || as[1] != 2 {
		t.Fatalf("NodesWithLabelName(A) = %v", as)
	}
	if got := g.NodesWithLabelName("missing"); got != nil {
		t.Fatalf("unknown label should yield nil, got %v", got)
	}
	// Index must refresh after adding nodes.
	g.AddNode("A")
	if got := g.NodesWithLabelName("A"); len(got) != 3 {
		t.Fatalf("label index stale after AddNode: %v", got)
	}
}

func TestClone(t *testing.T) {
	g := New()
	a, b := g.AddNode("A"), g.AddNode("B")
	g.AddEdge(a, b)
	g.SetAttr(a, "x", 7)
	c := g.Clone()
	c.AddEdge(b, a)
	c.SetAttr(a, "x", 9)
	if g.HasEdge(b, a) {
		t.Fatalf("clone mutation leaked into original (edges)")
	}
	if v, _ := g.Attr(a, "x"); v != 7 {
		t.Fatalf("clone mutation leaked into original (attrs): %d", v)
	}
	if !c.HasEdge(a, b) || !c.HasEdge(b, a) {
		t.Fatalf("clone missing edges")
	}
}

func TestBFSBounded(t *testing.T) {
	// path a -> b -> c -> d plus shortcut a -> c
	g := New()
	ids := make([]NodeID, 4)
	for i := range ids {
		ids[i] = g.AddNode("n")
	}
	g.AddEdge(ids[0], ids[1])
	g.AddEdge(ids[1], ids[2])
	g.AddEdge(ids[2], ids[3])
	g.AddEdge(ids[0], ids[2])

	b := NewBFS(g.NumNodes())
	dist := map[NodeID]int{}
	b.From(g, ids[0], Forward, -1, func(v NodeID, d int) bool {
		dist[v] = d
		return true
	})
	want := map[NodeID]int{ids[1]: 1, ids[2]: 1, ids[3]: 2}
	for v, d := range want {
		if dist[v] != d {
			t.Fatalf("dist[%d] = %d, want %d", v, dist[v], d)
		}
	}
	if _, ok := dist[ids[0]]; ok {
		t.Fatalf("source visited without a cycle")
	}

	// bounded: depth 1 must not reach d
	count := 0
	b.From(g, ids[0], Forward, 1, func(v NodeID, d int) bool {
		if d > 1 {
			t.Fatalf("visited at depth %d with bound 1", d)
		}
		count++
		return true
	})
	if count != 2 {
		t.Fatalf("bounded BFS visited %d nodes, want 2", count)
	}

	// backward from d
	got := map[NodeID]int{}
	b.From(g, ids[3], Backward, -1, func(v NodeID, d int) bool {
		got[v] = d
		return true
	})
	if got[ids[2]] != 1 || got[ids[1]] != 2 || got[ids[0]] != 2 {
		t.Fatalf("backward distances wrong: %v", got)
	}
}

func TestBFSCycleToSource(t *testing.T) {
	// a -> b -> c -> a
	g := New()
	a, b, c := g.AddNode("x"), g.AddNode("x"), g.AddNode("x")
	g.AddEdge(a, b)
	g.AddEdge(b, c)
	g.AddEdge(c, a)
	bfs := NewBFS(g.NumNodes())
	if d := bfs.HopDistance(g, a, a, -1); d != 3 {
		t.Fatalf("cycle distance = %d, want 3", d)
	}
	if d := bfs.HopDistance(g, a, a, 2); d != -1 {
		t.Fatalf("bounded cycle distance = %d, want -1", d)
	}
}

func TestFromMulti(t *testing.T) {
	// two sources converging: s1 -> m, s2 -> m -> t
	g := New()
	s1, s2, m, tt := g.AddNode("n"), g.AddNode("n"), g.AddNode("n"), g.AddNode("n")
	g.AddEdge(s1, m)
	g.AddEdge(s2, m)
	g.AddEdge(m, tt)
	b := NewBFS(g.NumNodes())
	dist := map[NodeID]int{}
	b.FromMulti(g, []NodeID{s1, s2}, Forward, -1, func(v NodeID, d int) bool {
		dist[v] = d
		return true
	})
	if dist[s1] != 0 || dist[s2] != 0 || dist[m] != 1 || dist[tt] != 2 {
		t.Fatalf("multi-source distances: %v", dist)
	}
}

func TestHopDistanceUnreachable(t *testing.T) {
	g := New()
	a, b := g.AddNode("A"), g.AddNode("B")
	bfs := NewBFS(2)
	if d := bfs.HopDistance(g, a, b, -1); d != -1 {
		t.Fatalf("unreachable distance = %d, want -1", d)
	}
	if bfs.Reachable(g, a, b) {
		t.Fatalf("Reachable = true for disconnected nodes")
	}
}

// reachBrute computes reachability by DFS for cross-checking.
func reachBrute(g *Graph, src NodeID) map[NodeID]bool {
	seen := map[NodeID]bool{}
	var stack []NodeID
	push := func(v NodeID) {
		if !seen[v] {
			seen[v] = true
			stack = append(stack, v)
		}
	}
	for _, w := range g.Out(src) {
		push(w)
	}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range g.Out(v) {
			push(w)
		}
	}
	return seen
}

func TestBFSAgainstBruteForceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(20)
		g := New()
		for i := 0; i < n; i++ {
			g.AddNode("n")
		}
		m := rng.Intn(3 * n)
		for i := 0; i < m; i++ {
			g.AddEdge(NodeID(rng.Intn(n)), NodeID(rng.Intn(n)))
		}
		b := NewBFS(n)
		src := NodeID(rng.Intn(n))
		want := reachBrute(g, src)
		got := map[NodeID]bool{}
		b.From(g, src, Forward, -1, func(v NodeID, d int) bool {
			got[v] = true
			return true
		})
		for v := NodeID(0); int(v) < n; v++ {
			if want[v] != got[v] {
				t.Fatalf("trial %d: reachability of %d: brute=%v bfs=%v", trial, v, want[v], got[v])
			}
		}
	}
}

func TestSCCSimple(t *testing.T) {
	// Two 2-cycles joined by a bridge, plus an isolated node.
	g := New()
	a, b, c, d, e := g.AddNode("n"), g.AddNode("n"), g.AddNode("n"), g.AddNode("n"), g.AddNode("n")
	g.AddEdge(a, b)
	g.AddEdge(b, a)
	g.AddEdge(b, c)
	g.AddEdge(c, d)
	g.AddEdge(d, c)
	res := SCC(g)
	if len(res.Comps) != 3 {
		t.Fatalf("got %d comps, want 3", len(res.Comps))
	}
	if res.CompOf[a] != res.CompOf[b] {
		t.Fatalf("a,b should share a component")
	}
	if res.CompOf[c] != res.CompOf[d] {
		t.Fatalf("c,d should share a component")
	}
	if res.CompOf[a] == res.CompOf[c] || res.CompOf[a] == res.CompOf[e] {
		t.Fatalf("distinct SCCs merged")
	}
	if !res.IsSingleton(g, res.CompOf[e]) {
		t.Fatalf("e should be a singleton")
	}
	if res.IsSingleton(g, res.CompOf[a]) {
		t.Fatalf("{a,b} is not a singleton")
	}
}

func TestSCCSelfLoopNotSingleton(t *testing.T) {
	g := New()
	a := g.AddNode("n")
	g.AddEdge(a, a)
	res := SCC(g)
	if res.IsSingleton(g, res.CompOf[a]) {
		t.Fatalf("self-loop node must not be a singleton SCC")
	}
}

// sccBrute computes "same SCC" via mutual reachability.
func sccBrute(g *Graph) [][]bool {
	n := g.NumNodes()
	reach := make([][]bool, n)
	for i := 0; i < n; i++ {
		reach[i] = make([]bool, n)
		for v := range reachBrute(g, NodeID(i)) {
			reach[i][v] = true
		}
	}
	same := make([][]bool, n)
	for i := 0; i < n; i++ {
		same[i] = make([]bool, n)
		for j := 0; j < n; j++ {
			same[i][j] = i == j || (reach[i][j] && reach[j][i])
		}
	}
	return same
}

func TestSCCAgainstBruteForceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(15)
		g := New()
		for i := 0; i < n; i++ {
			g.AddNode("n")
		}
		for i := 0; i < rng.Intn(3*n); i++ {
			g.AddEdge(NodeID(rng.Intn(n)), NodeID(rng.Intn(n)))
		}
		res := SCC(g)
		same := sccBrute(g)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				got := res.CompOf[i] == res.CompOf[j]
				if got != same[i][j] {
					t.Fatalf("trial %d: same-SCC(%d,%d) = %v, want %v", trial, i, j, got, same[i][j])
				}
			}
		}
	}
}

func TestRanks(t *testing.T) {
	// DAG: a -> b -> c, a -> c. Ranks: c=0, b=1, a=2.
	g := New()
	a, b, c := g.AddNode("n"), g.AddNode("n"), g.AddNode("n")
	g.AddEdge(a, b)
	g.AddEdge(b, c)
	g.AddEdge(a, c)
	r := Ranks(g)
	if r[c] != 0 || r[b] != 1 || r[a] != 2 {
		t.Fatalf("ranks = %v", r)
	}
}

func TestRanksCycle(t *testing.T) {
	// a -> {b <-> c} -> d : d rank 0, the SCC {b,c} rank 1, a rank 2.
	g := New()
	a, b, c, d := g.AddNode("n"), g.AddNode("n"), g.AddNode("n"), g.AddNode("n")
	g.AddEdge(a, b)
	g.AddEdge(b, c)
	g.AddEdge(c, b)
	g.AddEdge(c, d)
	r := Ranks(g)
	if r[d] != 0 || r[b] != 1 || r[c] != 1 || r[a] != 2 {
		t.Fatalf("ranks = %v", r)
	}
}

func TestMarkerEpochWrap(t *testing.T) {
	m := NewMarker(4)
	m.cur = ^uint32(0) - 1
	m.Reset()
	m.Mark(1)
	m.Reset() // wraps to 0 then forced to 1 with cleared stamps
	if m.Has(1) {
		t.Fatalf("mark survived epoch wrap")
	}
	m.Mark(2)
	if !m.Has(2) || m.Has(3) {
		t.Fatalf("marker broken after wrap")
	}
}

func TestIORoundTrip(t *testing.T) {
	g := New()
	a := g.AddNode("PM")
	b := g.AddNode("video label") // label with a space
	g.SetAttr(a, "age", 42)
	g.SetAttrString(b, "category", "Music")
	g.AddEdge(a, b)
	g.AddEdge(b, a)

	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatalf("Write: %v", err)
	}
	g2, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if g2.NumNodes() != 2 || g2.NumEdges() != 2 {
		t.Fatalf("round trip size mismatch: %v", g2)
	}
	if g2.LabelName(0) != "PM" || g2.LabelName(1) != "video label" {
		t.Fatalf("labels: %q %q", g2.LabelName(0), g2.LabelName(1))
	}
	if v, ok := g2.Attr(0, "age"); !ok || v != 42 {
		t.Fatalf("attr age = %d,%v", v, ok)
	}
	if !g2.HasEdge(0, 1) || !g2.HasEdge(1, 0) {
		t.Fatalf("edges lost in round trip")
	}
	// Categorical attributes must survive semantically: the value maps to
	// "Music" under the *new* graph's interner.
	cat, ok := g2.Attr(1, "category")
	if !ok {
		t.Fatalf("category lost in round trip")
	}
	if LabelID(cat) != g2.Interner().Lookup("Music") {
		t.Fatalf("categorical attribute broken after round trip: %d", cat)
	}
	if !g2.IsCategorical("category") || g2.IsCategorical("age") {
		t.Fatalf("categorical key tracking lost in round trip")
	}
}

func TestReadErrors(t *testing.T) {
	cases := []string{
		"node",                // missing label
		"edge 0 1",            // out of range
		"node A\nedge 0",      // malformed edge
		"node A\nedge 0 x",    // non-numeric endpoint
		"frobnicate",          // unknown directive
		"node A key",          // attribute without '='
		"node A k=notanumber", // bad value
		"node A\nedge 0 5",    // endpoint out of range
	}
	for _, c := range cases {
		if _, err := Read(bytes.NewBufferString(c)); err == nil {
			t.Errorf("Read(%q) succeeded, want error", c)
		}
	}
}

func TestDOT(t *testing.T) {
	g := New()
	a, b := g.AddNode("A"), g.AddNode("B")
	g.AddEdge(a, b)
	var buf bytes.Buffer
	if err := DOT(&buf, g, "t"); err != nil {
		t.Fatalf("DOT: %v", err)
	}
	s := buf.String()
	for _, frag := range []string{"digraph", `label="A"`, "n0 -> n1"} {
		if !bytes.Contains([]byte(s), []byte(frag)) {
			t.Fatalf("DOT output missing %q:\n%s", frag, s)
		}
	}
}

func TestBuildFromLabeledEdges(t *testing.T) {
	g := BuildFromLabeledEdges(
		[]string{"person", "person"},
		[]LabeledEdge{
			{From: 0, To: 1, Label: "knows"},
			{From: 1, To: 0, Label: ""},
		},
	)
	// 2 original + 1 dummy node; edges 0->2, 2->1, 1->0.
	if g.NumNodes() != 3 || g.NumEdges() != 3 {
		t.Fatalf("expanded graph wrong size: %v", g)
	}
	if g.LabelName(2) != "knows" {
		t.Fatalf("dummy label = %q", g.LabelName(2))
	}
	if !g.HasEdge(0, 2) || !g.HasEdge(2, 1) || !g.HasEdge(1, 0) {
		t.Fatalf("expanded edges wrong")
	}
}

func TestComputeStats(t *testing.T) {
	g := New()
	a, b, c := g.AddNode("A"), g.AddNode("B"), g.AddNode("A")
	g.AddEdge(a, b)
	g.AddEdge(a, c)
	g.AddEdge(b, c)
	s := g.ComputeStats()
	if s.Nodes != 3 || s.Edges != 3 || s.Labels != 2 || s.MaxOutDeg != 2 || s.MaxInDeg != 2 {
		t.Fatalf("stats = %+v", s)
	}
	if s.AvgDeg != 1.0 {
		t.Fatalf("avg degree = %v", s.AvgDeg)
	}
}

func TestInsertRemoveSortedQuick(t *testing.T) {
	f := func(xs []int16) bool {
		var s []NodeID
		present := map[NodeID]bool{}
		for _, x := range xs {
			v := NodeID(x)
			var ins bool
			s, ins = insertSorted(s, v)
			if ins == present[v] {
				return false
			}
			present[v] = true
		}
		for i := 1; i < len(s); i++ {
			if s[i-1] >= s[i] {
				return false
			}
		}
		return len(s) == len(present)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
