package graph

import (
	"fmt"
	"sort"
	"sync"
)

// Sharded is a hash-partitioned, immutable graph backend: k CSR shards,
// each owning the nodes hashed to it, together satisfying Reader so that
// every engine — simulation, bounded materialization, containment
// matching, MatchJoin seeding — runs on it unchanged. Build one with
// Shard; Unshard flattens back to a single *Frozen.
//
// Partitioning is by node id: shard s owns exactly the nodes v with
// v mod k == s (the dense id space makes the modulus a perfect hash),
// and node v's shard-local index is v div k. Each shard holds
//
//   - CSR adjacency (both directions) for its owned nodes — a node's
//     full edge lists live with its owner, so Out/In are single sorted
//     slices exactly as on *Frozen;
//   - a per-shard label partition, ascending within the shard, so
//     candidate seeding can scan shards independently (the
//     shard-parallel materialization path in internal/simulation);
//   - per-shard boundary arrays: the cross-shard out-edges (owner(u)=s,
//     owner(v)≠s) in ascending (u,v) order — the edges a multi-machine
//     placement has to ship between workers, kept first-class so later
//     PRs can serialize shards independently;
//   - frozen attribute columns for the owned nodes.
//
// NodesWithLabel is partitioned with merge-on-read semantics: the global
// ascending partition for a label is k-way-merged from the per-shard
// partitions on first request and cached (mutex-guarded, like *Graph's
// lazy index — the shard-parallel seeding path never takes the lock).
// Apart from that cache a Sharded is immutable after construction and
// safe for unsynchronized concurrent use.
type Sharded struct {
	labels    *Interner
	nodeLabel []LabelID // global: Label(v) must not pay a shard hop
	numEdges  int
	k         int
	shards    []shard
	catKeys   map[string]struct{}

	// mergeMu guards the lazily built merge-on-read label cache.
	mergeMu sync.Mutex
	merged  map[LabelID][]NodeID // guarded by mergeMu
}

// shard is one hash partition. All arrays are indexed by the shard-local
// node index li = v div k; the owned node ids are s, s+k, s+2k, ...
type shard struct {
	n int // owned node count

	outOff []int32
	outAdj []NodeID
	inOff  []int32
	inAdj  []NodeID

	// Label partition restricted to owned nodes:
	// labelIdx[labelOff[l]:labelOff[l+1]], ascending.
	labelOff []int32
	labelIdx []NodeID

	// Boundary arrays: cross-shard out-edges in ascending (src,dst)
	// order. boundarySrc[i] is owned by this shard, boundaryDst[i] is not.
	boundarySrc []NodeID
	boundaryDst []NodeID

	// Attribute columns for owned nodes, keys sorted per node.
	attrOff []int32
	attrKey []string
	attrVal []int64
}

// Shard splits any Reader (mutable *Graph, *Frozen, or another *Sharded)
// into k hash partitions in O(|V|+|E|) time plus the attribute volume.
// k is clamped to at least 1; shards may own zero nodes when k exceeds
// |V|. The result shares no mutable state with r. Sharding a *Sharded
// that already has k shards returns it unchanged.
func Shard(r Reader, k int) *Sharded {
	if k < 1 {
		k = 1
	}
	if sh, ok := r.(*Sharded); ok && sh.k == k {
		return sh
	}
	n := r.NumNodes()
	s := &Sharded{
		labels:    r.Interner().Clone(),
		nodeLabel: make([]LabelID, n),
		numEdges:  r.NumEdges(),
		k:         k,
		shards:    make([]shard, k),
	}
	for v := 0; v < n; v++ {
		s.nodeLabel[v] = r.Label(NodeID(v))
	}
	nl := s.labels.Len()
	var keys []string
	for si := 0; si < k; si++ {
		sh := &s.shards[si]
		// Owned nodes are si, si+k, ...: count = ceil((n-si)/k).
		if si < n {
			sh.n = (n - si + k - 1) / k
		}
		sh.outOff = make([]int32, sh.n+1)
		sh.inOff = make([]int32, sh.n+1)
		sh.attrOff = make([]int32, sh.n+1)
		for li := 0; li < sh.n; li++ {
			v := NodeID(li*k + si)
			sh.outOff[li+1] = sh.outOff[li] + int32(r.OutDegree(v))
			sh.inOff[li+1] = sh.inOff[li] + int32(r.InDegree(v))
		}
		sh.outAdj = make([]NodeID, sh.outOff[sh.n])
		sh.inAdj = make([]NodeID, sh.inOff[sh.n])
		for li := 0; li < sh.n; li++ {
			v := NodeID(li*k + si)
			copy(sh.outAdj[sh.outOff[li]:], r.Out(v))
			copy(sh.inAdj[sh.inOff[li]:], r.In(v))
			// Boundary scan over the CSR range just filled: ascending
			// (src,dst) order falls out of the ascending owned-node walk
			// over sorted out-lists.
			for _, w := range sh.outAdj[sh.outOff[li]:sh.outOff[li+1]] {
				if int(w)%k != si {
					sh.boundarySrc = append(sh.boundarySrc, v)
					sh.boundaryDst = append(sh.boundaryDst, w)
				}
			}
		}

		// Per-shard label partition by counting sort: the ascending
		// owned-node walk keeps every partition ascending.
		sh.labelOff = make([]int32, nl+1)
		for li := 0; li < sh.n; li++ {
			sh.labelOff[s.nodeLabel[li*k+si]+1]++
		}
		for l := 0; l < nl; l++ {
			sh.labelOff[l+1] += sh.labelOff[l]
		}
		sh.labelIdx = make([]NodeID, sh.n)
		fill := make([]int32, nl)
		for li := 0; li < sh.n; li++ {
			l := s.nodeLabel[li*k+si]
			sh.labelIdx[sh.labelOff[l]+fill[l]] = NodeID(li*k + si)
			fill[l]++
		}

		// Attribute columns, keys sorted per node (deterministic like
		// Freeze: map iteration order must not leak into the columns).
		for li := 0; li < sh.n; li++ {
			attrs := r.Attrs(NodeID(li*k + si))
			keys = keys[:0]
			for key := range attrs {
				keys = append(keys, key)
			}
			sort.Strings(keys)
			for _, key := range keys {
				sh.attrKey = append(sh.attrKey, key)
				sh.attrVal = append(sh.attrVal, attrs[key])
				if r.IsCategorical(key) {
					if s.catKeys == nil {
						s.catKeys = make(map[string]struct{})
					}
					s.catKeys[key] = struct{}{}
				}
			}
			sh.attrOff[li+1] = int32(len(sh.attrKey))
		}
	}
	return s
}

// Unshard flattens the partitions back into a single *Frozen CSR
// snapshot. Because a Sharded is itself a Reader whose methods agree
// with its source, Shard(r, k).Unshard() is identical — field for field
// — to Freeze(r), which the round-trip tests pin with reflect.DeepEqual.
func (s *Sharded) Unshard() *Frozen { return Freeze(s) }

// NumShards returns k, the number of hash partitions.
func (s *Sharded) NumShards() int { return s.k }

// ShardOf returns the shard owning node v.
func (s *Sharded) ShardOf(v NodeID) int { return int(v) % s.k }

// ShardSize returns the number of nodes owned by shard si.
func (s *Sharded) ShardSize(si int) int { return s.shards[si].n }

// ShardNodesWithLabel returns shard si's slice of the label partition:
// the owned nodes carrying label l, ascending. Read-only; no lock. The
// shard-parallel candidate seeding scans these instead of the merged
// global partition. Unknown labels yield nil.
func (s *Sharded) ShardNodesWithLabel(si int, l LabelID) []NodeID {
	sh := &s.shards[si]
	if l < 0 || int(l) >= len(sh.labelOff)-1 {
		return nil
	}
	lo, hi := sh.labelOff[l], sh.labelOff[l+1]
	if lo == hi {
		return nil
	}
	return sh.labelIdx[lo:hi:hi]
}

// Boundary returns shard si's cross-shard out-edges — src owned by si,
// dst owned elsewhere — in ascending (src,dst) order. Read-only.
func (s *Sharded) Boundary(si int) (src, dst []NodeID) {
	sh := &s.shards[si]
	return sh.boundarySrc, sh.boundaryDst
}

// CrossEdges returns the total number of cross-shard edges: the
// communication volume a multi-machine placement of these shards pays.
func (s *Sharded) CrossEdges() int {
	total := 0
	for si := range s.shards {
		total += len(s.shards[si].boundarySrc)
	}
	return total
}

// Interner exposes the label interner (a clone of the source's, so label
// ids coincide).
func (s *Sharded) Interner() *Interner { return s.labels }

// NumNodes returns |V|.
func (s *Sharded) NumNodes() int { return len(s.nodeLabel) }

// NumEdges returns |E|.
func (s *Sharded) NumEdges() int { return s.numEdges }

// Size returns |G| = |V| + |E|.
func (s *Sharded) Size() int { return s.NumNodes() + s.numEdges }

// Label returns the interned label of v.
func (s *Sharded) Label(v NodeID) LabelID { return s.nodeLabel[v] }

// LabelName returns the label of v as a string.
func (s *Sharded) LabelName(v NodeID) string { return s.labels.Name(s.nodeLabel[v]) }

// Attr returns the attribute value for key on v, by linear scan over the
// owning shard's column range (nodes carry at most a handful of keys).
func (s *Sharded) Attr(v NodeID, key string) (int64, bool) {
	sh := &s.shards[int(v)%s.k]
	li := int(v) / s.k
	for i := sh.attrOff[li]; i < sh.attrOff[li+1]; i++ {
		if sh.attrKey[i] == key {
			return sh.attrVal[i], true
		}
	}
	return 0, false
}

// Attrs returns the attribute map of v, materialized fresh from the
// owning shard's columns (nil for attribute-free nodes). Like
// *Frozen.Attrs the map does not alias backend storage, but callers
// should still treat it as read-only per the Reader contract.
func (s *Sharded) Attrs(v NodeID) map[string]int64 {
	sh := &s.shards[int(v)%s.k]
	li := int(v) / s.k
	lo, hi := sh.attrOff[li], sh.attrOff[li+1]
	if hi == lo {
		return nil
	}
	m := make(map[string]int64, hi-lo)
	for i := lo; i < hi; i++ {
		m[sh.attrKey[i]] = sh.attrVal[i]
	}
	return m
}

// IsCategorical reports whether key holds interned string values.
func (s *Sharded) IsCategorical(key string) bool {
	_, ok := s.catKeys[key]
	return ok
}

// Out returns the successors of v in ascending order: a capped view into
// the owning shard's CSR array, immutable by construction.
func (s *Sharded) Out(v NodeID) []NodeID {
	sh := &s.shards[int(v)%s.k]
	li := int(v) / s.k
	return sh.outAdj[sh.outOff[li]:sh.outOff[li+1]:sh.outOff[li+1]]
}

// In returns the predecessors of v in ascending order. Read-only.
func (s *Sharded) In(v NodeID) []NodeID {
	sh := &s.shards[int(v)%s.k]
	li := int(v) / s.k
	return sh.inAdj[sh.inOff[li]:sh.inOff[li+1]:sh.inOff[li+1]]
}

// OutDegree returns |post(v)|.
func (s *Sharded) OutDegree(v NodeID) int {
	sh := &s.shards[int(v)%s.k]
	li := int(v) / s.k
	return int(sh.outOff[li+1] - sh.outOff[li])
}

// InDegree returns |pre(v)|.
func (s *Sharded) InDegree(v NodeID) int {
	sh := &s.shards[int(v)%s.k]
	li := int(v) / s.k
	return int(sh.inOff[li+1] - sh.inOff[li])
}

// HasEdge reports whether (u,v) ∈ E, by binary search over u's CSR range.
func (s *Sharded) HasEdge(u, v NodeID) bool {
	out := s.Out(u)
	i := sort.Search(len(out), func(i int) bool { return out[i] >= v })
	return i < len(out) && out[i] == v
}

// NodesWithLabel returns all nodes carrying the given interned label in
// ascending order, k-way-merging the per-shard partitions on first
// request and caching the merge (merge-on-read). The cache build is
// mutex-guarded, so concurrent readers are always safe; the returned
// slice aliases the cache and must not be mutated (Reader contract).
// Unknown labels (including NoLabel) yield nil.
func (s *Sharded) NodesWithLabel(l LabelID) []NodeID {
	if l < 0 || int(l) >= s.labels.Len() {
		return nil
	}
	s.mergeMu.Lock()
	defer s.mergeMu.Unlock()
	if nodes, ok := s.merged[l]; ok {
		return nodes
	}
	if s.merged == nil {
		s.merged = make(map[LabelID][]NodeID)
	}
	nodes := s.mergeLabel(l)
	s.merged[l] = nodes
	return nodes
}

// mergeLabel k-way-merges the per-shard partitions for label l into one
// ascending slice (nil when no node carries l, matching *Frozen).
func (s *Sharded) mergeLabel(l LabelID) []NodeID {
	parts := make([][]NodeID, 0, s.k)
	total := 0
	for si := 0; si < s.k; si++ {
		if p := s.ShardNodesWithLabel(si, l); len(p) > 0 {
			parts = append(parts, p)
			total += len(p)
		}
	}
	return MergeAscending(parts, total)
}

// MergeAscending k-way-merges sorted, duplicate-free NodeID slices into
// one ascending slice; total must be the summed length (capacity hint).
// nil input slices are skipped; a zero total yields nil. The merge
// consumes its input: parts and its element headers are clobbered in
// place, so callers must not reuse either after the call (the elements'
// backing arrays are only read). Shared with the shard-parallel
// candidate seeding in internal/simulation, which merges per-shard
// candidate sets with it.
func MergeAscending(parts [][]NodeID, total int) []NodeID {
	if total == 0 {
		return nil
	}
	live := parts[:0]
	for _, p := range parts {
		if len(p) > 0 {
			live = append(live, p)
		}
	}
	if len(live) == 1 {
		out := make([]NodeID, 0, total)
		return append(out, live[0]...)
	}
	out := make([]NodeID, 0, total)
	for len(live) > 1 {
		// Select the slice with the minimal head; shard counts are small
		// (k ≤ a few dozen), so a linear scan beats a heap here.
		mi := 0
		for i := 1; i < len(live); i++ {
			if live[i][0] < live[mi][0] {
				mi = i
			}
		}
		out = append(out, live[mi][0])
		live[mi] = live[mi][1:]
		if len(live[mi]) == 0 {
			live[mi] = live[len(live)-1]
			live = live[:len(live)-1]
		}
	}
	return append(out, live[0]...)
}

// NodesWithLabelName is NodesWithLabel keyed by label name.
func (s *Sharded) NodesWithLabelName(name string) []NodeID {
	return s.NodesWithLabel(s.labels.Lookup(name))
}

// Edges calls fn for every edge (u,v) grouped by ascending source; it
// stops early if fn returns false.
func (s *Sharded) Edges(fn func(u, v NodeID) bool) {
	for u := 0; u < len(s.nodeLabel); u++ {
		for _, v := range s.Out(NodeID(u)) {
			if !fn(NodeID(u), v) {
				return
			}
		}
	}
}

// String summarizes the partitioning.
func (s *Sharded) String() string {
	return fmt.Sprintf("sharded{k=%d |V|=%d |E|=%d cross=%d}",
		s.k, s.NumNodes(), s.numEdges, s.CrossEdges())
}

// ComputeStats gathers Stats for the sharded graph.
func (s *Sharded) ComputeStats() Stats {
	st := Stats{Nodes: s.NumNodes(), Edges: s.numEdges, Labels: s.labels.Len()}
	for v := 0; v < s.NumNodes(); v++ {
		if d := s.OutDegree(NodeID(v)); d > st.MaxOutDeg {
			st.MaxOutDeg = d
		}
		if d := s.InDegree(NodeID(v)); d > st.MaxInDeg {
			st.MaxInDeg = d
		}
	}
	if st.Nodes > 0 {
		st.AvgDeg = float64(st.Edges) / float64(st.Nodes)
	}
	return st
}

// Sharded must satisfy Reader like the other backends.
var _ Reader = (*Sharded)(nil)
