package graph

// Reader is the read-only view of a data graph that every engine in this
// library — simulation, bounded materialization, containment matching,
// MatchJoin seeding — consumes. Three backends satisfy it:
//
//   - *Graph, the mutable adjacency-list representation that the view
//     maintenance code (internal/view.Maintained) updates in place;
//   - *Frozen, an immutable CSR snapshot built by Freeze, with flat edge
//     arrays, a prebuilt label-partitioned node index (no mutex, no lazy
//     build) and frozen attribute columns;
//   - *Sharded, a hash-partitioned family of k immutable CSR shards built
//     by Shard, with per-shard label partitions (merge-on-read global
//     NodesWithLabel) and per-shard boundary arrays of cross-shard edges.
//
// Engines written against Reader run unchanged on any backend — and on
// future backends (persistent) that implement the same contract.
//
// # Aliasing contract
//
// Out, In and NodesWithLabel return slices that alias the backend's
// internal storage: callers must treat them as immutable and must not
// append to, reorder or write through them. Attrs likewise returns a map
// the caller must not mutate (for *Graph it is the node's live attribute
// map; *Frozen materializes it from its frozen columns). Use AttrsCopy
// when ownership of the map is required.
//
// # Ordering contract
//
// Out and In are sorted ascending; NodesWithLabel returns node ids in
// ascending order; Edges enumerates edges grouped by source in ascending
// (source, target) order. The engines rely on these orders to produce
// byte-identical results across backends.
//
// # Concurrency contract
//
// Every Reader method is safe for concurrent use as long as no goroutine
// mutates the backend. *Frozen is immutable and therefore always safe;
// *Graph additionally serializes the lazy build of its label index, but
// mutations (AddNode/AddEdge/...) still require external synchronization
// with readers.
type Reader interface {
	// NumNodes returns |V|. Node ids are dense: 0..NumNodes()-1.
	NumNodes() int
	// NumEdges returns |E|.
	NumEdges() int
	// Size returns |G| = |V| + |E|, the size measure used by the paper.
	Size() int
	// Interner exposes the label interner shared by node labels and
	// categorical attribute values; pattern compilation resolves names
	// through it.
	Interner() *Interner
	// Label returns the interned label of v.
	Label(v NodeID) LabelID
	// LabelName returns the label of v as a string.
	LabelName(v NodeID) string
	// Attr returns the attribute value for key on v.
	Attr(v NodeID, key string) (int64, bool)
	// Attrs returns the attribute map of v (nil or empty for
	// attribute-free nodes). Callers must not mutate it; see the aliasing
	// contract above and AttrsCopy.
	Attrs(v NodeID) map[string]int64
	// IsCategorical reports whether key holds interned string values.
	IsCategorical(key string) bool
	// Out returns the successors of v in ascending order. Read-only.
	Out(v NodeID) []NodeID
	// In returns the predecessors of v in ascending order. Read-only.
	In(v NodeID) []NodeID
	// OutDegree returns |post(v)|.
	OutDegree(v NodeID) int
	// InDegree returns |pre(v)|.
	InDegree(v NodeID) int
	// HasEdge reports whether (u,v) ∈ E.
	HasEdge(u, v NodeID) bool
	// NodesWithLabel returns all nodes carrying the given interned label,
	// ascending. Read-only. Unknown labels (including NoLabel) yield nil.
	NodesWithLabel(l LabelID) []NodeID
	// NodesWithLabelName is NodesWithLabel keyed by label name.
	NodesWithLabelName(name string) []NodeID
	// Edges calls fn for every edge (u,v) grouped by ascending source;
	// it stops early if fn returns false.
	Edges(fn func(u, v NodeID) bool)
}

// Both backends must satisfy Reader.
var (
	_ Reader = (*Graph)(nil)
	_ Reader = (*Frozen)(nil)
)

// AttrsCopy returns an owned copy of v's attribute map (nil when v has no
// attributes). Use it instead of Reader.Attrs when the caller needs to
// retain or mutate the map — Attrs aliases backend storage on *Graph.
func AttrsCopy(r Reader, v NodeID) map[string]int64 {
	m := r.Attrs(v)
	if m == nil {
		return nil
	}
	c := make(map[string]int64, len(m))
	for k, val := range m {
		c[k] = val
	}
	return c
}
