package graph

// Column accessors for the durable store (internal/store). A Frozen —
// and every shard of a Sharded — already lives in flat-array layout, so
// persisting one is exactly writing these columns and loading one is
// reading them back and adopting the slices: no CSR rebuild, no
// re-sorting, no re-interning on either side. Columns() exposes the
// arrays (aliased, read-only); FrozenFromColumns/ShardedFromColumns
// validate the shape invariants and adopt the arrays, so a corrupted or
// hand-built column set is rejected instead of producing a backend that
// violates the Reader contract.

import (
	"fmt"
	"sort"
)

// FrozenColumns is the flat-array layout of a Frozen, exposed for
// serialization. All slices alias the snapshot's storage and must be
// treated as read-only; string slices use interned/id order exactly as
// the snapshot stores them.
type FrozenColumns struct {
	// Labels are the interner's strings in id order.
	Labels []string
	// CatKeys are the categorical attribute keys, sorted.
	CatKeys []string
	// NumEdges is |E|.
	NumEdges int
	// NodeLabel maps node id to interned label.
	NodeLabel []LabelID
	// OutOff and OutAdj are the forward CSR: Out(v) =
	// OutAdj[OutOff[v]:OutOff[v+1]], ascending.
	OutOff []int32
	// OutAdj holds the forward adjacency, grouped by source.
	OutAdj []NodeID
	// InOff and InAdj are the reverse CSR.
	InOff []int32
	// InAdj holds the reverse adjacency, grouped by target.
	InAdj []NodeID
	// LabelOff and LabelIdx are the label partition: NodesWithLabel(l) =
	// LabelIdx[LabelOff[l]:LabelOff[l+1]], ascending.
	LabelOff []int32
	// LabelIdx holds the label-partitioned node index.
	LabelIdx []NodeID
	// AttrOff, AttrKey and AttrVal are the attribute columns: node v's
	// attributes are the parallel ranges AttrKey[AttrOff[v]:AttrOff[v+1]]
	// / AttrVal[...], keys sorted per node.
	AttrOff []int32
	// AttrKey holds the per-node attribute keys.
	AttrKey []string
	// AttrVal holds the per-node attribute values, parallel to AttrKey.
	AttrVal []int64
}

// Columns exposes the snapshot's flat arrays for serialization. The
// returned slices alias the snapshot and must not be mutated.
func (f *Frozen) Columns() *FrozenColumns {
	return &FrozenColumns{
		Labels:    f.labels.Names(),
		CatKeys:   sortedKeys(f.catKeys),
		NumEdges:  f.numEdges,
		NodeLabel: f.nodeLabel,
		OutOff:    f.outOff,
		OutAdj:    f.outAdj,
		InOff:     f.inOff,
		InAdj:     f.inAdj,
		LabelOff:  f.labelOff,
		LabelIdx:  f.labelIdx,
		AttrOff:   f.attrOff,
		AttrKey:   f.attrKey,
		AttrVal:   f.attrVal,
	}
}

// FrozenFromColumns adopts a column set as an immutable CSR snapshot,
// validating every shape invariant Freeze establishes (offset lengths
// and monotonicity, id ranges, per-node key sorting is trusted). The
// slices are adopted, not copied: the caller must not mutate them
// afterwards. The result is field-for-field identical to freezing the
// graph the columns came from.
func FrozenFromColumns(c *FrozenColumns) (*Frozen, error) {
	n := len(c.NodeLabel)
	nl := len(c.Labels)
	if err := checkOffsets("outOff", c.OutOff, n, len(c.OutAdj)); err != nil {
		return nil, err
	}
	if err := checkOffsets("inOff", c.InOff, n, len(c.InAdj)); err != nil {
		return nil, err
	}
	if err := checkOffsets("labelOff", c.LabelOff, nl, len(c.LabelIdx)); err != nil {
		return nil, err
	}
	if err := checkOffsets("attrOff", c.AttrOff, n, len(c.AttrKey)); err != nil {
		return nil, err
	}
	if len(c.AttrVal) != len(c.AttrKey) {
		return nil, fmt.Errorf("graph: attrVal length %d != attrKey length %d", len(c.AttrVal), len(c.AttrKey))
	}
	if len(c.LabelIdx) != n {
		return nil, fmt.Errorf("graph: label index covers %d nodes, want %d", len(c.LabelIdx), n)
	}
	if c.NumEdges != len(c.OutAdj) || len(c.InAdj) != len(c.OutAdj) {
		return nil, fmt.Errorf("graph: edge counts disagree: numEdges=%d |outAdj|=%d |inAdj|=%d",
			c.NumEdges, len(c.OutAdj), len(c.InAdj))
	}
	for v, l := range c.NodeLabel {
		if int(l) < 0 || int(l) >= nl {
			return nil, fmt.Errorf("graph: node %d has label id %d out of range [0,%d)", v, l, nl)
		}
	}
	if err := checkNodeIDs("outAdj", c.OutAdj, n); err != nil {
		return nil, err
	}
	if err := checkNodeIDs("inAdj", c.InAdj, n); err != nil {
		return nil, err
	}
	if err := checkNodeIDs("labelIdx", c.LabelIdx, n); err != nil {
		return nil, err
	}
	labels, err := internerFromNames(c.Labels)
	if err != nil {
		return nil, err
	}
	fz := &Frozen{
		labels:    labels,
		nodeLabel: c.NodeLabel,
		numEdges:  c.NumEdges,
		outOff:    c.OutOff,
		outAdj:    c.OutAdj,
		inOff:     c.InOff,
		inAdj:     c.InAdj,
		labelOff:  c.LabelOff,
		labelIdx:  c.LabelIdx,
		attrOff:   c.AttrOff,
		attrKey:   c.AttrKey,
		attrVal:   c.AttrVal,
		catKeys:   keySet(c.CatKeys),
	}
	// Freeze builds the attribute columns by append (nil when the graph
	// carries no attributes); normalize so FromColumns∘Columns is the
	// identity under reflect.DeepEqual.
	if len(fz.attrKey) == 0 {
		fz.attrKey, fz.attrVal = nil, nil
	}
	return fz, nil
}

// ShardColumns is the flat-array layout of one hash partition of a
// Sharded, exposed for serialization. All slices alias the shard's
// storage and must be treated as read-only.
type ShardColumns struct {
	// N is the owned node count of the shard.
	N int
	// OutOff and OutAdj are the shard's forward CSR over shard-local
	// indices (node v maps to index v div k).
	OutOff []int32
	// OutAdj holds the shard's forward adjacency.
	OutAdj []NodeID
	// InOff and InAdj are the shard's reverse CSR.
	InOff []int32
	// InAdj holds the shard's reverse adjacency.
	InAdj []NodeID
	// LabelOff and LabelIdx are the label partition restricted to owned
	// nodes.
	LabelOff []int32
	// LabelIdx holds the owned nodes per label, ascending.
	LabelIdx []NodeID
	// BoundarySrc and BoundaryDst are the cross-shard out-edges in
	// ascending (src,dst) order; sources are owned, targets are not.
	BoundarySrc []NodeID
	// BoundaryDst holds the boundary edge targets, parallel to
	// BoundarySrc.
	BoundaryDst []NodeID
	// AttrOff, AttrKey and AttrVal are the attribute columns for owned
	// nodes, keys sorted per node.
	AttrOff []int32
	// AttrKey holds the per-node attribute keys.
	AttrKey []string
	// AttrVal holds the per-node attribute values, parallel to AttrKey.
	AttrVal []int64
}

// ShardedColumns is the flat-array layout of a Sharded: the global
// columns plus one ShardColumns per hash partition.
type ShardedColumns struct {
	// Labels are the interner's strings in id order.
	Labels []string
	// CatKeys are the categorical attribute keys, sorted.
	CatKeys []string
	// NumEdges is |E|.
	NumEdges int
	// K is the shard count.
	K int
	// NodeLabel maps node id to interned label (global, like Sharded).
	NodeLabel []LabelID
	// Shards holds the per-partition columns, in shard order.
	Shards []ShardColumns
}

// Columns exposes the sharded backend's flat arrays for serialization.
// The returned slices alias the backend and must not be mutated.
func (s *Sharded) Columns() *ShardedColumns {
	c := &ShardedColumns{
		Labels:    s.labels.Names(),
		CatKeys:   sortedKeys(s.catKeys),
		NumEdges:  s.numEdges,
		K:         s.k,
		NodeLabel: s.nodeLabel,
		Shards:    make([]ShardColumns, s.k),
	}
	for si := range s.shards {
		sh := &s.shards[si]
		c.Shards[si] = ShardColumns{
			N:           sh.n,
			OutOff:      sh.outOff,
			OutAdj:      sh.outAdj,
			InOff:       sh.inOff,
			InAdj:       sh.inAdj,
			LabelOff:    sh.labelOff,
			LabelIdx:    sh.labelIdx,
			BoundarySrc: sh.boundarySrc,
			BoundaryDst: sh.boundaryDst,
			AttrOff:     sh.attrOff,
			AttrKey:     sh.attrKey,
			AttrVal:     sh.attrVal,
		}
	}
	return c
}

// ShardedFromColumns adopts a column set as a sharded backend,
// validating the partitioning invariants Shard establishes: shard
// counts against the hash rule, offset shapes, ownership of every
// label-partition entry, and global edge accounting. The slices are
// adopted, not copied. The result is field-for-field identical to
// sharding the graph the columns came from.
func ShardedFromColumns(c *ShardedColumns) (*Sharded, error) {
	n := len(c.NodeLabel)
	nl := len(c.Labels)
	k := c.K
	if k < 1 {
		return nil, fmt.Errorf("graph: shard count %d < 1", k)
	}
	if len(c.Shards) != k {
		return nil, fmt.Errorf("graph: %d shard column sets for k=%d", len(c.Shards), k)
	}
	labels, err := internerFromNames(c.Labels)
	if err != nil {
		return nil, err
	}
	for v, l := range c.NodeLabel {
		if int(l) < 0 || int(l) >= nl {
			return nil, fmt.Errorf("graph: node %d has label id %d out of range [0,%d)", v, l, nl)
		}
	}
	s := &Sharded{
		labels:    labels,
		nodeLabel: c.NodeLabel,
		numEdges:  c.NumEdges,
		k:         k,
		shards:    make([]shard, k),
		catKeys:   keySet(c.CatKeys),
	}
	totalOut := 0
	for si := 0; si < k; si++ {
		sc := &c.Shards[si]
		want := 0
		if si < n {
			want = (n - si + k - 1) / k
		}
		if sc.N != want {
			return nil, fmt.Errorf("graph: shard %d owns %d nodes, hash rule demands %d", si, sc.N, want)
		}
		if err := checkOffsets(fmt.Sprintf("shard %d outOff", si), sc.OutOff, sc.N, len(sc.OutAdj)); err != nil {
			return nil, err
		}
		if err := checkOffsets(fmt.Sprintf("shard %d inOff", si), sc.InOff, sc.N, len(sc.InAdj)); err != nil {
			return nil, err
		}
		if err := checkOffsets(fmt.Sprintf("shard %d labelOff", si), sc.LabelOff, nl, len(sc.LabelIdx)); err != nil {
			return nil, err
		}
		if err := checkOffsets(fmt.Sprintf("shard %d attrOff", si), sc.AttrOff, sc.N, len(sc.AttrKey)); err != nil {
			return nil, err
		}
		if len(sc.AttrVal) != len(sc.AttrKey) {
			return nil, fmt.Errorf("graph: shard %d attrVal length %d != attrKey length %d", si, len(sc.AttrVal), len(sc.AttrKey))
		}
		if len(sc.LabelIdx) != sc.N {
			return nil, fmt.Errorf("graph: shard %d label index covers %d nodes, want %d", si, len(sc.LabelIdx), sc.N)
		}
		if len(sc.BoundaryDst) != len(sc.BoundarySrc) {
			return nil, fmt.Errorf("graph: shard %d boundary arrays disagree: %d src, %d dst", si, len(sc.BoundarySrc), len(sc.BoundaryDst))
		}
		if err := checkNodeIDs(fmt.Sprintf("shard %d outAdj", si), sc.OutAdj, n); err != nil {
			return nil, err
		}
		if err := checkNodeIDs(fmt.Sprintf("shard %d inAdj", si), sc.InAdj, n); err != nil {
			return nil, err
		}
		if err := checkNodeIDs(fmt.Sprintf("shard %d boundaryDst", si), sc.BoundaryDst, n); err != nil {
			return nil, err
		}
		for _, v := range sc.LabelIdx {
			if int(v) < 0 || int(v) >= n || int(v)%k != si {
				return nil, fmt.Errorf("graph: shard %d label index holds node %d it does not own", si, v)
			}
		}
		for _, v := range sc.BoundarySrc {
			if int(v) < 0 || int(v) >= n || int(v)%k != si {
				return nil, fmt.Errorf("graph: shard %d boundary source %d not owned by it", si, v)
			}
		}
		totalOut += len(sc.OutAdj)
		sh := &s.shards[si]
		*sh = shard{
			n:           sc.N,
			outOff:      sc.OutOff,
			outAdj:      sc.OutAdj,
			inOff:       sc.InOff,
			inAdj:       sc.InAdj,
			labelOff:    sc.LabelOff,
			labelIdx:    sc.LabelIdx,
			boundarySrc: sc.BoundarySrc,
			boundaryDst: sc.BoundaryDst,
			attrOff:     sc.AttrOff,
			attrKey:     sc.AttrKey,
			attrVal:     sc.AttrVal,
		}
		// Shard builds boundary and attribute columns by append (nil when
		// empty); normalize for the FromColumns∘Columns identity.
		if len(sh.boundarySrc) == 0 {
			sh.boundarySrc, sh.boundaryDst = nil, nil
		}
		if len(sh.attrKey) == 0 {
			sh.attrKey, sh.attrVal = nil, nil
		}
	}
	if totalOut != c.NumEdges {
		return nil, fmt.Errorf("graph: shards hold %d edges, header says %d", totalOut, c.NumEdges)
	}
	return s, nil
}

// checkOffsets validates a CSR offset array: length n+1, starting at 0,
// monotone nondecreasing, ending exactly at the adjacency length.
func checkOffsets(name string, off []int32, n, adjLen int) error {
	if len(off) != n+1 {
		return fmt.Errorf("graph: %s has %d entries, want %d", name, len(off), n+1)
	}
	if off[0] != 0 {
		return fmt.Errorf("graph: %s starts at %d, want 0", name, off[0])
	}
	for i := 1; i < len(off); i++ {
		if off[i] < off[i-1] {
			return fmt.Errorf("graph: %s decreases at %d (%d -> %d)", name, i, off[i-1], off[i])
		}
	}
	if int(off[n]) != adjLen {
		return fmt.Errorf("graph: %s ends at %d but the array holds %d entries", name, off[n], adjLen)
	}
	return nil
}

// checkNodeIDs validates that every id falls in [0, n).
func checkNodeIDs(name string, ids []NodeID, n int) error {
	for _, v := range ids {
		if int(v) < 0 || int(v) >= n {
			return fmt.Errorf("graph: %s holds node id %d out of range [0,%d)", name, v, n)
		}
	}
	return nil
}

// internerFromNames rebuilds an interner from its id-ordered name list,
// rejecting duplicates (two names cannot share an id slot).
func internerFromNames(names []string) (*Interner, error) {
	in := NewInterner()
	for _, name := range names {
		if in.Lookup(name) != NoLabel {
			return nil, fmt.Errorf("graph: duplicate interned label %q", name)
		}
		in.Intern(name)
	}
	return in, nil
}

// sortedKeys flattens a string set to a sorted slice (nil when empty).
func sortedKeys(set map[string]struct{}) []string {
	if len(set) == 0 {
		return nil
	}
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// keySet builds a string set from a slice (nil when empty, matching the
// lazily allocated catKeys of Freeze and Shard).
func keySet(keys []string) map[string]struct{} {
	if len(keys) == 0 {
		return nil
	}
	set := make(map[string]struct{}, len(keys))
	for _, k := range keys {
		set[k] = struct{}{}
	}
	return set
}
