package graph

// Interner maps strings to dense LabelIDs and back. It is used for node
// labels and categorical attribute values so that all hot-path comparisons
// are integer comparisons.
type Interner struct {
	byName map[string]LabelID
	names  []string
}

// NewInterner returns an empty interner.
func NewInterner() *Interner {
	return &Interner{byName: make(map[string]LabelID)}
}

// Intern returns the id for name, assigning a fresh one if needed.
func (in *Interner) Intern(name string) LabelID {
	if id, ok := in.byName[name]; ok {
		return id
	}
	id := LabelID(len(in.names))
	in.byName[name] = id
	in.names = append(in.names, name)
	return id
}

// Lookup returns the id for name, or NoLabel if it was never interned.
func (in *Interner) Lookup(name string) LabelID {
	if id, ok := in.byName[name]; ok {
		return id
	}
	return NoLabel
}

// Name returns the string for id. It panics on out-of-range ids.
func (in *Interner) Name(id LabelID) string { return in.names[id] }

// Len returns the number of interned strings.
func (in *Interner) Len() int { return len(in.names) }

// Clone returns an independent copy.
func (in *Interner) Clone() *Interner {
	c := &Interner{
		byName: make(map[string]LabelID, len(in.byName)),
		names:  append([]string(nil), in.names...),
	}
	for k, v := range in.byName {
		c.byName[k] = v
	}
	return c
}

// Names returns all interned strings in id order. Read-only.
func (in *Interner) Names() []string { return in.names }
