package graph

import (
	"bytes"
	"reflect"
	"sync"
	"testing"
)

// frozenFixture builds a small graph exercising every Frozen code path:
// multiple labels (one unused by any node-as-label), integer and
// categorical attributes, attribute-free nodes, a self loop, sources and
// sinks.
func frozenFixture() *Graph {
	g := New()
	a := g.AddNode("A")
	b := g.AddNode("B")
	c := g.AddNode("A")
	d := g.AddNode("C")
	e := g.AddNode("B")
	g.SetAttr(a, "x", 3)
	g.SetAttr(a, "y", -7)
	g.SetAttrString(b, "cat", "Music")
	g.SetAttrString(d, "cat", "Sports")
	g.SetAttr(d, "x", 12)
	g.AddEdge(a, b)
	g.AddEdge(a, c)
	g.AddEdge(b, c)
	g.AddEdge(c, d)
	g.AddEdge(d, d) // self loop
	g.AddEdge(e, a)
	return g
}

// TestFrozenMatchesGraph checks every Reader accessor agrees between the
// mutable graph and its frozen snapshot.
func TestFrozenMatchesGraph(t *testing.T) {
	g := frozenFixture()
	f := Freeze(g)

	if f.NumNodes() != g.NumNodes() || f.NumEdges() != g.NumEdges() || f.Size() != g.Size() {
		t.Fatalf("sizes: frozen (%d,%d,%d) vs graph (%d,%d,%d)",
			f.NumNodes(), f.NumEdges(), f.Size(), g.NumNodes(), g.NumEdges(), g.Size())
	}
	for v := NodeID(0); int(v) < g.NumNodes(); v++ {
		if f.Label(v) != g.Label(v) || f.LabelName(v) != g.LabelName(v) {
			t.Fatalf("node %d: label mismatch", v)
		}
		if !reflect.DeepEqual(f.Out(v), g.Out(v)) && !(len(f.Out(v)) == 0 && len(g.Out(v)) == 0) {
			t.Fatalf("node %d: Out %v vs %v", v, f.Out(v), g.Out(v))
		}
		if !reflect.DeepEqual(f.In(v), g.In(v)) && !(len(f.In(v)) == 0 && len(g.In(v)) == 0) {
			t.Fatalf("node %d: In %v vs %v", v, f.In(v), g.In(v))
		}
		if f.OutDegree(v) != g.OutDegree(v) || f.InDegree(v) != g.InDegree(v) {
			t.Fatalf("node %d: degree mismatch", v)
		}
		for _, key := range []string{"x", "y", "cat", "absent"} {
			fv, fok := f.Attr(v, key)
			gv, gok := g.Attr(v, key)
			if fv != gv || fok != gok {
				t.Fatalf("node %d key %q: (%d,%v) vs (%d,%v)", v, key, fv, fok, gv, gok)
			}
		}
		if !reflect.DeepEqual(f.Attrs(v), g.Attrs(v)) {
			t.Fatalf("node %d: Attrs %v vs %v", v, f.Attrs(v), g.Attrs(v))
		}
	}
	for u := NodeID(0); int(u) < g.NumNodes(); u++ {
		for v := NodeID(0); int(v) < g.NumNodes(); v++ {
			if f.HasEdge(u, v) != g.HasEdge(u, v) {
				t.Fatalf("HasEdge(%d,%d) disagrees", u, v)
			}
		}
	}
	for _, name := range append(g.Interner().Names(), "nope") {
		fn := f.NodesWithLabelName(name)
		gn := g.NodesWithLabelName(name)
		if len(fn) != len(gn) {
			t.Fatalf("label %q: %v vs %v", name, fn, gn)
		}
		for i := range fn {
			if fn[i] != gn[i] {
				t.Fatalf("label %q: %v vs %v", name, fn, gn)
			}
		}
	}
	if f.NodesWithLabel(NoLabel) != nil {
		t.Fatalf("NodesWithLabel(NoLabel) = %v, want nil", f.NodesWithLabel(NoLabel))
	}
	if !f.IsCategorical("cat") || f.IsCategorical("x") {
		t.Fatalf("IsCategorical mismatch")
	}
	var fe, ge [][2]NodeID
	f.Edges(func(u, v NodeID) bool { fe = append(fe, [2]NodeID{u, v}); return true })
	g.Edges(func(u, v NodeID) bool { ge = append(ge, [2]NodeID{u, v}); return true })
	if !reflect.DeepEqual(fe, ge) {
		t.Fatalf("Edges enumeration differs: %v vs %v", fe, ge)
	}
}

// TestFreezeThawFreezeIdentity: Freeze→Thaw→Freeze must reproduce the
// snapshot exactly, and Thaw must serialize identically to the source.
func TestFreezeThawFreezeIdentity(t *testing.T) {
	g := frozenFixture()
	f1 := Freeze(g)
	thawed := f1.Thaw()
	f2 := Freeze(thawed)
	if !reflect.DeepEqual(f1, f2) {
		t.Fatalf("Freeze(Thaw(Freeze(g))) differs from Freeze(g):\n%+v\nvs\n%+v", f1, f2)
	}

	var orig, viaFrozen, viaThaw bytes.Buffer
	if err := Write(&orig, g); err != nil {
		t.Fatal(err)
	}
	if err := Write(&viaFrozen, f1); err != nil {
		t.Fatal(err)
	}
	if err := Write(&viaThaw, thawed); err != nil {
		t.Fatal(err)
	}
	if orig.String() != viaFrozen.String() || orig.String() != viaThaw.String() {
		t.Fatalf("serializations diverge:\n--- graph ---\n%s--- frozen ---\n%s--- thawed ---\n%s",
			orig.String(), viaFrozen.String(), viaThaw.String())
	}
}

// TestFreezeIsolation: mutating the source graph after Freeze must not
// show through the snapshot.
func TestFreezeIsolation(t *testing.T) {
	g := frozenFixture()
	f := Freeze(g)
	nodes, edges := f.NumNodes(), f.NumEdges()
	aOut := append([]NodeID(nil), f.Out(0)...)

	v := g.AddNode("D")
	g.AddEdge(0, v)
	g.SetAttr(0, "x", 999)
	g.Interner().Intern("brand-new-label")

	if f.NumNodes() != nodes || f.NumEdges() != edges {
		t.Fatalf("snapshot changed size after source mutation")
	}
	if !reflect.DeepEqual(append([]NodeID(nil), f.Out(0)...), aOut) {
		t.Fatalf("snapshot adjacency changed after source mutation")
	}
	if got, _ := f.Attr(0, "x"); got != 3 {
		t.Fatalf("snapshot attribute changed after source mutation: %d", got)
	}
	if f.Interner().Lookup("brand-new-label") != NoLabel {
		t.Fatalf("snapshot interner shares state with source")
	}
}

// TestFreezeOfFrozenIsNoop: Freeze on a snapshot returns it unchanged.
func TestFreezeOfFrozenIsNoop(t *testing.T) {
	f := Freeze(frozenFixture())
	if Freeze(f) != f {
		t.Fatalf("Freeze(*Frozen) allocated a new snapshot")
	}
}

// TestFrozenConcurrentReads hammers the frozen label index and adjacency
// from many goroutines; run with -race. The analogous access on *Graph
// is mutex-guarded; on *Frozen it must be safe with no locking at all.
func TestFrozenConcurrentReads(t *testing.T) {
	f := Freeze(frozenFixture())
	labels := f.Interner()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				for l := LabelID(0); int(l) < labels.Len(); l++ {
					for _, v := range f.NodesWithLabel(l) {
						_ = f.Out(v)
						_ = f.In(v)
						_, _ = f.Attr(v, "x")
					}
				}
			}
		}()
	}
	wg.Wait()
}

// TestGraphLabelIndexInvalidation: AddNode must invalidate the lazily
// built index (under labelMu) so a later read sees the new node.
func TestGraphLabelIndexInvalidation(t *testing.T) {
	g := New()
	g.AddNode("A")
	if got := len(g.NodesWithLabelName("A")); got != 1 {
		t.Fatalf("initial index: %d nodes", got)
	}
	g.AddNode("A")
	if got := len(g.NodesWithLabelName("A")); got != 2 {
		t.Fatalf("index not invalidated by AddNode: %d nodes", got)
	}
}

// TestAttrsCopyOwnership: the copy must not alias backend storage on
// either backend.
func TestAttrsCopyOwnership(t *testing.T) {
	g := frozenFixture()
	for _, r := range []Reader{g, Freeze(g)} {
		c := AttrsCopy(r, 0)
		c["x"] = 1234
		if got, _ := r.Attr(0, "x"); got != 3 {
			t.Fatalf("%T: mutating AttrsCopy leaked into the backend", r)
		}
		if AttrsCopy(r, 1) == nil {
			t.Fatalf("%T: node with attrs returned nil copy", r)
		}
		if AttrsCopy(r, 2) != nil {
			t.Fatalf("%T: attribute-free node returned non-nil copy", r)
		}
	}
}
