package graph

// This file implements the traversal primitives used by the simulation
// engines: bounded BFS (forward and backward), multi-source bounded BFS,
// and exact shortest hop-distances. All traversals reuse caller-provided
// scratch space (see BFS) so that the engines allocate only once per
// query, and run against any Reader backend (mutable or frozen).

// Direction selects edge orientation for a traversal.
type Direction int

const (
	// Forward follows out-edges.
	Forward Direction = iota
	// Backward follows in-edges.
	Backward
)

func neighbors(r Reader, v NodeID, dir Direction) []NodeID {
	if dir == Forward {
		return r.Out(v)
	}
	return r.In(v)
}

// BFS is reusable scratch space for bounded breadth-first traversals.
type BFS struct {
	mark  *Marker
	queue []NodeID
	depth []int32
}

// NewBFS returns scratch space for a graph with n nodes.
func NewBFS(n int) *BFS {
	return &BFS{mark: NewMarker(n), queue: make([]NodeID, 0, 64), depth: make([]int32, 0, 64)}
}

// From runs a bounded BFS from src in the given direction. visit is called
// for every node reachable from src via a nonempty path, with its hop
// distance d ∈ [1, maxDepth]; maxDepth < 0 means unbounded. Each node is
// visited once, at its minimum distance. src itself is visited only if it
// lies on a cycle (shortest nonempty path back to itself), matching the
// paper's path semantics for pattern edges. Traversal stops early if visit
// returns false.
func (b *BFS) From(g Reader, src NodeID, dir Direction, maxDepth int, visit func(v NodeID, d int) bool) {
	b.mark.Grow(g.NumNodes())
	b.mark.Reset()
	b.queue = b.queue[:0]
	b.depth = b.depth[:0]
	b.mark.Mark(src)
	b.queue = append(b.queue, src)
	b.depth = append(b.depth, 0)
	reportedSrc := false
	for i := 0; i < len(b.queue); i++ {
		v, d := b.queue[i], int(b.depth[i])
		if maxDepth >= 0 && d >= maxDepth {
			continue
		}
		for _, w := range neighbors(g, v, dir) {
			if w == src {
				// Cycle back to the source: report once, at the length of
				// the shortest such cycle, but do not re-enqueue.
				if !reportedSrc {
					reportedSrc = true
					if !visit(src, d+1) {
						return
					}
				}
				continue
			}
			if !b.mark.Mark(w) {
				continue
			}
			if !visit(w, d+1) {
				return
			}
			b.queue = append(b.queue, w)
			b.depth = append(b.depth, int32(d+1))
		}
	}
}

// FromMulti runs a bounded BFS from every node in srcs simultaneously
// (depth 0 at each source), visiting each reached node once with its
// minimum distance from any source, including the sources themselves at
// distance 0. maxDepth < 0 means unbounded.
func (b *BFS) FromMulti(g Reader, srcs []NodeID, dir Direction, maxDepth int, visit func(v NodeID, d int) bool) {
	b.mark.Grow(g.NumNodes())
	b.mark.Reset()
	b.queue = b.queue[:0]
	b.depth = b.depth[:0]
	for _, s := range srcs {
		if b.mark.Mark(s) {
			if !visit(s, 0) {
				return
			}
			b.queue = append(b.queue, s)
			b.depth = append(b.depth, 0)
		}
	}
	for i := 0; i < len(b.queue); i++ {
		v, d := b.queue[i], int(b.depth[i])
		if maxDepth >= 0 && d >= maxDepth {
			continue
		}
		for _, w := range neighbors(g, v, dir) {
			if !b.mark.Mark(w) {
				continue
			}
			if !visit(w, d+1) {
				return
			}
			b.queue = append(b.queue, w)
			b.depth = append(b.depth, int32(d+1))
		}
	}
}

// HopDistance returns the length of the shortest nonempty path from src to
// dst following out-edges, searching at most maxDepth hops (maxDepth < 0
// means unbounded). It returns -1 if no such path exists. Note that
// HopDistance(v, v) is the length of the shortest cycle through v, not 0.
func (b *BFS) HopDistance(g Reader, src, dst NodeID, maxDepth int) int {
	found := -1
	b.From(g, src, Forward, maxDepth, func(v NodeID, d int) bool {
		if v == dst {
			found = d
			return false
		}
		return true
	})
	return found
}

// Reachable reports whether dst is reachable from src via a nonempty path.
func (b *BFS) Reachable(g Reader, src, dst NodeID) bool {
	return b.HopDistance(g, src, dst, -1) >= 0
}
