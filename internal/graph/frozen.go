package graph

import (
	"fmt"
	"sort"
)

// Frozen is an immutable CSR (compressed sparse row) snapshot of a data
// graph: flat []NodeID edge arrays addressed by []int32 offsets for both
// adjacency directions, a prebuilt label-partitioned node index (no mutex,
// no lazy build), and frozen attribute columns. Build one with Freeze;
// Thaw converts back to a mutable *Graph.
//
// A Frozen shares no mutable state with the graph it was built from and
// is therefore safe for unsynchronized concurrent use by any number of
// readers — the engines' hottest read path, NodesWithLabel, is a pure
// slice of the prebuilt partition with no locking. The flat edge arrays
// also give the simulation fixpoints better cache locality than the
// per-node adjacency slices of *Graph.
type Frozen struct {
	labels    *Interner
	nodeLabel []LabelID
	numEdges  int

	// CSR adjacency: Out(v) = outAdj[outOff[v]:outOff[v+1]], ascending.
	outOff []int32
	outAdj []NodeID
	inOff  []int32
	inAdj  []NodeID

	// Label partition: NodesWithLabel(l) = labelIdx[labelOff[l]:labelOff[l+1]],
	// ascending within each partition.
	labelOff []int32
	labelIdx []NodeID

	// Attribute columns: node v's attributes are the parallel key/value
	// ranges attrKey[attrOff[v]:attrOff[v+1]] / attrVal[...], with keys
	// sorted per node so Freeze is deterministic.
	attrOff []int32
	attrKey []string
	attrVal []int64
	catKeys map[string]struct{}
}

// Freeze builds an immutable CSR snapshot of r in O(|V|+|E|) time (plus
// the attribute volume). The snapshot shares no mutable state with r:
// the interner is cloned and all adjacency and attribute data is copied,
// so later mutations of a source *Graph never show through. Freezing a
// *Frozen returns it unchanged (it is already immutable).
func Freeze(r Reader) *Frozen {
	if fz, ok := r.(*Frozen); ok {
		return fz
	}
	n := r.NumNodes()
	fz := &Frozen{
		labels:    r.Interner().Clone(),
		nodeLabel: make([]LabelID, n),
		numEdges:  r.NumEdges(),
		outOff:    make([]int32, n+1),
		inOff:     make([]int32, n+1),
		attrOff:   make([]int32, n+1),
	}
	for v := 0; v < n; v++ {
		id := NodeID(v)
		fz.nodeLabel[v] = r.Label(id)
		fz.outOff[v+1] = fz.outOff[v] + int32(r.OutDegree(id))
		fz.inOff[v+1] = fz.inOff[v] + int32(r.InDegree(id))
	}
	fz.outAdj = make([]NodeID, fz.outOff[n])
	fz.inAdj = make([]NodeID, fz.inOff[n])
	for v := 0; v < n; v++ {
		id := NodeID(v)
		copy(fz.outAdj[fz.outOff[v]:], r.Out(id))
		copy(fz.inAdj[fz.inOff[v]:], r.In(id))
	}

	// Label partition by counting sort: scanning nodes in id order keeps
	// every partition ascending, matching *Graph's lazily built index.
	nl := fz.labels.Len()
	fz.labelOff = make([]int32, nl+1)
	for _, l := range fz.nodeLabel {
		fz.labelOff[l+1]++
	}
	for l := 0; l < nl; l++ {
		fz.labelOff[l+1] += fz.labelOff[l]
	}
	fz.labelIdx = make([]NodeID, n)
	fill := make([]int32, nl)
	for v, l := range fz.nodeLabel {
		fz.labelIdx[fz.labelOff[l]+fill[l]] = NodeID(v)
		fill[l]++
	}

	// Attribute columns, keys sorted per node so that freezing the same
	// graph twice yields identical snapshots (map iteration order must
	// not leak into the columns).
	var keys []string
	for v := 0; v < n; v++ {
		attrs := r.Attrs(NodeID(v))
		keys = keys[:0]
		for k := range attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fz.attrKey = append(fz.attrKey, k)
			fz.attrVal = append(fz.attrVal, attrs[k])
			if r.IsCategorical(k) {
				if fz.catKeys == nil {
					fz.catKeys = make(map[string]struct{})
				}
				fz.catKeys[k] = struct{}{}
			}
		}
		fz.attrOff[v+1] = int32(len(fz.attrKey))
	}
	return fz
}

// Thaw converts the snapshot back to a mutable *Graph sharing no state
// with f. Freeze(f.Thaw()) reproduces f exactly.
func (f *Frozen) Thaw() *Graph {
	n := f.NumNodes()
	g := &Graph{
		labels:    f.labels.Clone(),
		nodeLabel: append([]LabelID(nil), f.nodeLabel...),
		attrs:     make([]map[string]int64, n),
		out:       make([][]NodeID, n),
		in:        make([][]NodeID, n),
		numEdges:  f.numEdges,
	}
	for v := 0; v < n; v++ {
		if out := f.Out(NodeID(v)); len(out) > 0 {
			g.out[v] = append([]NodeID(nil), out...)
		}
		if in := f.In(NodeID(v)); len(in) > 0 {
			g.in[v] = append([]NodeID(nil), in...)
		}
		g.attrs[v] = f.Attrs(NodeID(v))
	}
	if len(f.catKeys) > 0 {
		g.catKeys = make(map[string]struct{}, len(f.catKeys))
		for k := range f.catKeys {
			g.catKeys[k] = struct{}{}
		}
	}
	return g
}

// Interner exposes the snapshot's label interner (a clone of the source
// graph's, so label ids coincide).
func (f *Frozen) Interner() *Interner { return f.labels }

// NumNodes returns |V|.
func (f *Frozen) NumNodes() int { return len(f.nodeLabel) }

// NumEdges returns |E|.
func (f *Frozen) NumEdges() int { return f.numEdges }

// Size returns |G| = |V| + |E|.
func (f *Frozen) Size() int { return f.NumNodes() + f.numEdges }

// Label returns the interned label of v.
func (f *Frozen) Label(v NodeID) LabelID { return f.nodeLabel[v] }

// LabelName returns the label of v as a string.
func (f *Frozen) LabelName(v NodeID) string { return f.labels.Name(f.nodeLabel[v]) }

// Attr returns the attribute value for key on v, by linear scan over the
// node's frozen column range (nodes carry at most a handful of keys).
func (f *Frozen) Attr(v NodeID, key string) (int64, bool) {
	for i := f.attrOff[v]; i < f.attrOff[v+1]; i++ {
		if f.attrKey[i] == key {
			return f.attrVal[i], true
		}
	}
	return 0, false
}

// Attrs returns the attribute map of v, materialized fresh from the
// frozen columns (nil for attribute-free nodes). Unlike *Graph.Attrs the
// returned map does not alias backend storage, but callers should still
// treat it as read-only per the Reader contract; use AttrsCopy for
// guaranteed ownership on any backend.
func (f *Frozen) Attrs(v NodeID) map[string]int64 {
	lo, hi := f.attrOff[v], f.attrOff[v+1]
	if hi == lo {
		return nil
	}
	m := make(map[string]int64, hi-lo)
	for i := lo; i < hi; i++ {
		m[f.attrKey[i]] = f.attrVal[i]
	}
	return m
}

// IsCategorical reports whether key holds interned string values.
func (f *Frozen) IsCategorical(key string) bool {
	_, ok := f.catKeys[key]
	return ok
}

// Out returns the successors of v in ascending order. The slice is a
// capped view into the CSR array: read-only, immutable by construction.
func (f *Frozen) Out(v NodeID) []NodeID {
	return f.outAdj[f.outOff[v]:f.outOff[v+1]:f.outOff[v+1]]
}

// In returns the predecessors of v in ascending order. Read-only.
func (f *Frozen) In(v NodeID) []NodeID {
	return f.inAdj[f.inOff[v]:f.inOff[v+1]:f.inOff[v+1]]
}

// OutDegree returns |post(v)|.
func (f *Frozen) OutDegree(v NodeID) int { return int(f.outOff[v+1] - f.outOff[v]) }

// InDegree returns |pre(v)|.
func (f *Frozen) InDegree(v NodeID) int { return int(f.inOff[v+1] - f.inOff[v]) }

// HasEdge reports whether (u,v) ∈ E, by binary search over u's CSR range.
func (f *Frozen) HasEdge(u, v NodeID) bool {
	s := f.Out(u)
	i := sort.Search(len(s), func(i int) bool { return s[i] >= v })
	return i < len(s) && s[i] == v
}

// NodesWithLabel returns all nodes carrying the given interned label, in
// ascending order, as a capped view into the prebuilt partition — no
// mutex, no lazy build, immutable by construction. Unknown labels
// (including NoLabel) yield nil.
func (f *Frozen) NodesWithLabel(l LabelID) []NodeID {
	if l < 0 || int(l) >= len(f.labelOff)-1 {
		return nil
	}
	lo, hi := f.labelOff[l], f.labelOff[l+1]
	if lo == hi {
		return nil
	}
	return f.labelIdx[lo:hi:hi]
}

// NodesWithLabelName is NodesWithLabel keyed by label name.
func (f *Frozen) NodesWithLabelName(name string) []NodeID {
	return f.NodesWithLabel(f.labels.Lookup(name))
}

// Edges calls fn for every edge (u,v) grouped by ascending source; it
// stops early if fn returns false.
func (f *Frozen) Edges(fn func(u, v NodeID) bool) {
	for u := 0; u < len(f.nodeLabel); u++ {
		for _, v := range f.outAdj[f.outOff[u]:f.outOff[u+1]] {
			if !fn(NodeID(u), v) {
				return
			}
		}
	}
}

// String summarizes the snapshot.
func (f *Frozen) String() string {
	return fmt.Sprintf("frozen{|V|=%d |E|=%d |Σ|=%d}", f.NumNodes(), f.numEdges, f.labels.Len())
}

// ComputeStats gathers Stats for the snapshot.
func (f *Frozen) ComputeStats() Stats {
	s := Stats{Nodes: f.NumNodes(), Edges: f.numEdges, Labels: f.labels.Len()}
	for v := 0; v < f.NumNodes(); v++ {
		if d := f.OutDegree(NodeID(v)); d > s.MaxOutDeg {
			s.MaxOutDeg = d
		}
		if d := f.InDegree(NodeID(v)); d > s.MaxInDeg {
			s.MaxInDeg = d
		}
	}
	if s.Nodes > 0 {
		s.AvgDeg = float64(s.Edges) / float64(s.Nodes)
	}
	return s
}
