package graph

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"
)

// shardCounts is the shard sweep the unit tests run; it covers the
// degenerate single shard, k coprime to typical sizes, and k > |V|.
var shardCounts = []int{1, 2, 3, 7, 100}

// randomShardGraph builds a random labeled graph with integer and
// categorical attributes for the differential unit tests.
func randomShardGraph(rng *rand.Rand, n, m int) *Graph {
	labels := []string{"A", "B", "C", "D"}
	cats := []string{"x", "y", "z"}
	g := New()
	for i := 0; i < n; i++ {
		v := g.AddNode(labels[rng.Intn(len(labels))])
		if rng.Intn(3) == 0 {
			g.SetAttr(v, "w", int64(rng.Intn(50)))
		}
		if rng.Intn(4) == 0 {
			g.SetAttrString(v, "cat", cats[rng.Intn(len(cats))])
		}
	}
	for i := 0; i < m; i++ {
		g.AddEdge(NodeID(rng.Intn(n)), NodeID(rng.Intn(n)))
	}
	return g
}

// TestShardedMatchesFrozen checks every Reader accessor agrees between a
// frozen snapshot and the sharded backend at every shard count.
func TestShardedMatchesFrozen(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g := randomShardGraph(rng, 60, 200)
	f := Freeze(g)
	for _, k := range shardCounts {
		s := Shard(g, k)
		if s.NumShards() != max(k, 1) {
			t.Fatalf("k=%d: NumShards=%d", k, s.NumShards())
		}
		if s.NumNodes() != f.NumNodes() || s.NumEdges() != f.NumEdges() || s.Size() != f.Size() {
			t.Fatalf("k=%d: size mismatch", k)
		}
		owned := 0
		for si := 0; si < s.NumShards(); si++ {
			owned += s.ShardSize(si)
		}
		if owned != s.NumNodes() {
			t.Fatalf("k=%d: shard sizes sum to %d, want %d", k, owned, s.NumNodes())
		}
		for v := NodeID(0); int(v) < f.NumNodes(); v++ {
			if s.ShardOf(v) != int(v)%s.NumShards() {
				t.Fatalf("k=%d node %d: wrong owner", k, v)
			}
			if s.Label(v) != f.Label(v) || s.LabelName(v) != f.LabelName(v) {
				t.Fatalf("k=%d node %d: label mismatch", k, v)
			}
			if !equalIDs(s.Out(v), f.Out(v)) || !equalIDs(s.In(v), f.In(v)) {
				t.Fatalf("k=%d node %d: adjacency mismatch", k, v)
			}
			if s.OutDegree(v) != f.OutDegree(v) || s.InDegree(v) != f.InDegree(v) {
				t.Fatalf("k=%d node %d: degree mismatch", k, v)
			}
			if !reflect.DeepEqual(s.Attrs(v), f.Attrs(v)) {
				t.Fatalf("k=%d node %d: Attrs mismatch", k, v)
			}
			for _, key := range []string{"w", "cat", "absent"} {
				sv, sok := s.Attr(v, key)
				fv, fok := f.Attr(v, key)
				if sv != fv || sok != fok {
					t.Fatalf("k=%d node %d key %q: attr mismatch", k, v, key)
				}
			}
			for _, w := range f.Out(v) {
				if !s.HasEdge(v, w) {
					t.Fatalf("k=%d: missing edge (%d,%d)", k, v, w)
				}
			}
			if s.HasEdge(v, NodeID(f.NumNodes()-1)) != f.HasEdge(v, NodeID(f.NumNodes()-1)) {
				t.Fatalf("k=%d: HasEdge disagrees at node %d", k, v)
			}
		}
		for _, name := range append(g.Interner().Names(), "nope") {
			if !equalIDs(s.NodesWithLabelName(name), f.NodesWithLabelName(name)) {
				t.Fatalf("k=%d label %q: partition mismatch:\n%v\nvs\n%v",
					k, name, s.NodesWithLabelName(name), f.NodesWithLabelName(name))
			}
		}
		if s.NodesWithLabel(NoLabel) != nil {
			t.Fatalf("k=%d: NodesWithLabel(NoLabel) non-nil", k)
		}
		if s.IsCategorical("cat") != f.IsCategorical("cat") || s.IsCategorical("w") != f.IsCategorical("w") {
			t.Fatalf("k=%d: IsCategorical mismatch", k)
		}
		var se, fe [][2]NodeID
		s.Edges(func(u, v NodeID) bool { se = append(se, [2]NodeID{u, v}); return true })
		f.Edges(func(u, v NodeID) bool { fe = append(fe, [2]NodeID{u, v}); return true })
		if !reflect.DeepEqual(se, fe) {
			t.Fatalf("k=%d: Edges enumeration differs", k)
		}
	}
}

// TestShardUnshardIdentity: Shard→Unshard must reproduce Freeze of the
// source exactly, field for field, at every shard count — and from every
// source backend (mutable, frozen, re-sharded).
func TestShardUnshardIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := randomShardGraph(rng, 45, 140)
	want := Freeze(g)
	for _, k := range shardCounts {
		if got := Shard(g, k).Unshard(); !reflect.DeepEqual(want, got) {
			t.Fatalf("k=%d: Shard(g).Unshard() != Freeze(g)", k)
		}
		if got := Shard(want, k).Unshard(); !reflect.DeepEqual(want, got) {
			t.Fatalf("k=%d: Shard(Freeze(g)).Unshard() != Freeze(g)", k)
		}
		if got := Shard(Shard(g, 3), k).Unshard(); !reflect.DeepEqual(want, got) {
			t.Fatalf("k=%d: re-sharding diverged", k)
		}
	}
}

// TestShardBoundaryInvariants: the per-shard boundary arrays must hold
// exactly the cross-shard edges, in ascending (src,dst) order, with src
// owned by the shard; internal + cross edges must sum to |E|.
func TestShardBoundaryInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	g := randomShardGraph(rng, 50, 180)
	for _, k := range shardCounts {
		s := Shard(g, k)
		wantCross := 0
		g.Edges(func(u, v NodeID) bool {
			if int(u)%s.NumShards() != int(v)%s.NumShards() {
				wantCross++
			}
			return true
		})
		if s.CrossEdges() != wantCross {
			t.Fatalf("k=%d: CrossEdges=%d, want %d", k, s.CrossEdges(), wantCross)
		}
		total := 0
		for si := 0; si < s.NumShards(); si++ {
			src, dst := s.Boundary(si)
			if len(src) != len(dst) {
				t.Fatalf("k=%d shard %d: boundary arrays out of sync", k, si)
			}
			total += len(src)
			for i := range src {
				if s.ShardOf(src[i]) != si {
					t.Fatalf("k=%d shard %d: boundary src %d not owned", k, si, src[i])
				}
				if s.ShardOf(dst[i]) == si {
					t.Fatalf("k=%d shard %d: boundary dst %d is local", k, si, dst[i])
				}
				if !g.HasEdge(src[i], dst[i]) {
					t.Fatalf("k=%d shard %d: boundary edge (%d,%d) not in G", k, si, src[i], dst[i])
				}
				if i > 0 && (src[i] < src[i-1] || (src[i] == src[i-1] && dst[i] <= dst[i-1])) {
					t.Fatalf("k=%d shard %d: boundary not ascending at %d", k, si, i)
				}
			}
		}
		if total != wantCross {
			t.Fatalf("k=%d: boundary arrays hold %d edges, want %d", k, total, wantCross)
		}
	}
}

// TestShardPerShardLabelPartitions: shard partitions must tile the global
// partition — ascending within each shard, owned by it, and merging back
// to the frozen partition.
func TestShardPerShardLabelPartitions(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	g := randomShardGraph(rng, 40, 100)
	f := Freeze(g)
	s := Shard(g, 3)
	for l := LabelID(0); int(l) < g.Interner().Len(); l++ {
		var parts [][]NodeID
		total := 0
		for si := 0; si < s.NumShards(); si++ {
			p := s.ShardNodesWithLabel(si, l)
			for i, v := range p {
				if s.ShardOf(v) != si {
					t.Fatalf("label %d shard %d: node %d not owned", l, si, v)
				}
				if i > 0 && p[i-1] >= v {
					t.Fatalf("label %d shard %d: partition not ascending", l, si)
				}
			}
			parts = append(parts, p)
			total += len(p)
		}
		if !equalIDs(MergeAscending(parts, total), f.NodesWithLabel(l)) {
			t.Fatalf("label %d: merged shard partitions != frozen partition", l)
		}
	}
	if s.ShardNodesWithLabel(0, NoLabel) != nil {
		t.Fatalf("ShardNodesWithLabel(NoLabel) non-nil")
	}
}

// TestShardIsolation: mutating the source after Shard must not show
// through, mirroring TestFreezeIsolation.
func TestShardIsolation(t *testing.T) {
	g := frozenFixture()
	s := Shard(g, 2)
	nodes, edges := s.NumNodes(), s.NumEdges()
	aOut := append([]NodeID(nil), s.Out(0)...)

	v := g.AddNode("D")
	g.AddEdge(0, v)
	g.SetAttr(0, "x", 999)
	g.Interner().Intern("brand-new-label")

	if s.NumNodes() != nodes || s.NumEdges() != edges {
		t.Fatalf("sharded backend changed size after source mutation")
	}
	if !equalIDs(s.Out(0), aOut) {
		t.Fatalf("sharded adjacency changed after source mutation")
	}
	if got, _ := s.Attr(0, "x"); got != 3 {
		t.Fatalf("sharded attribute changed after source mutation: %d", got)
	}
	if s.Interner().Lookup("brand-new-label") != NoLabel {
		t.Fatalf("sharded interner shares state with source")
	}
}

// TestShardSameKIsNoop: re-sharding at the same k returns the receiver.
func TestShardSameKIsNoop(t *testing.T) {
	s := Shard(frozenFixture(), 3)
	if Shard(s, 3) != s {
		t.Fatalf("Shard(*Sharded, same k) allocated a new backend")
	}
	if Shard(s, 2) == s {
		t.Fatalf("Shard(*Sharded, different k) returned the receiver")
	}
}

// TestShardDegenerate: k below 1 clamps, and empty graphs shard cleanly.
func TestShardDegenerate(t *testing.T) {
	if s := Shard(New(), 4); s.NumNodes() != 0 || s.NumShards() != 4 || s.Unshard().NumNodes() != 0 {
		t.Fatalf("empty graph sharding broken")
	}
	if s := Shard(frozenFixture(), 0); s.NumShards() != 1 {
		t.Fatalf("k=0 should clamp to a single shard, got %d", s.NumShards())
	}
	if s := Shard(frozenFixture(), -3); s.NumShards() != 1 {
		t.Fatalf("negative k should clamp to a single shard, got %d", s.NumShards())
	}
}

// TestShardedConcurrentReads hammers the merge-on-read label cache and
// per-shard accessors from many goroutines; run with -race. The cache
// build is the one mutex in the backend — everything else is immutable.
func TestShardedConcurrentReads(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := Shard(randomShardGraph(rng, 60, 200), 4)
	labels := s.Interner()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				for l := LabelID(0); int(l) < labels.Len(); l++ {
					for _, v := range s.NodesWithLabel(l) {
						_ = s.Out(v)
						_ = s.In(v)
						_, _ = s.Attr(v, "w")
					}
					for si := 0; si < s.NumShards(); si++ {
						_ = s.ShardNodesWithLabel(si, l)
					}
				}
			}
		}()
	}
	wg.Wait()
}

// TestMergeAscending covers the k-way merge shared with the seeding path.
func TestMergeAscending(t *testing.T) {
	cases := []struct {
		parts [][]NodeID
		want  []NodeID
	}{
		{nil, nil},
		{[][]NodeID{nil, {}}, nil},
		{[][]NodeID{{1, 4, 9}}, []NodeID{1, 4, 9}},
		{[][]NodeID{{0, 3}, {1, 4}, {2, 5}}, []NodeID{0, 1, 2, 3, 4, 5}},
		{[][]NodeID{{5}, nil, {0, 9}, {7}}, []NodeID{0, 5, 7, 9}},
	}
	for i, c := range cases {
		total := 0
		for _, p := range c.parts {
			total += len(p)
		}
		if got := MergeAscending(c.parts, total); !reflect.DeepEqual(got, c.want) {
			t.Fatalf("case %d: got %v, want %v", i, got, c.want)
		}
	}
}

func equalIDs(a, b []NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
