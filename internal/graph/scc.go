package graph

// Strongly connected components via an iterative Tarjan algorithm, plus the
// condensation DAG. The MatchJoin optimization of Section III computes node
// ranks over the SCC graph of the *pattern*, but patterns convert to data
// graphs (pattern.AsGraph), so the implementation lives here and is reused.

// SCCResult holds the strongly connected components of a graph.
type SCCResult struct {
	// Comps lists the components; each is a non-empty slice of nodes.
	Comps [][]NodeID
	// CompOf maps each node to the index of its component in Comps.
	CompOf []int32
}

// SCC computes strongly connected components with an iterative Tarjan
// traversal (no recursion, safe for deep graphs).
func SCC(g Reader) *SCCResult {
	n := g.NumNodes()
	res := &SCCResult{CompOf: make([]int32, n)}
	for i := range res.CompOf {
		res.CompOf[i] = -1
	}

	index := make([]int32, n)
	lowlink := make([]int32, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}

	var stack []NodeID // Tarjan stack
	var next int32     // next DFS index

	// Explicit DFS frames: node + position in its adjacency list.
	type frame struct {
		v  NodeID
		ei int
	}
	var frames []frame

	for root := NodeID(0); int(root) < n; root++ {
		if index[root] != -1 {
			continue
		}
		frames = append(frames[:0], frame{v: root})
		index[root] = next
		lowlink[root] = next
		next++
		stack = append(stack, root)
		onStack[root] = true

		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			v := f.v
			advanced := false
			out := g.Out(v)
			for f.ei < len(out) {
				w := out[f.ei]
				f.ei++
				if index[w] == -1 {
					index[w] = next
					lowlink[w] = next
					next++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{v: w})
					advanced = true
					break
				} else if onStack[w] && index[w] < lowlink[v] {
					lowlink[v] = index[w]
				}
			}
			if advanced {
				continue
			}
			// v is finished.
			if lowlink[v] == index[v] {
				comp := make([]NodeID, 0, 2)
				ci := int32(len(res.Comps))
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					res.CompOf[w] = ci
					comp = append(comp, w)
					if w == v {
						break
					}
				}
				res.Comps = append(res.Comps, comp)
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := frames[len(frames)-1].v
				if lowlink[v] < lowlink[p] {
					lowlink[p] = lowlink[v]
				}
			}
		}
	}
	return res
}

// Condensation returns the SCC DAG: one node per component, an edge
// (i, j) when some edge of g crosses from component i to component j.
// Edges are deduplicated.
func (r *SCCResult) Condensation(g Reader) [][]int32 {
	adj := make([][]int32, len(r.Comps))
	seen := make(map[int64]struct{})
	g.Edges(func(u, v NodeID) bool {
		cu, cv := r.CompOf[u], r.CompOf[v]
		if cu == cv {
			return true
		}
		key := int64(cu)<<32 | int64(uint32(cv))
		if _, dup := seen[key]; !dup {
			seen[key] = struct{}{}
			adj[cu] = append(adj[cu], cv)
		}
		return true
	})
	return adj
}

// IsSingleton reports whether component ci is a single node with no
// self-loop (a "singleton SCC" in the paper's Lemma 2 terminology).
func (r *SCCResult) IsSingleton(g Reader, ci int32) bool {
	comp := r.Comps[ci]
	if len(comp) != 1 {
		return false
	}
	v := comp[0]
	return !g.HasEdge(v, v)
}

// Heights computes the height of every component over the condensation
// DAG cond (as returned by Condensation): 0 for components with no
// successors, otherwise max{1 + height of successor}. This is the rank
// of Section III at component granularity; Ranks projects it onto nodes
// and pattern.Condense groups equal heights into waves.
func (r *SCCResult) Heights(cond [][]int32) []int {
	nc := len(r.Comps)
	height := make([]int, nc)
	done := make([]bool, nc)

	var visit func(c int32) int
	visit = func(c int32) int {
		if done[c] {
			return height[c]
		}
		h := 0
		for _, d := range cond[c] {
			if dh := visit(d) + 1; dh > h {
				h = dh
			}
		}
		height[c] = h
		done[c] = true
		return h
	}
	for c := int32(0); int(c) < nc; c++ {
		visit(c)
	}
	return height
}

// Ranks computes the rank of every node per Section III of the paper:
// r(u) = 0 if u's SCC is a leaf of the condensation DAG, and otherwise
// r(u) = max{1 + r(u')} over condensation successors. All nodes of one SCC
// share a rank.
func Ranks(g Reader) []int {
	scc := SCC(g)
	rank := scc.Heights(scc.Condensation(g))
	out := make([]int, g.NumNodes())
	for v := range out {
		out[v] = rank[scc.CompOf[v]]
	}
	return out
}
