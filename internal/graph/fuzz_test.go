package graph

import (
	"reflect"
	"testing"
)

// graphFromFuzzBytes decodes an arbitrary byte string into a small
// labeled, attributed graph deterministically: the first byte sizes the
// node set, one byte per node picks its label and attributes, and the
// remaining bytes pair up into edges. Every byte string is a valid
// graph, so the fuzzer explores the full input space.
func graphFromFuzzBytes(data []byte) *Graph {
	g := New()
	if len(data) == 0 {
		return g
	}
	labels := [...]string{"A", "B", "C", "D", "E"}
	n := 1 + int(data[0])%32
	data = data[1:]
	for i := 0; i < n; i++ {
		var b byte
		if len(data) > 0 {
			b = data[0]
			data = data[1:]
		}
		v := g.AddNode(labels[int(b)%len(labels)])
		switch b % 5 {
		case 1:
			g.SetAttr(v, "x", int64(b))
		case 2:
			g.SetAttrString(v, "c", string('p'+rune(b%3)))
		case 3:
			g.SetAttr(v, "x", int64(b))
			g.SetAttr(v, "y", -int64(b))
		}
	}
	for len(data) >= 2 {
		g.AddEdge(NodeID(int(data[0])%n), NodeID(int(data[1])%n))
		data = data[2:]
	}
	return g
}

// FuzzShardRoundTrip pins the sharded backend's core identity on
// arbitrary graphs: for every shard count, Shard→Unshard must reproduce
// Freeze of the source field for field (Unshard is Freeze over the
// sharded Reader, so this is exactly Reader-method equivalence), the
// boundary arrays must hold the cross-shard edges and nothing else, and
// the merge-on-read label partitions must match the frozen ones.
//
// Run the seed corpus with `go test`; fuzz with
//
//	go test -run '^$' -fuzz '^FuzzShardRoundTrip$' -fuzztime 15s ./internal/graph
func FuzzShardRoundTrip(f *testing.F) {
	f.Add([]byte(""))
	f.Add([]byte("\x00"))
	f.Add([]byte("\x05ABCDE\x00\x01\x01\x02\x02\x03\x03\x04\x04\x00"))
	f.Add([]byte("\x1f0123456789abcdefghijklmnopqrstuv\x00\x10\x10\x05\x05\x1e"))
	f.Add([]byte("\x02\x01\x02\x00\x00\x00\x01\x01\x00\x01\x01"))
	f.Fuzz(func(t *testing.T, data []byte) {
		g := graphFromFuzzBytes(data)
		fz := Freeze(g)
		for _, k := range []int{1, 2, 3, 7} {
			sh := Shard(g, k)
			if got := sh.Unshard(); !reflect.DeepEqual(fz, got) {
				t.Fatalf("k=%d: Shard→Unshard != Freeze\ngraph: %v", k, g)
			}
			if got := Shard(fz, k).Unshard(); !reflect.DeepEqual(fz, got) {
				t.Fatalf("k=%d: Shard(Frozen)→Unshard != Freeze\ngraph: %v", k, g)
			}

			// Boundary arrays: exactly the cross-shard edges, owned on the
			// src side, ascending.
			wantCross := 0
			g.Edges(func(u, v NodeID) bool {
				if int(u)%k != int(v)%k {
					wantCross++
				}
				return true
			})
			total := 0
			for si := 0; si < k; si++ {
				src, dst := sh.Boundary(si)
				if len(src) != len(dst) {
					t.Fatalf("k=%d shard %d: boundary arrays out of sync", k, si)
				}
				total += len(src)
				for i := range src {
					if sh.ShardOf(src[i]) != si || sh.ShardOf(dst[i]) == si {
						t.Fatalf("k=%d shard %d: misplaced boundary edge (%d,%d)",
							k, si, src[i], dst[i])
					}
					if !g.HasEdge(src[i], dst[i]) {
						t.Fatalf("k=%d shard %d: phantom boundary edge (%d,%d)",
							k, si, src[i], dst[i])
					}
				}
			}
			if total != wantCross || sh.CrossEdges() != wantCross {
				t.Fatalf("k=%d: boundary holds %d edges (CrossEdges=%d), want %d",
					k, total, sh.CrossEdges(), wantCross)
			}

			// Merge-on-read label partitions must match the frozen index.
			for l := LabelID(-1); int(l) <= g.Interner().Len(); l++ {
				sn, fn := sh.NodesWithLabel(l), fz.NodesWithLabel(l)
				if len(sn) != len(fn) {
					t.Fatalf("k=%d label %d: partition %v vs %v", k, l, sn, fn)
				}
				for i := range sn {
					if sn[i] != fn[i] {
						t.Fatalf("k=%d label %d: partition %v vs %v", k, l, sn, fn)
					}
				}
			}
		}
	})
}
