package graph

// Plain-text serialization for data graphs. The format is line oriented:
//
//	# comment
//	node <label> [key=intval | key="strval"]...
//	edge <u> <v>
//
// Nodes are implicitly numbered 0,1,2,... in order of appearance, which
// matches the dense NodeID space. The cmd/ tools use this format.

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Write serializes g to w in the text format. Any Reader backend can be
// written; Read always produces a mutable *Graph (Freeze it as needed).
func Write(w io.Writer, g Reader) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# graphviews data graph: %d nodes, %d edges\n", g.NumNodes(), g.NumEdges())
	for v := NodeID(0); int(v) < g.NumNodes(); v++ {
		fmt.Fprintf(bw, "node %s", quoteIfNeeded(g.LabelName(v)))
		attrs := g.Attrs(v)
		// Deterministic attribute order.
		keys := make([]string, 0, len(attrs))
		for k := range attrs {
			keys = append(keys, k)
		}
		sortStrings(keys)
		for _, k := range keys {
			val := attrs[k]
			if g.IsCategorical(k) {
				// Categorical values are interner ids; write the string so
				// the reader can re-intern under its own id assignment.
				fmt.Fprintf(bw, " %s=%q", k, g.Interner().Name(LabelID(val)))
			} else {
				fmt.Fprintf(bw, " %s=%d", k, val)
			}
		}
		fmt.Fprintln(bw)
	}
	var err error
	g.Edges(func(u, v NodeID) bool {
		_, err = fmt.Fprintf(bw, "edge %d %d\n", u, v)
		return err == nil
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}

// Read parses a graph in the text format.
func Read(r io.Reader) (*Graph, error) {
	g := New()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := splitQuoted(line)
		switch fields[0] {
		case "node":
			if len(fields) < 2 {
				return nil, fmt.Errorf("graph: line %d: node needs a label", lineNo)
			}
			label := fields[1]
			if strings.HasPrefix(label, `"`) {
				unq, err := strconv.Unquote(label)
				if err != nil {
					return nil, fmt.Errorf("graph: line %d: bad label %s: %v", lineNo, label, err)
				}
				label = unq
			}
			v := g.AddNode(label)
			for _, f := range fields[2:] {
				eq := strings.IndexByte(f, '=')
				if eq <= 0 {
					return nil, fmt.Errorf("graph: line %d: bad attribute %q", lineNo, f)
				}
				key, raw := f[:eq], f[eq+1:]
				if strings.HasPrefix(raw, `"`) && strings.HasSuffix(raw, `"`) && len(raw) >= 2 {
					g.SetAttrString(v, key, raw[1:len(raw)-1])
				} else {
					n, err := strconv.ParseInt(raw, 10, 64)
					if err != nil {
						return nil, fmt.Errorf("graph: line %d: bad attribute value %q: %v", lineNo, raw, err)
					}
					g.SetAttr(v, key, n)
				}
			}
		case "edge":
			if len(fields) != 3 {
				return nil, fmt.Errorf("graph: line %d: edge needs two endpoints", lineNo)
			}
			u, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: %v", lineNo, err)
			}
			v, err := strconv.Atoi(fields[2])
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: %v", lineNo, err)
			}
			if u < 0 || u >= g.NumNodes() || v < 0 || v >= g.NumNodes() {
				return nil, fmt.Errorf("graph: line %d: edge (%d,%d) out of range", lineNo, u, v)
			}
			g.AddEdge(NodeID(u), NodeID(v))
		default:
			return nil, fmt.Errorf("graph: line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return g, nil
}

func quoteIfNeeded(s string) string {
	if strings.ContainsAny(s, " \t\"") {
		return strconv.Quote(s)
	}
	return s
}

// splitQuoted splits on whitespace but keeps "quoted strings" (which may
// appear as attribute values) intact.
func splitQuoted(s string) []string {
	var out []string
	var cur strings.Builder
	inQ := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"':
			inQ = !inQ
			cur.WriteByte(c)
		case (c == ' ' || c == '\t') && !inQ:
			if cur.Len() > 0 {
				out = append(out, cur.String())
				cur.Reset()
			}
		default:
			cur.WriteByte(c)
		}
	}
	if cur.Len() > 0 {
		out = append(out, cur.String())
	}
	return out
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// DOT renders g in Graphviz format (small graphs only; debugging aid).
func DOT(w io.Writer, g Reader, name string) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "digraph %q {\n", name)
	for v := NodeID(0); int(v) < g.NumNodes(); v++ {
		fmt.Fprintf(bw, "  n%d [label=%q];\n", v, g.LabelName(v))
	}
	g.Edges(func(u, v NodeID) bool {
		fmt.Fprintf(bw, "  n%d -> n%d;\n", u, v)
		return true
	})
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}

// ExpandEdgeLabels implements Remark (2) of Section II: it converts an
// edge-labeled graph into a node-labeled one by replacing every labeled
// edge (u, label, v) with a fresh node carrying the label and the two
// edges u→dummy→v. Unlabeled edges (empty label) are kept as-is.
type LabeledEdge struct {
	From, To NodeID
	Label    string
}

// BuildFromLabeledEdges constructs a node-labeled graph from node labels
// and a labeled edge list via the dummy-node transformation.
func BuildFromLabeledEdges(nodeLabels []string, edges []LabeledEdge) *Graph {
	g := New()
	for _, l := range nodeLabels {
		g.AddNode(l)
	}
	for _, e := range edges {
		if e.Label == "" {
			g.AddEdge(e.From, e.To)
			continue
		}
		d := g.AddNode(e.Label)
		g.AddEdge(e.From, d)
		g.AddEdge(d, e.To)
	}
	return g
}
