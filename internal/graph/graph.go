// Package graph provides the directed, node-labeled data graphs used
// throughout the library: G = (V, E, L) per Section II-A of Fan, Wang and
// Wu, "Answering Graph Pattern Queries Using Views" (ICDE 2014).
//
// Nodes are dense int32 identifiers. Each node carries one primary label
// (interned) and an optional set of integer-valued attributes; categorical
// attribute values (e.g. a video category) are interned through the same
// graph-level interner so that predicate evaluation is integer comparison.
//
// Two representations back the read-only Reader interface the engines
// consume: the mutable *Graph is adjacency-list based with both forward
// and reverse lists, kept sorted so that edge existence checks are
// logarithmic and set intersections used by the simulation engines are
// cache friendly, and supports in-place edge insertion and deletion,
// which the view maintenance code (internal/view) relies on; the
// immutable *Frozen (see Freeze) is a CSR snapshot with flat edge arrays,
// a prebuilt lock-free label index and frozen attribute columns,
// optimized for concurrent read-only evaluation. Engines accept Reader
// and run identically on either backend.
package graph

import (
	"fmt"
	"sort"
	"sync"
)

// NodeID identifies a node of a Graph. IDs are dense: 0..NumNodes()-1.
type NodeID int32

// LabelID is an interned label (or interned categorical attribute value).
type LabelID int32

// NoLabel is returned by interner lookups for unknown names.
const NoLabel LabelID = -1

// Graph is a directed data graph with labeled nodes and optional
// integer-valued node attributes. The zero value is not usable; call New.
type Graph struct {
	labels *Interner // node labels and categorical attribute values

	nodeLabel []LabelID
	attrs     []map[string]int64 // nil entries for attribute-free nodes

	out [][]NodeID // sorted adjacency
	in  [][]NodeID // sorted reverse adjacency

	numEdges int

	// labelMu guards the lazy construction of labelIndex: read-only
	// operations (simulation, materialization) may run concurrently over
	// one graph, and the first NodesWithLabel call must not race.
	labelMu    sync.Mutex
	labelIndex map[LabelID][]NodeID // guarded by labelMu; lazily built, invalidated by AddNode

	// catKeys records attribute keys set through SetAttrString; their
	// values are interned label ids, which serialization must write as
	// strings so they survive re-interning on load.
	catKeys map[string]struct{}
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{labels: NewInterner()}
}

// NewWithCapacity returns an empty graph with room for n nodes.
func NewWithCapacity(n int) *Graph {
	return &Graph{
		labels:    NewInterner(),
		nodeLabel: make([]LabelID, 0, n),
		attrs:     make([]map[string]int64, 0, n),
		out:       make([][]NodeID, 0, n),
		in:        make([][]NodeID, 0, n),
	}
}

// Interner exposes the graph's label interner. Categorical attribute values
// share this interner; pattern compilation uses it to resolve names.
func (g *Graph) Interner() *Interner { return g.labels }

// NumNodes returns |V|.
func (g *Graph) NumNodes() int { return len(g.nodeLabel) }

// NumEdges returns |E|.
func (g *Graph) NumEdges() int { return g.numEdges }

// Size returns |G| = |V| + |E|, the size measure used by the paper.
func (g *Graph) Size() int { return g.NumNodes() + g.NumEdges() }

// AddNode appends a node with the given label and returns its id.
func (g *Graph) AddNode(label string) NodeID {
	l := g.labels.Intern(label)
	// The node append and the index invalidation run under labelMu: the
	// lazy NodesWithLabel build reads nodeLabel and writes labelIndex
	// under the same lock, so a caller who misjudges the external
	// synchronization contract cannot tear the slice mid-build or bake a
	// stale index. Mutations still require external synchronization with
	// all other readers, as everywhere else on Graph.
	g.labelMu.Lock()
	id := NodeID(len(g.nodeLabel))
	g.nodeLabel = append(g.nodeLabel, l)
	g.attrs = append(g.attrs, nil)
	g.out = append(g.out, nil)
	g.in = append(g.in, nil)
	g.labelIndex = nil
	g.labelMu.Unlock()
	return id
}

// SetAttr sets integer attribute key=val on node v.
func (g *Graph) SetAttr(v NodeID, key string, val int64) {
	if g.attrs[v] == nil {
		g.attrs[v] = make(map[string]int64, 4)
	}
	g.attrs[v][key] = val
}

// SetAttrString sets a categorical attribute; the value is interned. A
// key set through SetAttrString is categorical on every node: mixing
// string and integer values under one key is not supported.
func (g *Graph) SetAttrString(v NodeID, key, val string) {
	if g.catKeys == nil {
		g.catKeys = make(map[string]struct{})
	}
	g.catKeys[key] = struct{}{}
	g.SetAttr(v, key, int64(g.labels.Intern(val)))
}

// IsCategorical reports whether key holds interned string values.
func (g *Graph) IsCategorical(key string) bool {
	_, ok := g.catKeys[key]
	return ok
}

// Attr returns the attribute value for key on v.
func (g *Graph) Attr(v NodeID, key string) (int64, bool) {
	m := g.attrs[v]
	if m == nil {
		return 0, false
	}
	val, ok := m[key]
	return val, ok
}

// Attrs returns the attribute map of v (may be nil). The map aliases the
// node's live attribute storage: callers must not mutate it (see the
// Reader aliasing contract; use AttrsCopy for ownership).
func (g *Graph) Attrs(v NodeID) map[string]int64 { return g.attrs[v] }

// Label returns the interned label of v.
func (g *Graph) Label(v NodeID) LabelID { return g.nodeLabel[v] }

// LabelName returns the label of v as a string.
func (g *Graph) LabelName(v NodeID) string { return g.labels.Name(g.nodeLabel[v]) }

// insertSorted inserts x into sorted slice s if absent; reports insertion.
func insertSorted(s []NodeID, x NodeID) ([]NodeID, bool) {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= x })
	if i < len(s) && s[i] == x {
		return s, false
	}
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = x
	return s, true
}

// removeSorted removes x from sorted slice s; reports removal.
func removeSorted(s []NodeID, x NodeID) ([]NodeID, bool) {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= x })
	if i >= len(s) || s[i] != x {
		return s, false
	}
	copy(s[i:], s[i+1:])
	return s[:len(s)-1], true
}

// AddEdge inserts the edge (u,v). It reports whether the edge was new.
// Self-loops are allowed; parallel edges are not (E ⊆ V×V per the paper).
func (g *Graph) AddEdge(u, v NodeID) bool {
	nu, inserted := insertSorted(g.out[u], v)
	if !inserted {
		return false
	}
	g.out[u] = nu
	g.in[v], _ = insertSorted(g.in[v], u)
	g.numEdges++
	return true
}

// RemoveEdge deletes the edge (u,v). It reports whether the edge existed.
func (g *Graph) RemoveEdge(u, v NodeID) bool {
	nu, removed := removeSorted(g.out[u], v)
	if !removed {
		return false
	}
	g.out[u] = nu
	g.in[v], _ = removeSorted(g.in[v], u)
	g.numEdges--
	return true
}

// HasEdge reports whether (u,v) ∈ E.
func (g *Graph) HasEdge(u, v NodeID) bool {
	s := g.out[u]
	i := sort.Search(len(s), func(i int) bool { return s[i] >= v })
	return i < len(s) && s[i] == v
}

// Out returns the successors of v in ascending order. Read-only.
func (g *Graph) Out(v NodeID) []NodeID { return g.out[v] }

// In returns the predecessors of v in ascending order. Read-only.
func (g *Graph) In(v NodeID) []NodeID { return g.in[v] }

// OutDegree returns |post(v)|.
func (g *Graph) OutDegree(v NodeID) int { return len(g.out[v]) }

// InDegree returns |pre(v)|.
func (g *Graph) InDegree(v NodeID) int { return len(g.in[v]) }

// NodesWithLabel returns all nodes carrying the given interned label.
// The index is built lazily and reused until the node set changes; the
// build is mutex-guarded so concurrent readers (parallel view
// materialization) are safe. Mutations must still be externally
// synchronized with readers, as everywhere else on Graph. The returned
// slice aliases the index: callers must not mutate it (Reader contract).
// Freeze the graph to get a mutex-free prebuilt index for read-heavy
// concurrent evaluation.
func (g *Graph) NodesWithLabel(l LabelID) []NodeID {
	g.labelMu.Lock()
	if g.labelIndex == nil {
		idx := make(map[LabelID][]NodeID)
		for v, lab := range g.nodeLabel {
			idx[lab] = append(idx[lab], NodeID(v))
		}
		g.labelIndex = idx
	}
	nodes := g.labelIndex[l]
	g.labelMu.Unlock()
	return nodes
}

// NodesWithLabelName is NodesWithLabel keyed by label name.
func (g *Graph) NodesWithLabelName(name string) []NodeID {
	l := g.labels.Lookup(name)
	if l == NoLabel {
		return nil
	}
	return g.NodesWithLabel(l)
}

// Clone returns a deep copy sharing no mutable state with g.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		labels:    g.labels.Clone(),
		nodeLabel: append([]LabelID(nil), g.nodeLabel...),
		attrs:     make([]map[string]int64, len(g.attrs)),
		out:       make([][]NodeID, len(g.out)),
		in:        make([][]NodeID, len(g.in)),
		numEdges:  g.numEdges,
	}
	if g.catKeys != nil {
		c.catKeys = make(map[string]struct{}, len(g.catKeys))
		for k := range g.catKeys {
			c.catKeys[k] = struct{}{}
		}
	}
	for i, m := range g.attrs {
		if m != nil {
			cm := make(map[string]int64, len(m))
			for k, v := range m {
				cm[k] = v
			}
			c.attrs[i] = cm
		}
	}
	for i := range g.out {
		c.out[i] = append([]NodeID(nil), g.out[i]...)
		c.in[i] = append([]NodeID(nil), g.in[i]...)
	}
	return c
}

// Edges calls fn for every edge (u,v); it stops early if fn returns false.
func (g *Graph) Edges(fn func(u, v NodeID) bool) {
	for u := range g.out {
		for _, v := range g.out[u] {
			if !fn(NodeID(u), v) {
				return
			}
		}
	}
}

// String summarizes the graph.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{|V|=%d |E|=%d |Σ|=%d}", g.NumNodes(), g.NumEdges(), g.labels.Len())
}

// Stats describes a graph; used by tools and EXPERIMENTS.md reporting.
type Stats struct {
	Nodes, Edges int
	Labels       int
	MaxOutDeg    int
	MaxInDeg     int
	AvgDeg       float64
}

// ComputeStats gathers Stats for g.
func (g *Graph) ComputeStats() Stats {
	s := Stats{Nodes: g.NumNodes(), Edges: g.NumEdges(), Labels: g.labels.Len()}
	for v := 0; v < g.NumNodes(); v++ {
		if d := len(g.out[v]); d > s.MaxOutDeg {
			s.MaxOutDeg = d
		}
		if d := len(g.in[v]); d > s.MaxInDeg {
			s.MaxInDeg = d
		}
	}
	if s.Nodes > 0 {
		s.AvgDeg = float64(s.Edges) / float64(s.Nodes)
	}
	return s
}
