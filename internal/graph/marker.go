package graph

// Marker is an epoch-stamped visited set over node ids. Reset is O(1)
// (bump the epoch), which lets BFS-heavy algorithms such as bounded
// simulation reuse one allocation across millions of traversals.
type Marker struct {
	stamp []uint32
	cur   uint32
}

// NewMarker returns a marker able to mark ids in [0, n).
func NewMarker(n int) *Marker {
	return &Marker{stamp: make([]uint32, n), cur: 0}
}

// Reset clears all marks in O(1).
func (m *Marker) Reset() {
	m.cur++
	if m.cur == 0 { // epoch wrapped: clear the backing array once
		for i := range m.stamp {
			m.stamp[i] = 0
		}
		m.cur = 1
	}
}

// Grow ensures ids in [0, n) are addressable.
func (m *Marker) Grow(n int) {
	if n > len(m.stamp) {
		ns := make([]uint32, n)
		copy(ns, m.stamp)
		m.stamp = ns
	}
}

// Mark marks v; it reports whether v was unmarked before.
func (m *Marker) Mark(v NodeID) bool {
	if m.stamp[v] == m.cur {
		return false
	}
	m.stamp[v] = m.cur
	return true
}

// Has reports whether v is marked.
func (m *Marker) Has(v NodeID) bool { return m.stamp[v] == m.cur }
