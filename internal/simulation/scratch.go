package simulation

// Scratch is the reusable working state of the simulation engines: bitset
// membership rows, flat support-counter arrays, removal worklists and BFS
// buffers, all carved from bump arenas that are reclaimed wholesale
// between queries. A warmed Scratch lets repeated Simulate/SimulateBounded
// calls on same-sized graphs run without allocating working state; only
// the Result (which outlives the call) is heap-allocated.
//
// A Scratch serves one query at a time and must be reset between
// queries: ScratchPool.Get hands out reset scratches, and multi-query
// loops over one scratch (strong simulation's per-ball evaluation) call
// reset directly. ScratchPool makes a set of them safe to share across a
// worker pool.

import (
	"graphviews/internal/arena"
	"graphviews/internal/bitset"
	"graphviews/internal/graph"
)

// removal is one worklist entry: node match (u, v) left sim(u).
type removal struct {
	u int
	v graph.NodeID
}

// Scratch holds recyclable engine working state. The zero value is ready
// to use.
type Scratch struct {
	words arena.Arena[uint64]
	i32   arena.Arena[int32]
	work  []removal
	queue []int
	dirty []bool
	bfs   *graph.BFS
	// pairBuf accumulates one edge's match pairs during result assembly;
	// the exact-size copy that ends up in the Result never aliases it.
	pairBuf []Pair
}

// Reset reclaims the arenas for a new query. Worklist and BFS buffers
// keep their grown capacity.
func (sc *Scratch) Reset() {
	sc.words.Reset()
	sc.i32.Reset()
}

// matrix returns a cleared rows×cols bit matrix from the word arena.
func (sc *Scratch) matrix(rows, cols int) *bitset.Matrix {
	return bitset.MatrixOver(rows, cols, sc.words.Make(bitset.MatrixWords(rows, cols)))
}

// counters returns a zeroed int32 array from the arena.
func (sc *Scratch) counters(n int) []int32 { return sc.i32.Make(n) }

// buffer returns an uninitialized int32 array from the arena.
func (sc *Scratch) buffer(n int) []int32 { return sc.i32.MakeDirty(n) }

// takeWork returns the (empty) removal worklist; giveWork returns it so
// the grown capacity is kept for the next query.
func (sc *Scratch) takeWork() []removal { return sc.work[:0] }
func (sc *Scratch) giveWork(w []removal) {
	if cap(w) > cap(sc.work) {
		sc.work = w
	}
}

// edgeQueue returns the (empty) dirty-edge queue and flag array, sized
// for ne pattern edges. The queue may be regrown by the caller; only its
// initial capacity is recycled.
func (sc *Scratch) edgeQueue(ne int) ([]int, []bool) {
	if cap(sc.queue) < ne {
		sc.queue = make([]int, 0, ne)
	}
	if cap(sc.dirty) < ne {
		sc.dirty = make([]bool, ne)
	}
	d := sc.dirty[:ne]
	clear(d)
	return sc.queue[:0], d
}

// assembleEdge collects the match pairs of one plain edge — the sources
// list crossed with adjacency, filtered by the target membership row —
// into the reusable pair buffer, then copies them into exactly-sized
// fresh slices with unit distances. Sources ascend and adjacency is
// sorted, so the pairs come out strictly ascending (canonical form, no
// normalization pass needed beyond the caller's).
func (sc *Scratch) assembleEdge(g graph.Reader, srcs []graph.NodeID, dst bitset.Set, em *EdgeMatches) {
	buf := sc.pairBuf[:0]
	for _, v := range srcs {
		for _, w := range g.Out(v) {
			if dst.Get(int(w)) {
				buf = append(buf, Pair{v, w})
			}
		}
	}
	sc.pairBuf = buf
	em.Pairs = make([]Pair, len(buf))
	copy(em.Pairs, buf)
	em.Dists = make([]int32, len(buf))
	for i := range em.Dists {
		em.Dists[i] = 1
	}
}

// bfsScratch returns the reusable BFS buffer, sized for n nodes.
func (sc *Scratch) bfsScratch(n int) *graph.BFS {
	if sc.bfs == nil {
		sc.bfs = graph.NewBFS(n)
	}
	return sc.bfs
}

// ScratchPool pools Scratches across the queries of one Engine (see
// arena.Pool for the Get/Put and nil-pool contracts); it is what makes
// the steady-state serving path allocation-free.
type ScratchPool = arena.Pool[Scratch, *Scratch]

// NewScratchPool returns an empty pool.
func NewScratchPool() *ScratchPool {
	return arena.NewPool[Scratch]()
}
