package simulation

// Cross-query candidate memoization. Materializing a view set evaluates
// every view over the same graph, and view families share node
// conditions heavily (the same typed nodes recur across views), so the
// candidate seeding — a predicate scan over a label partition, the
// single hottest phase of the answer pipeline — would otherwise be
// repeated once per occurrence. CandidateSeeds computes each distinct
// (condition, out-degree-prune) combination exactly once and shares the
// resulting slice read-only across patterns: every engine treats
// candidate sets as immutable input (the plain and dual fixpoints copy
// membership into bitset rows; the bounded fixpoint copies into its own
// simList), so sharing cannot change any result.

import (
	"context"
	"strconv"
	"strings"

	"graphviews/internal/graph"
	"graphviews/internal/par"
	"graphviews/internal/pattern"
)

// condKey renders a node condition plus the out-degree prune flag into a
// canonical cache key. Every variable-length field is length-prefixed,
// so no two distinct conditions can serialize to the same bytes (e.g.
// attribute "a1" with value 3 vs attribute "a" with value 13).
// Predicates are keyed in authored order: two permutations of the same
// predicates hash differently and merely miss the cache, which is safe
// (both computations yield the same set).
func condKey(sb *strings.Builder, n *pattern.Node, needOut bool) string {
	sb.Reset()
	if needOut {
		sb.WriteByte('!')
	}
	writeStr := func(s string) {
		sb.WriteString(strconv.Itoa(len(s)))
		sb.WriteByte(':')
		sb.WriteString(s)
	}
	writeStr(n.Label)
	for i := range n.Preds {
		p := &n.Preds[i]
		writeStr(p.Attr)
		sb.WriteByte(byte(p.Op) + '0')
		if p.IsStr {
			sb.WriteByte('s')
			writeStr(p.Str)
		} else {
			sb.WriteByte('i')
			sb.WriteString(strconv.FormatInt(p.Val, 10))
			sb.WriteByte(';') // terminate digits before the next length prefix
		}
	}
	return sb.String()
}

// CandidateSeeds computes the per-node candidate sets of a family of
// patterns over one graph, memoizing identical node conditions across
// the family (and within one pattern). The distinct conditions are
// evaluated over up to workers goroutines. pruneOut selects the plain
// simulation seeding (out-degree prune on plain patterns' nodes with
// out-edges, as in SimulatePooled); pass false for dual materialization,
// where the prune is invalid. The returned slices are shared wherever
// conditions coincide and must be treated as read-only; pass them to
// SimulateFromSeeds / SimulateDualFromSeeds. Results are identical to
// per-pattern candidate computation at every worker count.
//
// Over a *graph.Sharded backend with more than one shard, each condition
// is evaluated per shard — conditions × shards tasks on the pool, each
// scanning a shard-local label partition — and the per-shard lists are
// merged ascending, so the hottest phase of materialization parallelizes
// across shards with no shared index and no lock. The merged sets are
// byte-identical to the single-backend scan.
//
// Under a cancelled ctx some sets may be missing; callers must check ctx
// before using the seeds (MaterializePooled's worker pool does).
func CandidateSeeds(ctx context.Context, g graph.Reader, pats []*pattern.Pattern, workers int, pruneOut bool) [][][]graph.NodeID {
	type cond struct {
		cn      pattern.CompiledNode
		needOut bool
		out     []graph.NodeID
	}
	var (
		conds []*cond
		index = make(map[string]int)
		sb    strings.Builder
	)
	// slot[pi][u] = index into conds.
	slot := make([][]int, len(pats))
	for pi, p := range pats {
		requireOut := pruneOut && p.IsPlain()
		slot[pi] = make([]int, len(p.Nodes))
		for u := range p.Nodes {
			needOut := requireOut && len(p.OutEdges(u)) > 0
			key := condKey(&sb, &p.Nodes[u], needOut)
			ci, ok := index[key]
			if !ok {
				ci = len(conds)
				index[key] = ci
				conds = append(conds, &cond{cn: pattern.CompileNode(&p.Nodes[u], g), needOut: needOut})
			}
			slot[pi][u] = ci
		}
	}
	if sh, ok := g.(*graph.Sharded); ok && sh.NumShards() > 1 {
		// Shard-parallel seeding: evaluate each distinct condition per
		// shard (conditions × shards tasks over the pool, scanning the
		// shard-local label partitions with no lock), then merge the
		// ascending per-shard candidate lists. The merged sets are
		// byte-identical to the unsharded scan — shard s owns exactly the
		// ids ≡ s (mod k), so the k-way merge reassembles the global
		// ascending partition order the engines rely on.
		k := sh.NumShards()
		parts := make([][]graph.NodeID, len(conds)*k)
		par.ForEach(ctx, workers, len(conds)*k, func(t int) {
			c := conds[t/k]
			parts[t] = shardCandidateSet(sh, t%k, &c.cn, c.needOut)
		})
		par.ForEach(ctx, workers, len(conds), func(ci int) {
			sub := parts[ci*k : (ci+1)*k]
			total := 0
			for _, p := range sub {
				total += len(p)
			}
			conds[ci].out = graph.MergeAscending(sub, total)
		})
	} else {
		par.ForEach(ctx, workers, len(conds), func(ci int) {
			c := conds[ci]
			c.out = candidateSet(g, &c.cn, c.needOut)
		})
	}
	seeds := make([][][]graph.NodeID, len(pats))
	for pi := range pats {
		cands := make([][]graph.NodeID, len(slot[pi]))
		for u, ci := range slot[pi] {
			cands[u] = conds[ci].out
		}
		seeds[pi] = cands
	}
	return seeds
}

// SimulateFromSeeds evaluates p from precomputed candidate sets (see
// CandidateSeeds), dispatching on the pattern class exactly like
// SimulatePooled: the plain fixpoint for plain patterns, the bounded
// fixpoint (with workers-wide match-set enumeration) otherwise. cands is
// read, never written or retained.
func SimulateFromSeeds(ctx context.Context, g graph.Reader, p *pattern.Pattern, cands [][]graph.NodeID, workers int, pool *ScratchPool) *Result {
	sc := pool.Get()
	defer pool.Put(sc)
	if !p.IsPlain() {
		return simulateBoundedSeeded(ctx, g, p, cands, workers, sc)
	}
	return simulateSeeded(g, p, cands, sc)
}

// SimulateDualFromSeeds is the dual-simulation counterpart of
// SimulateFromSeeds; the seeds must have been computed with pruneOut
// false (dual semantics constrain both directions, so the out-degree
// prune is invalid).
func SimulateDualFromSeeds(g graph.Reader, p *pattern.Pattern, cands [][]graph.NodeID, pool *ScratchPool) *Result {
	sc := pool.Get()
	defer pool.Put(sc)
	return simulateDualSeeded(g, p, cands, sc)
}
