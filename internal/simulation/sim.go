package simulation

// Graph simulation engine (Section II-A; algorithms after Henzinger,
// Henzinger & Kopke [21] and Fan et al. [16]). Candidate sets are seeded
// from the graph's label index and the node predicates, then refined with
// per-(edge, node) support counters and a removal worklist, giving the
// O(|Qs|²+|Qs||G|+|G|²)-class behaviour the paper quotes for Match.
//
// The working state is dense: membership is one bitset row per pattern
// node (internal/bitset), support counters are one flat int32 array
// indexed [edge·n + node], and everything is carved from the query's
// Scratch arenas so pooled callers allocate nothing but the Result.

import (
	"context"

	"graphviews/internal/graph"
	"graphviews/internal/pattern"
)

// candidates seeds the match sets: nodes with the right label that satisfy
// the node's predicates. When requireOut is true, nodes whose pattern node
// has out-edges must themselves have out-edges (a cheap prune that is only
// valid for plain simulation, where every pattern edge maps to one graph
// edge). Each set is preallocated at the label partition's size — the
// upper bound on its population — so the filter loop never reallocates.
func candidates(g graph.Reader, p *pattern.Pattern, requireOut bool) [][]graph.NodeID {
	cands := make([][]graph.NodeID, len(p.Nodes))
	for u := range p.Nodes {
		cn := pattern.CompileNode(&p.Nodes[u], g)
		needOut := requireOut && len(p.OutEdges(u)) > 0
		cands[u] = candidateSet(g, &cn, needOut)
	}
	return cands
}

// candidateSet evaluates one compiled node condition over its label
// partition.
func candidateSet(g graph.Reader, cn *pattern.CompiledNode, needOut bool) []graph.NodeID {
	return filterCandidates(g, g.NodesWithLabel(cn.Label), cn, needOut)
}

// filterCandidates applies a compiled node condition to one slice of a
// label partition. It is the single filter both the global and the
// per-shard seeding paths share, so the two can never diverge.
func filterCandidates(g graph.Reader, labeled []graph.NodeID, cn *pattern.CompiledNode, needOut bool) []graph.NodeID {
	out := make([]graph.NodeID, 0, len(labeled))
	if !cn.HasPreds() {
		// Label-only node condition: the partition itself is the
		// candidate set (modulo the out-degree prune).
		if !needOut {
			return append(out, labeled...)
		}
		for _, v := range labeled {
			if g.OutDegree(v) != 0 {
				out = append(out, v)
			}
		}
		return out
	}
	for _, v := range labeled {
		if needOut && g.OutDegree(v) == 0 {
			continue
		}
		if cn.Matches(g, v) {
			out = append(out, v)
		}
	}
	return out
}

// shardCandidateSet is candidateSet confined to one shard of a
// *graph.Sharded: it scans the shard-local label partition (no lock, no
// merged index) and yields that shard's slice of the candidate set,
// ascending. CandidateSeeds merges the per-shard slices back together.
func shardCandidateSet(g *graph.Sharded, si int, cn *pattern.CompiledNode, needOut bool) []graph.NodeID {
	return filterCandidates(g, g.ShardNodesWithLabel(si, cn.Label), cn, needOut)
}

// Simulate computes Qs(G) under graph simulation. Bounded patterns are
// dispatched to SimulateBounded.
func Simulate(g graph.Reader, p *pattern.Pattern) *Result {
	return SimulatePooled(context.Background(), g, p, 1, nil)
}

// SimulatePar is Simulate with intra-query parallelism: bounded patterns
// enumerate their match sets (the distance-index construction) over up to
// workers goroutines, observing ctx between enumeration chunks. Plain
// patterns are unaffected — their refinement is a sequential fixpoint —
// so results are identical at any worker count. A cancelled ctx may leave
// the result partial; callers must discard it when their own ctx reports
// cancellation (view.MaterializeWith does).
func SimulatePar(ctx context.Context, g graph.Reader, p *pattern.Pattern, workers int) *Result {
	return SimulatePooled(ctx, g, p, workers, nil)
}

// SimulatePooled is SimulatePar drawing its working state from pool: the
// engine's bitset rows, counters and worklists come from a pooled Scratch
// that is returned when the call completes, so steady-state callers (the
// Engine facade) stop allocating per query. A nil pool uses a transient
// scratch. The Result never aliases scratch memory.
func SimulatePooled(ctx context.Context, g graph.Reader, p *pattern.Pattern, workers int, pool *ScratchPool) *Result {
	sc := pool.Get()
	defer pool.Put(sc)
	if !p.IsPlain() {
		return simulateBoundedSeeded(ctx, g, p, candidates(g, p, false), workers, sc)
	}
	return simulateSeeded(g, p, candidates(g, p, true), sc)
}

// SimulateSeeded runs the plain-simulation refinement from the given
// per-node candidate sets (sorted, duplicate free). The candidates must be
// a superset of the true match sets; incremental view maintenance uses
// this to restart refinement from a previous result after a deletion.
func SimulateSeeded(g graph.Reader, p *pattern.Pattern, cands [][]graph.NodeID) *Result {
	return simulateSeeded(g, p, cands, new(Scratch))
}

// simulateSeeded is the plain fixpoint over scratch-backed dense state.
func simulateSeeded(g graph.Reader, p *pattern.Pattern, cands [][]graph.NodeID, sc *Scratch) *Result {
	n := g.NumNodes()

	for u := range cands {
		if len(cands[u]) == 0 {
			return emptyResult(p)
		}
	}
	inSim := sc.matrix(len(p.Nodes), n)
	for u := range cands {
		row := inSim.Row(u)
		for _, v := range cands[u] {
			row.Set(int(v))
		}
	}

	// supp[ei·n + v]: for edge ei=(u,u'), the number of successors of v
	// that are currently in sim(u'). Only meaningful for v ∈ sim(u).
	supp := sc.counters(len(p.Edges) * n)
	work := sc.takeWork()

	// Phase 1: compute all supports against the full candidate sets.
	// Removals must not start before every counter is in place, or the
	// worklist decrements would double-count.
	for u := range p.Nodes {
		for _, ei := range p.OutEdges(u) {
			tgt := inSim.Row(p.Edges[ei].To)
			row := supp[ei*n : (ei+1)*n]
			for _, v := range cands[u] {
				var c int32
				for _, w := range g.Out(v) {
					if tgt.Get(int(w)) {
						c++
					}
				}
				row[v] = c
			}
		}
	}
	// Phase 2: seed the worklist with unsupported candidates.
	for u := range p.Nodes {
		outs := p.OutEdges(u)
		for _, v := range cands[u] {
			for _, ei := range outs {
				if supp[ei*n+int(v)] == 0 {
					inSim.Row(u).Clear(int(v))
					work = append(work, removal{u, v})
					break
				}
			}
		}
	}

	// Worklist: when v leaves sim(u), any x ∈ pre(v) in sim(w) for an edge
	// (w,u) loses one unit of support.
	for len(work) > 0 {
		r := work[len(work)-1]
		work = work[:len(work)-1]
		for _, ei := range p.InEdges(r.u) {
			src := p.Edges[ei].From
			srcRow := inSim.Row(src)
			row := supp[ei*n : (ei+1)*n]
			for _, x := range g.In(r.v) {
				if !srcRow.Get(int(x)) {
					continue
				}
				row[x]--
				if row[x] == 0 {
					srcRow.Clear(int(x))
					work = append(work, removal{src, x})
				}
			}
		}
	}
	sc.giveWork(work)

	// Every pattern node must retain a match.
	sim := simToSorted(inSim)
	for u := range sim {
		if len(sim[u]) == 0 {
			return emptyResult(p)
		}
	}

	res := &Result{Pattern: p, Matched: true, Sim: sim, Edges: make([]EdgeMatches, len(p.Edges))}
	for ei, e := range p.Edges {
		em := &res.Edges[ei]
		sc.assembleEdge(g, sim[e.From], inSim.Row(e.To), em)
		em.normalize()
	}
	return res
}
