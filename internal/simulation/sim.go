package simulation

// Graph simulation engine (Section II-A; algorithms after Henzinger,
// Henzinger & Kopke [21] and Fan et al. [16]). Candidate sets are seeded
// from the graph's label index and the node predicates, then refined with
// per-(edge, node) support counters and a removal worklist, giving the
// O(|Qs|²+|Qs||G|+|G|²)-class behaviour the paper quotes for Match.

import (
	"context"

	"graphviews/internal/graph"
	"graphviews/internal/pattern"
)

// candidates seeds the match sets: nodes with the right label that satisfy
// the node's predicates. When requireOut is true, nodes whose pattern node
// has out-edges must themselves have out-edges (a cheap prune that is only
// valid for plain simulation, where every pattern edge maps to one graph
// edge).
func candidates(g graph.Reader, p *pattern.Pattern, requireOut bool) [][]graph.NodeID {
	cands := make([][]graph.NodeID, len(p.Nodes))
	for u := range p.Nodes {
		cn := pattern.CompileNode(&p.Nodes[u], g)
		needOut := requireOut && len(p.OutEdges(u)) > 0
		var out []graph.NodeID
		for _, v := range g.NodesWithLabel(cn.Label) {
			if needOut && g.OutDegree(v) == 0 {
				continue
			}
			if cn.Matches(g, v) {
				out = append(out, v)
			}
		}
		cands[u] = out
	}
	return cands
}

// Simulate computes Qs(G) under graph simulation. Bounded patterns are
// dispatched to SimulateBounded.
func Simulate(g graph.Reader, p *pattern.Pattern) *Result {
	return SimulatePar(context.Background(), g, p, 1)
}

// SimulatePar is Simulate with intra-query parallelism: bounded patterns
// enumerate their match sets (the distance-index construction) over up to
// workers goroutines, observing ctx between enumeration chunks. Plain
// patterns are unaffected — their refinement is a sequential fixpoint —
// so results are identical at any worker count. A cancelled ctx may leave
// the result partial; callers must discard it when their own ctx reports
// cancellation (view.MaterializeWith does).
func SimulatePar(ctx context.Context, g graph.Reader, p *pattern.Pattern, workers int) *Result {
	if !p.IsPlain() {
		return simulateBoundedSeeded(ctx, g, p, candidates(g, p, false), workers)
	}
	return SimulateSeeded(g, p, candidates(g, p, true))
}

// SimulateSeeded runs the plain-simulation refinement from the given
// per-node candidate sets (sorted, duplicate free). The candidates must be
// a superset of the true match sets; incremental view maintenance uses
// this to restart refinement from a previous result after a deletion.
func SimulateSeeded(g graph.Reader, p *pattern.Pattern, cands [][]graph.NodeID) *Result {
	n := g.NumNodes()

	inSim := make([][]bool, len(p.Nodes))
	for u := range inSim {
		if len(cands[u]) == 0 {
			return emptyResult(p)
		}
		inSim[u] = make([]bool, n)
		for _, v := range cands[u] {
			inSim[u][v] = true
		}
	}

	// supp[e][v]: for edge e=(u,u'), the number of successors of v that
	// are currently in sim(u'). Only meaningful for v ∈ sim(u).
	supp := make([][]int32, len(p.Edges))
	for ei := range p.Edges {
		supp[ei] = make([]int32, n)
	}

	type removal struct {
		u int
		v graph.NodeID
	}
	var work []removal
	remove := func(u int, v graph.NodeID) {
		inSim[u][v] = false
		work = append(work, removal{u, v})
	}

	// Phase 1: compute all supports against the full candidate sets.
	// Removals must not start before every counter is in place, or the
	// worklist decrements would double-count.
	for u := range p.Nodes {
		for _, ei := range p.OutEdges(u) {
			tgt := p.Edges[ei].To
			for _, v := range cands[u] {
				var c int32
				for _, w := range g.Out(v) {
					if inSim[tgt][w] {
						c++
					}
				}
				supp[ei][v] = c
			}
		}
	}
	// Phase 2: seed the worklist with unsupported candidates.
	for u := range p.Nodes {
		outs := p.OutEdges(u)
		for _, v := range cands[u] {
			for _, ei := range outs {
				if supp[ei][v] == 0 {
					remove(u, v)
					break
				}
			}
		}
	}

	// Worklist: when v leaves sim(u), any x ∈ pre(v) in sim(w) for an edge
	// (w,u) loses one unit of support.
	for len(work) > 0 {
		r := work[len(work)-1]
		work = work[:len(work)-1]
		for _, ei := range p.InEdges(r.u) {
			src := p.Edges[ei].From
			for _, x := range g.In(r.v) {
				if !inSim[src][x] {
					continue
				}
				supp[ei][x]--
				if supp[ei][x] == 0 {
					remove(src, x)
				}
			}
		}
	}

	// Every pattern node must retain a match.
	sim := simToSorted(inSim)
	for u := range sim {
		if len(sim[u]) == 0 {
			return emptyResult(p)
		}
	}

	res := &Result{Pattern: p, Matched: true, Sim: sim, Edges: make([]EdgeMatches, len(p.Edges))}
	for ei, e := range p.Edges {
		em := &res.Edges[ei]
		for _, v := range sim[e.From] {
			for _, w := range g.Out(v) {
				if inSim[e.To][w] {
					em.add(v, w, 1)
				}
			}
		}
		em.normalize()
	}
	return res
}
