package simulation

// Dual simulation (Ma et al. [28]; Section VIII notes the paper's
// techniques extend to it). Dual simulation adds the backward condition:
// for (u,v) ∈ S and every pattern edge (u',u) there must be a graph edge
// (v',v) with (u',v') ∈ S. The engine mirrors Simulate with support
// counters in both directions, over the same dense bitset/flat-counter
// working state.

import (
	"graphviews/internal/graph"
	"graphviews/internal/pattern"
)

// SimulateDual computes the maximum dual simulation of p in g and derives
// per-edge match sets exactly as Simulate does. The pattern must be plain.
func SimulateDual(g graph.Reader, p *pattern.Pattern) *Result {
	return simulateDual(g, p, new(Scratch))
}

// SimulateDualPooled is SimulateDual over a pooled Scratch; see
// SimulatePooled.
func SimulateDualPooled(g graph.Reader, p *pattern.Pattern, pool *ScratchPool) *Result {
	sc := pool.Get()
	defer pool.Put(sc)
	return simulateDual(g, p, sc)
}

func simulateDual(g graph.Reader, p *pattern.Pattern, sc *Scratch) *Result {
	return simulateDualSeeded(g, p, candidates(g, p, false), sc)
}

// simulateDualSeeded runs the dual fixpoint from the given candidate
// sets (sorted supersets of the true match sets, computed without the
// out-degree prune); cands is read, never written.
func simulateDualSeeded(g graph.Reader, p *pattern.Pattern, cands [][]graph.NodeID, sc *Scratch) *Result {
	n := g.NumNodes()
	for u := range cands {
		if len(cands[u]) == 0 {
			return emptyResult(p)
		}
	}
	inSim := sc.matrix(len(p.Nodes), n)
	for u := range cands {
		row := inSim.Row(u)
		for _, v := range cands[u] {
			row.Set(int(v))
		}
	}

	// suppFwd[ei·n + v]: |post(v) ∩ sim(To)| for v ∈ sim(From).
	// suppBwd[ei·n + v]: |pre(v) ∩ sim(From)| for v ∈ sim(To).
	suppFwd := sc.counters(len(p.Edges) * n)
	suppBwd := sc.counters(len(p.Edges) * n)

	work := sc.takeWork()
	remove := func(u int, v graph.NodeID) {
		row := inSim.Row(u)
		if row.TestAndClear(int(v)) {
			work = append(work, removal{u, v})
		}
	}

	// Phase 1: compute every counter against the full candidate sets
	// before any removal, so worklist decrements stay consistent.
	for u := range p.Nodes {
		for _, v := range cands[u] {
			for _, ei := range p.OutEdges(u) {
				tgt := inSim.Row(p.Edges[ei].To)
				var c int32
				for _, w := range g.Out(v) {
					if tgt.Get(int(w)) {
						c++
					}
				}
				suppFwd[ei*n+int(v)] = c
			}
			for _, ei := range p.InEdges(u) {
				src := inSim.Row(p.Edges[ei].From)
				var c int32
				for _, w := range g.In(v) {
					if src.Get(int(w)) {
						c++
					}
				}
				suppBwd[ei*n+int(v)] = c
			}
		}
	}
	// Phase 2: seed removals.
	for u := range p.Nodes {
		for _, v := range cands[u] {
			dead := false
			for _, ei := range p.OutEdges(u) {
				if suppFwd[ei*n+int(v)] == 0 {
					dead = true
					break
				}
			}
			if !dead {
				for _, ei := range p.InEdges(u) {
					if suppBwd[ei*n+int(v)] == 0 {
						dead = true
						break
					}
				}
			}
			if dead {
				remove(u, v)
			}
		}
	}

	for len(work) > 0 {
		r := work[len(work)-1]
		work = work[:len(work)-1]
		// v left sim(u): predecessors matching sources of in-edges lose
		// forward support; successors matching targets of out-edges lose
		// backward support.
		for _, ei := range p.InEdges(r.u) {
			src := p.Edges[ei].From
			srcRow := inSim.Row(src)
			row := suppFwd[ei*n : (ei+1)*n]
			for _, x := range g.In(r.v) {
				if srcRow.Get(int(x)) {
					row[x]--
					if row[x] == 0 {
						remove(src, x)
					}
				}
			}
		}
		for _, ei := range p.OutEdges(r.u) {
			tgt := p.Edges[ei].To
			tgtRow := inSim.Row(tgt)
			row := suppBwd[ei*n : (ei+1)*n]
			for _, x := range g.Out(r.v) {
				if tgtRow.Get(int(x)) {
					row[x]--
					if row[x] == 0 {
						remove(tgt, x)
					}
				}
			}
		}
	}
	sc.giveWork(work)

	sim := simToSorted(inSim)
	for u := range sim {
		if len(sim[u]) == 0 {
			return emptyResult(p)
		}
	}
	res := &Result{Pattern: p, Matched: true, Sim: sim, Edges: make([]EdgeMatches, len(p.Edges))}
	for ei, e := range p.Edges {
		em := &res.Edges[ei]
		sc.assembleEdge(g, sim[e.From], inSim.Row(e.To), em)
		em.normalize()
	}
	return res
}
