package simulation

// Dual simulation (Ma et al. [28]; Section VIII notes the paper's
// techniques extend to it). Dual simulation adds the backward condition:
// for (u,v) ∈ S and every pattern edge (u',u) there must be a graph edge
// (v',v) with (u',v') ∈ S. The engine mirrors Simulate with support
// counters in both directions.

import (
	"graphviews/internal/graph"
	"graphviews/internal/pattern"
)

// SimulateDual computes the maximum dual simulation of p in g and derives
// per-edge match sets exactly as Simulate does. The pattern must be plain.
func SimulateDual(g graph.Reader, p *pattern.Pattern) *Result {
	n := g.NumNodes()
	cands := candidates(g, p, false)

	inSim := make([][]bool, len(p.Nodes))
	for u := range inSim {
		if len(cands[u]) == 0 {
			return emptyResult(p)
		}
		inSim[u] = make([]bool, n)
		for _, v := range cands[u] {
			inSim[u][v] = true
		}
	}

	// suppFwd[e][v]: |post(v) ∩ sim(To)| for v ∈ sim(From).
	// suppBwd[e][v]: |pre(v) ∩ sim(From)| for v ∈ sim(To).
	suppFwd := make([][]int32, len(p.Edges))
	suppBwd := make([][]int32, len(p.Edges))
	for ei := range p.Edges {
		suppFwd[ei] = make([]int32, n)
		suppBwd[ei] = make([]int32, n)
	}

	type removal struct {
		u int
		v graph.NodeID
	}
	var work []removal
	remove := func(u int, v graph.NodeID) {
		if inSim[u][v] {
			inSim[u][v] = false
			work = append(work, removal{u, v})
		}
	}

	// Phase 1: compute every counter against the full candidate sets
	// before any removal, so worklist decrements stay consistent.
	for u := range p.Nodes {
		for _, v := range cands[u] {
			for _, ei := range p.OutEdges(u) {
				tgt := p.Edges[ei].To
				var c int32
				for _, w := range g.Out(v) {
					if inSim[tgt][w] {
						c++
					}
				}
				suppFwd[ei][v] = c
			}
			for _, ei := range p.InEdges(u) {
				src := p.Edges[ei].From
				var c int32
				for _, w := range g.In(v) {
					if inSim[src][w] {
						c++
					}
				}
				suppBwd[ei][v] = c
			}
		}
	}
	// Phase 2: seed removals.
	for u := range p.Nodes {
		for _, v := range cands[u] {
			dead := false
			for _, ei := range p.OutEdges(u) {
				if suppFwd[ei][v] == 0 {
					dead = true
					break
				}
			}
			if !dead {
				for _, ei := range p.InEdges(u) {
					if suppBwd[ei][v] == 0 {
						dead = true
						break
					}
				}
			}
			if dead {
				remove(u, v)
			}
		}
	}

	for len(work) > 0 {
		r := work[len(work)-1]
		work = work[:len(work)-1]
		// v left sim(u): predecessors matching sources of in-edges lose
		// forward support; successors matching targets of out-edges lose
		// backward support.
		for _, ei := range p.InEdges(r.u) {
			src := p.Edges[ei].From
			for _, x := range g.In(r.v) {
				if inSim[src][x] {
					suppFwd[ei][x]--
					if suppFwd[ei][x] == 0 {
						remove(src, x)
					}
				}
			}
		}
		for _, ei := range p.OutEdges(r.u) {
			tgt := p.Edges[ei].To
			for _, x := range g.Out(r.v) {
				if inSim[tgt][x] {
					suppBwd[ei][x]--
					if suppBwd[ei][x] == 0 {
						remove(tgt, x)
					}
				}
			}
		}
	}

	sim := simToSorted(inSim)
	for u := range sim {
		if len(sim[u]) == 0 {
			return emptyResult(p)
		}
	}
	res := &Result{Pattern: p, Matched: true, Sim: sim, Edges: make([]EdgeMatches, len(p.Edges))}
	for ei, e := range p.Edges {
		em := &res.Edges[ei]
		for _, v := range sim[e.From] {
			for _, w := range g.Out(v) {
				if inSim[e.To][w] {
					em.add(v, w, 1)
				}
			}
		}
		em.normalize()
	}
	return res
}
