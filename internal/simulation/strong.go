package simulation

// Strong simulation (Ma et al. [28]): dual simulation restricted to balls
// of radius dQ (the pattern diameter) around candidate centers, which adds
// the locality that plain and dual simulation lack. Section VIII of the
// paper notes its view-answering techniques "can be readily extended to
// strong simulation ... retaining the same complexity"; the engine here
// supports those extensions and the library's examples.

import (
	"graphviews/internal/bitset"
	"graphviews/internal/graph"
	"graphviews/internal/pattern"
)

// SimulateStrong computes the union of the maximum dual-simulation
// relations over all balls G[b(w, dQ)] whose center w participates in the
// relation. The result's match sets are the union of the per-ball edge
// match sets; Matched is false when no ball yields a match.
//
// The implementation extracts each ball as a subgraph and runs the dual
// fixpoint on it (reusing one Scratch across balls); that is
// quadratic-to-cubic in the ball size and intended for moderate graphs
// (the paper's experiments do not benchmark strong simulation).
func SimulateStrong(g graph.Reader, p *pattern.Pattern) *Result {
	dQ := p.Diameter()
	if dQ == 0 {
		dQ = 1
	}
	n := g.NumNodes()

	// Candidate centers: nodes matching any pattern node condition.
	isCenter := bitset.New(n)
	for u := range p.Nodes {
		cn := pattern.CompileNode(&p.Nodes[u], g)
		for _, v := range g.NodesWithLabel(cn.Label) {
			if cn.Matches(g, v) {
				isCenter.Set(int(v))
			}
		}
	}

	res := &Result{Pattern: p, Matched: false,
		Sim:   make([][]graph.NodeID, len(p.Nodes)),
		Edges: make([]EdgeMatches, len(p.Edges))}
	// simUnion accumulates the union of the per-ball node match sets; its
	// ascending-bit iteration yields each Sim list already sorted.
	simUnion := bitset.NewMatrix(len(p.Nodes), n)

	ball := make([]graph.NodeID, 0, 64)
	inBall := graph.NewMarker(n)
	sc := new(Scratch)

	for w := graph.NodeID(0); int(w) < n; w++ {
		if !isCenter.Get(int(w)) {
			continue
		}
		// Undirected ball of radius dQ around w.
		ball = ball[:0]
		inBall.Reset()
		inBall.Mark(w)
		ball = append(ball, w)
		frontier := []graph.NodeID{w}
		for d := 0; d < dQ && len(frontier) > 0; d++ {
			var next []graph.NodeID
			for _, v := range frontier {
				for _, x := range g.Out(v) {
					if inBall.Mark(x) {
						ball = append(ball, x)
						next = append(next, x)
					}
				}
				for _, x := range g.In(v) {
					if inBall.Mark(x) {
						ball = append(ball, x)
						next = append(next, x)
					}
				}
			}
			frontier = next
		}

		sub, toOrig := extractSubgraph(g, ball)
		sc.Reset()
		dres := simulateDual(sub, p, sc)
		if !dres.Matched {
			continue
		}
		// The center must take part in the match relation.
		centerIn := false
		for u := range dres.Sim {
			for _, v := range dres.Sim[u] {
				if toOrig[v] == w {
					centerIn = true
				}
			}
		}
		if !centerIn {
			continue
		}
		res.Matched = true
		for u := range dres.Sim {
			row := simUnion.Row(u)
			for _, v := range dres.Sim[u] {
				row.Set(int(toOrig[v]))
			}
		}
		for ei := range dres.Edges {
			em := &dres.Edges[ei]
			for j, pr := range em.Pairs {
				res.Edges[ei].add(toOrig[pr.Src], toOrig[pr.Dst], em.Dists[j])
			}
		}
	}

	if !res.Matched {
		return emptyResult(p)
	}
	res.Sim = simToSorted(simUnion)
	for ei := range res.Edges {
		res.Edges[ei].normalize()
	}
	return res
}

// extractSubgraph builds the induced subgraph over nodes (attributes
// copied) and returns the mapping from subgraph ids back to g's ids.
// The subgraph is a fresh mutable graph regardless of g's backend.
func extractSubgraph(g graph.Reader, nodes []graph.NodeID) (*graph.Graph, []graph.NodeID) {
	sub := graph.NewWithCapacity(len(nodes))
	// Pre-intern every label of g in id order so that label ids — and the
	// interned categorical attribute values that reference them — keep the
	// same numeric ids in the subgraph, letting attribute maps be copied
	// verbatim.
	syncInterners(g, sub)
	toOrig := make([]graph.NodeID, len(nodes))
	toSub := make(map[graph.NodeID]graph.NodeID, len(nodes))
	for _, v := range nodes {
		id := sub.AddNode(g.LabelName(v))
		toOrig[id] = v
		toSub[v] = id
		for k, val := range g.Attrs(v) {
			sub.SetAttr(id, k, val)
		}
	}
	for _, v := range nodes {
		sv := toSub[v]
		for _, w := range g.Out(v) {
			if sw, ok := toSub[w]; ok {
				sub.AddEdge(sv, sw)
			}
		}
	}
	return sub, toOrig
}

// syncInterners re-interns every label of g into sub in id order so that
// interned categorical attribute values keep the same numeric ids.
func syncInterners(g graph.Reader, sub *graph.Graph) {
	for _, name := range g.Interner().Names() {
		sub.Interner().Intern(name)
	}
}
