// Package simulation implements the pattern-matching engines of the paper:
// graph simulation (Section II-A, after [16,21]), bounded simulation
// (Section VI, after [16]), and — as the Section VIII extensions — dual and
// strong simulation [28]. Brute-force reference engines used by the test
// suite live in brute.go.
package simulation

import (
	"fmt"
	"slices"
	"sort"
	"strings"

	"graphviews/internal/bitset"
	"graphviews/internal/graph"
	"graphviews/internal/pattern"
)

// Pair is a single edge match (v, v') in a match set Se.
type Pair struct {
	Src, Dst graph.NodeID
}

// EdgeMatches is the match set Se of one pattern edge, with the distance
// of each matched path (always 1 for plain simulation; the exact shortest
// path length for bounded simulation). Pairs are kept sorted by (Src,Dst).
type EdgeMatches struct {
	Pairs []Pair
	Dists []int32
}

// Len returns |Se|.
func (em *EdgeMatches) Len() int { return len(em.Pairs) }

// Has reports whether (src,dst) ∈ Se, by binary search.
func (em *EdgeMatches) Has(src, dst graph.NodeID) bool {
	i := em.search(src, dst)
	return i < len(em.Pairs) && em.Pairs[i] == (Pair{src, dst})
}

// Dist returns the recorded distance for (src,dst), or -1 if absent.
func (em *EdgeMatches) Dist(src, dst graph.NodeID) int32 {
	i := em.search(src, dst)
	if i < len(em.Pairs) && em.Pairs[i] == (Pair{src, dst}) {
		return em.Dists[i]
	}
	return -1
}

func (em *EdgeMatches) search(src, dst graph.NodeID) int {
	return sort.Search(len(em.Pairs), func(i int) bool {
		p := em.Pairs[i]
		return p.Src > src || (p.Src == src && p.Dst >= dst)
	})
}

// add appends without maintaining order; call normalize afterwards.
func (em *EdgeMatches) add(src, dst graph.NodeID, d int32) {
	em.Pairs = append(em.Pairs, Pair{src, dst})
	em.Dists = append(em.Dists, d)
}

// Normalize sorts by (Src,Dst) and deduplicates, keeping minimum
// distance. Match sets assembled by an ascending scan — the common case,
// since node match lists and adjacency are both sorted — are detected in
// one pass and returned untouched, skipping the sort and its copies.
func (em *EdgeMatches) Normalize() { em.normalize() }

func (em *EdgeMatches) normalize() {
	if len(em.Pairs) == 0 {
		return
	}
	sorted := true
	for i := 1; i < len(em.Pairs); i++ {
		p, q := em.Pairs[i-1], em.Pairs[i]
		if p.Src > q.Src || (p.Src == q.Src && p.Dst >= q.Dst) {
			sorted = false
			break
		}
	}
	if sorted { // strictly ascending: already canonical, no duplicates
		return
	}
	idx := make([]int32, len(em.Pairs))
	for i := range idx {
		idx[i] = int32(i)
	}
	slices.SortFunc(idx, func(a, b int32) int {
		pa, pb := em.Pairs[a], em.Pairs[b]
		if pa.Src != pb.Src {
			return int(pa.Src) - int(pb.Src)
		}
		if pa.Dst != pb.Dst {
			return int(pa.Dst) - int(pb.Dst)
		}
		return int(em.Dists[a]) - int(em.Dists[b])
	})
	newP := make([]Pair, 0, len(em.Pairs))
	newD := make([]int32, 0, len(em.Dists))
	for _, i := range idx {
		if n := len(newP); n > 0 && newP[n-1] == em.Pairs[i] {
			continue // duplicate; the first kept has the smaller distance
		}
		newP = append(newP, em.Pairs[i])
		newD = append(newD, em.Dists[i])
	}
	em.Pairs = newP
	em.Dists = newD
}

// Result is a query result Qs(G) = {(e, Se)}: one match set per pattern
// edge, plus the node match sets sim(u) it was derived from. When the
// pattern has no match in G, Matched is false and all sets are empty
// (Qs(G) = ∅ in the paper's notation).
type Result struct {
	Pattern *pattern.Pattern
	Matched bool
	// Sim[u] is the sorted match set of pattern node u.
	Sim [][]graph.NodeID
	// Edges[i] is the match set of pattern edge i.
	Edges []EdgeMatches
}

// Empty returns the ∅ result for p (Qs(G) = ∅).
func Empty(p *pattern.Pattern) *Result { return emptyResult(p) }

// emptyResult builds the ∅ result for p.
func emptyResult(p *pattern.Pattern) *Result {
	return &Result{
		Pattern: p,
		Matched: false,
		Sim:     make([][]graph.NodeID, len(p.Nodes)),
		Edges:   make([]EdgeMatches, len(p.Edges)),
	}
}

// Size returns |Qs(G)|: the total number of edges over all match sets.
func (r *Result) Size() int {
	total := 0
	for i := range r.Edges {
		total += len(r.Edges[i].Pairs)
	}
	return total
}

// NodeMatches returns the match set of pattern node u.
func (r *Result) NodeMatches(u int) []graph.NodeID { return r.Sim[u] }

// Equal reports whether two results are identical (same pattern shape,
// same match sets; distances included).
func (r *Result) Equal(o *Result) bool {
	if r.Matched != o.Matched || len(r.Edges) != len(o.Edges) {
		return false
	}
	if !r.Matched {
		return true
	}
	for i := range r.Edges {
		a, b := &r.Edges[i], &o.Edges[i]
		if len(a.Pairs) != len(b.Pairs) {
			return false
		}
		for j := range a.Pairs {
			if a.Pairs[j] != b.Pairs[j] || a.Dists[j] != b.Dists[j] {
				return false
			}
		}
	}
	return true
}

// EqualIgnoreDist compares match sets only (used where two algorithms may
// record different—but equally valid—path lengths).
func (r *Result) EqualIgnoreDist(o *Result) bool {
	if r.Matched != o.Matched || len(r.Edges) != len(o.Edges) {
		return false
	}
	if !r.Matched {
		return true
	}
	for i := range r.Edges {
		a, b := &r.Edges[i], &o.Edges[i]
		if len(a.Pairs) != len(b.Pairs) {
			return false
		}
		for j := range a.Pairs {
			if a.Pairs[j] != b.Pairs[j] {
				return false
			}
		}
	}
	return true
}

// String renders the result as a per-edge table in the style of the
// paper's Example 2, using node names from g when provided.
func (r *Result) String() string {
	if !r.Matched {
		return fmt.Sprintf("%s(G) = ∅", r.Pattern.Name)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s(G):\n", r.Pattern.Name)
	for i, e := range r.Pattern.Edges {
		fmt.Fprintf(&sb, "  (%s,%s):", r.Pattern.Nodes[e.From].Name, r.Pattern.Nodes[e.To].Name)
		for _, pr := range r.Edges[i].Pairs {
			fmt.Fprintf(&sb, " (%d,%d)", pr.Src, pr.Dst)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// simToSorted converts membership bitset rows into sorted id slices. The
// lists are freshly allocated (exactly sized by popcount) — results must
// never alias scratch-arena memory.
func simToSorted(inSim *bitset.Matrix) [][]graph.NodeID {
	out := make([][]graph.NodeID, inSim.Rows())
	for u := range out {
		row := inSim.Row(u)
		lst := make([]graph.NodeID, 0, row.Count())
		row.Iterate(func(v int) bool {
			lst = append(lst, graph.NodeID(v))
			return true
		})
		out[u] = lst
	}
	return out
}
