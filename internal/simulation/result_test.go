package simulation

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"graphviews/internal/graph"
	"graphviews/internal/pattern"
)

func TestEdgeMatchesHasDist(t *testing.T) {
	var em EdgeMatches
	em.add(3, 4, 2)
	em.add(1, 2, 1)
	em.add(3, 1, 5)
	em.normalize()
	if em.Len() != 3 {
		t.Fatalf("Len = %d", em.Len())
	}
	if !em.Has(1, 2) || !em.Has(3, 4) || !em.Has(3, 1) {
		t.Fatalf("Has missing pairs: %v", em.Pairs)
	}
	if em.Has(2, 1) || em.Has(0, 0) {
		t.Fatalf("Has reports absent pairs")
	}
	if d := em.Dist(3, 4); d != 2 {
		t.Fatalf("Dist = %d", d)
	}
	if d := em.Dist(9, 9); d != -1 {
		t.Fatalf("absent Dist = %d", d)
	}
	// Sorted by (Src, Dst).
	for i := 1; i < len(em.Pairs); i++ {
		a, b := em.Pairs[i-1], em.Pairs[i]
		if a.Src > b.Src || (a.Src == b.Src && a.Dst >= b.Dst) {
			t.Fatalf("not sorted: %v", em.Pairs)
		}
	}
}

func TestEdgeMatchesNormalizeDedupKeepsMinDist(t *testing.T) {
	var em EdgeMatches
	em.add(1, 2, 5)
	em.add(1, 2, 3)
	em.add(1, 2, 7)
	em.normalize()
	if em.Len() != 1 {
		t.Fatalf("dedup failed: %v", em.Pairs)
	}
	if d := em.Dist(1, 2); d != 3 {
		t.Fatalf("kept dist %d, want minimum 3", d)
	}
}

// TestNormalizeQuick: property test — normalize yields a sorted,
// duplicate-free set containing exactly the input pairs with min dists.
func TestNormalizeQuick(t *testing.T) {
	f := func(raw []uint16) bool {
		var em EdgeMatches
		type key = Pair
		want := map[key]int32{}
		for i := 0; i+2 < len(raw); i += 3 {
			p := Pair{Src: graph.NodeID(raw[i] % 50), Dst: graph.NodeID(raw[i+1] % 50)}
			d := int32(raw[i+2]%9) + 1
			em.add(p.Src, p.Dst, d)
			if old, ok := want[p]; !ok || d < old {
				want[p] = d
			}
		}
		em.normalize()
		if len(em.Pairs) != len(want) {
			return false
		}
		for i, p := range em.Pairs {
			if want[p] != em.Dists[i] {
				return false
			}
			if i > 0 {
				a, b := em.Pairs[i-1], em.Pairs[i]
				if a.Src > b.Src || (a.Src == b.Src && a.Dst >= b.Dst) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestResultStringAndEmpty(t *testing.T) {
	p := pattern.New("q")
	p.AddEdge(p.AddNode("a", "A"), p.AddNode("b", "B"))
	empty := Empty(p)
	if empty.Matched || empty.Size() != 0 {
		t.Fatalf("Empty is not empty")
	}
	if !strings.Contains(empty.String(), "∅") {
		t.Fatalf("empty String: %q", empty.String())
	}

	g := graph.New()
	a := g.AddNode("A")
	b := g.AddNode("B")
	g.AddEdge(a, b)
	res := Simulate(g, p)
	s := res.String()
	if !strings.Contains(s, "(a,b)") || !strings.Contains(s, "(0,1)") {
		t.Fatalf("String = %q", s)
	}
}

func TestResultEqualSemantics(t *testing.T) {
	p := pattern.New("q")
	p.AddEdge(p.AddNode("a", "A"), p.AddNode("b", "B"))
	g := graph.New()
	g.AddEdge(g.AddNode("A"), g.AddNode("B"))
	r1 := Simulate(g, p)
	r2 := Simulate(g, p)
	if !r1.Equal(r2) || !r1.EqualIgnoreDist(r2) {
		t.Fatalf("identical runs must be equal")
	}
	// Mutate a distance: Equal differs, EqualIgnoreDist does not.
	r2.Edges[0].Dists[0] = 9
	if r1.Equal(r2) {
		t.Fatalf("Equal must see distance changes")
	}
	if !r1.EqualIgnoreDist(r2) {
		t.Fatalf("EqualIgnoreDist must ignore distance changes")
	}
	// Empty vs non-empty.
	if r1.Equal(Empty(p)) {
		t.Fatalf("empty != non-empty")
	}
	if !Empty(p).Equal(Empty(p)) {
		t.Fatalf("empty == empty")
	}
}

func TestNodeMatchesAccessor(t *testing.T) {
	g := graph.New()
	a := g.AddNode("A")
	b1 := g.AddNode("B")
	b2 := g.AddNode("B")
	g.AddEdge(a, b1)
	g.AddEdge(a, b2)
	p := pattern.New("q")
	pa := p.AddNode("a", "A")
	pb := p.AddNode("b", "B")
	p.AddEdge(pa, pb)
	res := Simulate(g, p)
	if got := res.NodeMatches(pb); len(got) != 2 {
		t.Fatalf("NodeMatches(b) = %v", got)
	}
	if got := res.NodeMatches(pa); len(got) != 1 || got[0] != a {
		t.Fatalf("NodeMatches(a) = %v", got)
	}
}

// TestAllPairsHops cross-checks the matrix against single BFS calls.
func TestAllPairsHops(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	g := graph.New()
	n := 12
	for i := 0; i < n; i++ {
		g.AddNode("x")
	}
	for i := 0; i < 30; i++ {
		g.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)))
	}
	dist := AllPairsHops(g)
	bfs := graph.NewBFS(n)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			want := bfs.HopDistance(g, graph.NodeID(u), graph.NodeID(v), -1)
			if int(dist[u][v]) != want {
				t.Fatalf("dist[%d][%d] = %d, want %d", u, v, dist[u][v], want)
			}
		}
	}
}
