package simulation

import (
	"math/rand"
	"testing"

	"graphviews/internal/graph"
	"graphviews/internal/pattern"
)

// fig1Graph builds the Fig. 1(a) recommendation network (see DESIGN.md §3).
// Node ids: Bob=0 Walt=1 Mat=2 Fred=3 Mary=4 Dan=5 Pat=6 Bill=7 Jean=8 Emmy=9.
func fig1Graph() *graph.Graph {
	g := graph.New()
	for _, l := range []string{"PM", "PM", "DBA", "DBA", "DBA", "PRG", "PRG", "PRG", "BA", "ST"} {
		g.AddNode(l)
	}
	edges := [][2]graph.NodeID{
		{0, 2}, {1, 2}, // PM -> Mat
		{0, 5}, {1, 7}, // Bob->Dan, Walt->Bill
		{3, 6}, {2, 6}, {4, 7}, // DBA -> PRG
		{5, 3}, {6, 4}, {6, 2}, {7, 2}, // PRG -> DBA
		{1, 8}, {5, 9}, // Walt->Jean (BA), Dan->Emmy (ST): background noise
	}
	for _, e := range edges {
		g.AddEdge(e[0], e[1])
	}
	return g
}

// fig1Qs builds the Fig. 1(c) pattern.
// Node indices: pm=0 dba1=1 prg1=2 dba2=3 prg2=4.
// Edge indices: 0:(pm,dba1) 1:(pm,prg2) 2:(dba1,prg1) 3:(prg1,dba2)
// 4:(dba2,prg2) 5:(prg2,dba1).
func fig1Qs() *pattern.Pattern {
	p := pattern.New("Qs")
	pm := p.AddNode("pm", "PM")
	dba1 := p.AddNode("dba1", "DBA")
	prg1 := p.AddNode("prg1", "PRG")
	dba2 := p.AddNode("dba2", "DBA")
	prg2 := p.AddNode("prg2", "PRG")
	p.AddEdge(pm, dba1)
	p.AddEdge(pm, prg2)
	p.AddEdge(dba1, prg1)
	p.AddEdge(prg1, dba2)
	p.AddEdge(dba2, prg2)
	p.AddEdge(prg2, dba1)
	return p
}

func pairs(ps ...[2]graph.NodeID) []Pair {
	out := make([]Pair, len(ps))
	for i, p := range ps {
		out[i] = Pair{p[0], p[1]}
	}
	return out
}

func checkEdgeSet(t *testing.T, res *Result, ei int, want []Pair) {
	t.Helper()
	got := res.Edges[ei].Pairs
	if len(got) != len(want) {
		t.Fatalf("edge %d: got %v, want %v", ei, got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("edge %d: got %v, want %v", ei, got, want)
		}
	}
}

// TestExample2 pins the result table of the paper's Example 2.
func TestExample2(t *testing.T) {
	g := fig1Graph()
	p := fig1Qs()
	res := Simulate(g, p)
	if !res.Matched {
		t.Fatalf("Qs should match G")
	}
	const (
		bob  = graph.NodeID(0)
		walt = graph.NodeID(1)
		mat  = graph.NodeID(2)
		fred = graph.NodeID(3)
		mary = graph.NodeID(4)
		dan  = graph.NodeID(5)
		pat  = graph.NodeID(6)
		bill = graph.NodeID(7)
	)
	// (PM,DBA1) = {(Bob,Mat),(Walt,Mat)}
	checkEdgeSet(t, res, 0, pairs([2]graph.NodeID{bob, mat}, [2]graph.NodeID{walt, mat}))
	// (PM,PRG2) = {(Bob,Dan),(Walt,Bill)}
	checkEdgeSet(t, res, 1, pairs([2]graph.NodeID{bob, dan}, [2]graph.NodeID{walt, bill}))
	// (DBA1,PRG1) = {(Mat,Pat),(Fred,Pat),(Mary,Bill)} sorted by src id
	wantDBAPRG := pairs([2]graph.NodeID{mat, pat}, [2]graph.NodeID{fred, pat}, [2]graph.NodeID{mary, bill})
	checkEdgeSet(t, res, 2, wantDBAPRG)
	// (DBA2,PRG2) identical
	checkEdgeSet(t, res, 4, wantDBAPRG)
	// (PRG1,DBA2) = {(Dan,Fred),(Pat,Mary),(Pat,Mat),(Bill,Mat)} sorted
	wantPRGDBA := pairs(
		[2]graph.NodeID{dan, fred},
		[2]graph.NodeID{pat, mat}, [2]graph.NodeID{pat, mary},
		[2]graph.NodeID{bill, mat},
	)
	checkEdgeSet(t, res, 3, wantPRGDBA)
	checkEdgeSet(t, res, 5, wantPRGDBA)

	if res.Size() != 2+2+3+3+4+4 {
		t.Fatalf("|Qs(G)| = %d", res.Size())
	}
}

// fig3Graph builds the reconstructed Fig. 3(a) graph (DESIGN.md §3).
// Ids: PM1=0 AI1=1 AI2=2 DB1=3 DB2=4 SE1=5 SE2=6 Bio1=7.
func fig3Graph() *graph.Graph {
	g := graph.New()
	for _, l := range []string{"PM", "AI", "AI", "DB", "DB", "SE", "SE", "Bio"} {
		g.AddNode(l)
	}
	edges := [][2]graph.NodeID{
		{0, 1}, {0, 2}, // PM1 -> AI1, AI2
		{2, 7},         // AI2 -> Bio1
		{3, 2}, {4, 1}, // DB1 -> AI2, DB2 -> AI1
		{1, 5}, {2, 6}, // AI1 -> SE1, AI2 -> SE2
		{5, 3 + 1}, {6, 3}, // SE1 -> DB2, SE2 -> DB1
		{5, 7}, // SE1 -> Bio1
	}
	for _, e := range edges {
		g.AddEdge(e[0], e[1])
	}
	return g
}

// fig3Qs builds the Fig. 3(c) pattern.
// Nodes: pm=0 ai=1 bio=2 db=3 se=4.
// Edges: 0:(pm,ai) 1:(ai,bio) 2:(db,ai) 3:(ai,se) 4:(se,db).
func fig3Qs() *pattern.Pattern {
	p := pattern.New("Qs3")
	pm := p.AddNode("pm", "PM")
	ai := p.AddNode("ai", "AI")
	bio := p.AddNode("bio", "Bio")
	db := p.AddNode("db", "DB")
	se := p.AddNode("se", "SE")
	p.AddEdge(pm, ai)
	p.AddEdge(ai, bio)
	p.AddEdge(db, ai)
	p.AddEdge(ai, se)
	p.AddEdge(se, db)
	return p
}

// TestExample4Simulation pins the Example 4 result table.
func TestExample4Simulation(t *testing.T) {
	g := fig3Graph()
	p := fig3Qs()
	res := Simulate(g, p)
	if !res.Matched {
		t.Fatalf("Qs3 should match")
	}
	checkEdgeSet(t, res, 0, pairs([2]graph.NodeID{0, 2})) // (PM1,AI2)
	checkEdgeSet(t, res, 1, pairs([2]graph.NodeID{2, 7})) // (AI2,Bio1)
	checkEdgeSet(t, res, 2, pairs([2]graph.NodeID{3, 2})) // (DB1,AI2)
	checkEdgeSet(t, res, 3, pairs([2]graph.NodeID{2, 6})) // (AI2,SE2)
	checkEdgeSet(t, res, 4, pairs([2]graph.NodeID{6, 3})) // (SE2,DB1)
}

// TestExample8Bounded pins the Example 8 result table (fe(AI,Bio)=2, rest 1,
// with the (DB2,AI1) erratum fix of DESIGN.md §3).
func TestExample8Bounded(t *testing.T) {
	g := fig3Graph()
	p := fig3Qs()
	p.Edges[1].Bound = 2 // (ai,bio) within 2 hops
	res := SimulateBounded(g, p)
	if !res.Matched {
		t.Fatalf("Qb should match")
	}
	checkEdgeSet(t, res, 0, pairs([2]graph.NodeID{0, 1}, [2]graph.NodeID{0, 2})) // (PM1,AI1),(PM1,AI2)
	checkEdgeSet(t, res, 1, pairs([2]graph.NodeID{1, 7}, [2]graph.NodeID{2, 7})) // (AI1,Bio1) via SE1, (AI2,Bio1)
	if d := res.Edges[1].Dist(1, 7); d != 2 {
		t.Fatalf("dist(AI1,Bio1) = %d, want 2 (path through SE1)", d)
	}
	if d := res.Edges[1].Dist(2, 7); d != 1 {
		t.Fatalf("dist(AI2,Bio1) = %d, want 1", d)
	}
	checkEdgeSet(t, res, 2, pairs([2]graph.NodeID{3, 2}, [2]graph.NodeID{4, 1})) // (DB1,AI2),(DB2,AI1)
	checkEdgeSet(t, res, 3, pairs([2]graph.NodeID{1, 5}, [2]graph.NodeID{2, 6})) // (AI1,SE1),(AI2,SE2)
	checkEdgeSet(t, res, 4, pairs([2]graph.NodeID{5, 4}, [2]graph.NodeID{6, 3})) // (SE1,DB2),(SE2,DB1)
}

func TestNoMatch(t *testing.T) {
	g := graph.New()
	g.AddNode("A")
	g.AddNode("B")
	g.AddEdge(0, 1)
	// Pattern needs B -> A which G lacks.
	p := pattern.New("q")
	a := p.AddNode("a", "A")
	b := p.AddNode("b", "B")
	p.AddEdge(b, a)
	res := Simulate(g, p)
	if res.Matched || res.Size() != 0 {
		t.Fatalf("expected empty result, got %v", res)
	}
	// Same under bounded and dual.
	if SimulateBounded(g, p).Matched {
		t.Fatalf("bounded should not match")
	}
	if SimulateDual(g, p).Matched {
		t.Fatalf("dual should not match")
	}
}

func TestUnknownLabelNoMatch(t *testing.T) {
	g := graph.New()
	g.AddNode("A")
	p := pattern.New("q")
	p.AddNode("z", "Z")
	if Simulate(g, p).Matched {
		t.Fatalf("unknown label must not match")
	}
}

func TestSingleNodePattern(t *testing.T) {
	g := graph.New()
	g.AddNode("A")
	g.AddNode("A")
	g.AddNode("B")
	p := pattern.New("q")
	p.AddNode("a", "A")
	res := Simulate(g, p)
	if !res.Matched || len(res.Sim[0]) != 2 {
		t.Fatalf("single-node pattern: %v", res.Sim)
	}
}

func TestSelfLoopPattern(t *testing.T) {
	// Pattern A->A (self loop) requires a node with an A-successor chain.
	g := graph.New()
	a1 := g.AddNode("A")
	a2 := g.AddNode("A")
	g.AddNode("A") // a3: no outgoing edge
	g.AddEdge(a1, a2)
	g.AddEdge(a2, a1)
	p := pattern.New("q")
	u := p.AddNode("u", "A")
	p.AddEdge(u, u)
	res := Simulate(g, p)
	if !res.Matched {
		t.Fatalf("self-loop pattern should match the 2-cycle")
	}
	if len(res.Sim[0]) != 2 {
		t.Fatalf("sim(u) = %v, want {a1,a2}", res.Sim[0])
	}
}

func TestBoundedUnbounded(t *testing.T) {
	// a -> x -> x -> b chain: A and B at distance 3.
	g := graph.New()
	a := g.AddNode("A")
	x1 := g.AddNode("X")
	x2 := g.AddNode("X")
	b := g.AddNode("B")
	g.AddEdge(a, x1)
	g.AddEdge(x1, x2)
	g.AddEdge(x2, b)

	p := pattern.New("q")
	pa := p.AddNode("a", "A")
	pb := p.AddNode("b", "B")
	p.AddBoundedEdge(pa, pb, 2)
	if SimulateBounded(g, p).Matched {
		t.Fatalf("bound 2 must not reach distance 3")
	}
	p.Edges[0].Bound = 3
	res := SimulateBounded(g, p)
	if !res.Matched {
		t.Fatalf("bound 3 should match")
	}
	if d := res.Edges[0].Dist(a, b); d != 3 {
		t.Fatalf("dist = %d, want 3", d)
	}
	p.Edges[0].Bound = pattern.Unbounded
	if !SimulateBounded(g, p).Matched {
		t.Fatalf("* bound should match")
	}
}

func TestBoundedEqualsSimulateOnPlainPatterns(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 60; trial++ {
		g, p := randomInstance(rng, 3)
		a := Simulate(g, p)
		b := SimulateBounded(g, p)
		if !a.Equal(b) {
			t.Fatalf("trial %d: Simulate != SimulateBounded on plain pattern\nG: %v\nP: %s\nsim: %v\nbounded: %v",
				trial, g, p, a, b)
		}
	}
}

func TestSimulateAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 80; trial++ {
		g, p := randomInstance(rng, 3)
		a := Simulate(g, p)
		b := BruteSimulate(g, p)
		if !a.Equal(b) {
			t.Fatalf("trial %d: engine != brute\nG: %v\nP: %s\ngot %v\nwant %v", trial, g, p, a, b)
		}
	}
}

func TestBoundedAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 60; trial++ {
		g, p := randomInstance(rng, 3)
		for i := range p.Edges {
			switch rng.Intn(4) {
			case 0:
				p.Edges[i].Bound = pattern.Unbounded
			default:
				p.Edges[i].Bound = pattern.Bound(1 + rng.Intn(3))
			}
		}
		a := SimulateBounded(g, p)
		b := BruteBounded(g, p)
		if !a.Equal(b) {
			t.Fatalf("trial %d: bounded engine != brute\nG: %v\nP: %s\ngot %v\nwant %v", trial, g, p, a, b)
		}
	}
}

func TestDualAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 60; trial++ {
		g, p := randomInstance(rng, 3)
		a := SimulateDual(g, p)
		b := BruteDual(g, p)
		if !a.Equal(b) {
			t.Fatalf("trial %d: dual engine != brute\nG: %v\nP: %s\ngot %v\nwant %v", trial, g, p, a, b)
		}
	}
}

// TestSimulationInvariants checks definitional invariants on random
// instances: every retained node pair satisfies the simulation conditions,
// and the relation is maximal (no removed candidate could be added back).
func TestSimulationInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 40; trial++ {
		g, p := randomInstance(rng, 3)
		res := Simulate(g, p)
		if !res.Matched {
			continue
		}
		inSim := make([]map[graph.NodeID]bool, len(p.Nodes))
		for u := range inSim {
			inSim[u] = map[graph.NodeID]bool{}
			for _, v := range res.Sim[u] {
				inSim[u][v] = true
			}
		}
		// (a) soundness: forward condition holds for every pair.
		for u := range p.Nodes {
			for _, v := range res.Sim[u] {
				for _, ei := range p.OutEdges(u) {
					tgt := p.Edges[ei].To
					ok := false
					for _, w := range g.Out(v) {
						if inSim[tgt][w] {
							ok = true
							break
						}
					}
					if !ok {
						t.Fatalf("trial %d: (%d,%v) lacks support on edge %d", trial, u, v, ei)
					}
				}
			}
		}
		// (b) edge match sets are exactly E ∩ (sim(u) × sim(u')).
		for ei, e := range p.Edges {
			count := 0
			for _, v := range res.Sim[e.From] {
				for _, w := range g.Out(v) {
					if inSim[e.To][w] {
						count++
						if !res.Edges[ei].Has(v, w) {
							t.Fatalf("trial %d: missing pair (%v,%v) in edge %d", trial, v, w, ei)
						}
					}
				}
			}
			if count != res.Edges[ei].Len() {
				t.Fatalf("trial %d: edge %d has %d pairs, want %d", trial, ei, res.Edges[ei].Len(), count)
			}
		}
	}
}

// TestDualSubsetOfSimulation: dual simulation refines simulation.
func TestDualSubsetOfSimulation(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 40; trial++ {
		g, p := randomInstance(rng, 3)
		s := Simulate(g, p)
		d := SimulateDual(g, p)
		if !d.Matched {
			continue
		}
		if !s.Matched {
			t.Fatalf("trial %d: dual matched but simulation did not", trial)
		}
		for u := range p.Nodes {
			in := map[graph.NodeID]bool{}
			for _, v := range s.Sim[u] {
				in[v] = true
			}
			for _, v := range d.Sim[u] {
				if !in[v] {
					t.Fatalf("trial %d: dual match (%d,%v) not in simulation", trial, u, v)
				}
			}
		}
	}
}

// TestBoundedMonotoneInBounds: growing a bound can only grow match sets.
func TestBoundedMonotoneInBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 30; trial++ {
		g, p := randomInstance(rng, 3)
		p2 := p.Clone()
		for i := range p2.Edges {
			p2.Edges[i].Bound = p.Edges[i].Bound + 1
		}
		a := SimulateBounded(g, p)
		b := SimulateBounded(g, p2)
		if a.Matched && !b.Matched {
			t.Fatalf("trial %d: larger bounds lost the match", trial)
		}
		if !a.Matched {
			continue
		}
		for ei := range a.Edges {
			for _, pr := range a.Edges[ei].Pairs {
				if !b.Edges[ei].Has(pr.Src, pr.Dst) {
					t.Fatalf("trial %d: pair %v lost with larger bound", trial, pr)
				}
			}
		}
	}
}

func TestStrongSimulationBasics(t *testing.T) {
	// Strong simulation refines dual simulation; on Fig. 3 it still finds
	// the cycle match.
	g := fig3Graph()
	p := fig3Qs()
	res := SimulateStrong(g, p)
	if !res.Matched {
		t.Fatalf("strong simulation should match Fig. 3")
	}
	d := SimulateDual(g, p)
	for u := range p.Nodes {
		in := map[graph.NodeID]bool{}
		for _, v := range d.Sim[u] {
			in[v] = true
		}
		for _, v := range res.Sim[u] {
			if !in[v] {
				t.Fatalf("strong match (%d,%v) not in dual simulation", u, v)
			}
		}
	}
}

func TestStrongSimulationLocality(t *testing.T) {
	// Two far-apart halves: A->B ... C (C irrelevant). Strong = dual here;
	// mostly exercises ball extraction on disconnected graphs.
	g := graph.New()
	a := g.AddNode("A")
	b := g.AddNode("B")
	g.AddNode("C")
	g.AddEdge(a, b)
	p := pattern.New("q")
	pa := p.AddNode("a", "A")
	pb := p.AddNode("b", "B")
	p.AddEdge(pa, pb)
	res := SimulateStrong(g, p)
	if !res.Matched || !res.Edges[0].Has(a, b) {
		t.Fatalf("strong simulation missed direct edge: %v", res)
	}
}

func TestPredicateFiltering(t *testing.T) {
	g := graph.New()
	v1 := g.AddNode("video")
	g.SetAttr(v1, "rate", 5)
	v2 := g.AddNode("video")
	g.SetAttr(v2, "rate", 2)
	u := g.AddNode("user")
	g.AddEdge(u, v1)
	g.AddEdge(u, v2)

	p := pattern.New("q")
	pu := p.AddNode("u", "user")
	pv := p.AddNode("v", "video", pattern.IntPred("rate", pattern.OpGe, 4))
	p.AddEdge(pu, pv)
	res := Simulate(g, p)
	if !res.Matched {
		t.Fatalf("should match")
	}
	if len(res.Sim[pv]) != 1 || res.Sim[pv][0] != v1 {
		t.Fatalf("predicate filtering wrong: %v", res.Sim[pv])
	}
}

// TestStrongSubsetOfDualRandom: strong simulation refines dual simulation
// on random instances (the containment chain sim ⊇ dual ⊇ strong of Ma et
// al. [28]).
func TestStrongSubsetOfDualRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 25; trial++ {
		g, p := randomInstance(rng, 2)
		s := SimulateStrong(g, p)
		if !s.Matched {
			continue
		}
		d := SimulateDual(g, p)
		if !d.Matched {
			t.Fatalf("trial %d: strong matched but dual did not", trial)
		}
		for u := range p.Nodes {
			in := map[graph.NodeID]bool{}
			for _, v := range d.Sim[u] {
				in[v] = true
			}
			for _, v := range s.Sim[u] {
				if !in[v] {
					t.Fatalf("trial %d: strong match (%d,%v) not in dual simulation", trial, u, v)
				}
			}
		}
		for ei := range s.Edges {
			for _, pr := range s.Edges[ei].Pairs {
				if !d.Edges[ei].Has(pr.Src, pr.Dst) {
					t.Fatalf("trial %d: strong pair %v not in dual match set", trial, pr)
				}
			}
		}
	}
}

// randomInstance builds a random labeled graph and a random connected
// plain pattern over the same alphabet.
func randomInstance(rng *rand.Rand, labels int) (*graph.Graph, *pattern.Pattern) {
	alphabet := []string{"A", "B", "C", "D", "E"}[:labels]
	n := 4 + rng.Intn(12)
	g := graph.New()
	for i := 0; i < n; i++ {
		g.AddNode(alphabet[rng.Intn(labels)])
	}
	m := rng.Intn(3*n + 1)
	for i := 0; i < m; i++ {
		g.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)))
	}

	pn := 2 + rng.Intn(3)
	p := pattern.New("q")
	for i := 0; i < pn; i++ {
		p.AddNode("", alphabet[rng.Intn(labels)])
	}
	// Spanning-tree edges for connectivity, random orientation.
	for i := 1; i < pn; i++ {
		j := rng.Intn(i)
		if rng.Intn(2) == 0 {
			p.AddEdge(j, i)
		} else {
			p.AddEdge(i, j)
		}
	}
	// A few extra edges.
	for i := 0; i < rng.Intn(3); i++ {
		a, b := rng.Intn(pn), rng.Intn(pn)
		dup := false
		for _, e := range p.Edges {
			if e.From == a && e.To == b {
				dup = true
			}
		}
		if !dup {
			p.AddEdge(a, b)
		}
	}
	return g, p
}

// TestMinimizePreservesMatches: property test linking pattern.Minimize to
// the engine — match sets of original nodes equal those of their
// representatives.
func TestMinimizePreservesMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 60; trial++ {
		g, p := randomInstance(rng, 2) // few labels => merges happen
		m := pattern.Minimize(p)
		a := Simulate(g, p)
		b := Simulate(g, m.P)
		if a.Matched != b.Matched {
			t.Fatalf("trial %d: minimize changed matchability\nP:%s\nmin:%s", trial, p, m.P)
		}
		if !a.Matched {
			continue
		}
		for u := range p.Nodes {
			got := b.Sim[m.NodeMap[u]]
			want := a.Sim[u]
			if len(got) != len(want) {
				t.Fatalf("trial %d: node %d match set changed: %v vs %v\nP:%s\nmin:%s",
					trial, u, want, got, p, m.P)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("trial %d: node %d match set changed: %v vs %v", trial, u, want, got)
				}
			}
		}
	}
}
