package simulation

// Randomized differential harness for the frozen CSR backend: every
// engine must produce byte-identical results on a mutable *graph.Graph
// and on graph.Freeze of the same graph (the Reader seam must be
// semantics-free).

import (
	"math/rand"
	"testing"

	"graphviews/internal/graph"
	"graphviews/internal/pattern"
)

// equalResults compares Matched, node match sets and edge match sets
// (distances included).
func equalResults(a, b *Result) bool {
	if !a.Equal(b) || len(a.Sim) != len(b.Sim) {
		return false
	}
	for u := range a.Sim {
		if len(a.Sim[u]) != len(b.Sim[u]) {
			return false
		}
		for i := range a.Sim[u] {
			if a.Sim[u][i] != b.Sim[u][i] {
				return false
			}
		}
	}
	return true
}

// TestFrozenBackendPlainEngines: Simulate, SimulateDual and
// SimulateStrong agree across backends on random plain instances.
func TestFrozenBackendPlainEngines(t *testing.T) {
	engines := map[string]func(graph.Reader, *pattern.Pattern) *Result{
		"sim":    Simulate,
		"dual":   SimulateDual,
		"strong": SimulateStrong,
		"brute":  BruteSimulate,
	}
	rng := rand.New(rand.NewSource(8011))
	for trial := 0; trial < 60; trial++ {
		g, p := randomInstance(rng, 3)
		fz := graph.Freeze(g)
		for name, eng := range engines {
			a := eng(g, p)
			b := eng(fz, p)
			if !equalResults(a, b) {
				t.Fatalf("trial %d engine %s: frozen result differs\nmutable: %v\nfrozen:  %v",
					trial, name, a, b)
			}
		}
	}
}

// TestFrozenBackendBounded: bounded simulation (including unbounded *
// edges) agrees across backends, distances included.
func TestFrozenBackendBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(8021))
	for trial := 0; trial < 60; trial++ {
		g, p := randomInstance(rng, 3)
		// Randomly loosen some edges into bounded/unbounded ones.
		for i := range p.Edges {
			switch rng.Intn(3) {
			case 0:
				p.Edges[i].Bound = pattern.Bound(2 + rng.Intn(3))
			case 1:
				p.Edges[i].Bound = pattern.Unbounded
			}
		}
		fz := graph.Freeze(g)
		a := SimulateBounded(g, p)
		b := SimulateBounded(fz, p)
		if !equalResults(a, b) {
			t.Fatalf("trial %d: frozen bounded result differs\nmutable: %v\nfrozen:  %v", trial, a, b)
		}
	}
}

// TestFrozenBackendPredicates: attribute predicates (numeric and
// categorical) evaluate identically against the frozen attribute columns.
func TestFrozenBackendPredicates(t *testing.T) {
	rng := rand.New(rand.NewSource(8031))
	cats := []string{"Music", "Sports", "News"}
	for trial := 0; trial < 40; trial++ {
		g, p := randomInstance(rng, 3)
		for v := graph.NodeID(0); int(v) < g.NumNodes(); v++ {
			if rng.Intn(2) == 0 {
				g.SetAttr(v, "x", int64(rng.Intn(5)))
			}
			if rng.Intn(3) == 0 {
				g.SetAttrString(v, "cat", cats[rng.Intn(len(cats))])
			}
		}
		for u := range p.Nodes {
			if rng.Intn(2) == 0 {
				p.Nodes[u].Preds = append(p.Nodes[u].Preds,
					pattern.IntPred("x", pattern.OpGe, int64(rng.Intn(4))))
			}
			if rng.Intn(3) == 0 {
				p.Nodes[u].Preds = append(p.Nodes[u].Preds,
					pattern.StrPred("cat", pattern.OpEq, cats[rng.Intn(len(cats))]))
			}
		}
		fz := graph.Freeze(g)
		if a, b := Simulate(g, p), Simulate(fz, p); !equalResults(a, b) {
			t.Fatalf("trial %d: predicate evaluation differs across backends", trial)
		}
	}
}
