package simulation

// Brute-force reference engines: direct transcriptions of the simulation
// definitions (Sections II-A and VI) using repeated full passes and an
// all-pairs distance matrix. They are O(|V|³)-ish and exist solely so the
// test suite can cross-check the optimized engines on small random inputs.

import (
	"graphviews/internal/graph"
	"graphviews/internal/pattern"
)

// BruteSimulate computes Qs(G) by naive fixpoint over the definition.
func BruteSimulate(g graph.Reader, p *pattern.Pattern) *Result {
	n := g.NumNodes()
	inSim := bruteInit(g, p)
	for changed := true; changed; {
		changed = false
		for u := range p.Nodes {
			for v := 0; v < n; v++ {
				if !inSim[u][v] {
					continue
				}
				ok := true
				for _, ei := range p.OutEdges(u) {
					tgt := p.Edges[ei].To
					found := false
					for _, w := range g.Out(graph.NodeID(v)) {
						if inSim[tgt][w] {
							found = true
							break
						}
					}
					if !found {
						ok = false
						break
					}
				}
				if !ok {
					inSim[u][v] = false
					changed = true
				}
			}
		}
	}
	return bruteFinish(g, p, inSim, nil)
}

// BruteDual computes the maximum dual simulation naively.
func BruteDual(g graph.Reader, p *pattern.Pattern) *Result {
	n := g.NumNodes()
	inSim := bruteInit(g, p)
	for changed := true; changed; {
		changed = false
		for u := range p.Nodes {
			for v := 0; v < n; v++ {
				if !inSim[u][v] {
					continue
				}
				ok := true
				for _, ei := range p.OutEdges(u) {
					tgt := p.Edges[ei].To
					found := false
					for _, w := range g.Out(graph.NodeID(v)) {
						if inSim[tgt][w] {
							found = true
							break
						}
					}
					if !found {
						ok = false
						break
					}
				}
				for _, ei := range p.InEdges(u) {
					src := p.Edges[ei].From
					found := false
					for _, w := range g.In(graph.NodeID(v)) {
						if inSim[src][w] {
							found = true
							break
						}
					}
					if !found {
						ok = false
						break
					}
				}
				if !ok {
					inSim[u][v] = false
					changed = true
				}
			}
		}
	}
	return bruteFinish(g, p, inSim, nil)
}

// BruteBounded computes Qb(G) naively using an all-pairs shortest
// nonempty-path matrix (dist[v][v'] = hops, -1 unreachable).
func BruteBounded(g graph.Reader, p *pattern.Pattern) *Result {
	n := g.NumNodes()
	dist := AllPairsHops(g)
	inSim := bruteInit(g, p)
	within := func(v, w int, b pattern.Bound) bool {
		d := dist[v][w]
		if d < 0 {
			return false
		}
		return b == pattern.Unbounded || int(d) <= int(b)
	}
	for changed := true; changed; {
		changed = false
		for u := range p.Nodes {
			for v := 0; v < n; v++ {
				if !inSim[u][v] {
					continue
				}
				ok := true
				for _, ei := range p.OutEdges(u) {
					e := p.Edges[ei]
					found := false
					for w := 0; w < n; w++ {
						if inSim[e.To][w] && within(v, w, e.Bound) {
							found = true
							break
						}
					}
					if !found {
						ok = false
						break
					}
				}
				if !ok {
					inSim[u][v] = false
					changed = true
				}
			}
		}
	}
	return bruteFinish(g, p, inSim, dist)
}

// boolsToSorted converts the brute engines' []bool membership rows into
// sorted id slices (the production engines use bitset rows; see
// simToSorted).
func boolsToSorted(inSim [][]bool) [][]graph.NodeID {
	out := make([][]graph.NodeID, len(inSim))
	for u := range inSim {
		for v, ok := range inSim[u] {
			if ok {
				out[u] = append(out[u], graph.NodeID(v))
			}
		}
	}
	return out
}

func bruteInit(g graph.Reader, p *pattern.Pattern) [][]bool {
	n := g.NumNodes()
	inSim := make([][]bool, len(p.Nodes))
	for u := range p.Nodes {
		inSim[u] = make([]bool, n)
		cn := pattern.CompileNode(&p.Nodes[u], g)
		for v := graph.NodeID(0); int(v) < n; v++ {
			if cn.Matches(g, v) {
				inSim[u][v] = true
			}
		}
	}
	return inSim
}

// bruteFinish validates non-emptiness and enumerates match sets. With a
// distance matrix it enumerates bounded matches; otherwise direct edges.
func bruteFinish(g graph.Reader, p *pattern.Pattern, inSim [][]bool, dist [][]int32) *Result {
	n := g.NumNodes()
	sim := boolsToSorted(inSim)
	for u := range sim {
		if len(sim[u]) == 0 {
			return emptyResult(p)
		}
	}
	res := &Result{Pattern: p, Matched: true, Sim: sim, Edges: make([]EdgeMatches, len(p.Edges))}
	for ei, e := range p.Edges {
		em := &res.Edges[ei]
		if dist == nil {
			for _, v := range sim[e.From] {
				for _, w := range g.Out(v) {
					if inSim[e.To][w] {
						em.add(v, w, 1)
					}
				}
			}
		} else {
			for _, v := range sim[e.From] {
				for w := 0; w < n; w++ {
					if !inSim[e.To][w] {
						continue
					}
					d := dist[v][w]
					if d < 0 {
						continue
					}
					if e.Bound == pattern.Unbounded || int(d) <= int(e.Bound) {
						em.add(v, graph.NodeID(w), d)
					}
				}
			}
		}
		em.normalize()
	}
	return res
}

// AllPairsHops computes shortest nonempty-path hop counts between all
// pairs (BFS from every node). dist[v][v] is the shortest cycle length
// through v, or -1. Quadratic memory: small graphs only.
func AllPairsHops(g graph.Reader) [][]int32 {
	n := g.NumNodes()
	dist := make([][]int32, n)
	bfs := graph.NewBFS(n)
	for v := 0; v < n; v++ {
		row := make([]int32, n)
		for i := range row {
			row[i] = -1
		}
		bfs.From(g, graph.NodeID(v), graph.Forward, -1, func(w graph.NodeID, d int) bool {
			row[w] = int32(d)
			return true
		})
		dist[v] = row
	}
	return dist
}
