package simulation

// Grow-phase bounded maintenance (the insertion-side dual of the
// deletion-side seeded refinement). Under edge insertion bounded match
// sets only grow and shortest path lengths only shrink, so a maintained
// view can keep most of its recorded match pairs and re-enumerate only
// the sources the inserted edges can reach backward (the affected
// area). See internal/view for the affected-area computation and the
// soundness argument.

import (
	"graphviews/internal/bitset"
	"graphviews/internal/graph"
	"graphviews/internal/pattern"
)

// SimulateBoundedGrow computes Qb(G) after a batch of edge insertions,
// reusing a pre-insertion result. cands must be sorted supersets of the
// true match sets (the caller seeds them from old.Sim plus the affected
// candidates, so refinement touches only the grown region), old must be
// a Matched result valid for the graph before the insertions, and
// affected must contain every node whose match-set membership or
// recorded distances can have changed — in particular every node with a
// path of length ≤ bound-1 to an inserted edge's source.
//
// Enumeration is then partial: for each pattern edge, match pairs whose
// source is unaffected are copied from old verbatim (their shortest
// paths cannot have shortened without passing through an inserted
// edge's source within the bound, which would put the source in
// affected), and only affected sources are re-walked. The one hazard is
// a grown target set: an unaffected source may gain a pair to a newly
// admitted target over a purely old path, so any edge whose target
// match set grew falls back to full re-enumeration. Insert-only match
// sets are monotone, so "grew" is a length comparison.
func SimulateBoundedGrow(g graph.Reader, p *pattern.Pattern, cands [][]graph.NodeID, old *Result, affected bitset.Set) *Result {
	simList, inSim, bfs, ok := boundedRefine(g, p, cands, new(Scratch))
	if !ok {
		// Match sets cannot shrink under insertion, and old.Matched holds:
		// refinement from a seeded superset of the true sets cannot empty
		// any of them. Reaching here means the caller broke the contract;
		// recompute from full candidates rather than return a wrong result.
		return SimulateBoundedSeeded(g, p, candidates(g, p, false))
	}
	edges := make([]EdgeMatches, len(p.Edges))
	for ei := range p.Edges {
		e := &p.Edges[ei]
		em := &edges[ei]
		depth := -1
		if e.Bound != pattern.Unbounded {
			depth = int(e.Bound)
		}
		dst := inSim.Row(e.To)
		full := len(simList[e.To]) != len(old.Sim[e.To])
		if !full {
			// Keep the unaffected slice of the old match set: Pairs are
			// sorted by (Src,Dst), and filtering by source preserves that.
			oldEM := &old.Edges[ei]
			for i, pr := range oldEM.Pairs {
				if !affected.Get(int(pr.Src)) {
					em.add(pr.Src, pr.Dst, oldEM.Dists[i])
				}
			}
		}
		for _, v := range simList[e.From] {
			if !full && !affected.Get(int(v)) {
				continue
			}
			bfs.From(g, v, graph.Forward, depth, func(w graph.NodeID, d int) bool {
				if dst.Get(int(w)) {
					em.add(v, w, int32(d))
				}
				return true
			})
		}
		em.normalize()
	}
	return &Result{Pattern: p, Matched: true, Sim: simList, Edges: edges}
}
