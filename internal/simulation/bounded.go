package simulation

// Bounded simulation engine (Section VI, after Fan et al. [16]). A pattern
// edge (u,u') with bound k maps to a nonempty path of length ≤ k (any
// length for *). The engine refines label candidates to a fixpoint; each
// round recomputes, for every pattern edge, the set of nodes that can
// reach the current sim(u') within the bound, via one multi-source
// backward BFS per edge (the cubic-class algorithm the paper quotes for
// BMatch). Match-set enumeration records exact shortest path lengths,
// which materialized views reuse as the distance index I(V). Membership
// rows, BFS distance arrays and the dirty-edge queue come from the
// query's Scratch.

import (
	"context"
	"sync"

	"graphviews/internal/bitset"
	"graphviews/internal/graph"
	"graphviews/internal/par"
	"graphviews/internal/pattern"
)

// SimulateBounded computes Qb(G) under bounded simulation. Plain patterns
// (all bounds 1) yield exactly the Simulate result, with identical match
// sets.
func SimulateBounded(g graph.Reader, p *pattern.Pattern) *Result {
	return SimulateBoundedPar(context.Background(), g, p, 1)
}

// SimulateBoundedPar is SimulateBounded with the match-set enumeration —
// one forward BFS per matched source node, the step that records the
// exact path lengths reused as the distance index I(V) — fanned out over
// up to workers goroutines, observing ctx between enumeration chunks.
// The refinement fixpoint itself stays sequential. The result is
// identical to SimulateBounded's: enumeration partitions source nodes,
// so no pair is produced twice, and per-edge normalization makes the
// merge order immaterial. Under a cancelled ctx the result may be
// partial; callers must discard it when their ctx reports cancellation.
func SimulateBoundedPar(ctx context.Context, g graph.Reader, p *pattern.Pattern, workers int) *Result {
	return simulateBoundedSeeded(ctx, g, p, candidates(g, p, false), workers, new(Scratch))
}

// SimulateBoundedSeeded runs the bounded refinement from the given
// candidate sets (sorted supersets of the true match sets); see
// SimulateSeeded.
func SimulateBoundedSeeded(g graph.Reader, p *pattern.Pattern, cands [][]graph.NodeID) *Result {
	return simulateBoundedSeeded(context.Background(), g, p, cands, 1, new(Scratch))
}

func simulateBoundedSeeded(ctx context.Context, g graph.Reader, p *pattern.Pattern, cands [][]graph.NodeID, workers int, sc *Scratch) *Result {
	simList, inSim, bfs, ok := boundedRefine(g, p, cands, sc)
	if !ok {
		return emptyResult(p)
	}
	return &Result{Pattern: p, Matched: true, Sim: simList, Edges: enumerateBounded(ctx, g, p, simList, inSim, workers, bfs)}
}

// boundedRefine runs the bounded-simulation refinement fixpoint from the
// given candidate sets down to the greatest match sets. It returns the
// per-pattern-node match lists, their bitset rows, the BFS scratch (for
// reuse by enumeration), and whether every set is nonempty.
func boundedRefine(g graph.Reader, p *pattern.Pattern, cands [][]graph.NodeID, sc *Scratch) (simListOut [][]graph.NodeID, inSimOut *bitset.Matrix, bfsOut *graph.BFS, ok bool) {
	n := g.NumNodes()

	for u := range cands {
		if len(cands[u]) == 0 {
			return nil, nil, nil, false
		}
	}
	inSim := sc.matrix(len(p.Nodes), n)
	simList := make([][]graph.NodeID, len(p.Nodes))
	for u := range cands {
		row := inSim.Row(u)
		for _, v := range cands[u] {
			row.Set(int(v))
		}
		// simList ends up in the Result, so it must own heap memory.
		simList[u] = append([]graph.NodeID(nil), cands[u]...)
	}

	bfs := sc.bfsScratch(n)
	// backDist holds, per refinement step, the backward BFS distance from
	// the current sim(target) set; -1 = unreached.
	backDist := sc.buffer(n)

	// dirty[e] marks edges whose support must be (re)checked.
	queue, dirty := sc.edgeQueue(len(p.Edges))
	for ei := range p.Edges {
		dirty[ei] = true
		queue = append(queue, ei)
	}

	for len(queue) > 0 {
		ei := queue[0]
		queue = queue[1:]
		if !dirty[ei] {
			continue
		}
		dirty[ei] = false
		e := p.Edges[ei]
		k := e.Bound

		// Backward ball of radius k-1 around sim(e.To): a node v supports
		// the edge iff some successor w of v has backDist[w] ≤ k-1, i.e.
		// v reaches sim(e.To) via a nonempty path of length ≤ k.
		for i := range backDist {
			backDist[i] = -1
		}
		depth := -1 // unbounded
		if k != pattern.Unbounded {
			depth = int(k) - 1
		}
		bfs.FromMulti(g, simList[e.To], graph.Backward, depth, func(v graph.NodeID, d int) bool {
			backDist[v] = int32(d)
			return true
		})

		kept := simList[e.From][:0]
		removedAny := false
		fromRow := inSim.Row(e.From)
		for _, v := range simList[e.From] {
			supported := false
			for _, w := range g.Out(v) {
				if backDist[w] >= 0 {
					supported = true
					break
				}
			}
			if supported {
				kept = append(kept, v)
			} else {
				fromRow.Clear(int(v))
				removedAny = true
			}
		}
		simList[e.From] = kept
		if len(kept) == 0 {
			return nil, nil, nil, false
		}
		if removedAny {
			// sim(e.From) shrank: every edge whose target is e.From needs
			// a recheck.
			for _, in := range p.InEdges(e.From) {
				if !dirty[in] {
					dirty[in] = true
					queue = append(queue, in)
				}
			}
		}
	}

	for u := range simList {
		if len(simList[u]) == 0 {
			return nil, nil, nil, false
		}
	}

	return simList, inSim, bfs, true
}

// enumerateBounded builds the per-edge match sets with exact shortest
// path lengths. With workers > 1 the (edge, source-chunk) tasks are run
// concurrently, each with its own BFS scratch from a pool; since chunks
// partition the source nodes, the concatenated partial sets contain no
// duplicates and normalization restores the canonical (Src,Dst) order.
// inSim is only read, so goroutines may share its rows.
func enumerateBounded(ctx context.Context, g graph.Reader, p *pattern.Pattern, simList [][]graph.NodeID, inSim *bitset.Matrix, workers int, bfs *graph.BFS) []EdgeMatches {
	edges := make([]EdgeMatches, len(p.Edges))
	depthOf := func(e *pattern.Edge) int {
		if e.Bound == pattern.Unbounded {
			return -1
		}
		return int(e.Bound)
	}
	if par.Workers(workers) <= 1 {
		for ei := range p.Edges {
			e := &p.Edges[ei]
			em := &edges[ei]
			depth := depthOf(e)
			dst := inSim.Row(e.To)
			for _, v := range simList[e.From] {
				bfs.From(g, v, graph.Forward, depth, func(w graph.NodeID, d int) bool {
					if dst.Get(int(w)) {
						em.add(v, w, int32(d))
					}
					return true
				})
			}
			em.normalize()
		}
		return edges
	}

	type chunk struct{ ei, lo, hi int }
	var chunks []chunk
	const minChunk = 64
	for ei := range p.Edges {
		srcs := simList[p.Edges[ei].From]
		step := len(srcs)/(par.Workers(workers)*4) + 1
		if step < minChunk {
			step = minChunk
		}
		for lo := 0; lo < len(srcs); lo += step {
			hi := lo + step
			if hi > len(srcs) {
				hi = len(srcs)
			}
			chunks = append(chunks, chunk{ei, lo, hi})
		}
	}
	parts := make([]EdgeMatches, len(chunks))
	pool := sync.Pool{New: func() any { return graph.NewBFS(g.NumNodes()) }}
	pool.Put(bfs) // reuse the refinement scratch
	par.ForEach(ctx, workers, len(chunks), func(ci int) {
		c := chunks[ci]
		e := &p.Edges[c.ei]
		depth := depthOf(e)
		scratch := pool.Get().(*graph.BFS)
		em := &parts[ci]
		dst := inSim.Row(e.To)
		for _, v := range simList[e.From][c.lo:c.hi] {
			scratch.From(g, v, graph.Forward, depth, func(w graph.NodeID, d int) bool {
				if dst.Get(int(w)) {
					em.add(v, w, int32(d))
				}
				return true
			})
		}
		pool.Put(scratch)
	})
	for ci := range chunks {
		em := &edges[chunks[ci].ei]
		em.Pairs = append(em.Pairs, parts[ci].Pairs...)
		em.Dists = append(em.Dists, parts[ci].Dists...)
	}
	for ei := range edges {
		edges[ei].normalize()
	}
	return edges
}
