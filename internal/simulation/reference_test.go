package simulation

// Retained reference implementations of the pre-dense-kernel engines
// (PR 3 state): []bool membership rows, per-edge []int32 support slices,
// plain append worklists — byte-for-byte the algorithms the bitset/arena
// kernels replaced. The differential tests below prove the dense engines
// produce identical Results (Sim lists, pairs and distances) on
// randomized plain, bounded, dual and predicate workloads, including
// repeated runs over one warmed ScratchPool (stale-scratch detection).

import (
	"context"
	"math/rand"
	"strings"
	"testing"

	"graphviews/internal/graph"
	"graphviews/internal/pattern"
)

// referenceSimulateSeeded is the pre-PR plain-simulation fixpoint.
func referenceSimulateSeeded(g graph.Reader, p *pattern.Pattern, cands [][]graph.NodeID) *Result {
	n := g.NumNodes()

	inSim := make([][]bool, len(p.Nodes))
	for u := range inSim {
		if len(cands[u]) == 0 {
			return emptyResult(p)
		}
		inSim[u] = make([]bool, n)
		for _, v := range cands[u] {
			inSim[u][v] = true
		}
	}

	supp := make([][]int32, len(p.Edges))
	for ei := range p.Edges {
		supp[ei] = make([]int32, n)
	}

	type removal struct {
		u int
		v graph.NodeID
	}
	var work []removal
	remove := func(u int, v graph.NodeID) {
		inSim[u][v] = false
		work = append(work, removal{u, v})
	}

	for u := range p.Nodes {
		for _, ei := range p.OutEdges(u) {
			tgt := p.Edges[ei].To
			for _, v := range cands[u] {
				var c int32
				for _, w := range g.Out(v) {
					if inSim[tgt][w] {
						c++
					}
				}
				supp[ei][v] = c
			}
		}
	}
	for u := range p.Nodes {
		outs := p.OutEdges(u)
		for _, v := range cands[u] {
			for _, ei := range outs {
				if supp[ei][v] == 0 {
					remove(u, v)
					break
				}
			}
		}
	}

	for len(work) > 0 {
		r := work[len(work)-1]
		work = work[:len(work)-1]
		for _, ei := range p.InEdges(r.u) {
			src := p.Edges[ei].From
			for _, x := range g.In(r.v) {
				if !inSim[src][x] {
					continue
				}
				supp[ei][x]--
				if supp[ei][x] == 0 {
					remove(src, x)
				}
			}
		}
	}

	sim := boolsToSorted(inSim)
	for u := range sim {
		if len(sim[u]) == 0 {
			return emptyResult(p)
		}
	}

	res := &Result{Pattern: p, Matched: true, Sim: sim, Edges: make([]EdgeMatches, len(p.Edges))}
	for ei, e := range p.Edges {
		em := &res.Edges[ei]
		for _, v := range sim[e.From] {
			for _, w := range g.Out(v) {
				if inSim[e.To][w] {
					em.add(v, w, 1)
				}
			}
		}
		em.normalize()
	}
	return res
}

// referenceSimulateBounded is the pre-PR bounded fixpoint (sequential
// enumeration path).
func referenceSimulateBounded(g graph.Reader, p *pattern.Pattern, cands [][]graph.NodeID) *Result {
	n := g.NumNodes()

	inSim := make([][]bool, len(p.Nodes))
	for u := range inSim {
		if len(cands[u]) == 0 {
			return emptyResult(p)
		}
		inSim[u] = make([]bool, n)
		for _, v := range cands[u] {
			inSim[u][v] = true
		}
	}
	simList := make([][]graph.NodeID, len(p.Nodes))
	for u := range simList {
		simList[u] = append([]graph.NodeID(nil), cands[u]...)
	}

	bfs := graph.NewBFS(n)
	backDist := make([]int32, n)

	dirty := make([]bool, len(p.Edges))
	queue := make([]int, 0, len(p.Edges))
	for ei := range p.Edges {
		dirty[ei] = true
		queue = append(queue, ei)
	}

	for len(queue) > 0 {
		ei := queue[0]
		queue = queue[1:]
		if !dirty[ei] {
			continue
		}
		dirty[ei] = false
		e := p.Edges[ei]
		k := e.Bound

		for i := range backDist {
			backDist[i] = -1
		}
		depth := -1
		if k != pattern.Unbounded {
			depth = int(k) - 1
		}
		bfs.FromMulti(g, simList[e.To], graph.Backward, depth, func(v graph.NodeID, d int) bool {
			backDist[v] = int32(d)
			return true
		})

		kept := simList[e.From][:0]
		removedAny := false
		for _, v := range simList[e.From] {
			ok := false
			for _, w := range g.Out(v) {
				if backDist[w] >= 0 {
					ok = true
					break
				}
			}
			if ok {
				kept = append(kept, v)
			} else {
				inSim[e.From][v] = false
				removedAny = true
			}
		}
		simList[e.From] = kept
		if len(kept) == 0 {
			return emptyResult(p)
		}
		if removedAny {
			for _, in := range p.InEdges(e.From) {
				if !dirty[in] {
					dirty[in] = true
					queue = append(queue, in)
				}
			}
		}
	}

	for u := range simList {
		if len(simList[u]) == 0 {
			return emptyResult(p)
		}
	}

	edges := make([]EdgeMatches, len(p.Edges))
	for ei := range p.Edges {
		e := &p.Edges[ei]
		em := &edges[ei]
		depth := -1
		if e.Bound != pattern.Unbounded {
			depth = int(e.Bound)
		}
		for _, v := range simList[e.From] {
			bfs.From(g, v, graph.Forward, depth, func(w graph.NodeID, d int) bool {
				if inSim[e.To][w] {
					em.add(v, w, int32(d))
				}
				return true
			})
		}
		em.normalize()
	}
	return &Result{Pattern: p, Matched: true, Sim: simList, Edges: edges}
}

// referenceSimulateDual is the pre-PR dual fixpoint.
func referenceSimulateDual(g graph.Reader, p *pattern.Pattern) *Result {
	n := g.NumNodes()
	cands := candidates(g, p, false)

	inSim := make([][]bool, len(p.Nodes))
	for u := range inSim {
		if len(cands[u]) == 0 {
			return emptyResult(p)
		}
		inSim[u] = make([]bool, n)
		for _, v := range cands[u] {
			inSim[u][v] = true
		}
	}

	suppFwd := make([][]int32, len(p.Edges))
	suppBwd := make([][]int32, len(p.Edges))
	for ei := range p.Edges {
		suppFwd[ei] = make([]int32, n)
		suppBwd[ei] = make([]int32, n)
	}

	type removal struct {
		u int
		v graph.NodeID
	}
	var work []removal
	remove := func(u int, v graph.NodeID) {
		if inSim[u][v] {
			inSim[u][v] = false
			work = append(work, removal{u, v})
		}
	}

	for u := range p.Nodes {
		for _, v := range cands[u] {
			for _, ei := range p.OutEdges(u) {
				tgt := p.Edges[ei].To
				var c int32
				for _, w := range g.Out(v) {
					if inSim[tgt][w] {
						c++
					}
				}
				suppFwd[ei][v] = c
			}
			for _, ei := range p.InEdges(u) {
				src := p.Edges[ei].From
				var c int32
				for _, w := range g.In(v) {
					if inSim[src][w] {
						c++
					}
				}
				suppBwd[ei][v] = c
			}
		}
	}
	for u := range p.Nodes {
		for _, v := range cands[u] {
			dead := false
			for _, ei := range p.OutEdges(u) {
				if suppFwd[ei][v] == 0 {
					dead = true
					break
				}
			}
			if !dead {
				for _, ei := range p.InEdges(u) {
					if suppBwd[ei][v] == 0 {
						dead = true
						break
					}
				}
			}
			if dead {
				remove(u, v)
			}
		}
	}

	for len(work) > 0 {
		r := work[len(work)-1]
		work = work[:len(work)-1]
		for _, ei := range p.InEdges(r.u) {
			src := p.Edges[ei].From
			for _, x := range g.In(r.v) {
				if inSim[src][x] {
					suppFwd[ei][x]--
					if suppFwd[ei][x] == 0 {
						remove(src, x)
					}
				}
			}
		}
		for _, ei := range p.OutEdges(r.u) {
			tgt := p.Edges[ei].To
			for _, x := range g.Out(r.v) {
				if inSim[tgt][x] {
					suppBwd[ei][x]--
					if suppBwd[ei][x] == 0 {
						remove(tgt, x)
					}
				}
			}
		}
	}

	sim := boolsToSorted(inSim)
	for u := range sim {
		if len(sim[u]) == 0 {
			return emptyResult(p)
		}
	}
	res := &Result{Pattern: p, Matched: true, Sim: sim, Edges: make([]EdgeMatches, len(p.Edges))}
	for ei, e := range p.Edges {
		em := &res.Edges[ei]
		for _, v := range sim[e.From] {
			for _, w := range g.Out(v) {
				if inSim[e.To][w] {
					em.add(v, w, 1)
				}
			}
		}
		em.normalize()
	}
	return res
}

// loosenBounds randomly relaxes pattern edges into bounded/unbounded
// ones.
func loosenBounds(rng *rand.Rand, p *pattern.Pattern) {
	for i := range p.Edges {
		switch rng.Intn(3) {
		case 0:
			p.Edges[i].Bound = pattern.Bound(2 + rng.Intn(3))
		case 1:
			p.Edges[i].Bound = pattern.Unbounded
		}
	}
}

// addRandomPreds decorates graph and pattern with numeric and
// categorical attributes so predicate evaluation participates.
func addRandomPreds(rng *rand.Rand, g *graph.Graph, p *pattern.Pattern) {
	cats := []string{"Music", "Sports", "News"}
	for v := graph.NodeID(0); int(v) < g.NumNodes(); v++ {
		if rng.Intn(2) == 0 {
			g.SetAttr(v, "x", int64(rng.Intn(5)))
		}
		if rng.Intn(3) == 0 {
			g.SetAttrString(v, "cat", cats[rng.Intn(len(cats))])
		}
	}
	for u := range p.Nodes {
		if rng.Intn(3) == 0 {
			p.Nodes[u].Preds = append(p.Nodes[u].Preds,
				pattern.IntPred("x", pattern.OpGe, int64(rng.Intn(4))))
		}
	}
}

// TestDenseKernelsMatchReferencePlain: the bitset/arena plain engine —
// fresh scratch and warmed pool alike — reproduces the retained
// reference byte for byte.
func TestDenseKernelsMatchReferencePlain(t *testing.T) {
	rng := rand.New(rand.NewSource(9001))
	pool := NewScratchPool()
	for trial := 0; trial < 120; trial++ {
		g, p := randomInstance(rng, 3)
		if trial%2 == 0 {
			addRandomPreds(rng, g, p)
		}
		want := referenceSimulateSeeded(g, p, candidates(g, p, true))
		if got := Simulate(g, p); !equalResults(got, want) {
			t.Fatalf("trial %d: dense plain result differs\nref:   %v\ndense: %v", trial, want, got)
		}
		// Same query through the warmed pool, twice: a scratch that leaks
		// state across queries would diverge here.
		for round := 0; round < 2; round++ {
			if got := SimulatePooled(context.Background(), g, p, 1, pool); !equalResults(got, want) {
				t.Fatalf("trial %d round %d: pooled plain result differs", trial, round)
			}
		}
	}
}

// TestDenseKernelsMatchReferenceBounded: bounded fixpoint + distance
// enumeration at workers 1/2/4/8.
func TestDenseKernelsMatchReferenceBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(9002))
	pool := NewScratchPool()
	for trial := 0; trial < 80; trial++ {
		g, p := randomInstance(rng, 3)
		loosenBounds(rng, p)
		want := referenceSimulateBounded(g, p, candidates(g, p, false))
		for _, w := range []int{1, 2, 4, 8} {
			got := SimulateFromSeeds(context.Background(), g, p, candidates(g, p, false), w, pool)
			if !equalResults(got, want) {
				t.Fatalf("trial %d workers %d: dense bounded result differs\nref:   %v\ndense: %v",
					trial, w, want, got)
			}
		}
	}
}

// TestDenseKernelsMatchReferenceDual: dual fixpoint, plus the strong
// engine's per-ball scratch reuse against a per-ball reference.
func TestDenseKernelsMatchReferenceDual(t *testing.T) {
	rng := rand.New(rand.NewSource(9003))
	pool := NewScratchPool()
	for trial := 0; trial < 100; trial++ {
		g, p := randomInstance(rng, 3)
		if trial%2 == 0 {
			addRandomPreds(rng, g, p)
		}
		want := referenceSimulateDual(g, p)
		if got := SimulateDual(g, p); !equalResults(got, want) {
			t.Fatalf("trial %d: dense dual result differs\nref:   %v\ndense: %v", trial, want, got)
		}
		if got := SimulateDualPooled(g, p, pool); !equalResults(got, want) {
			t.Fatalf("trial %d: pooled dual result differs", trial)
		}
	}
}

// TestCondKeyUnambiguous: the memoization key must distinguish every
// pair of semantically different conditions — in particular ones whose
// naive concatenation collides (regression: "a1<3" vs "a!=23" keyed
// identically before length-prefixing).
func TestCondKeyUnambiguous(t *testing.T) {
	conds := []struct {
		n       pattern.Node
		needOut bool
	}{
		{pattern.Node{Label: "A", Preds: []pattern.Predicate{pattern.IntPred("a1", pattern.OpLt, 3)}}, false},
		{pattern.Node{Label: "A", Preds: []pattern.Predicate{pattern.IntPred("a", pattern.OpNe, 23)}}, false},
		{pattern.Node{Label: "A", Preds: []pattern.Predicate{pattern.IntPred("a", pattern.OpLt, 3)}}, false},
		{pattern.Node{Label: "A", Preds: []pattern.Predicate{pattern.IntPred("a", pattern.OpLt, 3)}}, true},
		{pattern.Node{Label: "A", Preds: []pattern.Predicate{pattern.StrPred("a", pattern.OpEq, "3")}}, false},
		{pattern.Node{Label: "A", Preds: []pattern.Predicate{pattern.IntPred("a", pattern.OpEq, 3)}}, false},
		{pattern.Node{Label: "A", Preds: []pattern.Predicate{pattern.IntPred("a", pattern.OpEq, 12), pattern.IntPred("abc", pattern.OpEq, 4)}}, false},
		{pattern.Node{Label: "A", Preds: []pattern.Predicate{pattern.IntPred("a", pattern.OpEq, 123), pattern.IntPred("bcde", pattern.OpEq, 4)}}, false},
		{pattern.Node{Label: "A!", Preds: nil}, false},
		{pattern.Node{Label: "A", Preds: nil}, true},
		{pattern.Node{Label: "A", Preds: nil}, false},
	}
	var sb strings.Builder
	seen := map[string]int{}
	for i := range conds {
		key := condKey(&sb, &conds[i].n, conds[i].needOut)
		if j, dup := seen[key]; dup {
			t.Fatalf("conditions %d and %d share key %q", j, i, key)
		}
		seen[key] = i
	}
}

// TestCandidateSeedsMatchPerPattern: family-memoized candidate seeding
// is exactly per-pattern seeding, for both prune modes.
func TestCandidateSeedsMatchPerPattern(t *testing.T) {
	rng := rand.New(rand.NewSource(9004))
	for trial := 0; trial < 60; trial++ {
		g, p1 := randomInstance(rng, 3)
		_, p2 := randomInstance(rng, 3)
		if trial%2 == 0 {
			addRandomPreds(rng, g, p1)
		}
		if trial%3 == 0 {
			loosenBounds(rng, p2)
		}
		pats := []*pattern.Pattern{p1, p2, p1}
		for _, prune := range []bool{true, false} {
			for _, w := range []int{1, 4} {
				seeds := CandidateSeeds(context.Background(), g, pats, w, prune)
				for pi, p := range pats {
					want := candidates(g, p, prune && p.IsPlain())
					if len(seeds[pi]) != len(want) {
						t.Fatalf("trial %d: seed arity differs", trial)
					}
					for u := range want {
						if len(seeds[pi][u]) != len(want[u]) {
							t.Fatalf("trial %d pat %d node %d: %v vs %v", trial, pi, u, want[u], seeds[pi][u])
						}
						for i := range want[u] {
							if seeds[pi][u][i] != want[u][i] {
								t.Fatalf("trial %d pat %d node %d: %v vs %v", trial, pi, u, want[u], seeds[pi][u])
							}
						}
					}
				}
			}
		}
	}
}
