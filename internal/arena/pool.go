package arena

import "sync"

// Resettable is implemented by scratch states that can be wiped for
// reuse (arena Reset + any per-query bookkeeping).
type Resettable interface{ Reset() }

// Pool is a sync.Pool of scratch states shared by the engine packages:
// Get hands out a freshly Reset scratch, Put returns it for reuse. A
// nil *Pool is valid and degrades to transient per-call scratches, so
// every engine entry point can be written against a pool while
// non-pooled callers simply pass nil.
type Pool[T any, PT interface {
	*T
	Resettable
}] struct {
	p sync.Pool
}

// NewPool returns an empty pool.
func NewPool[T any, PT interface {
	*T
	Resettable
}]() *Pool[T, PT] {
	return &Pool[T, PT]{p: sync.Pool{New: func() any { return PT(new(T)) }}}
}

// Get returns a Reset scratch (a fresh one when the pool is nil).
func (sp *Pool[T, PT]) Get() PT {
	if sp == nil {
		return PT(new(T))
	}
	sc := sp.p.Get().(PT)
	sc.Reset()
	return sc
}

// Put returns a scratch to the pool. No-op on a nil pool: the
// transient scratch is simply garbage. The caller must not retain
// references into the scratch past Put.
func (sp *Pool[T, PT]) Put(sc PT) {
	if sp == nil {
		return
	}
	sp.p.Put(sc)
}
