// Package arena provides the bump allocator behind the per-engine
// scratch state. An Arena hands out zeroed sub-slices of one backing
// block; Reset reclaims everything at once, so a pooled scratch reaches a
// steady state where repeated queries allocate nothing — the working
// state of a fixpoint (bitset rows, support counters, CSR offset arrays)
// is carved out of recycled memory instead of churning the GC.
//
// Arenas are single-goroutine: parallel phases either pre-allocate from
// the arena before fanning out or fall back to the heap. Slices handed
// out by Make are valid until the next Reset and must never escape into
// results that outlive the query.
package arena

// Arena is a typed bump allocator. The zero value is ready to use.
type Arena[T any] struct {
	block []T // current backing block
	off   int // bump offset into block
	need  int // total elements requested this cycle (high-water mark)
}

// Make returns a zeroed slice of n elements carved from the arena. The
// slice has capacity exactly n, so appends never bleed into neighboring
// allocations. When the current block is exhausted mid-cycle, a larger
// block sized to the cycle's running total is allocated; outstanding
// slices keep referencing the old block and stay valid.
func (a *Arena[T]) Make(n int) []T {
	s := a.MakeDirty(n)
	clear(s)
	return s
}

// MakeDirty is Make without the zeroing, for buffers the caller fully
// overwrites (counting-sort fill arrays, worklists). The contents are
// unspecified.
func (a *Arena[T]) MakeDirty(n int) []T {
	a.need += n
	if a.off+n > len(a.block) {
		size := max(2*len(a.block), a.need, 64)
		a.block = make([]T, size)
		a.off = 0
	}
	s := a.block[a.off : a.off+n : a.off+n]
	a.off += n
	return s
}

// Reset reclaims every allocation at once. Previously handed-out slices
// become invalid (they will be recycled by subsequent Makes).
func (a *Arena[T]) Reset() {
	a.off = 0
	a.need = 0
}

// Cap returns the capacity of the current backing block, for tests.
func (a *Arena[T]) Cap() int { return len(a.block) }
