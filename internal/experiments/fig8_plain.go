package experiments

// Exp-1 and Exp-2: graph pattern matching using views (Fig. 8(a)–(f)).
// Match is direct evaluation [16,21]; MatchJoin_mnl answers with a
// minimal view subset; MatchJoin_min with the greedy minimum subset;
// MatchJoin_nopt is the unranked ablation of Exp-2.

import (
	"fmt"
	"math/rand"

	"graphviews/internal/core"
	"graphviews/internal/generator"
	"graphviews/internal/graph"
	"graphviews/internal/pattern"
	"graphviews/internal/simulation"
	"graphviews/internal/view"
)

// sizeSpec is a query size (|Vp|, |Ep|).
type sizeSpec struct{ nv, ne int }

func (s sizeSpec) label() string { return fmt.Sprintf("(%d,%d)", s.nv, s.ne) }

// runVaryQs measures Match / MatchJoin_mnl / MatchJoin_min while the
// query size grows over one dataset (the shared engine of Fig. 8(a)-(c)).
func runVaryQs(cfg Config, id, title string, g graph.Reader, vs *view.Set, sizes []sizeSpec, bounds pattern.Bound) *Figure {
	if bounds > 1 {
		vs = generator.BoundedSet(vs, bounds)
	}
	x := cfg.materialize(g, vs)
	rng := rand.New(rand.NewSource(cfg.Seed + 1))

	fig := &Figure{
		ID:    id,
		Title: title,
		XAxis: "|Qs|=(|Vp|,|Ep|)", YAxis: "seconds",
		Series: []Series{{Name: "Match"}, {Name: "MatchJoin_mnl"}, {Name: "MatchJoin_min"}},
	}
	if bounds > 1 {
		fig.XAxis = fmt.Sprintf("|Qb|=(|Vp|,|Ep|,%d)", bounds)
		fig.Series[0].Name = "BMatch"
		fig.Series[1].Name = "BMatchJoin_mnl"
		fig.Series[2].Name = "BMatchJoin_min"
	}
	fig.Notes = append(fig.Notes,
		fmt.Sprintf("|G|=(%d,%d), card(V)=%d, |V(G)|=%d pairs (%.1f%% of |G|)",
			g.NumNodes(), g.NumEdges(), vs.Card(), x.TotalEdges(), 100*x.FractionOf(g)))

	for _, sz := range sizes {
		lbl := sz.label()
		if bounds > 1 {
			lbl = fmt.Sprintf("(%d,%d,%d)", sz.nv, sz.ne, bounds)
		}
		fig.XLabels = append(fig.XLabels, lbl)
		var tMatch, tMnl, tMin float64
		for qi := 0; qi < cfg.queries(); qi++ {
			q := generator.GlueQuery(rng, vs, sz.nv, sz.ne)
			var direct, ansMnl, ansMin *simulation.Result
			tMatch += timeIt(func() { direct = simulation.Simulate(g, q) })
			tMnl += timeIt(func() {
				idx, l, ok, err := core.Minimal(q, vs)
				if err != nil || !ok {
					panic(fmt.Sprintf("experiments: glued query not contained: %v", err))
				}
				_ = idx
				ansMnl, _ = core.MatchJoin(q, x, l)
			})
			tMin += timeIt(func() {
				_, l, ok, err := core.Minimum(q, vs)
				if err != nil || !ok {
					panic(fmt.Sprintf("experiments: glued query not contained: %v", err))
				}
				ansMin, _ = core.MatchJoin(q, x, l)
			})
			if cfg.Verify {
				if !ansMnl.Equal(direct) || !ansMin.Equal(direct) {
					panic("experiments: view-based answer diverged from direct evaluation")
				}
			}
		}
		n := float64(cfg.queries())
		fig.Series[0].Values = append(fig.Series[0].Values, tMatch/n)
		fig.Series[1].Values = append(fig.Series[1].Values, tMnl/n)
		fig.Series[2].Values = append(fig.Series[2].Values, tMin/n)
	}
	return fig
}

// plainSizes are the query sizes of Fig. 8(a) (Amazon).
var amazonSizes = []sizeSpec{{4, 4}, {4, 6}, {4, 8}, {6, 6}, {6, 9}, {6, 12}, {8, 8}, {8, 12}, {8, 16}}

// citationSizes are used by Fig. 8(b), (c), (j).
var citationSizes = []sizeSpec{{4, 8}, {5, 10}, {6, 12}, {7, 14}, {8, 16}}

// Fig8a: varying |Qs| on the Amazon stand-in.
func Fig8a(cfg Config) *Figure {
	f := cfg.Scale.factor()
	g := generator.AmazonLike(548_000/f, 1_780_000/f, cfg.Seed)
	return runVaryQs(cfg, "8a", "Varying |Qs| (Amazon)", cfg.input(g), generator.AmazonViews(), amazonSizes, 1)
}

// Fig8b: varying |Qs| on the Citation stand-in.
func Fig8b(cfg Config) *Figure {
	f := cfg.Scale.factor()
	g := generator.CitationLike(1_400_000/f, 3_000_000/f, cfg.Seed)
	return runVaryQs(cfg, "8b", "Varying |Qs| (Citation)", cfg.input(g), generator.CitationViews(), citationSizes, 1)
}

// Fig8c: varying |Qs| on the YouTube stand-in.
func Fig8c(cfg Config) *Figure {
	f := cfg.Scale.factor()
	g := generator.YouTubeLike(1_600_000/f, 4_500_000/f, cfg.Seed)
	return runVaryQs(cfg, "8c", "Varying |Qs| (Youtube)", cfg.input(g), generator.YouTubeViews(), citationSizes, 1)
}

// syntheticSweep returns the |V| sweep of Fig. 8(d),(e),(l): 0.3M–1M at
// paper scale, divided by the scale factor otherwise.
func syntheticSweep(s Scale) []int {
	f := s.factor()
	var out []int
	for v := 300_000; v <= 1_000_000; v += 100_000 {
		out = append(out, v/f)
	}
	return out
}

// Fig8d: varying |G| on synthetic graphs, fixed query (4,6).
func Fig8d(cfg Config) *Figure {
	vs := generator.SyntheticViews(10, cfg.Seed)
	fig := &Figure{
		ID: "8d", Title: "Varying |G| (synthetic)",
		XAxis: "|V| (|E|=2|V|)", YAxis: "seconds",
		Series: []Series{{Name: "Match"}, {Name: "MatchJoin_mnl"}, {Name: "MatchJoin_min"}},
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 2))
	for _, n := range syntheticSweep(cfg.Scale) {
		fig.XLabels = append(fig.XLabels, fmt.Sprintf("%d", n))
		g := cfg.input(generator.Uniform(n, 2*n, 10, cfg.Seed+int64(n)))
		x := cfg.materialize(g, vs)
		var tMatch, tMnl, tMin float64
		for qi := 0; qi < cfg.queries(); qi++ {
			q := generator.GlueQuery(rng, vs, 4, 6)
			var direct, got *simulation.Result
			tMatch += timeIt(func() { direct = simulation.Simulate(g, q) })
			tMnl += timeIt(func() {
				_, l, ok, _ := core.Minimal(q, vs)
				if !ok {
					panic("experiments: glued query not contained")
				}
				got, _ = core.MatchJoin(q, x, l)
			})
			if cfg.Verify && !got.Equal(direct) {
				panic("experiments: divergence in Fig8d")
			}
			tMin += timeIt(func() {
				_, l, ok, _ := core.Minimum(q, vs)
				if !ok {
					panic("experiments: glued query not contained")
				}
				got, _ = core.MatchJoin(q, x, l)
			})
		}
		n64 := float64(cfg.queries())
		fig.Series[0].Values = append(fig.Series[0].Values, tMatch/n64)
		fig.Series[1].Values = append(fig.Series[1].Values, tMnl/n64)
		fig.Series[2].Values = append(fig.Series[2].Values, tMin/n64)
	}
	return fig
}

// Fig8e: varying |G| and |Qs| together — MatchJoin_min for Q1..Q4 of
// sizes (4,8)..(7,14).
func Fig8e(cfg Config) *Figure {
	vs := generator.SyntheticViews(10, cfg.Seed)
	specs := []sizeSpec{{4, 8}, {5, 10}, {6, 12}, {7, 14}}
	fig := &Figure{
		ID: "8e", Title: "Varying |G| & |Qs| (synthetic)",
		XAxis: "|V| (|E|=2|V|)", YAxis: "seconds",
	}
	for i := range specs {
		fig.Series = append(fig.Series, Series{Name: fmt.Sprintf("MatchJoin_min [Q%d %s]", i+1, specs[i].label())})
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 3))
	queries := make([]*pattern.Pattern, len(specs))
	for i, s := range specs {
		queries[i] = generator.GlueQuery(rng, vs, s.nv, s.ne)
	}
	for _, n := range syntheticSweep(cfg.Scale) {
		fig.XLabels = append(fig.XLabels, fmt.Sprintf("%d", n))
		g := cfg.input(generator.Uniform(n, 2*n, 10, cfg.Seed+int64(n)))
		x := cfg.materialize(g, vs)
		for i, q := range queries {
			t := timeIt(func() {
				_, l, ok, _ := core.Minimum(q, vs)
				if !ok {
					panic("experiments: glued query not contained")
				}
				core.MatchJoin(q, x, l)
			})
			fig.Series[i].Values = append(fig.Series[i].Values, t)
		}
	}
	return fig
}

// Fig8f: the Exp-2 ablation — the Fig. 2 fixpoint without any visiting
// strategy (MatchJoin_nopt) against the rank-ordered bottom-up strategy
// of Section III (MatchJoin_opt), over densifying graphs |E| = |V|^α,
// α ∈ [1, 1.25]. Both are scan-based so the measured gap isolates the
// revisit savings, which grow with density as the paper reports.
func Fig8f(cfg Config) *Figure {
	vs := generator.SyntheticViews(10, cfg.Seed)
	n := 200_000 / cfg.Scale.factor()
	fig := &Figure{
		ID: "8f", Title: "Varying α (synthetic densification)",
		XAxis: fmt.Sprintf("α (|V|=%d)", n), YAxis: "seconds",
		Series: []Series{{Name: "MatchJoin_nopt"}, {Name: "MatchJoin_opt"}},
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 4))
	nQueries := cfg.queries() * 2 // points are cheap; average harder
	for _, alpha := range []float64{1.0, 1.05, 1.10, 1.15, 1.20, 1.25} {
		fig.XLabels = append(fig.XLabels, fmt.Sprintf("%.2f", alpha))
		g := cfg.input(generator.Densified(n, alpha, 10, cfg.Seed+int64(alpha*100)))
		x := cfg.materialize(g, vs)
		var tNopt, tOpt float64
		var scansNopt, scansOpt int
		for qi := 0; qi < nQueries; qi++ {
			q := generator.GlueQuery(rng, vs, 5, 8)
			_, l, ok, _ := core.Minimum(q, vs)
			if !ok {
				panic("experiments: glued query not contained")
			}
			var a, b *simulation.Result
			var sa, sb core.Stats
			tNopt += timeIt(func() { a, sa = core.MatchJoinNaive(q, x, l) })
			tOpt += timeIt(func() { b, sb = core.MatchJoinRanked(q, x, l) })
			scansNopt += sa.EdgeScans
			scansOpt += sb.EdgeScans
			if cfg.Verify && !a.Equal(b) {
				panic("experiments: nopt and optimized MatchJoin disagree")
			}
		}
		nq := float64(nQueries)
		fig.Series[0].Values = append(fig.Series[0].Values, tNopt/nq)
		fig.Series[1].Values = append(fig.Series[1].Values, tOpt/nq)
		fig.Notes = append(fig.Notes, fmt.Sprintf("α=%.2f: match-set scans nopt=%d opt=%d",
			alpha, scansNopt, scansOpt))
	}
	return fig
}
