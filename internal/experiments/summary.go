package experiments

// Summary regenerates the quantitative claims the paper makes in the
// running text of Section VII rather than in a figure: how many views a
// query actually needs ("only 3 to 6 views are used to answer Qs" on
// YouTube), how large the materialized views are relative to the graph
// ("no more than 4% of the size of the Youtube graph"), and the view-set
// reduction achieved by minimum over minimal.

import (
	"fmt"
	"math/rand"

	"graphviews/internal/core"
	"graphviews/internal/generator"
	"graphviews/internal/graph"
	"graphviews/internal/view"
)

// DatasetSummary aggregates the per-dataset claims.
type DatasetSummary struct {
	Name           string
	Nodes, Edges   int
	ViewCount      int
	ExtensionPairs int
	Fraction       float64 // |V(G)| / |G|
	AvgViewsUsed   float64 // by minimum containment
	MinViewsUsed   int
	MaxViewsUsed   int
	AvgMinimal     float64 // minimal subset size on the same queries
}

// Summarize computes a DatasetSummary over nQueries glued queries.
func Summarize(name string, g graph.Reader, vs *view.Set, seed int64, nQueries int) DatasetSummary {
	x := view.Materialize(g, vs)
	s := DatasetSummary{
		Name:           name,
		Nodes:          g.NumNodes(),
		Edges:          g.NumEdges(),
		ViewCount:      vs.Card(),
		ExtensionPairs: x.TotalEdges(),
		Fraction:       x.FractionOf(g),
		MinViewsUsed:   vs.Card() + 1,
	}
	rng := rand.New(rand.NewSource(seed))
	totMin, totMnl := 0, 0
	for i := 0; i < nQueries; i++ {
		q := generator.GlueQuery(rng, vs, 4, 6)
		mnm, _, ok, err := core.Minimum(q, vs)
		if err != nil || !ok {
			panic(fmt.Sprintf("experiments: glued query not contained: %v", err))
		}
		mnl, _, _, _ := core.Minimal(q, vs)
		totMin += len(mnm)
		totMnl += len(mnl)
		if len(mnm) < s.MinViewsUsed {
			s.MinViewsUsed = len(mnm)
		}
		if len(mnm) > s.MaxViewsUsed {
			s.MaxViewsUsed = len(mnm)
		}
	}
	s.AvgViewsUsed = float64(totMin) / float64(nQueries)
	s.AvgMinimal = float64(totMnl) / float64(nQueries)
	return s
}

// RunSummary builds the in-text claims table across all four datasets.
func RunSummary(cfg Config) *Figure {
	f := cfg.Scale.factor()
	nQ := 5 * cfg.queries()
	rows := []DatasetSummary{
		Summarize("amazon", cfg.input(generator.AmazonLike(548_000/f, 1_780_000/f, cfg.Seed)), generator.AmazonViews(), cfg.Seed+1, nQ),
		Summarize("citation", cfg.input(generator.CitationLike(1_400_000/f, 3_000_000/f, cfg.Seed)), generator.CitationViews(), cfg.Seed+2, nQ),
		Summarize("youtube", cfg.input(generator.YouTubeLike(1_600_000/f, 4_500_000/f, cfg.Seed)), generator.YouTubeViews(), cfg.Seed+3, nQ),
		Summarize("synthetic", cfg.input(generator.Uniform(500_000/f, 1_000_000/f, 10, cfg.Seed)), generator.SyntheticViews(10, cfg.Seed), cfg.Seed+4, nQ),
	}
	fig := &Figure{
		ID:    "summary",
		Title: "Section VII in-text claims: view usage and cache volume",
		XAxis: "dataset", YAxis: "see series names",
		Series: []Series{
			{Name: "|V(G)| pairs"},
			{Name: "|V(G)|/|G| (%)"},
			{Name: "avg views used (minimum)"},
			{Name: "min views used"},
			{Name: "max views used"},
			{Name: "avg views used (minimal)"},
		},
	}
	for _, r := range rows {
		fig.XLabels = append(fig.XLabels, r.Name)
		fig.Series[0].Values = append(fig.Series[0].Values, float64(r.ExtensionPairs))
		fig.Series[1].Values = append(fig.Series[1].Values, 100*r.Fraction)
		fig.Series[2].Values = append(fig.Series[2].Values, r.AvgViewsUsed)
		fig.Series[3].Values = append(fig.Series[3].Values, float64(r.MinViewsUsed))
		fig.Series[4].Values = append(fig.Series[4].Values, float64(r.MaxViewsUsed))
		fig.Series[5].Values = append(fig.Series[5].Values, r.AvgMinimal)
		fig.Notes = append(fig.Notes, fmt.Sprintf("%s: |G|=(%d,%d), card(V)=%d",
			r.Name, r.Nodes, r.Edges, r.ViewCount))
	}
	return fig
}
