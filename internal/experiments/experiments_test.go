package experiments

import (
	"strings"
	"testing"
)

// TestAllFiguresTiny smoke-runs every figure at tiny scale with
// verification on: each view-based answer is cross-checked against direct
// evaluation, so this doubles as an end-to-end correctness test of the
// whole pipeline per figure.
func TestAllFiguresTiny(t *testing.T) {
	cfg := Config{Scale: ScaleTiny, Seed: 1, Verify: true, QueriesPerPoint: 1}
	for _, id := range All {
		id := id
		t.Run(id, func(t *testing.T) {
			fig, err := Run(id, cfg)
			if err != nil {
				t.Fatalf("Run(%s): %v", id, err)
			}
			if fig.ID != id {
				t.Fatalf("figure id = %q", fig.ID)
			}
			if len(fig.Series) == 0 || len(fig.XLabels) == 0 {
				t.Fatalf("figure %s empty", id)
			}
			for _, s := range fig.Series {
				if len(s.Values) != len(fig.XLabels) {
					t.Fatalf("figure %s: series %q has %d values for %d labels",
						id, s.Name, len(s.Values), len(fig.XLabels))
				}
				for _, v := range s.Values {
					if v < 0 {
						t.Fatalf("figure %s: negative measurement", id)
					}
				}
			}
			tbl := fig.Table()
			if !strings.Contains(tbl, "Figure "+id) {
				t.Fatalf("table render broken:\n%s", tbl)
			}
			csv := fig.CSV()
			if len(strings.Split(strings.TrimSpace(csv), "\n")) != 1+len(fig.Series) {
				t.Fatalf("csv render broken:\n%s", csv)
			}
		})
	}
}

func TestRunUnknownFigure(t *testing.T) {
	if _, err := Run("9z", Config{}); err == nil {
		t.Fatalf("unknown figure should error")
	}
}

func TestMaintenanceExperiment(t *testing.T) {
	fig, err := Run("maint", Config{Scale: ScaleTiny, Seed: 1, Verify: true})
	if err != nil {
		t.Fatalf("maint: %v", err)
	}
	if len(fig.Series) != 2 || len(fig.XLabels) != 3 {
		t.Fatalf("maint figure shape wrong: %v", fig.XLabels)
	}
	for i := range fig.XLabels {
		if fig.Series[0].Values[i] <= 0 || fig.Series[1].Values[i] <= 0 {
			t.Fatalf("non-positive timing at %s", fig.XLabels[i])
		}
	}
}

func TestSummary(t *testing.T) {
	fig, err := Run("summary", Config{Scale: ScaleTiny, Seed: 1, QueriesPerPoint: 1})
	if err != nil {
		t.Fatalf("summary: %v", err)
	}
	if len(fig.XLabels) != 4 {
		t.Fatalf("summary should cover 4 datasets, got %v", fig.XLabels)
	}
	for _, s := range fig.Series {
		if len(s.Values) != 4 {
			t.Fatalf("series %q incomplete", s.Name)
		}
	}
	// Views-used must lie within [1, card(V)] and minimum ≤ minimal.
	for i := range fig.XLabels {
		avgMin := fig.Series[2].Values[i]
		avgMnl := fig.Series[5].Values[i]
		if avgMin < 1 || avgMin > 22 {
			t.Fatalf("%s: avg views used = %v", fig.XLabels[i], avgMin)
		}
		if avgMin > avgMnl+1e-9 {
			t.Fatalf("%s: minimum (%v) above minimal (%v)", fig.XLabels[i], avgMin, avgMnl)
		}
	}
}

func TestParseScale(t *testing.T) {
	for _, s := range []string{"tiny", "small", "medium", "paper"} {
		if _, err := ParseScale(s); err != nil {
			t.Fatalf("ParseScale(%s): %v", s, err)
		}
	}
	if _, err := ParseScale("huge"); err == nil {
		t.Fatalf("bad scale should error")
	}
	if ScaleTiny.factor() <= ScaleSmall.factor() {
		t.Fatalf("tiny must divide sizes more than small")
	}
	if ScalePaper.factor() != 1 {
		t.Fatalf("paper scale must use full sizes")
	}
}
