// Package experiments regenerates every figure of the paper's evaluation
// (Section VII, Fig. 8(a)–(l)). Each runner builds the figure's workload
// (dataset stand-in, view set, glued queries), measures the competing
// algorithms, and returns a Figure with one series per plotted line.
// DESIGN.md §5 maps every figure to its modules; EXPERIMENTS.md records
// measured-vs-paper shapes.
//
// The paper's graph sizes (0.3M–1M synthetic nodes, 548K–1.6M real-life
// nodes) are reachable with ScalePaper; the default ScaleSmall divides
// sizes by ~25 so the full suite runs in minutes on a laptop.
package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"graphviews/internal/graph"
	"graphviews/internal/view"
)

// Scale selects workload sizes.
type Scale int

// Scales, from test-sized to the paper's sizes.
const (
	ScaleTiny Scale = iota
	ScaleSmall
	ScaleMedium
	ScalePaper
)

// ParseScale maps a flag string to a Scale.
func ParseScale(s string) (Scale, error) {
	switch strings.ToLower(s) {
	case "tiny":
		return ScaleTiny, nil
	case "small":
		return ScaleSmall, nil
	case "medium":
		return ScaleMedium, nil
	case "paper":
		return ScalePaper, nil
	}
	return 0, fmt.Errorf("experiments: unknown scale %q (tiny|small|medium|paper)", s)
}

// factor returns the divisor applied to the paper's sizes.
func (s Scale) factor() int {
	switch s {
	case ScaleTiny:
		return 400
	case ScaleSmall:
		return 25
	case ScaleMedium:
		return 8
	default:
		return 1
	}
}

// Config parameterizes a run.
type Config struct {
	Scale Scale
	Seed  int64
	// Verify cross-checks every view-based answer against direct
	// evaluation (used by tests; adds the cost of Match to each point).
	Verify bool
	// QueriesPerPoint averages each data point over this many glued
	// queries (default 3).
	QueriesPerPoint int
	// Workers bounds view-materialization parallelism (0 or 1 =
	// sequential, the paper's single-threaded setting; < 0 = GOMAXPROCS).
	Workers int
	// Frozen evaluates every read-only workload against an immutable CSR
	// snapshot (graph.Freeze) instead of the mutable adjacency-list
	// graph, A/B-ing the two Reader backends. Results are identical; the
	// maintenance experiment ignores the flag since it mutates the graph.
	Frozen bool
	// Shards splits every read-only workload into this many hash
	// partitions (graph.Shard) so candidate seeding runs shard-parallel;
	// values below 2 leave the backend unsharded. Composes with Frozen
	// (sharding a snapshot) and with Workers (the shard tasks ride the
	// same pool). Results are identical at any shard count; the
	// maintenance experiment ignores the flag since it mutates the graph.
	Shards int
}

func (c Config) queries() int {
	if c.QueriesPerPoint <= 0 {
		return 3
	}
	return c.QueriesPerPoint
}

func (c Config) workers() int {
	if c.Workers == 0 {
		return 1
	}
	return c.Workers
}

// input selects the graph backend the figure runners evaluate against:
// the mutable graph as generated, a frozen CSR snapshot of it, or a
// hash-partitioned sharding of either.
func (c Config) input(g *graph.Graph) graph.Reader {
	var r graph.Reader = g
	if c.Frozen {
		r = graph.Freeze(g)
	}
	if c.Shards > 1 {
		r = graph.Shard(r, c.Shards)
	}
	return r
}

// materialize evaluates the views through the configured worker pool.
func (c Config) materialize(g graph.Reader, vs *view.Set) *view.Extensions {
	x, _ := view.MaterializeWith(context.Background(), g, vs, c.workers())
	return x
}

// Series is one plotted line.
type Series struct {
	Name   string
	Values []float64
}

// Figure is a regenerated evaluation figure.
type Figure struct {
	ID      string // "8a" .. "8l"
	Title   string
	XAxis   string
	YAxis   string
	XLabels []string
	Series  []Series
	Notes   []string
}

// Table renders the figure as an aligned text table (the per-series rows
// the paper plots).
func (f *Figure) Table() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure %s: %s\n", f.ID, f.Title)
	fmt.Fprintf(&sb, "%-24s", f.XAxis)
	for _, x := range f.XLabels {
		fmt.Fprintf(&sb, "%12s", x)
	}
	sb.WriteString("\n")
	for _, s := range f.Series {
		fmt.Fprintf(&sb, "%-24s", s.Name)
		for _, v := range s.Values {
			fmt.Fprintf(&sb, "%12.4f", v)
		}
		sb.WriteString("\n")
	}
	for _, n := range f.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	fmt.Fprintf(&sb, "(y-axis: %s)\n", f.YAxis)
	return sb.String()
}

// CSV renders the figure in machine-readable form.
func (f *Figure) CSV() string {
	var sb strings.Builder
	sb.WriteString("series")
	for _, x := range f.XLabels {
		sb.WriteString("," + x)
	}
	sb.WriteString("\n")
	for _, s := range f.Series {
		sb.WriteString(s.Name)
		for _, v := range s.Values {
			fmt.Fprintf(&sb, ",%g", v)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// timeIt measures fn in seconds.
func timeIt(fn func()) float64 {
	start := time.Now()
	fn()
	return time.Since(start).Seconds()
}

// All lists every figure id in paper order.
var All = []string{"8a", "8b", "8c", "8d", "8e", "8f", "8g", "8h", "8i", "8j", "8k", "8l"}

// Run dispatches a single figure.
func Run(id string, cfg Config) (*Figure, error) {
	switch strings.ToLower(id) {
	case "8a":
		return Fig8a(cfg), nil
	case "8b":
		return Fig8b(cfg), nil
	case "8c":
		return Fig8c(cfg), nil
	case "8d":
		return Fig8d(cfg), nil
	case "8e":
		return Fig8e(cfg), nil
	case "8f":
		return Fig8f(cfg), nil
	case "8g":
		return Fig8g(cfg), nil
	case "8h":
		return Fig8h(cfg), nil
	case "8i":
		return Fig8i(cfg), nil
	case "8j":
		return Fig8j(cfg), nil
	case "8k":
		return Fig8k(cfg), nil
	case "8l":
		return Fig8l(cfg), nil
	case "summary":
		return RunSummary(cfg), nil
	case "maint":
		return RunMaintenance(cfg), nil
	}
	return nil, fmt.Errorf("experiments: unknown figure %q", id)
}
