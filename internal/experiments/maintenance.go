package experiments

// Maintenance experiment: Section I argues cached views are practical
// because "incremental methods are already in place to efficiently
// maintain cached pattern views (e.g., [15])". This runner quantifies
// that premise on the YouTube stand-in: per-update maintained cost
// (insertions with label pruning, deletions with seeded refinement)
// against rematerializing all views after every update.

import (
	"fmt"
	"math/rand"

	"graphviews/internal/generator"
	"graphviews/internal/graph"
	"graphviews/internal/view"
)

// RunMaintenance measures the average per-update cost of maintained
// extensions vs full rematerialization over a stream of random edge
// insertions and deletions, for growing graph sizes.
func RunMaintenance(cfg Config) *Figure {
	vs := generator.YouTubeViews()
	fig := &Figure{
		ID:    "maint",
		Title: "Incremental view maintenance vs rematerialization (Youtube)",
		XAxis: "|V|", YAxis: "seconds per update",
		Series: []Series{{Name: "maintained"}, {Name: "rematerialize"}},
	}
	f := cfg.Scale.factor()
	rng := rand.New(rand.NewSource(cfg.Seed + 9))
	const updates = 40
	for _, n := range []int{400_000 / f, 800_000 / f, 1_600_000 / f} {
		m := 45 * n / 16 // the YouTube density, |E| ≈ 2.8|V|
		fig.XLabels = append(fig.XLabels, fmt.Sprintf("%d", n))
		g := generator.YouTubeLike(n, m, cfg.Seed)

		maintained := view.NewMaintained(g.Clone(), vs)
		shadow := g.Clone()

		// Pre-draw one update stream so both strategies process the
		// identical sequence.
		type upd struct {
			u, v graph.NodeID
			del  bool
		}
		stream := make([]upd, updates)
		for i := range stream {
			stream[i] = upd{
				u:   graph.NodeID(rng.Intn(n)),
				v:   graph.NodeID(rng.Intn(n)),
				del: i%2 == 1,
			}
			if stream[i].del {
				// Delete a real edge when possible.
				for tries := 0; tries < 5; tries++ {
					cand := graph.NodeID(rng.Intn(n))
					if out := shadow.Out(cand); len(out) > 0 {
						stream[i].u = cand
						stream[i].v = out[rng.Intn(len(out))]
						break
					}
				}
			}
			// Keep the shadow in sync so deletions stay realistic.
			if stream[i].del {
				shadow.RemoveEdge(stream[i].u, stream[i].v)
			} else {
				shadow.AddEdge(stream[i].u, stream[i].v)
			}
		}

		tInc := timeIt(func() {
			for _, s := range stream {
				if s.del {
					maintained.DeleteEdge(s.u, s.v)
				} else {
					maintained.InsertEdge(s.u, s.v)
				}
			}
		})

		g2 := g.Clone()
		tFull := timeIt(func() {
			for _, s := range stream {
				if s.del {
					g2.RemoveEdge(s.u, s.v)
				} else {
					g2.AddEdge(s.u, s.v)
				}
				view.Materialize(g2, vs)
			}
		})

		if cfg.Verify {
			fresh := view.Materialize(maintained.G, vs)
			for i := range fresh.Exts {
				if !maintained.X.Exts[i].Result.Equal(fresh.Exts[i].Result) {
					panic("experiments: maintained extensions diverged")
				}
			}
		}
		fig.Series[0].Values = append(fig.Series[0].Values, tInc/updates)
		fig.Series[1].Values = append(fig.Series[1].Values, tFull/updates)
		fig.Notes = append(fig.Notes, fmt.Sprintf("|V|=%d: %d recomputes, %d delta propagations, %d fast-path skips over %d updates",
			n, maintained.Stats.Recomputes, maintained.Stats.DeltaProps, maintained.Stats.Skips, updates))
	}
	return fig
}
