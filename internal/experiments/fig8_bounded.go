package experiments

// Exp-4: bounded pattern queries using views (Fig. 8(i)–(l)).

import (
	"fmt"
	"math/rand"

	"graphviews/internal/core"
	"graphviews/internal/generator"
	"graphviews/internal/pattern"
	"graphviews/internal/simulation"
)

// Fig8i: varying |Qb| on the Amazon stand-in, fe(e)=2.
func Fig8i(cfg Config) *Figure {
	f := cfg.Scale.factor()
	g := generator.AmazonLike(548_000/f, 1_780_000/f, cfg.Seed)
	return runVaryQs(cfg, "8i", "Varying |Qb| (Amazon, fe=2)", cfg.input(g), generator.AmazonViews(), amazonSizes, 2)
}

// Fig8j: varying |Qb| on the Citation stand-in, fe(e)=3.
func Fig8j(cfg Config) *Figure {
	f := cfg.Scale.factor()
	g := generator.CitationLike(1_400_000/f, 3_000_000/f, cfg.Seed)
	return runVaryQs(cfg, "8j", "Varying |Qb| (Citation, fe=3)", cfg.input(g), generator.CitationViews(), citationSizes, 3)
}

// Fig8k: varying fe(e) from 2 to 6 on the YouTube stand-in, query (4,8).
func Fig8k(cfg Config) *Figure {
	f := cfg.Scale.factor()
	g := cfg.input(generator.YouTubeLike(1_600_000/f, 4_500_000/f, cfg.Seed))
	baseViews := generator.YouTubeViews()
	fig := &Figure{
		ID: "8k", Title: "Varying fe(e) (Youtube, |Qb|=(4,8))",
		XAxis: "fe(e)", YAxis: "seconds",
		Series: []Series{{Name: "BMatch"}, {Name: "BMatchJoin_mnl"}, {Name: "BMatchJoin_min"}},
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 7))
	for _, fe := range []pattern.Bound{2, 3, 4, 5, 6} {
		fig.XLabels = append(fig.XLabels, fmt.Sprintf("%d", fe))
		vs := generator.BoundedSet(baseViews, fe)
		x := cfg.materialize(g, vs)
		var tMatch, tMnl, tMin float64
		for qi := 0; qi < cfg.queries(); qi++ {
			q := generator.GlueQuery(rng, vs, 4, 8)
			var direct, got *simulation.Result
			tMatch += timeIt(func() { direct = simulation.SimulateBounded(g, q) })
			tMnl += timeIt(func() {
				_, l, ok, _ := core.BMinimal(q, vs)
				if !ok {
					panic("experiments: bounded glued query not contained")
				}
				got, _ = core.BMatchJoin(q, x, l)
			})
			if cfg.Verify && !got.Equal(direct) {
				panic("experiments: BMatchJoin diverged in Fig8k")
			}
			tMin += timeIt(func() {
				_, l, ok, _ := core.BMinimum(q, vs)
				if !ok {
					panic("experiments: bounded glued query not contained")
				}
				got, _ = core.BMatchJoin(q, x, l)
			})
		}
		n := float64(cfg.queries())
		fig.Series[0].Values = append(fig.Series[0].Values, tMatch/n)
		fig.Series[1].Values = append(fig.Series[1].Values, tMnl/n)
		fig.Series[2].Values = append(fig.Series[2].Values, tMin/n)
	}
	return fig
}

// Fig8l: varying |G| on synthetic graphs with bounded queries, fe(e)=3,
// query (4,6).
func Fig8l(cfg Config) *Figure {
	vs := generator.BoundedSet(generator.SyntheticViews(10, cfg.Seed), 3)
	fig := &Figure{
		ID: "8l", Title: "Varying |G| (synthetic, bounded fe=3)",
		XAxis: "|V| (|E|=2|V|)", YAxis: "seconds",
		Series: []Series{{Name: "BMatch"}, {Name: "BMatchJoin_mnl"}, {Name: "BMatchJoin_min"}},
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 8))
	for _, n := range syntheticSweep(cfg.Scale) {
		fig.XLabels = append(fig.XLabels, fmt.Sprintf("%d", n))
		g := cfg.input(generator.Uniform(n, 2*n, 10, cfg.Seed+int64(n)))
		x := cfg.materialize(g, vs)
		var tMatch, tMnl, tMin float64
		for qi := 0; qi < cfg.queries(); qi++ {
			q := generator.GlueQuery(rng, vs, 4, 6)
			var direct, got *simulation.Result
			tMatch += timeIt(func() { direct = simulation.SimulateBounded(g, q) })
			tMnl += timeIt(func() {
				_, l, ok, _ := core.BMinimal(q, vs)
				if !ok {
					panic("experiments: bounded glued query not contained")
				}
				got, _ = core.BMatchJoin(q, x, l)
			})
			if cfg.Verify && !got.Equal(direct) {
				panic("experiments: BMatchJoin diverged in Fig8l")
			}
			tMin += timeIt(func() {
				_, l, ok, _ := core.BMinimum(q, vs)
				if !ok {
					panic("experiments: bounded glued query not contained")
				}
				got, _ = core.BMatchJoin(q, x, l)
			})
		}
		nq := float64(cfg.queries())
		fig.Series[0].Values = append(fig.Series[0].Values, tMatch/nq)
		fig.Series[1].Values = append(fig.Series[1].Values, tMnl/nq)
		fig.Series[2].Values = append(fig.Series[2].Values, tMin/nq)
	}
	return fig
}
