package experiments

// Exp-3: containment checking (Fig. 8(g)) and minimum-vs-minimal
// (Fig. 8(h)).

import (
	"fmt"
	"math/rand"

	"graphviews/internal/core"
	"graphviews/internal/generator"
)

// containSizes are the pattern sizes of Fig. 8(g)/(h).
var containSizes = []sizeSpec{
	{6, 6}, {6, 12}, {7, 7}, {7, 14}, {8, 8}, {8, 16}, {9, 9}, {9, 18}, {10, 10}, {10, 20},
}

// Fig8g: contain() efficiency over DAG and cyclic patterns against the 22
// synthetic views. Reported in milliseconds, like the paper.
func Fig8g(cfg Config) *Figure {
	vs := generator.SyntheticViews(10, cfg.Seed)
	fig := &Figure{
		ID: "8g", Title: "Containment checking: QDAG vs QCyclic (synthetic views)",
		XAxis: "(|Vp|,|Ep|)", YAxis: "milliseconds",
		Series: []Series{{Name: "contain [QDAG]"}, {Name: "contain [QCyclic]"}},
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 5))
	const reps = 20
	for _, sz := range containSizes {
		fig.XLabels = append(fig.XLabels, sz.label())
		var tDag, tCyc float64
		for r := 0; r < reps; r++ {
			dag := generator.RandomPattern(rng, sz.nv, sz.ne, 10, false)
			cyc := generator.RandomPattern(rng, sz.nv, sz.ne, 10, true)
			tDag += timeIt(func() {
				if _, _, err := core.Contain(dag, vs); err != nil {
					panic(err)
				}
			})
			tCyc += timeIt(func() {
				if _, _, err := core.Contain(cyc, vs); err != nil {
					panic(err)
				}
			})
		}
		fig.Series[0].Values = append(fig.Series[0].Values, 1000*tDag/reps)
		fig.Series[1].Values = append(fig.Series[1].Values, 1000*tCyc/reps)
	}
	return fig
}

// Fig8h: minimum vs minimal on contained cyclic-ish patterns:
// R1 = time(minimum)/time(minimal) and R2 = card(minimum)/card(minimal),
// both as percentages (Fig. 8(h) plots exactly these two ratios).
func Fig8h(cfg Config) *Figure {
	vs := generator.SyntheticViews(10, cfg.Seed)
	fig := &Figure{
		ID: "8h", Title: "minimum vs minimal (contained patterns)",
		XAxis: "(|Vp|,|Ep|)", YAxis: "percent",
		Series: []Series{{Name: "R1 = Tmin/Tmnl"}, {Name: "R2 = |Minimum|/|Minimal|"}},
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 6))
	const reps = 20
	for _, sz := range containSizes {
		fig.XLabels = append(fig.XLabels, sz.label())
		var tMin, tMnl float64
		var cMin, cMnl int
		for r := 0; r < reps; r++ {
			q := generator.GlueQuery(rng, vs, sz.nv, sz.ne)
			var idxMnl, idxMin []int
			tMnl += timeIt(func() {
				var ok bool
				idxMnl, _, ok, _ = core.Minimal(q, vs)
				if !ok {
					panic("experiments: glued query not contained (minimal)")
				}
			})
			tMin += timeIt(func() {
				var ok bool
				idxMin, _, ok, _ = core.Minimum(q, vs)
				if !ok {
					panic("experiments: glued query not contained (minimum)")
				}
			})
			cMnl += len(idxMnl)
			cMin += len(idxMin)
		}
		fig.Series[0].Values = append(fig.Series[0].Values, 100*tMin/tMnl)
		fig.Series[1].Values = append(fig.Series[1].Values, 100*float64(cMin)/float64(cMnl))
	}
	fig.Notes = append(fig.Notes,
		fmt.Sprintf("averaged over %d glued queries per size against %d views", reps, vs.Card()))
	return fig
}
