package core

// Determinism and equivalence tests for the SCC-parallel MatchJoin
// fixpoint: MatchJoinWith must return results and stats byte-identical
// to the sequential MatchJoin at every worker count, on cyclic, DAG and
// bounded patterns, and both must agree with direct (bounded) simulation
// on contained queries (Theorem 1).

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"graphviews/internal/generator"
	"graphviews/internal/graph"
	"graphviews/internal/pattern"
	"graphviews/internal/simulation"
	"graphviews/internal/view"
)

var sccWorkerSweep = []int{1, 2, 4, 8}

// assertIdentical fails unless the parallel result/stats are
// byte-identical to the sequential reference — edge match sets with
// distances, derived node match sets, and all three work counters.
func assertIdentical(t *testing.T, label string, seqRes *simulation.Result, seqSt Stats, res *simulation.Result, st Stats) {
	t.Helper()
	if !res.Equal(seqRes) {
		t.Fatalf("%s: edge match sets differ\nseq: %v\npar: %v", label, seqRes, res)
	}
	if !reflect.DeepEqual(res.Sim, seqRes.Sim) {
		t.Fatalf("%s: node match sets differ\nseq: %v\npar: %v", label, seqRes.Sim, res.Sim)
	}
	if st != seqSt {
		t.Fatalf("%s: stats differ: seq %+v par %+v", label, seqSt, st)
	}
}

// runSweep evaluates q over x at every worker count and checks each
// against the sequential engine and, when want is non-nil, against the
// direct evaluation.
func runSweep(t *testing.T, label string, q *pattern.Pattern, x *view.Extensions, l *Lambda, want *simulation.Result) {
	t.Helper()
	seqRes, seqSt := MatchJoin(q, x, l)
	if want != nil && !seqRes.Equal(want) {
		t.Fatalf("%s: sequential MatchJoin != direct evaluation\ngot:  %v\nwant: %v", label, seqRes, want)
	}
	for _, w := range sccWorkerSweep {
		res, st, err := MatchJoinWith(context.Background(), q, x, l, w)
		if err != nil {
			t.Fatalf("%s workers=%d: %v", label, w, err)
		}
		assertIdentical(t, label, seqRes, seqSt, res, st)
	}
}

// TestMatchJoinSCCNecklace: multi-SCC cyclic patterns (plain and
// bounded) across random data graphs.
func TestMatchJoinSCCNecklace(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 30; trial++ {
		k := 2 + rng.Intn(4)
		bound := pattern.Bound(1)
		if trial%3 == 1 {
			bound = pattern.Bound(2 + rng.Intn(2))
		} else if trial%3 == 2 {
			bound = pattern.Unbounded
		}
		q, vs := generator.Necklace(rng, k, bound)
		l, ok, err := Contain(q, vs)
		if err != nil || !ok {
			t.Fatalf("trial %d: necklace not contained in its views: %v %v", trial, ok, err)
		}
		g := generator.NecklaceGraph(rng, q, 30+rng.Intn(40), 150+rng.Intn(150))
		x := view.Materialize(g, vs)
		var want *simulation.Result
		if q.IsPlain() {
			want = simulation.Simulate(g, q)
		} else {
			want = simulation.SimulateBounded(g, q)
		}
		runSweep(t, "necklace", q, x, l, want)
	}
}

// TestMatchJoinSCCRandomGlued: the PR-1 randomized workloads (glued
// contained queries over random cyclic views), now sweeping the parallel
// fixpoint; covers DAG patterns, 2-cycles and empty results.
func TestMatchJoinSCCRandomGlued(t *testing.T) {
	labels := []string{"A", "B", "C"}
	for _, bounded := range []bool{false, true} {
		rng := rand.New(rand.NewSource(73))
		tested := 0
		for trial := 0; trial < 300 && tested < 80; trial++ {
			vs := randomViews(rng, labels, bounded)
			q := glueContainedQuery(rng, vs, rng.Intn(3))
			if q == nil {
				continue
			}
			l, ok, err := Contain(q, vs)
			if err != nil || !ok {
				continue
			}
			g := randomDataGraph(rng, labels)
			x := view.Materialize(g, vs)
			runSweep(t, "glued", q, x, l, nil)
			tested++
		}
		if tested < 40 {
			t.Fatalf("bounded=%v: only %d usable trials", bounded, tested)
		}
	}
}

// TestMatchJoinSCCEmptySeeding: a view with no matches yields ∅ with the
// same canonical stats (EdgeScans stops at the first empty edge) at every
// worker count.
func TestMatchJoinSCCEmptySeeding(t *testing.T) {
	g := graph.New()
	g.AddNode("A") // no edges: the view has no matches
	v := pattern.New("v")
	v.AddEdge(v.AddNode("a", "A"), v.AddNode("b", "B"))
	vs := view.NewSet(view.Define("", v))
	x := view.Materialize(g, vs)
	q := v.Clone()
	l, ok, _ := Contain(q, vs)
	if !ok {
		t.Fatal("q ⊑ {q} must hold")
	}
	seqRes, seqSt := MatchJoin(q, x, l)
	if seqRes.Matched {
		t.Fatal("expected ∅")
	}
	if seqSt.EdgeScans != 1 {
		t.Fatalf("EdgeScans = %d, want 1 (seeding stops at the first empty edge)", seqSt.EdgeScans)
	}
	for _, w := range sccWorkerSweep {
		res, st, err := MatchJoinWith(context.Background(), q, x, l, w)
		if err != nil {
			t.Fatal(err)
		}
		assertIdentical(t, "empty", seqRes, seqSt, res, st)
	}
}

// TestMatchJoinSCCCancellation: a cancelled context aborts both the
// seeding and the wave loop.
func TestMatchJoinSCCCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	q, vs := generator.Necklace(rng, 3, 1)
	l, ok, err := Contain(q, vs)
	if err != nil || !ok {
		t.Fatalf("necklace not contained: %v %v", ok, err)
	}
	g := generator.NecklaceGraph(rng, q, 40, 200)
	x := view.Materialize(g, vs)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := MatchJoinWith(ctx, q, x, l, 4); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled MatchJoinWith: err = %v", err)
	}
}

// TestMatchJoinEdgeScansCountSeeding: on the success path the production
// engine reports exactly one seeding pass per query edge.
func TestMatchJoinEdgeScansCountSeeding(t *testing.T) {
	g, q, vs := fig3Instance()
	l, ok, err := Contain(q, vs)
	if err != nil || !ok {
		t.Fatalf("Qs3 ⊑ {V1,V2} expected: %v %v", ok, err)
	}
	x := view.Materialize(g, vs)
	_, st := MatchJoin(q, x, l)
	if st.EdgeScans != len(q.Edges) {
		t.Fatalf("EdgeScans = %d, want %d (one seeding pass per edge)", st.EdgeScans, len(q.Edges))
	}
}
