package core

// End-to-end query answering using views: the "if Qs ⊑ V then evaluate
// MatchJoin over V(G)" pipeline of Theorem 1, with the view-selection
// strategies of Section IV.

import (
	"context"
	"fmt"

	"graphviews/internal/pattern"
	"graphviews/internal/simulation"
	"graphviews/internal/view"
)

// Strategy selects which views feed MatchJoin.
type Strategy int

const (
	// UseAll answers with every view in the set (plain containment).
	UseAll Strategy = iota
	// UseMinimal answers with a minimal containing subset (Theorem 5).
	UseMinimal
	// UseMinimum answers with the greedy approximation of the minimum
	// containing subset (Theorem 6).
	UseMinimum
)

// ErrNotContained is reported when Qs ⋢ V: the query cannot be answered
// using the views (Theorem 1).
var ErrNotContained = fmt.Errorf("core: query is not contained in the views")

// Answer computes Q(G) from materialized extensions only. It returns
// ErrNotContained when containment fails. The returned indices are the
// views actually used.
func Answer(q *pattern.Pattern, x *view.Extensions, s Strategy) (*simulation.Result, []int, error) {
	res, idx, _, err := AnswerWith(context.Background(), q, x, s, 1)
	return res, idx, err
}

// AnswerWith is Answer with intra-query parallelism: the containment
// check's per-view matches (UseAll strategy), MatchJoin's per-edge
// seeding and the per-SCC MatchJoin fixpoint waves all fan out over up
// to workers goroutines, and the ctx is honored at every phase boundary.
// The greedy Minimal/Minimum selections are order-dependent by
// construction and stay sequential. Results are identical to Answer's at
// every worker count; Stats are returned so engine callers can observe
// the MatchJoin work counters.
func AnswerWith(ctx context.Context, q *pattern.Pattern, x *view.Extensions, s Strategy, workers int) (*simulation.Result, []int, Stats, error) {
	return AnswerPooled(ctx, q, x, s, workers, nil)
}

// AnswerPooled is AnswerWith with the MatchJoin working state drawn from
// pool (see ScratchPool); a nil pool uses a transient scratch. The
// containment phase is unaffected — its working state is bounded by the
// pattern sizes, not the graph.
func AnswerPooled(ctx context.Context, q *pattern.Pattern, x *view.Extensions, s Strategy, workers int, pool *ScratchPool) (*simulation.Result, []int, Stats, error) {
	var (
		idx []int
		l   *Lambda
		ok  bool
		err error
		st  Stats
	)
	if ctx != nil {
		if cerr := ctx.Err(); cerr != nil {
			return nil, nil, st, cerr
		}
	}
	switch s {
	case UseMinimal:
		idx, l, ok, err = Minimal(q, x.Set)
	case UseMinimum:
		idx, l, ok, err = Minimum(q, x.Set)
	default:
		l, ok, err = ContainWith(ctx, q, x.Set, workers)
		if ok {
			idx = make([]int, x.Set.Card())
			for i := range idx {
				idx[i] = i
			}
		}
	}
	if err != nil {
		return nil, nil, st, err
	}
	if !ok {
		return nil, nil, st, ErrNotContained
	}
	res, st, err := MatchJoinPooled(ctx, q, x, l, workers, pool)
	if err != nil {
		return nil, nil, st, err
	}
	return res, idx, st, nil
}
