package core

// End-to-end query answering using views: the "if Qs ⊑ V then evaluate
// MatchJoin over V(G)" pipeline of Theorem 1, with the view-selection
// strategies of Section IV.

import (
	"fmt"

	"graphviews/internal/pattern"
	"graphviews/internal/simulation"
	"graphviews/internal/view"
)

// Strategy selects which views feed MatchJoin.
type Strategy int

const (
	// UseAll answers with every view in the set (plain containment).
	UseAll Strategy = iota
	// UseMinimal answers with a minimal containing subset (Theorem 5).
	UseMinimal
	// UseMinimum answers with the greedy approximation of the minimum
	// containing subset (Theorem 6).
	UseMinimum
)

// ErrNotContained is reported when Qs ⋢ V: the query cannot be answered
// using the views (Theorem 1).
var ErrNotContained = fmt.Errorf("core: query is not contained in the views")

// Answer computes Q(G) from materialized extensions only. It returns
// ErrNotContained when containment fails. The returned indices are the
// views actually used.
func Answer(q *pattern.Pattern, x *view.Extensions, s Strategy) (*simulation.Result, []int, error) {
	var (
		idx []int
		l   *Lambda
		ok  bool
		err error
	)
	switch s {
	case UseMinimal:
		idx, l, ok, err = Minimal(q, x.Set)
	case UseMinimum:
		idx, l, ok, err = Minimum(q, x.Set)
	default:
		l, ok, err = Contain(q, x.Set)
		if ok {
			idx = make([]int, x.Set.Card())
			for i := range idx {
				idx[i] = i
			}
		}
	}
	if err != nil {
		return nil, nil, err
	}
	if !ok {
		return nil, nil, ErrNotContained
	}
	res, _ := MatchJoin(q, x, l)
	return res, idx, nil
}
