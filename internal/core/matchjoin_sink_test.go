package core

// Differential tests for the node-match-set derivation in finish on
// patterns with a sink node fed by several in-edges (≥2 in-edges, 0
// out-edges). Simulation places no join constraint on the targets of
// distinct in-edges, so the sink's match set is the UNION of the in-edge
// targets — an intersection would wrongly drop matches witnessed through
// only one in-edge. The tests cross-check every MatchJoin engine against
// direct simulation on the paper-defined part of the answer (the edge
// match sets) and pin down the one documented divergence: a sink match
// with no incoming matched edge appears in Simulate's Sim but cannot be
// recovered from views.

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"graphviews/internal/graph"
	"graphviews/internal/pattern"
	"graphviews/internal/simulation"
	"graphviews/internal/view"
)

// sinkInstance: pattern w1 -> u <- w2 with sink u, one single-edge view
// per pattern edge, and a graph where u's matches split across the two
// in-edges (c only via w1, d only via w2) plus an isolated U node e.
func sinkInstance() (*graph.Graph, *pattern.Pattern, *view.Set, int) {
	g := graph.New()
	a := g.AddNode("W1")
	b := g.AddNode("W2")
	c := g.AddNode("U")
	d := g.AddNode("U")
	g.AddNode("U") // isolated sink match: in Simulate's Sim only
	g.AddEdge(a, c)
	g.AddEdge(b, d)

	q := pattern.New("sink")
	w1 := q.AddNode("w1", "W1")
	w2 := q.AddNode("w2", "W2")
	u := q.AddNode("u", "U")
	q.AddEdge(w1, u)
	q.AddEdge(w2, u)

	v1 := pattern.New("v1")
	v1.AddEdge(v1.AddNode("a", "W1"), v1.AddNode("b", "U"))
	v2 := pattern.New("v2")
	v2.AddEdge(v2.AddNode("a", "W2"), v2.AddNode("b", "U"))
	return g, q, view.NewSet(view.Define("", v1), view.Define("", v2)), u
}

func TestSinkUnionDerivation(t *testing.T) {
	g, q, vs, u := sinkInstance()
	l, ok, err := Contain(q, vs)
	if err != nil || !ok {
		t.Fatalf("sink query not contained: %v %v", ok, err)
	}
	x := view.Materialize(g, vs)
	want := simulation.Simulate(g, q)

	engines := map[string]func() *simulation.Result{
		"MatchJoin":       func() *simulation.Result { r, _ := MatchJoin(q, x, l); return r },
		"MatchJoinNaive":  func() *simulation.Result { r, _ := MatchJoinNaive(q, x, l); return r },
		"MatchJoinRanked": func() *simulation.Result { r, _ := MatchJoinRanked(q, x, l); return r },
		"MatchJoinWith4": func() *simulation.Result {
			r, _, err := MatchJoinWith(context.Background(), q, x, l, 4)
			if err != nil {
				t.Fatal(err)
			}
			return r
		},
	}
	for name, run := range engines {
		got := run()
		if !got.Equal(want) {
			t.Fatalf("%s: edge match sets != Simulate\ngot:  %v\nwant: %v", name, got, want)
		}
		// Union semantics: c (via w1 only) AND d (via w2 only) both match u.
		sim := got.Sim[u]
		if !containsNode(sim, 2) || !containsNode(sim, 3) {
			t.Fatalf("%s: sink match set %v must contain both 2 and 3 (union, not intersection)", name, sim)
		}
		// Documented divergence: the isolated U node (4) is in Simulate's
		// Sim but not derivable from views.
		if containsNode(sim, 4) {
			t.Fatalf("%s: sink match set %v contains the isolated node, which views cannot witness", name, sim)
		}
		if !containsNode(want.Sim[u], 4) {
			t.Fatalf("Simulate's sink Sim %v should contain the isolated node", want.Sim[u])
		}
		// Non-sink nodes must match Simulate's Sim exactly.
		for n := range q.Nodes {
			if n == u {
				continue
			}
			if !equalNodes(got.Sim[n], want.Sim[n]) {
				t.Fatalf("%s: Sim[%d] = %v, want %v", name, n, got.Sim[n], want.Sim[n])
			}
		}
	}
}

// TestSinkDerivationRandomized sweeps random star-into-sink patterns —
// 2..4 sources all pointing at one sink, single-edge views — across
// random graphs, comparing every engine's edge match sets against direct
// simulation and checking the Sim contract: union-of-witnesses at the
// sink (a subset of Simulate's unconstrained sink Sim), exact equality
// elsewhere.
func TestSinkDerivationRandomized(t *testing.T) {
	labels := []string{"A", "B", "C", "U"}
	rng := rand.New(rand.NewSource(83))
	for trial := 0; trial < 120; trial++ {
		nSrc := 2 + rng.Intn(3)
		q := pattern.New("star")
		var defs []*view.Definition
		sink := q.AddNode("u", "U")
		for i := 0; i < nSrc; i++ {
			lab := labels[rng.Intn(3)] // sources draw from A/B/C
			s := q.AddNode("", lab)
			q.AddEdge(s, sink)
			v := pattern.New(fmt.Sprintf("v%d", i))
			v.AddEdge(v.AddNode("a", lab), v.AddNode("b", "U"))
			defs = append(defs, view.Define("", v))
		}
		vs := view.NewSet(defs...)
		l, ok, err := Contain(q, vs)
		if err != nil || !ok {
			t.Fatalf("trial %d: star not contained: %v %v", trial, ok, err)
		}
		g := randomDataGraph(rng, labels)
		x := view.Materialize(g, vs)
		want := simulation.Simulate(g, q)

		results := make(map[string]*simulation.Result)
		results["MatchJoin"], _ = MatchJoin(q, x, l)
		results["MatchJoinNaive"], _ = MatchJoinNaive(q, x, l)
		results["MatchJoinRanked"], _ = MatchJoinRanked(q, x, l)
		parRes, _, err := MatchJoinWith(context.Background(), q, x, l, 4)
		if err != nil {
			t.Fatal(err)
		}
		results["MatchJoinWith4"] = parRes

		for name, got := range results {
			if !got.Equal(want) {
				t.Fatalf("trial %d %s: edge match sets != Simulate\nq: %s\ngot:  %v\nwant: %v",
					trial, name, q, got, want)
			}
			if !got.Matched {
				continue
			}
			// Sink Sim = union of alive in-edge targets, ⊆ Simulate's.
			witnessed := map[graph.NodeID]bool{}
			for ei := range q.Edges {
				for _, pr := range got.Edges[ei].Pairs {
					witnessed[pr.Dst] = true
				}
			}
			if len(got.Sim[sink]) != len(witnessed) {
				t.Fatalf("trial %d %s: sink Sim %v != witnessed targets %v", trial, name, got.Sim[sink], witnessed)
			}
			for _, v := range got.Sim[sink] {
				if !witnessed[v] {
					t.Fatalf("trial %d %s: sink match %d not witnessed by any in-edge", trial, name, v)
				}
				if !containsNode(want.Sim[sink], v) {
					t.Fatalf("trial %d %s: sink match %d not in Simulate's Sim", trial, name, v)
				}
			}
			for n := range q.Nodes {
				if n == sink {
					continue
				}
				if !equalNodes(got.Sim[n], want.Sim[n]) {
					t.Fatalf("trial %d %s: Sim[%d] = %v, want %v", trial, name, n, got.Sim[n], want.Sim[n])
				}
			}
		}
	}
}

func containsNode(list []graph.NodeID, v graph.NodeID) bool {
	for _, x := range list {
		if x == v {
			return true
		}
	}
	return false
}

func equalNodes(a, b []graph.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
