package core

// Section VIII extension: "our techniques can be readily extended to
// revisions of simulation such as dual and strong simulation [28] ...
// retaining the same complexity". This file carries the containment
// characterization and MatchJoin over to dual simulation:
//
//   - the view match is computed by *dual* simulation of V over Qs
//     (forward and backward conditions);
//   - composition still holds (both directions compose), so coverage of
//     every query edge remains sufficient for answerability;
//   - DualMatchJoin enforces both forward (source) and backward (target)
//     support during the fixpoint.
//
// Property tests verify DualMatchJoin ≡ SimulateDual whenever
// DualContain holds. Dual containment is supported for plain patterns
// (dual simulation is defined edge-to-edge).

import (
	"fmt"

	"graphviews/internal/graph"
	"graphviews/internal/pattern"
	"graphviews/internal/simulation"
	"graphviews/internal/view"
)

// computeDualViewMatch evaluates V over Qs under dual simulation with
// node-condition equivalence, returning the covered query edges.
func computeDualViewMatch(q *pattern.Pattern, def *view.Definition) *ViewMatch {
	v := def.Pattern
	nq, nv := len(q.Nodes), len(v.Nodes)

	sim := make([][]bool, nv)
	for x := 0; x < nv; x++ {
		sim[x] = make([]bool, nq)
		for u := 0; u < nq; u++ {
			sim[x][u] = pattern.NodeConditionsEquivalent(&v.Nodes[x], &q.Nodes[u])
		}
	}
	hasQEdge := func(a, b int) bool {
		for _, e := range q.Edges {
			if e.From == a && e.To == b {
				return true
			}
		}
		return false
	}
	for changed := true; changed; {
		changed = false
		for x := 0; x < nv; x++ {
			for u := 0; u < nq; u++ {
				if !sim[x][u] {
					continue
				}
				ok := true
				for _, ei := range v.OutEdges(x) {
					tgt := v.Edges[ei].To
					found := false
					for u2 := 0; u2 < nq && !found; u2++ {
						if sim[tgt][u2] && hasQEdge(u, u2) {
							found = true
						}
					}
					if !found {
						ok = false
						break
					}
				}
				if ok {
					for _, ei := range v.InEdges(x) {
						src := v.Edges[ei].From
						found := false
						for u2 := 0; u2 < nq && !found; u2++ {
							if sim[src][u2] && hasQEdge(u2, u) {
								found = true
							}
						}
						if !found {
							ok = false
							break
						}
					}
				}
				if !ok {
					sim[x][u] = false
					changed = true
				}
			}
		}
	}

	vm := &ViewMatch{
		PairsPerEdge:  make([][][2]int, len(v.Edges)),
		CoversPerEdge: make([][]int, len(v.Edges)),
		Covered:       make([]bool, len(q.Edges)),
	}
	for x := 0; x < nv; x++ {
		any := false
		for u := 0; u < nq; u++ {
			if sim[x][u] {
				any = true
				break
			}
		}
		if !any {
			return vm
		}
	}
	for ei, e := range v.Edges {
		for qi, qe := range q.Edges {
			if sim[e.From][qe.From] && sim[e.To][qe.To] {
				vm.PairsPerEdge[ei] = append(vm.PairsPerEdge[ei], [2]int{qe.From, qe.To})
				vm.CoversPerEdge[ei] = append(vm.CoversPerEdge[ei], qi)
				vm.Covered[qi] = true
			}
		}
	}
	return vm
}

// DualContain decides containment under dual simulation semantics and
// returns λ when it holds. Plain patterns only.
func DualContain(q *pattern.Pattern, vs *view.Set) (*Lambda, bool, error) {
	if err := validateForContainment(q, vs); err != nil {
		return nil, false, err
	}
	if !q.IsPlain() {
		return nil, false, fmt.Errorf("core: dual simulation containment requires a plain pattern")
	}
	for _, d := range vs.Defs {
		if !d.Pattern.IsPlain() {
			return nil, false, fmt.Errorf("core: dual simulation containment requires plain views")
		}
	}
	vms := make([]*ViewMatch, vs.Card())
	covered := make([]bool, len(q.Edges))
	for i, d := range vs.Defs {
		vms[i] = computeDualViewMatch(q, d)
		for qi, c := range vms[i].Covered {
			if c {
				covered[qi] = true
			}
		}
	}
	for _, c := range covered {
		if !c {
			return nil, false, nil
		}
	}
	all := make([]int, vs.Card())
	for i := range all {
		all[i] = i
	}
	return buildLambda(q, vms, all), true, nil
}

// DualMatchJoin answers q from extensions materialized under dual
// simulation (view.MaterializeDual), enforcing forward and backward
// support in the fixpoint. It runs on the same dense CSR edge sets and
// flat counters as MatchJoin, with one extra per-edge dstCount array for
// the backward condition.
func DualMatchJoin(q *pattern.Pattern, x *view.Extensions, l *Lambda) (*simulation.Result, Stats) {
	var st Stats
	sc := new(Scratch)
	sets, ok, scans := buildInitial(q, x, l, sc)
	st.EdgeScans = scans
	if !ok {
		return simulation.Empty(q), st
	}
	for qi := range sets {
		st.InitialPairs += len(sets[qi].pairs)
	}
	nu, toOrig := indexEdgeSets(sets, sc)

	// dstCount[qi][v]: alive pairs in Se with Dst v (backward support) —
	// initially the byDst group sizes.
	dstCount := make([][]int32, len(sets))
	for qi := range sets {
		es := &sets[qi]
		dc := sc.i32.MakeDirty(nu)
		for v := 0; v < nu; v++ {
			dc[v] = es.byDstOff[v+1] - es.byDstOff[v]
		}
		dstCount[qi] = dc
	}

	// failCnt[u·nu + v]: out-edges of u without src support plus in-edges
	// of u without dst support. Valid iff 0.
	failCnt := sc.i32.Make(len(q.Nodes) * nu)
	work := sc.takeKills()

	for u := range q.Nodes {
		outs, ins := q.OutEdges(u), q.InEdges(u)
		if len(outs) == 0 && len(ins) == 0 {
			continue
		}
		fc := failCnt[u*nu : (u+1)*nu]
		for v := 0; v < nu; v++ {
			var fails int32
			member := false
			for _, ei := range outs {
				if sets[ei].srcCount[v] == 0 {
					fails++
				} else {
					member = true
				}
			}
			for _, ei := range ins {
				if dstCount[ei][v] == 0 {
					fails++
				} else {
					member = true
				}
			}
			if fails > 0 && member {
				fc[v] = fails
				work = append(work, kill{u, graph.NodeID(v)})
			}
		}
	}

	for len(work) > 0 {
		k := work[len(work)-1]
		work = work[:len(work)-1]
		// Dst-side removals: pairs (s, k.v) in in-edges of k.u.
		for _, ei := range q.InEdges(k.u) {
			es := &sets[ei]
			w := q.Edges[ei].From
			fcW := failCnt[w*nu : (w+1)*nu]
			for _, i := range es.dstPairs(k.v) {
				if !es.kill(i) {
					continue
				}
				st.PairKills++
				s := es.lsrc[i]
				es.srcCount[s]--
				if es.srcCount[s] == 0 {
					fcW[s]++
					if fcW[s] == 1 {
						work = append(work, kill{w, graph.NodeID(s)})
					}
				}
			}
			if es.nAliv == 0 {
				return simulation.Empty(q), st
			}
		}
		// Src-side removals: pairs (k.v, t) in out-edges of k.u; their
		// targets lose backward support.
		for _, ei := range q.OutEdges(k.u) {
			es := &sets[ei]
			w := q.Edges[ei].To
			fcW := failCnt[w*nu : (w+1)*nu]
			dc := dstCount[ei]
			lo, hi := es.srcRange(k.v)
			for i := lo; i < hi; i++ {
				if !es.kill(i) {
					continue
				}
				st.PairKills++
				d := es.ldst[i]
				dc[d]--
				if dc[d] == 0 {
					fcW[d]++
					if fcW[d] == 1 {
						work = append(work, kill{w, graph.NodeID(d)})
					}
				}
			}
			if es.nAliv == 0 {
				return simulation.Empty(q), st
			}
		}
	}
	sc.giveKills(work)
	return finishDual(q, sets, dstCount, nu, toOrig), st
}

// finishDual assembles the Result under dual semantics: node matches need
// support on every incident edge in both directions. The ascending
// compressed-universe scan yields sorted match lists directly.
func finishDual(q *pattern.Pattern, sets []edgeSet, dstCount [][]int32, nu int, toOrig []graph.NodeID) *simulation.Result {
	for qi := range sets {
		if sets[qi].nAliv == 0 {
			return simulation.Empty(q)
		}
	}
	res := &simulation.Result{
		Pattern: q,
		Matched: true,
		Sim:     make([][]graph.NodeID, len(q.Nodes)),
		Edges:   make([]simulation.EdgeMatches, len(q.Edges)),
	}
	for qi := range sets {
		es := &sets[qi]
		em := &res.Edges[qi]
		em.Pairs = make([]simulation.Pair, 0, es.nAliv)
		em.Dists = make([]int32, 0, es.nAliv)
		es.alive.Iterate(func(i int) bool {
			em.Pairs = append(em.Pairs, es.pairs[i])
			em.Dists = append(em.Dists, es.dists[i])
			return true
		})
	}
	for u := range q.Nodes {
		outs, ins := q.OutEdges(u), q.InEdges(u)
		list := make([]graph.NodeID, 0)
		if len(outs) == 0 && len(ins) == 0 {
			res.Sim[u] = list // isolated node: nothing derivable
			continue
		}
		for v := 0; v < nu; v++ {
			member := false
			ok := true
			for _, ei := range outs {
				if sets[ei].srcCount[v] > 0 {
					member = true
				} else {
					ok = false
					break
				}
			}
			if ok {
				for _, ei := range ins {
					if dstCount[ei][v] > 0 {
						member = true
					} else {
						ok = false
						break
					}
				}
			}
			if ok && member {
				list = append(list, toOrig[v])
			}
		}
		res.Sim[u] = list
	}
	return res
}
