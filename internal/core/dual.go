package core

// Section VIII extension: "our techniques can be readily extended to
// revisions of simulation such as dual and strong simulation [28] ...
// retaining the same complexity". This file carries the containment
// characterization and MatchJoin over to dual simulation:
//
//   - the view match is computed by *dual* simulation of V over Qs
//     (forward and backward conditions);
//   - composition still holds (both directions compose), so coverage of
//     every query edge remains sufficient for answerability;
//   - DualMatchJoin enforces both forward (source) and backward (target)
//     support during the fixpoint.
//
// Property tests verify DualMatchJoin ≡ SimulateDual whenever
// DualContain holds. Dual containment is supported for plain patterns
// (dual simulation is defined edge-to-edge).

import (
	"fmt"
	"sort"

	"graphviews/internal/graph"
	"graphviews/internal/pattern"
	"graphviews/internal/simulation"
	"graphviews/internal/view"
)

// computeDualViewMatch evaluates V over Qs under dual simulation with
// node-condition equivalence, returning the covered query edges.
func computeDualViewMatch(q *pattern.Pattern, def *view.Definition) *ViewMatch {
	v := def.Pattern
	nq, nv := len(q.Nodes), len(v.Nodes)

	sim := make([][]bool, nv)
	for x := 0; x < nv; x++ {
		sim[x] = make([]bool, nq)
		for u := 0; u < nq; u++ {
			sim[x][u] = pattern.NodeConditionsEquivalent(&v.Nodes[x], &q.Nodes[u])
		}
	}
	hasQEdge := func(a, b int) bool {
		for _, e := range q.Edges {
			if e.From == a && e.To == b {
				return true
			}
		}
		return false
	}
	for changed := true; changed; {
		changed = false
		for x := 0; x < nv; x++ {
			for u := 0; u < nq; u++ {
				if !sim[x][u] {
					continue
				}
				ok := true
				for _, ei := range v.OutEdges(x) {
					tgt := v.Edges[ei].To
					found := false
					for u2 := 0; u2 < nq && !found; u2++ {
						if sim[tgt][u2] && hasQEdge(u, u2) {
							found = true
						}
					}
					if !found {
						ok = false
						break
					}
				}
				if ok {
					for _, ei := range v.InEdges(x) {
						src := v.Edges[ei].From
						found := false
						for u2 := 0; u2 < nq && !found; u2++ {
							if sim[src][u2] && hasQEdge(u2, u) {
								found = true
							}
						}
						if !found {
							ok = false
							break
						}
					}
				}
				if !ok {
					sim[x][u] = false
					changed = true
				}
			}
		}
	}

	vm := &ViewMatch{
		PairsPerEdge:  make([][][2]int, len(v.Edges)),
		CoversPerEdge: make([][]int, len(v.Edges)),
		Covered:       make([]bool, len(q.Edges)),
	}
	for x := 0; x < nv; x++ {
		any := false
		for u := 0; u < nq; u++ {
			if sim[x][u] {
				any = true
				break
			}
		}
		if !any {
			return vm
		}
	}
	for ei, e := range v.Edges {
		for qi, qe := range q.Edges {
			if sim[e.From][qe.From] && sim[e.To][qe.To] {
				vm.PairsPerEdge[ei] = append(vm.PairsPerEdge[ei], [2]int{qe.From, qe.To})
				vm.CoversPerEdge[ei] = append(vm.CoversPerEdge[ei], qi)
				vm.Covered[qi] = true
			}
		}
	}
	return vm
}

// DualContain decides containment under dual simulation semantics and
// returns λ when it holds. Plain patterns only.
func DualContain(q *pattern.Pattern, vs *view.Set) (*Lambda, bool, error) {
	if err := validateForContainment(q, vs); err != nil {
		return nil, false, err
	}
	if !q.IsPlain() {
		return nil, false, fmt.Errorf("core: dual simulation containment requires a plain pattern")
	}
	for _, d := range vs.Defs {
		if !d.Pattern.IsPlain() {
			return nil, false, fmt.Errorf("core: dual simulation containment requires plain views")
		}
	}
	vms := make([]*ViewMatch, vs.Card())
	covered := make([]bool, len(q.Edges))
	for i, d := range vs.Defs {
		vms[i] = computeDualViewMatch(q, d)
		for qi, c := range vms[i].Covered {
			if c {
				covered[qi] = true
			}
		}
	}
	for _, c := range covered {
		if !c {
			return nil, false, nil
		}
	}
	all := make([]int, vs.Card())
	for i := range all {
		all[i] = i
	}
	return buildLambda(q, vms, all), true, nil
}

// DualMatchJoin answers q from extensions materialized under dual
// simulation (view.MaterializeDual), enforcing forward and backward
// support in the fixpoint.
func DualMatchJoin(q *pattern.Pattern, x *view.Extensions, l *Lambda) (*simulation.Result, Stats) {
	var st Stats
	sets, ok, scans := buildInitial(q, x, l)
	st.EdgeScans = scans
	if !ok {
		return simulation.Empty(q), st
	}
	for qi := range sets {
		st.InitialPairs += len(sets[qi].pairs)
	}

	// dstCount[e][v]: alive pairs in Se with Dst v (backward support).
	dstCount := make([]map[graph.NodeID]int32, len(sets))
	for qi := range sets {
		dstCount[qi] = make(map[graph.NodeID]int32)
		for i := range sets[qi].pairs {
			dstCount[qi][sets[qi].pairs[i].Dst]++
		}
	}

	// failCnt[u][v]: out-edges of u without src support plus in-edges of u
	// without dst support. Valid iff 0.
	failCnt := make([]map[graph.NodeID]int32, len(q.Nodes))
	for u := range q.Nodes {
		failCnt[u] = make(map[graph.NodeID]int32)
	}
	type kill struct {
		u int
		v graph.NodeID
	}
	var work []kill

	for u := range q.Nodes {
		universe := map[graph.NodeID]bool{}
		for _, ei := range q.OutEdges(u) {
			for v := range sets[ei].srcCount {
				universe[v] = true
			}
		}
		for _, ei := range q.InEdges(u) {
			for v := range dstCount[ei] {
				universe[v] = true
			}
		}
		for v := range universe {
			var fails int32
			for _, ei := range q.OutEdges(u) {
				if sets[ei].srcCount[v] == 0 {
					fails++
				}
			}
			for _, ei := range q.InEdges(u) {
				if dstCount[ei][v] == 0 {
					fails++
				}
			}
			if fails > 0 {
				failCnt[u][v] = fails
				work = append(work, kill{u, v})
			}
		}
	}

	for len(work) > 0 {
		k := work[len(work)-1]
		work = work[:len(work)-1]
		// Dst-side removals: pairs (s, k.v) in in-edges of k.u.
		for _, ei := range q.InEdges(k.u) {
			es := &sets[ei]
			w := q.Edges[ei].From
			for _, i := range es.byDst[k.v] {
				if !es.kill(i) {
					continue
				}
				st.PairKills++
				s := es.pairs[i].Src
				es.srcCount[s]--
				if es.srcCount[s] == 0 {
					failCnt[w][s]++
					if failCnt[w][s] == 1 {
						work = append(work, kill{w, s})
					}
				}
			}
			if es.nAliv == 0 {
				return simulation.Empty(q), st
			}
		}
		// Src-side removals: pairs (k.v, t) in out-edges of k.u; their
		// targets lose backward support.
		for _, ei := range q.OutEdges(k.u) {
			es := &sets[ei]
			w := q.Edges[ei].To
			for _, i := range es.bySrc[k.v] {
				if !es.kill(i) {
					continue
				}
				st.PairKills++
				d := es.pairs[i].Dst
				dstCount[ei][d]--
				if dstCount[ei][d] == 0 {
					failCnt[w][d]++
					if failCnt[w][d] == 1 {
						work = append(work, kill{w, d})
					}
				}
			}
			if es.nAliv == 0 {
				return simulation.Empty(q), st
			}
		}
	}
	return finishDual(q, sets, dstCount), st
}

// finishDual assembles the Result under dual semantics: node matches need
// support on every incident edge in both directions.
func finishDual(q *pattern.Pattern, sets []edgeSet, dstCount []map[graph.NodeID]int32) *simulation.Result {
	for qi := range sets {
		if sets[qi].nAliv == 0 {
			return simulation.Empty(q)
		}
	}
	res := &simulation.Result{
		Pattern: q,
		Matched: true,
		Sim:     make([][]graph.NodeID, len(q.Nodes)),
		Edges:   make([]simulation.EdgeMatches, len(q.Edges)),
	}
	for qi := range sets {
		es := &sets[qi]
		em := &res.Edges[qi]
		for i := range es.pairs {
			if es.alive[i] {
				em.Pairs = append(em.Pairs, es.pairs[i])
				em.Dists = append(em.Dists, es.dists[i])
			}
		}
	}
	for u := range q.Nodes {
		seen := map[graph.NodeID]bool{}
		outs, ins := q.OutEdges(u), q.InEdges(u)
		collect := func(v graph.NodeID) {
			for _, ei := range outs {
				if sets[ei].srcCount[v] <= 0 {
					return
				}
			}
			for _, ei := range ins {
				if dstCount[ei][v] <= 0 {
					return
				}
			}
			seen[v] = true
		}
		for _, ei := range outs {
			for v, c := range sets[ei].srcCount {
				if c > 0 {
					collect(v)
				}
			}
		}
		for _, ei := range ins {
			for v, c := range dstCount[ei] {
				if c > 0 {
					collect(v)
				}
			}
		}
		list := make([]graph.NodeID, 0, len(seen))
		for v := range seen {
			list = append(list, v)
		}
		sort.Slice(list, func(a, b int) bool { return list[a] < list[b] })
		res.Sim[u] = list
	}
	return res
}
