package core

import (
	"math/rand"
	"testing"

	"graphviews/internal/pattern"
	"graphviews/internal/view"
)

func TestPatternDistancesPlain(t *testing.T) {
	// a -> b -> c, a -> c: plain weights (all 1).
	q := pattern.New("q")
	a := q.AddNode("a", "A")
	b := q.AddNode("b", "B")
	c := q.AddNode("c", "C")
	q.AddEdge(a, b)
	q.AddEdge(b, c)
	q.AddEdge(a, c)
	wd, reach := pattern.Distances(q)
	if wd[a][b] != 1 || wd[b][c] != 1 || wd[a][c] != 1 {
		t.Fatalf("direct distances wrong: %v", wd)
	}
	if wd[c][a] < pattern.InfWeight {
		t.Fatalf("c cannot reach a")
	}
	if !reach[a][c] || reach[c][a] {
		t.Fatalf("reach wrong")
	}
	// Diagonal: no cycle => unreachable from self.
	if wd[a][a] < pattern.InfWeight || reach[a][a] {
		t.Fatalf("acyclic diagonal must be unreachable")
	}
}

func TestPatternDistancesWeighted(t *testing.T) {
	// a -(3)-> b -(2)-> c and a -(7)-> c: shortest a->c is 5.
	q := pattern.New("q")
	a := q.AddNode("a", "A")
	b := q.AddNode("b", "B")
	c := q.AddNode("c", "C")
	q.AddBoundedEdge(a, b, 3)
	q.AddBoundedEdge(b, c, 2)
	q.AddBoundedEdge(a, c, 7)
	wd, _ := pattern.Distances(q)
	if wd[a][c] != 5 {
		t.Fatalf("wdist(a,c) = %d, want 5", wd[a][c])
	}
}

func TestPatternDistancesUnboundedEdge(t *testing.T) {
	// a -(*)-> b -(2)-> c: a reaches c but with infinite weight.
	q := pattern.New("q")
	a := q.AddNode("a", "A")
	b := q.AddNode("b", "B")
	c := q.AddNode("c", "C")
	q.AddBoundedEdge(a, b, pattern.Unbounded)
	q.AddBoundedEdge(b, c, 2)
	wd, reach := pattern.Distances(q)
	if wd[a][c] < pattern.InfWeight {
		t.Fatalf("a->c through * must have infinite weight, got %d", wd[a][c])
	}
	if !reach[a][c] {
		t.Fatalf("a must still reach c")
	}
	if wd[b][c] != 2 {
		t.Fatalf("wdist(b,c) = %d", wd[b][c])
	}
}

func TestPatternDistancesCycle(t *testing.T) {
	// a -(2)-> b -(3)-> a: diagonal = cycle weight 5.
	q := pattern.New("q")
	a := q.AddNode("a", "A")
	b := q.AddNode("b", "B")
	q.AddBoundedEdge(a, b, 2)
	q.AddBoundedEdge(b, a, 3)
	wd, reach := pattern.Distances(q)
	if wd[a][a] != 5 || wd[b][b] != 5 {
		t.Fatalf("cycle diagonal = %d/%d, want 5/5", wd[a][a], wd[b][b])
	}
	if !reach[a][a] || !reach[b][b] {
		t.Fatalf("cycle reach wrong")
	}
}

func TestViewMatchPairs(t *testing.T) {
	// Fig. 4's V6 over Qs: pairs per view edge must be the expected ones.
	q := fig4Qs()
	v6 := pattern.New("V6")
	a := v6.AddNode("a", "A")
	b := v6.AddNode("b", "B")
	c := v6.AddNode("c", "C")
	d := v6.AddNode("d", "D")
	v6.AddEdge(a, b)
	v6.AddEdge(a, c)
	v6.AddEdge(c, d)
	vm := ComputeViewMatch(q, view.Define("", v6))
	// View edge 0 (a->b) maps to query pair (A,B) = nodes (0,1).
	if len(vm.PairsPerEdge[0]) != 1 || vm.PairsPerEdge[0][0] != [2]int{0, 1} {
		t.Fatalf("pairs for view edge 0: %v", vm.PairsPerEdge[0])
	}
	if len(vm.PairsPerEdge[2]) != 1 || vm.PairsPerEdge[2][0] != [2]int{2, 3} {
		t.Fatalf("pairs for view edge 2: %v", vm.PairsPerEdge[2])
	}
	if vm.CoveredCount() != 3 {
		t.Fatalf("CoveredCount = %d", vm.CoveredCount())
	}
}

func TestViewMatchEmptyWhenViewNodeUnmatched(t *testing.T) {
	q := fig4Qs()
	v := pattern.New("v")
	v.AddEdge(v.AddNode("z", "Z"), v.AddNode("b", "B"))
	vm := ComputeViewMatch(q, view.Define("", v))
	if vm.CoveredCount() != 0 {
		t.Fatalf("view with unmatched node must have empty view match")
	}
}

// bruteMinimumSize finds the true minimum containing subset by exhaustive
// search (small card(V) only).
func bruteMinimumSize(q *pattern.Pattern, vs *view.Set) int {
	vms := allViewMatches(q, vs)
	n := vs.Card()
	best := -1
	for mask := 1; mask < 1<<n; mask++ {
		covered := make([]bool, len(q.Edges))
		for i := 0; i < n; i++ {
			if mask&(1<<i) == 0 {
				continue
			}
			for qi, c := range vms[i].Covered {
				if c {
					covered[qi] = true
				}
			}
		}
		all := true
		for _, c := range covered {
			if !c {
				all = false
				break
			}
		}
		if !all {
			continue
		}
		size := 0
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				size++
			}
		}
		if best < 0 || size < best {
			best = size
		}
	}
	return best
}

// TestMinimumNearOptimal: the greedy result is within the ln(|Ep|)+1
// set-cover bound of the brute-force optimum on random instances, and
// never larger than minimal.
func TestMinimumNearOptimal(t *testing.T) {
	labels := []string{"A", "B", "C"}
	rng := rand.New(rand.NewSource(73))
	tested := 0
	for trial := 0; trial < 200 && tested < 60; trial++ {
		vs := randomViews(rng, labels, false)
		if vs.Card() > 8 {
			continue
		}
		q := glueContainedQuery(rng, vs, rng.Intn(3))
		if q == nil {
			continue
		}
		mnm, _, ok, err := Minimum(q, vs)
		if err != nil || !ok {
			t.Fatalf("Minimum: %v %v", ok, err)
		}
		opt := bruteMinimumSize(q, vs)
		if opt < 0 {
			t.Fatalf("brute force found no cover but Minimum did")
		}
		// ln(|Ep|)+1 bound, generously rounded up.
		bound := opt * (2 + len(q.Edges)/2)
		if len(mnm) > bound {
			t.Fatalf("trial %d: greedy %d far from optimum %d", trial, len(mnm), opt)
		}
		mnl, _, _, _ := Minimal(q, vs)
		if len(mnm) > len(mnl) {
			t.Fatalf("trial %d: minimum (%d) larger than minimal (%d)", trial, len(mnm), len(mnl))
		}
		tested++
	}
	if tested < 30 {
		t.Fatalf("only %d usable trials", tested)
	}
}

// TestExample5LambdaShape: λ built from the full Fig. 4 view set maps
// each edge to every covering view edge.
func TestExample5LambdaShape(t *testing.T) {
	q := fig4Qs()
	vs := fig4Views()
	l, ok, err := Contain(q, vs)
	if err != nil || !ok {
		t.Fatalf("Contain: %v %v", ok, err)
	}
	// Edge 3 = (C,D) is covered by V1, V4 and V6 (indices 0, 3, 5).
	var views []int
	for _, ref := range l.PerEdge[3] {
		views = append(views, ref.View)
	}
	want := map[int]bool{0: true, 3: true, 5: true}
	if len(views) != 3 {
		t.Fatalf("λ(C,D) views = %v, want {0,3,5}", views)
	}
	for _, v := range views {
		if !want[v] {
			t.Fatalf("λ(C,D) views = %v, want {0,3,5}", views)
		}
	}
}
