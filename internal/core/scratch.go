package core

// Scratch is the reusable working state of the MatchJoin engines: the
// seeded pair/distance buffers, the per-edge CSR indexes (offset arrays
// built by counting sort), alive bitsets, support and failure counters,
// and the kill worklist. Everything is carved from bump arenas reclaimed
// wholesale between queries, so a pooled engine answers repeated queries
// without allocating working state; only the Result (which outlives the
// call) is heap-allocated.
//
// Arenas are single-goroutine: the parallel seeding and per-SCC cascade
// phases either read pre-built arrays or allocate from the heap, and all
// arena draws happen in the sequential phase boundaries between them.

import (
	"graphviews/internal/arena"
	"graphviews/internal/bitset"
	"graphviews/internal/graph"
	"graphviews/internal/simulation"
)

// kill records that node match (u, v) lost support and must cascade.
type kill struct {
	u int
	v graph.NodeID
}

// Scratch holds recyclable MatchJoin working state. The zero value is
// ready to use.
type Scratch struct {
	i32   arena.Arena[int32]
	words arena.Arena[uint64]
	pairs arena.Arena[simulation.Pair]
	kills []kill
}

// Reset reclaims the arenas for a new query.
func (sc *Scratch) Reset() {
	sc.i32.Reset()
	sc.words.Reset()
	sc.pairs.Reset()
}

// bits returns a cleared n-bit set from the word arena.
func (sc *Scratch) bits(n int) bitset.Set {
	return bitset.FromWords(sc.words.Make(bitset.Words(n)))
}

// takeKills returns the (empty) kill worklist; giveKills returns it so
// the grown capacity is kept for the next query.
func (sc *Scratch) takeKills() []kill { return sc.kills[:0] }
func (sc *Scratch) giveKills(k []kill) {
	if cap(k) > cap(sc.kills) {
		sc.kills = k
	}
}

// ScratchPool pools Scratches across the queries of one Engine (see
// arena.Pool for the Get/Put and nil-pool contracts), making its
// steady-state answer path allocation-free.
type ScratchPool = arena.Pool[Scratch, *Scratch]

// NewScratchPool returns an empty pool.
func NewScratchPool() *ScratchPool {
	return arena.NewPool[Scratch]()
}
