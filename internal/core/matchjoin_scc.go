package core

// The SCC-parallel MatchJoin fixpoint. The Fig. 2 removal cascade
// propagates the death of a node match (u,v) only to the in-edges of u —
// backwards along pattern edges — so once every component that u's SCC
// can reach has been fully refined, u's SCC refines independently of all
// others at the same condensation height. The engine therefore walks the
// pattern's condensation DAG in reverse-topological waves: components of
// one wave share no pattern edge, so their support-counter cascades run
// concurrently over the par pool, each confined to the edge sets the
// component owns (edges whose target lies inside it). Kills discovered
// for a node of a later wave — a predecessor component — are not cascaded
// in place; they are appended to a per-component outbox and merged into
// that component's inbox at the wave barrier, preserving exactly the
// sequential bookkeeping: failCnt[u][v] counts u's out-edges in which v
// lost its last source pair, and (u,v) is enqueued on the 0→1 transition.
//
// The cascade is a monotone removal system with a unique greatest
// fixpoint, so the surviving pairs — and hence the assembled Result and
// the PairKills total — are identical to the sequential cascade's at
// every worker count and schedule. The determinism tests in
// matchjoin_scc_test.go and engine_test.go pin this down.

import (
	"context"

	"graphviews/internal/graph"
	"graphviews/internal/par"
	"graphviews/internal/pattern"
	"graphviews/internal/simulation"
)

// sccKill records that node match (u, v) lost all source support in some
// out-edge of u and must be cascaded in u's component.
type sccKill struct {
	u int
	v graph.NodeID
}

// matchJoinFixpointSCC runs the removal cascade over seeded edge sets by
// reverse-topological waves of the pattern's SCC condensation, fanning
// the components of each wave over up to workers goroutines. ctx is
// observed at every wave barrier. Results and PairKills are identical to
// matchJoinFixpoint's.
func matchJoinFixpointSCC(ctx context.Context, q *pattern.Pattern, sets []edgeSet, st *Stats, workers int) (*simulation.Result, error) {
	cond := q.Condense() // also warms q's adjacency caches for the workers
	nc := cond.NumComps()

	// Phase A: seed per-node failure counters from the freshly built
	// sets, one task per component. Reads only; each worker writes the
	// failCnt slots and the kill list of its own component's nodes.
	failCnt := make([]map[graph.NodeID]int32, len(q.Nodes))
	inbox := make([][]sccKill, nc)
	err := par.ForEach(ctx, workers, nc, func(ci int) {
		for _, u := range cond.Comps[ci] {
			failCnt[u] = make(map[graph.NodeID]int32)
			outs := q.OutEdges(u)
			if len(outs) == 0 {
				continue // sinks: every referenced node is valid
			}
			universe := map[graph.NodeID]bool{}
			for _, ei := range outs {
				for v := range sets[ei].srcCount {
					universe[v] = true
				}
			}
			for _, ei := range q.InEdges(u) {
				for v := range sets[ei].byDst {
					universe[v] = true
				}
			}
			for v := range universe {
				var fails int32
				for _, ei := range outs {
					if sets[ei].srcCount[v] == 0 {
						fails++
					}
				}
				if fails > 0 {
					failCnt[u][v] = fails
					inbox[ci] = append(inbox[ci], sccKill{u, v})
				}
			}
		}
	})
	if err != nil {
		return nil, err
	}

	// Phase B: cascade wave by wave. Each component drains its inbox;
	// cross-component kills are handed to later waves through outboxes,
	// merged under the wave barrier.
	kills := make([]int, nc)
	outbox := make([][]sccKill, nc)
	for _, wave := range cond.Waves {
		err := par.ForEach(ctx, workers, len(wave), func(wi int) {
			ci := wave[wi]
			kills[ci], outbox[ci] = cascadeComp(q, cond, sets, failCnt, ci, inbox[ci])
		})
		if err != nil {
			return nil, err
		}
		for _, ci := range wave {
			inbox[ci] = nil
			for _, k := range outbox[ci] {
				// The target component lies in a strictly later wave and
				// is not running: its failCnt maps are safe to touch.
				failCnt[k.u][k.v]++
				if failCnt[k.u][k.v] == 1 {
					tc := cond.CompOf[k.u]
					inbox[tc] = append(inbox[tc], k)
				}
			}
			outbox[ci] = nil
		}
	}
	for _, k := range kills {
		st.PairKills += k
	}
	return finish(q, sets), nil
}

// cascadeComp runs the support-counter cascade confined to component ci:
// all worked nodes belong to ci, every in-edge touched is owned by ci,
// and the only writes escaping the component are the silent src-side
// kills into already-refined successor components' edge sets (which no
// other component of the current wave can own) and the returned outbox.
func cascadeComp(q *pattern.Pattern, cond *pattern.Condensation, sets []edgeSet, failCnt []map[graph.NodeID]int32, ci int32, work []sccKill) (kills int, outbox []sccKill) {
	for len(work) > 0 {
		k := work[len(work)-1]
		work = work[:len(work)-1]
		for _, ei := range q.InEdges(k.u) {
			es := &sets[ei]
			w := q.Edges[ei].From
			for _, i := range es.byDst[k.v] {
				if !es.kill(i) {
					continue
				}
				kills++
				s := es.pairs[i].Src
				es.srcCount[s]--
				if es.srcCount[s] != 0 {
					continue
				}
				if cond.CompOf[w] == ci {
					failCnt[w][s]++
					if failCnt[w][s] == 1 {
						work = append(work, sccKill{w, s})
					}
				} else {
					// w belongs to a predecessor component (a later
					// wave): hand the kill over at the barrier.
					outbox = append(outbox, sccKill{w, s})
				}
			}
		}
		for _, ei := range q.OutEdges(k.u) {
			es := &sets[ei]
			for _, i := range es.bySrc[k.v] {
				if es.kill(i) {
					kills++
				}
			}
		}
	}
	return kills, outbox
}
