package core

// The SCC-parallel MatchJoin fixpoint. The Fig. 2 removal cascade
// propagates the death of a node match (u,v) only to the in-edges of u —
// backwards along pattern edges — so once every component that u's SCC
// can reach has been fully refined, u's SCC refines independently of all
// others at the same condensation height. The engine therefore walks the
// pattern's condensation DAG in reverse-topological waves: components of
// one wave share no pattern edge, so their support-counter cascades run
// concurrently over the par pool, each confined to the edge sets the
// component owns (edges whose target lies inside it). Kills discovered
// for a node of a later wave — a predecessor component — are not cascaded
// in place; they are appended to a per-component outbox and merged into
// that component's inbox at the wave barrier, preserving exactly the
// sequential bookkeeping: failCnt[u·nu+v] counts u's out-edges in which v
// lost its last source pair, and (u,v) is enqueued on the 0→1 transition.
//
// The cascade is a monotone removal system with a unique greatest
// fixpoint, so the surviving pairs — and hence the assembled Result and
// the PairKills total — are identical to the sequential cascade's at
// every worker count and schedule. The determinism tests in
// matchjoin_scc_test.go and engine_test.go pin this down.
//
// Memory discipline: the flat failCnt array and the CSR edge sets are
// pre-built from the scratch arenas before any fan-out; worker tasks
// write only their own component's failCnt slots, inbox/outbox slices
// and edge sets, and allocate nothing from the arenas.

import (
	"context"

	"graphviews/internal/graph"
	"graphviews/internal/par"
	"graphviews/internal/pattern"
	"graphviews/internal/simulation"
)

// matchJoinFixpointSCC runs the removal cascade over seeded edge sets by
// reverse-topological waves of the pattern's SCC condensation, fanning
// the components of each wave over up to workers goroutines. ctx is
// observed at every wave barrier. Results and PairKills are identical to
// matchJoinFixpoint's.
func matchJoinFixpointSCC(ctx context.Context, q *pattern.Pattern, sets []edgeSet, st *Stats, nu int, toOrig []graph.NodeID, sc *Scratch, workers int) (*simulation.Result, error) {
	cond := q.Condense() // also warms q's adjacency caches for the workers
	nc := cond.NumComps()

	// Phase A: seed per-node failure counters from the freshly built
	// sets, one task per component. Reads only; each worker writes the
	// failCnt slots and the kill list of its own component's nodes.
	failCnt := sc.i32.Make(len(q.Nodes) * nu)
	inbox := make([][]kill, nc)
	err := par.ForEach(ctx, workers, nc, func(ci int) {
		for _, u := range cond.Comps[ci] {
			inbox[ci] = seedNodeFailures(q, sets, failCnt, nu, u, inbox[ci])
		}
	})
	if err != nil {
		return nil, err
	}

	// Phase B: cascade wave by wave. Each component drains its inbox;
	// cross-component kills are handed to later waves through outboxes,
	// merged under the wave barrier.
	kills := make([]int, nc)
	outbox := make([][]kill, nc)
	for _, wave := range cond.Waves {
		err := par.ForEach(ctx, workers, len(wave), func(wi int) {
			ci := wave[wi]
			kills[ci], outbox[ci] = cascadeComp(q, cond, sets, failCnt, nu, ci, inbox[ci])
		})
		if err != nil {
			return nil, err
		}
		for _, ci := range wave {
			inbox[ci] = nil
			for _, k := range outbox[ci] {
				// The target component lies in a strictly later wave and
				// is not running: its failCnt slots are safe to touch.
				fc := failCnt[k.u*nu:]
				fc[k.v]++
				if fc[k.v] == 1 {
					tc := cond.CompOf[k.u]
					inbox[tc] = append(inbox[tc], k)
				}
			}
			outbox[ci] = nil
		}
	}
	for _, k := range kills {
		st.PairKills += k
	}
	return finish(q, sets, nu, toOrig, sc), nil
}

// cascadeComp runs the support-counter cascade confined to component ci:
// all worked nodes belong to ci, every in-edge touched is owned by ci,
// and the only writes escaping the component are the silent src-side
// kills into already-refined successor components' edge sets (which no
// other component of the current wave can own) and the returned outbox.
func cascadeComp(q *pattern.Pattern, cond *pattern.Condensation, sets []edgeSet, failCnt []int32, nu int, ci int32, work []kill) (kills int, outbox []kill) {
	for len(work) > 0 {
		k := work[len(work)-1]
		work = work[:len(work)-1]
		for _, ei := range q.InEdges(k.u) {
			es := &sets[ei]
			w := q.Edges[ei].From
			for _, i := range es.dstPairs(k.v) {
				if !es.kill(i) {
					continue
				}
				kills++
				s := es.lsrc[i]
				es.srcCount[s]--
				if es.srcCount[s] != 0 {
					continue
				}
				if cond.CompOf[w] == ci {
					fc := failCnt[w*nu:]
					fc[s]++
					if fc[s] == 1 {
						work = append(work, kill{w, graph.NodeID(s)})
					}
				} else {
					// w belongs to a predecessor component (a later
					// wave): hand the kill over at the barrier.
					outbox = append(outbox, kill{w, graph.NodeID(s)})
				}
			}
		}
		for _, ei := range q.OutEdges(k.u) {
			es := &sets[ei]
			lo, hi := es.srcRange(k.v)
			for i := lo; i < hi; i++ {
				if es.kill(i) {
					kills++
				}
			}
		}
	}
	return kills, outbox
}
