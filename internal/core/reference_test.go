package core

// Retained reference implementation of the pre-dense-kernel MatchJoin
// (PR 2/3 state): per-edge working sets indexed by
// map[graph.NodeID][]int32 / map[graph.NodeID]int32 with map-based
// failure counters — byte-for-byte the algorithm the CSR/arena kernels
// replaced. The differential tests prove the dense engines return
// identical Results AND Stats at workers 1/2/4/8 across plain, bounded,
// cyclic (multi-SCC) and dual workloads, including warmed-scratch-pool
// reuse.

import (
	"context"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"graphviews/internal/generator"
	"graphviews/internal/graph"
	"graphviews/internal/pattern"
	"graphviews/internal/simulation"
	"graphviews/internal/view"
)

// refEdgeSet is the pre-PR working match set of one query edge.
type refEdgeSet struct {
	pairs    []simulation.Pair
	dists    []int32
	alive    []bool
	nAliv    int
	bySrc    map[graph.NodeID][]int32
	byDst    map[graph.NodeID][]int32
	srcCount map[graph.NodeID]int32
}

func (es *refEdgeSet) kill(i int32) bool {
	if !es.alive[i] {
		return false
	}
	es.alive[i] = false
	es.nAliv--
	return true
}

// refSeedEdgeSet is the pre-PR per-edge seeding: append-grown union,
// full sort+dedup normalization, map indexes.
func refSeedEdgeSet(es *refEdgeSet, q *pattern.Pattern, x *view.Extensions, l *Lambda, qi int) {
	b := q.Edges[qi].Bound
	var em simulation.EdgeMatches
	for _, ref := range l.PerEdge[qi] {
		src := x.Exts[ref.View].Result
		se := &src.Edges[ref.Edge]
		for j, pr := range se.Pairs {
			d := se.Dists[j]
			if b != pattern.Unbounded && int64(d) > int64(b) {
				continue
			}
			em.Pairs = append(em.Pairs, pr)
			em.Dists = append(em.Dists, d)
		}
	}
	refNormalizeMatches(&em)
	if len(em.Pairs) == 0 {
		return
	}
	es.pairs = em.Pairs
	es.dists = em.Dists
	es.alive = make([]bool, len(em.Pairs))
	es.nAliv = len(em.Pairs)
	es.bySrc = make(map[graph.NodeID][]int32)
	es.byDst = make(map[graph.NodeID][]int32)
	es.srcCount = make(map[graph.NodeID]int32)
	for i := range es.pairs {
		es.alive[i] = true
		s, d := es.pairs[i].Src, es.pairs[i].Dst
		es.bySrc[s] = append(es.bySrc[s], int32(i))
		es.byDst[d] = append(es.byDst[d], int32(i))
		es.srcCount[s]++
	}
}

func refNormalizeMatches(em *simulation.EdgeMatches) {
	if len(em.Pairs) == 0 {
		return
	}
	idx := make([]int, len(em.Pairs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		pa, pb := em.Pairs[idx[a]], em.Pairs[idx[b]]
		if pa.Src != pb.Src {
			return pa.Src < pb.Src
		}
		if pa.Dst != pb.Dst {
			return pa.Dst < pb.Dst
		}
		return em.Dists[idx[a]] < em.Dists[idx[b]]
	})
	newP := make([]simulation.Pair, 0, len(em.Pairs))
	newD := make([]int32, 0, len(em.Dists))
	for _, i := range idx {
		if n := len(newP); n > 0 && newP[n-1] == em.Pairs[i] {
			continue
		}
		newP = append(newP, em.Pairs[i])
		newD = append(newD, em.Dists[i])
	}
	em.Pairs = newP
	em.Dists = newD
}

func refBuildInitial(q *pattern.Pattern, x *view.Extensions, l *Lambda) ([]refEdgeSet, bool, int) {
	sets := make([]refEdgeSet, len(q.Edges))
	for qi := range q.Edges {
		refSeedEdgeSet(&sets[qi], q, x, l, qi)
		if len(sets[qi].pairs) == 0 {
			return nil, false, qi + 1
		}
	}
	return sets, true, len(q.Edges)
}

func refFinish(q *pattern.Pattern, sets []refEdgeSet) *simulation.Result {
	for qi := range sets {
		if sets[qi].nAliv == 0 {
			return simulation.Empty(q)
		}
	}
	res := &simulation.Result{
		Pattern: q,
		Matched: true,
		Sim:     make([][]graph.NodeID, len(q.Nodes)),
		Edges:   make([]simulation.EdgeMatches, len(q.Edges)),
	}
	for qi := range sets {
		es := &sets[qi]
		em := &res.Edges[qi]
		for i := range es.pairs {
			if es.alive[i] {
				em.Pairs = append(em.Pairs, es.pairs[i])
				em.Dists = append(em.Dists, es.dists[i])
			}
		}
	}
	for u := range q.Nodes {
		outs := q.OutEdges(u)
		seen := map[graph.NodeID]bool{}
		if len(outs) > 0 {
			first := &sets[outs[0]]
			for v, c := range first.srcCount {
				if c <= 0 {
					continue
				}
				ok := true
				for _, ei := range outs[1:] {
					if sets[ei].srcCount[v] <= 0 {
						ok = false
						break
					}
				}
				if ok {
					seen[v] = true
				}
			}
		} else {
			for _, ei := range q.InEdges(u) {
				es := &sets[ei]
				for i := range es.pairs {
					if es.alive[i] {
						seen[es.pairs[i].Dst] = true
					}
				}
			}
		}
		list := make([]graph.NodeID, 0, len(seen))
		for v := range seen {
			list = append(list, v)
		}
		sort.Slice(list, func(a, b int) bool { return list[a] < list[b] })
		res.Sim[u] = list
	}
	return res
}

// refMatchJoin is the pre-PR sequential production engine.
func refMatchJoin(q *pattern.Pattern, x *view.Extensions, l *Lambda) (*simulation.Result, Stats) {
	var st Stats
	sets, ok, scans := refBuildInitial(q, x, l)
	st.EdgeScans = scans
	if !ok {
		return simulation.Empty(q), st
	}
	for qi := range sets {
		st.InitialPairs += len(sets[qi].pairs)
	}

	failCnt := make([]map[graph.NodeID]int32, len(q.Nodes))
	for u := range q.Nodes {
		failCnt[u] = make(map[graph.NodeID]int32)
	}
	type kill struct {
		u int
		v graph.NodeID
	}
	var work []kill

	ranks := q.Ranks()
	order := make([]int, len(q.Nodes))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return ranks[order[a]] < ranks[order[b]] })

	for _, u := range order {
		outs := q.OutEdges(u)
		if len(outs) == 0 {
			continue
		}
		universe := map[graph.NodeID]bool{}
		for _, ei := range outs {
			for v := range sets[ei].srcCount {
				universe[v] = true
			}
		}
		for _, ei := range q.InEdges(u) {
			for v := range sets[ei].byDst {
				universe[v] = true
			}
		}
		for v := range universe {
			var fails int32
			for _, ei := range outs {
				if sets[ei].srcCount[v] == 0 {
					fails++
				}
			}
			if fails > 0 {
				failCnt[u][v] = fails
				work = append(work, kill{u, v})
			}
		}
	}

	for len(work) > 0 {
		k := work[len(work)-1]
		work = work[:len(work)-1]
		for _, ei := range q.InEdges(k.u) {
			es := &sets[ei]
			w := q.Edges[ei].From
			for _, i := range es.byDst[k.v] {
				if !es.kill(i) {
					continue
				}
				st.PairKills++
				s := es.pairs[i].Src
				es.srcCount[s]--
				if es.srcCount[s] == 0 {
					failCnt[w][s]++
					if failCnt[w][s] == 1 {
						work = append(work, kill{w, s})
					}
				}
			}
		}
		for _, ei := range q.OutEdges(k.u) {
			es := &sets[ei]
			for _, i := range es.bySrc[k.v] {
				if es.kill(i) {
					st.PairKills++
				}
			}
		}
	}
	return refFinish(q, sets), st
}

// refDualMatchJoin is the pre-PR dual fixpoint over map-indexed sets.
func refDualMatchJoin(q *pattern.Pattern, x *view.Extensions, l *Lambda) (*simulation.Result, Stats) {
	var st Stats
	sets, ok, scans := refBuildInitial(q, x, l)
	st.EdgeScans = scans
	if !ok {
		return simulation.Empty(q), st
	}
	for qi := range sets {
		st.InitialPairs += len(sets[qi].pairs)
	}

	dstCount := make([]map[graph.NodeID]int32, len(sets))
	for qi := range sets {
		dstCount[qi] = make(map[graph.NodeID]int32)
		for i := range sets[qi].pairs {
			dstCount[qi][sets[qi].pairs[i].Dst]++
		}
	}

	failCnt := make([]map[graph.NodeID]int32, len(q.Nodes))
	for u := range q.Nodes {
		failCnt[u] = make(map[graph.NodeID]int32)
	}
	type kill struct {
		u int
		v graph.NodeID
	}
	var work []kill

	for u := range q.Nodes {
		universe := map[graph.NodeID]bool{}
		for _, ei := range q.OutEdges(u) {
			for v := range sets[ei].srcCount {
				universe[v] = true
			}
		}
		for _, ei := range q.InEdges(u) {
			for v := range dstCount[ei] {
				universe[v] = true
			}
		}
		for v := range universe {
			var fails int32
			for _, ei := range q.OutEdges(u) {
				if sets[ei].srcCount[v] == 0 {
					fails++
				}
			}
			for _, ei := range q.InEdges(u) {
				if dstCount[ei][v] == 0 {
					fails++
				}
			}
			if fails > 0 {
				failCnt[u][v] = fails
				work = append(work, kill{u, v})
			}
		}
	}

	for len(work) > 0 {
		k := work[len(work)-1]
		work = work[:len(work)-1]
		for _, ei := range q.InEdges(k.u) {
			es := &sets[ei]
			w := q.Edges[ei].From
			for _, i := range es.byDst[k.v] {
				if !es.kill(i) {
					continue
				}
				st.PairKills++
				s := es.pairs[i].Src
				es.srcCount[s]--
				if es.srcCount[s] == 0 {
					failCnt[w][s]++
					if failCnt[w][s] == 1 {
						work = append(work, kill{w, s})
					}
				}
			}
			if es.nAliv == 0 {
				return simulation.Empty(q), st
			}
		}
		for _, ei := range q.OutEdges(k.u) {
			es := &sets[ei]
			w := q.Edges[ei].To
			for _, i := range es.bySrc[k.v] {
				if !es.kill(i) {
					continue
				}
				st.PairKills++
				d := es.pairs[i].Dst
				dstCount[ei][d]--
				if dstCount[ei][d] == 0 {
					failCnt[w][d]++
					if failCnt[w][d] == 1 {
						work = append(work, kill{w, d})
					}
				}
			}
			if es.nAliv == 0 {
				return simulation.Empty(q), st
			}
		}
	}

	for qi := range sets {
		if sets[qi].nAliv == 0 {
			return simulation.Empty(q), st
		}
	}
	res := &simulation.Result{
		Pattern: q,
		Matched: true,
		Sim:     make([][]graph.NodeID, len(q.Nodes)),
		Edges:   make([]simulation.EdgeMatches, len(q.Edges)),
	}
	for qi := range sets {
		es := &sets[qi]
		em := &res.Edges[qi]
		for i := range es.pairs {
			if es.alive[i] {
				em.Pairs = append(em.Pairs, es.pairs[i])
				em.Dists = append(em.Dists, es.dists[i])
			}
		}
	}
	for u := range q.Nodes {
		seen := map[graph.NodeID]bool{}
		outs, ins := q.OutEdges(u), q.InEdges(u)
		collect := func(v graph.NodeID) {
			for _, ei := range outs {
				if sets[ei].srcCount[v] <= 0 {
					return
				}
			}
			for _, ei := range ins {
				if dstCount[ei][v] <= 0 {
					return
				}
			}
			seen[v] = true
		}
		for _, ei := range outs {
			for v, c := range sets[ei].srcCount {
				if c > 0 {
					collect(v)
				}
			}
		}
		for _, ei := range ins {
			for v, c := range dstCount[ei] {
				if c > 0 {
					collect(v)
				}
			}
		}
		list := make([]graph.NodeID, 0, len(seen))
		for v := range seen {
			list = append(list, v)
		}
		sort.Slice(list, func(a, b int) bool { return list[a] < list[b] })
		res.Sim[u] = list
	}
	return res, st
}

// assertRefIdentical fails unless result and stats are byte-identical to
// the reference engine's.
func assertRefIdentical(t *testing.T, label string, refRes *simulation.Result, refSt Stats, res *simulation.Result, st Stats) {
	t.Helper()
	if !res.Equal(refRes) {
		t.Fatalf("%s: edge match sets differ from reference\nref:   %v\ndense: %v", label, refRes, res)
	}
	if !reflect.DeepEqual(res.Sim, refRes.Sim) {
		t.Fatalf("%s: node match sets differ from reference\nref:   %v\ndense: %v", label, refRes.Sim, res.Sim)
	}
	if st != refSt {
		t.Fatalf("%s: stats differ from reference: ref %+v dense %+v", label, refSt, st)
	}
}

// TestDenseMatchJoinMatchesReference: the CSR/arena MatchJoin — the
// sequential cascade, the SCC-parallel cascade at workers 1/2/4/8, and
// the warmed pooled path — reproduces the retained map-based reference
// byte for byte (Results and Stats) on plain and bounded glued
// workloads.
func TestDenseMatchJoinMatchesReference(t *testing.T) {
	labels := []string{"A", "B", "C"}
	pool := NewScratchPool()
	for _, bounded := range []bool{false, true} {
		rng := rand.New(rand.NewSource(7321))
		tested := 0
		for trial := 0; trial < 300 && tested < 60; trial++ {
			vs := randomViews(rng, labels, bounded)
			q := glueContainedQuery(rng, vs, rng.Intn(3))
			if q == nil {
				continue
			}
			l, ok, err := Contain(q, vs)
			if err != nil || !ok {
				continue
			}
			g := randomDataGraph(rng, labels)
			x := view.Materialize(g, vs)

			refRes, refSt := refMatchJoin(q, x, l)
			gotRes, gotSt := MatchJoin(q, x, l)
			assertRefIdentical(t, "sequential", refRes, refSt, gotRes, gotSt)
			for _, w := range []int{1, 2, 4, 8} {
				res, st, err := MatchJoinPooled(context.Background(), q, x, l, w, pool)
				if err != nil {
					t.Fatalf("workers=%d: %v", w, err)
				}
				assertRefIdentical(t, "pooled", refRes, refSt, res, st)
			}
			tested++
		}
		if tested < 40 {
			t.Fatalf("bounded=%v: only %d usable trials", bounded, tested)
		}
	}
}

// TestDenseMatchJoinMatchesReferenceSCC: multi-SCC necklace patterns —
// the wave-parallel cascade against the map-based reference.
func TestDenseMatchJoinMatchesReferenceSCC(t *testing.T) {
	rng := rand.New(rand.NewSource(7331))
	pool := NewScratchPool()
	for trial := 0; trial < 25; trial++ {
		k := 2 + rng.Intn(4)
		bound := pattern.Bound(1)
		if trial%3 == 1 {
			bound = pattern.Bound(2 + rng.Intn(2))
		} else if trial%3 == 2 {
			bound = pattern.Unbounded
		}
		q, vs := generator.Necklace(rng, k, bound)
		l, ok, err := Contain(q, vs)
		if err != nil || !ok {
			t.Fatalf("trial %d: necklace not contained: %v %v", trial, ok, err)
		}
		g := generator.NecklaceGraph(rng, q, 30+rng.Intn(40), 150+rng.Intn(150))
		x := view.Materialize(g, vs)

		refRes, refSt := refMatchJoin(q, x, l)
		for _, w := range []int{1, 2, 4, 8} {
			res, st, err := MatchJoinPooled(context.Background(), q, x, l, w, pool)
			if err != nil {
				t.Fatalf("trial %d workers=%d: %v", trial, w, err)
			}
			assertRefIdentical(t, "scc", refRes, refSt, res, st)
		}
	}
}

// TestDenseDualMatchJoinMatchesReference: the dense dual fixpoint
// against the retained map-based dual reference on dual-contained
// workloads.
func TestDenseDualMatchJoinMatchesReference(t *testing.T) {
	labels := []string{"A", "B", "C"}
	rng := rand.New(rand.NewSource(7341))
	tested := 0
	for trial := 0; trial < 400 && tested < 60; trial++ {
		vs := randomViews(rng, labels, false)
		q := glueContainedQuery(rng, vs, rng.Intn(3))
		if q == nil {
			continue
		}
		l, ok, err := DualContain(q, vs)
		if err != nil || !ok {
			continue
		}
		g := randomDataGraph(rng, labels)
		x := view.MaterializeDual(g, vs)

		refRes, refSt := refDualMatchJoin(q, x, l)
		gotRes, gotSt := DualMatchJoin(q, x, l)
		if refRes.Matched {
			assertRefIdentical(t, "dual", refRes, refSt, gotRes, gotSt)
		} else {
			// Early-abort path (some set emptied mid-cascade): the
			// pre-PR engine's PairKills there depended on map iteration
			// order — it was never canonical — so only the
			// order-independent counters are compared.
			if !gotRes.Equal(refRes) {
				t.Fatalf("dual: results differ on empty path")
			}
			if gotSt.EdgeScans != refSt.EdgeScans || gotSt.InitialPairs != refSt.InitialPairs {
				t.Fatalf("dual: canonical stats differ: ref %+v dense %+v", refSt, gotSt)
			}
		}
		tested++
	}
	if tested < 30 {
		t.Fatalf("only %d usable trials", tested)
	}
}
