package core

// Differential check for the frozen CSR backend at the answering layer:
// extensions materialized over graph.Freeze(g) must be identical to those
// over g, and Answer/MatchJoin — which never touch the graph — must
// therefore produce identical results and stats from either family.

import (
	"context"
	"math/rand"
	"testing"

	"graphviews/internal/graph"
	"graphviews/internal/simulation"
	"graphviews/internal/view"
)

func TestAnswerFrozenBackendEquivalence(t *testing.T) {
	labels := []string{"A", "B", "C"}
	rng := rand.New(rand.NewSource(97))
	tested := 0
	for trial := 0; trial < 300 && tested < 80; trial++ {
		vs := randomViews(rng, labels, trial%2 == 1)
		q := glueContainedQuery(rng, vs, rng.Intn(3))
		if q == nil {
			continue
		}
		g := randomDataGraph(rng, labels)
		fz := graph.Freeze(g)

		xMut := view.Materialize(g, vs)
		xFz := view.Materialize(fz, vs)
		for i := range xMut.Exts {
			if !xMut.Exts[i].Result.Equal(xFz.Exts[i].Result) {
				t.Fatalf("trial %d view %d: frozen extension differs", trial, i)
			}
		}

		for _, s := range []Strategy{UseAll, UseMinimal, UseMinimum} {
			ctx := context.Background()
			resMut, idxMut, stMut, errMut := AnswerWith(ctx, q, xMut, s, 1)
			resFz, idxFz, stFz, errFz := AnswerWith(ctx, q, xFz, s, 1)
			if (errMut == nil) != (errFz == nil) {
				t.Fatalf("trial %d strategy %v: err %v vs %v", trial, s, errMut, errFz)
			}
			if errMut != nil {
				continue
			}
			if !resMut.Equal(resFz) {
				t.Fatalf("trial %d strategy %v: answers differ across backends", trial, s)
			}
			if len(idxMut) != len(idxFz) {
				t.Fatalf("trial %d strategy %v: view choice differs", trial, s)
			}
			for i := range idxMut {
				if idxMut[i] != idxFz[i] {
					t.Fatalf("trial %d strategy %v: view choice differs", trial, s)
				}
			}
			if stMut != stFz {
				t.Fatalf("trial %d strategy %v: stats %+v vs %+v", trial, s, stMut, stFz)
			}
			// Cross-check against direct evaluation on the frozen backend.
			if want := simulation.Simulate(fz, q); !resMut.Equal(want) {
				t.Fatalf("trial %d strategy %v: answer != direct frozen evaluation", trial, s)
			}
		}
		tested++
	}
	if tested < 40 {
		t.Fatalf("only %d usable trials", tested)
	}
}
