package core

// Bridges view.SelectForWorkload to the containment machinery.

import (
	"graphviews/internal/pattern"
	"graphviews/internal/view"
)

// CoverEdges reports which edges of q the view covers (the per-view half
// of Proposition 7 / 11); it is the view.CoverFunc used by workload-driven
// view selection.
func CoverEdges(q *pattern.Pattern, def *view.Definition) []bool {
	return ComputeViewMatch(q, def).Covered
}

// SelectViews picks a subset of candidate views sufficient to answer the
// whole workload (greedy set cover over all queries' edges; §VIII
// future-work item 1). ok is false when even the full pool cannot cover
// some query.
func SelectViews(workload []*pattern.Pattern, candidates *view.Set) (chosen []int, ok bool, err error) {
	for _, q := range workload {
		if verr := validateForContainment(q, candidates); verr != nil {
			return nil, false, verr
		}
	}
	chosen, ok = view.SelectForWorkload(workload, candidates, CoverEdges)
	return chosen, ok, nil
}
