package core

import (
	"graphviews/internal/pattern"
	"math/rand"
	"testing"
)

// TestSelectViewsCoversWorkload: the chosen subset contains every
// workload query; dropping to fewer views than chosen loses some query.
func TestSelectViewsCoversWorkload(t *testing.T) {
	vs := fig4Views()
	q1 := fig4Qs()
	// A second query: just the A->B, A->C prong.
	q2 := pattern.New("q2")
	a := q2.AddNode("a", "A")
	q2.AddEdge(a, q2.AddNode("b", "B"))
	q2.AddEdge(a, q2.AddNode("c", "C"))

	chosen, ok, err := SelectViews([]*pattern.Pattern{q1, q2}, vs)
	if err != nil || !ok {
		t.Fatalf("SelectViews: %v %v", ok, err)
	}
	sub := vs.Subset(chosen)
	for _, q := range []*pattern.Pattern{q1, q2} {
		if _, okC, _ := Contain(q, sub); !okC {
			t.Fatalf("chosen views %v do not contain %s", chosen, q.Name)
		}
	}
	// The Fig. 4 instance is coverable with 2 views (V5, V6); the greedy
	// two-level cover must not need more than the per-query minimum sum.
	if len(chosen) > 3 {
		t.Fatalf("selection too large: %v", chosen)
	}
}

func TestSelectViewsImpossible(t *testing.T) {
	vs := fig4Views()
	q := fig4Qs()
	z := q.AddNode("z", "Z")
	q.AddEdge(q.NodeIndex("e"), z) // E -> Z: no view mentions Z
	chosen, ok, err := SelectViews([]*pattern.Pattern{q}, vs)
	if err != nil {
		t.Fatalf("SelectViews: %v", err)
	}
	if ok {
		t.Fatalf("workload cannot be coverable")
	}
	// It still covers what it can.
	if len(chosen) == 0 {
		t.Fatalf("partial selection should not be empty")
	}
}

// TestSelectViewsRandomWorkload: glued queries are always coverable, and
// the selection stays no larger than the union of per-query minimums.
func TestSelectViewsRandomWorkload(t *testing.T) {
	labels := []string{"A", "B", "C"}
	rng := rand.New(rand.NewSource(83))
	for trial := 0; trial < 25; trial++ {
		vs := randomViews(rng, labels, false)
		var workload []*pattern.Pattern
		unionOfMin := map[int]bool{}
		for i := 0; i < 3; i++ {
			q := glueContainedQuery(rng, vs, rng.Intn(2))
			if q == nil {
				continue
			}
			workload = append(workload, q)
			mnm, _, ok, _ := Minimum(q, vs)
			if !ok {
				t.Fatalf("glued query not contained")
			}
			for _, v := range mnm {
				unionOfMin[v] = true
			}
		}
		if len(workload) == 0 {
			continue
		}
		chosen, ok, err := SelectViews(workload, vs)
		if err != nil || !ok {
			t.Fatalf("trial %d: SelectViews: %v %v", trial, ok, err)
		}
		if len(chosen) > len(unionOfMin) {
			t.Fatalf("trial %d: selection %v larger than union of minimums %v",
				trial, chosen, unionOfMin)
		}
		sub := vs.Subset(chosen)
		for _, q := range workload {
			if _, okC, _ := Contain(q, sub); !okC {
				t.Fatalf("trial %d: workload query lost coverage", trial)
			}
		}
	}
}
