package core

import (
	"fmt"
	"math/rand"
	"testing"

	"graphviews/internal/graph"
	"graphviews/internal/pattern"
	"graphviews/internal/simulation"
	"graphviews/internal/view"
)

// --- Fig. 1 end-to-end golden test (Examples 1–3) ---

func fig1Instance() (*graph.Graph, *pattern.Pattern, *view.Set) {
	g := graph.New()
	for _, l := range []string{"PM", "PM", "DBA", "DBA", "DBA", "PRG", "PRG", "PRG", "BA", "ST"} {
		g.AddNode(l)
	}
	for _, e := range [][2]graph.NodeID{
		{0, 2}, {1, 2}, {0, 5}, {1, 7},
		{3, 6}, {2, 6}, {4, 7},
		{5, 3}, {6, 4}, {6, 2}, {7, 2},
	} {
		g.AddEdge(e[0], e[1])
	}

	q := pattern.New("Qs")
	pm := q.AddNode("pm", "PM")
	dba1 := q.AddNode("dba1", "DBA")
	prg1 := q.AddNode("prg1", "PRG")
	dba2 := q.AddNode("dba2", "DBA")
	prg2 := q.AddNode("prg2", "PRG")
	q.AddEdge(pm, dba1)
	q.AddEdge(pm, prg2)
	q.AddEdge(dba1, prg1)
	q.AddEdge(prg1, dba2)
	q.AddEdge(dba2, prg2)
	q.AddEdge(prg2, dba1)

	v1 := pattern.New("V1")
	p1 := v1.AddNode("pm", "PM")
	v1.AddEdge(p1, v1.AddNode("dba", "DBA"))
	v1.AddEdge(p1, v1.AddNode("prg", "PRG"))

	v2 := pattern.New("V2")
	d2 := v2.AddNode("dba", "DBA")
	r2 := v2.AddNode("prg", "PRG")
	v2.AddEdge(d2, r2)
	v2.AddEdge(r2, d2)

	return g, q, view.NewSet(view.Define("", v1), view.Define("", v2))
}

// TestExample3AndMatchJoinFig1: Qs ⊑ {V1,V2} and MatchJoin reproduces the
// Example 2 result exactly.
func TestExample3AndMatchJoinFig1(t *testing.T) {
	g, q, vs := fig1Instance()
	l, ok, err := Contain(q, vs)
	if err != nil || !ok {
		t.Fatalf("Example 3: Qs ⊑ V expected, got %v %v", ok, err)
	}
	x := view.Materialize(g, vs)
	got, _ := MatchJoin(q, x, l)
	want := simulation.Simulate(g, q)
	if !got.Equal(want) {
		t.Fatalf("MatchJoin != Match on Fig. 1\ngot:  %v\nwant: %v", got, want)
	}
	// Spot-check against the Example 2 table.
	if !got.Edges[0].Has(0, 2) || !got.Edges[0].Has(1, 2) || got.Edges[0].Len() != 2 {
		t.Fatalf("(PM,DBA1) = %v", got.Edges[0].Pairs)
	}
}

// --- Fig. 3 golden test (Example 4) ---

func fig3Instance() (*graph.Graph, *pattern.Pattern, *view.Set) {
	g := graph.New()
	for _, l := range []string{"PM", "AI", "AI", "DB", "DB", "SE", "SE", "Bio"} {
		g.AddNode(l)
	}
	for _, e := range [][2]graph.NodeID{
		{0, 1}, {0, 2}, {2, 7}, {3, 2}, {4, 1}, {1, 5}, {2, 6}, {5, 4}, {6, 3}, {5, 7},
	} {
		g.AddEdge(e[0], e[1])
	}

	q := pattern.New("Qs3")
	pm := q.AddNode("pm", "PM")
	ai := q.AddNode("ai", "AI")
	bio := q.AddNode("bio", "Bio")
	db := q.AddNode("db", "DB")
	se := q.AddNode("se", "SE")
	q.AddEdge(pm, ai)  // 0
	q.AddEdge(ai, bio) // 1
	q.AddEdge(db, ai)  // 2
	q.AddEdge(ai, se)  // 3
	q.AddEdge(se, db)  // 4

	v1 := pattern.New("V1") // AI->Bio (e1), PM->AI (e2)
	ai1 := v1.AddNode("ai", "AI")
	v1.AddEdge(ai1, v1.AddNode("bio", "Bio"))
	v1.AddEdge(v1.AddNode("pm", "PM"), ai1)

	v2 := pattern.New("V2") // DB->AI, AI->SE, SE->DB (cycle)
	db2 := v2.AddNode("db", "DB")
	ai2 := v2.AddNode("ai", "AI")
	se2 := v2.AddNode("se", "SE")
	v2.AddEdge(db2, ai2)
	v2.AddEdge(ai2, se2)
	v2.AddEdge(se2, db2)

	return g, q, view.NewSet(view.Define("", v1), view.Define("", v2))
}

// TestExample4MatchJoin verifies the Fig. 3 walkthrough: the merged views
// contain the invalid matches (AI1,SE1), (DB2,AI1), (SE1,DB2) which the
// fixpoint removes, yielding the Example 4 table.
func TestExample4MatchJoin(t *testing.T) {
	g, q, vs := fig3Instance()
	l, ok, err := Contain(q, vs)
	if err != nil || !ok {
		t.Fatalf("Qs3 ⊑ {V1,V2} expected: %v %v", ok, err)
	}
	x := view.Materialize(g, vs)

	// The raw view extensions do hold the to-be-removed matches.
	v2res := x.Exts[1].Result
	if !v2res.Edges[1].Has(1, 5) { // (AI1,SE1) ∈ Se4
		t.Fatalf("V2(G) missing (AI1,SE1): %v", v2res.Edges[1].Pairs)
	}
	if !v2res.Edges[0].Has(4, 1) { // (DB2,AI1) ∈ Se3
		t.Fatalf("V2(G) missing (DB2,AI1): %v", v2res.Edges[0].Pairs)
	}

	got, st := MatchJoin(q, x, l)
	want := simulation.Simulate(g, q)
	if !got.Equal(want) {
		t.Fatalf("MatchJoin != Match on Fig. 3\ngot:  %v\nwant: %v", got, want)
	}
	// Exactly the three invalid matches are removed.
	if st.PairKills != 3 {
		t.Fatalf("PairKills = %d, want 3 ((AI1,SE1),(DB2,AI1),(SE1,DB2))", st.PairKills)
	}
	if got.Edges[3].Has(1, 5) || got.Edges[2].Has(4, 1) || got.Edges[4].Has(5, 4) {
		t.Fatalf("invalid matches survived: %v", got)
	}
}

// --- randomized equivalence: the core of Theorem 1 ---

// glueContainedQuery builds a query that is contained in vs by
// construction: it copies whole view patterns, gluing them at
// condition-equivalent nodes, skipping glue attempts that would duplicate
// edges (see DESIGN.md §2). Returns nil when gluing failed to produce a
// connected multi-view query.
func glueContainedQuery(rng *rand.Rand, vs *view.Set, glues int) *pattern.Pattern {
	base := vs.Defs[rng.Intn(vs.Card())].Pattern
	q := pattern.New("q")
	for _, n := range base.Nodes {
		q.AddNode("", n.Label, n.Preds...)
	}
	for _, e := range base.Edges {
		q.AddBoundedEdge(e.From, e.To, e.Bound)
	}
	for g := 0; g < glues; g++ {
		w := vs.Defs[rng.Intn(vs.Card())].Pattern
		// Candidate glue points: (view node, query node) with equivalent
		// conditions.
		type gp struct{ vx, qu int }
		var cands []gp
		for vx := range w.Nodes {
			for qu := range q.Nodes {
				if pattern.NodeConditionsEquivalent(&w.Nodes[vx], &q.Nodes[qu]) {
					cands = append(cands, gp{vx, qu})
				}
			}
		}
		if len(cands) == 0 {
			continue
		}
		pick := cands[rng.Intn(len(cands))]
		// Map view nodes: glue point to the query node, others fresh.
		m := make([]int, len(w.Nodes))
		added := 0
		for vx := range w.Nodes {
			if vx == pick.vx {
				m[vx] = pick.qu
			} else {
				m[vx] = len(q.Nodes) + added
				added++
			}
		}
		// Abort the attempt if any copied edge already exists.
		conflict := false
		for _, e := range w.Edges {
			from, to := m[e.From], m[e.To]
			if from < len(q.Nodes) && to < len(q.Nodes) {
				for _, qe := range q.Edges {
					if qe.From == from && qe.To == to {
						conflict = true
					}
				}
			}
		}
		if conflict {
			continue
		}
		for vx, n := range w.Nodes {
			if vx != pick.vx {
				q.AddNode("", n.Label, append([]pattern.Predicate(nil), n.Preds...)...)
			}
		}
		for _, e := range w.Edges {
			q.AddBoundedEdge(m[e.From], m[e.To], e.Bound)
		}
	}
	if err := q.Validate(); err != nil {
		return nil
	}
	return q
}

func randomViews(rng *rand.Rand, labels []string, bounded bool) *view.Set {
	var defs []*view.Definition
	nViews := 3 + rng.Intn(3)
	for i := 0; i < nViews; i++ {
		p := pattern.New(fmt.Sprintf("v%d", i))
		pn := 2 + rng.Intn(2)
		for j := 0; j < pn; j++ {
			p.AddNode("", labels[rng.Intn(len(labels))])
		}
		for j := 1; j < pn; j++ {
			k := rng.Intn(j)
			if rng.Intn(2) == 0 {
				p.AddEdge(k, j)
			} else {
				p.AddEdge(j, k)
			}
		}
		if bounded {
			for k := range p.Edges {
				if rng.Intn(5) == 0 {
					p.Edges[k].Bound = pattern.Unbounded
				} else {
					p.Edges[k].Bound = pattern.Bound(1 + rng.Intn(3))
				}
			}
		}
		defs = append(defs, view.Define("", p))
	}
	return view.NewSet(defs...)
}

func randomDataGraph(rng *rand.Rand, labels []string) *graph.Graph {
	n := 6 + rng.Intn(14)
	g := graph.New()
	for i := 0; i < n; i++ {
		g.AddNode(labels[rng.Intn(len(labels))])
	}
	m := rng.Intn(4 * n)
	for i := 0; i < m; i++ {
		g.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)))
	}
	return g
}

// TestTheorem1Plain: whenever Contain holds, MatchJoin (all variants)
// computes exactly Qs(G), across random instances.
func TestTheorem1Plain(t *testing.T) {
	labels := []string{"A", "B", "C"}
	rng := rand.New(rand.NewSource(41))
	tested := 0
	for trial := 0; trial < 300 && tested < 120; trial++ {
		vs := randomViews(rng, labels, false)
		q := glueContainedQuery(rng, vs, rng.Intn(3))
		if q == nil {
			continue
		}
		l, ok, err := Contain(q, vs)
		if err != nil {
			t.Fatalf("Contain: %v", err)
		}
		if !ok {
			t.Fatalf("trial %d: glued query should be contained\nq: %s", trial, q)
		}
		g := randomDataGraph(rng, labels)
		x := view.Materialize(g, vs)
		want := simulation.Simulate(g, q)

		got, _ := MatchJoin(q, x, l)
		if !got.Equal(want) {
			t.Fatalf("trial %d: MatchJoin != Match\nq: %s\ngot:  %v\nwant: %v", trial, q, got, want)
		}
		gotR, _ := MatchJoinRanked(q, x, l)
		if !gotR.Equal(want) {
			t.Fatalf("trial %d: MatchJoinRanked != Match\nq: %s", trial, q)
		}
		gotN, _ := MatchJoinNaive(q, x, l)
		if !gotN.Equal(want) {
			t.Fatalf("trial %d: MatchJoinNaive != Match\nq: %s", trial, q)
		}
		tested++
	}
	if tested < 50 {
		t.Fatalf("only %d usable trials", tested)
	}
}

// TestTheorem1Bounded: the same equivalence for bounded patterns,
// including recorded distances (BMatchJoin vs BMatch).
func TestTheorem1Bounded(t *testing.T) {
	labels := []string{"A", "B", "C"}
	rng := rand.New(rand.NewSource(43))
	tested := 0
	for trial := 0; trial < 400 && tested < 100; trial++ {
		vs := randomViews(rng, labels, true)
		q := glueContainedQuery(rng, vs, rng.Intn(3))
		if q == nil {
			continue
		}
		l, ok, err := BContain(q, vs)
		if err != nil {
			t.Fatalf("BContain: %v", err)
		}
		if !ok {
			t.Fatalf("trial %d: glued bounded query should be contained\nq: %s", trial, q)
		}
		g := randomDataGraph(rng, labels)
		x := view.Materialize(g, vs)
		want := simulation.SimulateBounded(g, q)

		got, _ := BMatchJoin(q, x, l)
		if !got.Equal(want) {
			t.Fatalf("trial %d: BMatchJoin != BMatch\nq: %s\ngot:  %v\nwant: %v", trial, q, got, want)
		}
		gotR, _ := MatchJoinRanked(q, x, l)
		if !gotR.Equal(want) {
			t.Fatalf("trial %d: ranked variant differs on bounded pattern\nq: %s", trial, q)
		}
		gotN, _ := MatchJoinNaive(q, x, l)
		if !gotN.Equal(want) {
			t.Fatalf("trial %d: naive variant differs on bounded pattern\nq: %s", trial, q)
		}
		tested++
	}
	if tested < 40 {
		t.Fatalf("only %d usable trials", tested)
	}
}

// TestAnswerStrategies: Answer with minimal/minimum subsets still matches
// the direct result; not-contained queries report ErrNotContained.
func TestAnswerStrategies(t *testing.T) {
	labels := []string{"A", "B", "C"}
	rng := rand.New(rand.NewSource(47))
	tested := 0
	for trial := 0; trial < 200 && tested < 60; trial++ {
		vs := randomViews(rng, labels, false)
		q := glueContainedQuery(rng, vs, 1+rng.Intn(2))
		if q == nil {
			continue
		}
		g := randomDataGraph(rng, labels)
		x := view.Materialize(g, vs)
		want := simulation.Simulate(g, q)
		for _, s := range []Strategy{UseAll, UseMinimal, UseMinimum} {
			got, used, err := Answer(q, x, s)
			if err != nil {
				t.Fatalf("Answer(%v): %v", s, err)
			}
			if !got.Equal(want) {
				t.Fatalf("trial %d: Answer(%v) mismatch\nq: %s", trial, s, q)
			}
			if len(used) == 0 {
				t.Fatalf("Answer used no views")
			}
		}
		tested++
	}
	if tested < 30 {
		t.Fatalf("only %d usable trials", tested)
	}
}

func TestAnswerNotContained(t *testing.T) {
	g := graph.New()
	g.AddNode("A")
	g.AddNode("Z")
	g.AddEdge(0, 1)
	v := pattern.New("v")
	v.AddEdge(v.AddNode("a", "A"), v.AddNode("b", "B"))
	vs := view.NewSet(view.Define("", v))
	x := view.Materialize(g, vs)

	q := pattern.New("q")
	q.AddEdge(q.AddNode("a", "A"), q.AddNode("z", "Z"))
	if _, _, err := Answer(q, x, UseAll); err != ErrNotContained {
		t.Fatalf("want ErrNotContained, got %v", err)
	}
}

// TestLemma2PathPattern: for a path (DAG) pattern, the ranked variant
// scans each match set exactly once.
func TestLemma2PathPattern(t *testing.T) {
	labels := []string{"A", "B", "C", "D"}
	// Path view/query: A -> B -> C -> D as one view; query = same.
	p := pattern.New("path")
	prev := p.AddNode("", labels[0])
	for i := 1; i < 4; i++ {
		cur := p.AddNode("", labels[i])
		p.AddEdge(prev, cur)
		cur2 := cur
		prev = cur2
	}
	vs := view.NewSet(view.Define("v", p.Clone()))
	rng := rand.New(rand.NewSource(53))
	g := randomDataGraph(rng, labels)
	l, ok, err := Contain(p, vs)
	if err != nil || !ok {
		t.Fatalf("path ⊑ {itself} must hold: %v %v", ok, err)
	}
	x := view.Materialize(g, vs)
	_, st := MatchJoinRanked(p, x, l)
	if st.EdgeScans > len(p.Edges) {
		t.Fatalf("Lemma 2 violated on a path pattern: %d scans for %d edges", st.EdgeScans, len(p.Edges))
	}
}

// TestNaiveDoesMoreScansOnCycles: sanity for the Exp-2 ablation metric —
// on a cyclic pattern where invalid matches cascade, the naive variant
// needs at least as many scans as the ranked one.
func TestNaiveDoesMoreScansOnCycles(t *testing.T) {
	g, q, vs := fig3Instance()
	l, _, _ := Contain(q, vs)
	x := view.Materialize(g, vs)
	_, stR := MatchJoinRanked(q, x, l)
	_, stN := MatchJoinNaive(q, x, l)
	if stN.EdgeScans < stR.EdgeScans {
		t.Fatalf("naive scans (%d) < ranked scans (%d)?", stN.EdgeScans, stR.EdgeScans)
	}
	if stN.EdgeScans < 2*len(q.Edges) {
		t.Fatalf("naive should need at least two passes, got %d scans", stN.EdgeScans)
	}
}

// TestMatchJoinEmptyWhenViewEmpty: a contained query over a graph where a
// needed view has no matches yields ∅, like direct evaluation.
func TestMatchJoinEmptyWhenViewEmpty(t *testing.T) {
	g := graph.New()
	g.AddNode("A") // no edges at all
	v := pattern.New("v")
	v.AddEdge(v.AddNode("a", "A"), v.AddNode("b", "B"))
	vs := view.NewSet(view.Define("", v))
	x := view.Materialize(g, vs)
	q := v.Clone()
	l, ok, _ := Contain(q, vs)
	if !ok {
		t.Fatalf("q ⊑ {q} must hold")
	}
	res, _ := MatchJoin(q, x, l)
	if res.Matched {
		t.Fatalf("expected ∅")
	}
	want := simulation.Simulate(g, q)
	if !res.Equal(want) {
		t.Fatalf("∅ results should agree")
	}
}
