package core

import (
	"math/rand"
	"testing"

	"graphviews/internal/pattern"
	"graphviews/internal/simulation"
	"graphviews/internal/view"
)

// TestPartialExactWhenContained: a contained query's partial answer is
// the exact answer.
func TestPartialExactWhenContained(t *testing.T) {
	g, q, vs := fig1Instance()
	x := view.Materialize(g, vs)
	pa, err := AnswerPartial(q, x)
	if err != nil {
		t.Fatalf("AnswerPartial: %v", err)
	}
	if !pa.Exact {
		t.Fatalf("Fig. 1 query is contained; partial answer should be exact")
	}
	want := simulation.Simulate(g, q)
	if !pa.Result.Equal(want) {
		t.Fatalf("exact partial answer != direct evaluation")
	}
}

// TestPartialCoverage: with one query edge uncoverable, the partial
// answer covers the rest and its sets are sound upper bounds.
func TestPartialCoverage(t *testing.T) {
	g, q, vs := fig1Instance()
	// Extend the query with an edge no view covers: PRG -> ST.
	st := q.AddNode("st", "ST")
	q.AddEdge(q.NodeIndex("prg1"), st)
	// G needs ST edges from every PRG so the collaboration cycle survives
	// and the true answer stays nonempty: Dan/Pat/Bill -> Emmy2.
	emmy := g.AddNode("ST")
	g.AddEdge(5, emmy)
	g.AddEdge(6, emmy)
	g.AddEdge(7, emmy)

	x := view.Materialize(g, vs)
	if _, ok, _ := Contain(q, vs); ok {
		t.Fatalf("extended query must not be contained")
	}
	pa, err := AnswerPartial(q, x)
	if err != nil {
		t.Fatalf("AnswerPartial: %v", err)
	}
	if pa.Exact {
		t.Fatalf("partial answer claims exactness")
	}
	covered := 0
	for _, c := range pa.Covered {
		if c {
			covered++
		}
	}
	if covered != len(q.Edges)-1 {
		t.Fatalf("covered %d of %d edges, want all but one", covered, len(q.Edges))
	}
	if pa.Covered[len(q.Edges)-1] {
		t.Fatalf("the PRG->ST edge cannot be covered")
	}

	// Soundness: true match sets ⊆ partial sets on covered edges.
	want := simulation.Simulate(g, q)
	if !want.Matched {
		t.Fatalf("true answer should be nonempty")
	}
	for qi := range q.Edges {
		if !pa.Covered[qi] {
			continue
		}
		for _, pr := range want.Edges[qi].Pairs {
			if !pa.Result.Edges[qi].Has(pr.Src, pr.Dst) {
				t.Fatalf("partial answer lost true match %v on edge %d", pr, qi)
			}
		}
	}
}

// TestPartialSoundnessRandom: on random uncontained instances, the
// partial answer is always a superset of the truth on covered edges.
func TestPartialSoundnessRandom(t *testing.T) {
	labels := []string{"A", "B", "C"}
	rng := rand.New(rand.NewSource(79))
	tested := 0
	for trial := 0; trial < 300 && tested < 80; trial++ {
		vs := randomViews(rng, labels, false)
		// A fully random query: usually not contained.
		g := randomDataGraph(rng, labels)
		q := randomQueryPattern(rng, labels)
		if q == nil {
			continue
		}
		x := view.Materialize(g, vs)
		pa, err := AnswerPartial(q, x)
		if err != nil {
			continue // e.g. single-node query rejected
		}
		want := simulation.Simulate(g, q)
		if !want.Matched {
			tested++
			continue // nothing to check: truth is empty, superset trivial
		}
		for qi := range q.Edges {
			if !pa.Covered[qi] {
				continue
			}
			if !pa.Result.Matched {
				t.Fatalf("trial %d: partial claims ∅ but truth is nonempty", trial)
			}
			for _, pr := range want.Edges[qi].Pairs {
				if !pa.Result.Edges[qi].Has(pr.Src, pr.Dst) {
					t.Fatalf("trial %d: partial lost true match %v on covered edge %d\nq: %s",
						trial, pr, qi, q)
				}
			}
		}
		tested++
	}
	if tested < 40 {
		t.Fatalf("only %d usable trials", tested)
	}
}

// randomQueryPattern builds a small random connected plain pattern.
func randomQueryPattern(rng *rand.Rand, labels []string) *pattern.Pattern {
	pn := 2 + rng.Intn(3)
	p := pattern.New("q")
	for i := 0; i < pn; i++ {
		p.AddNode("", labels[rng.Intn(len(labels))])
	}
	for i := 1; i < pn; i++ {
		j := rng.Intn(i)
		if rng.Intn(2) == 0 {
			p.AddEdge(j, i)
		} else {
			p.AddEdge(i, j)
		}
	}
	if err := p.Validate(); err != nil {
		return nil
	}
	return p
}
