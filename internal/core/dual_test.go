package core

import (
	"math/rand"
	"testing"

	"graphviews/internal/pattern"
	"graphviews/internal/simulation"
	"graphviews/internal/view"
)

// TestDualContainBasics: a view identical to the query contains it under
// dual semantics; an unrelated view does not.
func TestDualContainBasics(t *testing.T) {
	q := pattern.New("q")
	q.AddEdge(q.AddNode("a", "A"), q.AddNode("b", "B"))

	same := view.NewSet(view.Define("v", q.Clone()))
	if _, ok, err := DualContain(q, same); err != nil || !ok {
		t.Fatalf("q ⊑dual {q}: %v %v", ok, err)
	}

	other := pattern.New("o")
	other.AddEdge(other.AddNode("x", "X"), other.AddNode("y", "Y"))
	if _, ok, _ := DualContain(q, view.NewSet(view.Define("o", other))); ok {
		t.Fatalf("unrelated view cannot contain q")
	}
}

// TestDualContainBackwardSensitive: dual simulation's backward condition
// makes a view with an extra in-edge on a shared node non-matching.
func TestDualContainBackwardSensitive(t *testing.T) {
	// q: A -> B. view: A -> B, C -> B. Under plain simulation the view
	// still maps into q?? No: plain simulation of the view over q also
	// requires a C node. Use the reverse: view A -> B; query A -> B plus
	// C -> B. The view match under dual simulation must still cover
	// (A,B) — but B in q has an extra in-edge from C the view does not
	// require, which dual simulation of the VIEW over q tolerates (the
	// view's B has in-degree requirements satisfied by q's A -> B edge).
	q := pattern.New("q")
	a := q.AddNode("a", "A")
	b := q.AddNode("b", "B")
	c := q.AddNode("c", "C")
	q.AddEdge(a, b)
	q.AddEdge(c, b)

	v := pattern.New("v")
	v.AddEdge(v.AddNode("a", "A"), v.AddNode("b", "B"))
	v2 := pattern.New("v2")
	v2.AddEdge(v2.AddNode("c", "C"), v2.AddNode("b", "B"))

	l, ok, err := DualContain(q, view.NewSet(view.Define("v", v), view.Define("v2", v2)))
	if err != nil || !ok {
		t.Fatalf("both edges covered: %v %v", ok, err)
	}
	if len(l.PerEdge[0]) == 0 || len(l.PerEdge[1]) == 0 {
		t.Fatalf("λ incomplete: %v", l.PerEdge)
	}
}

// TestDualContainRejectsBounded: dual containment is plain-pattern only.
func TestDualContainRejectsBounded(t *testing.T) {
	q := pattern.New("q")
	q.AddBoundedEdge(q.AddNode("a", "A"), q.AddNode("b", "B"), 2)
	vs := view.NewSet(view.Define("v", q.Clone()))
	if _, _, err := DualContain(q, vs); err == nil {
		t.Fatalf("bounded dual containment should be rejected")
	}
}

// TestDualTheorem1: whenever DualContain holds, DualMatchJoin over
// dual-materialized views equals direct dual simulation.
func TestDualTheorem1(t *testing.T) {
	labels := []string{"A", "B", "C"}
	rng := rand.New(rand.NewSource(61))
	tested := 0
	for trial := 0; trial < 300 && tested < 80; trial++ {
		vs := randomViews(rng, labels, false)
		q := glueContainedQuery(rng, vs, rng.Intn(3))
		if q == nil {
			continue
		}
		l, ok, err := DualContain(q, vs)
		if err != nil {
			t.Fatalf("DualContain: %v", err)
		}
		if !ok {
			// Unlike plain simulation, gluing does guarantee dual
			// containment (the copy map preserves both directions), so
			// this should not happen.
			t.Fatalf("trial %d: glued query not dual-contained\nq: %s", trial, q)
		}
		g := randomDataGraph(rng, labels)
		x := view.MaterializeDual(g, vs)
		want := simulation.SimulateDual(g, q)
		got, _ := DualMatchJoin(q, x, l)
		if !got.Equal(want) {
			t.Fatalf("trial %d: DualMatchJoin != SimulateDual\nq: %s\ngot:  %v\nwant: %v",
				trial, q, got, want)
		}
		tested++
	}
	if tested < 40 {
		t.Fatalf("only %d usable trials", tested)
	}
}

// TestDualMatchJoinStricterThanPlain: dual results are subsets of plain
// results on the same instance.
func TestDualMatchJoinStricterThanPlain(t *testing.T) {
	labels := []string{"A", "B"}
	rng := rand.New(rand.NewSource(67))
	for trial := 0; trial < 40; trial++ {
		vs := randomViews(rng, labels, false)
		q := glueContainedQuery(rng, vs, 1)
		if q == nil {
			continue
		}
		g := randomDataGraph(rng, labels)
		lp, okP, _ := Contain(q, vs)
		ld, okD, _ := DualContain(q, vs)
		if !okP || !okD {
			continue
		}
		plain, _ := MatchJoin(q, view.Materialize(g, vs), lp)
		dual, _ := DualMatchJoin(q, view.MaterializeDual(g, vs), ld)
		if !dual.Matched {
			continue
		}
		if !plain.Matched {
			t.Fatalf("trial %d: dual matched but plain did not", trial)
		}
		for ei := range dual.Edges {
			for _, pr := range dual.Edges[ei].Pairs {
				if !plain.Edges[ei].Has(pr.Src, pr.Dst) {
					t.Fatalf("trial %d: dual pair %v missing from plain result", trial, pr)
				}
			}
		}
	}
}
