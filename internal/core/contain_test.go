package core

import (
	"testing"

	"graphviews/internal/pattern"
	"graphviews/internal/view"
)

// fig4Qs builds the Fig. 4 query: edges (A,B),(A,C),(B,D),(C,D),(B,E).
// Edge indices: 0:(A,B) 1:(A,C) 2:(B,D) 3:(C,D) 4:(B,E).
func fig4Qs() *pattern.Pattern {
	p := pattern.New("Qs")
	a := p.AddNode("a", "A")
	b := p.AddNode("b", "B")
	c := p.AddNode("c", "C")
	d := p.AddNode("d", "D")
	e := p.AddNode("e", "E")
	p.AddEdge(a, b)
	p.AddEdge(a, c)
	p.AddEdge(b, d)
	p.AddEdge(c, d)
	p.AddEdge(b, e)
	return p
}

// fig4Views builds V1..V7 of Fig. 4 (indices 0..6).
func fig4Views() *view.Set {
	v1 := pattern.New("V1") // C -> D
	v1.AddEdge(v1.AddNode("c", "C"), v1.AddNode("d", "D"))

	v2 := pattern.New("V2") // B -> E
	v2.AddEdge(v2.AddNode("b", "B"), v2.AddNode("e", "E"))

	v3 := pattern.New("V3") // A -> B, A -> C
	a3 := v3.AddNode("a", "A")
	v3.AddEdge(a3, v3.AddNode("b", "B"))
	v3.AddEdge(a3, v3.AddNode("c", "C"))

	v4 := pattern.New("V4") // B -> D, C -> D
	d4 := -1
	b4 := v4.AddNode("b", "B")
	c4 := v4.AddNode("c", "C")
	d4 = v4.AddNode("d", "D")
	v4.AddEdge(b4, d4)
	v4.AddEdge(c4, d4)

	v5 := pattern.New("V5") // B -> D, B -> E
	b5 := v5.AddNode("b", "B")
	v5.AddEdge(b5, v5.AddNode("d", "D"))
	v5.AddEdge(b5, v5.AddNode("e", "E"))

	v6 := pattern.New("V6") // A -> B, A -> C, C -> D
	a6 := v6.AddNode("a", "A")
	b6 := v6.AddNode("b", "B")
	c6 := v6.AddNode("c", "C")
	d6 := v6.AddNode("d", "D")
	v6.AddEdge(a6, b6)
	v6.AddEdge(a6, c6)
	v6.AddEdge(c6, d6)

	v7 := pattern.New("V7") // A -> B, A -> C, B -> D
	a7 := v7.AddNode("a", "A")
	b7 := v7.AddNode("b", "B")
	c7 := v7.AddNode("c", "C")
	d7 := v7.AddNode("d", "D")
	v7.AddEdge(a7, b7)
	v7.AddEdge(a7, c7)
	v7.AddEdge(b7, d7)

	return view.NewSet(
		view.Define("", v1), view.Define("", v2), view.Define("", v3),
		view.Define("", v4), view.Define("", v5), view.Define("", v6),
		view.Define("", v7),
	)
}

// TestExample5ViewMatches pins the M^Qs_Vi table of Example 5.
func TestExample5ViewMatches(t *testing.T) {
	q := fig4Qs()
	vs := fig4Views()
	want := [][]int{
		{3},       // V1: {(C,D)}
		{4},       // V2: {(B,E)}
		{0, 1},    // V3: {(A,B),(A,C)}
		{2, 3},    // V4: {(B,D),(C,D)}
		{2, 4},    // V5: {(B,D),(B,E)}
		{0, 1, 3}, // V6: {(A,B),(A,C),(C,D)}
		{0, 1, 2}, // V7: {(A,B),(A,C),(B,D)}
	}
	for i, d := range vs.Defs {
		vm := ComputeViewMatch(q, d)
		var got []int
		for qi, c := range vm.Covered {
			if c {
				got = append(got, qi)
			}
		}
		if len(got) != len(want[i]) {
			t.Fatalf("M^Qs_V%d = %v, want %v", i+1, got, want[i])
		}
		for j := range got {
			if got[j] != want[i][j] {
				t.Fatalf("M^Qs_V%d = %v, want %v", i+1, got, want[i])
			}
		}
	}
}

// TestExample5Contain: Qs ⊑ {V1..V7} and ⊑ {V1..V4}, but not ⊑ {V1,V2}.
func TestExample5Contain(t *testing.T) {
	q := fig4Qs()
	vs := fig4Views()
	l, ok, err := Contain(q, vs)
	if err != nil || !ok {
		t.Fatalf("Contain = %v, %v", ok, err)
	}
	// λ must cover every query edge.
	for qi, refs := range l.PerEdge {
		if len(refs) == 0 {
			t.Fatalf("λ(%d) empty", qi)
		}
	}
	_, ok, err = Contain(q, vs.Subset([]int{0, 1}))
	if err != nil || ok {
		t.Fatalf("{V1,V2} should not contain Qs: %v %v", ok, err)
	}
}

// TestExample6Minimal: minimal returns {V2,V3,V4} after eliminating V1.
func TestExample6Minimal(t *testing.T) {
	q := fig4Qs()
	vs := fig4Views()
	got, l, ok, err := Minimal(q, vs)
	if err != nil || !ok {
		t.Fatalf("Minimal failed: %v %v", ok, err)
	}
	want := []int{1, 2, 3} // V2, V3, V4 (0-based)
	if len(got) != len(want) {
		t.Fatalf("Minimal = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Minimal = %v, want %v", got, want)
		}
	}
	// λ restricted to the subset covers everything.
	for qi, refs := range l.PerEdge {
		if len(refs) == 0 {
			t.Fatalf("λ(%d) empty after Minimal", qi)
		}
		for _, r := range refs {
			if r.View != 1 && r.View != 2 && r.View != 3 {
				t.Fatalf("λ references unchosen view %d", r.View)
			}
		}
	}
}

// TestExample7Minimum: greedy picks V6 (α=0.6) then V5 (α=0.4).
func TestExample7Minimum(t *testing.T) {
	q := fig4Qs()
	vs := fig4Views()
	got, _, ok, err := Minimum(q, vs)
	if err != nil || !ok {
		t.Fatalf("Minimum failed: %v %v", ok, err)
	}
	want := []int{4, 5} // V5, V6 (0-based, sorted)
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("Minimum = %v, want %v", got, want)
	}
}

// TestMinimalIsMinimal: property — removing any chosen view breaks
// containment.
func TestMinimalIsMinimal(t *testing.T) {
	q := fig4Qs()
	vs := fig4Views()
	chosen, _, ok, _ := Minimal(q, vs)
	if !ok {
		t.Fatalf("not contained")
	}
	for drop := range chosen {
		var rest []int
		for i, v := range chosen {
			if i != drop {
				rest = append(rest, v)
			}
		}
		_, ok, err := Contain(q, vs.Subset(rest))
		if err != nil {
			t.Fatalf("Contain: %v", err)
		}
		if ok {
			t.Fatalf("dropping view %d keeps containment: subset not minimal", chosen[drop])
		}
	}
}

// TestMinimumNotLargerThanMinimal on the Fig. 4 instance (2 < 3).
func TestMinimumNotLargerThanMinimal(t *testing.T) {
	q := fig4Qs()
	vs := fig4Views()
	mnl, _, _, _ := Minimal(q, vs)
	mnm, _, _, _ := Minimum(q, vs)
	if len(mnm) > len(mnl) {
		t.Fatalf("minimum (%d) larger than minimal (%d)", len(mnm), len(mnl))
	}
}

// TestQueryContainment: the single-view special case (Corollary 4).
func TestQueryContainment(t *testing.T) {
	// Q1: A->B. Q2: A->B, A->C. Q1's edge is covered by Q2's (A,B) when
	// Q2 simulates into Q1?? No: view match of Q2 over Q1 needs every Q2
	// node to match in Q1; C has no match, so Q1 ⋢ Q2.
	q1 := pattern.New("q1")
	q1.AddEdge(q1.AddNode("a", "A"), q1.AddNode("b", "B"))
	q2 := pattern.New("q2")
	a := q2.AddNode("a", "A")
	q2.AddEdge(a, q2.AddNode("b", "B"))
	q2.AddEdge(a, q2.AddNode("c", "C"))

	ok, err := QueryContained(q1, q2)
	if err != nil {
		t.Fatalf("QueryContained: %v", err)
	}
	if ok {
		t.Fatalf("q1 should not be contained in q2 (C unmatched)")
	}
	// q2 ⊑ q1? q1 covers only (A,B); q2 also has (A,C): not contained.
	ok, _ = QueryContained(q2, q1)
	if ok {
		t.Fatalf("q2 should not be contained in q1")
	}
	// Identical patterns contain each other.
	ok, _ = QueryContained(q1, q1.Clone())
	if !ok {
		t.Fatalf("q1 ⊑ q1 must hold")
	}
}

// TestContainRejectsEdgelessPattern: single-node queries are rejected
// explicitly (DESIGN.md §2).
func TestContainRejectsEdgelessPattern(t *testing.T) {
	q := pattern.New("single")
	q.AddNode("a", "A")
	vs := fig4Views()
	if _, _, err := Contain(q, vs); err == nil {
		t.Fatalf("edge-less pattern should be rejected")
	}
}

// TestContainPredicates: node conditions must be equivalent, not merely
// implied (DESIGN.md §2.7).
func TestContainPredicates(t *testing.T) {
	q := pattern.New("q")
	u := q.AddNode("u", "user")
	v := q.AddNode("v", "video", pattern.IntPred("rate", pattern.OpGe, 4))
	q.AddEdge(u, v)

	// Same condition, written differently: rate > 3 ≡ rate >= 4.
	vEq := pattern.New("veq")
	ue := vEq.AddNode("u", "user")
	ve := vEq.AddNode("v", "video", pattern.IntPred("rate", pattern.OpGt, 3))
	vEq.AddEdge(ue, ve)

	// Strictly weaker condition: rate >= 3.
	vWeak := pattern.New("vweak")
	uw := vWeak.AddNode("u", "user")
	vw := vWeak.AddNode("v", "video", pattern.IntPred("rate", pattern.OpGe, 3))
	vWeak.AddEdge(uw, vw)

	if _, ok, _ := Contain(q, view.NewSet(view.Define("", vEq))); !ok {
		t.Fatalf("equivalent predicates should contain")
	}
	if _, ok, _ := Contain(q, view.NewSet(view.Define("", vWeak))); ok {
		t.Fatalf("weaker view predicate must not count as containment")
	}
}

// fig6Qb reconstructs the Fig. 6 bounded query (weights per DESIGN.md §3):
// same shape as Fig. 4 with fe(A,B)=2, fe(A,C)=3, fe(B,D)=3, fe(C,D)=3,
// fe(B,E)=1.
func fig6Qb() *pattern.Pattern {
	p := fig4Qs()
	p.Name = "Qb"
	bounds := []pattern.Bound{2, 3, 3, 3, 1}
	for i := range p.Edges {
		p.Edges[i].Bound = bounds[i]
	}
	return p
}

// TestExample9BoundedViewMatches: V3 = {A→B≤3, B→E≤1} covers (A,B) and
// (B,E); V7 with its C→D bound 2 < fe(C,D)=3 yields no cover for (C,D).
func TestExample9BoundedViewMatches(t *testing.T) {
	q := fig6Qb()

	v3 := pattern.New("V3")
	a := v3.AddNode("a", "A")
	b := v3.AddNode("b", "B")
	e := v3.AddNode("e", "E")
	v3.AddBoundedEdge(a, b, 3)
	v3.AddBoundedEdge(b, e, 1)
	vm3 := ComputeViewMatch(q, view.Define("", v3))
	var got []int
	for qi, c := range vm3.Covered {
		if c {
			got = append(got, qi)
		}
	}
	if len(got) != 2 || got[0] != 0 || got[1] != 4 {
		t.Fatalf("M^Qb_V3 covers %v, want [0 4] ((A,B),(B,E))", got)
	}

	v7 := pattern.New("V7")
	a7 := v7.AddNode("a", "A")
	b7 := v7.AddNode("b", "B")
	c7 := v7.AddNode("c", "C")
	d7 := v7.AddNode("d", "D")
	v7.AddBoundedEdge(a7, b7, 3)
	v7.AddBoundedEdge(a7, c7, 3)
	v7.AddBoundedEdge(c7, d7, 2) // too tight for fe(C,D)=3
	vm7 := ComputeViewMatch(q, view.Define("", v7))
	if vm7.Covered[3] {
		t.Fatalf("V7 must not cover (C,D): view bound 2 < query bound 3")
	}
}

// TestBoundedCoveringRules exercises the Leq covering rule including *.
func TestBoundedCoveringRules(t *testing.T) {
	mk := func(qb, vb pattern.Bound) bool {
		q := pattern.New("q")
		q.AddBoundedEdge(q.AddNode("a", "A"), q.AddNode("b", "B"), qb)
		v := pattern.New("v")
		v.AddBoundedEdge(v.AddNode("a", "A"), v.AddNode("b", "B"), vb)
		_, ok, err := BContain(q, view.NewSet(view.Define("", v)))
		if err != nil {
			t.Fatalf("BContain: %v", err)
		}
		return ok
	}
	cases := []struct {
		qb, vb pattern.Bound
		want   bool
	}{
		{1, 1, true},
		{2, 3, true},
		{3, 2, false},
		{2, pattern.Unbounded, true},
		{pattern.Unbounded, pattern.Unbounded, true},
		{pattern.Unbounded, 5, false},
	}
	for _, c := range cases {
		if got := mk(c.qb, c.vb); got != c.want {
			t.Errorf("query bound %s vs view bound %s: contain = %v, want %v", c.qb, c.vb, got, c.want)
		}
	}
}

// TestBMinimalBMinimum run the bounded aliases on the Fig. 6 instance with
// a generously-bounded view family.
func TestBMinimalBMinimum(t *testing.T) {
	q := fig6Qb()
	// Reuse Fig. 4's views with all bounds raised to 3 so they cover the
	// weighted query edges except (A,B) needs ≤3 ✓ and (B,E) needs ≤3 ✓.
	base := fig4Views()
	var defs []*view.Definition
	for _, d := range base.Defs {
		defs = append(defs, view.Define(d.Name, d.Pattern.WithBounds(3)))
	}
	vs := view.NewSet(defs...)

	idx, _, ok, err := BMinimal(q, vs)
	if err != nil || !ok {
		t.Fatalf("BMinimal: %v %v", ok, err)
	}
	if len(idx) == 0 {
		t.Fatalf("BMinimal chose nothing")
	}
	mnm, _, ok, err := BMinimum(q, vs)
	if err != nil || !ok {
		t.Fatalf("BMinimum: %v %v", ok, err)
	}
	if len(mnm) > len(idx) {
		t.Fatalf("minimum %v larger than minimal %v", mnm, idx)
	}
}
