package core

// MatchJoin (Fig. 2, Section III) and BMatchJoin (Section VI-A): compute
// Qs(G) from materialized view extensions only, without touching G.
//
// Three interchangeable implementations are provided:
//
//   - MatchJoin: production engine. Support counters plus a removal
//     worklist; each pair is touched O(1) times beyond initialization.
//     MatchJoinWith is the same engine with the seeding fanned out per
//     query edge and the fixpoint parallelized per SCC of the pattern
//     (matchjoin_scc.go), byte-identical at every worker count.
//   - MatchJoinRanked: the paper's Fig. 2 with the Section III
//     "bottom-up" optimization — edges are (re)scanned in ascending rank
//     order. Its Stats expose edge-scan counts, which reproduce Lemma 2
//     (each match set of a DAG pattern is scanned at most once).
//   - MatchJoinNaive: Fig. 2 with no ordering — full passes until
//     fixpoint. This is "MatchJoin_nopt" in the Exp-2 ablation.
//
// All three accept bounded patterns: extension pairs carry their exact
// path lengths, so seeding filters each query edge's union by the query
// bound (the role the paper assigns to the distance index I(V)), after
// which the fixpoint is identical to the plain case. BMatchJoin is an
// explicit alias.
//
// The working state is dense (PR 4): node ids in [0, universe) where
// universe covers every id occurring in a seeded pair, per-edge CSR
// indexes (bySrc needs only offsets, since pairs are sorted by Src;
// byDst adds one counting-sorted index array), flat int32 support and
// failure counters, and a bitset of alive pairs — all drawn from the
// query's Scratch arenas, so a pooled engine's steady state allocates
// only the Result.

import (
	"context"
	"slices"
	"sync/atomic"

	"graphviews/internal/bitset"
	"graphviews/internal/graph"
	"graphviews/internal/par"
	"graphviews/internal/pattern"
	"graphviews/internal/simulation"
	"graphviews/internal/view"
)

// Stats reports work done by a MatchJoin run, for the optimization
// experiments (Exp-2) and the Lemma 2 test.
type Stats struct {
	// EdgeScans counts full scans over an edge's match set. For the
	// scan-based variants (MatchJoinRanked, MatchJoinNaive) this is the
	// number of Fig. 2 re-scan passes; for the support-counter engines
	// (MatchJoin, MatchJoinWith, DualMatchJoin) the cascade never
	// re-scans a set, so EdgeScans counts the seeding passes actually
	// performed — one per query edge seeded, stopping at the first edge
	// whose union came up empty.
	EdgeScans int
	// PairKills counts removed candidate pairs.
	PairKills int
	// InitialPairs counts pairs seeded from the views after bound
	// filtering and deduplication.
	InitialPairs int
}

// edgeSet is the working match set of one query edge. pairs are sorted by
// (Src, Dst) over original graph ids; lsrc/ldst carry the same pairs
// re-labeled into the query's compressed id universe [0, m) — the
// distinct ids occurring in any seeded pair, numbered in ascending
// original order (see indexEdgeSets) — which every per-node index below
// is keyed by. Compression keeps the counter arrays and universe scans
// proportional to the match sets, not to |V(G)|.
type edgeSet struct {
	pairs []simulation.Pair
	dists []int32
	lsrc  []int32    // lsrc[i]: compressed id of pairs[i].Src (ascending)
	ldst  []int32    // ldst[i]: compressed id of pairs[i].Dst
	alive bitset.Set // bit i: pair i not yet killed
	nAliv int
	// bySrcOff[v], bySrcOff[v+1]: pairs with compressed Src v occupy
	// exactly the index range [bySrcOff[v], bySrcOff[v+1]) — sorting by
	// Src makes a separate index array unnecessary.
	bySrcOff []int32
	// byDstOff/byDstIdx: pairs with compressed Dst v are
	// byDstIdx[byDstOff[v]:byDstOff[v+1]], ascending (counting sort is
	// stable).
	byDstOff []int32
	byDstIdx []int32
	// srcCount[v] = number of alive pairs with compressed Src v.
	srcCount []int32
}

func (es *edgeSet) kill(i int32) bool {
	if !es.alive.TestAndClear(int(i)) {
		return false
	}
	es.nAliv--
	return true
}

// srcRange returns the pair-index range with Src v.
func (es *edgeSet) srcRange(v graph.NodeID) (int32, int32) {
	return es.bySrcOff[v], es.bySrcOff[v+1]
}

// dstPairs returns the pair indices with Dst v.
func (es *edgeSet) dstPairs(v graph.NodeID) []int32 {
	return es.byDstIdx[es.byDstOff[v]:es.byDstOff[v+1]]
}

// hasDst reports whether any pair (alive or dead) has Dst v.
func (es *edgeSet) hasDst(v int) bool {
	return es.byDstOff[v+1] > es.byDstOff[v]
}

// buildInitial seeds the per-edge sets: union over λ(e) of the referenced
// extension match sets, filtered by the query edge bound using the
// recorded pair distances, deduplicated keeping minimum distance. scans
// is the number of seeding passes performed (see Stats.EdgeScans).
func buildInitial(q *pattern.Pattern, x *view.Extensions, l *Lambda, sc *Scratch) (sets []edgeSet, ok bool, scans int) {
	sets, ok, scans, _ = buildInitialPar(context.Background(), q, x, l, 1, sc)
	return sets, ok, scans
}

// buildInitialPar is buildInitial with the per-query-edge seeding — the
// union + bound filter + dedup, independent across edges — fanned out
// over up to workers goroutines. Extensions are only read; each worker
// writes its own sets slot. An empty seeded edge short-circuits: the
// sequential path returns before touching later edges, and parallel
// workers stop seeding new edges once any set comes up empty. The
// reported scan count is canonical — edges up to and including the first
// empty one — so it is identical at every worker count even though
// parallel workers may seed a few extra edges speculatively.
//
// The sequential path draws pair buffers from the scratch arenas; the
// parallel path seeds from the heap (arenas are single-goroutine).
func buildInitialPar(ctx context.Context, q *pattern.Pattern, x *view.Extensions, l *Lambda, workers int, sc *Scratch) ([]edgeSet, bool, int, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	sets := make([]edgeSet, len(q.Edges))
	if par.Workers(workers) <= 1 {
		for qi := range q.Edges {
			if err := ctx.Err(); err != nil {
				return nil, false, 0, err
			}
			seedEdgeSet(&sets[qi], q, x, l, qi, sc)
			if len(sets[qi].pairs) == 0 {
				return nil, false, qi + 1, nil
			}
		}
		return sets, true, len(q.Edges), nil
	}
	var dead atomic.Bool
	seeded := make([]bool, len(q.Edges))
	err := par.ForEach(ctx, workers, len(q.Edges), func(qi int) {
		if dead.Load() {
			return
		}
		seedEdgeSet(&sets[qi], q, x, l, qi, nil)
		seeded[qi] = true
		if len(sets[qi].pairs) == 0 {
			dead.Store(true)
		}
	})
	if err != nil {
		return nil, false, 0, err
	}
	if dead.Load() {
		// Some edge came up empty: Qs(G) = ∅. Workers may have skipped
		// edges after the short-circuit, so backfill in order to find the
		// first genuinely empty edge — the canonical scan count matches
		// the sequential path's exactly.
		for qi := range sets {
			if !seeded[qi] {
				seedEdgeSet(&sets[qi], q, x, l, qi, sc)
			}
			if len(sets[qi].pairs) == 0 {
				return nil, false, qi + 1, nil
			}
		}
	}
	return sets, true, len(q.Edges), nil
}

// seedEdgeSet fills one query edge's pair buffer from the extensions; an
// empty union leaves the set with no pairs, which the caller treats as
// Qs(G) = ∅. A counting pass sizes the buffer exactly, so the fill never
// reallocates; with a scratch the buffer comes from the arenas, else from
// the heap. The CSR indexes are built later by indexEdgeSets.
func seedEdgeSet(es *edgeSet, q *pattern.Pattern, x *view.Extensions, l *Lambda, qi int, sc *Scratch) {
	b := q.Edges[qi].Bound
	refs := l.PerEdge[qi]
	total := 0
	for _, ref := range refs {
		se := &x.Exts[ref.View].Result.Edges[ref.Edge]
		if b == pattern.Unbounded {
			total += len(se.Pairs)
			continue
		}
		for _, d := range se.Dists {
			if int64(d) <= int64(b) {
				total++
			}
		}
	}
	if total == 0 {
		return
	}
	var em simulation.EdgeMatches
	if sc != nil {
		// This EdgeMatches is the working set, not the answer: its
		// storage dies with the query's scratch, and finish() copies the
		// survivors into fresh heap slices before the Result escapes.
		em.Pairs = sc.pairs.MakeDirty(total)[:0] //gvcheck:owns working set; finish() copies survivors out
		em.Dists = sc.i32.MakeDirty(total)[:0]   //gvcheck:owns working set; finish() copies survivors out
	} else {
		em.Pairs = make([]simulation.Pair, 0, total)
		em.Dists = make([]int32, 0, total)
	}
	for _, ref := range refs {
		se := &x.Exts[ref.View].Result.Edges[ref.Edge]
		for j, pr := range se.Pairs {
			d := se.Dists[j]
			if b != pattern.Unbounded && int64(d) > int64(b) {
				continue
			}
			em.Pairs = append(em.Pairs, pr)
			em.Dists = append(em.Dists, d)
		}
	}
	// A single already-normalized source (the overwhelmingly common λ)
	// hits Normalize's sorted fast path and costs one linear scan.
	em.Normalize()
	es.pairs = em.Pairs
	es.dists = em.Dists
	es.nAliv = len(em.Pairs)
}

// indexEdgeSets builds the dense per-edge indexes: it first compresses
// the ids occurring in any seeded pair into the universe [0, m) —
// numbered in ascending original-id order, so every "scan compressed ids
// ascending" loop downstream still yields sorted original ids — then
// builds each edge's alive bitset, bySrc/byDst CSR offsets and source
// support counters via one counting sort per edge. Runs sequentially on
// the scratch arenas after the (possibly parallel) seeding barrier; cost
// O(Σ|Se| + |Eq|·m) plus one bitset sweep over the max original id.
// Returns m and the compressed→original id table.
func indexEdgeSets(sets []edgeSet, sc *Scratch) (int, []graph.NodeID) {
	maxID := graph.NodeID(-1)
	for qi := range sets {
		es := &sets[qi]
		if len(es.pairs) == 0 {
			continue
		}
		// pairs are sorted by Src, so the last pair carries the max Src.
		if s := es.pairs[len(es.pairs)-1].Src; s > maxID {
			maxID = s
		}
		for _, pr := range es.pairs {
			if pr.Dst > maxID {
				maxID = pr.Dst
			}
		}
	}
	present := sc.bits(int(maxID) + 1)
	for qi := range sets {
		for _, pr := range sets[qi].pairs {
			present.Set(int(pr.Src))
			present.Set(int(pr.Dst))
		}
	}
	m := present.Count()
	// remap[orig] = compressed id; only slots marked present are written,
	// and only those are ever read.
	remap := sc.i32.MakeDirty(int(maxID) + 1)
	toOrig := make([]graph.NodeID, 0, m)
	present.Iterate(func(v int) bool {
		remap[v] = int32(len(toOrig))
		toOrig = append(toOrig, graph.NodeID(v))
		return true
	})

	cur := sc.i32.MakeDirty(m)
	for qi := range sets {
		es := &sets[qi]
		n := len(es.pairs)
		es.alive = sc.bits(n)
		es.alive.SetFirst(n)
		es.nAliv = n
		es.lsrc = sc.i32.MakeDirty(n)
		es.ldst = sc.i32.MakeDirty(n)
		es.bySrcOff = sc.i32.Make(m + 1)
		es.byDstOff = sc.i32.Make(m + 1)
		es.byDstIdx = sc.i32.MakeDirty(n)
		es.srcCount = sc.i32.MakeDirty(m)
		for i := range es.pairs {
			s, d := remap[es.pairs[i].Src], remap[es.pairs[i].Dst]
			es.lsrc[i] = s
			es.ldst[i] = d
			es.bySrcOff[s+1]++
			es.byDstOff[d+1]++
		}
		for v := 0; v < m; v++ {
			es.bySrcOff[v+1] += es.bySrcOff[v]
			es.byDstOff[v+1] += es.byDstOff[v]
		}
		for v := 0; v < m; v++ {
			es.srcCount[v] = es.bySrcOff[v+1] - es.bySrcOff[v]
		}
		copy(cur, es.byDstOff[:m])
		for i := range es.ldst {
			d := es.ldst[i]
			es.byDstIdx[cur[d]] = int32(i)
			cur[d]++
		}
	}
	return m, toOrig
}

// finish assembles the Result from surviving pairs; returns ∅ when any
// edge set died. nu is the compressed universe size and toOrig the
// compressed→original table; ascending compressed scans therefore emit
// sorted original ids. The result is freshly heap-allocated — it must
// not alias scratch memory.
func finish(q *pattern.Pattern, sets []edgeSet, nu int, toOrig []graph.NodeID, sc *Scratch) *simulation.Result {
	for qi := range sets {
		if sets[qi].nAliv == 0 {
			return simulation.Empty(q)
		}
	}
	res := &simulation.Result{
		Pattern: q,
		Matched: true,
		Sim:     make([][]graph.NodeID, len(q.Nodes)),
		Edges:   make([]simulation.EdgeMatches, len(q.Edges)),
	}
	for qi := range sets {
		es := &sets[qi]
		em := &res.Edges[qi]
		em.Pairs = make([]simulation.Pair, 0, es.nAliv)
		em.Dists = make([]int32, 0, es.nAliv)
		es.alive.Iterate(func(i int) bool {
			em.Pairs = append(em.Pairs, es.pairs[i])
			em.Dists = append(em.Dists, es.dists[i])
			return true
		})
		// pairs were sorted at build time; filtering preserves order.
	}
	// Derive node match sets: for a node with out-edges, the sources
	// supported in every out-edge set (intersection — the simulation
	// condition demands a successor in each out-edge); for a sink node
	// the union of targets across its in-edge sets. The union is the
	// correct choice: simulation places no join constraint on the targets
	// of distinct in-edges, so a node matched through one in-edge need
	// not appear in another's match set (pinned by the differential sink
	// tests). Note MatchJoin sees only the views, so a sink match with no
	// incoming matched edge — which direct simulation would report in
	// Sim — cannot be recovered here; the edge match sets Qs(G) agree
	// regardless. Both derivations scan ids in ascending order, so the
	// lists come out sorted.
	for u := range q.Nodes {
		outs := q.OutEdges(u)
		list := make([]graph.NodeID, 0)
		if len(outs) > 0 {
			first := &sets[outs[0]]
			for v := 0; v < nu; v++ {
				if first.srcCount[v] <= 0 {
					continue
				}
				ok := true
				for _, ei := range outs[1:] {
					if sets[ei].srcCount[v] <= 0 {
						ok = false
						break
					}
				}
				if ok {
					list = append(list, toOrig[v])
				}
			}
		} else {
			seen := sc.bits(nu)
			for _, ei := range q.InEdges(u) {
				es := &sets[ei]
				es.alive.Iterate(func(i int) bool {
					seen.Set(int(es.ldst[i]))
					return true
				})
			}
			list = make([]graph.NodeID, 0, seen.Count())
			seen.Iterate(func(v int) bool {
				list = append(list, toOrig[v])
				return true
			})
		}
		res.Sim[u] = list
	}
	return res
}

// MatchJoin evaluates q over the extensions using λ (production engine).
// Callers obtain λ from Contain, Minimal or Minimum; extensions must
// correspond to the full view set λ was built against. This is the
// sequential reference path: one global support-counter cascade.
func MatchJoin(q *pattern.Pattern, x *view.Extensions, l *Lambda) (*simulation.Result, Stats) {
	var st Stats
	sc := new(Scratch)
	sets, ok, scans := buildInitial(q, x, l, sc)
	st.EdgeScans = scans
	if !ok {
		return simulation.Empty(q), st
	}
	for qi := range sets {
		st.InitialPairs += len(sets[qi].pairs)
	}
	nu, toOrig := indexEdgeSets(sets, sc)
	return matchJoinFixpoint(q, sets, &st, nu, toOrig, sc), st
}

// MatchJoinWith is MatchJoin with both phases parallelized over up to
// workers goroutines: the seeding (per-query-edge union and bound
// filtering over the view extensions) fans out one task per edge, and the
// removal fixpoint itself is decomposed by the pattern's SCC condensation
// into reverse-topological waves of independent components (see
// matchjoin_scc.go). Results and Stats are identical to MatchJoin's at
// every worker count. It returns ctx.Err() when cancelled during seeding
// or at a wave barrier.
func MatchJoinWith(ctx context.Context, q *pattern.Pattern, x *view.Extensions, l *Lambda, workers int) (*simulation.Result, Stats, error) {
	return MatchJoinPooled(ctx, q, x, l, workers, nil)
}

// MatchJoinPooled is MatchJoinWith drawing its working state from pool;
// see ScratchPool. A nil pool uses a transient scratch.
func MatchJoinPooled(ctx context.Context, q *pattern.Pattern, x *view.Extensions, l *Lambda, workers int, pool *ScratchPool) (*simulation.Result, Stats, error) {
	sc := pool.Get()
	defer pool.Put(sc)
	var st Stats
	sets, ok, scans, err := buildInitialPar(ctx, q, x, l, workers, sc)
	st.EdgeScans = scans
	if err != nil {
		return nil, Stats{}, err
	}
	if !ok {
		return simulation.Empty(q), st, nil
	}
	for qi := range sets {
		st.InitialPairs += len(sets[qi].pairs)
	}
	nu, toOrig := indexEdgeSets(sets, sc)
	if par.Workers(workers) <= 1 {
		// A single worker gains nothing from condensation and wave
		// bookkeeping; run the flat cascade (provably identical).
		return matchJoinFixpoint(q, sets, &st, nu, toOrig, sc), st, nil
	}
	res, err := matchJoinFixpointSCC(ctx, q, sets, &st, nu, toOrig, sc, workers)
	if err != nil {
		return nil, Stats{}, err
	}
	return res, st, nil
}

// seedNodeFailures scans the compressed universe for pattern node u and
// records its initial failure counters: for every id v that occurs in
// some incident edge set (source of an out-edge set, or target of an
// in-edge set when no out-edge has it), fails counts the out-edges in
// which v has no source pair; fails > 0 writes failCnt[u·nu+v] and
// appends the kill. Shared verbatim by the sequential cascade and the
// per-component SCC seeding (phase A) — the determinism contract
// requires both paths to seed bit-identically. Sink nodes (no
// out-edges) never fail.
func seedNodeFailures(q *pattern.Pattern, sets []edgeSet, failCnt []int32, nu, u int, work []kill) []kill {
	outs := q.OutEdges(u)
	if len(outs) == 0 {
		return work // sinks: every referenced node is valid
	}
	ins := q.InEdges(u)
	fc := failCnt[u*nu : (u+1)*nu]
	for v := 0; v < nu; v++ {
		var fails int32
		member := false
		for _, ei := range outs {
			if sets[ei].srcCount[v] == 0 {
				fails++
			} else {
				member = true
			}
		}
		if fails == 0 {
			continue
		}
		if !member {
			for _, ei := range ins {
				if sets[ei].hasDst(v) {
					member = true
					break
				}
			}
		}
		if member {
			fc[v] = fails
			work = append(work, kill{u, graph.NodeID(v)})
		}
	}
	return work
}

// matchJoinFixpoint runs the support-counter removal cascade over seeded
// edge sets (the sequential heart of Fig. 2) and assembles the result.
// The cascade always runs to its greatest fixpoint — even when an edge
// set empties along the way — so PairKills is a deterministic function of
// the seeds and matches the SCC-parallel path's count exactly.
func matchJoinFixpoint(q *pattern.Pattern, sets []edgeSet, st *Stats, nu int, toOrig []graph.NodeID, sc *Scratch) *simulation.Result {
	// failCnt[u·nu + v] = number of out-edges of pattern node u in which v
	// has no alive pair as source. A node match (u,v) is valid iff 0.
	failCnt := sc.i32.Make(len(q.Nodes) * nu)
	work := sc.takeKills()

	// Universe per node: sources of out-edge sets and targets of in-edge
	// sets. Seed failCnt and the initial kill list, in ascending rank
	// order of the owning node (bottom-up strategy).
	ranks := q.Ranks()
	order := make([]int, len(q.Nodes))
	for i := range order {
		order[i] = i
	}
	slices.SortStableFunc(order, func(a, b int) int { return ranks[a] - ranks[b] })

	for _, u := range order {
		work = seedNodeFailures(q, sets, failCnt, nu, u, work)
	}

	// Cascade: when (u,v) becomes invalid, dst-side pairs (s,v) of each
	// in-edge e=(w,u) die, reducing s's support in Se; src-side pairs die
	// silently (their removal affects no other counter).
	for len(work) > 0 {
		k := work[len(work)-1]
		work = work[:len(work)-1]
		for _, ei := range q.InEdges(k.u) {
			es := &sets[ei]
			w := q.Edges[ei].From
			fcW := failCnt[w*nu : (w+1)*nu]
			for _, i := range es.dstPairs(k.v) {
				if !es.kill(i) {
					continue
				}
				st.PairKills++
				s := es.lsrc[i]
				es.srcCount[s]--
				if es.srcCount[s] == 0 {
					fcW[s]++
					if fcW[s] == 1 {
						work = append(work, kill{w, graph.NodeID(s)})
					}
				}
			}
		}
		for _, ei := range q.OutEdges(k.u) {
			es := &sets[ei]
			lo, hi := es.srcRange(k.v)
			for i := lo; i < hi; i++ {
				if es.kill(i) {
					st.PairKills++
				}
			}
		}
	}
	sc.giveKills(work)
	return finish(q, sets, nu, toOrig, sc)
}

// BMatchJoin is MatchJoin for bounded pattern queries (Section VI-A). The
// distance filtering I(V) provides in the paper is already encoded in the
// extension pair distances, so the implementations coincide.
func BMatchJoin(q *pattern.Pattern, x *view.Extensions, l *Lambda) (*simulation.Result, Stats) {
	return MatchJoin(q, x, l)
}
