package core

// MatchJoin (Fig. 2, Section III) and BMatchJoin (Section VI-A): compute
// Qs(G) from materialized view extensions only, without touching G.
//
// Three interchangeable implementations are provided:
//
//   - MatchJoin: production engine. Support counters plus a removal
//     worklist; each pair is touched O(1) times beyond initialization.
//     MatchJoinWith is the same engine with the seeding fanned out per
//     query edge and the fixpoint parallelized per SCC of the pattern
//     (matchjoin_scc.go), byte-identical at every worker count.
//   - MatchJoinRanked: the paper's Fig. 2 with the Section III
//     "bottom-up" optimization — edges are (re)scanned in ascending rank
//     order. Its Stats expose edge-scan counts, which reproduce Lemma 2
//     (each match set of a DAG pattern is scanned at most once).
//   - MatchJoinNaive: Fig. 2 with no ordering — full passes until
//     fixpoint. This is "MatchJoin_nopt" in the Exp-2 ablation.
//
// All three accept bounded patterns: extension pairs carry their exact
// path lengths, so seeding filters each query edge's union by the query
// bound (the role the paper assigns to the distance index I(V)), after
// which the fixpoint is identical to the plain case. BMatchJoin is an
// explicit alias.

import (
	"context"
	"sort"
	"sync/atomic"

	"graphviews/internal/graph"
	"graphviews/internal/par"
	"graphviews/internal/pattern"
	"graphviews/internal/simulation"
	"graphviews/internal/view"
)

// Stats reports work done by a MatchJoin run, for the optimization
// experiments (Exp-2) and the Lemma 2 test.
type Stats struct {
	// EdgeScans counts full scans over an edge's match set. For the
	// scan-based variants (MatchJoinRanked, MatchJoinNaive) this is the
	// number of Fig. 2 re-scan passes; for the support-counter engines
	// (MatchJoin, MatchJoinWith, DualMatchJoin) the cascade never
	// re-scans a set, so EdgeScans counts the seeding passes actually
	// performed — one per query edge seeded, stopping at the first edge
	// whose union came up empty.
	EdgeScans int
	// PairKills counts removed candidate pairs.
	PairKills int
	// InitialPairs counts pairs seeded from the views after bound
	// filtering and deduplication.
	InitialPairs int
}

// edgeSet is the working match set of one query edge.
type edgeSet struct {
	pairs []simulation.Pair
	dists []int32
	alive []bool
	nAliv int
	bySrc map[graph.NodeID][]int32
	byDst map[graph.NodeID][]int32
	// srcCount[v] = number of alive pairs with Src v.
	srcCount map[graph.NodeID]int32
}

func (es *edgeSet) kill(i int32) bool {
	if !es.alive[i] {
		return false
	}
	es.alive[i] = false
	es.nAliv--
	return true
}

// buildInitial seeds the per-edge sets: union over λ(e) of the referenced
// extension match sets, filtered by the query edge bound using the
// recorded pair distances, deduplicated keeping minimum distance. scans
// is the number of seeding passes performed (see Stats.EdgeScans).
func buildInitial(q *pattern.Pattern, x *view.Extensions, l *Lambda) (sets []edgeSet, ok bool, scans int) {
	sets, ok, scans, _ = buildInitialPar(context.Background(), q, x, l, 1)
	return sets, ok, scans
}

// buildInitialPar is buildInitial with the per-query-edge seeding — the
// union + bound filter + dedup, independent across edges — fanned out
// over up to workers goroutines. Extensions are only read; each worker
// writes its own sets slot. An empty seeded edge short-circuits: the
// sequential path returns before touching later edges, and parallel
// workers stop seeding new edges once any set comes up empty. The
// reported scan count is canonical — edges up to and including the first
// empty one — so it is identical at every worker count even though
// parallel workers may seed a few extra edges speculatively.
func buildInitialPar(ctx context.Context, q *pattern.Pattern, x *view.Extensions, l *Lambda, workers int) ([]edgeSet, bool, int, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	sets := make([]edgeSet, len(q.Edges))
	if par.Workers(workers) <= 1 {
		for qi := range q.Edges {
			if err := ctx.Err(); err != nil {
				return nil, false, 0, err
			}
			seedEdgeSet(&sets[qi], q, x, l, qi)
			if len(sets[qi].pairs) == 0 {
				return nil, false, qi + 1, nil
			}
		}
		return sets, true, len(q.Edges), nil
	}
	var dead atomic.Bool
	seeded := make([]bool, len(q.Edges))
	err := par.ForEach(ctx, workers, len(q.Edges), func(qi int) {
		if dead.Load() {
			return
		}
		seedEdgeSet(&sets[qi], q, x, l, qi)
		seeded[qi] = true
		if len(sets[qi].pairs) == 0 {
			dead.Store(true)
		}
	})
	if err != nil {
		return nil, false, 0, err
	}
	if dead.Load() {
		// Some edge came up empty: Qs(G) = ∅. Workers may have skipped
		// edges after the short-circuit, so backfill in order to find the
		// first genuinely empty edge — the canonical scan count matches
		// the sequential path's exactly.
		for qi := range sets {
			if !seeded[qi] {
				seedEdgeSet(&sets[qi], q, x, l, qi)
			}
			if len(sets[qi].pairs) == 0 {
				return nil, false, qi + 1, nil
			}
		}
	}
	return sets, true, len(q.Edges), nil
}

// seedEdgeSet fills one query edge's working set from the extensions; an
// empty union leaves the set with no pairs, which the caller treats as
// Qs(G) = ∅.
func seedEdgeSet(es *edgeSet, q *pattern.Pattern, x *view.Extensions, l *Lambda, qi int) {
	b := q.Edges[qi].Bound
	var em simulation.EdgeMatches
	for _, ref := range l.PerEdge[qi] {
		src := x.Exts[ref.View].Result
		se := &src.Edges[ref.Edge]
		for j, pr := range se.Pairs {
			d := se.Dists[j]
			if b != pattern.Unbounded && int64(d) > int64(b) {
				continue
			}
			em.Pairs = append(em.Pairs, pr)
			em.Dists = append(em.Dists, d)
		}
	}
	normalizeMatches(&em)
	if len(em.Pairs) == 0 {
		return
	}
	es.pairs = em.Pairs
	es.dists = em.Dists
	es.alive = make([]bool, len(em.Pairs))
	es.nAliv = len(em.Pairs)
	es.bySrc = make(map[graph.NodeID][]int32)
	es.byDst = make(map[graph.NodeID][]int32)
	es.srcCount = make(map[graph.NodeID]int32)
	for i := range es.pairs {
		es.alive[i] = true
		s, d := es.pairs[i].Src, es.pairs[i].Dst
		es.bySrc[s] = append(es.bySrc[s], int32(i))
		es.byDst[d] = append(es.byDst[d], int32(i))
		es.srcCount[s]++
	}
}

// normalizeMatches sorts by (Src,Dst,dist) and dedups keeping min dist.
func normalizeMatches(em *simulation.EdgeMatches) {
	if len(em.Pairs) == 0 {
		return
	}
	idx := make([]int, len(em.Pairs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		pa, pb := em.Pairs[idx[a]], em.Pairs[idx[b]]
		if pa.Src != pb.Src {
			return pa.Src < pb.Src
		}
		if pa.Dst != pb.Dst {
			return pa.Dst < pb.Dst
		}
		return em.Dists[idx[a]] < em.Dists[idx[b]]
	})
	newP := make([]simulation.Pair, 0, len(em.Pairs))
	newD := make([]int32, 0, len(em.Dists))
	for _, i := range idx {
		if n := len(newP); n > 0 && newP[n-1] == em.Pairs[i] {
			continue
		}
		newP = append(newP, em.Pairs[i])
		newD = append(newD, em.Dists[i])
	}
	em.Pairs = newP
	em.Dists = newD
}

// finish assembles the Result from surviving pairs; returns ∅ when any
// edge set died.
func finish(q *pattern.Pattern, sets []edgeSet) *simulation.Result {
	for qi := range sets {
		if sets[qi].nAliv == 0 {
			return simulation.Empty(q)
		}
	}
	res := &simulation.Result{
		Pattern: q,
		Matched: true,
		Sim:     make([][]graph.NodeID, len(q.Nodes)),
		Edges:   make([]simulation.EdgeMatches, len(q.Edges)),
	}
	for qi := range sets {
		es := &sets[qi]
		em := &res.Edges[qi]
		for i := range es.pairs {
			if es.alive[i] {
				em.Pairs = append(em.Pairs, es.pairs[i])
				em.Dists = append(em.Dists, es.dists[i])
			}
		}
		// pairs were sorted at build time; filtering preserves order.
	}
	// Derive node match sets: for a node with out-edges, the sources
	// supported in every out-edge set (intersection — the simulation
	// condition demands a successor in each out-edge); for a sink node
	// the union of targets across its in-edge sets. The union is the
	// correct choice: simulation places no join constraint on the targets
	// of distinct in-edges, so a node matched through one in-edge need
	// not appear in another's match set (pinned by the differential sink
	// tests). Note MatchJoin sees only the views, so a sink match with no
	// incoming matched edge — which direct simulation would report in
	// Sim — cannot be recovered here; the edge match sets Qs(G) agree
	// regardless.
	for u := range q.Nodes {
		outs := q.OutEdges(u)
		seen := map[graph.NodeID]bool{}
		if len(outs) > 0 {
			first := &sets[outs[0]]
			for v, c := range first.srcCount {
				if c <= 0 {
					continue
				}
				ok := true
				for _, ei := range outs[1:] {
					if sets[ei].srcCount[v] <= 0 {
						ok = false
						break
					}
				}
				if ok {
					seen[v] = true
				}
			}
		} else {
			for _, ei := range q.InEdges(u) {
				es := &sets[ei]
				for i := range es.pairs {
					if es.alive[i] {
						seen[es.pairs[i].Dst] = true
					}
				}
			}
		}
		list := make([]graph.NodeID, 0, len(seen))
		for v := range seen {
			list = append(list, v)
		}
		sort.Slice(list, func(a, b int) bool { return list[a] < list[b] })
		res.Sim[u] = list
	}
	return res
}

// MatchJoin evaluates q over the extensions using λ (production engine).
// Callers obtain λ from Contain, Minimal or Minimum; extensions must
// correspond to the full view set λ was built against. This is the
// sequential reference path: one global support-counter cascade.
func MatchJoin(q *pattern.Pattern, x *view.Extensions, l *Lambda) (*simulation.Result, Stats) {
	var st Stats
	sets, ok, scans := buildInitial(q, x, l)
	st.EdgeScans = scans
	if !ok {
		return simulation.Empty(q), st
	}
	for qi := range sets {
		st.InitialPairs += len(sets[qi].pairs)
	}
	return matchJoinFixpoint(q, sets, &st), st
}

// MatchJoinWith is MatchJoin with both phases parallelized over up to
// workers goroutines: the seeding (per-query-edge union and bound
// filtering over the view extensions) fans out one task per edge, and the
// removal fixpoint itself is decomposed by the pattern's SCC condensation
// into reverse-topological waves of independent components (see
// matchjoin_scc.go). Results and Stats are identical to MatchJoin's at
// every worker count. It returns ctx.Err() when cancelled during seeding
// or at a wave barrier.
func MatchJoinWith(ctx context.Context, q *pattern.Pattern, x *view.Extensions, l *Lambda, workers int) (*simulation.Result, Stats, error) {
	var st Stats
	sets, ok, scans, err := buildInitialPar(ctx, q, x, l, workers)
	st.EdgeScans = scans
	if err != nil {
		return nil, Stats{}, err
	}
	if !ok {
		return simulation.Empty(q), st, nil
	}
	for qi := range sets {
		st.InitialPairs += len(sets[qi].pairs)
	}
	if par.Workers(workers) <= 1 {
		// A single worker gains nothing from condensation and wave
		// bookkeeping; run the flat cascade (provably identical).
		return matchJoinFixpoint(q, sets, &st), st, nil
	}
	res, err := matchJoinFixpointSCC(ctx, q, sets, &st, workers)
	if err != nil {
		return nil, Stats{}, err
	}
	return res, st, nil
}

// matchJoinFixpoint runs the support-counter removal cascade over seeded
// edge sets (the sequential heart of Fig. 2) and assembles the result.
// The cascade always runs to its greatest fixpoint — even when an edge
// set empties along the way — so PairKills is a deterministic function of
// the seeds and matches the SCC-parallel path's count exactly.
func matchJoinFixpoint(q *pattern.Pattern, sets []edgeSet, st *Stats) *simulation.Result {
	// failCnt[u][v] = number of out-edges of pattern node u in which v has
	// no alive pair as source. A node match (u,v) is valid iff 0.
	failCnt := make([]map[graph.NodeID]int32, len(q.Nodes))
	for u := range q.Nodes {
		failCnt[u] = make(map[graph.NodeID]int32)
	}
	type kill struct {
		u int
		v graph.NodeID
	}
	var work []kill

	// Universe per node: sources of out-edge sets and targets of in-edge
	// sets. Seed failCnt and the initial kill list, in ascending rank
	// order of the owning node (bottom-up strategy).
	ranks := q.Ranks()
	order := make([]int, len(q.Nodes))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return ranks[order[a]] < ranks[order[b]] })

	for _, u := range order {
		outs := q.OutEdges(u)
		if len(outs) == 0 {
			continue // sinks: every referenced node is valid
		}
		universe := map[graph.NodeID]bool{}
		for _, ei := range outs {
			for v := range sets[ei].srcCount {
				universe[v] = true
			}
		}
		for _, ei := range q.InEdges(u) {
			for v := range sets[ei].byDst {
				universe[v] = true
			}
		}
		for v := range universe {
			var fails int32
			for _, ei := range outs {
				if sets[ei].srcCount[v] == 0 {
					fails++
				}
			}
			if fails > 0 {
				failCnt[u][v] = fails
				work = append(work, kill{u, v})
			}
		}
	}

	// Cascade: when (u,v) becomes invalid, dst-side pairs (s,v) of each
	// in-edge e=(w,u) die, reducing s's support in Se; src-side pairs die
	// silently (their removal affects no other counter).
	for len(work) > 0 {
		k := work[len(work)-1]
		work = work[:len(work)-1]
		for _, ei := range q.InEdges(k.u) {
			es := &sets[ei]
			w := q.Edges[ei].From
			for _, i := range es.byDst[k.v] {
				if !es.kill(i) {
					continue
				}
				st.PairKills++
				s := es.pairs[i].Src
				es.srcCount[s]--
				if es.srcCount[s] == 0 {
					failCnt[w][s]++
					if failCnt[w][s] == 1 {
						work = append(work, kill{w, s})
					}
				}
			}
		}
		for _, ei := range q.OutEdges(k.u) {
			es := &sets[ei]
			for _, i := range es.bySrc[k.v] {
				if es.kill(i) {
					st.PairKills++
				}
			}
		}
	}
	return finish(q, sets)
}

// BMatchJoin is MatchJoin for bounded pattern queries (Section VI-A). The
// distance filtering I(V) provides in the paper is already encoded in the
// extension pair distances, so the implementations coincide.
func BMatchJoin(q *pattern.Pattern, x *view.Extensions, l *Lambda) (*simulation.Result, Stats) {
	return MatchJoin(q, x, l)
}
