// Package core implements the paper's primary contribution: pattern
// containment (Section III), the containment problems and their
// algorithms contain / minimal / minimum (Sections IV–V), the view-based
// evaluation algorithms MatchJoin and BMatchJoin (Sections III and VI-A),
// and their bounded-containment counterparts (Section VI-B).
package core

import (
	"context"
	"math"

	"graphviews/internal/par"
	"graphviews/internal/pattern"
	"graphviews/internal/view"
)

// ViewMatch is M^Qs_V (Section V-A) in indexed form: for every edge of
// the view definition, the set of query node pairs that match it when the
// query is treated as a data graph — and, derived from it, the set of
// query edges the view edge covers.
type ViewMatch struct {
	// PairsPerEdge[i] lists the (query-node, query-node) index pairs
	// matching view edge i.
	PairsPerEdge [][][2]int
	// CoversPerEdge[i] lists the query edge indices covered by view edge
	// i: pairs that are query edges whose bound fits under the view
	// edge's bound (fe(e) ≤ fVe(eV), DESIGN.md §2.6).
	CoversPerEdge [][]int
	// Covered is the union of CoversPerEdge: M^Qs_V ∩ Ep as a bitmask
	// over query edges.
	Covered []bool
}

// CoveredCount returns |M^Qs_V ∩ Ep| (the α numerator base of minimum).
func (vm *ViewMatch) CoveredCount() int {
	n := 0
	for _, c := range vm.Covered {
		if c {
			n++
		}
	}
	return n
}

// ComputeViewMatches evaluates M^Qs_V for every view of the set, one view
// per worker-pool task: each view match is independent of the others,
// which makes containment checking over large view pools scale with
// cores. Results are positionally identical to sequential computation.
func ComputeViewMatches(ctx context.Context, q *pattern.Pattern, vs *view.Set, workers int) ([]*ViewMatch, error) {
	vms := make([]*ViewMatch, vs.Card())
	// The weighted distance closure depends only on q: compute it once
	// and share it read-only across the per-view tasks.
	wdist, reach := patternDistances(q)
	err := par.ForEach(ctx, workers, vs.Card(), func(i int) {
		vms[i] = computeViewMatchFrom(q, vs.Defs[i], wdist, reach)
	})
	if err != nil {
		return nil, err
	}
	return vms, nil
}

const infWeight = math.MaxInt64 / 4

// patternDistances computes, over query pattern q treated as a weighted
// data graph (edge weight fe(e), * edges = ∞ weight per Section VI-B),
// the all-pairs minimum path weights wdist (nonempty paths; infWeight =
// none) and plain reachability reach (nonempty paths through any edges,
// used by * view bounds).
func patternDistances(q *pattern.Pattern) (wdist [][]int64, reach [][]bool) {
	n := len(q.Nodes)
	wdist = make([][]int64, n)
	reach = make([][]bool, n)
	for i := 0; i < n; i++ {
		wdist[i] = make([]int64, n)
		reach[i] = make([]bool, n)
		for j := 0; j < n; j++ {
			wdist[i][j] = infWeight
		}
	}
	for _, e := range q.Edges {
		w := int64(infWeight)
		if e.Bound != pattern.Unbounded {
			w = int64(e.Bound)
		}
		if w < wdist[e.From][e.To] {
			wdist[e.From][e.To] = w
		}
		reach[e.From][e.To] = true
	}
	// Floyd–Warshall on the tiny pattern graph. Note wdist[i][i] stays the
	// weight of the shortest nonempty cycle (or ∞), matching the
	// path-per-edge semantics: Floyd–Warshall over nonempty paths computes
	// exactly that as long as we do not seed the diagonal with 0.
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			if wdist[i][k] >= infWeight && !reach[i][k] {
				continue
			}
			for j := 0; j < n; j++ {
				if d := wdist[i][k] + wdist[k][j]; d < wdist[i][j] {
					wdist[i][j] = d
				}
				if reach[i][k] && reach[k][j] {
					reach[i][j] = true
				}
			}
		}
	}
	return wdist, reach
}

// ComputeViewMatch evaluates the view definition over the query pattern
// treated as a (weighted) data graph via bounded simulation with
// node-condition equivalence (Section V-A for plain patterns, Section
// VI-B for bounded ones; both reduce to the weighted form, with plain
// patterns having all weights 1).
func ComputeViewMatch(q *pattern.Pattern, def *view.Definition) *ViewMatch {
	wdist, reach := patternDistances(q)
	return computeViewMatchFrom(q, def, wdist, reach)
}

// computeViewMatchFrom is ComputeViewMatch over a precomputed weighted
// distance closure of q (see patternDistances), which batch callers
// hoist out of their per-view loop. wdist and reach are only read.
func computeViewMatchFrom(q *pattern.Pattern, def *view.Definition, wdist [][]int64, reach [][]bool) *ViewMatch {
	v := def.Pattern
	nq, nv := len(q.Nodes), len(v.Nodes)

	// sim[x] ⊆ query nodes, seeded by node-condition equivalence.
	sim := make([][]bool, nv)
	for x := 0; x < nv; x++ {
		sim[x] = make([]bool, nq)
		for u := 0; u < nq; u++ {
			sim[x][u] = pattern.NodeConditionsEquivalent(&v.Nodes[x], &q.Nodes[u])
		}
	}

	// within reports whether a view edge with bound b admits the query
	// pair (u,u'): a path of weight ≤ b (any nonempty path for *).
	within := func(u, u2 int, b pattern.Bound) bool {
		if b == pattern.Unbounded {
			return reach[u][u2]
		}
		return wdist[u][u2] <= int64(b)
	}

	// Fixpoint refinement (patterns are tiny; quadratic passes suffice).
	for changed := true; changed; {
		changed = false
		for x := 0; x < nv; x++ {
			for u := 0; u < nq; u++ {
				if !sim[x][u] {
					continue
				}
				ok := true
				for _, ei := range v.OutEdges(x) {
					e := v.Edges[ei]
					found := false
					for u2 := 0; u2 < nq; u2++ {
						if sim[e.To][u2] && within(u, u2, e.Bound) {
							found = true
							break
						}
					}
					if !found {
						ok = false
						break
					}
				}
				if !ok {
					sim[x][u] = false
					changed = true
				}
			}
		}
	}

	// Empty sim set for any view node ⇒ V does not match Qs at all.
	vm := &ViewMatch{
		PairsPerEdge:  make([][][2]int, len(v.Edges)),
		CoversPerEdge: make([][]int, len(v.Edges)),
		Covered:       make([]bool, len(q.Edges)),
	}
	for x := 0; x < nv; x++ {
		any := false
		for u := 0; u < nq; u++ {
			if sim[x][u] {
				any = true
				break
			}
		}
		if !any {
			return vm // all empty
		}
	}

	// Query edges indexed by endpoints for the covering step.
	type ek struct{ from, to int }
	qEdges := make(map[ek][]int, len(q.Edges))
	for i, e := range q.Edges {
		qEdges[ek{e.From, e.To}] = append(qEdges[ek{e.From, e.To}], i)
	}

	for ei, e := range v.Edges {
		for u := 0; u < nq; u++ {
			if !sim[e.From][u] {
				continue
			}
			for u2 := 0; u2 < nq; u2++ {
				if !sim[e.To][u2] || !within(u, u2, e.Bound) {
					continue
				}
				vm.PairsPerEdge[ei] = append(vm.PairsPerEdge[ei], [2]int{u, u2})
				// Cover query edges (u,u2) whose bound fits under the view
				// edge bound.
				for _, qi := range qEdges[ek{u, u2}] {
					if q.Edges[qi].Bound.Leq(e.Bound) {
						vm.CoversPerEdge[ei] = append(vm.CoversPerEdge[ei], qi)
						vm.Covered[qi] = true
					}
				}
			}
		}
	}
	return vm
}
