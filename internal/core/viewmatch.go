// Package core implements the paper's primary contribution: pattern
// containment (Section III), the containment problems and their
// algorithms contain / minimal / minimum (Sections IV–V), the view-based
// evaluation algorithms MatchJoin and BMatchJoin (Sections III and VI-A),
// and their bounded-containment counterparts (Section VI-B).
package core

import (
	"context"

	"graphviews/internal/par"
	"graphviews/internal/pattern"
	"graphviews/internal/view"
)

// ViewMatch is M^Qs_V (Section V-A) in indexed form: for every edge of
// the view definition, the set of query node pairs that match it when the
// query is treated as a data graph — and, derived from it, the set of
// query edges the view edge covers.
type ViewMatch struct {
	// PairsPerEdge[i] lists the (query-node, query-node) index pairs
	// matching view edge i.
	PairsPerEdge [][][2]int
	// CoversPerEdge[i] lists the query edge indices covered by view edge
	// i: pairs that are query edges whose bound fits under the view
	// edge's bound (fe(e) ≤ fVe(eV), DESIGN.md §2.6).
	CoversPerEdge [][]int
	// Covered is the union of CoversPerEdge: M^Qs_V ∩ Ep as a bitmask
	// over query edges.
	Covered []bool
}

// CoveredCount returns |M^Qs_V ∩ Ep| (the α numerator base of minimum).
func (vm *ViewMatch) CoveredCount() int {
	n := 0
	for _, c := range vm.Covered {
		if c {
			n++
		}
	}
	return n
}

// ComputeViewMatches evaluates M^Qs_V for every view of the set, one view
// per worker-pool task: each view match is independent of the others,
// which makes containment checking over large view pools scale with
// cores. Results are positionally identical to sequential computation.
func ComputeViewMatches(ctx context.Context, q *pattern.Pattern, vs *view.Set, workers int) ([]*ViewMatch, error) {
	vms := make([]*ViewMatch, vs.Card())
	// The weighted distance closure depends only on q: compute it once
	// and share it read-only across the per-view tasks.
	wdist, reach := pattern.Distances(q)
	err := par.ForEach(ctx, workers, vs.Card(), func(i int) {
		vms[i] = computeViewMatchFrom(q, vs.Defs[i], wdist, reach)
	})
	if err != nil {
		return nil, err
	}
	return vms, nil
}

// ComputeViewMatch evaluates the view definition over the query pattern
// treated as a (weighted) data graph via bounded simulation with
// node-condition equivalence (Section V-A for plain patterns, Section
// VI-B for bounded ones; both reduce to the weighted form, with plain
// patterns having all weights 1).
func ComputeViewMatch(q *pattern.Pattern, def *view.Definition) *ViewMatch {
	wdist, reach := pattern.Distances(q)
	return computeViewMatchFrom(q, def, wdist, reach)
}

// computeViewMatchFrom is ComputeViewMatch over a precomputed weighted
// distance closure of q (see pattern.Distances), which batch callers
// hoist out of their per-view loop. wdist and reach are only read.
func computeViewMatchFrom(q *pattern.Pattern, def *view.Definition, wdist [][]int64, reach [][]bool) *ViewMatch {
	v := def.Pattern
	nq, nv := len(q.Nodes), len(v.Nodes)

	// sim[x] ⊆ query nodes, seeded by node-condition equivalence.
	sim := make([][]bool, nv)
	for x := 0; x < nv; x++ {
		sim[x] = make([]bool, nq)
		for u := 0; u < nq; u++ {
			sim[x][u] = pattern.NodeConditionsEquivalent(&v.Nodes[x], &q.Nodes[u])
		}
	}

	// within reports whether a view edge with bound b admits the query
	// pair (u,u'): a path of weight ≤ b (any nonempty path for *).
	within := func(u, u2 int, b pattern.Bound) bool {
		if b == pattern.Unbounded {
			return reach[u][u2]
		}
		return wdist[u][u2] <= int64(b)
	}

	// Fixpoint refinement (patterns are tiny; quadratic passes suffice).
	for changed := true; changed; {
		changed = false
		for x := 0; x < nv; x++ {
			for u := 0; u < nq; u++ {
				if !sim[x][u] {
					continue
				}
				ok := true
				for _, ei := range v.OutEdges(x) {
					e := v.Edges[ei]
					found := false
					for u2 := 0; u2 < nq; u2++ {
						if sim[e.To][u2] && within(u, u2, e.Bound) {
							found = true
							break
						}
					}
					if !found {
						ok = false
						break
					}
				}
				if !ok {
					sim[x][u] = false
					changed = true
				}
			}
		}
	}

	// Empty sim set for any view node ⇒ V does not match Qs at all.
	vm := &ViewMatch{
		PairsPerEdge:  make([][][2]int, len(v.Edges)),
		CoversPerEdge: make([][]int, len(v.Edges)),
		Covered:       make([]bool, len(q.Edges)),
	}
	for x := 0; x < nv; x++ {
		any := false
		for u := 0; u < nq; u++ {
			if sim[x][u] {
				any = true
				break
			}
		}
		if !any {
			return vm // all empty
		}
	}

	// Query edges indexed by endpoints for the covering step.
	type ek struct{ from, to int }
	qEdges := make(map[ek][]int, len(q.Edges))
	for i, e := range q.Edges {
		qEdges[ek{e.From, e.To}] = append(qEdges[ek{e.From, e.To}], i)
	}

	for ei, e := range v.Edges {
		for u := 0; u < nq; u++ {
			if !sim[e.From][u] {
				continue
			}
			for u2 := 0; u2 < nq; u2++ {
				if !sim[e.To][u2] || !within(u, u2, e.Bound) {
					continue
				}
				vm.PairsPerEdge[ei] = append(vm.PairsPerEdge[ei], [2]int{u, u2})
				// Cover query edges (u,u2) whose bound fits under the view
				// edge bound.
				for _, qi := range qEdges[ek{u, u2}] {
					if q.Edges[qi].Bound.Leq(e.Bound) {
						vm.CoversPerEdge[ei] = append(vm.CoversPerEdge[ei], qi)
						vm.Covered[qi] = true
					}
				}
			}
		}
	}
	return vm
}
