package core

// Paper-named entry points for the bounded versions of Section VI-B. The
// generic implementations in contain.go already dispatch on edge bounds
// (weighted view matches cover the plain case with all weights 1), so
// these are documented aliases kept for fidelity with the paper's
// algorithm names: Bcontain, Bminimal, Bminimum.

import (
	"graphviews/internal/pattern"
	"graphviews/internal/view"
)

// BContain decides Qb ⊑ V for bounded pattern queries (Theorem 10(1)).
func BContain(q *pattern.Pattern, vs *view.Set) (*Lambda, bool, error) {
	return Contain(q, vs)
}

// BMinimal solves minimal bounded containment (Theorem 10(2)).
func BMinimal(q *pattern.Pattern, vs *view.Set) ([]int, *Lambda, bool, error) {
	return Minimal(q, vs)
}

// BMinimum approximates minimum bounded containment BMMCP within
// O(log |Ep|) (Theorem 10(3)).
func BMinimum(q *pattern.Pattern, vs *view.Set) ([]int, *Lambda, bool, error) {
	return Minimum(q, vs)
}
