package core

// Maximally contained partial answering — the second §VIII future-work
// item ("develop efficient algorithms for computing maximally contained
// rewriting using views, when a pattern query is not contained in
// available views [25]").
//
// When Qs ⋢ V, no exact answer is computable from V(G) (Theorem 1). What
// *is* computable is, for the covered part of the query, a sound upper
// bound: for every covered edge e, a set S̃e ⊇ Se obtained by unioning the
// covering view extensions and running the MatchJoin fixpoint restricted
// to covered edges. The bound is "maximally contained" in the sense that
// the covered edge set is the maximal one (the union of all view
// matches), and the per-edge sets are the tightest derivable from V(G)'s
// per-edge information alone: uncovered edges contribute no pruning,
// because their match sets are unknown.
//
// Tests verify the two defining properties: (a) soundness — the true
// match set of every covered edge is a subset of the partial answer; and
// (b) consistency — when Qs ⊑ V after all, the partial answer degenerates
// to the exact Qs(G).

import (
	"graphviews/internal/graph"
	"graphviews/internal/pattern"
	"graphviews/internal/simulation"
	"graphviews/internal/view"
)

// PartialAnswer is the result of answering an uncontained query as far as
// the views allow.
type PartialAnswer struct {
	// Covered[i] reports whether query edge i is covered by some view.
	Covered []bool
	// Result holds upper-bound match sets for covered edges; uncovered
	// edges have empty sets (their contents are unknowable from V(G)).
	// Result.Matched is false only if some covered edge's bound is empty,
	// which proves Qs(G) = ∅.
	Result *simulation.Result
	// Exact is true when every edge is covered (Qs ⊑ V) — the Result is
	// then exactly Qs(G).
	Exact bool
}

// AnswerPartial computes the maximally contained partial answer of q over
// the extensions. It never accesses the data graph.
func AnswerPartial(q *pattern.Pattern, x *view.Extensions) (*PartialAnswer, error) {
	if err := validateForContainment(q, x.Set); err != nil {
		return nil, err
	}
	vms := allViewMatches(q, x.Set)
	covered := make([]bool, len(q.Edges))
	for _, vm := range vms {
		for qi, c := range vm.Covered {
			if c {
				covered[qi] = true
			}
		}
	}
	all := make([]int, x.Set.Card())
	for i := range all {
		all[i] = i
	}
	l := buildLambda(q, vms, all)

	exact := true
	for _, c := range covered {
		if !c {
			exact = false
			break
		}
	}
	if exact {
		res, _ := MatchJoin(q, x, l)
		return &PartialAnswer{Covered: covered, Result: res, Exact: true}, nil
	}

	// Build a reduced pattern over the covered edges only, then run the
	// ordinary fixpoint on it. Restricting to a sub-pattern can only
	// weaken the pruning, so the fixpoint on the reduced pattern is an
	// upper bound of the true match sets of those edges.
	sub := pattern.New(q.Name + "_covered")
	nodeMap := make([]int, len(q.Nodes))
	for i := range nodeMap {
		nodeMap[i] = -1
	}
	mapNode := func(u int) int {
		if nodeMap[u] < 0 {
			n := q.Nodes[u]
			nodeMap[u] = sub.AddNode(n.Name, n.Label, append([]pattern.Predicate(nil), n.Preds...)...)
		}
		return nodeMap[u]
	}
	subEdgeOf := make([]int, 0, len(q.Edges)) // sub edge -> query edge
	subLambda := &Lambda{}
	for qi, e := range q.Edges {
		if !covered[qi] {
			continue
		}
		sub.AddBoundedEdge(mapNode(e.From), mapNode(e.To), e.Bound)
		subEdgeOf = append(subEdgeOf, qi)
		subLambda.PerEdge = append(subLambda.PerEdge, l.PerEdge[qi])
	}

	subRes, _ := MatchJoin(sub, x, subLambda)

	// Project back onto the original pattern's edge indexing.
	res := &simulation.Result{
		Pattern: q,
		Matched: subRes.Matched,
		Sim:     make([][]graph.NodeID, len(q.Nodes)),
		Edges:   make([]simulation.EdgeMatches, len(q.Edges)),
	}
	if subRes.Matched {
		for si, qi := range subEdgeOf {
			res.Edges[qi] = subRes.Edges[si]
		}
		for u, su := range nodeMap {
			if su >= 0 {
				res.Sim[u] = subRes.Sim[su]
			}
		}
	}
	return &PartialAnswer{Covered: covered, Result: res, Exact: false}, nil
}
