package core

// The two scan-based MatchJoin variants used by the Exp-2 optimization
// ablation: MatchJoinRanked implements Fig. 2 with the Section III
// bottom-up (ascending edge rank) strategy; MatchJoinNaive implements
// Fig. 2 with blind full passes. Both compute exactly the same result as
// the production MatchJoin (cross-checked by tests); they differ only in
// how often match sets are rescanned.

import (
	"slices"

	"graphviews/internal/pattern"
	"graphviews/internal/simulation"
	"graphviews/internal/view"
)

// scanEdge applies the Fig. 2 lines 6–10 checks to every alive pair of
// edge qi: the pair (v',v) of e=(u',u) survives iff v' retains an alive
// source pair in every out-edge set of u' and v retains one in every
// out-edge set of u. Kills maintain srcCount. It reports whether any
// source's count dropped to zero (requiring neighbors to be rescanned).
func scanEdge(q *pattern.Pattern, sets []edgeSet, qi int, st *Stats) (killedAny, zeroed bool) {
	st.EdgeScans++
	es := &sets[qi]
	uSrc := q.Edges[qi].From
	uDst := q.Edges[qi].To
	for i := range es.pairs {
		if !es.alive.Get(i) {
			continue
		}
		v1, v2 := es.lsrc[i], es.ldst[i]
		ok := true
		for _, e1 := range q.OutEdges(uSrc) {
			if sets[e1].srcCount[v1] <= 0 {
				ok = false
				break
			}
		}
		if ok {
			for _, e2 := range q.OutEdges(uDst) {
				if sets[e2].srcCount[v2] <= 0 {
					ok = false
					break
				}
			}
		}
		if ok {
			continue
		}
		es.kill(int32(i))
		st.PairKills++
		killedAny = true
		es.srcCount[v1]--
		if es.srcCount[v1] == 0 {
			zeroed = true
		}
	}
	return killedAny, zeroed
}

// MatchJoinNaive is Fig. 2 with no visiting strategy ("MatchJoin_nopt"):
// it repeatedly sweeps every match set until a full pass makes no change.
func MatchJoinNaive(q *pattern.Pattern, x *view.Extensions, l *Lambda) (*simulation.Result, Stats) {
	var st Stats
	sc := new(Scratch)
	// The scan-based variants count Fig. 2 (re)scan passes only — the
	// Exp-2 ablation metric — so the seeding pass count is discarded.
	sets, ok, _ := buildInitial(q, x, l, sc)
	if !ok {
		return simulation.Empty(q), st
	}
	for qi := range sets {
		st.InitialPairs += len(sets[qi].pairs)
	}
	nu, toOrig := indexEdgeSets(sets, sc)
	for changed := true; changed; {
		changed = false
		for qi := range sets {
			killed, _ := scanEdge(q, sets, qi, &st)
			if killed {
				changed = true
			}
			if sets[qi].nAliv == 0 {
				return simulation.Empty(q), st
			}
		}
	}
	return finish(q, sets, nu, toOrig, sc), st
}

// MatchJoinRanked is Fig. 2 with the bottom-up strategy: edges are
// scanned in ascending rank order (rank of an edge = rank of its target
// node over the pattern's SCC DAG), and an edge is rescanned only when a
// scan elsewhere removed the last source pair of some node that the edge
// may depend on. For patterns whose relevant region is a DAG this keeps
// the number of scans near |Ep| (Lemma 2); cyclic patterns iterate within
// the SCCs until the fixpoint.
func MatchJoinRanked(q *pattern.Pattern, x *view.Extensions, l *Lambda) (*simulation.Result, Stats) {
	var st Stats
	sc := new(Scratch)
	sets, ok, _ := buildInitial(q, x, l, sc)
	if !ok {
		return simulation.Empty(q), st
	}
	for qi := range sets {
		st.InitialPairs += len(sets[qi].pairs)
	}
	nu, toOrig := indexEdgeSets(sets, sc)

	eRanks := q.EdgeRanks()
	order := make([]int, len(q.Edges))
	for i := range order {
		order[i] = i
	}
	slices.SortStableFunc(order, func(a, b int) int { return eRanks[a] - eRanks[b] })

	dirty := make([]bool, len(q.Edges))
	// queue holds dirty edges; it is re-sorted by rank on every drain
	// round so lower-rank edges always go first.
	queue := append([]int(nil), order...)
	for i := range dirty {
		dirty[i] = true
	}

	for len(queue) > 0 {
		slices.SortStableFunc(queue, func(a, b int) int { return eRanks[a] - eRanks[b] })
		next := queue
		queue = nil
		for _, qi := range next {
			if !dirty[qi] {
				continue
			}
			dirty[qi] = false
			_, zeroed := scanEdge(q, sets, qi, &st)
			if sets[qi].nAliv == 0 {
				return simulation.Empty(q), st
			}
			if !zeroed {
				continue
			}
			// A node match of the edge's source lost its last pair here:
			// sibling out-edges and in-edges of that pattern node must be
			// rechecked.
			uSrc := q.Edges[qi].From
			for _, e := range q.OutEdges(uSrc) {
				if e != qi && !dirty[e] {
					dirty[e] = true
					queue = append(queue, e)
				}
			}
			for _, e := range q.InEdges(uSrc) {
				if !dirty[e] {
					dirty[e] = true
					queue = append(queue, e)
				}
			}
		}
	}
	return finish(q, sets, nu, toOrig, sc), st
}
