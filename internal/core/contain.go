package core

import (
	"context"
	"fmt"
	"sort"

	"graphviews/internal/pattern"
	"graphviews/internal/view"
)

// ViewEdgeRef addresses one edge of one view in a view.Set.
type ViewEdgeRef struct {
	View int // index into the view set
	Edge int // edge index within that view's pattern
}

// Lambda is the mapping λ from query edges to sets of view edges
// (Section III): MatchJoin unions the referenced extension match sets to
// seed each query edge's match set.
type Lambda struct {
	PerEdge [][]ViewEdgeRef
}

// buildLambda reverses view matches into λ over the chosen view indices.
func buildLambda(q *pattern.Pattern, vms []*ViewMatch, chosen []int) *Lambda {
	l := &Lambda{PerEdge: make([][]ViewEdgeRef, len(q.Edges))}
	for _, vi := range chosen {
		vm := vms[vi]
		if vm == nil {
			continue
		}
		for ei, covers := range vm.CoversPerEdge {
			for _, qi := range covers {
				l.PerEdge[qi] = append(l.PerEdge[qi], ViewEdgeRef{View: vi, Edge: ei})
			}
		}
	}
	return l
}

// validateForContainment rejects inputs the containment machinery cannot
// meaningfully process (notably edge-less patterns: with Ep = ∅ the
// condition Ep = ∪ M^Qs_V holds vacuously, but a node match set can never
// be reconstructed from view extensions).
func validateForContainment(q *pattern.Pattern, vs *view.Set) error {
	if err := q.Validate(); err != nil {
		return err
	}
	if len(q.Edges) == 0 {
		return fmt.Errorf("core: pattern %q has no edges; single-node patterns cannot be answered using views", q.Name)
	}
	return vs.Validate()
}

// allViewMatches computes M^Qs_V for every view in the set.
func allViewMatches(q *pattern.Pattern, vs *view.Set) []*ViewMatch {
	vms, _ := ComputeViewMatches(context.Background(), q, vs, 1)
	return vms
}

// Contain decides Qs ⊑ V (Theorem 3 / Proposition 7: Ep = ∪ M^Qs_V) and,
// when it holds, returns the mapping λ over the full view set. It handles
// both plain and bounded patterns (Bcontain of Section VI-B is the same
// procedure with weighted view matches).
func Contain(q *pattern.Pattern, vs *view.Set) (*Lambda, bool, error) {
	return ContainWith(context.Background(), q, vs, 1)
}

// ContainWith is Contain with the per-view match computations fanned out
// over up to workers goroutines.
func ContainWith(ctx context.Context, q *pattern.Pattern, vs *view.Set, workers int) (*Lambda, bool, error) {
	if err := validateForContainment(q, vs); err != nil {
		return nil, false, err
	}
	vms, err := ComputeViewMatches(ctx, q, vs, workers)
	if err != nil {
		return nil, false, err
	}
	covered := make([]bool, len(q.Edges))
	for _, vm := range vms {
		for qi, c := range vm.Covered {
			if c {
				covered[qi] = true
			}
		}
	}
	for _, c := range covered {
		if !c {
			return nil, false, nil
		}
	}
	all := make([]int, vs.Card())
	for i := range all {
		all[i] = i
	}
	return buildLambda(q, vms, all), true, nil
}

// Minimal finds a minimal subset V' ⊆ V containing Qs (Theorem 5,
// algorithm of Fig. 5): greedy accumulation of view matches that
// contribute new edges, then elimination of views made redundant by later
// additions. Returns the chosen view indices (ascending), λ restricted to
// them, and whether Qs ⊑ V at all.
func Minimal(q *pattern.Pattern, vs *view.Set) ([]int, *Lambda, bool, error) {
	if err := validateForContainment(q, vs); err != nil {
		return nil, nil, false, err
	}
	nE := len(q.Edges)
	vms := make([]*ViewMatch, vs.Card())

	covered := make([]bool, nE)
	coveredCount := 0
	// M(e): which chosen views cover query edge e.
	coverers := make([][]int, nE)
	var chosen []int

	for i, d := range vs.Defs {
		vm := ComputeViewMatch(q, d)
		vms[i] = vm
		contributes := false
		for qi, c := range vm.Covered {
			if c && !covered[qi] {
				contributes = true
				break
			}
		}
		if !contributes {
			continue
		}
		chosen = append(chosen, i)
		for qi, c := range vm.Covered {
			if !c {
				continue
			}
			if !covered[qi] {
				covered[qi] = true
				coveredCount++
			}
			coverers[qi] = append(coverers[qi], i)
		}
		if coveredCount == nE {
			break
		}
	}
	if coveredCount != nE {
		return nil, nil, false, nil
	}

	// Elimination pass (lines 9–11 of Fig. 5): drop Vj when every edge it
	// covers is covered by another chosen view.
	kept := make(map[int]bool, len(chosen))
	for _, i := range chosen {
		kept[i] = true
	}
	for _, j := range chosen {
		redundant := true
		for qi := 0; qi < nE; qi++ {
			if !vms[j].Covered[qi] {
				continue
			}
			others := 0
			for _, c := range coverers[qi] {
				if c != j && kept[c] {
					others++
				}
			}
			if others == 0 {
				redundant = false
				break
			}
		}
		if redundant {
			kept[j] = false
		}
	}
	var final []int
	for _, i := range chosen {
		if kept[i] {
			final = append(final, i)
		}
	}
	return final, buildLambda(q, vms, final), true, nil
}

// Minimum approximates the NP-complete minimum containment problem MMCP
// (Theorem 6) with the greedy set-cover strategy of Section V-C: pick the
// view with the largest α(V) = |M^Qs_V \ Ec| / |Ep| until all query edges
// are covered; ties break toward the lowest view index (which reproduces
// the paper's Example 7). The result is within a log |Ep| factor of the
// optimum.
func Minimum(q *pattern.Pattern, vs *view.Set) ([]int, *Lambda, bool, error) {
	if err := validateForContainment(q, vs); err != nil {
		return nil, nil, false, err
	}
	nE := len(q.Edges)
	vms := allViewMatches(q, vs)

	covered := make([]bool, nE)
	coveredCount := 0
	used := make([]bool, vs.Card())
	var chosen []int

	for coveredCount < nE {
		best, bestGain := -1, 0
		for i, vm := range vms {
			if used[i] {
				continue
			}
			gain := 0
			for qi, c := range vm.Covered {
				if c && !covered[qi] {
					gain++
				}
			}
			if gain > bestGain {
				best, bestGain = i, gain
			}
		}
		if best < 0 {
			return nil, nil, false, nil // nothing can cover the rest
		}
		used[best] = true
		chosen = append(chosen, best)
		for qi, c := range vms[best].Covered {
			if c && !covered[qi] {
				covered[qi] = true
				coveredCount++
			}
		}
	}
	sort.Ints(chosen)
	return chosen, buildLambda(q, vms, chosen), true, nil
}

// QueryContained decides classical query containment Qs1 ⊑ Qs2
// (Corollary 4): the single-view special case of Contain.
func QueryContained(q1, q2 *pattern.Pattern) (bool, error) {
	_, ok, err := Contain(q1, view.NewSet(view.Define("", q2)))
	return ok, err
}
