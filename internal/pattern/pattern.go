// Package pattern implements graph pattern queries Qs = (Vp, Ep, fv) and
// bounded pattern queries Qb = (Vp, Ep, fv, fe) from Sections II and VI of
// Fan, Wang and Wu, "Answering Graph Pattern Queries Using Views" (ICDE
// 2014). Pattern nodes carry a label and optional Boolean search
// conditions (predicates); bounded pattern edges carry a bound fe(e) that
// is either a positive integer k or * (Unbounded).
//
// A plain pattern query is the special case where every edge bound is 1.
package pattern

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"graphviews/internal/graph"
)

// Bound is an edge bound fe(e): a positive hop count or Unbounded (*).
type Bound int32

// Unbounded is the * bound: any nonempty path length is allowed.
const Unbounded Bound = -1

// IsValid reports whether b is a legal bound (≥1 or Unbounded).
func (b Bound) IsValid() bool { return b == Unbounded || b >= 1 }

// String renders the bound as in the DSL.
func (b Bound) String() string {
	if b == Unbounded {
		return "*"
	}
	return fmt.Sprintf("%d", int32(b))
}

// Leq reports whether bound b is at most c, treating Unbounded as +∞.
// It is the comparison used by the bounded-containment covering rule:
// a view edge with bound c can cover a query edge with bound b iff
// b.Leq(c) (Section VI-B; see DESIGN.md for the soundness discussion).
func (b Bound) Leq(c Bound) bool {
	if c == Unbounded {
		return true
	}
	if b == Unbounded {
		return false
	}
	return b <= c
}

// Node is a pattern node: a variable name, a required label, and an
// optional conjunction of predicates over node attributes.
type Node struct {
	Name  string
	Label string
	Preds []Predicate
}

// Edge is a directed pattern edge between node indices, with a bound.
// Bound 1 is the plain-pattern case.
type Edge struct {
	From, To int
	Bound    Bound
}

// Pattern is a (possibly bounded) graph pattern query. A pattern is
// mutable while being built (AddNode/AddEdge) and must then be treated
// as immutable; read accessors — including the lazily built adjacency —
// are safe for concurrent use on an immutable pattern.
type Pattern struct {
	Name  string
	Nodes []Node
	Edges []Edge

	// adj caches the per-node edge-index adjacency, built lazily and
	// published atomically so concurrent readers (the SCC-parallel
	// MatchJoin workers) never observe a partial build. Mutations clear
	// it; concurrent duplicate builds are idempotent.
	adj atomic.Pointer[patternAdj]
}

// patternAdj is the derived adjacency of a pattern.
type patternAdj struct {
	out [][]int // node -> indices into Edges with From == node
	in  [][]int // node -> indices into Edges with To == node
}

// New returns an empty pattern with the given name.
func New(name string) *Pattern { return &Pattern{Name: name} }

// AddNode appends a pattern node and returns its index. An empty name is
// replaced with a positional one.
func (p *Pattern) AddNode(name, label string, preds ...Predicate) int {
	if name == "" {
		name = fmt.Sprintf("u%d", len(p.Nodes))
	}
	p.Nodes = append(p.Nodes, Node{Name: name, Label: label, Preds: preds})
	p.adj.Store(nil)
	return len(p.Nodes) - 1
}

// AddEdge appends a pattern edge (from, to) with bound 1.
func (p *Pattern) AddEdge(from, to int) int { return p.AddBoundedEdge(from, to, 1) }

// AddBoundedEdge appends a pattern edge with the given bound.
func (p *Pattern) AddBoundedEdge(from, to int, b Bound) int {
	p.Edges = append(p.Edges, Edge{From: from, To: to, Bound: b})
	p.adj.Store(nil)
	return len(p.Edges) - 1
}

// NodeIndex returns the index of the node with the given name, or -1.
func (p *Pattern) NodeIndex(name string) int {
	for i := range p.Nodes {
		if p.Nodes[i].Name == name {
			return i
		}
	}
	return -1
}

// Size returns |Qs| = |Vp| + |Ep|, the size measure used by the paper.
func (p *Pattern) Size() int { return len(p.Nodes) + len(p.Edges) }

// IsPlain reports whether every edge bound is 1 (a pattern query, as
// opposed to a bounded pattern query).
func (p *Pattern) IsPlain() bool {
	for _, e := range p.Edges {
		if e.Bound != 1 {
			return false
		}
	}
	return true
}

// MaxBound returns the largest finite bound, and whether any edge is
// Unbounded.
func (p *Pattern) MaxBound() (max Bound, hasUnbounded bool) {
	for _, e := range p.Edges {
		if e.Bound == Unbounded {
			hasUnbounded = true
		} else if e.Bound > max {
			max = e.Bound
		}
	}
	return max, hasUnbounded
}

// adjacency returns the cached adjacency, building it on first use.
// Concurrent first uses may build it twice; the results are identical
// and the atomic publish keeps every reader on a fully built value.
func (p *Pattern) adjacency() *patternAdj {
	if a := p.adj.Load(); a != nil {
		return a
	}
	a := &patternAdj{
		out: make([][]int, len(p.Nodes)),
		in:  make([][]int, len(p.Nodes)),
	}
	for i, e := range p.Edges {
		a.out[e.From] = append(a.out[e.From], i)
		a.in[e.To] = append(a.in[e.To], i)
	}
	p.adj.Store(a)
	return a
}

// OutEdges returns the indices of edges leaving node u.
func (p *Pattern) OutEdges(u int) []int {
	return p.adjacency().out[u]
}

// InEdges returns the indices of edges entering node u.
func (p *Pattern) InEdges(u int) []int {
	return p.adjacency().in[u]
}

// Validate checks structural well-formedness: at least one node, unique
// node names, edge endpoints in range, valid bounds, no duplicate edges,
// and connectivity of the underlying undirected graph (the paper assumes
// connected patterns, Section II Remark (1)).
func (p *Pattern) Validate() error {
	if len(p.Nodes) == 0 {
		return fmt.Errorf("pattern %q: no nodes", p.Name)
	}
	names := make(map[string]struct{}, len(p.Nodes))
	for i, n := range p.Nodes {
		if n.Label == "" {
			return fmt.Errorf("pattern %q: node %d has no label", p.Name, i)
		}
		if _, dup := names[n.Name]; dup {
			return fmt.Errorf("pattern %q: duplicate node name %q", p.Name, n.Name)
		}
		names[n.Name] = struct{}{}
	}
	seen := make(map[[2]int]struct{}, len(p.Edges))
	for i, e := range p.Edges {
		if e.From < 0 || e.From >= len(p.Nodes) || e.To < 0 || e.To >= len(p.Nodes) {
			return fmt.Errorf("pattern %q: edge %d out of range", p.Name, i)
		}
		if !e.Bound.IsValid() {
			return fmt.Errorf("pattern %q: edge %d has invalid bound %d", p.Name, i, e.Bound)
		}
		key := [2]int{e.From, e.To}
		if _, dup := seen[key]; dup {
			return fmt.Errorf("pattern %q: duplicate edge %s->%s", p.Name, p.Nodes[e.From].Name, p.Nodes[e.To].Name)
		}
		seen[key] = struct{}{}
	}
	if len(p.Nodes) > 1 && !p.connected() {
		return fmt.Errorf("pattern %q: not connected", p.Name)
	}
	return nil
}

func (p *Pattern) connected() bool {
	adj := make([][]int, len(p.Nodes))
	for _, e := range p.Edges {
		adj[e.From] = append(adj[e.From], e.To)
		adj[e.To] = append(adj[e.To], e.From)
	}
	seen := make([]bool, len(p.Nodes))
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range adj[v] {
			if !seen[w] {
				seen[w] = true
				count++
				stack = append(stack, w)
			}
		}
	}
	return count == len(p.Nodes)
}

// AsGraph converts the pattern into a data graph over its node labels
// (used to evaluate view definitions over a query, Section V-A: "by
// treating Qs as a data graph"). Predicates and bounds are not encoded in
// the graph; callers that need them use the pattern directly.
func (p *Pattern) AsGraph() *graph.Graph {
	g := graph.NewWithCapacity(len(p.Nodes))
	for _, n := range p.Nodes {
		g.AddNode(n.Label)
	}
	for _, e := range p.Edges {
		g.AddEdge(graph.NodeID(e.From), graph.NodeID(e.To))
	}
	return g
}

// Ranks computes r(u) for every pattern node per Section III: rank 0 for
// nodes whose SCC is a leaf of the SCC condensation DAG, otherwise
// max(1 + rank of successor SCCs). The rank of an edge (u', u) is the rank
// of its target u.
func (p *Pattern) Ranks() []int { return graph.Ranks(p.AsGraph()) }

// EdgeRanks returns r(e) for every edge: the rank of its target node.
func (p *Pattern) EdgeRanks() []int {
	nr := p.Ranks()
	out := make([]int, len(p.Edges))
	for i, e := range p.Edges {
		out[i] = nr[e.To]
	}
	return out
}

// IsDAG reports whether the pattern has no directed cycle.
func (p *Pattern) IsDAG() bool {
	scc := graph.SCC(p.AsGraph())
	g := p.AsGraph()
	for ci := range scc.Comps {
		if !scc.IsSingleton(g, int32(ci)) {
			return false
		}
	}
	return true
}

// Diameter returns the longest shortest undirected path between any two
// pattern nodes (used by strong simulation's locality balls).
func (p *Pattern) Diameter() int {
	n := len(p.Nodes)
	adj := make([][]int, n)
	for _, e := range p.Edges {
		adj[e.From] = append(adj[e.From], e.To)
		adj[e.To] = append(adj[e.To], e.From)
	}
	maxD := 0
	dist := make([]int, n)
	for s := 0; s < n; s++ {
		for i := range dist {
			dist[i] = -1
		}
		dist[s] = 0
		q := []int{s}
		for len(q) > 0 {
			v := q[0]
			q = q[1:]
			for _, w := range adj[v] {
				if dist[w] < 0 {
					dist[w] = dist[v] + 1
					if dist[w] > maxD {
						maxD = dist[w]
					}
					q = append(q, w)
				}
			}
		}
	}
	return maxD
}

// Clone returns a deep copy of p.
func (p *Pattern) Clone() *Pattern {
	c := &Pattern{Name: p.Name, Nodes: make([]Node, len(p.Nodes)), Edges: append([]Edge(nil), p.Edges...)}
	for i, n := range p.Nodes {
		c.Nodes[i] = Node{Name: n.Name, Label: n.Label, Preds: append([]Predicate(nil), n.Preds...)}
	}
	return c
}

// WithBounds returns a copy of p with every edge bound set to b (used by
// the experiment harness to derive bounded workloads from plain ones).
func (p *Pattern) WithBounds(b Bound) *Pattern {
	c := p.Clone()
	for i := range c.Edges {
		c.Edges[i].Bound = b
	}
	return c
}

// String renders the pattern in the DSL accepted by Parse.
func (p *Pattern) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "pattern %s {\n", p.Name)
	for _, n := range p.Nodes {
		fmt.Fprintf(&sb, "  node %s: %s", n.Name, n.Label)
		if len(n.Preds) > 0 {
			parts := make([]string, len(n.Preds))
			for i, pr := range n.Preds {
				parts[i] = pr.String()
			}
			sort.Strings(parts)
			fmt.Fprintf(&sb, " [%s]", strings.Join(parts, ", "))
		}
		sb.WriteString("\n")
	}
	for _, e := range p.Edges {
		fmt.Fprintf(&sb, "  edge %s -> %s", p.Nodes[e.From].Name, p.Nodes[e.To].Name)
		if e.Bound != 1 {
			fmt.Fprintf(&sb, " <=%s", e.Bound)
		}
		sb.WriteString("\n")
	}
	sb.WriteString("}\n")
	return sb.String()
}

// Equal reports structural equality (same order of nodes and edges, same
// names, labels, normalized predicates and bounds).
func (p *Pattern) Equal(q *Pattern) bool {
	if len(p.Nodes) != len(q.Nodes) || len(p.Edges) != len(q.Edges) {
		return false
	}
	for i := range p.Nodes {
		a, b := p.Nodes[i], q.Nodes[i]
		if a.Name != b.Name || a.Label != b.Label || !EquivalentPreds(a.Preds, b.Preds) {
			return false
		}
	}
	for i := range p.Edges {
		if p.Edges[i] != q.Edges[i] {
			return false
		}
	}
	return true
}
