package pattern

import (
	"math"
	"testing"
)

// predsFromFuzzBytes decodes 4 bytes per predicate: attribute (3 names,
// forcing collisions), operator, categorical-vs-numeric, and the
// constant. Byte 255/254 map to the int64 extremes so the fuzzer reaches
// the vacuous wrap-around forms (x >= MinInt64 and friends) that
// simplePreds must reject; categorical predicates draw from 3 values and
// any operator, covering the ordered-categorical FALSE normalization.
func predsFromFuzzBytes(data []byte) []Predicate {
	var out []Predicate
	for len(data) >= 4 {
		b0, b1, b2, b3 := data[0], data[1], data[2], data[3]
		data = data[4:]
		attr := string(rune('a' + b0%3))
		op := Op(b1 % 6)
		if b2%4 == 0 {
			out = append(out, Predicate{Attr: attr, Op: op, Str: string(rune('s' + b3%3)), IsStr: true})
			continue
		}
		val := int64(int8(b3))
		switch b3 {
		case 255:
			val = math.MaxInt64
		case 254:
			val = math.MinInt64
		}
		out = append(out, Predicate{Attr: attr, Op: op, Val: val})
	}
	return out
}

// FuzzEquivalentPreds pins the structural fast paths of EquivalentPreds
// (syntactic identity; attribute-by-attribute comparison of "simple"
// conjunctions) against the normal-form construction they shortcut: on
// arbitrary predicate pairs the two must always agree, and equivalence
// must stay symmetric and reflexive.
//
// Run the seed corpus with `go test`; fuzz with
//
//	go test -run '^$' -fuzz '^FuzzEquivalentPreds$' -fuzztime 15s ./internal/pattern
func FuzzEquivalentPreds(f *testing.F) {
	f.Add([]byte(""), []byte(""))
	f.Add([]byte("\x00\x00\x01\x05"), []byte("\x00\x00\x01\x05"))                 // identical numeric
	f.Add([]byte("\x00\x02\x01\x05"), []byte("\x00\x03\x01\x04"))                 // x<5 vs x<=4: norm decides
	f.Add([]byte("\x00\x00\x00\x01"), []byte("\x00\x01\x00\x01"))                 // categorical = vs !=
	f.Add([]byte("\x00\x05\x01\xfe"), []byte("\x01\x00\x01\x07"))                 // x>=MinInt64 (vacuous) vs y==7
	f.Add([]byte("\x00\x00\x01\x03\x00\x00\x01\x04"), []byte("\x00\x02\x01\x03")) // x==3∧x==4 (FALSE) vs x<3
	f.Fuzz(func(t *testing.T, da, db []byte) {
		a, b := predsFromFuzzBytes(da), predsFromFuzzBytes(db)
		got := EquivalentPreds(a, b)
		want := equivalentPredsNorm(a, b)
		if got != want {
			t.Fatalf("EquivalentPreds(%v, %v) = %v, normal-form construction says %v",
				a, b, got, want)
		}
		if rev := EquivalentPreds(b, a); rev != got {
			t.Fatalf("EquivalentPreds not symmetric on (%v, %v): %v vs %v", a, b, got, rev)
		}
		if !EquivalentPreds(a, a) || !EquivalentPreds(b, b) {
			t.Fatalf("EquivalentPreds not reflexive on %v / %v", a, b)
		}
	})
}
