package pattern

import "math"

// InfWeight is the "no path" sentinel of the weighted distance closure
// computed by Distances. It is far below overflow range so two closure
// entries can be added without wrapping.
const InfWeight = math.MaxInt64 / 4

// Distances computes, over pattern q treated as a weighted data graph
// (edge weight fe(e), * edges = ∞ weight per Section VI-B), the
// all-pairs minimum path weights wdist (nonempty paths; InfWeight =
// none) and plain reachability reach (nonempty paths through any edges,
// used by * view bounds). Containment checking (internal/core) shares
// one closure across the per-view matches, and incremental maintenance
// (internal/view) reads reach to spot pattern cycles when bounding the
// affected area of an edge insertion.
func Distances(q *Pattern) (wdist [][]int64, reach [][]bool) {
	n := len(q.Nodes)
	wdist = make([][]int64, n)
	reach = make([][]bool, n)
	for i := 0; i < n; i++ {
		wdist[i] = make([]int64, n)
		reach[i] = make([]bool, n)
		for j := 0; j < n; j++ {
			wdist[i][j] = InfWeight
		}
	}
	for _, e := range q.Edges {
		w := int64(InfWeight)
		if e.Bound != Unbounded {
			w = int64(e.Bound)
		}
		if w < wdist[e.From][e.To] {
			wdist[e.From][e.To] = w
		}
		reach[e.From][e.To] = true
	}
	// Floyd–Warshall on the tiny pattern graph. Note wdist[i][i] stays the
	// weight of the shortest nonempty cycle (or ∞), matching the
	// path-per-edge semantics: Floyd–Warshall over nonempty paths computes
	// exactly that as long as we do not seed the diagonal with 0.
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			if wdist[i][k] >= InfWeight && !reach[i][k] {
				continue
			}
			for j := 0; j < n; j++ {
				if d := wdist[i][k] + wdist[k][j]; d < wdist[i][j] {
					wdist[i][j] = d
				}
				if reach[i][k] && reach[k][j] {
					reach[i][j] = true
				}
			}
		}
	}
	return wdist, reach
}
