package pattern

// Pattern minimization (Section IV: containment "is important in
// minimizing and optimizing pattern queries"). Two pattern nodes that
// simulate each other within the pattern — with semantically equivalent
// node conditions — have identical match sets in every data graph, so they
// can be merged. Minimize computes the maximum self-simulation of the
// pattern, merges each mutual-similarity class, and deduplicates edges.
//
// The per-edge result of a minimized pattern is keyed by merged edges; the
// MergeMap links original nodes to representatives so callers can project
// results back.

// Minimized pairs the reduced pattern with the projection of original
// node indices onto representatives.
type Minimized struct {
	P *Pattern
	// NodeMap[i] is the node index in P that original node i maps to.
	NodeMap []int
}

// selfSimulation computes the maximum relation R ⊆ Vp×Vp such that
// (u,w) ∈ R iff conditions of u and w are equivalent and for every edge
// (u,u') there is an edge (w,w') with equal bound and (u',w') ∈ R.
// Bounds must match exactly for the merge to preserve bounded semantics.
func selfSimulation(p *Pattern) [][]bool {
	n := len(p.Nodes)
	r := make([][]bool, n)
	for u := 0; u < n; u++ {
		r[u] = make([]bool, n)
		for w := 0; w < n; w++ {
			r[u][w] = NodeConditionsEquivalent(&p.Nodes[u], &p.Nodes[w])
		}
	}
	for changed := true; changed; {
		changed = false
		for u := 0; u < n; u++ {
			for w := 0; w < n; w++ {
				if !r[u][w] {
					continue
				}
				ok := true
				for _, ei := range p.OutEdges(u) {
					e := p.Edges[ei]
					found := false
					for _, fi := range p.OutEdges(w) {
						f := p.Edges[fi]
						if f.Bound == e.Bound && r[e.To][f.To] {
							found = true
							break
						}
					}
					if !found {
						ok = false
						break
					}
				}
				if !ok {
					r[u][w] = false
					changed = true
				}
			}
		}
	}
	return r
}

// Minimize merges mutually similar pattern nodes. The result satisfies:
// for every data graph G and original node u, the simulation match set of
// u in p equals that of NodeMap[u] in the minimized pattern (covered by
// property tests against the engines).
func Minimize(p *Pattern) *Minimized {
	r := selfSimulation(p)
	n := len(p.Nodes)
	rep := make([]int, n)
	for i := range rep {
		rep[i] = -1
	}
	var classes []int // representative original index per merged node
	for u := 0; u < n; u++ {
		if rep[u] >= 0 {
			continue
		}
		rep[u] = len(classes)
		for w := u + 1; w < n; w++ {
			if rep[w] < 0 && r[u][w] && r[w][u] {
				rep[w] = len(classes)
			}
		}
		classes = append(classes, u)
	}

	m := New(p.Name + "_min")
	for _, orig := range classes {
		on := p.Nodes[orig]
		m.AddNode(on.Name, on.Label, append([]Predicate(nil), on.Preds...)...)
	}
	type ekey struct {
		from, to int
		b        Bound
	}
	seen := make(map[ekey]struct{})
	for _, e := range p.Edges {
		k := ekey{rep[e.From], rep[e.To], e.Bound}
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		m.AddBoundedEdge(k.from, k.to, k.b)
	}
	return &Minimized{P: m, NodeMap: rep}
}
