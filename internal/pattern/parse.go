package pattern

// A small line-oriented DSL for patterns, mirroring the figures of the
// paper. Example (cf. Fig. 1(c) and Fig. 7):
//
//	pattern Qs {
//	  node pm: PM
//	  node dba1: DBA
//	  node v: video [category="Music", rate>=4]
//	  edge pm -> dba1
//	  edge dba1 -> v <=3
//	  edge v -> pm <=*
//	}
//
// Pattern.String renders this format, and Parse reads it back.

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse reads a single pattern in the DSL format and validates it.
func Parse(src string) (*Pattern, error) {
	ps, err := ParseAll(src)
	if err != nil {
		return nil, err
	}
	if len(ps) != 1 {
		return nil, fmt.Errorf("pattern: expected exactly 1 pattern, found %d", len(ps))
	}
	return ps[0], nil
}

// ParseAll reads any number of patterns from src and validates each.
func ParseAll(src string) ([]*Pattern, error) {
	var out []*Pattern
	var cur *Pattern
	for lineNo, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		switch {
		case strings.HasPrefix(line, "pattern "):
			if cur != nil {
				return nil, fmt.Errorf("pattern: line %d: nested pattern", lineNo+1)
			}
			rest := strings.TrimSpace(strings.TrimPrefix(line, "pattern "))
			if !strings.HasSuffix(rest, "{") {
				return nil, fmt.Errorf("pattern: line %d: expected '{'", lineNo+1)
			}
			name := strings.TrimSpace(strings.TrimSuffix(rest, "{"))
			if name == "" {
				return nil, fmt.Errorf("pattern: line %d: pattern needs a name", lineNo+1)
			}
			cur = New(name)
		case line == "}":
			if cur == nil {
				return nil, fmt.Errorf("pattern: line %d: '}' without pattern", lineNo+1)
			}
			if err := cur.Validate(); err != nil {
				return nil, err
			}
			out = append(out, cur)
			cur = nil
		case strings.HasPrefix(line, "node "):
			if cur == nil {
				return nil, fmt.Errorf("pattern: line %d: node outside pattern", lineNo+1)
			}
			if err := parseNodeLine(cur, line, lineNo+1); err != nil {
				return nil, err
			}
		case strings.HasPrefix(line, "edge "):
			if cur == nil {
				return nil, fmt.Errorf("pattern: line %d: edge outside pattern", lineNo+1)
			}
			if err := parseEdgeLine(cur, line, lineNo+1); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("pattern: line %d: unrecognized line %q", lineNo+1, line)
		}
	}
	if cur != nil {
		return nil, fmt.Errorf("pattern %q: missing closing '}'", cur.Name)
	}
	return out, nil
}

func parseNodeLine(p *Pattern, line string, lineNo int) error {
	rest := strings.TrimSpace(strings.TrimPrefix(line, "node "))
	colon := strings.IndexByte(rest, ':')
	if colon < 0 {
		return fmt.Errorf("pattern: line %d: node needs 'name: label'", lineNo)
	}
	name := strings.TrimSpace(rest[:colon])
	rest = strings.TrimSpace(rest[colon+1:])
	var predsPart string
	if i := strings.IndexByte(rest, '['); i >= 0 {
		if !strings.HasSuffix(rest, "]") {
			return fmt.Errorf("pattern: line %d: unterminated predicate list", lineNo)
		}
		predsPart = rest[i+1 : len(rest)-1]
		rest = strings.TrimSpace(rest[:i])
	}
	label := rest
	if name == "" || label == "" {
		return fmt.Errorf("pattern: line %d: node needs a name and a label", lineNo)
	}
	var preds []Predicate
	if predsPart != "" {
		for _, part := range splitPreds(predsPart) {
			pr, err := ParsePredicate(strings.TrimSpace(part))
			if err != nil {
				return fmt.Errorf("pattern: line %d: %v", lineNo, err)
			}
			preds = append(preds, pr)
		}
	}
	p.AddNode(name, label, preds...)
	return nil
}

// splitPreds splits on commas outside quotes.
func splitPreds(s string) []string {
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			depth = !depth
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	out = append(out, s[start:])
	return out
}

// ParsePredicate parses a single comparison such as rate>=4 or
// category="Music".
func ParsePredicate(s string) (Predicate, error) {
	ops := []struct {
		tok string
		op  Op
	}{
		{"!=", OpNe}, {"<=", OpLe}, {">=", OpGe}, {"<", OpLt}, {">", OpGt}, {"=", OpEq},
	}
	for _, o := range ops {
		i := strings.Index(s, o.tok)
		if i <= 0 {
			continue
		}
		attr := strings.TrimSpace(s[:i])
		raw := strings.TrimSpace(s[i+len(o.tok):])
		if attr == "" || raw == "" {
			return Predicate{}, fmt.Errorf("bad predicate %q", s)
		}
		if strings.HasPrefix(raw, `"`) {
			val, err := strconv.Unquote(raw)
			if err != nil {
				return Predicate{}, fmt.Errorf("bad string in predicate %q: %v", s, err)
			}
			if o.op != OpEq && o.op != OpNe {
				return Predicate{}, fmt.Errorf("operator %s not defined on strings in %q", o.op, s)
			}
			return StrPred(attr, o.op, val), nil
		}
		n, err := strconv.ParseInt(raw, 10, 64)
		if err != nil {
			return Predicate{}, fmt.Errorf("bad number in predicate %q: %v", s, err)
		}
		return IntPred(attr, o.op, n), nil
	}
	return Predicate{}, fmt.Errorf("no comparison operator in predicate %q", s)
}

func parseEdgeLine(p *Pattern, line string, lineNo int) error {
	rest := strings.TrimSpace(strings.TrimPrefix(line, "edge "))
	arrow := strings.Index(rest, "->")
	if arrow < 0 {
		return fmt.Errorf("pattern: line %d: edge needs '->'", lineNo)
	}
	from := strings.TrimSpace(rest[:arrow])
	rest = strings.TrimSpace(rest[arrow+2:])
	bound := Bound(1)
	if i := strings.Index(rest, "<="); i >= 0 {
		braw := strings.TrimSpace(rest[i+2:])
		rest = strings.TrimSpace(rest[:i])
		if braw == "*" {
			bound = Unbounded
		} else {
			n, err := strconv.Atoi(braw)
			if err != nil || n < 1 {
				return fmt.Errorf("pattern: line %d: bad bound %q", lineNo, braw)
			}
			bound = Bound(n)
		}
	}
	to := rest
	fi, ti := p.NodeIndex(from), p.NodeIndex(to)
	if fi < 0 || ti < 0 {
		return fmt.Errorf("pattern: line %d: edge references unknown node (%q -> %q)", lineNo, from, to)
	}
	p.AddBoundedEdge(fi, ti, bound)
	return nil
}
