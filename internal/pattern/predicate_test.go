package pattern

import (
	"testing"

	"graphviews/internal/graph"
)

func TestCompiledNodeMatches(t *testing.T) {
	g := graph.New()
	v1 := g.AddNode("video")
	g.SetAttr(v1, "rate", 5)
	g.SetAttrString(v1, "category", "Music")
	v2 := g.AddNode("video")
	g.SetAttr(v2, "rate", 3)
	g.SetAttrString(v2, "category", "Sports")
	v3 := g.AddNode("user")

	n := Node{Name: "x", Label: "video", Preds: []Predicate{
		IntPred("rate", OpGe, 4),
		StrPred("category", OpEq, "Music"),
	}}
	c := CompileNode(&n, g)
	if !c.Matches(g, v1) {
		t.Fatalf("v1 should match")
	}
	if c.Matches(g, v2) {
		t.Fatalf("v2 should not match (rate and category)")
	}
	if c.Matches(g, v3) {
		t.Fatalf("v3 should not match (label)")
	}
}

func TestCompiledNodeOps(t *testing.T) {
	g := graph.New()
	v := g.AddNode("n")
	g.SetAttr(v, "x", 10)
	check := func(p Predicate, want bool) {
		t.Helper()
		n := Node{Name: "a", Label: "n", Preds: []Predicate{p}}
		c := CompileNode(&n, g)
		if got := c.Matches(g, v); got != want {
			t.Errorf("%s on x=10: got %v, want %v", p, got, want)
		}
	}
	check(IntPred("x", OpEq, 10), true)
	check(IntPred("x", OpEq, 9), false)
	check(IntPred("x", OpNe, 9), true)
	check(IntPred("x", OpNe, 10), false)
	check(IntPred("x", OpLt, 11), true)
	check(IntPred("x", OpLt, 10), false)
	check(IntPred("x", OpLe, 10), true)
	check(IntPred("x", OpLe, 9), false)
	check(IntPred("x", OpGt, 9), true)
	check(IntPred("x", OpGt, 10), false)
	check(IntPred("x", OpGe, 10), true)
	check(IntPred("x", OpGe, 11), false)
	// absent attribute: always false, even for !=
	check(IntPred("y", OpNe, 3), false)
}

func TestCompiledNodeUnknownCategorical(t *testing.T) {
	g := graph.New()
	v := g.AddNode("n")
	g.SetAttrString(v, "c", "A")
	eq := Node{Name: "a", Label: "n", Preds: []Predicate{StrPred("c", OpEq, "NeverSeen")}}
	ne := Node{Name: "a", Label: "n", Preds: []Predicate{StrPred("c", OpNe, "NeverSeen")}}
	ceq := CompileNode(&eq, g)
	if ceq.Matches(g, v) {
		t.Fatalf("= on never-interned value must be false")
	}
	cne := CompileNode(&ne, g)
	if !cne.Matches(g, v) {
		t.Fatalf("!= on never-interned value must hold when attr present")
	}
}

func TestCompileUnknownLabel(t *testing.T) {
	g := graph.New()
	g.AddNode("A")
	n := Node{Name: "x", Label: "Z"}
	c := CompileNode(&n, g)
	if c.Matches(g, 0) {
		t.Fatalf("unknown label must never match")
	}
}

func TestEquivalentPreds(t *testing.T) {
	cases := []struct {
		a, b []Predicate
		want bool
	}{
		{nil, nil, true},
		{[]Predicate{IntPred("x", OpGe, 4)}, []Predicate{IntPred("x", OpGt, 3)}, true},
		{[]Predicate{IntPred("x", OpLe, 9)}, []Predicate{IntPred("x", OpLt, 10)}, true},
		{[]Predicate{IntPred("x", OpGe, 4)}, []Predicate{IntPred("x", OpGe, 5)}, false},
		{[]Predicate{IntPred("x", OpGe, 4), IntPred("x", OpLe, 4)}, []Predicate{IntPred("x", OpEq, 4)}, true},
		{
			[]Predicate{IntPred("x", OpGe, 1), IntPred("y", OpLe, 2)},
			[]Predicate{IntPred("y", OpLe, 2), IntPred("x", OpGe, 1)},
			true, // order independent
		},
		{[]Predicate{StrPred("c", OpEq, "A")}, []Predicate{StrPred("c", OpEq, "A")}, true},
		{[]Predicate{StrPred("c", OpEq, "A")}, []Predicate{StrPred("c", OpEq, "B")}, false},
		{[]Predicate{IntPred("x", OpGe, 4)}, nil, false},
		// both unsatisfiable
		{
			[]Predicate{IntPred("x", OpGt, 5), IntPred("x", OpLt, 5)},
			[]Predicate{IntPred("x", OpEq, 1), IntPred("x", OpEq, 2)},
			true,
		},
		// != outside the interval is vacuous
		{
			[]Predicate{IntPred("x", OpGe, 10), IntPred("x", OpNe, 3)},
			[]Predicate{IntPred("x", OpGe, 10)},
			true,
		},
		// != duplicated
		{
			[]Predicate{IntPred("x", OpNe, 3), IntPred("x", OpNe, 3)},
			[]Predicate{IntPred("x", OpNe, 3)},
			true,
		},
		// str eq subsumes str ne of another value
		{
			[]Predicate{StrPred("c", OpEq, "A"), StrPred("c", OpNe, "B")},
			[]Predicate{StrPred("c", OpEq, "A")},
			true,
		},
		// contradiction: c = A and c != A
		{
			[]Predicate{StrPred("c", OpEq, "A"), StrPred("c", OpNe, "A")},
			[]Predicate{IntPred("x", OpLt, -5), IntPred("x", OpGt, 5)},
			true, // both false
		},
	}
	for i, c := range cases {
		if got := EquivalentPreds(c.a, c.b); got != c.want {
			t.Errorf("case %d: EquivalentPreds(%v, %v) = %v, want %v", i, c.a, c.b, got, c.want)
		}
		if got := EquivalentPreds(c.b, c.a); got != c.want {
			t.Errorf("case %d (sym): got %v, want %v", i, got, c.want)
		}
	}
}

func TestImpliesPreds(t *testing.T) {
	cases := []struct {
		a, b []Predicate
		want bool
	}{
		{[]Predicate{IntPred("x", OpGe, 5)}, []Predicate{IntPred("x", OpGe, 4)}, true},
		{[]Predicate{IntPred("x", OpGe, 4)}, []Predicate{IntPred("x", OpGe, 5)}, false},
		{[]Predicate{IntPred("x", OpEq, 7)}, []Predicate{IntPred("x", OpGe, 1), IntPred("x", OpLe, 10)}, true},
		{nil, []Predicate{IntPred("x", OpGe, 1)}, false}, // a unconstrained
		{[]Predicate{IntPred("x", OpGe, 1)}, nil, true},
		{[]Predicate{StrPred("c", OpEq, "A")}, []Predicate{StrPred("c", OpNe, "B")}, true},
		{[]Predicate{StrPred("c", OpNe, "B")}, []Predicate{StrPred("c", OpEq, "A")}, false},
		// unsatisfiable implies anything
		{[]Predicate{IntPred("x", OpGt, 5), IntPred("x", OpLt, 5)}, []Predicate{IntPred("y", OpEq, 1)}, true},
		// neq containment
		{[]Predicate{IntPred("x", OpNe, 3), IntPred("x", OpNe, 4)}, []Predicate{IntPred("x", OpNe, 3)}, true},
		{[]Predicate{IntPred("x", OpNe, 4)}, []Predicate{IntPred("x", OpNe, 3)}, false},
	}
	for i, c := range cases {
		if got := ImpliesPreds(c.a, c.b); got != c.want {
			t.Errorf("case %d: ImpliesPreds(%v, %v) = %v, want %v", i, c.a, c.b, got, c.want)
		}
	}
}

func TestNodeConditionsEquivalent(t *testing.T) {
	a := Node{Label: "video", Preds: []Predicate{IntPred("r", OpGe, 4)}}
	b := Node{Label: "video", Preds: []Predicate{IntPred("r", OpGt, 3)}}
	c := Node{Label: "clip", Preds: []Predicate{IntPred("r", OpGe, 4)}}
	if !NodeConditionsEquivalent(&a, &b) {
		t.Fatalf("a,b should be equivalent")
	}
	if NodeConditionsEquivalent(&a, &c) {
		t.Fatalf("labels differ")
	}
}

func TestMinimizeMergesEquivalentNodes(t *testing.T) {
	// Two structurally identical branches A -> B must merge the Bs.
	p := New("q")
	a := p.AddNode("a", "A")
	b1 := p.AddNode("b1", "B")
	b2 := p.AddNode("b2", "B")
	p.AddEdge(a, b1)
	p.AddEdge(a, b2)
	m := Minimize(p)
	if len(m.P.Nodes) != 2 {
		t.Fatalf("minimized nodes = %d, want 2\n%s", len(m.P.Nodes), m.P)
	}
	if len(m.P.Edges) != 1 {
		t.Fatalf("minimized edges = %d, want 1", len(m.P.Edges))
	}
	if m.NodeMap[b1] != m.NodeMap[b2] {
		t.Fatalf("b1 and b2 should map to the same node")
	}
	if m.NodeMap[a] == m.NodeMap[b1] {
		t.Fatalf("a must stay separate")
	}
}

func TestMinimizeKeepsInequivalentNodes(t *testing.T) {
	// b1 -> C makes b1 and b2 non-equivalent.
	p := New("q")
	a := p.AddNode("a", "A")
	b1 := p.AddNode("b1", "B")
	b2 := p.AddNode("b2", "B")
	c := p.AddNode("c", "C")
	p.AddEdge(a, b1)
	p.AddEdge(a, b2)
	p.AddEdge(b1, c)
	m := Minimize(p)
	if len(m.P.Nodes) != 4 {
		t.Fatalf("no merge expected, got %d nodes", len(m.P.Nodes))
	}
}

func TestMinimizeBoundSensitive(t *testing.T) {
	// Same shape but different bounds must not merge.
	p := New("q")
	a := p.AddNode("a", "A")
	b1 := p.AddNode("b1", "B")
	b2 := p.AddNode("b2", "B")
	c1 := p.AddNode("c1", "C")
	c2 := p.AddNode("c2", "C")
	p.AddBoundedEdge(a, b1, 1)
	p.AddBoundedEdge(a, b2, 1)
	p.AddBoundedEdge(b1, c1, 2)
	p.AddBoundedEdge(b2, c2, 3)
	m := Minimize(p)
	if m.NodeMap[b1] == m.NodeMap[b2] {
		t.Fatalf("nodes with different out-bounds merged")
	}
	if m.NodeMap[c1] != m.NodeMap[c2] {
		t.Fatalf("equivalent leaves should merge")
	}
}

func TestMinimizeCycle(t *testing.T) {
	// Fig. 1(c)-like double cycle: (dba1,prg1,dba2,prg2) collapses to a
	// 2-cycle DBA <-> PRG.
	p := New("qs")
	pm := p.AddNode("pm", "PM")
	dba1 := p.AddNode("dba1", "DBA")
	prg1 := p.AddNode("prg1", "PRG")
	dba2 := p.AddNode("dba2", "DBA")
	prg2 := p.AddNode("prg2", "PRG")
	p.AddEdge(pm, dba1)
	p.AddEdge(pm, prg2)
	p.AddEdge(dba1, prg1)
	p.AddEdge(prg1, dba2)
	p.AddEdge(dba2, prg2)
	p.AddEdge(prg2, dba1)
	m := Minimize(p)
	if m.NodeMap[dba1] != m.NodeMap[dba2] || m.NodeMap[prg1] != m.NodeMap[prg2] {
		t.Fatalf("cycle nodes should merge: %v", m.NodeMap)
	}
	if len(m.P.Nodes) != 3 {
		t.Fatalf("minimized Qs should have 3 nodes, got %d", len(m.P.Nodes))
	}
}
