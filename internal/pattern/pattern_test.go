package pattern

import (
	"testing"
)

// buildQs constructs the Fig. 1(c) pattern: PM with DBA/PRG collaboration
// cycles.
func buildQs(t *testing.T) *Pattern {
	t.Helper()
	p := New("Qs")
	pm := p.AddNode("pm", "PM")
	dba1 := p.AddNode("dba1", "DBA")
	prg1 := p.AddNode("prg1", "PRG")
	dba2 := p.AddNode("dba2", "DBA")
	prg2 := p.AddNode("prg2", "PRG")
	p.AddEdge(pm, dba1)
	p.AddEdge(pm, prg2)
	p.AddEdge(dba1, prg1)
	p.AddEdge(prg1, dba2)
	p.AddEdge(dba2, prg2)
	p.AddEdge(prg2, dba1)
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return p
}

func TestBasicAccessors(t *testing.T) {
	p := buildQs(t)
	if p.Size() != 5+6 {
		t.Fatalf("Size = %d, want 11", p.Size())
	}
	if !p.IsPlain() {
		t.Fatalf("all bounds are 1, IsPlain should be true")
	}
	if got := p.NodeIndex("dba2"); got != 3 {
		t.Fatalf("NodeIndex(dba2) = %d", got)
	}
	if got := p.NodeIndex("nope"); got != -1 {
		t.Fatalf("NodeIndex(nope) = %d", got)
	}
	if got := len(p.OutEdges(0)); got != 2 {
		t.Fatalf("OutEdges(pm) = %d edges", got)
	}
	if got := len(p.InEdges(1)); got != 2 {
		t.Fatalf("InEdges(dba1) = %d edges", got)
	}
}

func TestBoundHelpers(t *testing.T) {
	if !Bound(3).IsValid() || !Unbounded.IsValid() || Bound(0).IsValid() || Bound(-5).IsValid() {
		t.Fatalf("IsValid wrong")
	}
	if Unbounded.String() != "*" || Bound(4).String() != "4" {
		t.Fatalf("String wrong")
	}
	cases := []struct {
		a, b Bound
		want bool
	}{
		{1, 1, true}, {2, 1, false}, {1, 2, true},
		{Unbounded, Unbounded, true}, {Unbounded, 5, false}, {5, Unbounded, true},
	}
	for _, c := range cases {
		if got := c.a.Leq(c.b); got != c.want {
			t.Errorf("(%s).Leq(%s) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestMaxBound(t *testing.T) {
	p := New("q")
	a := p.AddNode("a", "A")
	b := p.AddNode("b", "B")
	c := p.AddNode("c", "C")
	p.AddBoundedEdge(a, b, 3)
	p.AddBoundedEdge(b, c, Unbounded)
	m, unb := p.MaxBound()
	if m != 3 || !unb {
		t.Fatalf("MaxBound = %v,%v", m, unb)
	}
	if p.IsPlain() {
		t.Fatalf("bounded pattern misreported as plain")
	}
}

func TestValidateErrors(t *testing.T) {
	// empty
	if err := New("e").Validate(); err == nil {
		t.Errorf("empty pattern should fail")
	}
	// duplicate names
	p := New("d")
	p.AddNode("x", "A")
	p.AddNode("x", "B")
	p.AddEdge(0, 1)
	if err := p.Validate(); err == nil {
		t.Errorf("duplicate names should fail")
	}
	// missing label
	p2 := New("l")
	p2.Nodes = append(p2.Nodes, Node{Name: "a"})
	if err := p2.Validate(); err == nil {
		t.Errorf("missing label should fail")
	}
	// disconnected
	p3 := New("dc")
	p3.AddNode("a", "A")
	p3.AddNode("b", "B")
	if err := p3.Validate(); err == nil {
		t.Errorf("disconnected pattern should fail")
	}
	// bad bound
	p4 := New("bb")
	a := p4.AddNode("a", "A")
	b := p4.AddNode("b", "B")
	p4.AddBoundedEdge(a, b, 0)
	if err := p4.Validate(); err == nil {
		t.Errorf("zero bound should fail")
	}
	// duplicate edge
	p5 := New("de")
	a = p5.AddNode("a", "A")
	b = p5.AddNode("b", "B")
	p5.AddEdge(a, b)
	p5.AddEdge(a, b)
	if err := p5.Validate(); err == nil {
		t.Errorf("duplicate edge should fail")
	}
	// out-of-range edge
	p6 := New("oor")
	p6.AddNode("a", "A")
	p6.Edges = append(p6.Edges, Edge{From: 0, To: 9, Bound: 1})
	if err := p6.Validate(); err == nil {
		t.Errorf("out-of-range edge should fail")
	}
}

func TestRanksDAG(t *testing.T) {
	// A -> B -> D, A -> C -> D (diamond): D rank 0, B,C rank 1, A rank 2.
	p := New("diamond")
	a := p.AddNode("a", "A")
	b := p.AddNode("b", "B")
	c := p.AddNode("c", "C")
	d := p.AddNode("d", "D")
	p.AddEdge(a, b)
	p.AddEdge(a, c)
	p.AddEdge(b, d)
	p.AddEdge(c, d)
	r := p.Ranks()
	want := []int{2, 1, 1, 0}
	for i := range want {
		if r[i] != want[i] {
			t.Fatalf("Ranks = %v, want %v", r, want)
		}
	}
	er := p.EdgeRanks()
	// edges: a->b (rank of b =1), a->c (1), b->d (0), c->d (0)
	wantE := []int{1, 1, 0, 0}
	for i := range wantE {
		if er[i] != wantE[i] {
			t.Fatalf("EdgeRanks = %v, want %v", er, wantE)
		}
	}
	if !p.IsDAG() {
		t.Fatalf("diamond should be a DAG")
	}
}

func TestRanksCyclicPattern(t *testing.T) {
	p := buildQs(t) // contains the DBA/PRG 4-cycle, PM outside it
	r := p.Ranks()
	// All cycle nodes share the leaf SCC: rank 0; PM points into it: rank 1.
	for _, i := range []int{1, 2, 3, 4} {
		if r[i] != 0 {
			t.Fatalf("cycle node rank = %v", r)
		}
	}
	if r[0] != 1 {
		t.Fatalf("PM rank = %d, want 1", r[0])
	}
	if p.IsDAG() {
		t.Fatalf("Qs has a cycle")
	}
}

func TestDiameter(t *testing.T) {
	p := New("path")
	a := p.AddNode("a", "A")
	b := p.AddNode("b", "B")
	c := p.AddNode("c", "C")
	p.AddEdge(a, b)
	p.AddEdge(b, c)
	if d := p.Diameter(); d != 2 {
		t.Fatalf("Diameter = %d, want 2", d)
	}
}

func TestCloneAndWithBounds(t *testing.T) {
	p := buildQs(t)
	c := p.Clone()
	c.Nodes[0].Label = "X"
	c.Edges[0].Bound = 5
	if p.Nodes[0].Label != "PM" || p.Edges[0].Bound != 1 {
		t.Fatalf("Clone shares state")
	}
	b := p.WithBounds(3)
	if b.IsPlain() || p.IsPlain() == false {
		t.Fatalf("WithBounds wrong")
	}
	for _, e := range b.Edges {
		if e.Bound != 3 {
			t.Fatalf("WithBounds: bound = %v", e.Bound)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	src := `
pattern Q1 {
  node v1: video [age<=100, category="Music", rate>=4]
  node v2: video [visits>=10000]
  edge v1 -> v2
  edge v2 -> v1 <=3
}
`
	p, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if p.Name != "Q1" || len(p.Nodes) != 2 || len(p.Edges) != 2 {
		t.Fatalf("parsed shape wrong: %+v", p)
	}
	if p.Edges[1].Bound != 3 {
		t.Fatalf("bound = %v", p.Edges[1].Bound)
	}
	if len(p.Nodes[0].Preds) != 3 {
		t.Fatalf("preds = %v", p.Nodes[0].Preds)
	}
	// Round trip through String.
	p2, err := Parse(p.String())
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, p.String())
	}
	if !p.Equal(p2) {
		t.Fatalf("round trip mismatch:\n%s\nvs\n%s", p, p2)
	}
}

func TestParseUnboundedEdge(t *testing.T) {
	p, err := Parse("pattern q {\n node a: A\n node b: B\n edge a -> b <=*\n}")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if p.Edges[0].Bound != Unbounded {
		t.Fatalf("bound = %v, want *", p.Edges[0].Bound)
	}
	p2, err := Parse(p.String())
	if err != nil || p2.Edges[0].Bound != Unbounded {
		t.Fatalf("round trip of * bound failed: %v", err)
	}
}

func TestParseAllMultiple(t *testing.T) {
	src := `
pattern a {
  node x: X
}
pattern b {
  node y: Y
}
`
	ps, err := ParseAll(src)
	if err != nil {
		t.Fatalf("ParseAll: %v", err)
	}
	if len(ps) != 2 || ps[0].Name != "a" || ps[1].Name != "b" {
		t.Fatalf("ParseAll wrong: %v", ps)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"node a: A",                                    // outside pattern
		"pattern p {",                                  // unterminated
		"pattern p {\n}",                               // empty pattern fails Validate
		"pattern p {\n node a\n}",                      // missing colon
		"pattern p {\n node a: A [x~3]\n}",             // bad operator
		"pattern p {\n node a: A\n edge a -> b\n}",     // unknown node
		"pattern p {\n node a: A\n edge a => a\n}",     // bad arrow
		"pattern p {\n node a: A\n edge a -> a <=0\n}", // bad bound
		"pattern p {\n node a: A [x>\"s\"]\n}",         // ordered op on string
		"}",                                            // stray brace
		"pattern p {\n pattern q {\n}",                 // nested
		"garbage",                                      // unknown line
	}
	for _, src := range cases {
		if _, err := ParseAll(src); err == nil {
			t.Errorf("ParseAll(%q) succeeded, want error", src)
		}
	}
}

func TestPredicateString(t *testing.T) {
	p := IntPred("rate", OpGe, 4)
	if p.String() != "rate>=4" {
		t.Fatalf("String = %q", p.String())
	}
	s := StrPred("category", OpEq, "Music")
	if s.String() != `category="Music"` {
		t.Fatalf("String = %q", s.String())
	}
}
