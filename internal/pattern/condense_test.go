package pattern

import (
	"math/rand"
	"sync"
	"testing"
)

// fig3Pattern is the Fig. 3 query: a 3-cycle (db -> ai -> se -> db) with
// a source (pm -> ai) and a sink (ai -> bio) hanging off it.
func fig3Pattern() *Pattern {
	q := New("Qs3")
	pm := q.AddNode("pm", "PM")
	ai := q.AddNode("ai", "AI")
	bio := q.AddNode("bio", "Bio")
	db := q.AddNode("db", "DB")
	se := q.AddNode("se", "SE")
	q.AddEdge(pm, ai)
	q.AddEdge(ai, bio)
	q.AddEdge(db, ai)
	q.AddEdge(ai, se)
	q.AddEdge(se, db)
	return q
}

func TestCondenseFig3(t *testing.T) {
	q := fig3Pattern()
	c := q.Condense()

	if got := c.NumComps(); got != 3 {
		t.Fatalf("NumComps = %d, want 3 ({pm}, {ai,db,se}, {bio})", got)
	}
	// ai (1), db (3), se (4) share a component; pm (0) and bio (2) are
	// singletons.
	if c.CompOf[1] != c.CompOf[3] || c.CompOf[1] != c.CompOf[4] {
		t.Fatalf("cycle nodes not in one component: %v", c.CompOf)
	}
	if c.CompOf[0] == c.CompOf[1] || c.CompOf[2] == c.CompOf[1] || c.CompOf[0] == c.CompOf[2] {
		t.Fatalf("pm/bio must be singleton components: %v", c.CompOf)
	}
	// Waves: bio first (no successors), the cycle next, pm last.
	if len(c.Waves) != 3 {
		t.Fatalf("want 3 waves, got %v", c.Waves)
	}
	wantWave := map[int32]int{c.CompOf[2]: 0, c.CompOf[1]: 1, c.CompOf[0]: 2}
	for w, comps := range c.Waves {
		for _, ci := range comps {
			if wantWave[ci] != w {
				t.Fatalf("component %d in wave %d, want %d", ci, w, wantWave[ci])
			}
		}
	}
}

// TestAdjacencyConcurrentFirstUse hammers a freshly built (never read)
// pattern from several goroutines; with -race this pins the atomic
// publication of the lazy adjacency cache that concurrent Engine calls
// sharing one *Pattern rely on.
func TestAdjacencyConcurrentFirstUse(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		q := fig3Pattern()
		var wg sync.WaitGroup
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for u := range q.Nodes {
					if len(q.OutEdges(u))+len(q.InEdges(u)) == 0 {
						t.Errorf("node %d has no incident edges in fig3", u)
					}
				}
				q.Condense()
			}()
		}
		wg.Wait()
	}
}

func TestCondenseSingleCycle(t *testing.T) {
	q := New("cyc")
	a := q.AddNode("a", "A")
	b := q.AddNode("b", "B")
	q.AddEdge(a, b)
	q.AddEdge(b, a)
	c := q.Condense()
	if c.NumComps() != 1 || len(c.Waves) != 1 || len(c.Waves[0]) != 1 {
		t.Fatalf("2-cycle must condense to one component in one wave: %+v", c)
	}
	if len(c.Succs[0]) != 0 {
		t.Fatalf("single component has successors: %v", c.Succs[0])
	}
}

// TestCondenseWaveInvariants checks the structural contract on random
// patterns: every successor of a component sits in a strictly earlier
// wave, and no pattern edge connects two distinct components of the same
// wave (the property the parallel fixpoint relies on).
func TestCondenseWaveInvariants(t *testing.T) {
	labels := []string{"A", "B", "C", "D"}
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 200; trial++ {
		q := New("r")
		n := 2 + rng.Intn(8)
		for i := 0; i < n; i++ {
			q.AddNode("", labels[rng.Intn(len(labels))])
		}
		seen := map[[2]int]bool{}
		for i := 0; i < 2*n; i++ {
			f, to := rng.Intn(n), rng.Intn(n)
			if f == to && rng.Intn(2) == 0 {
				continue // some self-loops, not too many
			}
			if seen[[2]int{f, to}] {
				continue
			}
			seen[[2]int{f, to}] = true
			q.AddEdge(f, to)
		}
		c := q.Condense()

		waveOf := make(map[int32]int, c.NumComps())
		total := 0
		for w, comps := range c.Waves {
			for _, ci := range comps {
				waveOf[ci] = w
				total++
			}
		}
		if total != c.NumComps() {
			t.Fatalf("trial %d: waves cover %d of %d components", trial, total, c.NumComps())
		}
		for ci := int32(0); int(ci) < c.NumComps(); ci++ {
			for _, d := range c.Succs[ci] {
				if waveOf[d] >= waveOf[ci] {
					t.Fatalf("trial %d: successor %d (wave %d) not strictly before %d (wave %d)",
						trial, d, waveOf[d], ci, waveOf[ci])
				}
			}
		}
		for ei, e := range q.Edges {
			cf, ct := c.CompOf[e.From], c.CompOf[e.To]
			if cf != ct && waveOf[cf] == waveOf[ct] {
				t.Fatalf("trial %d: edge %d connects two components of wave %d", trial, ei, waveOf[cf])
			}
		}
		// Node partition: every node in exactly one component's list.
		count := 0
		for ci, nodes := range c.Comps {
			for _, u := range nodes {
				if c.CompOf[u] != int32(ci) {
					t.Fatalf("trial %d: node %d listed in component %d but CompOf=%d",
						trial, u, ci, c.CompOf[u])
				}
				count++
			}
		}
		if count != len(q.Nodes) {
			t.Fatalf("trial %d: components cover %d of %d nodes", trial, count, len(q.Nodes))
		}
	}
}
