package pattern

// Property-based tests (testing/quick) over the predicate normalization
// lattice: equivalence must be an equivalence relation consistent with
// implication, and implication must agree with evaluation on concrete
// attribute values.

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"graphviews/internal/graph"
)

// genPreds builds a random conjunction over attrs {x,y} and small values,
// so collisions and contradictions actually occur.
func genPreds(rng *rand.Rand) []Predicate {
	n := rng.Intn(4)
	out := make([]Predicate, 0, n)
	attrs := []string{"x", "y"}
	ops := []Op{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe}
	for i := 0; i < n; i++ {
		out = append(out, IntPred(attrs[rng.Intn(2)], ops[rng.Intn(len(ops))], int64(rng.Intn(7))))
	}
	return out
}

type predPair struct {
	A, B []Predicate
}

// Generate implements quick.Generator.
func (predPair) Generate(rng *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(predPair{A: genPreds(rng), B: genPreds(rng)})
}

func TestQuickEquivalenceIsEquivalenceRelation(t *testing.T) {
	f := func(p predPair) bool {
		// Reflexive.
		if !EquivalentPreds(p.A, p.A) || !EquivalentPreds(p.B, p.B) {
			return false
		}
		// Symmetric.
		return EquivalentPreds(p.A, p.B) == EquivalentPreds(p.B, p.A)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickEquivalentImpliesBothWays(t *testing.T) {
	f := func(p predPair) bool {
		if !EquivalentPreds(p.A, p.B) {
			return true // vacuous
		}
		return ImpliesPreds(p.A, p.B) && ImpliesPreds(p.B, p.A)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 600}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickImplicationAgreesWithEvaluation: if A implies B, every graph
// node satisfying A satisfies B, checked on a grid of attribute values.
func TestQuickImplicationAgreesWithEvaluation(t *testing.T) {
	f := func(p predPair) bool {
		if !ImpliesPreds(p.A, p.B) {
			return true // only the sound direction is claimed
		}
		g := graph.New()
		var nodes []graph.NodeID
		for x := int64(-1); x <= 7; x++ {
			for y := int64(-1); y <= 7; y++ {
				v := g.AddNode("n")
				g.SetAttr(v, "x", x)
				g.SetAttr(v, "y", y)
				nodes = append(nodes, v)
			}
		}
		na := Node{Name: "a", Label: "n", Preds: p.A}
		nb := Node{Name: "b", Label: "n", Preds: p.B}
		ca := CompileNode(&na, g)
		cb := CompileNode(&nb, g)
		for _, v := range nodes {
			if ca.Matches(g, v) && !cb.Matches(g, v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickEquivalenceAgreesWithEvaluation: equivalent conjunctions
// accept exactly the same nodes.
func TestQuickEquivalenceAgreesWithEvaluation(t *testing.T) {
	f := func(p predPair) bool {
		eq := EquivalentPreds(p.A, p.B)
		g := graph.New()
		same := true
		for x := int64(-1); x <= 7 && same; x++ {
			for y := int64(-1); y <= 7; y++ {
				v := g.AddNode("n")
				g.SetAttr(v, "x", x)
				g.SetAttr(v, "y", y)
				na := Node{Name: "a", Label: "n", Preds: p.A}
				nb := Node{Name: "b", Label: "n", Preds: p.B}
				ca := CompileNode(&na, g)
				cb := CompileNode(&nb, g)
				if ca.Matches(g, v) != cb.Matches(g, v) {
					same = false
					break
				}
			}
		}
		// Equivalence must imply evaluation agreement. (The converse can
		// fail off-grid, so it is not asserted.)
		if eq && !same {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
