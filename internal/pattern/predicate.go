package pattern

// Predicates implement the "search conditions in terms of Boolean
// predicates" extension of fv (Section II-A and the Fig. 7 views, e.g.
// category="Music", visits>=10000). A pattern node's condition is the
// conjunction of its label and its predicates.
//
// For view matches (Section V-A) node conditions are compared by semantic
// equivalence of their normalized forms, not mere implication: MatchJoin
// only sees the materialized views and cannot re-check a strictly weaker
// view condition against the data graph. See DESIGN.md §2.7.

import (
	"fmt"
	"math"
	"slices"
	"sort"
	"strings"

	"graphviews/internal/graph"
)

// Op is a comparison operator.
type Op uint8

// Comparison operators for predicates.
const (
	OpEq Op = iota // ==
	OpNe           // !=
	OpLt           // <
	OpLe           // <=
	OpGt           // >
	OpGe           // >=
)

// String renders the operator as in the DSL.
func (o Op) String() string {
	switch o {
	case OpEq:
		return "="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	}
	return "?"
}

// Predicate is a single comparison on a node attribute. A predicate is
// either numeric (IsStr false, compares Val) or categorical (IsStr true,
// compares the interned value of Str; only OpEq and OpNe are legal).
type Predicate struct {
	Attr  string
	Op    Op
	Val   int64
	Str   string
	IsStr bool
}

// IntPred builds a numeric predicate.
func IntPred(attr string, op Op, val int64) Predicate {
	return Predicate{Attr: attr, Op: op, Val: val}
}

// StrPred builds a categorical predicate (OpEq or OpNe).
func StrPred(attr string, op Op, val string) Predicate {
	return Predicate{Attr: attr, Op: op, Str: val, IsStr: true}
}

// String renders the predicate as in the DSL.
func (p Predicate) String() string {
	if p.IsStr {
		return fmt.Sprintf("%s%s%q", p.Attr, p.Op, p.Str)
	}
	return fmt.Sprintf("%s%s%d", p.Attr, p.Op, p.Val)
}

// CompiledNode is a pattern node condition resolved against a concrete
// graph: the label and categorical values are interned, so evaluation is
// pure integer comparison. Build with CompileNode.
type CompiledNode struct {
	Label graph.LabelID // NoLabel when the pattern label is absent from g
	preds []compiledPred
}

type compiledPred struct {
	attr    string
	op      Op
	val     int64
	unknown bool // categorical value not interned in g: OpEq can never
	// hold; OpNe holds whenever the attribute is present
}

// CompileNode resolves node n against graph g (any Reader backend).
func CompileNode(n *Node, g graph.Reader) CompiledNode {
	c := CompiledNode{Label: g.Interner().Lookup(n.Label)}
	for _, p := range n.Preds {
		cp := compiledPred{attr: p.Attr, op: p.Op, val: p.Val}
		if p.IsStr {
			id := g.Interner().Lookup(p.Str)
			if id == graph.NoLabel {
				cp.unknown = true
			} else {
				cp.val = int64(id)
			}
		}
		c.preds = append(c.preds, cp)
	}
	return c
}

// HasPreds reports whether the condition carries attribute predicates
// beyond the label. Callers iterating a label partition can skip Matches
// entirely when it is false.
func (c *CompiledNode) HasPreds() bool { return len(c.preds) > 0 }

// Matches reports whether graph node v satisfies the compiled condition.
// A predicate over an absent attribute is false (including !=): the
// condition requires the attribute to exist.
func (c *CompiledNode) Matches(g graph.Reader, v graph.NodeID) bool {
	if c.Label == graph.NoLabel || g.Label(v) != c.Label {
		return false
	}
	for i := range c.preds {
		p := &c.preds[i]
		got, ok := g.Attr(v, p.attr)
		if !ok {
			return false
		}
		if p.unknown {
			if p.op == OpEq {
				return false
			}
			continue // OpNe against a value no node carries: holds
		}
		switch p.op {
		case OpEq:
			if got != p.val {
				return false
			}
		case OpNe:
			if got == p.val {
				return false
			}
		case OpLt:
			if got >= p.val {
				return false
			}
		case OpLe:
			if got > p.val {
				return false
			}
		case OpGt:
			if got <= p.val {
				return false
			}
		case OpGe:
			if got < p.val {
				return false
			}
		}
	}
	return true
}

// normForm is the canonical form of a conjunction of predicates over one
// attribute: an integer interval, a set of excluded integers, and
// categorical equality/inequality constraints.
type normForm struct {
	lo, hi int64 // inclusive interval for numeric comparisons
	neq    []int64
	strEq  string // "" if none; at most one (two different ones => false)
	strNe  []string
	false_ bool // unsatisfiable
}

// normalize builds per-attribute canonical forms for a predicate list.
func normalize(preds []Predicate) map[string]*normForm {
	out := make(map[string]*normForm)
	get := func(attr string) *normForm {
		f, ok := out[attr]
		if !ok {
			f = &normForm{lo: math.MinInt64, hi: math.MaxInt64}
			out[attr] = f
		}
		return f
	}
	for _, p := range preds {
		f := get(p.Attr)
		if p.IsStr {
			switch p.Op {
			case OpEq:
				if f.strEq != "" && f.strEq != p.Str {
					f.false_ = true
				}
				f.strEq = p.Str
			case OpNe:
				f.strNe = append(f.strNe, p.Str)
			default:
				// Ordered comparison over categorical values is rejected at
				// parse/validate time; treat as unsatisfiable defensively.
				f.false_ = true
			}
			continue
		}
		switch p.Op {
		case OpEq:
			if p.Val > f.lo {
				f.lo = p.Val
			}
			if p.Val < f.hi {
				f.hi = p.Val
			}
		case OpNe:
			f.neq = append(f.neq, p.Val)
		case OpLt:
			if p.Val-1 < f.hi {
				f.hi = p.Val - 1
			}
		case OpLe:
			if p.Val < f.hi {
				f.hi = p.Val
			}
		case OpGt:
			if p.Val+1 > f.lo {
				f.lo = p.Val + 1
			}
		case OpGe:
			if p.Val > f.lo {
				f.lo = p.Val
			}
		}
	}
	for _, f := range out {
		if f.lo > f.hi {
			f.false_ = true
		}
		// Drop neq values outside the interval; sort and dedup the rest.
		kept := f.neq[:0]
		for _, v := range f.neq {
			if v >= f.lo && v <= f.hi {
				kept = append(kept, v)
			}
		}
		slices.Sort(kept)
		f.neq = slices.Compact(kept)
		// Point interval excluded by a neq is unsatisfiable.
		if f.lo == f.hi && len(f.neq) == 1 && f.neq[0] == f.lo {
			f.false_ = true
		}
		if f.strEq != "" {
			for _, s := range f.strNe {
				if s == f.strEq {
					f.false_ = true
				}
			}
			f.strNe = nil // subsumed by the equality
		} else {
			slices.Sort(f.strNe)
			f.strNe = slices.Compact(f.strNe)
		}
		if f.false_ {
			*f = normForm{false_: true}
		}
	}
	return out
}

func (f *normForm) equal(g *normForm) bool {
	if f.false_ || g.false_ {
		return f.false_ == g.false_
	}
	if f.lo != g.lo || f.hi != g.hi || f.strEq != g.strEq {
		return false
	}
	if len(f.neq) != len(g.neq) || len(f.strNe) != len(g.strNe) {
		return false
	}
	for i := range f.neq {
		if f.neq[i] != g.neq[i] {
			return false
		}
	}
	for i := range f.strNe {
		if f.strNe[i] != g.strNe[i] {
			return false
		}
	}
	return true
}

// implies reports whether f ⊆ g as value sets (every value satisfying f
// satisfies g).
func (f *normForm) implies(g *normForm) bool {
	if f.false_ {
		return true
	}
	if g.false_ {
		return false
	}
	if f.lo < g.lo || f.hi > g.hi {
		return false
	}
	// Every value g excludes must be excluded by f or fall outside f's
	// interval.
	for _, v := range g.neq {
		if v < f.lo || v > f.hi {
			continue
		}
		if !containsInt64(f.neq, v) {
			return false
		}
	}
	if g.strEq != "" && f.strEq != g.strEq {
		return false
	}
	for _, s := range g.strNe {
		if f.strEq != "" && f.strEq != s {
			continue
		}
		if !containsString(f.strNe, s) {
			return false
		}
	}
	return true
}

func containsInt64(s []int64, v int64) bool {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= v })
	return i < len(s) && s[i] == v
}

func containsString(s []string, v string) bool {
	i := sort.SearchStrings(s, v)
	return i < len(s) && s[i] == v
}

// isFalse reports whether a normalized conjunction is unsatisfiable
// (any attribute's constraint is).
func isFalse(m map[string]*normForm) bool {
	for _, f := range m {
		if f.false_ {
			return true
		}
	}
	return false
}

// vacuousPred reports whether a single predicate normalizes to the
// vacuous form (constrains nothing beyond attribute presence), matching
// normalize's semantics exactly — including its deliberate wrap-around
// at the int64 extremes and the empty categorical value.
func vacuousPred(p *Predicate) bool {
	if p.IsStr {
		return p.Op == OpEq && p.Str == ""
	}
	switch p.Op {
	case OpGe:
		return p.Val == math.MinInt64
	case OpGt:
		return p.Val == math.MaxInt64
	case OpLe:
		return p.Val == math.MaxInt64
	case OpLt:
		return p.Val == math.MinInt64
	}
	return false
}

// simplePreds reports whether every predicate sits on a pairwise
// distinct attribute, is non-vacuous, and cannot normalize to FALSE on
// its own (categorical predicates with ordered operators do). Such a
// conjunction is satisfiable and its per-attribute normal form is fully
// determined by the single predicate, which licenses the syntactic fast
// paths below. Quadratic over the (tiny) predicate list.
func simplePreds(ps []Predicate) bool {
	for i := range ps {
		p := &ps[i]
		if vacuousPred(p) {
			return false
		}
		if p.IsStr && p.Op != OpEq && p.Op != OpNe {
			return false // normalizes to FALSE
		}
		for j := 0; j < i; j++ {
			if ps[j].Attr == p.Attr {
				return false
			}
		}
	}
	return true
}

// EquivalentPreds reports whether two predicate conjunctions are
// semantically equivalent (same satisfying assignments), by comparing
// normalized forms per attribute. Two structural fast paths cover the
// containment hot path — nq·nv equivalence checks per view match, for
// queries typically assembled from the views' own node conditions —
// without the allocation-heavy normalization: syntactically identical
// conjunctions are equivalent, and two "simple" conjunctions (see
// simplePreds; both satisfiable by construction) are decided attribute
// by attribute, deferring to normalization only where two different
// operators meet on one attribute (e.g. x<5 vs x<=4).
func EquivalentPreds(a, b []Predicate) bool {
	if len(a) == len(b) {
		same := true
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
		if same {
			return true
		}
	}
	if simplePreds(a) && simplePreds(b) {
		if len(a) != len(b) {
			return false // both satisfiable, distinct attribute sets
		}
		decided := true
		equal := true
	pairUp:
		for i := range a {
			pa := &a[i]
			for j := range b {
				pb := &b[j]
				if pb.Attr != pa.Attr {
					continue
				}
				if pa.Op != pb.Op || pa.IsStr != pb.IsStr {
					decided = false // e.g. x<5 vs x<=4: normalize decides
					break pairUp
				}
				if *pa != *pb {
					equal = false // same operator, different constant
					break pairUp
				}
				continue pairUp
			}
			equal = false // attribute constrained on one side only
			break
		}
		if decided {
			return equal
		}
	}
	return equivalentPredsNorm(a, b)
}

// equivalentPredsNorm is the normal-form construction EquivalentPreds
// falls back to when no structural fast path decides: per-attribute
// canonical forms compared for equality. It is the semantic ground truth
// the fast paths must agree with — FuzzEquivalentPreds pins that.
func equivalentPredsNorm(a, b []Predicate) bool {
	na, nb := normalize(a), normalize(b)
	if isFalse(na) || isFalse(nb) {
		return isFalse(na) == isFalse(nb)
	}
	if len(na) != len(nb) {
		// Attributes constrained by exactly (-∞,+∞) with no exclusions are
		// vacuous; drop them before comparing.
		dropVacuous(na)
		dropVacuous(nb)
		if len(na) != len(nb) {
			return false
		}
	}
	for attr, fa := range na {
		fb, ok := nb[attr]
		if !ok || !fa.equal(fb) {
			return false
		}
	}
	return true
}

func dropVacuous(m map[string]*normForm) {
	for attr, f := range m {
		if !f.false_ && f.lo == math.MinInt64 && f.hi == math.MaxInt64 &&
			len(f.neq) == 0 && f.strEq == "" && len(f.strNe) == 0 {
			delete(m, attr)
		}
	}
}

// Note: a vacuous constraint still requires attribute *presence* under
// Matches; dropVacuous is only used for the symmetric-difference fast path
// above and both sides are normalized identically, so equivalence is
// unaffected for the predicate languages producible by the DSL (which has
// no way to write a vacuous predicate).

// ImpliesPreds reports whether conjunction a implies conjunction b: every
// node satisfying a satisfies b. Provided as a query-optimization utility;
// containment checking deliberately uses EquivalentPreds (DESIGN.md §2.7).
func ImpliesPreds(a, b []Predicate) bool {
	na, nb := normalize(a), normalize(b)
	if isFalse(na) {
		return true // FALSE implies anything
	}
	if isFalse(nb) {
		return false
	}
	for attr, fb := range nb {
		fa, ok := na[attr]
		if !ok {
			// a does not constrain attr: a node satisfying a may lack it.
			return false
		}
		if !fa.implies(fb) {
			return false
		}
	}
	return true
}

// NodeConditionsEquivalent reports whether two pattern nodes impose the
// same condition: equal labels and equivalent predicate conjunctions.
func NodeConditionsEquivalent(a, b *Node) bool {
	return a.Label == b.Label && EquivalentPreds(a.Preds, b.Preds)
}

// FormatPreds renders a predicate list canonically (sorted), for messages.
func FormatPreds(preds []Predicate) string {
	parts := make([]string, len(preds))
	for i, p := range preds {
		parts[i] = p.String()
	}
	sort.Strings(parts)
	return strings.Join(parts, ", ")
}
