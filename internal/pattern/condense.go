package pattern

// SCC condensation of a pattern, the structural substrate of the
// parallel MatchJoin fixpoint. The removal cascade of Fig. 2 propagates
// kills from a pattern node u only to the sources of u's in-edges, i.e.
// backwards along pattern edges: once every SCC that u can reach has been
// fully refined, u's own SCC can be refined without ever revisiting them.
// Grouping SCCs into reverse-topological waves therefore yields batches
// of components with no kill-propagation dependencies between them, which
// the engine runs concurrently (internal/core, matchjoin_scc.go). The
// same condensation underlies the rank order of Section III (see
// graph.Ranks); this type exposes it in the indexed form the fixpoint
// needs.

import (
	"slices"

	"graphviews/internal/graph"
)

// Condensation is the SCC decomposition of a pattern plus its
// condensation DAG, partitioned into reverse-topological waves.
type Condensation struct {
	// CompOf[u] is the component index of pattern node u.
	CompOf []int32
	// Comps[c] lists the pattern nodes of component c in ascending order.
	Comps [][]int
	// Succs[c] lists the components reachable from c through a single
	// pattern edge (deduplicated, ascending). Succs is a DAG.
	//
	// A pattern edge is owned by the component of its target node
	// (CompOf[Edges[e].To]): the fixpoint partitions the per-edge match
	// sets by owner — all dst-side kills and source-support decrements
	// of an edge happen in its owner's cascade.
	Succs [][]int32
	// Waves groups component indices into reverse-topological levels:
	// every successor of a component in Waves[k] lies in some Waves[j]
	// with j < k, so the components of one wave share no pattern edge and
	// no kill-propagation dependency. Within a wave, components are in
	// ascending index order.
	Waves [][]int32
}

// NumComps returns the number of strongly connected components.
func (c *Condensation) NumComps() int { return len(c.Comps) }

// Condense computes the SCC condensation of p and its reverse-topological
// waves, reusing the Tarjan machinery of internal/graph on the pattern
// viewed as a data graph. It also warms the pattern's adjacency cache so
// the per-component workers hit the published value immediately.
func (p *Pattern) Condense() *Condensation {
	p.adjacency()
	g := p.AsGraph()
	scc := graph.SCC(g)
	nc := len(scc.Comps)

	c := &Condensation{
		CompOf: append([]int32(nil), scc.CompOf...),
		Comps:  make([][]int, nc),
		Succs:  make([][]int32, nc),
	}
	for ci, comp := range scc.Comps {
		nodes := make([]int, len(comp))
		for i, v := range comp {
			nodes[i] = int(v)
		}
		slices.Sort(nodes)
		c.Comps[ci] = nodes
	}
	cond := scc.Condensation(g)
	for ci, succs := range cond {
		if len(succs) == 0 {
			continue
		}
		out := append([]int32(nil), succs...)
		slices.Sort(out)
		c.Succs[ci] = out
	}

	// Wave index = component height over the condensation DAG (the
	// Section III rank at SCC granularity, shared with graph.Ranks).
	height := scc.Heights(cond)
	maxH := 0
	for _, h := range height {
		if h > maxH {
			maxH = h
		}
	}
	c.Waves = make([][]int32, maxH+1)
	for ci := 0; ci < nc; ci++ {
		c.Waves[height[ci]] = append(c.Waves[height[ci]], int32(ci))
	}
	return c
}
