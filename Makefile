# Developer entry points mirroring .github/workflows/ci.yml — `make ci`
# runs exactly what CI runs.

GO ?= go

.PHONY: build test race vet analyze staticcheck govulncheck lint fmt-check docs-lint loadtest bench bench-smoke bench-scc bench-frozen bench-sharded bench-json bench-json-smoke bench-diff bench-maint bench-maint-smoke bench-wal bench-wal-smoke fuzz-smoke cover ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race tests pin GOMAXPROCS>=4 so the SCC-parallel fixpoint waves truly
# interleave even when the host (or a dev container) exposes one CPU.
race:
	GOMAXPROCS=4 $(GO) test -race ./...

vet:
	$(GO) vet ./...

# Contract analyzers (cmd/gvcheck): the four project-specific checkers —
# readeralias, scratchescape, mutexguard, snapshotonce — that
# mechanically enforce the Reader aliasing, scratch-escape, mutex-guard
# and RCU-snapshot invariants (ARCHITECTURE.md §Invariants & static
# analysis). The vettool is built once, then go vet drives it per
# package — test files included — with prebuilt export data, so the
# sweep is fast and fully offline. Zero findings is the merge bar;
# justified exceptions carry //gvcheck:<directive> <why> in source.
GVCHECK = bin/gvcheck
analyze:
	$(GO) build -o $(GVCHECK) ./cmd/gvcheck
	$(GO) vet -vettool=$(abspath $(GVCHECK)) ./...

# Third-party linters, pinned by module version and run via `go run
# tool@version` so nothing is vendored or installed. Both need the
# module proxy on first use, so the targets probe availability and skip
# with a notice when offline (CI always runs them for real).
STATICCHECK = honnef.co/go/tools/cmd/staticcheck@v0.5.1
staticcheck:
	@if $(GO) run $(STATICCHECK) -version >/dev/null 2>&1; then \
		$(GO) run $(STATICCHECK) ./...; \
	else \
		echo "staticcheck unavailable (offline module cache); skipping"; fi

GOVULNCHECK = golang.org/x/vuln/cmd/govulncheck@v1.1.3
govulncheck:
	@if $(GO) run $(GOVULNCHECK) -version >/dev/null 2>&1; then \
		$(GO) run $(GOVULNCHECK) ./...; \
	else \
		echo "govulncheck unavailable (offline module cache); skipping"; fi

lint: staticcheck govulncheck

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Docs lint (cmd/doccheck, stdlib only): every relative markdown link —
# file and #anchor — must resolve, every exported symbol of the facade
# and contract packages must carry a doc comment, and every flag the
# serving/load commands register must be mentioned in OPERATIONS.md, so
# godoc, the markdown layer and the CLI docs can't silently rot.
# Example* functions are compiled and output-verified by `make test`
# like any other test.
DOC_PKGS = .,internal/graph,internal/serve,internal/store,internal/view,internal/core,internal/pattern,internal/simulation,internal/analysis
FLAG_CMDS = cmd/gvserve,cmd/gvload
docs-lint:
	$(GO) run ./cmd/doccheck -pkgs '$(DOC_PKGS)' -flags '$(FLAG_CMDS)' -flagsdoc OPERATIONS.md README.md ARCHITECTURE.md OPERATIONS.md ROADMAP.md

# Closed-loop load test against an in-process gvserve (cmd/gvload
# -self): paced arrivals at LOAD_QPS for LOAD_DURATION with a
# background update+publish writer, client-side p50/p95/p99 merged into
# the $(LOAD_JSON) benchmark trajectory. See OPERATIONS.md §gvload.
LOAD_QPS ?= 200
LOAD_DURATION ?= 10s
LOAD_JSON ?= BENCH_PR6.json
loadtest:
	$(GO) run ./cmd/gvload -self -dataset youtube -nodes 20000 -edges 80000 \
		-qps $(LOAD_QPS) -duration $(LOAD_DURATION) -write-every 500ms \
		-json $(LOAD_JSON)

# Maintenance benchmark: record the serving trajectory into
# $(MAINT_JSON) and gate the read path against $(MAINT_BASE). Three
# read-only runs reproduce the ServeQuery qps sweep (same series names
# as BENCH_PR6.json, so `benchjson -diff` compares them directly), then
# one mixed 95/5 read/write run per maintenance mode records read/write
# percentiles and the per-batch view-maintenance cost scraped from
# gvserve_maintenance_* — mode=delta vs mode=remat is the
# delta-propagation-vs-full-rematerialize comparison. The final diff
# fails on a >20% regression in any shared (read-path) series; the
# mixed and maintenance series are new in $(MAINT_JSON) and reported
# informationally. See OPERATIONS.md §gvload.
MAINT_JSON ?= BENCH_PR8.json
MAINT_BASE ?= BENCH_PR6.json
MAINT_DURATION ?= 10s
MAINT_MIX ?= 0.05
bench-maint:
	for q in 100 200 400; do \
		$(GO) run ./cmd/gvload -self -dataset youtube -nodes 20000 -edges 80000 \
			-qps $$q -duration $(MAINT_DURATION) -write-every 500ms \
			-json $(MAINT_JSON) || exit 1; \
	done
	for mode in delta remat; do \
		$(GO) run ./cmd/gvload -self -dataset youtube -nodes 20000 -edges 80000 \
			-qps 200 -duration $(MAINT_DURATION) -write-mix $(MAINT_MIX) -write-batch 4 \
			-maint $$mode -json $(MAINT_JSON) || exit 1; \
	done
	$(GO) run ./cmd/benchjson -diff -threshold 0.20 $(MAINT_BASE) $(MAINT_JSON)

# CI-sized maintenance smoke: one short mixed run per mode into a
# scratch file, proving the write path, the metrics scrape and both
# maintenance modes work end to end. No regression gate (runs are too
# short to be stable).
bench-maint-smoke:
	@rm -f .bench-maint.json
	for mode in delta remat; do \
		$(GO) run ./cmd/gvload -self -dataset youtube -nodes 5000 -edges 20000 \
			-qps 100 -duration 2s -write-mix 0.1 -write-batch 4 \
			-maint $$mode -json .bench-maint.json || exit 1; \
	done
	@rm -f .bench-maint.json

# Full benchmark sweep: every Fig. 8 figure plus the parallel engine
# worker sweeps. Slow; see bench-smoke for the CI-sized subset.
bench:
	$(GO) test -run 'BenchmarkNone' -bench . -benchmem ./...

# The CI smoke subset: one iteration of the Fig. 8(a) figure runner and
# the parallel materialize/answer sweeps.
bench-smoke:
	$(GO) test -run 'BenchmarkNone' -bench 'Fig8a' -benchtime 1x ./...
	$(GO) test -run 'BenchmarkNone' -bench 'MaterializeParallel|AnswerParallel' -benchtime 1x ./...
	$(GO) test -run 'BenchmarkNone' -bench 'SimFrozen|AnswerFrozen' -benchtime 1x ./...

# The SCC-parallel MatchJoin fixpoint worker sweep on multi-SCC necklace
# patterns. GOMAXPROCS=4 makes the speedup observable in CI even though
# dev containers may expose a single CPU.
bench-scc:
	GOMAXPROCS=4 $(GO) test -run 'BenchmarkNone' -bench 'MatchJoinSCCParallel' -benchmem ./...

# Frozen-vs-mutable backend A/B: direct simulation (the mutex-free label
# index on the seeding loop) and the materialize+answer pipeline worker
# sweep over both graph.Reader backends.
bench-frozen:
	$(GO) test -run 'BenchmarkNone' -bench 'SimFrozen|AnswerFrozen' -benchmem ./...

# Sharded-backend sweep: the materialize+answer pipeline over shard
# counts (pre-partitioned snapshots) plus the O(|V|+|E|) splitter.
# GOMAXPROCS=4: shard-parallel seeding needs real cores to show.
bench-sharded:
	GOMAXPROCS=4 $(GO) test -run 'BenchmarkNone' -bench 'AnswerSharded|ShardSplit' -benchmem ./...

# Benchmark trajectory: run the Fig. 8 suite plus the
# frozen/sharded/SCC/micro sweeps with -benchmem and record op name →
# ns/op, B/op, allocs/op in BENCH_PR5.json via cmd/benchjson.
# Append-friendly: all runs are concatenated before conversion, and
# repeated names keep the fastest run — hence -count above 1, which
# keeps single-pass scheduler noise out of the recorded trajectory
# (bench-diff gates on it). See README.md §Performance for how to
# read/extend the BENCH_*.json trajectory.
# Plain redirects (no tee): a failing benchmark run must fail the
# target — a pipeline would hide go test's exit status.
BENCH_JSON ?= BENCH_PR5.json
bench-json:
	@rm -f .bench-json.tmp
	$(GO) test -run 'BenchmarkNone' -bench 'Fig8' -benchtime 1x -count 3 -benchmem . >> .bench-json.tmp
	$(GO) test -run 'BenchmarkNone' -bench 'MatchSimulation|MatchJoin$$|MatchJoinSCCParallel|SimFrozen|AnswerFrozen|AnswerSharded|ShardSplit|MaterializeViews' -benchtime 300ms -count 2 -benchmem . >> .bench-json.tmp
	@cat .bench-json.tmp
	$(GO) run ./cmd/benchjson -out $(BENCH_JSON) < .bench-json.tmp
	@rm -f .bench-json.tmp

# Benchmark trajectory diff: rerun the bench-json suite into a scratch
# trajectory and gate it against a recorded baseline —
# `make bench-diff BASE=BENCH_PR4.json` reports per-benchmark ns/op and
# allocs/op deltas and fails on any >20% regression of a benchmark
# present in both files. Set NEW to diff an existing file instead of
# rerunning.
BASE ?= BENCH_PR4.json
NEW ?=
bench-diff:
ifeq ($(NEW),)
	$(MAKE) bench-json BENCH_JSON=.bench-diff.json
	$(GO) run ./cmd/benchjson -diff -threshold 0.20 $(BASE) .bench-diff.json; \
		st=$$?; rm -f .bench-diff.json; exit $$st
else
	$(GO) run ./cmd/benchjson -diff -threshold 0.20 $(BASE) $(NEW)
endif

# The CI-sized trajectory: the acceptance benchmarks only (SCC fixpoint,
# frozen pipeline, sharded sweep), one short pass, uploaded as a
# workflow artifact.
bench-json-smoke:
	@rm -f .bench-json.tmp
	$(GO) test -run 'BenchmarkNone' -bench 'MatchJoinSCCParallel|AnswerFrozen|AnswerSharded' -benchtime 100ms -benchmem . > .bench-json.tmp
	@cat .bench-json.tmp
	$(GO) run ./cmd/benchjson -out $(BENCH_JSON) < .bench-json.tmp
	@rm -f .bench-json.tmp

# Durability benchmark: WAL append ns/record per sync policy, crash
# recovery (decode + delta replay) per 100k records and the snapshot
# codec, recorded into $(WAL_JSON) via benchjson; then two gvload
# sweeps. The first runs ephemeral (no -data-dir) under the same
# ServeQuery series names as earlier trajectories — the control the
# final diff gates against $(WAL_BASE), proving the store subsystem
# does not tax the read path (queries never touch the store). The
# second runs on a fresh -data-dir with fsync-per-record, recorded as
# its own ServeQueryDurable series (no earlier baseline): the honest
# price of the WAL in the write loop and a checkpoint per publish.
# StoreCheckpoint also matches StoreCheckpointDirtyFraction — the
# per-shard incremental checkpoint sweep (ckpt-bytes/op vs dirty
# fraction) — and RecoveryExtensions records the clean-tail boot with
# persisted extensions against the rematerialize-from-scratch control.
WAL_JSON ?= BENCH_PR10.json
WAL_BASE ?= BENCH_PR9.json
WAL_DURATION ?= 10s
bench-wal:
	@rm -f .bench-wal.tmp
	$(GO) test -run 'BenchmarkNone' -bench 'WALAppend|RecoveryReplay|RecoveryExtensions|SnapshotSave|SnapshotLoad|StoreCheckpoint' -benchtime 300ms -count 2 -benchmem ./internal/store >> .bench-wal.tmp
	@cat .bench-wal.tmp
	$(GO) run ./cmd/benchjson -out $(WAL_JSON) < .bench-wal.tmp
	@rm -f .bench-wal.tmp
	for q in 100 200 400; do \
		$(GO) run ./cmd/gvload -self -dataset youtube -nodes 20000 -edges 80000 \
			-qps $$q -duration $(WAL_DURATION) -write-every 500ms \
			-json $(WAL_JSON) || exit 1; \
	done
	for q in 100 200 400; do \
		$(GO) run ./cmd/gvload -self -dataset youtube -nodes 20000 -edges 80000 \
			-qps $$q -duration $(WAL_DURATION) -write-every 500ms \
			-data-dir $$(mktemp -d) -wal-sync always \
			-name ServeQueryDurable -json $(WAL_JSON) || exit 1; \
	done
	# The gate protects the read path and the live WAL/recovery path.
	# -skip exempts the informational series: ServeQueryDurable was
	# recorded without a baseline by design (and now carries the
	# extension-persistence work per checkpoint), and SnapshotSave/Load
	# measure the legacy single-file GVSNAP01 codec, which after the
	# manifest layout only runs during migration.
	$(GO) run ./cmd/benchjson -diff -threshold 0.20 \
		-skip 'ServeQueryDurable|SnapshotSave|SnapshotLoad' \
		$(WAL_BASE) $(WAL_JSON)

# CI-sized durability smoke: the store micro-benches one iteration each
# plus one short durable gvload run into a scratch trajectory.
bench-wal-smoke:
	@rm -f .bench-wal.json
	$(GO) test -run 'BenchmarkNone' -bench 'WALAppend|RecoveryReplay|SnapshotSave|SnapshotLoad' -benchtime 1x ./internal/store
	$(GO) run ./cmd/gvload -self -dataset youtube -nodes 5000 -edges 20000 \
		-qps 100 -duration 2s -write-mix 0.1 -write-batch 4 \
		-data-dir $$(mktemp -d) -wal-sync 5ms -json .bench-wal.json
	@rm -f .bench-wal.json

# Run each native fuzz target briefly (the CI smoke; seed corpora under
# testdata/fuzz always run as plain tests via `make test`).
FUZZTIME ?= 15s
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzShardRoundTrip$$' -fuzztime $(FUZZTIME) ./internal/graph
	$(GO) test -run '^$$' -fuzz '^FuzzEquivalentPreds$$' -fuzztime $(FUZZTIME) ./internal/pattern
	$(GO) test -run '^$$' -fuzz '^FuzzWALReplay$$' -fuzztime $(FUZZTIME) ./internal/store
	$(GO) test -run '^$$' -fuzz '^FuzzSnapshotManifest$$' -fuzztime $(FUZZTIME) ./internal/store

# Coverage profile + function summary (CI uploads coverage.out).
cover:
	$(GO) test -coverprofile=coverage.out ./...
	$(GO) tool cover -func=coverage.out | tail -n 1

ci: build vet analyze fmt-check docs-lint race bench-smoke lint
