# Developer entry points mirroring .github/workflows/ci.yml — `make ci`
# runs exactly what CI runs.

GO ?= go

.PHONY: build test race vet fmt-check bench bench-smoke bench-scc bench-frozen bench-json bench-json-smoke ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race tests pin GOMAXPROCS>=4 so the SCC-parallel fixpoint waves truly
# interleave even when the host (or a dev container) exposes one CPU.
race:
	GOMAXPROCS=4 $(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Full benchmark sweep: every Fig. 8 figure plus the parallel engine
# worker sweeps. Slow; see bench-smoke for the CI-sized subset.
bench:
	$(GO) test -run 'BenchmarkNone' -bench . -benchmem ./...

# The CI smoke subset: one iteration of the Fig. 8(a) figure runner and
# the parallel materialize/answer sweeps.
bench-smoke:
	$(GO) test -run 'BenchmarkNone' -bench 'Fig8a' -benchtime 1x ./...
	$(GO) test -run 'BenchmarkNone' -bench 'MaterializeParallel|AnswerParallel' -benchtime 1x ./...
	$(GO) test -run 'BenchmarkNone' -bench 'SimFrozen|AnswerFrozen' -benchtime 1x ./...

# The SCC-parallel MatchJoin fixpoint worker sweep on multi-SCC necklace
# patterns. GOMAXPROCS=4 makes the speedup observable in CI even though
# dev containers may expose a single CPU.
bench-scc:
	GOMAXPROCS=4 $(GO) test -run 'BenchmarkNone' -bench 'MatchJoinSCCParallel' -benchmem ./...

# Frozen-vs-mutable backend A/B: direct simulation (the mutex-free label
# index on the seeding loop) and the materialize+answer pipeline worker
# sweep over both graph.Reader backends.
bench-frozen:
	$(GO) test -run 'BenchmarkNone' -bench 'SimFrozen|AnswerFrozen' -benchmem ./...

# Benchmark trajectory: run the Fig. 8 suite (one pass each) plus the
# frozen/SCC/micro sweeps with -benchmem and record op name → ns/op,
# B/op, allocs/op in BENCH_PR4.json via cmd/benchjson. Append-friendly:
# both runs are concatenated before conversion, and repeated names keep
# the fastest run. See README.md §Performance for how to read/extend the
# BENCH_*.json trajectory.
# Plain redirects (no tee): a failing benchmark run must fail the
# target — a pipeline would hide go test's exit status.
BENCH_JSON ?= BENCH_PR4.json
bench-json:
	@rm -f .bench-json.tmp
	$(GO) test -run 'BenchmarkNone' -bench 'Fig8' -benchtime 1x -benchmem . >> .bench-json.tmp
	$(GO) test -run 'BenchmarkNone' -bench 'MatchSimulation|MatchJoin$$|MatchJoinSCCParallel|SimFrozen|AnswerFrozen|MaterializeViews' -benchtime 300ms -benchmem . >> .bench-json.tmp
	@cat .bench-json.tmp
	$(GO) run ./cmd/benchjson -out $(BENCH_JSON) < .bench-json.tmp
	@rm -f .bench-json.tmp

# The CI-sized trajectory: the two acceptance benchmarks only, one
# short pass, uploaded as a workflow artifact.
bench-json-smoke:
	@rm -f .bench-json.tmp
	$(GO) test -run 'BenchmarkNone' -bench 'MatchJoinSCCParallel|AnswerFrozen' -benchtime 100ms -benchmem . > .bench-json.tmp
	@cat .bench-json.tmp
	$(GO) run ./cmd/benchjson -out $(BENCH_JSON) < .bench-json.tmp
	@rm -f .bench-json.tmp

ci: build vet fmt-check race bench-smoke
