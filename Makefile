# Developer entry points mirroring .github/workflows/ci.yml — `make ci`
# runs exactly what CI runs.

GO ?= go

.PHONY: build test race vet fmt-check bench bench-smoke bench-scc bench-frozen ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race tests pin GOMAXPROCS>=4 so the SCC-parallel fixpoint waves truly
# interleave even when the host (or a dev container) exposes one CPU.
race:
	GOMAXPROCS=4 $(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Full benchmark sweep: every Fig. 8 figure plus the parallel engine
# worker sweeps. Slow; see bench-smoke for the CI-sized subset.
bench:
	$(GO) test -run 'BenchmarkNone' -bench . -benchmem ./...

# The CI smoke subset: one iteration of the Fig. 8(a) figure runner and
# the parallel materialize/answer sweeps.
bench-smoke:
	$(GO) test -run 'BenchmarkNone' -bench 'Fig8a' -benchtime 1x ./...
	$(GO) test -run 'BenchmarkNone' -bench 'MaterializeParallel|AnswerParallel' -benchtime 1x ./...
	$(GO) test -run 'BenchmarkNone' -bench 'SimFrozen|AnswerFrozen' -benchtime 1x ./...

# The SCC-parallel MatchJoin fixpoint worker sweep on multi-SCC necklace
# patterns. GOMAXPROCS=4 makes the speedup observable in CI even though
# dev containers may expose a single CPU.
bench-scc:
	GOMAXPROCS=4 $(GO) test -run 'BenchmarkNone' -bench 'MatchJoinSCCParallel' -benchmem ./...

# Frozen-vs-mutable backend A/B: direct simulation (the mutex-free label
# index on the seeding loop) and the materialize+answer pipeline worker
# sweep over both graph.Reader backends.
bench-frozen:
	$(GO) test -run 'BenchmarkNone' -bench 'SimFrozen|AnswerFrozen' -benchmem ./...

ci: build vet fmt-check race bench-smoke
