package graphviews_test

// One benchmark per evaluation figure of the paper (Fig. 8(a)–(l)), plus
// micro-benchmarks for the individual algorithms. The figure benchmarks
// drive the same runners as cmd/gvbench at tiny scale; run
//
//	go test -bench=Fig -benchmem
//
// for the full sweep, or cmd/gvbench for the figure tables at larger
// scales.

import (
	"fmt"
	"math/rand"
	"testing"

	gv "graphviews"
	"graphviews/internal/core"
	"graphviews/internal/experiments"
	"graphviews/internal/simulation"
	"graphviews/internal/view"
)

func benchFigure(b *testing.B, id string) {
	cfg := experiments.Config{Scale: experiments.ScaleTiny, Seed: 7, QueriesPerPoint: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Run(id, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// Exp-1: pattern matching using views, real-life-like datasets.
func BenchmarkFig8aAmazonVaryQs(b *testing.B)   { benchFigure(b, "8a") }
func BenchmarkFig8bCitationVaryQs(b *testing.B) { benchFigure(b, "8b") }
func BenchmarkFig8cYoutubeVaryQs(b *testing.B)  { benchFigure(b, "8c") }

// Exp-1: scalability on synthetic graphs.
func BenchmarkFig8dSyntheticVaryG(b *testing.B)   { benchFigure(b, "8d") }
func BenchmarkFig8eSyntheticVaryGQs(b *testing.B) { benchFigure(b, "8e") }

// Exp-2: rank-ordering optimization ablation.
func BenchmarkFig8fDensification(b *testing.B) { benchFigure(b, "8f") }

// Exp-3: containment checking.
func BenchmarkFig8gContain(b *testing.B)          { benchFigure(b, "8g") }
func BenchmarkFig8hMinimumVsMinimal(b *testing.B) { benchFigure(b, "8h") }

// Exp-4: bounded pattern queries using views.
func BenchmarkFig8iAmazonBounded(b *testing.B)    { benchFigure(b, "8i") }
func BenchmarkFig8jCitationBounded(b *testing.B)  { benchFigure(b, "8j") }
func BenchmarkFig8kYoutubeVaryFe(b *testing.B)    { benchFigure(b, "8k") }
func BenchmarkFig8lSyntheticBounded(b *testing.B) { benchFigure(b, "8l") }

// --- micro-benchmarks -----------------------------------------------------

// microWorkload builds a mid-sized YouTube-like instance shared by the
// micro-benchmarks.
func microWorkload() (*gv.Graph, *gv.ViewSet, *view.Extensions, *gv.Pattern, *core.Lambda) {
	g := gv.GenerateYouTubeLike(20_000, 56_000, 1)
	vs := gv.YouTubeViews()
	x := gv.Materialize(g, vs)
	rng := rand.New(rand.NewSource(2))
	q := gv.GlueQuery(rng, vs, 5, 7)
	l, ok, err := core.Contain(q, vs)
	if err != nil || !ok {
		panic("micro workload query not contained")
	}
	return g, vs, x, q, l
}

func BenchmarkMatchSimulation(b *testing.B) {
	g, _, _, q, _ := microWorkload()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		simulation.Simulate(g, q)
	}
}

func BenchmarkMatchBounded(b *testing.B) {
	g, vs, _, _, _ := microWorkload()
	bvs := gv.BoundedViews(vs, 2)
	rng := rand.New(rand.NewSource(3))
	q := gv.GlueQuery(rng, bvs, 4, 6)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		simulation.SimulateBounded(g, q)
	}
}

func BenchmarkMaterializeViews(b *testing.B) {
	g, vs, _, _, _ := microWorkload()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gv.Materialize(g, vs)
	}
}

func BenchmarkContain(b *testing.B) {
	_, vs, _, q, _ := microWorkload()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok, err := core.Contain(q, vs); err != nil || !ok {
			b.Fatal("containment lost")
		}
	}
}

func BenchmarkMinimal(b *testing.B) {
	_, vs, _, q, _ := microWorkload()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Minimal(q, vs)
	}
}

func BenchmarkMinimum(b *testing.B) {
	_, vs, _, q, _ := microWorkload()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Minimum(q, vs)
	}
}

func BenchmarkMatchJoin(b *testing.B) {
	_, _, x, q, l := microWorkload()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.MatchJoin(q, x, l)
	}
}

func BenchmarkMatchJoinRanked(b *testing.B) {
	_, _, x, q, l := microWorkload()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.MatchJoinRanked(q, x, l)
	}
}

func BenchmarkMatchJoinNaive(b *testing.B) {
	_, _, x, q, l := microWorkload()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.MatchJoinNaive(q, x, l)
	}
}

// --- parallel-engine benchmarks -------------------------------------------

// workerSweep is the parallelism axis of the Engine benchmarks. The
// acceptance target is the 4-worker point: materialization there should
// run ≥1.5× faster than 1 worker on a ≥4-core machine.
var workerSweep = []int{1, 2, 4, 8}

// BenchmarkMaterializeParallel sweeps Engine.Materialize worker counts
// over the Fig. 8 tiny-scale materialization workloads: the three
// real-life-like datasets with their 12-view sets, plus a bounded
// YouTube set to exercise the parallel distance enumeration.
func BenchmarkMaterializeParallel(b *testing.B) {
	f := 400 // experiments.ScaleTiny divisor
	type workload struct {
		name string
		g    *gv.Graph
		vs   *gv.ViewSet
	}
	yt := gv.GenerateYouTubeLike(1_600_000/f, 4_500_000/f, 1)
	workloads := []workload{
		{"amazon", gv.GenerateAmazonLike(548_000/f, 1_780_000/f, 1), gv.AmazonViews()},
		{"citation", gv.GenerateCitationLike(1_400_000/f, 3_000_000/f, 1), gv.CitationViews()},
		{"youtube", yt, gv.YouTubeViews()},
		{"youtube-bounded", yt, gv.BoundedViews(gv.YouTubeViews(), 2)},
	}
	for _, wl := range workloads {
		for _, w := range workerSweep {
			b.Run(fmt.Sprintf("%s/workers=%d", wl.name, w), func(b *testing.B) {
				eng := gv.NewEngine(gv.WithParallelism(w))
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := eng.Materialize(wl.g, wl.vs); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkAnswerParallel sweeps Engine.Answer worker counts over glued
// queries against pre-materialized YouTube-like extensions.
func BenchmarkAnswerParallel(b *testing.B) {
	_, _, x, q, _ := microWorkload()
	for _, w := range workerSweep {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			eng := gv.NewEngine(gv.WithParallelism(w))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, _, err := eng.Answer(q, x, gv.UseAll); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMatchJoinSCCParallel sweeps the SCC-parallel MatchJoin
// fixpoint worker counts on multi-SCC necklace patterns: k directed
// cycles chained by bridges, whose condensation waves give each worker an
// independent component cascade. The 1-worker point runs the same wave
// engine sequentially; compare against BenchmarkMatchJoin for the
// classic global cascade. Speedup is only observable on multi-core
// hosts (`make bench-scc` pins GOMAXPROCS=4 for CI).
func BenchmarkMatchJoinSCCParallel(b *testing.B) {
	for _, k := range []int{4, 8} {
		rng := rand.New(rand.NewSource(int64(100 + k)))
		q, vs := gv.NecklaceQuery(rng, k, 1)
		g := gv.NecklaceGraph(rng, q, 60_000, 340_000)
		l, ok, err := core.Contain(q, vs)
		if err != nil || !ok {
			b.Fatalf("necklace workload not contained: %v %v", ok, err)
		}
		x := gv.Materialize(g, vs)
		for _, w := range workerSweep {
			b.Run(fmt.Sprintf("cycles=%d/workers=%d", k, w), func(b *testing.B) {
				eng := gv.NewEngine(gv.WithParallelism(w))
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, _, err := eng.MatchJoin(q, x, l); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func BenchmarkIncrementalInsert(b *testing.B) {
	g := gv.GenerateYouTubeLike(5_000, 14_000, 4)
	m := gv.NewMaintained(g, gv.YouTubeViews())
	rng := rand.New(rand.NewSource(5))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := gv.NodeID(rng.Intn(5000))
		v := gv.NodeID(rng.Intn(5000))
		if u != v {
			m.InsertEdge(u, v)
		}
	}
}
