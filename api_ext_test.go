package graphviews_test

import (
	"math/rand"
	"testing"

	gv "graphviews"
)

func TestPublicAPIAnswerPartial(t *testing.T) {
	g := gv.NewGraph()
	a := g.AddNode("A")
	b := g.AddNode("B")
	z := g.AddNode("Z")
	g.AddEdge(a, b)
	g.AddEdge(b, z)

	v, _ := gv.ParsePattern("pattern V {\n node a: A\n node b: B\n edge a -> b\n}")
	vs := gv.NewViewSet(gv.Define("V", v))
	x := gv.Materialize(g, vs)

	q, _ := gv.ParsePattern("pattern Q {\n node a: A\n node b: B\n node z: Z\n edge a -> b\n edge b -> z\n}")
	pa, err := gv.AnswerPartial(q, x)
	if err != nil {
		t.Fatalf("AnswerPartial: %v", err)
	}
	if pa.Exact {
		t.Fatalf("Q has an uncoverable edge")
	}
	if !pa.Covered[0] || pa.Covered[1] {
		t.Fatalf("coverage = %v, want [true false]", pa.Covered)
	}
	if !pa.Result.Edges[0].Has(a, b) {
		t.Fatalf("partial answer lost the covered match")
	}
}

func TestPublicAPISelectViews(t *testing.T) {
	vs := gv.YouTubeViews()
	rng := rand.New(rand.NewSource(2))
	workload := []*gv.Pattern{
		gv.GlueQuery(rng, vs, 4, 5),
		gv.GlueQuery(rng, vs, 5, 6),
		gv.GlueQuery(rng, vs, 3, 3),
	}
	chosen, ok, err := gv.SelectViews(workload, vs)
	if err != nil || !ok {
		t.Fatalf("SelectViews: %v %v", ok, err)
	}
	if len(chosen) == 0 || len(chosen) > vs.Card() {
		t.Fatalf("chosen = %v", chosen)
	}
	sub := vs.Subset(chosen)
	for i, q := range workload {
		if _, okC, _ := gv.Contains(q, sub); !okC {
			t.Fatalf("workload query %d not contained in selection", i)
		}
	}
}

func TestPublicAPIDualPipeline(t *testing.T) {
	g := gv.GenerateUniform(200, 500, 3, 6)
	vs := gv.SyntheticViews(3, 7)
	rng := rand.New(rand.NewSource(8))
	q := gv.GlueQuery(rng, vs, 3, 3)

	l, ok, err := gv.DualContains(q, vs)
	if err != nil || !ok {
		t.Fatalf("DualContains: %v %v", ok, err)
	}
	x := gv.MaterializeDual(g, vs)
	res, _ := gv.DualMatchJoin(q, x, l)
	want := gv.MatchDual(g, q)
	if !res.Equal(want) {
		t.Fatalf("dual view answer != direct dual evaluation")
	}
}
